(* dpmr_loadgen — deterministic closed-loop load generator for
   dpmr_serve.

   N connections each issue their share of the total request count
   back-to-back (closed loop: next request only after the previous
   response).  The request stream is a pure function of --seed: a mix
   over the four built-in workloads and four variant classes (golden,
   DPMR no-fault, fault-injected resize / free at site 0), with
   hot-key skew — most requests draw from a small hot set of
   experiment identities, the rest from a cold space, so the run
   exercises both the federated cache and the worker pool.

   Reports client-observed throughput and latency percentiles to
   stdout and (--out) a BENCH_serve.json artifact.

   --pinned / --pinned-local write the verdicts of a fixed request set
   (same bytes on every conforming build): --pinned asks the daemon
   over the socket, --pinned-local computes them in-process through
   the identical resolution path — diffing the two files proves the
   socket adds nothing and loses nothing. *)

open Cmdliner
module Engine = Dpmr_engine.Engine
module Protocol = Dpmr_server.Protocol
module Client = Dpmr_server.Client
module Server = Dpmr_server.Server
module Config = Dpmr_core.Config
module Inject = Dpmr_fi.Inject
module Experiment = Dpmr_fi.Experiment

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("dpmr_loadgen: " ^ m); exit 2) fmt

(* ---------------- deterministic stream ---------------- *)

(* splitmix64: one independent stream per connection *)
let sm_mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let sm_next st =
  st := Int64.add !st 0x9e3779b97f4a7c15L;
  sm_mix !st

let rand_below st n = Int64.to_int (Int64.rem (Int64.logand (sm_next st) Int64.max_int) (Int64.of_int n))

let workloads = [| "art"; "bzip2"; "equake"; "mcf" |]

(** The per-request draw.  [hot_pct] of requests reuse one of 8 hot
    experiment identities (few distinct golden contexts, high cache-hit
    potential); the rest roam a cold seed space that mostly misses. *)
let gen_params st ~scale ~hot_pct =
  let hot = rand_below st 100 < hot_pct in
  let workload = workloads.(rand_below st (Array.length workloads)) in
  let exp_seed =
    if hot then Int64.of_int (42 + rand_below st 2)
    else Int64.of_int (1000 + rand_below st 64)
  in
  let run_seed = Int64.add exp_seed (Int64.of_int (rand_below st 4)) in
  let p =
    {
      Protocol.default_run with
      Protocol.workload;
      scale;
      exp_seed;
      run_seed;
      cfg_seed = exp_seed;
    }
  in
  match rand_below st 4 with
  | 0 -> { p with Protocol.golden = true }
  | 1 -> p (* DPMR build, no fault *)
  | 2 -> { p with Protocol.kind = Some (Inject.Heap_array_resize 50); site = 0 }
  | _ -> { p with Protocol.kind = Some Inject.Immediate_free; site = 0 }

(* ---------------- connection worker ---------------- *)

type tally = {
  lat_us : int array;  (** latency of each ok verdict; length = issued count *)
  mutable ok : int;
  mutable cached : int;
  mutable app_errors : int;
  mutable quota_rejects : int;
  mutable protocol_errors : int;
}

let connect ~socket ~tcp =
  match tcp with
  | Some (host, port) -> Client.connect_tcp host port
  | None -> Client.connect_unix socket

(** Retry the first connect for a few seconds: in CI the daemon may
    still be booting when the load generator starts. *)
let connect_retry ~socket ~tcp =
  let rec go n =
    match connect ~socket ~tcp with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when n > 0 ->
        Unix.sleepf 0.1;
        go (n - 1)
  in
  go 50

let run_conn ~socket ~tcp ~seed ~conn_id ~requests ~scale ~hot_pct =
  let st = ref (Int64.add seed (Int64.mul 0x5851f42d4c957f2dL (Int64.of_int (conn_id + 1)))) in
  let t =
    {
      lat_us = Array.make (max requests 1) 0;
      ok = 0;
      cached = 0;
      app_errors = 0;
      quota_rejects = 0;
      protocol_errors = 0;
    }
  in
  (try
     let c = connect_retry ~socket ~tcp in
     (try
        (match Client.hello c (Printf.sprintf "dpmr_loadgen/%d" conn_id) with
        | Protocol.Ack _ -> ()
        | _ -> t.protocol_errors <- t.protocol_errors + 1);
        for _ = 1 to requests do
          let p = gen_params st ~scale ~hot_pct in
          let t0 = Unix.gettimeofday () in
          match Client.run c p with
          | Protocol.Verdict v ->
              t.lat_us.(t.ok) <-
                int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
              t.ok <- t.ok + 1;
              if v.Protocol.cached then t.cached <- t.cached + 1
          | Protocol.Error (Protocol.Quota, _) ->
              t.quota_rejects <- t.quota_rejects + 1
          | Protocol.Error _ -> t.app_errors <- t.app_errors + 1
          | _ -> t.protocol_errors <- t.protocol_errors + 1
        done
      with _ -> t.protocol_errors <- t.protocol_errors + 1);
     Client.close c
   with _ -> t.protocol_errors <- t.protocol_errors + 1);
  t

(* ---------------- percentiles and report ---------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. p /. 100.)))

let bench_json ~connections ~requests ~(tallies : tally list) ~wall ~sorted =
  let sum f = List.fold_left (fun a t -> a + f t) 0 tallies in
  let ok = sum (fun t -> t.ok) in
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"dpmr-serve-bench/1\",\n";
  add "  \"connections\": %d,\n" connections;
  add "  \"requests\": %d,\n" requests;
  add "  \"ok\": %d,\n" ok;
  add "  \"cache_hits\": %d,\n" (sum (fun t -> t.cached));
  add "  \"app_errors\": %d,\n" (sum (fun t -> t.app_errors));
  add "  \"quota_rejects\": %d,\n" (sum (fun t -> t.quota_rejects));
  add "  \"protocol_errors\": %d,\n" (sum (fun t -> t.protocol_errors));
  add "  \"wall_s\": %.3f,\n" wall;
  add "  \"throughput_rps\": %.1f,\n"
    (if wall > 0. then float_of_int ok /. wall else 0.);
  add "  \"p50_us\": %d,\n" (percentile sorted 50.);
  add "  \"p95_us\": %d,\n" (percentile sorted 95.);
  add "  \"p99_us\": %d,\n" (percentile sorted 99.);
  add "  \"max_us\": %d\n"
    (if Array.length sorted = 0 then 0 else sorted.(Array.length sorted - 1));
  add "}\n";
  Buffer.contents b

(* ---------------- pinned request set ---------------- *)

(** Fixed, seed-independent request set: every workload crossed with
    every variant class, plus diversity/mode variations on one
    workload.  The rendering of each line excludes anything that may
    legitimately differ between transports (cache state, timing). *)
let pinned_set scale =
  let base w =
    {
      Protocol.default_run with
      Protocol.workload = w;
      scale;
      exp_seed = 42L;
      run_seed = 43L;
      cfg_seed = 42L;
    }
  in
  List.concat_map
    (fun w ->
      let p = base w in
      [
        { p with Protocol.golden = true };
        p;
        { p with Protocol.kind = Some (Inject.Heap_array_resize 50) };
        { p with Protocol.kind = Some Inject.Immediate_free };
        { p with Protocol.kind = Some (Inject.Heap_array_resize 50); plain = true };
      ])
    (Array.to_list workloads)
  @ [
      { (base "art") with Protocol.mode = Config.Mds };
      { (base "art") with Protocol.diversity = Config.Pad_malloc 16 };
      { (base "art") with Protocol.diversity = Config.Zero_before_free };
      {
        (base "mcf") with
        Protocol.kind = Some Inject.Immediate_free;
        policy = Config.Temporal 0xffL;
      };
    ]

let pinned_line p (v : Protocol.verdict) =
  let c = v.Protocol.cls in
  Printf.sprintf
    "%s -> sf=%b co=%b ndet=%b ddet=%b timeout=%b t2d=%s cost=%Ld peak=%d"
    (Protocol.encode_request { Protocol.rid = 0; body = Protocol.Run p })
    c.Experiment.sf c.Experiment.co c.Experiment.ndet c.Experiment.ddet
    c.Experiment.timeout
    (match c.Experiment.t2d with Some t -> Int64.to_string t | None -> "-")
    c.Experiment.cost c.Experiment.peak_heap

let write_lines file lines =
  let oc = open_out file in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let run_pinned ~socket ~tcp ~scale file =
  let c = connect_retry ~socket ~tcp in
  let lines =
    List.map
      (fun p ->
        match Client.run c p with
        | Protocol.Verdict v -> pinned_line p v
        | Protocol.Error (code, msg) ->
            die "pinned request rejected (%s): %s"
              (Protocol.error_code_to_string code) msg
        | _ -> die "pinned request got a non-verdict reply")
      (pinned_set scale)
  in
  Client.close c;
  write_lines file lines;
  Printf.printf "pinned  : %d verdicts -> %s\n" (List.length lines) file

(** The same set, computed in this process through the daemon's own
    resolution path (no socket, no cache) — the byte-identity baseline. *)
let run_pinned_local ~scale file =
  let engine = Engine.create ~jobs:2 ~use_cache:false ~resident:true () in
  let t = Server.create engine in
  let lines =
    List.map
      (fun p ->
        match Server.run_one t p with
        | Protocol.Verdict v -> pinned_line p v
        | _ -> die "pinned-local request failed")
      (pinned_set scale)
  in
  Engine.close engine;
  write_lines file lines;
  Printf.printf "pinned  : %d verdicts -> %s (local)\n" (List.length lines) file

(* ---------------- main ---------------- *)

let socket_t =
  Arg.(
    value
    & opt string "dpmr.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon.")

let tcp_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead.")

let connections_t =
  Arg.(
    value & opt int 4 & info [ "connections"; "c" ] ~docv:"N" ~doc:"Concurrent connections.")

let requests_t =
  Arg.(
    value
    & opt int 10_000
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total requests across all connections.")

let seed_t =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Stream seed.")

let scale_t =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let hot_t =
  Arg.(
    value
    & opt int 90
    & info [ "hot-pct" ] ~docv:"PCT"
        ~doc:"Share of requests drawn from the hot experiment identities (0-100).")

let out_t =
  Arg.(
    value
    & opt string "BENCH_serve.json"
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Benchmark report path.")

let pinned_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "pinned" ] ~docv:"FILE"
        ~doc:"Instead of load, run the pinned request set over the socket and \
              write its verdict lines to $(docv).")

let pinned_local_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "pinned-local" ] ~docv:"FILE"
        ~doc:"Compute the pinned set in-process (no daemon) and write the \
              baseline verdict lines to $(docv).")

let go socket tcp connections requests seed scale hot_pct out pinned pinned_local =
  let tcp =
    Option.map
      (fun spec ->
        match String.rindex_opt spec ':' with
        | Some i -> (
            match
              int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
            with
            | Some port -> (String.sub spec 0 i, port)
            | None -> die "bad --tcp %S" spec)
        | None -> die "bad --tcp %S" spec)
      tcp
  in
  match (pinned, pinned_local) with
  | Some file, _ -> run_pinned ~socket ~tcp ~scale file
  | None, Some file -> run_pinned_local ~scale file
  | None, None ->
      let connections = max 1 (min 32 connections) in
      let per_conn = max 1 (requests / connections) in
      let total = per_conn * connections in
      let t0 = Unix.gettimeofday () in
      let tallies =
        List.map Domain.join
          (List.init connections (fun conn_id ->
               Domain.spawn (fun () ->
                   run_conn ~socket ~tcp ~seed ~conn_id ~requests:per_conn ~scale
                     ~hot_pct)))
      in
      let wall = Unix.gettimeofday () -. t0 in
      let sorted =
        let a =
          Array.concat (List.map (fun t -> Array.sub t.lat_us 0 t.ok) tallies)
        in
        Array.sort compare a;
        a
      in
      let report = bench_json ~connections ~requests:total ~tallies ~wall ~sorted in
      let oc = open_out out in
      output_string oc report;
      close_out oc;
      print_string report;
      Printf.printf "report  : %s\n" out;
      let protocol_errors =
        List.fold_left (fun a t -> a + t.protocol_errors) 0 tallies
      in
      if protocol_errors > 0 then exit 1

let cmd =
  Cmd.v
    (Cmd.info "dpmr_loadgen"
       ~doc:"Deterministic closed-loop load generator for dpmr_serve.")
    Term.(
      const go $ socket_t $ tcp_t $ connections_t $ requests_t $ seed_t $ scale_t
      $ hot_t $ out_t $ pinned_t $ pinned_local_t)

let () = exit (Cmd.eval cmd)
