(* dpmr_serve — the resident DPMR daemon.

   Boots one engine (resident worker pool + shared sharded result
   cache), binds a Unix-domain or TCP socket, and serves detection
   verdicts until drained by SIGTERM/SIGINT or a drain request.  All
   supervision knobs of batch runs (deadline, retries, backoff, chaos)
   apply to served requests too. *)

open Cmdliner
module Engine = Dpmr_engine.Engine
module Supervisor = Dpmr_engine.Supervisor
module Chaos = Dpmr_engine.Chaos
module Server = Dpmr_server.Server

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("dpmr_serve: " ^ m); exit 2) fmt

let socket_t =
  Arg.(
    value
    & opt string "dpmr.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let tcp_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on TCP instead of the Unix-domain socket.")

let workers_t =
  Arg.(
    value
    & opt int 0
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:"Worker domains in the resident pool (0 = one per recommended core).")

let retries_t =
  Arg.(
    value
    & opt int Supervisor.default_policy.Supervisor.max_retries
    & info [ "retries" ] ~docv:"N"
        ~doc:"Extra attempts granted to transiently failing requests.")

let backoff_ms_t =
  Arg.(
    value
    & opt float (Supervisor.default_policy.Supervisor.backoff *. 1000.)
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:"Base backoff between retry attempts, milliseconds (doubles per \
              attempt, deterministically jittered).")

let deadline_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:"Per-attempt wall-clock deadline for served requests (0 = none).")

let quota_rps_t =
  Arg.(
    value
    & opt float 0.
    & info [ "quota-rps" ] ~docv:"RPS"
        ~doc:"Per-connection token-bucket refill rate (0 = unlimited).")

let quota_burst_t =
  Arg.(
    value
    & opt int 64
    & info [ "quota-burst" ] ~docv:"N" ~doc:"Per-connection token-bucket burst size.")

let max_conns_t =
  Arg.(
    value
    & opt int 16
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Concurrent connections (each holds one handler domain).")

let drain_grace_t =
  Arg.(
    value
    & opt float 30.
    & info [ "drain-grace" ] ~docv:"SECS"
        ~doc:"How long a drain waits for in-flight connections before giving up.")

let chaos_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"P[,SEED]"
        ~doc:"Deterministically inject faults into the daemon's own workers and \
              cache writes with probability $(docv) (0 disables; overrides \
              DPMR_CHAOS).  Served verdicts must survive unchanged.")

let chaos_wire_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-wire" ] ~docv:"P[,SEED]"
        ~doc:"Deterministically sabotage this daemon's replies with probability \
              $(docv): stalls, torn frames, connection resets, and whole-process \
              kills (0 disables; overrides DPMR_CHAOS_WIRE).  A dispatching \
              client must still converge to byte-identical output.")

let cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Result-cache directory (default _dpmr_cache); several daemons and \
              batch runs may federate one directory.")

let no_cache_t =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the on-disk result cache.")

let quiet_t =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-session log lines.")

let go socket tcp workers retries backoff_ms deadline quota_rps quota_burst max_conns
    drain_grace chaos chaos_wire cache_dir no_cache quiet =
  (match chaos with
  | None -> ()
  | Some "0" -> Chaos.set None
  | Some s -> (
      match Chaos.parse s with
      | Some c -> Chaos.set (Some c)
      | None -> die "bad --chaos %S (want P or P,SEED with 0 < P <= 1)" s));
  (match chaos_wire with
  | None -> ()
  | Some "0" -> Chaos.set_wire None
  | Some s -> (
      match Chaos.parse s with
      | Some c -> Chaos.set_wire (Some c)
      | None -> die "bad --chaos-wire %S (want P or P,SEED with 0 < P <= 1)" s));
  let listen =
    match tcp with
    | None -> Server.Unix_sock socket
    | Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
            let host = String.sub spec 0 i in
            match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
            | Some port -> Server.Tcp (host, port)
            | None -> die "bad --tcp %S (want HOST:PORT)" spec)
        | None -> die "bad --tcp %S (want HOST:PORT)" spec)
  in
  let policy =
    let base = Supervisor.default_policy in
    let backoff = Float.max 0. (backoff_ms /. 1000.) in
    {
      Supervisor.max_retries = max 0 retries;
      backoff;
      backoff_max = Float.max base.Supervisor.backoff_max (backoff *. 10.);
      deadline =
        (match deadline with
        | None -> base.Supervisor.deadline
        | Some d when d <= 0. -> None
        | Some d -> Some d);
    }
  in
  let jobs = if workers <= 0 then Engine.default_jobs () else workers in
  let engine =
    Engine.create ~jobs ~use_cache:(not no_cache) ?cache_dir ~policy ~resident:true ()
  in
  let cfg =
    {
      Server.listen;
      max_conns;
      quota_rps;
      quota_burst;
      drain_grace;
      verbose = not quiet;
      (* a standalone daemon may really die under wire chaos — the
         dispatcher's failover is what's under test; in-process test
         servers keep this off and downgrade kills to resets *)
      allow_chaos_kill = true;
    }
  in
  let t = Server.create ~cfg engine in
  let ready () =
    Printf.printf "dpmr_serve: ready on %s (%d workers, pid %d)\n%!"
      (Server.pp_listen listen) jobs (Unix.getpid ())
  in
  Server.serve ~ready t;
  Engine.print_summary engine;
  Engine.close engine

let cmd =
  Cmd.v
    (Cmd.info "dpmr_serve" ~doc:"Resident DPMR daemon: detection verdicts over a socket.")
    Term.(
      const go $ socket_t $ tcp_t $ workers_t $ retries_t $ backoff_ms_t $ deadline_t
      $ quota_rps_t $ quota_burst_t $ max_conns_t $ drain_grace_t $ chaos_t
      $ chaos_wire_t $ cache_dir_t $ no_cache_t $ quiet_t)

let () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  (* populate the diversity-family registry before any request can name
     a family; without this every N-version request would be rejected *)
  Dpmr_nversion.Families.ensure ();
  exit (Cmd.eval cmd)
