(** Command-line interface to the DPMR reproduction.

    - [dpmr run <workload>] — run a workload golden or under a DPMR config;
    - [dpmr transform <workload>] — print the transformed IR;
    - [dpmr sites <workload>] — list fault-injection sites;
    - [dpmr inject <workload> --site N] — run one fault-injection experiment;
    - [dpmr dsa <workload>] — Data Structure Analysis exclusion ratios;
    - [dpmr recover <workload>] — inject, detect, recover Rx-style;
    - [dpmr report <id>|all] — regenerate a paper table/figure, in
      parallel and backed by the result cache ([--jobs]/[--no-cache]);
      supervised runs accept [--deadline] and chaos injection
      ([--chaos]/[DPMR_CHAOS]); [--telemetry-json FILE] dumps the
      engine telemetry as JSON;
    - [dpmr report forensics [FIG]] — traced re-run of a figure's fault
      grid with per-run corruption→detection forensics;
    - [dpmr trace run <workload>] — record an execution trace, print
      cost profiles, export Chrome trace-event / Perfetto JSON;
    - [dpmr trace validate FILE] — schema-check an exported trace;
    - [dpmr cache stats|verify|clear] — inspect, check or wipe the
      result cache ([verify] exits nonzero on damage);
    - [dpmr list] — list workloads and experiment ids. *)

open Cmdliner
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Workloads = Dpmr_workloads.Workloads
module Inject = Dpmr_fi.Inject
module Experiment = Dpmr_fi.Experiment
module Figures = Dpmr_harness.Figures
module Engine = Dpmr_engine.Engine
module Cache = Dpmr_engine.Cache
module Job = Dpmr_engine.Job
module Chaos = Dpmr_engine.Chaos
module Supervisor = Dpmr_engine.Supervisor
module Dispatch = Dpmr_engine.Dispatch
module Telemetry = Dpmr_engine.Telemetry
module Remote = Dpmr_server.Remote
module Trace = Dpmr_trace.Trace
module Export = Dpmr_trace.Export
module Json_check = Dpmr_trace.Json_check
module Analysis = Dpmr_trace.Forensics
module Forensics = Dpmr_fi.Forensics
module Drain = Dpmr_server.Drain

(* ---- shared options ---- *)

let scale_t =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let seed_t =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let mode_t =
  let mode_conv = Arg.enum [ ("sds", Config.Sds); ("mds", Config.Mds) ] in
  Arg.(value & opt mode_conv Config.Sds & info [ "mode" ] ~doc:"Replication design: sds or mds.")

let diversity_t =
  let parse s =
    match s with
    | "none" | "no-diversity" -> Ok Config.No_diversity
    | "zero-before-free" -> Ok Config.Zero_before_free
    | "rearrange-heap" -> Ok Config.Rearrange_heap
    | _ when String.length s > 10 && String.sub s 0 10 = "pad-stack-" -> (
        match int_of_string_opt (String.sub s 10 (String.length s - 10)) with
        | Some n -> Ok (Config.Pad_alloca n)
        | None -> Error (`Msg "bad stack pad size"))
    | _ when String.length s > 4 && String.sub s 0 4 = "pad-" -> (
        match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
        | Some n -> Ok (Config.Pad_malloc n)
        | None -> Error (`Msg "bad pad size"))
    | _ -> Error (`Msg ("unknown diversity " ^ s))
  in
  let print ppf d = Fmt.string ppf (Config.diversity_name d) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.No_diversity
    & info [ "diversity" ] ~doc:"none | zero-before-free | rearrange-heap | pad-<bytes> | pad-stack-<bytes>.")

let policy_t =
  let parse s =
    match s with
    | "all-loads" -> Ok Config.All_loads
    | "temporal-1/8" -> Ok (Config.Temporal Config.temporal_mask_1_8)
    | "temporal-1/2" -> Ok (Config.Temporal Config.temporal_mask_1_2)
    | "temporal-7/8" -> Ok (Config.Temporal Config.temporal_mask_7_8)
    | _ when String.length s > 7 && String.sub s 0 7 = "static-" -> (
        match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
        | Some n -> Ok (Config.Static (float_of_int n /. 100.))
        | None -> Error (`Msg "bad static percentage"))
    | _ -> Error (`Msg ("unknown policy " ^ s))
  in
  let print ppf p = Fmt.string ppf (Config.policy_name p) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.All_loads
    & info [ "policy" ]
        ~doc:"all-loads | temporal-1/8 | temporal-1/2 | temporal-7/8 | static-<pct>.")

let plain_t =
  Arg.(value & flag & info [ "plain" ] ~doc:"Run without the DPMR transformation.")

(* ---- N-version options ---- *)

let replicas_t =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "replica count must be >= 1 (got %d)" n))
    | None -> Error (`Msg (Printf.sprintf "replica count must be an integer (got %S)" s))
  in
  Arg.(
    value
    & opt (conv (parse, Fmt.int)) 1
    & info [ "replicas" ] ~docv:"N"
        ~doc:"Number of diverse replicas (N-version replication; 1 = the paper's design).")

let families_t =
  let parse s =
    let fs =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun f -> f <> "")
    in
    match Dpmr_core.Diversity_family.resolve fs with
    | Ok _ -> Ok fs
    | Error bad ->
        Error
          (`Msg
             (Printf.sprintf "unknown diversity family %S (registered: %s)" bad
                (match Dpmr_core.Diversity_family.names () with
                | [] -> "none"
                | ns -> String.concat ", " ns)))
  in
  let print ppf fs = Fmt.string ppf (String.concat "," fs) in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "families" ] ~docv:"F1,F2"
        ~doc:"Comma-separated diversity-transform families applied per replica \
              (see 'dpmr list' for the registry).")

let vote_t =
  Arg.(
    value
    & opt (enum [ ("any-mismatch", Config.Any_mismatch); ("majority", Config.Majority) ])
        Config.Any_mismatch
    & info [ "vote" ] ~doc:"Per-site voting rule across replicas: any-mismatch | majority.")

(** Configs built by commands that do not expose the N-version axes keep
    the single-replica defaults. *)
let cfg_of mode diversity policy seed =
  { Config.default with Config.mode; diversity; policy; seed }

let workload_t =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let die fmt = Printf.ksprintf (fun m -> Printf.eprintf "dpmr: %s\n" m; exit 2) fmt

let build_workload name scale =
  match List.find_opt (fun (e : Workloads.entry) -> e.Workloads.name = name) Workloads.all with
  | Some entry -> entry.Workloads.build ~scale ()
  | None ->
      die "unknown workload %S (try: %s)" name (String.concat ", " Workloads.names)

let report_run (r : Outcome.run) =
  Printf.printf "outcome : %s\n" (Outcome.to_string r.Outcome.outcome);
  Printf.printf "cost    : %Ld units\n" r.Outcome.cost;
  Printf.printf "heap    : %d bytes peak\n" r.Outcome.peak_heap_bytes;
  Printf.printf "output  :\n%s" r.Outcome.output

(* ---- commands ---- *)

let run_cmd =
  let go name scale seed mode diversity policy plain replicas families vote =
    let prog = build_workload name scale in
    let r =
      if plain then Dpmr.run_plain ~seed prog
      else
        let cfg = { (cfg_of mode diversity policy seed) with Config.replicas; families; vote } in
        Dpmr.run_dpmr ~seed cfg prog
    in
    report_run r
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload, optionally under DPMR.")
    Term.(
      const go $ workload_t $ scale_t $ seed_t $ mode_t $ diversity_t $ policy_t $ plain_t
      $ replicas_t $ families_t $ vote_t)

let transform_cmd =
  let go name scale mode diversity policy replicas families vote =
    let prog = build_workload name scale in
    let cfg =
      { Config.default with Config.mode; diversity; policy; replicas; families; vote }
    in
    let tp = Dpmr.transform cfg prog in
    print_string (Dpmr_ir.Printer.prog_to_string tp)
  in
  Cmd.v (Cmd.info "transform" ~doc:"Print the DPMR-transformed IR of a workload.")
    Term.(
      const go $ workload_t $ scale_t $ mode_t $ diversity_t $ policy_t $ replicas_t
      $ families_t $ vote_t)

let sites_cmd =
  let go name scale =
    let prog = build_workload name scale in
    List.iter
      (fun kind ->
        Printf.printf "%s:\n" (Inject.kind_name kind);
        List.iteri
          (fun i s -> Printf.printf "  [%d] %s\n" i (Inject.site_name s))
          (Inject.sites kind prog))
      [ Inject.Heap_array_resize 50; Inject.Immediate_free ]
  in
  Cmd.v (Cmd.info "sites" ~doc:"List fault-injection sites of a workload.")
    Term.(const go $ workload_t $ scale_t)

let inject_cmd =
  let site_t = Arg.(value & opt int 0 & info [ "site" ] ~docv:"N" ~doc:"Site index.") in
  let kind_t =
    let kind_conv =
      Arg.enum [ ("resize", Inject.Heap_array_resize 50); ("free", Inject.Immediate_free) ]
    in
    Arg.(value & opt kind_conv (Inject.Heap_array_resize 50) & info [ "kind" ] ~doc:"resize | free.")
  in
  let go name scale seed mode diversity policy plain kind site_idx =
    let wk = Experiment.workload name (fun () -> build_workload name scale) in
    let e = Experiment.make ~seed wk in
    let sites = Experiment.sites e kind in
    match List.nth_opt sites site_idx with
    | None -> Printf.eprintf "no such site (have %d)\n" (List.length sites)
    | Some site ->
        let variant =
          if plain then Experiment.Fi_stdapp (kind, site)
          else Experiment.Fi_dpmr (cfg_of mode diversity policy seed, kind, site)
        in
        let c = Experiment.run_variant e variant in
        Printf.printf "site    : %s\n" (Inject.site_name site);
        Printf.printf "sf      : %b\n" c.Experiment.sf;
        Printf.printf "correct : %b\n" c.Experiment.co;
        Printf.printf "natdet  : %b\n" c.Experiment.ndet;
        Printf.printf "dpmrdet : %b\n" c.Experiment.ddet;
        Printf.printf "timeout : %b\n" c.Experiment.timeout;
        (match c.Experiment.t2d with
        | Some t -> Printf.printf "t2d     : %Ld units\n" t
        | None -> ())
  in
  Cmd.v (Cmd.info "inject" ~doc:"Run one fault-injection experiment.")
    Term.(
      const go $ workload_t $ scale_t $ seed_t $ mode_t $ diversity_t $ policy_t $ plain_t
      $ kind_t $ site_t)

let dump_cmd =
  let go name scale =
    print_string (Dpmr_ir.Text.emit (build_workload name scale))
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Serialize a workload to the textual IR format.")
    Term.(const go $ workload_t $ scale_t)

let runfile_cmd =
  let file_t = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ir") in
  let go file seed mode diversity policy plain =
    let ic = open_in file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    let prog =
      try Dpmr_ir.Text.parse src
      with Dpmr_ir.Text.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" file line msg;
        exit 1
    in
    Dpmr_vm.Extern.declare_signatures prog;
    Dpmr_ir.Verifier.check_prog prog;
    let r =
      if plain then Dpmr.run_plain ~seed prog
      else Dpmr.run_dpmr ~seed (cfg_of mode diversity policy seed) prog
    in
    report_run r
  in
  Cmd.v
    (Cmd.info "runfile" ~doc:"Parse a textual-IR file and run it (optionally under DPMR).")
    Term.(const go $ file_t $ seed_t $ mode_t $ diversity_t $ policy_t $ plain_t)

let dsa_cmd =
  let dump_t =
    Arg.(value & flag & info [ "dump" ] ~doc:"Also print each function's DS graph.")
  in
  let go name scale dump =
    let prog = build_workload name scale in
    let scope = Dpmr_dsa.Scope.compute prog in
    Printf.printf "%-16s %s\n" "function" "excluded DS nodes";
    Dpmr_ir.Prog.iter_funcs prog (fun f ->
        let fname = f.Dpmr_ir.Func.name in
        Printf.printf "%-16s %14.0f%%\n" fname
          (100.0 *. Dpmr_dsa.Scope.exclusion_ratio scope fname));
    if dump then begin
      let summary = Dpmr_dsa.Interproc.analyze prog in
      Dpmr_ir.Prog.iter_funcs prog (fun f ->
          let fname = f.Dpmr_ir.Func.name in
          match Hashtbl.find_opt summary.Dpmr_dsa.Interproc.results fname with
          | Some res ->
              Printf.printf "\nDS graph for %s:\n" fname;
              Fmt.pr "%a@." Dpmr_dsa.Graph.pp res.Dpmr_dsa.Local.graph
          | None -> ())
    end
  in
  Cmd.v
    (Cmd.info "dsa" ~doc:"Run Data Structure Analysis and print exclusion ratios.")
    Term.(const go $ workload_t $ scale_t $ dump_t)

let recover_cmd =
  let kind_t =
    let kind_conv =
      Arg.enum [ ("resize", Inject.Heap_array_resize 50); ("free", Inject.Immediate_free) ]
    in
    Arg.(value & opt kind_conv (Inject.Heap_array_resize 50) & info [ "kind" ] ~doc:"resize | free.")
  in
  let site_t = Arg.(value & opt int 0 & info [ "site" ] ~docv:"N" ~doc:"Site index.") in
  let go name scale seed mode diversity policy kind site_idx families =
    let wk = Experiment.workload name (fun () -> build_workload name scale) in
    let e = Experiment.make ~seed wk in
    match List.nth_opt (Experiment.sites e kind) site_idx with
    | None -> Printf.eprintf "no such site\n"
    | Some site ->
        let injected = Dpmr_fi.Inject.apply e.Experiment.base kind site in
        let cfg = cfg_of mode diversity policy seed in
        (* escalate through heap pads first (the paper's Rx environment
           change), then through any requested diversity families *)
        let escalation =
          List.map (fun p -> Dpmr_core.Rx.Pad p) [ 8; 64; 1024; 8192 ]
          @ List.map (fun f -> Dpmr_core.Rx.Family f) families
        in
        let res =
          Dpmr_core.Rx.run_with_recovery ~budget:e.Experiment.budget cfg injected
            ~escalation
        in
        Printf.printf "first run : %s\n"
          (Outcome.to_string res.Dpmr_core.Rx.first.Outcome.outcome);
        Printf.printf "attempts  : %d\n" res.Dpmr_core.Rx.attempts;
        (match res.Dpmr_core.Rx.recovered_with with
        | Some change ->
            Printf.printf "recovered : yes, with %s\n"
              (Dpmr_core.Rx.env_change_name change)
        | None -> Printf.printf "recovered : no\n");
        Printf.printf "final     : %s\n"
          (Outcome.to_string res.Dpmr_core.Rx.final.Outcome.outcome)
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Inject a fault, detect it with DPMR, recover Rx-style.")
    Term.(
      const go $ workload_t $ scale_t $ seed_t $ mode_t $ diversity_t $ policy_t $ kind_t
      $ site_t $ families_t)

let jobs_t =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for experiment runs (0 = one per recommended core).")

let no_cache_t =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the on-disk result cache.")

let no_snapshot_t =
  Arg.(
    value & flag
    & info [ "no-snapshot" ]
        ~doc:
          "Run every grid job from zero instead of forking fault-injection \
           cells from a shared copy-on-write baseline snapshot (also: \
           DPMR_NO_SNAPSHOT=1).  Output is byte-identical either way.")

let report_cmd =
  let id_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID|all|forensics")
  in
  let fig_t =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FIG"
          ~doc:"Figure whose fault grid 'report forensics' re-runs (default fig-3.6).")
  in
  let telemetry_json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-json" ] ~docv:"FILE"
          ~doc:
            "Write the engine telemetry (jobs, retries, cache hit rate, wall \
             time, trace totals) as JSON to $(docv).")
  in
  let reps_t =
    Arg.(value & opt int 1 & info [ "reps" ] ~docv:"N"
           ~doc:"Repetitions per injection with distinct seeds (the RN dimension).")
  in
  let chaos_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"P[,SEED]"
          ~doc:
            "Deterministically inject faults into the engine's own workers and \
             cache writes with probability $(docv) (0 disables; overrides \
             DPMR_CHAOS).  Output must survive unchanged.")
  in
  let deadline_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-attempt wall-clock deadline for supervised jobs (0 = none).")
  in
  let retries_t =
    Arg.(
      value
      & opt int Supervisor.default_policy.Supervisor.max_retries
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts granted to transiently failing jobs.")
  in
  let backoff_ms_t =
    Arg.(
      value
      & opt float (Supervisor.default_policy.Supervisor.backoff *. 1000.)
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base backoff between retry attempts, milliseconds (doubles per \
                attempt, deterministically jittered).")
  in
  let tier_t =
    Arg.(
      value
      & opt (some (enum [ ("auto", Dpmr_vm.Vm.Tier_auto);
                          ("ref", Dpmr_vm.Vm.Tier_ref);
                          ("lowered", Dpmr_vm.Vm.Tier_lowered);
                          ("compiled", Dpmr_vm.Vm.Tier_compiled) ])) None
      & info [ "tier" ] ~docv:"auto|ref|lowered|compiled"
          ~doc:
            "Force the execution tier (overrides DPMR_TIER): the reference \
             tree-walker, the lowered interpreter only, or closure-compilation \
             of every function at first entry.  Output is byte-identical \
             across tiers.")
  in
  let remote_workers_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "workers" ] ~docv:"HOST:PORT,..."
          ~doc:
            "Scatter cache misses to resident dpmr_serve workers \
             (comma-separated $(i,HOST:PORT) or $(i,unix:PATH) addresses) and \
             gather their verdicts; the local pool remains the degradation \
             path.  Output is byte-identical to a local run.")
  in
  let min_workers_t =
    Arg.(
      value & opt int 0
      & info [ "min-workers" ] ~docv:"N"
          ~doc:
            "Fail jobs (explicit '!' holes, never an aborted batch) instead of \
             running them locally once fewer than $(docv) workers stay \
             healthy.  0 = degrade to local execution silently.")
  in
  let window_t =
    Arg.(
      value & opt int Dispatch.default_policy.Dispatch.window
      & info [ "window" ] ~docv:"N"
          ~doc:"Outstanding chunks per worker (its scatter window).")
  in
  let chunk_t =
    Arg.(
      value & opt int 0
      & info [ "chunk" ] ~docv:"N"
          ~doc:"Jobs per dispatched chunk (0 = size automatically from the \
                batch and worker count).")
  in
  let hedge_ms_t =
    Arg.(
      value
      & opt float (Dispatch.default_policy.Dispatch.hedge_after *. 1000.)
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:"Duplicate a straggling chunk onto a second healthy worker \
                after $(docv) milliseconds; first result wins (0 disables).")
  in
  let go id fig scale seed reps replicas families vote jobs no_cache no_snapshot
      chaos deadline retries backoff_ms telemetry_json tier remote_workers
      min_workers window chunk hedge_ms =
    (match tier with None -> () | Some m -> Dpmr_vm.Vm.set_tier_mode m);
    (match chaos with
    | None -> () (* DPMR_CHAOS, if set, still applies via Chaos.active *)
    | Some "0" -> Chaos.set None
    | Some s -> (
        match Chaos.parse s with
        | Some c -> Chaos.set (Some c)
        | None -> die "bad --chaos %S (want P or P,SEED with 0 < P <= 1)" s));
    let policy =
      let base = Supervisor.default_policy in
      let backoff = Float.max 0. (backoff_ms /. 1000.) in
      {
        Supervisor.max_retries = max 0 retries;
        backoff;
        backoff_max = Float.max base.Supervisor.backoff_max (backoff *. 10.);
        deadline =
          (match deadline with
          | None -> base.Supervisor.deadline
          | Some d when d <= 0. -> None
          | Some d -> Some d);
      }
    in
    let jobs = if jobs <= 0 then Engine.default_jobs () else jobs in
    let dispatcher =
      match remote_workers with
      | None -> None
      | Some spec ->
          let hosts =
            String.split_on_char ',' spec
            |> List.map String.trim
            |> List.filter (fun h -> h <> "")
          in
          if hosts = [] then die "bad --workers %S (want HOST:PORT,...)" spec;
          let dpolicy =
            {
              Dispatch.default_policy with
              Dispatch.base = policy;
              window = max 1 window;
              chunk_jobs = max 0 chunk;
              hedge_after = Float.max 0. (hedge_ms /. 1000.);
              min_workers = max 0 min_workers;
            }
          in
          let timeout =
            (* generous per-socket timeout: a worker that stalls past it is
               treated as down, re-dispatched, and probed back to health *)
            match policy.Supervisor.deadline with
            | Some d -> Float.max 30. (4. *. d)
            | None -> 120.
          in
          Some (Dispatch.create ~policy:dpolicy (Remote.transport ~timeout ()) ~hosts)
    in
    let engine =
      Engine.create ~jobs ~use_cache:(not no_cache)
        ~snapshots:(Sys.getenv_opt "DPMR_NO_SNAPSHOT" = None && not no_snapshot)
        ~policy ?dispatcher ()
    in
    let write_telemetry () =
      match telemetry_json with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc
            (Telemetry.to_json (Engine.telemetry engine) ~workers:(Engine.jobs engine)
               ~cache:(Engine.cache_stats engine)
               ~tier:(Dpmr_vm.Vm.tier_stats ())
               ~plan_memo:(Dpmr_fi.Experiment.diff_memo_stats ())
               ?dispatch:(Engine.dispatcher engine));
          close_out oc
    in
    (* a SIGINT/SIGTERM mid-grid keeps everything finished so far: the
       cache frames reach disk and the telemetry snapshot is written —
       the same wind-down the serving daemon performs on drain *)
    Drain.on_cleanup (fun () ->
        Engine.drain engine;
        write_telemetry ());
    Drain.graceful_exit ();
    let ctx = Figures.create ~scale ~seed ~reps ~replicas ~families ~vote ~engine () in
    (if id = "all" then Figures.run_all ctx
     else if id = "forensics" then
       Figures.forensics ctx (Option.value fig ~default:"fig-3.6")
     else if id = "nversion-surface" then Figures.nversion_surface ctx
     else if List.mem id Figures.ids then Figures.run ctx id
     else die "unknown experiment %S (see 'dpmr list')" id);
    Engine.print_summary engine;
    write_telemetry ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate a paper table/figure ('all' for everything; 'forensics \
             FIG' for a traced fault grid).")
    Term.(
      const go $ id_t $ fig_t $ scale_t $ seed_t $ reps_t $ replicas_t
      $ families_t $ vote_t $ jobs_t $ no_cache_t $ no_snapshot_t $ chaos_t
      $ deadline_t $ retries_t $ backoff_ms_t $ telemetry_json_t $ tier_t
      $ remote_workers_t $ min_workers_t $ window_t $ chunk_t $ hedge_ms_t)

let cache_cmd =
  let action_t =
    Arg.(required
         & pos 0 (some (enum [ ("stats", `Stats); ("verify", `Verify); ("clear", `Clear) ])) None
         & info [] ~docv:"stats|verify|clear")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable output (stats only): one JSON object on stdout.")
  in
  let dir_t =
    Arg.(
      value
      & opt string Cache.default_dir
      & info [ "dir" ] ~docv:"DIR" ~doc:"Cache directory to inspect.")
  in
  let print_disk_stats (s : Cache.disk_stats) =
    Printf.printf "dir     : %s (%d file(s) of %d shards)\n" s.Cache.path s.Cache.files
      Cache.shard_count;
    Printf.printf "entries : %d (%d current, %d stale-salt)\n" s.Cache.total
      s.Cache.current s.Cache.stale;
    Printf.printf "damaged : %d line(s)%s\n" s.Cache.damaged
      (if s.Cache.torn_tail then " + torn tail" else "");
    (* hit rate of the persisted entries: the share a next run can serve
       from cache (stale-salt and damaged lines miss) *)
    let pct part =
      if s.Cache.total = 0 then 0.
      else 100. *. float_of_int part /. float_of_int s.Cache.total
    in
    Printf.printf "rate    : %.1f%% current (servable), %.1f%% stale-salt\n"
      (pct s.Cache.current) (pct s.Cache.stale);
    let populated =
      Array.fold_left
        (fun n (sh : Cache.shard_stats) -> if sh.Cache.sh_records > 0 then n + 1 else n)
        0 s.Cache.per_shard
    in
    let widest =
      Array.fold_left
        (fun m (sh : Cache.shard_stats) -> max m sh.Cache.sh_records)
        0 s.Cache.per_shard
    in
    Printf.printf "shards  : %d/%d populated (largest %d record(s))\n" populated
      Cache.shard_count widest;
    Printf.printf "size    : %d bytes\n" s.Cache.bytes;
    Printf.printf "salt    : %s\n" Job.default_salt
  in
  let go action json dir =
    match action with
    | `Stats ->
        let s = Cache.disk_stats ~dir ~salt:Job.default_salt () in
        if json then print_string (Cache.disk_stats_to_json s) else print_disk_stats s
    | `Verify ->
        (* read-only integrity check: nonzero exit when any line fails
           CRC/format validation or the tail is torn (the next engine run
           would repair it; verify only reports) *)
        let s = Cache.disk_stats ~dir ~salt:Job.default_salt () in
        print_disk_stats s;
        if s.Cache.damaged > 0 || s.Cache.torn_tail then begin
          Printf.printf "verdict : DAMAGED (a supervised run will repair on load)\n";
          exit 1
        end
        else Printf.printf "verdict : clean\n"
    | `Clear ->
        let n = Cache.clear ~dir () in
        Printf.printf "removed %d cached result(s)\n" n
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect (stats), integrity-check (verify) or wipe (clear) the result cache.")
    Term.(const go $ action_t $ json_t $ dir_t)

let trace_cmd =
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace-event / Perfetto JSON to $(docv).")
  in
  let capacity_t =
    Arg.(
      value
      & opt int Forensics.default_capacity
      & info [ "capacity" ] ~docv:"SLOTS"
          ~doc:"Ring capacity in event slots (rounded up to a power of two).")
  in
  let sample_t =
    Arg.(
      value
      & opt int 64
      & info [ "sample" ] ~docv:"N"
          ~doc:"Record one block-retirement event in $(docv) (power of two).")
  in
  let top_t =
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"N" ~doc:"Profile rows to print.")
  in
  let site_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "site" ] ~docv:"N"
          ~doc:
            "Inject a $(b,--kind) fault at site $(docv) before running, and \
             run the forensics pass on the recorded trace.")
  in
  let kind_t =
    let kind_conv =
      Arg.enum [ ("resize", Inject.Heap_array_resize 50); ("free", Inject.Immediate_free) ]
    in
    Arg.(value & opt kind_conv (Inject.Heap_array_resize 50) & info [ "kind" ] ~doc:"resize | free.")
  in
  let print_summary_and_profile records summary top =
    Printf.printf "events  : %d recorded (%d dropped), %d comparison(s), %d detection(s)\n"
      summary.Trace.s_emitted summary.Trace.s_dropped summary.Trace.s_comparisons
      summary.Trace.s_detections;
    print_newline ();
    Fmt.pr "%a" (Export.pp_profile ~top) (Export.profile records)
  in
  let run_go name scale seed mode diversity policy plain kind site capacity sample
      out top =
    let records =
      match site with
      | Some site_idx ->
          (* traced fault-injection run + forensics chain *)
          let wk = Experiment.workload name (fun () -> build_workload name scale) in
          let e = Experiment.make ~seed wk in
          let sites = Experiment.sites e kind in
          let site =
            match List.nth_opt sites site_idx with
            | Some s -> s
            | None -> die "no such site (have %d)" (List.length sites)
          in
          let variant =
            if plain then Experiment.Fi_stdapp (kind, site)
            else Experiment.Fi_dpmr (cfg_of mode diversity policy seed, kind, site)
          in
          let tr = Forensics.run_variant ~capacity ~sample_every:sample e variant in
          Printf.printf "site    : %s\n" (Inject.site_name site);
          Printf.printf "fate    : %s\n" (Forensics.fate tr);
          Fmt.pr "%a" Analysis.pp_report tr.Forensics.report;
          (if not tr.Forensics.consistent then
             Printf.printf "!! trace distance disagrees with classification t2d\n");
          print_summary_and_profile tr.Forensics.records tr.Forensics.summary top;
          tr.Forensics.records
      | None ->
          let sink = Trace.create ~capacity ~sample_every:sample () in
          let prog = build_workload name scale in
          let r =
            Trace.with_sink sink (fun () ->
                if plain then Dpmr.run_plain ~seed prog
                else Dpmr.run_dpmr ~seed (cfg_of mode diversity policy seed) prog)
          in
          Printf.printf "outcome : %s\n" (Outcome.to_string r.Outcome.outcome);
          Printf.printf "cost    : %Ld units\n" r.Outcome.cost;
          let records = Trace.snapshot sink in
          print_summary_and_profile records (Trace.summary sink) top;
          records
    in
    match out with
    | None -> ()
    | Some file ->
        Export.write_chrome_json file records;
        Printf.printf "\ntrace   : %s (open in https://ui.perfetto.dev or chrome://tracing)\n"
          file
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:"Run a workload with the trace sink installed; print cost profiles \
               and optionally export Perfetto JSON.")
      Term.(
        const run_go $ workload_t $ scale_t $ seed_t $ mode_t $ diversity_t
        $ policy_t $ plain_t $ kind_t $ site_t $ capacity_t $ sample_t $ out_t
        $ top_t)
  in
  let validate_go file =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json_check.validate_trace s with
    | Ok n -> Printf.printf "ok: %d trace event(s), schema valid\n" n
    | Error e ->
        Printf.eprintf "invalid trace %s: %s\n" file e;
        exit 1
  in
  let validate_cmd =
    let file_t = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
    Cmd.v
      (Cmd.info "validate"
         ~doc:"Check a JSON file against the Chrome trace-event schema.")
      Term.(const validate_go $ file_t)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Record, export and validate execution traces.")
    [ run_cmd; validate_cmd ]

let list_cmd =
  let go () =
    print_endline "workloads:";
    List.iter
      (fun (e : Workloads.entry) ->
        Printf.printf "  %-8s %s\n" e.Workloads.name e.Workloads.description)
      Workloads.all;
    print_endline "experiments:";
    List.iter
      (fun (id, desc, _) -> Printf.printf "  %-12s %s\n" id desc)
      Figures.all;
    Printf.printf "  %-12s %s\n" "nversion-surface"
      "N-version detection surface over (N, family set, fault model)";
    print_endline "diversity families (--families):";
    List.iter
      (fun n ->
        Printf.printf "  %-14s %s\n" n
          (Option.value ~default:"" (Dpmr_core.Diversity_family.description n)))
      (Dpmr_core.Diversity_family.names ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and experiment ids.") Term.(const go $ const ())

let () =
  (* The interpreter's steady-state allocation is near zero, but variant
     builds (clone + transform + lower per job) churn short-lived blocks;
     a larger minor heap (32 MB vs the 2 MB default, in words) cuts minor
     collections during experiment sweeps. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  (* the standard diversity families must be registered before any
     --families value is validated *)
  Dpmr_nversion.Families.ensure ();
  let info = Cmd.info "dpmr" ~doc:"Diverse Partial Memory Replication reproduction." in
  exit (Cmd.eval (Cmd.group info [ run_cmd; transform_cmd; sites_cmd; inject_cmd; dsa_cmd; recover_cmd; dump_cmd; runfile_cmd; report_cmd; cache_cmd; trace_cmd; list_cmd ]))
