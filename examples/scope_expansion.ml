(* Chapter 5 scope expansion: programs MDS alone must reject — here an
   XOR-linked list, the classic pointers-masquerading-as-integers data
   structure — run under DPMR anyway, with DSA refining the partial
   replica around the unanalyzable memory.

     dune exec examples/scope_expansion.exe *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Scope = Dpmr_dsa.Scope

(* An XOR-linked list stores prev XOR next as an integer — int-to-pointer
   casts are unavoidable when traversing.  Alongside it, a perfectly
   ordinary array keeps full DPMR protection. *)
let build () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  Tenv.define_struct p.Prog.tenv "XNode" [ i64; i64 ] (* value, link = prev^next *);
  let xnode = Struct "XNode" in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  (* build 5 nodes, linking as we go *)
  let n = 5 in
  let prev = B.local b ~name:"prev" i64 (B.i64c 0) in
  let head = B.local b ~name:"head" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 1) ~below:(B.i64c (n + 1)) (fun i ->
      let nd = B.malloc b xnode in
      B.store b i64 (B.mul b W64 i (B.i64c 7)) (B.gep_field b nd 0);
      let addr = B.ptr_to_int b nd in
      (* link of the new node starts as just prev (next unknown yet) *)
      B.store b i64 (B.get b i64 prev) (B.gep_field b nd 1);
      (* fix up the previous node's link: link ^= addr *)
      let pv = B.get b i64 prev in
      let has_prev = B.icmp b Ine W64 pv (B.i64c 0) in
      B.if_ b has_prev (fun () ->
          let pnode = B.int_to_ptr b (Ptr xnode) pv in
          let lslot = B.gep_field b pnode 1 in
          let old = B.load b i64 lslot in
          B.store b i64 (B.binop b Xor W64 old addr) lslot);
      let is_first = B.icmp b Ieq W64 pv (B.i64c 0) in
      B.if_ b is_first (fun () -> B.set b i64 head addr);
      B.set b i64 prev addr);
  (* traverse: sum values *)
  let sum = B.local b ~name:"sum" i64 (B.i64c 0) in
  let cur = B.local b ~name:"cur" i64 (B.get b i64 head) in
  let back = B.local b ~name:"back" i64 (B.i64c 0) in
  B.while_ b
    (fun () -> B.icmp b Ine W64 (B.get b i64 cur) (B.i64c 0))
    (fun () ->
      let c = B.get b i64 cur in
      let nd = B.int_to_ptr b (Ptr xnode) c in
      let v = B.load b i64 (B.gep_field b nd 0) in
      B.set b i64 sum (B.add b W64 (B.get b i64 sum) v);
      let link = B.load b i64 (B.gep_field b nd 1) in
      let nxt = B.binop b Xor W64 link (B.get b i64 back) in
      B.set b i64 back c;
      B.set b i64 cur nxt);
  (* the ordinary, fully protected array *)
  let arr_ = B.malloc b ~name:"plainarr" ~count:(B.i64c 8) i64 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 8) (fun i ->
      B.store b i64 (B.mul b W64 i i) (B.gep_index b arr_ i));
  let s2 = B.local b ~name:"s2" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 8) (fun i ->
      let v = B.load b i64 (B.gep_index b arr_ i) in
      B.set b i64 s2 (B.add b W64 (B.get b i64 s2) v));
  B.call0 b (Direct "print_int") [ B.get b i64 sum ];
  B.call0 b (Direct "putchar") [ B.i32c 32 ];
  B.call0 b (Direct "print_int") [ B.get b i64 s2 ];
  B.call0 b (Direct "print_newline") [];
  B.ret b (Some (B.i32c 0));
  p

let () =
  let p = build () in
  let golden = Dpmr.run_plain p in
  Printf.printf "plain       : %s %s" (Outcome.to_string golden.Outcome.outcome)
    golden.Outcome.output;
  (* MDS alone rejects the int-to-pointer casts *)
  (try ignore (Dpmr.transform { Config.default with Config.mode = Config.Mds } p)
   with Dpmr.Unsupported msg -> Printf.printf "mds alone   : rejected (%s)\n" msg);
  (* DSA + MDS: the XOR list is refined out of the replica, the array keeps
     full protection *)
  let cfg = { Config.default with Config.mode = Config.Mds } in
  let tp, scope = Dpmr_dsa.Dsa_dpmr.transform_with_scope cfg p in
  let vm = Dpmr.vm_dpmr ~mode:Config.Mds tp in
  let r = Dpmr_vm.Vm.run vm in
  Printf.printf "mds + dsa   : %s %s" (Outcome.to_string r.Outcome.outcome) r.Outcome.output;
  Printf.printf "exclusion   : %.0f%% of main's DS nodes left unreplicated\n"
    (100.0 *. Scope.exclusion_ratio scope "main");
  assert (r.Outcome.output = golden.Outcome.output)
