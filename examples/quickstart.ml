(* Quickstart: build a program with the IR builder, run it, transform it
   with DPMR, and watch a buffer overflow get caught.

     dune exec examples/quickstart.exe

   The program builds a linked list of squares and sums it.  The faulty
   variant under-allocates a scratch array and overflows it — silently
   corrupting memory in the plain build, detected by a DPMR load check in
   the instrumented build. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

(* A linked list of the squares 1..n, plus a scratch array the faulty
   variant under-allocates. *)
let build ~buggy =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  Tenv.define_struct p.Prog.tenv "Node" [ i64; Ptr (Struct "Node") ];
  let node = Struct "Node" in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let n = 10 in
  (* scratch array: the bug requests half the needed space *)
  let scratch_len = if buggy then n / 2 else n in
  let scratch = B.malloc b ~name:"scratch" ~count:(B.i64c scratch_len) i64 in
  let head = B.local b ~name:"head" (Ptr node) (B.null node) in
  B.for_ b ~from:(B.i64c 1) ~below:(B.i64c (n + 1)) (fun i ->
      let sq = B.mul b W64 i i in
      (* stash the square in scratch (overflows when buggy) ... *)
      let slot = B.gep_index b scratch (B.sub b W64 i (B.i64c 1)) in
      B.store b i64 sq slot;
      (* ... and prepend a list node holding it *)
      let nd = B.malloc b node in
      B.store b i64 sq (B.gep_field b nd 0);
      B.store b (Ptr node) (B.get b (Ptr node) head) (B.gep_field b nd 1);
      B.set b (Ptr node) head nd);
  (* sum the list *)
  let sum = B.local b ~name:"sum" i64 (B.i64c 0) in
  let cur = B.local b ~name:"cur" (Ptr node) (B.get b (Ptr node) head) in
  B.while_ b
    (fun () ->
      let c = B.get b (Ptr node) cur in
      B.icmp b Ine W64 (B.ptr_to_int b c) (B.i64c 0))
    (fun () ->
      let c = B.get b (Ptr node) cur in
      let v = B.load b i64 (B.gep_field b c 0) in
      B.set b i64 sum (B.add b W64 (B.get b i64 sum) v);
      B.set b (Ptr node) cur (B.load b (Ptr node) (B.gep_field b c 1)));
  B.call0 b (Direct "print_str")
    [ B.bitcast b (Ptr (arr i8 0)) (B.global b ~name:"msg" (arr i8 16) (Prog.Gstring "sum=")) ];
  B.call0 b (Direct "print_int") [ B.get b i64 sum ];
  B.call0 b (Direct "print_newline") [];
  B.ret b (Some (B.i32c 0));
  p

let show tag (r : Outcome.run) =
  Printf.printf "%-28s %-22s %s\n" tag
    (Outcome.to_string r.Outcome.outcome)
    (String.concat "\\n" (String.split_on_char '\n' (String.trim r.Outcome.output)))

let () =
  print_endline "— clean program —";
  let clean = build ~buggy:false in
  show "plain" (Dpmr.run_plain clean);
  let cfg = { Config.default with Config.diversity = Config.Rearrange_heap } in
  show "dpmr (sds, rearrange-heap)" (Dpmr.run_dpmr cfg clean);

  print_endline "\n— buggy program (scratch array under-allocated) —";
  let buggy = build ~buggy:true in
  show "plain" (Dpmr.run_plain buggy);
  show "dpmr (sds, rearrange-heap)" (Dpmr.run_dpmr cfg buggy);
  print_endline
    "\nThe plain build corrupts neighbouring heap objects and fails far\n\
     from the bug (here, a wild-pointer crash during list traversal —\n\
     the overflow overwrote a node's next pointer with the square 100).\n\
     The DPMR build aborts at the first load whose replica disagrees,\n\
     right where the corruption becomes visible."
