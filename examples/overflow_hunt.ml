(* Overflow hunt: the debugging-environment use case of §1.3.

     dune exec examples/overflow_hunt.exe

   Sweeps every heap allocation site of the bzip2 workload with
   heap-array-resize and immediate-free injections, and prints a per-site
   report of what the plain build does versus what DPMR detects. *)

module Config = Dpmr_core.Config
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Workloads = Dpmr_workloads.Workloads

let describe (c : Experiment.classification) =
  if not c.Experiment.sf then "injection never executed"
  else if c.Experiment.co then "correct output"
  else if c.Experiment.ddet then "DPMR DETECTION"
  else if c.Experiment.ndet then "natural detection (crash/exit)"
  else if c.Experiment.timeout then "timeout"
  else "SILENT CORRUPTION"

let () =
  let entry = Workloads.find "bzip2" in
  let wk = Experiment.workload "bzip2" (fun () -> entry.Workloads.build ()) in
  let e = Experiment.make wk in
  let cfg = { Config.default with Config.diversity = Config.Rearrange_heap } in
  List.iter
    (fun kind ->
      Printf.printf "\n== %s ==\n" (Inject.kind_name kind);
      Printf.printf "%-28s %-34s %s\n" "site" "plain build" "dpmr build";
      List.iter
        (fun site ->
          let plain = Experiment.run_variant e (Experiment.Fi_stdapp (kind, site)) in
          let dpmr = Experiment.run_variant e (Experiment.Fi_dpmr (cfg, kind, site)) in
          Printf.printf "%-28s %-34s %s\n" (Inject.site_name site) (describe plain)
            (describe dpmr))
        (Experiment.sites e kind))
    [ Inject.Heap_array_resize 50; Inject.Immediate_free ]
