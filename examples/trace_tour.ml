(* Execution-tracing tour (lib/trace).

     dune exec examples/trace_tour.exe

   Injects one heap-array-resize fault into the art workload, records
   the run through a trace sink, and prints the corruption→detection
   chain the forensics pass reconstructs from the event stream: the
   undersized reallocation, the first store that lands outside any live
   chunk payload, the replica comparison that fired, and the instruction
   distance from injection to detection — which must equal the
   classification's t2d (Equation 3.4) exactly.

   The first half shows the pay-for-use contract: the same DPMR run with
   no sink installed records nothing and allocates nothing per event. *)

module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Trace = Dpmr_trace.Trace
module Analysis = Dpmr_trace.Forensics
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Forensics = Dpmr_fi.Forensics
module Workloads = Dpmr_workloads.Workloads

let () =
  let entry = Workloads.find "art" in
  let wk =
    Experiment.workload "art" (fun () -> entry.Workloads.build ?scale:None ())
  in
  let cfg = { Config.default with Config.mode = Config.Sds } in

  (* 1. No sink installed: the instrumented VM runs exactly as before,
     paying one pointer test per would-be event. *)
  Fmt.pr "=== untraced DPMR run (pay-for-use: no sink, no events) ===@.";
  let r = Dpmr.run_dpmr cfg (wk.Experiment.build ()) in
  Fmt.pr "outcome %s, cost %Ld units — and no trace exists@.@."
    (Dpmr_vm.Outcome.to_string r.Dpmr_vm.Outcome.outcome)
    r.Dpmr_vm.Outcome.cost;

  (* 2. Same workload, one heap-array-resize fault, traced. *)
  Fmt.pr "=== traced fault-injection run ===@.";
  let e = Experiment.make wk in
  let kind = Inject.Heap_array_resize 50 in
  let site = List.hd (Experiment.sites e kind) in
  Fmt.pr "injecting heap-array-resize 50%% at %s@." (Inject.site_name site);
  let tr =
    Forensics.run_variant e (Experiment.Fi_dpmr (cfg, kind, site))
  in
  Fmt.pr "fate    : %s@." (Forensics.fate tr);
  Fmt.pr "%a" Analysis.pp_report tr.Forensics.report;
  let s = tr.Forensics.summary in
  Fmt.pr "events  : %d recorded (%d dropped), %d comparison(s)@."
    s.Trace.s_emitted s.Trace.s_dropped s.Trace.s_comparisons;
  (match (tr.Forensics.distance, tr.Forensics.classification.Experiment.t2d) with
  | Some d, Some t2d ->
      Fmt.pr "cross-check : trace distance %d vs Metrics t2d %Ld — %s@." d t2d
        (if tr.Forensics.consistent then "equal" else "MISMATCH")
  | _ -> ());

  (* 3. The corruption→detection chain, event by event: every recorded
     event between the injection mark and the detection that touches the
     corrupted chunk. *)
  (match tr.Forensics.report.Analysis.corruption with
  | Some (Analysis.Undersized_malloc { addr; granted; _ }) ->
      let lo = addr and hi = Int64.add addr (Int64.of_int granted) in
      let touches a =
        Int64.unsigned_compare a (Int64.sub lo 16L) >= 0
        && Int64.unsigned_compare a (Int64.add hi 16L) < 0
      in
      Fmt.pr "@.chain (events touching chunk 0x%Lx..0x%Lx):@." lo hi;
      let shown = ref 0 and after_mark = ref false in
      Array.iter
        (fun (r : Trace.record) ->
          match r.Trace.ev with
          | Trace.Fi_mark -> after_mark := true
          | Trace.Malloc { addr = a; _ }
          | Trace.Free { addr = a; _ }
          | Trace.Store { addr = a; _ }
          | Trace.Write { addr = a; _ }
            when !after_mark && !shown < 12 && touches a ->
              incr shown;
              Fmt.pr "  %a@." Trace.pp_record r
          | Trace.Detect _ ->
              if !after_mark then Fmt.pr "  %a@." Trace.pp_record r
          | _ -> ())
        tr.Forensics.records
  | _ -> ())
