(* Figure 1.2: Diverse Partial Replication applied to a race condition.

     dune exec examples/banking_race.exe

   DPMR is one instance of the broader DPR family (§1.2): replicate the
   part of the system the fault model touches, diversify the replica, and
   compare.  This example realizes the dissertation's banking scenario:
   requests to the same account must be processed in arrival order; a
   faulty implementation lets worker threads race.  The partial replica is
   the account state plus the threaded execution, and the diversity
   transformation is a *diversified scheduler* — if a racy interleaving
   changes the outcome, the two executions' balances disagree.

   (This demo is plain OCaml rather than IR: the point is the DPR recipe,
   not the memory-error machinery.) *)

type request = Deposit of int | Withdraw of int

(* The faulty banking system: two workers pull from a shared queue; the
   scheduler decides who runs next.  Overdrawn accounts pay a $15 fee. *)
let run_system ~schedule requests =
  let balance = ref 100 in
  let queue = Queue.of_seq (List.to_seq requests) in
  let workers = Array.make 2 None in
  let step worker =
    match workers.(worker) with
    | Some r ->
        (* finish the in-flight request *)
        (match r with
        | Deposit a -> balance := !balance + a
        | Withdraw a ->
            balance := !balance - a;
            if !balance < 0 then balance := !balance - 15);
        workers.(worker) <- None
    | None -> if not (Queue.is_empty queue) then workers.(worker) <- Some (Queue.pop queue)
  in
  List.iter step schedule;
  (* drain *)
  for w = 0 to 1 do
    step w;
    step w
  done;
  !balance

let () =
  let requests = [ Deposit 200; Withdraw 250 ] in
  (* Original faulty execution: worker 1 grabs X (the deposit) but worker 2
     completes Y (the withdrawal) first — the out-of-order interleaving of
     Figure 1.2(a).  Withdrawing 250 from 100 overdraws: $15 penalty. *)
  let original = run_system ~schedule:[ 0; 1; 1; 0 ] requests in
  (* Diverse replica execution: the diversified scheduler runs each worker
     to completion before the next dispatch — Figure 1.2(b)'s order. *)
  let replica = run_system ~schedule:[ 0; 0; 1; 1 ] requests in
  Printf.printf "original execution balance : $%d\n" original;
  Printf.printf "diverse replica balance    : $%d\n" replica;
  if original <> replica then
    print_endline
      "MISMATCH: the race manifested differently under the diversified\n\
       scheduler — DPR detects the ordering violation."
  else print_endline "balances agree: no race observed";
  assert (original <> replica)
