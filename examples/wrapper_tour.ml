(* External code support tour (§2.8, §3.1.5).

     dune exec examples/wrapper_tour.exe

   A program that leans on external functions — strcpy, strcmp, strlen,
   memcpy, qsort, printf — run plain, under SDS and under MDS.  The
   transformed builds route every call through the corresponding external
   function wrapper, which performs the replica stores and load checks the
   external function itself cannot.  The second half plants a corruption
   in replica memory and shows a *wrapper* check (not a load check in
   transformed code) catching it via strcpy's source comparison. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

let build () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let str8 = Ptr (arr i8 0) in
  (* strings *)
  let hello = B.bitcast b str8 (B.global b ~name:"hello" (arr i8 8) (Prog.Gstring "replica")) in
  let buf = B.bitcast b str8 (B.malloc b ~count:(B.i64c 32) i8) in
  ignore (B.call b (Direct "strcpy") [ buf; hello ]);
  let len = B.call1 b (Direct "strlen") [ buf ] in
  let cmp = B.call1 b (Direct "strcmp") [ buf; hello ] in
  (* memcpy a chunk of ints *)
  let src = B.malloc b ~count:(B.i64c 4) i64 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 4) (fun i ->
      B.store b i64 (B.mul b W64 i (B.i64c 3)) (B.gep_index b src i));
  let dst = B.malloc b ~count:(B.i64c 4) i64 in
  ignore
    (B.call b (Direct "memcpy")
       [ B.bitcast b str8 dst; B.bitcast b str8 src; B.i64c 32 ]);
  (* qsort the copy, descending *)
  let bq =
    B.create p ~name:"desc" ~params:[ ("a", str8); ("b", str8) ] ~ret:i32 ()
  in
  let va = B.load bq i64 (B.bitcast bq (Ptr i64) (B.param bq 0)) in
  let vb = B.load bq i64 (B.bitcast bq (Ptr i64) (B.param bq 1)) in
  let lt = B.icmp bq Islt W64 va vb in
  let gt = B.icmp bq Isgt W64 va vb in
  B.ret bq (Some (B.int_cast bq W32 (B.sub bq W8 lt gt)));
  B.call0 b (Direct "qsort") [ B.bitcast b str8 dst; B.i64c 4; B.i64c 8; Fun_addr "desc" ];
  (* printf everything *)
  let fmt =
    B.bitcast b str8
      (B.global b ~name:"fmt" (arr i8 32) (Prog.Gstring "%s len=%d cmp=%d top=%d\n"))
  in
  let top = B.load b i64 (B.gep_index b dst (B.i64c 0)) in
  ignore
    (B.call b (Direct "printf") [ fmt; buf; len; B.int_cast b W64 cmp; top ]);
  B.ret b (Some (B.i32c 0));
  p

let show tag (r : Outcome.run) =
  Printf.printf "%-8s %-12s %s" tag (Outcome.to_string r.Outcome.outcome) r.Outcome.output;
  if r.Outcome.output = "" then print_newline ()

let () =
  let p = build () in
  show "plain" (Dpmr.run_plain p);
  show "sds" (Dpmr.run_dpmr { Config.default with Config.mode = Config.Sds } p);
  show "mds" (Dpmr.run_dpmr { Config.default with Config.mode = Config.Mds } p);
  print_endline "\n— wrapper-side detection —";
  (* Plant a divergence: a buggy store that hits application memory but is
     modelled as missing its replica update (we simulate external-code
     corruption by poking simulated memory between setup and strcpy). *)
  let cfg = { Config.default with Config.mode = Config.Sds } in
  let tp = Dpmr.transform cfg p in
  let vm = Dpmr.vm_dpmr ~mode:Config.Sds tp in
  (* corrupt one byte of the replica of the "hello" global before main *)
  let addr = Hashtbl.find vm.Dpmr_vm.Vm.global_addr "hello.rep" in
  Dpmr_memsim.Mem.write_u8 vm.Dpmr_vm.Vm.mem addr (Char.code 'X');
  let r = Dpmr_vm.Vm.run vm in
  Printf.printf "after corrupting hello.rep : %s\n" (Outcome.to_string r.Outcome.outcome);
  print_endline "strcpy_efw's source comparison (Figure 2.11) caught the divergence."
