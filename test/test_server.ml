(* Serving-daemon tests (lib/server): wire-protocol round-trips
   (hand-written cases and qcheck encode∘decode = id over random
   requests/responses), framing over a real socketpair, token-bucket
   quotas, IR registration, and one end-to-end daemon exercising the
   socket path: boot on a Unix socket in a temp dir, serve golden /
   no-fault / fault-injected / forensics requests, compare verdicts
   against the in-process engine, then drain. *)

module Config = Dpmr_core.Config
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Engine = Dpmr_engine.Engine
module Protocol = Dpmr_server.Protocol
module Session = Dpmr_server.Session
module Server = Dpmr_server.Server
module Client = Dpmr_server.Client

let in_tmp_dir f =
  let dir = Filename.temp_file "dpmr_server_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cwd = Sys.getcwd () in
  Sys.chdir dir;
  Fun.protect ~finally:(fun () -> Sys.chdir cwd) (fun () -> f dir)

(* ---- protocol round-trips ---- *)

let sample_runs =
  [
    Protocol.default_run;
    { Protocol.default_run with Protocol.golden = true; workload = "bzip2" };
    {
      Protocol.default_run with
      Protocol.kind = Some (Inject.Heap_array_resize 75);
      site = 3;
      mode = Config.Mds;
      diversity = Config.Pad_malloc 16;
      policy = Config.Temporal 0xff00L;
      forensics = true;
    };
    {
      Protocol.default_run with
      Protocol.kind = Some (Inject.Wild_store (-8));
      plain = true;
      diversity = Config.Pad_alloca 4;
      policy = Config.Static 0.25;
      budget = 123456789L;
      exp_seed = -1L;
      run_seed = Int64.max_int;
    };
    (* an explicit site reference (the dispatcher ships resolved sites) *)
    {
      Protocol.default_run with
      Protocol.kind = Some Inject.Immediate_free;
      site_ref = Some { Inject.func = "main"; block = "bb \"7\""; index = 12 };
      budget = 1000L;
    };
  ]

let sample_requests =
  List.mapi (fun i p -> { Protocol.rid = i; body = Protocol.Run p }) sample_runs
  @ [
      { Protocol.rid = 99; body = Protocol.Hello "tester \"quoted\" \n end" };
      { Protocol.rid = 100; body = Protocol.Register "func @main() {\n  ret\n}\n" };
      { Protocol.rid = 0; body = Protocol.Stats };
      { Protocol.rid = 7; body = Protocol.Drain };
      { Protocol.rid = 8; body = Protocol.Ping };
    ]

let sample_cls =
  {
    Experiment.sf = true;
    co = false;
    ndet = false;
    ddet = true;
    timeout = false;
    t2d = Some 1234L;
    cost = 987654321L;
    peak_heap = 8192;
  }

let sample_responses =
  [
    {
      Protocol.rrid = 1;
      reply =
        Protocol.Verdict
          { Protocol.cls = sample_cls; cached = true; wall_us = 42; vforensics = None };
    };
    {
      Protocol.rrid = 2;
      reply =
        Protocol.Verdict
          {
            Protocol.cls = { sample_cls with Experiment.t2d = None; timeout = true };
            cached = false;
            wall_us = 0;
            vforensics = Some "{\"schema\":\"dpmr-forensics/1\"}";
          };
    };
    { Protocol.rrid = 3; reply = Protocol.Registered "@ir/0123456789abcdef" };
    { Protocol.rrid = 4; reply = Protocol.Stats_json "{\"served\": 1}" };
    { Protocol.rrid = 5; reply = Protocol.Ack "pong" };
    {
      Protocol.rrid = 6;
      reply = Protocol.Error (Protocol.Quota, "rate limit \"exceeded\"\n");
    };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req' ->
          Alcotest.(check bool) "request round-trips" true (req = req')
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok resp' ->
          Alcotest.(check bool) "response round-trips" true (resp = resp')
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    sample_responses

let test_version_check () =
  let bumped =
    Printf.sprintf "{\"v\":%d,\"id\":1,\"t\":\"ping\"}" (Protocol.version + 1)
  in
  (match Protocol.decode_request bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version must be rejected");
  match Protocol.decode_request "{\"id\":1,\"t\":\"ping\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing version must be rejected"

(* qcheck: encode∘decode = id over random run requests *)

let gen_run =
  let open QCheck.Gen in
  let gen_kind =
    oneof
      [
        return None;
        return (Some Inject.Immediate_free);
        return (Some Inject.Off_by_one);
        map (fun p -> Some (Inject.Heap_array_resize p)) (int_range 1 99);
        map (fun o -> Some (Inject.Wild_store o)) (int_range (-64) 64);
      ]
  in
  let gen_div =
    oneof
      [
        return Config.No_diversity;
        return Config.Zero_before_free;
        return Config.Rearrange_heap;
        map (fun n -> Config.Pad_malloc n) (int_range 1 64);
        map (fun n -> Config.Pad_alloca n) (int_range 1 64);
      ]
  in
  let gen_policy =
    oneof
      [
        return Config.All_loads;
        map (fun m -> Config.Temporal m) (map Int64.of_int int);
        (* [Static] uses a hex float atom: any float round-trips *)
        map (fun f -> Config.Static f) (float_bound_inclusive 1.);
      ]
  in
  let gen_i64 = map Int64.of_int int in
  gen_kind >>= fun kind ->
  gen_div >>= fun diversity ->
  gen_policy >>= fun policy ->
  gen_i64 >>= fun exp_seed ->
  gen_i64 >>= fun run_seed ->
  gen_i64 >>= fun cfg_seed ->
  map Int64.abs gen_i64 >>= fun budget ->
  oneofl [ "art"; "bzip2"; "equake"; "mcf"; "@ir/0011223344556677" ]
  >>= fun workload ->
  int_range 1 8 >>= fun scale ->
  int_range 0 30 >>= fun site ->
  bool >>= fun golden ->
  bool >>= fun plain ->
  bool >>= fun forensics ->
  oneofl [ Config.Sds; Config.Mds ] >>= fun mode ->
  oneof
    [
      return None;
      map3
        (fun func block index -> Some { Inject.func; block; index })
        (oneofl [ "main"; "compress"; "f0" ])
        (oneofl [ "entry"; "bb3"; "loop.body" ])
        (int_range 0 99);
    ]
  >>= fun site_ref ->
  int_range 1 4 >>= fun replicas ->
  oneofl
    [ []; [ "pad-jitter" ]; [ "layout-perm"; "alloc-shuffle" ]; [ "segment-base" ] ]
  >>= fun families ->
  oneofl [ Config.Any_mismatch; Config.Majority ] >>= fun vote ->
  return
    {
      Protocol.workload;
      scale;
      exp_seed;
      run_seed;
      budget;
      golden;
      plain;
      kind;
      site;
      site_ref;
      mode;
      diversity;
      policy;
      cfg_seed;
      replicas;
      families;
      vote;
      forensics;
    }

let arb_request =
  QCheck.make
    ~print:(fun r -> Protocol.encode_request r)
    QCheck.Gen.(
      map2
        (fun rid p -> { Protocol.rid; body = Protocol.Run p })
        (int_range 0 1_000_000) gen_run)

let test_qcheck_roundtrip =
  QCheck.Test.make ~name:"protocol: encode/decode request = id" ~count:300
    arb_request (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

(* ---- framing over a real socket ---- *)

let test_framing_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payloads = [ ""; "x"; String.make 70_000 'y'; "{\"v\":1}" ] in
  let writer = Domain.spawn (fun () -> List.iter (Protocol.write_frame a) payloads) in
  List.iter
    (fun expect ->
      match Protocol.read_frame b with
      | Some got -> Alcotest.(check string) "frame round-trips" expect got
      | None -> Alcotest.fail "unexpected EOF")
    payloads;
  Domain.join writer;
  Unix.close a;
  Alcotest.(check (option string)) "clean EOF reads as None" None
    (Protocol.read_frame b);
  Unix.close b

(* ---- token bucket ---- *)

let test_quota () =
  let s = Session.create ~quota_rps:1000. ~quota_burst:5 () in
  let admitted = List.init 20 (fun _ -> Session.admit s) in
  let yes = List.length (List.filter Fun.id admitted) in
  Alcotest.(check bool) "burst admitted, overflow rejected" true (yes >= 5 && yes < 20);
  Alcotest.(check int) "rejections counted" (20 - yes) s.Session.rejected;
  (* refill: after 10ms at 1000 rps there are tokens again *)
  Unix.sleepf 0.02;
  Alcotest.(check bool) "bucket refills" true (Session.admit s);
  let unlimited = Session.create () in
  Alcotest.(check bool) "rate 0 = unlimited" true
    (List.for_all Fun.id (List.init 100 (fun _ -> Session.admit unlimited)))

(* ---- IR registration ---- *)

let test_register_ir () =
  let src = Dpmr_ir.Text.emit (Dpmr_workloads.Micro.linked_list ()) in
  match Session.register_ir src with
  | Error msg -> Alcotest.failf "valid IR rejected: %s" msg
  | Ok name ->
      Alcotest.(check bool) "content-addressed name" true
        (String.length name = 20 && String.sub name 0 4 = "@ir/");
      (match Session.register_ir src with
      | Ok name' -> Alcotest.(check string) "same source, same name" name name'
      | Error msg -> Alcotest.failf "re-registration failed: %s" msg);
      (match Session.register_ir "func @main( {" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage IR accepted");
      (* the registered name runs through the ordinary workload path *)
      let entry = Dpmr_workloads.Workloads.find name in
      let prog = entry.Dpmr_workloads.Workloads.build ~scale:1 () in
      let r = Dpmr_core.Dpmr.run_plain ~seed:1L prog in
      Alcotest.(check bool) "registered program runs" true
        (Int64.compare r.Dpmr_vm.Outcome.cost 0L > 0)

(* ---- end-to-end daemon ---- *)

let run_req workload variant_kind =
  {
    Protocol.default_run with
    Protocol.workload;
    exp_seed = 42L;
    run_seed = 43L;
    cfg_seed = 42L;
    golden = (variant_kind = `Golden);
    kind = (match variant_kind with `Fi k -> Some k | _ -> None);
  }

let expect_verdict = function
  | Protocol.Verdict v -> v
  | Protocol.Error (code, msg) ->
      Alcotest.failf "request rejected (%s): %s" (Protocol.error_code_to_string code)
        msg
  | _ -> Alcotest.fail "expected a verdict"

let test_daemon_end_to_end () =
  in_tmp_dir @@ fun dir ->
  let engine =
    Engine.create ~jobs:2 ~use_cache:true ~cache_dir:(Filename.concat dir "cache")
      ~resident:true ()
  in
  let sock = Filename.concat dir "t.sock" in
  let cfg = { Server.default_config with Server.listen = Server.Unix_sock sock } in
  let t = Server.create ~cfg engine in
  let ready = Atomic.make false in
  let srv = Domain.spawn (fun () -> Server.serve ~ready:(fun () -> Atomic.set ready true) t) in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  let c = Client.connect_unix sock in
  (match Client.hello c "test_server" with
  | Protocol.Ack _ -> ()
  | _ -> Alcotest.fail "hello not acked");
  (* golden, DPMR no-fault, fault-injected: each answered and each equal
     to the same spec computed through the in-process resolution path *)
  List.iter
    (fun p ->
      let v = expect_verdict (Client.run c p) in
      let local = expect_verdict (Server.run_one t p) in
      Alcotest.(check bool) "socket verdict = in-process verdict" true
        (v.Protocol.cls = local.Protocol.cls))
    [
      run_req "mcf" `Golden;
      run_req "mcf" `Nofi;
      run_req "mcf" (`Fi Inject.Immediate_free);
      run_req "art" (`Fi (Inject.Heap_array_resize 50));
    ];
  (* repeat submission is served from the federated cache *)
  let v = expect_verdict (Client.run c (run_req "mcf" `Nofi)) in
  Alcotest.(check bool) "repeat submission hits the cache" true v.Protocol.cached;
  (* forensics riders carry a report *)
  let vf =
    expect_verdict
      (Client.run c { (run_req "mcf" (`Fi Inject.Immediate_free)) with
                      Protocol.forensics = true })
  in
  (match vf.Protocol.vforensics with
  | Some j ->
      Alcotest.(check bool) "forensics JSON has schema marker" true
        (let sub = "dpmr-forensics/1" in
         let rec find i =
           i + String.length sub <= String.length j
           && (String.sub j i (String.length sub) = sub || find (i + 1))
         in
         find 0)
  | None -> Alcotest.fail "forensics requested but absent");
  (* unknown workloads are a typed error, not a hangup *)
  (match Client.run c { Protocol.default_run with Protocol.workload = "nope" } with
  | Protocol.Error (Protocol.Unknown_workload, _) -> ()
  | Protocol.Error (code, msg) ->
      Alcotest.failf "wrong error (%s): %s" (Protocol.error_code_to_string code) msg
  | _ -> Alcotest.fail "unknown workload must be rejected");
  (* register textual IR, then run it by its minted name *)
  (match Client.register c (Dpmr_ir.Text.emit (Dpmr_workloads.Micro.binary_tree ())) with
  | Protocol.Registered name ->
      let v =
        expect_verdict
          (Client.run c { Protocol.default_run with Protocol.workload = name })
      in
      Alcotest.(check bool) "registered program produces a verdict" true
        (Int64.compare v.Protocol.cls.Experiment.cost 0L > 0)
  | _ -> Alcotest.fail "registration failed");
  (* stats are JSON with our schema marker *)
  (match Client.stats c with
  | Protocol.Stats_json j ->
      Alcotest.(check bool) "stats mention the schema" true
        (String.length j > 0 && j.[0] = '{')
  | _ -> Alcotest.fail "stats failed");
  (* drain: acked, then new runs are refused, then the server exits *)
  (match Client.drain c with
  | Protocol.Ack _ -> ()
  | _ -> Alcotest.fail "drain not acked");
  (match Client.run c (run_req "mcf" `Nofi) with
  | Protocol.Error (Protocol.Draining, _) -> ()
  | _ -> Alcotest.fail "draining server must refuse runs");
  Client.close c;
  Domain.join srv;
  Alcotest.(check bool) "socket removed on drain" false (Sys.file_exists sock);
  Engine.close engine

let boot ?(cfg = Server.default_config) dir name =
  let engine =
    Engine.create ~jobs:2 ~use_cache:true
      ~cache_dir:(Filename.concat dir (name ^ ".cache"))
      ~resident:true ()
  in
  let sock = Filename.concat dir (name ^ ".sock") in
  let cfg = { cfg with Server.listen = Server.Unix_sock sock } in
  let t = Server.create ~cfg engine in
  let ready = Atomic.make false in
  let d = Domain.spawn (fun () -> Server.serve ~ready:(fun () -> Atomic.set ready true) t) in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  (t, d, engine, sock)

let stop (t, d, engine, _) =
  Server.request_drain t;
  Domain.join d;
  Engine.close engine

let test_batch_round_trip () =
  in_tmp_dir @@ fun dir ->
  let ((t, _, _, sock) as srv) = boot dir "batch" in
  Fun.protect ~finally:(fun () -> stop srv) @@ fun () ->
  let c = Client.connect_unix sock in
  let params =
    [
      run_req "mcf" `Golden;
      run_req "mcf" `Nofi;
      { Protocol.default_run with Protocol.workload = "nope" };
      run_req "mcf" (`Fi Inject.Immediate_free);
    ]
  in
  let replies = Client.run_batch c params in
  Alcotest.(check int) "one reply per batch item" (List.length params)
    (List.length replies);
  List.iteri
    (fun i (p, reply) ->
      match (i, reply) with
      | 2, Protocol.Error (Protocol.Unknown_workload, _) -> ()
      | 2, _ -> Alcotest.fail "bad batch item must fail alone, in its slot"
      | _, _ ->
          let v = expect_verdict reply in
          let local = expect_verdict (Server.run_one t p) in
          Alcotest.(check bool)
            (Printf.sprintf "batch verdict %d = in-process verdict" i)
            true
            (v.Protocol.cls = local.Protocol.cls))
    (List.combine params replies);
  (* a zero-length batch header is malformed: typed error, not a hang *)
  (match Client.call c (Protocol.Batch 0) with
  | Protocol.Error (Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "empty batch header must be rejected");
  Client.close c

let test_max_conns_busy () =
  in_tmp_dir @@ fun dir ->
  let ((_, _, _, sock) as srv) =
    boot ~cfg:{ Server.default_config with Server.max_conns = 1 } dir "busy"
  in
  Fun.protect ~finally:(fun () -> stop srv) @@ fun () ->
  let c1 = Client.connect_unix sock in
  (match Client.hello c1 "first" with
  | Protocol.Ack _ -> ()
  | _ -> Alcotest.fail "first connection must be served");
  (* the second connection is told why, with a typed error — never a
     silent hangup.  The refusal frame is pushed at accept time, so read
     it without writing (the server end is already closed). *)
  let c2 = Client.connect_unix sock in
  (match c2.Client.fd with
  | None -> Alcotest.fail "over-limit client lost its socket"
  | Some fd -> (
      match Protocol.read_frame fd with
      | Some payload -> (
          match Protocol.decode_response payload with
          | Ok { Protocol.reply = Protocol.Error (Protocol.Busy, msg); _ } ->
              Alcotest.(check bool) "mentions the limit" true (String.length msg > 0)
          | Ok _ -> Alcotest.fail "over-limit client must get a Busy error"
          | Error e -> Alcotest.failf "malformed refusal frame: %s" e)
      | None -> Alcotest.fail "over-limit client must get a Busy frame, not a hangup"));
  Client.close c2;
  (* capacity frees when the first client leaves *)
  Client.close c1;
  let rec retry n =
    let c3 = Client.connect_unix sock in
    match Client.ping c3 with
    | Protocol.Ack _ -> Client.close c3
    | _ when n > 0 ->
        Client.close c3;
        Unix.sleepf 0.02;
        retry (n - 1)
    | _ -> Alcotest.fail "slot must free after disconnect"
  in
  retry 100

let test_client_reconnect () =
  (* a crashy mini-server: hangs up on its first two requests without
     replying, then serves pings properly.  A client with a reconnect
     budget must retransmit through both crashes; one without must
     fail fast. *)
  in_tmp_dir @@ fun dir ->
  let sock = Filename.concat dir "crashy.sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 8;
  let srv =
    Domain.spawn (fun () ->
        (* two abrupt hangups *)
        for _ = 1 to 2 do
          let cfd, _ = Unix.accept lfd in
          ignore (Protocol.read_frame cfd);
          Unix.close cfd
        done;
        (* then an honest ping server *)
        let cfd, _ = Unix.accept lfd in
        let rec loop () =
          match Protocol.read_frame cfd with
          | None -> ()
          | Some payload ->
              (match Protocol.decode_request payload with
              | Ok { Protocol.rid; body = Protocol.Ping } ->
                  Protocol.write_frame cfd
                    (Protocol.encode_response
                       { Protocol.rrid = rid; reply = Protocol.Ack "pong" })
              | _ -> ());
              loop ()
        in
        loop ();
        Unix.close cfd;
        Unix.close lfd)
  in
  let c = Client.connect_unix ~reconnect:5 sock in
  (match Client.ping c with
  | Protocol.Ack _ -> ()
  | _ -> Alcotest.fail "ping must survive two server crashes via reconnect");
  Client.close c;
  Domain.join srv

let test_client_no_reconnect_fails_fast () =
  in_tmp_dir @@ fun dir ->
  let sock = Filename.concat dir "once.sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 8;
  let srv =
    Domain.spawn (fun () ->
        let cfd, _ = Unix.accept lfd in
        ignore (Protocol.read_frame cfd);
        Unix.close cfd;
        Unix.close lfd)
  in
  let c = Client.connect_unix sock in
  (match Client.ping c with
  | exception (Protocol.Closed | Unix.Unix_error _) -> ()
  | _ -> Alcotest.fail "default client must surface the hangup");
  Client.close c;
  Domain.join srv

let suites =
  [
    ( "server/protocol",
      [
        Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
        Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
        Alcotest.test_case "version check" `Quick test_version_check;
        QCheck_alcotest.to_alcotest test_qcheck_roundtrip;
        Alcotest.test_case "framing over socketpair" `Quick test_framing_socketpair;
      ] );
    ( "server/session",
      [
        Alcotest.test_case "token bucket" `Quick test_quota;
        Alcotest.test_case "register IR" `Quick test_register_ir;
      ] );
    ( "server/daemon",
      [
        Alcotest.test_case "end to end over unix socket" `Quick test_daemon_end_to_end;
        Alcotest.test_case "batch round-trip" `Quick test_batch_round_trip;
        Alcotest.test_case "max-conns refuses with busy" `Quick test_max_conns_busy;
        Alcotest.test_case "client reconnects through crashes" `Quick
          test_client_reconnect;
        Alcotest.test_case "client without budget fails fast" `Quick
          test_client_no_reconnect_fails_fast;
      ] );
  ]
