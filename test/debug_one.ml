(* scratch debugging executable (kept for development; not part of the
   test suite) *)
let () = print_endline "dpmr debug scratch"
