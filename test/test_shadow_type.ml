(* Shadow and augmented type tests: Tables 2.1–2.5 and 4.1/4.2, including
   the worked examples of Tables 2.2 and 2.4. *)

open Dpmr_ir
open Types
module St = Dpmr_core.Shadow_type
module Config = Dpmr_core.Config

let mk_ctx ?(mode = Config.Sds) () =
  let tenv = Tenv.create () in
  (tenv, St.create tenv mode)

let fields_of tenv = function
  | Struct n | Union n -> Tenv.fields tenv n
  | t -> Alcotest.failf "expected named aggregate, got %a" Types.pp t

(* ---- Table 2.2, example 1: int8[]* ---- *)
let test_st_byte_array_ptr () =
  let tenv, ctx = mk_ctx () in
  let t = Ptr (arr i8 0) in
  match St.st ctx t with
  | Some s ->
      let fs = fields_of tenv s in
      Alcotest.(check int) "two fields" 2 (List.length fs);
      Alcotest.(check bool) "rop has original type" true (List.nth fs 0 = t);
      Alcotest.(check bool) "nsop is void*" true (List.nth fs 1 = St.void_ptr)
  | None -> Alcotest.fail "st(int8[]*) must not be null"

(* ---- Table 2.2, example 2: int8[]** builds on int8[]* ---- *)
let test_st_byte_array_ptr_ptr () =
  let tenv, ctx = mk_ctx () in
  let inner = Ptr (arr i8 0) in
  let t = Ptr inner in
  let st_inner = Option.get (St.st ctx inner) in
  match St.st ctx t with
  | Some s ->
      let fs = fields_of tenv s in
      Alcotest.(check bool) "rop type" true (List.nth fs 0 = t);
      Alcotest.(check bool) "nsop points at inner shadow" true
        (List.nth fs 1 = Ptr st_inner)
  | None -> Alcotest.fail "st must not be null"

(* ---- Table 2.2, example 3: recursive LinkedList ---- *)
let test_st_linked_list () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "LinkedList" [ i32; Ptr (Struct "LinkedList") ];
  match St.st ctx (Struct "LinkedList") with
  | Some s -> (
      let fs = fields_of tenv s in
      (* the int32 data field drops out; only nxt's pair remains *)
      Alcotest.(check int) "one field" 1 (List.length fs);
      let pair = fields_of tenv (List.hd fs) in
      Alcotest.(check bool) "rop: LinkedList*" true
        (List.nth pair 0 = Ptr (Struct "LinkedList"));
      (* nsop recursion: points back at the shadow type itself *)
      match List.nth pair 1 with
      | Ptr inner -> Alcotest.(check bool) "nsop recursive" true (inner = s)
      | t -> Alcotest.failf "nsop should be a pointer, got %a" Types.pp t)
  | None -> Alcotest.fail "st(LinkedList) must not be null"

(* ---- Table 2.2, example 4: struct file with multiple pointers ---- *)
let test_st_file_struct () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "dir" [];
  Tenv.define_struct tenv "file" [ Ptr (arr i8 0); i32; Ptr (Struct "dir") ];
  match St.st ctx (Struct "file") with
  | Some s ->
      let fs = fields_of tenv s in
      (* name pair + parent pair; the int32 size drops *)
      Alcotest.(check int) "two pair fields" 2 (List.length fs);
      List.iter
        (fun f -> Alcotest.(check int) "pair" 2 (List.length (fields_of tenv f)))
        fs
  | None -> Alcotest.fail "st(file) must not be null"

let test_st_nulls () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "plain" [ i32; Float; arr i64 4 ];
  Alcotest.(check bool) "st(i32) = null" true (St.st ctx i32 = None);
  Alcotest.(check bool) "st(f64) = null" true (St.st ctx Float = None);
  Alcotest.(check bool) "st(plain struct) = null" true (St.st ctx (Struct "plain") = None);
  Alcotest.(check bool) "st(fun ty) = null" true
    (St.st ctx (fun_ty (Ptr i8) [ Ptr i8 ]) = None);
  (* pointer to pointer-free data still has a shadow (the pair itself) *)
  Alcotest.(check bool) "st(i32*) non-null" true (St.st ctx (Ptr i32) <> None)

let test_st_array () =
  let tenv, ctx = mk_ctx () in
  ignore tenv;
  match St.st ctx (arr (Ptr i32) 5) with
  | Some (Arr (_, 5)) -> ()
  | _ -> Alcotest.fail "st of pointer array should be a 5-array of pairs"

let test_st_memoized () =
  let _, ctx = mk_ctx () in
  let a = St.st ctx (Ptr i32) and b = St.st ctx (Ptr i32) in
  Alcotest.(check bool) "same result object" true (a = b)

(* ---- Table 2.4: augmented function type (SDS) ---- *)
let test_at_fun_sds () =
  let _, ctx = mk_ctx () in
  let s = Ptr (arr i8 0) in
  let ft = { ret = s; params = [ s; s ]; vararg = false } in
  let aug = St.at_fun ctx ft in
  (* rvSop + (s1, s1Rop, s1Nsop) + (s2, s2Rop, s2Nsop) = 7 params *)
  Alcotest.(check int) "7 params" 7 (List.length aug.params);
  Alcotest.(check bool) "ret unchanged" true (aug.ret = s);
  (match List.hd aug.params with
  | Ptr (Struct _) -> ()
  | t -> Alcotest.failf "rvSop should point at a pair struct, got %a" Types.pp t);
  Alcotest.(check bool) "s1 and rop typed alike" true
    (List.nth aug.params 1 = List.nth aug.params 2);
  Alcotest.(check bool) "s1 nsop is void*" true (List.nth aug.params 3 = St.void_ptr)

(* ---- Table 4.2: augmented function type (MDS) ---- *)
let test_at_fun_mds () =
  let _, ctx = mk_ctx ~mode:Config.Mds () in
  let s = Ptr (arr i8 0) in
  let ft = { ret = s; params = [ s; s ]; vararg = false } in
  let aug = St.at_fun ctx ft in
  (* rvRopPtr + (s1, s1Rop) + (s2, s2Rop) = 5 params *)
  Alcotest.(check int) "5 params" 5 (List.length aug.params);
  Alcotest.(check bool) "rvRopPtr: s*" true (List.hd aug.params = Ptr s)

let test_at_fun_non_pointer () =
  let _, ctx = mk_ctx () in
  let ft = { ret = i32; params = [ i32; Float ]; vararg = false } in
  let aug = St.at_fun ctx ft in
  Alcotest.(check int) "unchanged arity" 2 (List.length aug.params);
  Alcotest.(check bool) "identical" true (aug.params = ft.params)

let test_at_identity_on_fun_free_types () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "LL" [ i32; Ptr (Struct "LL") ];
  Alcotest.(check bool) "at(LL) = LL" true (St.at ctx (Struct "LL") = Struct "LL");
  Alcotest.(check bool) "at(i32) = i32" true (St.at ctx i32 = i32);
  Alcotest.(check bool) "at(LL*) = LL*" true
    (St.at ctx (Ptr (Struct "LL")) = Ptr (Struct "LL"))

let test_at_rewrites_fun_ptr_fields () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "ops" [ Ptr (fun_ty Void [ Ptr i8 ]); i32 ];
  match St.at ctx (Struct "ops") with
  | Struct n ->
      Alcotest.(check bool) "renamed" true (n <> "ops");
      (match Tenv.fields tenv n with
      | [ Ptr (Fun ft); Int W32 ] ->
          (* void(ptr) becomes void(ptr, rop, nsop) under SDS *)
          Alcotest.(check int) "aug params" 3 (List.length ft.params)
      | _ -> Alcotest.fail "unexpected aug fields")
  | t -> Alcotest.failf "expected struct, got %a" Types.pp t

(* ---- φ(): Equation 2.2 ---- *)
let test_phi () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "mix" [ i32; Ptr i8; Float; Ptr i32; i64 ];
  Alcotest.(check int) "phi f1 (first ptr)" 0 (St.phi ctx "mix" 1);
  Alcotest.(check int) "phi f3 (second ptr)" 1 (St.phi ctx "mix" 3)

(* ---- Table 2.5: sat = st . at ---- *)
let test_sat_equals_st_of_at () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "node" [ Ptr (Struct "node"); Ptr (fun_ty i32 [ Ptr i8 ]); i64 ];
  let cases =
    [ i32; Ptr i32; Ptr (Ptr i8); Struct "node"; arr (Ptr i32) 3; Ptr (Struct "node") ]
  in
  List.iter
    (fun t ->
      let sat = St.sat ctx t in
      let st_at = St.st ctx (St.at ctx t) in
      let eq =
        match (sat, st_at) with
        | None, None -> true
        | Some a, Some b -> struct_eq tenv a b
        | _ -> false
      in
      Alcotest.(check bool) (Fmt.str "sat %a" Types.pp t) true eq)
    cases

(* ---- mutual recursion ---- *)
let test_mutually_recursive () =
  let tenv, ctx = mk_ctx () in
  Tenv.define_struct tenv "A" [ Ptr (Struct "B"); i32 ];
  Tenv.define_struct tenv "B" [ Ptr (Struct "A"); Float ];
  match (St.st ctx (Struct "A"), St.st ctx (Struct "B")) with
  | Some sa, Some sb ->
      let pa = fields_of tenv sa and pb = fields_of tenv sb in
      Alcotest.(check int) "A shadow: 1 pair" 1 (List.length pa);
      Alcotest.(check int) "B shadow: 1 pair" 1 (List.length pb);
      (* A's pair nsop points at B's shadow and vice versa *)
      let nsop_of s = List.nth (fields_of tenv (List.hd (fields_of tenv s))) 1 in
      Alcotest.(check bool) "A -> B shadow" true (nsop_of sa = Ptr sb);
      Alcotest.(check bool) "B -> A shadow" true (nsop_of sb = Ptr sa)
  | _ -> Alcotest.fail "shadows must exist"

(* ---- shadow size bound: sizeof(st(at(t))) <= 2 * sizeof(at(t)) for
   scalar-pointer-dense types (§2.9's worst case) ---- *)
let prop_shadow_size_bound =
  QCheck.Test.make ~name:"shadow size at most 2x for pointer arrays" ~count:50
    QCheck.(int_range 1 32)
    (fun n ->
      let tenv, ctx = mk_ctx () in
      let t = arr (Ptr i64) n in
      match St.sat ctx t with
      | Some s -> Layout.size_of tenv s = 2 * Layout.size_of tenv t
      | None -> false)

let prop_st_idempotent_cache =
  QCheck.Test.make ~name:"st is deterministic across calls" ~count:50
    QCheck.(int_range 0 5)
    (fun depth ->
      let _, ctx = mk_ctx () in
      let rec mk d = if d = 0 then Ptr i32 else Ptr (mk (d - 1)) in
      let t = mk depth in
      St.st ctx t = St.st ctx t)

let suites =
  [
    ( "shadow_type",
      [
        Alcotest.test_case "Table 2.2: int8[]*" `Quick test_st_byte_array_ptr;
        Alcotest.test_case "Table 2.2: int8[]**" `Quick test_st_byte_array_ptr_ptr;
        Alcotest.test_case "Table 2.2: LinkedList" `Quick test_st_linked_list;
        Alcotest.test_case "Table 2.2: file struct" `Quick test_st_file_struct;
        Alcotest.test_case "null shadows" `Quick test_st_nulls;
        Alcotest.test_case "pointer array shadow" `Quick test_st_array;
        Alcotest.test_case "memoization" `Quick test_st_memoized;
        Alcotest.test_case "Table 2.4: SDS aug fun type" `Quick test_at_fun_sds;
        Alcotest.test_case "Table 4.2: MDS aug fun type" `Quick test_at_fun_mds;
        Alcotest.test_case "aug fun: no pointers" `Quick test_at_fun_non_pointer;
        Alcotest.test_case "at identity on fun-free types" `Quick test_at_identity_on_fun_free_types;
        Alcotest.test_case "at rewrites fun-ptr fields" `Quick test_at_rewrites_fun_ptr_fields;
        Alcotest.test_case "phi field mapping" `Quick test_phi;
        Alcotest.test_case "Table 2.5: sat = st.at" `Quick test_sat_equals_st_of_at;
        Alcotest.test_case "mutually recursive shadows" `Quick test_mutually_recursive;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_shadow_size_bound; prop_st_idempotent_cache ] );
  ]
