(* lib/trace: ring-buffer mechanics, pay-for-use installation, Chrome
   trace-event export, cost profiles, telemetry merging, and the
   detection-forensics acceptance grid: across all four workloads, every
   detected fault-injection run's trace must name the injected
   corruption and measure an instruction distance equal to the Metrics
   detection latency; every missed run must be explained. *)

module Trace = Dpmr_trace.Trace
module Export = Dpmr_trace.Export
module Json_check = Dpmr_trace.Json_check
module Analysis = Dpmr_trace.Forensics
module Forensics = Dpmr_fi.Forensics
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Progs = Dpmr_testprogs.Progs
module Workloads = Dpmr_workloads.Workloads
module Telemetry = Dpmr_engine.Telemetry

let sds = Config.default

(* --- ring buffer --- *)

let test_ring_wrap () =
  let t = Trace.create ~capacity:8 ~sample_every:1 () in
  for i = 0 to 19 do
    Trace.emit_fi_mark t ~cost:i
  done;
  Alcotest.(check int) "capacity" 8 (Trace.capacity t);
  Alcotest.(check int) "emitted" 20 (Trace.emitted t);
  Alcotest.(check int) "dropped" 12 (Trace.dropped t);
  let recs = Trace.snapshot t in
  Alcotest.(check int) "snapshot keeps the last capacity events" 8
    (Array.length recs);
  Array.iteri
    (fun i (r : Trace.record) ->
      Alcotest.(check int) "chronological, oldest first" (12 + i) r.Trace.cost)
    recs

let test_capacity_rounding () =
  let t = Trace.create ~capacity:9 () in
  Alcotest.(check int) "rounded up to a power of two" 16 (Trace.capacity t)

let test_block_sampling () =
  let t = Trace.create ~capacity:64 ~sample_every:4 () in
  for i = 0 to 15 do
    Trace.sample_block t ~cost:i ~fname:"f" ~blk:0
  done;
  Alcotest.(check int) "one-in-four block events" 4 (Trace.emitted t)

let test_snapshot_does_not_consume () =
  let t = Trace.create ~capacity:8 () in
  Trace.emit_fi_mark t ~cost:1;
  let a = Trace.snapshot t and b = Trace.snapshot t in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b)

(* --- domain-local installation --- *)

let test_with_sink_restores () =
  Alcotest.(check bool) "no sink installed by default" true
    (Trace.current () = None);
  let outer = Trace.create () and inner = Trace.create () in
  let installed s =
    match Trace.current () with Some c -> c == s | None -> false
  in
  Trace.with_sink outer (fun () ->
      Alcotest.(check bool) "outer installed" true (installed outer);
      Trace.with_sink inner (fun () ->
          Alcotest.(check bool) "inner shadows outer" true (installed inner));
      Alcotest.(check bool) "outer restored" true (installed outer));
  Alcotest.(check bool) "None restored" true (Trace.current () = None)

let test_with_sink_restores_on_raise () =
  let s = Trace.create () in
  (try Trace.with_sink s (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after an exception" true (Trace.current () = None)

(* --- pay-for-use: tracing must not perturb the run --- *)

let test_traced_run_identical () =
  let run () = Dpmr.run_dpmr sds (Progs.linked_list ()) in
  let plain = run () in
  let sink = Trace.create () in
  let traced = Trace.with_sink sink (fun () -> run ()) in
  Alcotest.(check bool) "same outcome" true
    (plain.Outcome.outcome = traced.Outcome.outcome);
  Alcotest.(check int64) "same cost" plain.Outcome.cost traced.Outcome.cost;
  Alcotest.(check string) "same output" plain.Outcome.output traced.Outcome.output;
  Alcotest.(check bool) "and the sink saw the run" true (Trace.emitted sink > 0)

(* --- export + schema validation --- *)

let traced_records () =
  let sink = Trace.create () in
  let r =
    Trace.with_sink sink (fun () -> Dpmr.run_dpmr sds (Progs.linked_list ()))
  in
  Alcotest.(check bool) "run normal" true (r.Outcome.outcome = Outcome.Normal);
  Trace.snapshot sink

let test_export_validates () =
  let json = Export.chrome_json (traced_records ()) in
  match Json_check.validate_trace json with
  | Ok n -> Alcotest.(check bool) "has events" true (n > 0)
  | Error m -> Alcotest.failf "export did not validate: %s" m

let test_validate_rejects_garbage () =
  Alcotest.(check bool) "truncated JSON" true
    (Result.is_error (Json_check.validate_trace "{\"traceEvents\":["));
  Alcotest.(check bool) "not an object" true
    (Result.is_error (Json_check.validate_trace "[1,2]"));
  Alcotest.(check bool) "missing traceEvents" true
    (Result.is_error (Json_check.validate_trace "{}"));
  Alcotest.(check bool) "bad phase letter" true
    (Result.is_error
       (Json_check.validate_trace
          {|{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":1}]}|}));
  Alcotest.(check bool) "ts must be a number" true
    (Result.is_error
       (Json_check.validate_trace
          {|{"traceEvents":[{"name":"x","ph":"B","ts":"0","pid":1,"tid":1}]}|}))

let test_profile_sane () =
  let frames = Export.profile (traced_records ()) in
  Alcotest.(check bool) "has frames" true (frames <> []);
  Alcotest.(check bool) "main appears" true
    (List.exists (fun (f : Export.frame) -> f.Export.fn = "main") frames);
  List.iter
    (fun (f : Export.frame) ->
      Alcotest.(check bool) (f.Export.fn ^ " calls >= 1") true (f.Export.calls >= 1);
      Alcotest.(check bool)
        (f.Export.fn ^ " exclusive <= inclusive")
        true
        (f.Export.exclusive <= f.Export.inclusive))
    frames

(* --- summaries + telemetry --- *)

let test_summary_merge () =
  let s = Trace.create ~capacity:8 () in
  Trace.emit_fi_mark s ~cost:1;
  Trace.emit_compare s ~cost:2 ~app:(-1L) ~rep:(-1L) ~len:0;
  Trace.emit_detect s ~cost:3 ~what:"t" ~addr:(-1L) ~off:(-1);
  let sum = Trace.summary s in
  Alcotest.(check int) "emitted" 3 sum.Trace.s_emitted;
  Alcotest.(check int) "fi marks" 1 sum.Trace.s_fi_marks;
  Alcotest.(check int) "comparisons" 1 sum.Trace.s_comparisons;
  Alcotest.(check int) "detections" 1 sum.Trace.s_detections;
  let two = Trace.add_summary sum sum in
  Alcotest.(check int) "merge adds" 6 two.Trace.s_emitted;
  Alcotest.(check bool) "zero is the identity" true
    (Trace.add_summary Trace.zero_summary sum = sum)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_telemetry_trace_line_gated () =
  let t = Telemetry.create () in
  let lines = Telemetry.summary_lines t ~workers:1 ~cache:None in
  Alcotest.(check bool) "no trace line when nothing was traced" false
    (List.exists (contains ~needle:"trace:") lines)

let test_telemetry_trace_line () =
  let t = Telemetry.create () in
  Telemetry.record_trace t
    {
      Trace.s_emitted = 5;
      s_dropped = 1;
      s_detections = 1;
      s_comparisons = 2;
      s_fi_marks = 1;
    };
  let lines = Telemetry.summary_lines t ~workers:1 ~cache:None in
  Alcotest.(check bool) "trace line present" true
    (List.exists (contains ~needle:"trace: 5 events") lines);
  let json = Telemetry.to_json t ~workers:1 ~cache:None in
  Alcotest.(check bool) "json parses" true (Result.is_ok (Json_check.parse json));
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in json") true (contains ~needle json))
    [ "dpmr-telemetry/1"; "\"comparisons\": 2"; "\"fi_marks\": 1"; "\"workers\": 1" ]

(* --- forensics: unit-level --- *)

let test_forensics_classify () =
  let heap_base = 0x80000000L in
  let chunks =
    Analysis.I64Map.of_seq
      (List.to_seq [ (0x80000010L, (32, true)); (0x80000100L, (16, false)) ])
  in
  let cl addr bytes = Analysis.classify chunks ~heap_base ~addr ~bytes in
  Alcotest.(check bool) "below heap: not heap traffic" true (cl 0x1000L 8 = None);
  Alcotest.(check bool) "inside live payload: fine" true (cl 0x80000018L 8 = None);
  Alcotest.(check bool) "running past the end: overflow" true
    (cl 0x8000002cL 8 = Some (Analysis.Overflow 0x80000010L));
  Alcotest.(check bool) "freed chunk" true
    (cl 0x80000104L 4 = Some (Analysis.In_freed 0x80000100L));
  Alcotest.(check bool) "header below a payload" true
    (cl 0x80000000L 8 = Some (Analysis.Chunk_header 0x80000010L));
  Alcotest.(check bool) "far off: wilderness" true
    (cl 0x90000000L 8 = Some Analysis.Wilderness)

(* --- the acceptance grid ---

   A sampled grid of injected faults across all four workloads; for
   every run the trace-derived distance must agree exactly with the
   classification's t2d, detections must name a corruption of the
   injected kind, and misses must carry an explanation. *)

let sample_sites sites =
  match sites with
  | [] | [ _ ] -> sites
  | _ ->
      let n = List.length sites in
      List.sort_uniq compare [ 0; n / 2; n - 1 ] |> List.map (List.nth sites)

let check_grid_run ~kind ~app ~site (tr : Forensics.traced) =
  let name = Printf.sprintf "%s %s" app (Inject.site_name site) in
  let c = tr.Forensics.classification in
  let rep = tr.Forensics.report in
  Alcotest.(check bool)
    (name ^ ": trace distance agrees with t2d")
    true tr.Forensics.consistent;
  if c.Experiment.ddet then begin
    Alcotest.(check bool) (name ^ ": detected verdict") true
      (rep.Analysis.verdict = Analysis.Detected);
    Alcotest.(check bool) (name ^ ": detection event recorded") true
      (rep.Analysis.detection <> None);
    Alcotest.(check bool)
      (name ^ ": corruption names the injected fault")
      true
      (match (kind, rep.Analysis.corruption) with
      | Inject.Heap_array_resize _, Some (Analysis.Undersized_malloc _) -> true
      | Inject.Immediate_free, Some (Analysis.Injected_free _) -> true
      | _ -> false)
  end
  else if c.Experiment.ndet then
    Alcotest.(check bool) (name ^ ": natural detection resolved") true
      (rep.Analysis.verdict = Analysis.Detected_naturally)
  else if c.Experiment.sf && not c.Experiment.timeout then
    (* a true miss: the analysis must say why *)
    Alcotest.(check bool) (name ^ ": miss explained") true
      (match rep.Analysis.verdict with
      | Analysis.Miss_no_comparison | Analysis.Miss_replica_agreed _ -> true
      | _ -> false)
  else if not c.Experiment.sf then
    Alcotest.(check bool) (name ^ ": never-executed site") true
      (rep.Analysis.verdict = Analysis.Not_injected)

let test_forensics_grid () =
  List.iter
    (fun app ->
      let entry = Workloads.find app in
      let wk =
        Experiment.workload app (fun () -> entry.Workloads.build ?scale:None ())
      in
      let e = Experiment.make wk in
      List.iter
        (fun kind ->
          List.iter
            (fun site ->
              let tr =
                Forensics.run_variant e (Experiment.Fi_dpmr (sds, kind, site))
              in
              check_grid_run ~kind ~app ~site tr)
            (sample_sites (Experiment.sites e kind)))
        [ Inject.Heap_array_resize 50; Inject.Immediate_free ])
    Workloads.names

let suites =
  [
    ( "trace.ring",
      [
        Alcotest.test_case "wrap + dropped count" `Quick test_ring_wrap;
        Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
        Alcotest.test_case "block sampling" `Quick test_block_sampling;
        Alcotest.test_case "snapshot is repeatable" `Quick
          test_snapshot_does_not_consume;
      ] );
    ( "trace.sink",
      [
        Alcotest.test_case "with_sink restores" `Quick test_with_sink_restores;
        Alcotest.test_case "with_sink restores on raise" `Quick
          test_with_sink_restores_on_raise;
        Alcotest.test_case "tracing does not perturb the run" `Quick
          test_traced_run_identical;
      ] );
    ( "trace.export",
      [
        Alcotest.test_case "chrome JSON validates" `Quick test_export_validates;
        Alcotest.test_case "validator rejects bad input" `Quick
          test_validate_rejects_garbage;
        Alcotest.test_case "profile sanity" `Quick test_profile_sane;
      ] );
    ( "trace.telemetry",
      [
        Alcotest.test_case "summary merge" `Quick test_summary_merge;
        Alcotest.test_case "engine line gated on use" `Quick
          test_telemetry_trace_line_gated;
        Alcotest.test_case "engine line + json" `Quick test_telemetry_trace_line;
      ] );
    ( "trace.forensics",
      [
        Alcotest.test_case "store classification" `Quick test_forensics_classify;
        Alcotest.test_case "acceptance grid (4 workloads)" `Slow
          test_forensics_grid;
      ] );
  ]
