(* Unit and property tests for the IR: type system, layout, builder,
   verifier. *)

open Dpmr_ir
open Types

let tenv_with_ll () =
  let tenv = Tenv.create () in
  Tenv.define_struct tenv "LinkedList" [ i32; Ptr (Struct "LinkedList") ];
  tenv

(* ---- layout ---- *)

let test_scalar_sizes () =
  let tenv = Tenv.create () in
  Alcotest.(check int) "i8" 1 (Layout.size_of tenv i8);
  Alcotest.(check int) "i16" 2 (Layout.size_of tenv i16);
  Alcotest.(check int) "i32" 4 (Layout.size_of tenv i32);
  Alcotest.(check int) "i64" 8 (Layout.size_of tenv i64);
  Alcotest.(check int) "f64" 8 (Layout.size_of tenv Float);
  Alcotest.(check int) "ptr" 8 (Layout.size_of tenv (Ptr i32))

let test_struct_padding () =
  let tenv = Tenv.create () in
  Tenv.define_struct tenv "S" [ i8; i32; i8 ];
  (* 1 + pad(3) + 4 + 1 + pad(3) = 12 *)
  Alcotest.(check int) "padded struct" 12 (Layout.size_of tenv (Struct "S"));
  Alcotest.(check int) "f0 offset" 0 (Layout.field_offset tenv "S" 0);
  Alcotest.(check int) "f1 offset" 4 (Layout.field_offset tenv "S" 1);
  Alcotest.(check int) "f2 offset" 8 (Layout.field_offset tenv "S" 2)

let test_linkedlist_layout () =
  let tenv = tenv_with_ll () in
  Alcotest.(check int) "LL size" 16 (Layout.size_of tenv (Struct "LinkedList"));
  Alcotest.(check int) "nxt offset" 8 (Layout.field_offset tenv "LinkedList" 1)

let test_array_equiv_struct () =
  (* Chapter 2: struct{int32;int32;int32;} is equivalent to int32[3] *)
  let tenv = Tenv.create () in
  Tenv.define_struct tenv "T3" [ i32; i32; i32 ];
  Alcotest.(check int) "sizes equal" (Layout.size_of tenv (arr i32 3))
    (Layout.size_of tenv (Struct "T3"))

let test_union_layout () =
  let tenv = Tenv.create () in
  Tenv.define_union tenv "U" [ i8; i64; i32 ];
  Alcotest.(check int) "union size = max" 8 (Layout.size_of tenv (Union "U"));
  Alcotest.(check int) "union field offsets are 0" 0 (Layout.field_offset tenv "U" 2)

let test_flatten_scalars () =
  let tenv = Tenv.create () in
  Tenv.define_struct tenv "P" [ i32; Ptr i8; arr Float 2 ];
  let fs = Layout.flatten_scalars tenv (Struct "P") in
  Alcotest.(check int) "flattened count" 4 (List.length fs);
  Alcotest.(check bool) "second is pointer" true (is_pointer (List.nth fs 1))

let test_contains_pointer () =
  let tenv = tenv_with_ll () in
  Alcotest.(check bool) "LL has ptr" true
    (contains_pointer_outside_fun_ty tenv (Struct "LinkedList"));
  Alcotest.(check bool) "i32 no ptr" false (contains_pointer_outside_fun_ty tenv i32);
  Alcotest.(check bool) "fun ptr inside fun type doesn't count" false
    (contains_pointer_outside_fun_ty tenv (Fun { ret = Ptr i8; params = [ Ptr i8 ]; vararg = false }))

let test_struct_eq_recursive () =
  let tenv = Tenv.create () in
  Tenv.define_struct tenv "A" [ i32; Ptr (Struct "A") ];
  Tenv.define_struct tenv "B" [ i32; Ptr (Struct "B") ];
  Alcotest.(check bool) "A ~ B" true (struct_eq tenv (Struct "A") (Struct "B"));
  Tenv.define_struct tenv "C" [ i64; Ptr (Struct "C") ];
  Alcotest.(check bool) "A !~ C" false (struct_eq tenv (Struct "A") (Struct "C"))

(* ---- qcheck: layout invariants ---- *)

let ty_gen =
  let open QCheck.Gen in
  let base = oneofl [ i8; i16; i32; i64; Float; Ptr i8; Ptr (Ptr i32) ] in
  let rec go n =
    if n = 0 then base
    else
      frequency
        [
          (3, base);
          (1, map (fun t -> Ptr t) (go (n - 1)));
          (1, map2 (fun t k -> arr t (1 + (k mod 4))) (go (n - 1)) nat);
        ]
  in
  go 3

let arb_ty = QCheck.make ~print:Types.to_string ty_gen

let prop_size_positive =
  QCheck.Test.make ~name:"sizeof is positive for sized types" ~count:200 arb_ty
    (fun t ->
      let tenv = Tenv.create () in
      Layout.size_of tenv t > 0)

let prop_size_multiple_of_align =
  QCheck.Test.make ~name:"sizeof is a multiple of alignment" ~count:200 arb_ty
    (fun t ->
      let tenv = Tenv.create () in
      Layout.size_of tenv t mod Layout.align_of tenv t = 0)

let prop_flatten_size =
  QCheck.Test.make ~name:"flatten covers at most sizeof bytes" ~count:200 arb_ty
    (fun t ->
      let tenv = Tenv.create () in
      let flat = Layout.flatten_scalars tenv t in
      let sum = List.fold_left (fun a s -> a + Layout.size_of tenv s) 0 flat in
      sum <= Layout.size_of tenv t)

(* ---- builder + verifier ---- *)

let build_sum_prog () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let acc = Builder.local b ~name:"acc" i64 (Builder.i64c 0) in
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c 10) (fun i ->
      let a = Builder.get b i64 acc in
      let s = Builder.add b W64 a i in
      Builder.set b i64 acc s);
  let final = Builder.get b i64 acc in
  Builder.call0 b (Inst.Direct "print_int") [ final ];
  Builder.ret b (Some (Builder.i32c 0));
  p

let test_builder_verifies () =
  let p = build_sum_prog () in
  Verifier.check_prog p

let test_verifier_catches_bad_label () =
  let p = Prog.create () in
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  Builder.br b "nonexistent";
  Alcotest.(check bool) "raises Ill_formed" true
    (try
       Verifier.check_prog p;
       false
     with Verifier.Ill_formed _ -> true)

let test_verifier_catches_unknown_callee () =
  let p = Prog.create () in
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  b.Builder.cur.insts <- [ Inst.Call (None, Inst.Direct "nope", []) ];
  Builder.ret0 b;
  Alcotest.(check bool) "raises" true
    (try
       Verifier.check_prog p;
       false
     with Verifier.Ill_formed _ -> true)

let test_printer_roundtrip_smoke () =
  let p = build_sum_prog () in
  let s = Printer.prog_to_string p in
  Alcotest.(check bool) "prints something" true (String.length s > 50);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions main" true (contains s "@main")

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_size_positive; prop_size_multiple_of_align; prop_flatten_size ]

let suites =
  [
    ( "ir.layout",
      [
        Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
        Alcotest.test_case "struct padding" `Quick test_struct_padding;
        Alcotest.test_case "linked list layout" `Quick test_linkedlist_layout;
        Alcotest.test_case "array/struct equivalence" `Quick test_array_equiv_struct;
        Alcotest.test_case "union layout" `Quick test_union_layout;
        Alcotest.test_case "flatten scalars" `Quick test_flatten_scalars;
        Alcotest.test_case "contains pointer" `Quick test_contains_pointer;
        Alcotest.test_case "recursive structural equality" `Quick test_struct_eq_recursive;
      ]
      @ qsuite );
    ( "ir.builder",
      [
        Alcotest.test_case "builder output verifies" `Quick test_builder_verifies;
        Alcotest.test_case "verifier: bad label" `Quick test_verifier_catches_bad_label;
        Alcotest.test_case "verifier: unknown callee" `Quick test_verifier_catches_unknown_callee;
        Alcotest.test_case "printer smoke" `Quick test_printer_roundtrip_smoke;
      ] );
  ]
