(* Tests for the memory simulator and heap allocator — the substrate whose
   behaviours the detection conditions (§2.5) depend on. *)

open Dpmr_memsim

let test_rw_roundtrip () =
  let m = Mem.create () in
  Mem.map_range m 0x10000L 4096 Mem.Fill_zero;
  Mem.write_int m 0x10000L 8 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Mem.read_int m 0x10000L 8);
  Alcotest.(check int64) "u32 low" 0x55667788L (Mem.read_int m 0x10000L 4);
  Alcotest.(check int) "u8" 0x88 (Mem.read_u8 m 0x10000L);
  Mem.write_f64 m 0x10100L 3.25;
  Alcotest.(check (float 0.0)) "f64" 3.25 (Mem.read_f64 m 0x10100L)

let test_unmapped_faults () =
  let m = Mem.create () in
  Alcotest.(check bool) "fault" true
    (try
       ignore (Mem.read_u8 m 0x123L);
       false
     with Mem.Fault (Mem.Unmapped _) -> true)

let test_straddling_access () =
  let m = Mem.create () in
  Mem.map_range m 0x10000L 8192 Mem.Fill_zero;
  let addr = 0x10FFCL (* 4 bytes before a page boundary *) in
  Mem.write_int m addr 8 0xAABBCCDDEEFF0011L;
  Alcotest.(check int64) "straddle" 0xAABBCCDDEEFF0011L (Mem.read_int m addr 8)

let test_garbage_is_deterministic () =
  let m1 = Mem.create ~seed:7L () and m2 = Mem.create ~seed:7L () in
  Mem.map_range m1 0x50000L 64 Mem.Fill_garbage;
  Mem.map_range m2 0x50000L 64 Mem.Fill_garbage;
  Alcotest.(check int64) "same garbage" (Mem.read_int m1 0x50000L 8)
    (Mem.read_int m2 0x50000L 8);
  let m3 = Mem.create ~seed:8L () in
  Mem.map_range m3 0x50000L 64 Mem.Fill_garbage;
  Alcotest.(check bool) "different seed, different garbage" true
    (not (Int64.equal (Mem.read_int m1 0x50000L 8) (Mem.read_int m3 0x50000L 8)))

(* ---- allocator ---- *)

let mk_alloc () =
  let m = Mem.create () in
  (m, Allocator.create m)

let test_malloc_rounds_up () =
  let _, a = mk_alloc () in
  let p = Allocator.malloc a 16 in
  (* min payload is 24, rounded to 32: a heap-array resize 24 -> 16 still
     receives enough memory (the §3.4 "overallocation" effect) *)
  Alcotest.(check int) "rounded" 32 (Allocator.usable_size a p)

let test_free_reuse_lifo () =
  let _, a = mk_alloc () in
  let p = Allocator.malloc a 100 in
  Allocator.free a p;
  let q = Allocator.malloc a 100 in
  Alcotest.(check int64) "LIFO reuse" p q

let test_free_poisons_payload () =
  let m, a = mk_alloc () in
  let p1 = Allocator.malloc a 48 in
  let p2 = Allocator.malloc a 48 in
  Allocator.free a p1;
  Allocator.free a p2;
  (* p2's payload now holds the free-list link to p1 (old bin head) *)
  Alcotest.(check int64) "metadata in freed buffer" p1 (Mem.read_int m p2 8)

let test_invalid_free_faults () =
  let _, a = mk_alloc () in
  Alcotest.(check bool) "invalid free" true
    (try
       Allocator.free a 0x4141_4141L;
       false
     with Mem.Fault _ -> true)

let test_double_free_faults () =
  let _, a = mk_alloc () in
  let p = Allocator.malloc a 64 in
  Allocator.free a p;
  Alcotest.(check bool) "double free" true
    (try
       Allocator.free a p;
       false
     with Mem.Fault (Mem.Double_free _) -> true)

let test_interior_free_faults () =
  let _, a = mk_alloc () in
  let p = Allocator.malloc a 64 in
  Alcotest.(check bool) "interior pointer free" true
    (try
       Allocator.free a (Int64.add p 8L);
       false
     with Mem.Fault (Mem.Invalid_free _) -> true)

let test_overflow_corrupts_next_header () =
  let m, a = mk_alloc () in
  let p = Allocator.malloc a 32 in
  let q = Allocator.malloc a 32 in
  (* q's chunk follows p's: write past p's end, clobber q's header magic *)
  for i = 32 to 52 do
    Mem.write_u8 m (Int64.add p (Int64.of_int i)) 0x41
  done;
  Alcotest.(check bool) "free of corrupted chunk faults" true
    (try
       Allocator.free a q;
       false
     with Mem.Fault (Mem.Invalid_free _) -> true)

let test_stats () =
  let _, a = mk_alloc () in
  let p = Allocator.malloc a 100 in
  let _q = Allocator.malloc a 200 in
  Allocator.free a p;
  let s = Allocator.stats a in
  Alcotest.(check int) "mallocs" 2 s.Allocator.n_malloc;
  Alcotest.(check int) "frees" 1 s.Allocator.n_free;
  Alcotest.(check bool) "peak >= live" true (s.Allocator.peak_bytes >= s.Allocator.live_bytes)

(* qcheck: allocator invariants *)

let prop_malloc_disjoint =
  QCheck.Test.make ~name:"live chunks are pairwise disjoint" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 512))
    (fun sizes ->
      let _, a = mk_alloc () in
      let chunks = List.map (fun n -> (Allocator.malloc a n, n)) sizes in
      let ranges =
        List.map (fun (p, n) -> (p, Int64.add p (Int64.of_int (Allocator.round_size n)))) chunks
      in
      List.for_all
        (fun (s1, e1) ->
          List.for_all
            (fun (s2, e2) ->
              Int64.equal s1 s2 || Int64.compare e1 s2 <= 0 || Int64.compare e2 s1 <= 0)
            ranges)
        ranges)

(* qcheck: scalar access fidelity.  [read_int]/[write_int] have a
   width-dispatched single-page fast path and a byte-at-a-time straddle
   path; both must agree with the byte-level model for every width and
   offset, including offsets that cross the page boundary. *)

let prop_scalar_vs_bytes =
  QCheck.Test.make ~name:"read_int/write_int match the byte-level model" ~count:200
    QCheck.(
      triple (int_range 0 8192) (oneofl [ 1; 2; 4; 8 ])
        (map Int64.of_int (int_range 0 max_int)))
    (fun (off, len, v) ->
      let m = Mem.create () in
      let base = Mem.heap_base in
      Mem.map_range m base 16384 Mem.Fill_zero;
      let addr = Int64.add base (Int64.of_int off) in
      Mem.write_int m addr len v;
      (* the write is little-endian: byte i of the value at addr+i *)
      let bytes_agree =
        List.for_all
          (fun i ->
            Mem.read_u8 m (Int64.add addr (Int64.of_int i))
            = Int64.to_int
                (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
          (List.init len Fun.id)
      in
      (* and reading it back truncates to the width *)
      let mask =
        if len = 8 then -1L else Int64.sub (Int64.shift_left 1L (8 * len)) 1L
      in
      bytes_agree && Int64.equal (Mem.read_int m addr len) (Int64.logand v mask))

let prop_two_page_interleave =
  (* alternating writes to two distant pages thrash the one-entry page
     cache; every value must still read back through the cache misses *)
  QCheck.Test.make ~name:"interleaved two-page accesses survive the page cache"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 0 500) bool))
    (fun writes ->
      let m = Mem.create () in
      let near = Mem.heap_base in
      let far = Int64.add Mem.heap_base 0x10_0000L in
      Mem.map_range m near 4096 Mem.Fill_zero;
      Mem.map_range m far 4096 Mem.Fill_zero;
      let expect = Hashtbl.create 16 in
      List.iteri
        (fun i (slot, which) ->
          let addr =
            Int64.add (if which then near else far) (Int64.of_int (slot * 8))
          in
          Mem.write_int m addr 8 (Int64.of_int i);
          Hashtbl.replace expect addr (Int64.of_int i))
        writes;
      Hashtbl.fold
        (fun addr v ok -> ok && Int64.equal (Mem.read_int m addr 8) v)
        expect true)

let prop_free_visible_through_cache =
  (* free poisons the chunk payload by writing through the same memory;
     a read that already cached the page must see the poison, not a
     stale snapshot *)
  QCheck.Test.make ~name:"free's poison is visible after a cached access" ~count:100
    QCheck.(int_range 8 2048)
    (fun n ->
      let m, a = mk_alloc () in
      let p = Allocator.malloc a n in
      Mem.write_int m p 8 0x1122334455667788L;
      let before = Mem.read_int m p 8 in
      Allocator.free a p;
      let after = Mem.read_int m p 8 in
      Int64.equal before 0x1122334455667788L && not (Int64.equal after before))

(* qcheck: copy-on-write snapshot isolation (the substrate of snapshot/
   fork campaign execution).  A frozen image is immutable: mutating a
   fork thawed from it never leaks into the image or into a sibling
   thawed afterwards, and the image's content hash is unchanged — the
   parent state round-trips exactly through freeze/thaw. *)
let prop_freeze_fork_isolated =
  QCheck.Test.make ~name:"freeze/thaw forks are copy-on-write isolated" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (pair (int_range 0 ((8 * 4096) - 1)) (int_range 0 255)))
    (fun writes ->
      let m = Mem.create ~seed:5L () in
      Mem.map_range m 0x10000L (8 * 4096) Mem.Fill_garbage;
      List.iter
        (fun (off, v) -> Mem.write_u8 m (Int64.add 0x10000L (Int64.of_int off)) v)
        writes;
      let frozen = Mem.freeze m in
      let h0 = Mem.frozen_hash frozen in
      let expected =
        List.map
          (fun (off, _) ->
            let a = Int64.add 0x10000L (Int64.of_int off) in
            (a, Mem.read_u8 m a))
          writes
      in
      let child = Mem.thaw frozen in
      List.iter
        (fun (off, v) ->
          Mem.write_u8 child (Int64.add 0x10000L (Int64.of_int off)) (v lxor 0xFF))
        writes;
      (* the child sees its own mutation (the test is not vacuous)... *)
      let loff, lv = List.nth writes (List.length writes - 1) in
      let child_sees =
        Mem.read_u8 child (Int64.add 0x10000L (Int64.of_int loff)) = lv lxor 0xFF
      in
      (* ...while a parent thawed after the mutation reads the frozen
         bytes everywhere, and the image hash never moved *)
      let parent = Mem.thaw frozen in
      child_sees
      && List.for_all (fun (a, v) -> Mem.read_u8 parent a = v) expected
      && Int64.equal h0 (Mem.frozen_hash frozen))

let prop_free_then_malloc_same_class =
  QCheck.Test.make ~name:"free then same-size malloc reuses memory" ~count:50
    QCheck.(int_range 1 1024)
    (fun n ->
      let _, a = mk_alloc () in
      let p = Allocator.malloc a n in
      Allocator.free a p;
      Int64.equal p (Allocator.malloc a n))

let suites =
  [
    ( "memsim.mem",
      [
        Alcotest.test_case "read/write roundtrip" `Quick test_rw_roundtrip;
        Alcotest.test_case "unmapped access faults" `Quick test_unmapped_faults;
        Alcotest.test_case "page-straddling access" `Quick test_straddling_access;
        Alcotest.test_case "deterministic garbage" `Quick test_garbage_is_deterministic;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_scalar_vs_bytes; prop_two_page_interleave; prop_freeze_fork_isolated ] );
    ( "memsim.allocator",
      [
        Alcotest.test_case "size-class rounding" `Quick test_malloc_rounds_up;
        Alcotest.test_case "LIFO reuse" `Quick test_free_reuse_lifo;
        Alcotest.test_case "free poisons payload" `Quick test_free_poisons_payload;
        Alcotest.test_case "invalid free faults" `Quick test_invalid_free_faults;
        Alcotest.test_case "double free faults" `Quick test_double_free_faults;
        Alcotest.test_case "interior free faults" `Quick test_interior_free_faults;
        Alcotest.test_case "overflow corrupts next header" `Quick test_overflow_corrupts_next_header;
        Alcotest.test_case "stats" `Quick test_stats;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            prop_malloc_disjoint;
            prop_free_visible_through_cache;
            prop_free_then_malloc_same_class;
          ] );
  ]
