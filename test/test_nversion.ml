(* N-version replication tests (lib/nversion + the N-replica transform):
   registry behaviour, output preservation for every diversity family at
   N in 1..4 (differential qcheck), vote semantics (majority detections
   are a subset of any-mismatch detections), replica-global structure,
   family-based Rx recovery, and cache / wire-protocol backward
   compatibility across the N-version salt bump. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Rx = Dpmr_core.Rx
module DF = Dpmr_core.Diversity_family
module Outcome = Dpmr_vm.Outcome
module Inject = Dpmr_fi.Inject
module Experiment = Dpmr_fi.Experiment
module Job = Dpmr_engine.Job
module Cache = Dpmr_engine.Cache
module Engine = Dpmr_engine.Engine
module Protocol = Dpmr_server.Protocol
module Families = Dpmr_nversion.Families
module Surface = Dpmr_nversion.Surface
module Progs = Dpmr_testprogs.Progs
module Workloads = Dpmr_workloads.Workloads

let () = Families.ensure ()
let family_names = [ "layout-perm"; "alloc-shuffle"; "segment-base"; "pad-jitter" ]

let nv_cfg ?(mode = Config.Sds) ?(vote = Config.Any_mismatch) ?(families = family_names)
    n =
  { Config.default with Config.mode; replicas = n; families; vote }

(* ---- registry ---- *)

let test_registry () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " registered") true (DF.find f <> None);
      Alcotest.(check bool)
        (f ^ " described") true
        (DF.description f <> None))
    family_names;
  (match DF.resolve family_names with
  | Ok fs -> Alcotest.(check int) "resolve returns all" (List.length family_names) (List.length fs)
  | Error f -> Alcotest.fail ("resolve rejected registered family " ^ f));
  (match DF.resolve [ "layout-perm"; "no-such-family" ] with
  | Ok _ -> Alcotest.fail "resolve accepted an unknown family"
  | Error f -> Alcotest.(check string) "names the unknown family" "no-such-family" f);
  let before = List.length (DF.names ()) in
  Families.ensure ();
  Alcotest.(check int) "ensure is idempotent" before (List.length (DF.names ()))

(* ---- differential property: every family preserves error-free output
   at every replica count ---- *)

let prop_family_n_preserves_output =
  QCheck.Test.make ~name:"random programs: every family x N in 1..4 preserves output"
    ~count:8 Test_differential.arb_ops (fun ops ->
      let p = Test_differential.build_prog ops in
      let golden = Dpmr.run_plain p in
      golden.Outcome.outcome = Outcome.Normal
      && List.for_all
           (fun f ->
             List.for_all
               (fun n ->
                 let r = Dpmr.run_dpmr (nv_cfg ~families:[ f ] n) p in
                 r.Outcome.outcome = Outcome.Normal
                 && r.Outcome.output = golden.Outcome.output)
               [ 1; 2; 3; 4 ])
           family_names)

let prop_all_families_both_modes =
  QCheck.Test.make
    ~name:"random programs: all families together, both modes, both votes, N=3"
    ~count:8 Test_differential.arb_ops (fun ops ->
      let p = Test_differential.build_prog ops in
      let golden = Dpmr.run_plain p in
      List.for_all
        (fun (mode, vote) ->
          let r = Dpmr.run_dpmr (nv_cfg ~mode ~vote 3) p in
          r.Outcome.outcome = Outcome.Normal
          && r.Outcome.output = golden.Outcome.output)
        [
          (Config.Sds, Config.Any_mismatch);
          (Config.Mds, Config.Any_mismatch);
          (Config.Sds, Config.Majority);
          (Config.Mds, Config.Majority);
        ])

(* ---- replica-global structure ---- *)

let global_prog () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let g = B.global b ~name:"gv" i64 (Prog.Gint 7L) in
  B.call0 b (Direct "print_int") [ B.load b i64 g ];
  B.ret b (Some (B.i32c 0));
  p

let test_replica_globals () =
  let p = global_prog () in
  let count_reps tp =
    let n = ref 0 in
    Prog.iter_globals tp (fun g ->
        let gn = g.Prog.gname in
        if String.length gn > 3 && String.sub gn 0 3 = "gv." then incr n);
    !n
  in
  (* N=1: the paper's single ".rep" group; N=3: two more replica groups,
     one per additional replica *)
  let t1 = Dpmr.transform (nv_cfg ~families:[] 1) p in
  Verifier.check_prog t1;
  Alcotest.(check bool) "N=1 keeps gv.rep" true (Prog.has_global t1 "gv.rep");
  Alcotest.(check bool) "N=1 has no gv.rep2" false (Prog.has_global t1 "gv.rep2");
  let t3 = Dpmr.transform (nv_cfg ~families:[] 3) p in
  Verifier.check_prog t3;
  List.iter
    (fun gn ->
      Alcotest.(check bool) ("N=3 has " ^ gn) true (Prog.has_global t3 gn))
    [ "gv.rep"; "gv.rep2"; "gv.rep3" ];
  Alcotest.(check int) "replica group count grows with N" ((count_reps t1) + 2)
    (count_reps t3)

(* ---- fault model: vote semantics at N=3 ---- *)

let test_majority_subset_of_any_mismatch () =
  let entry = Workloads.find "mcf" in
  let e =
    Experiment.make
      (Experiment.workload "mcf" (fun () -> entry.Workloads.build ~scale:1 ()))
  in
  let kind = Inject.Heap_array_resize 50 in
  let any = nv_cfg ~vote:Config.Any_mismatch 3 in
  let maj = nv_cfg ~vote:Config.Majority 3 in
  let detected cfg site =
    (Experiment.run_variant e (Experiment.Fi_dpmr (cfg, kind, site))).Experiment.ddet
  in
  let sites = Experiment.sites e kind in
  Alcotest.(check bool) "have sites" true (sites <> []);
  let n_any = ref 0 in
  List.iter
    (fun site ->
      let da = detected any site in
      if da then incr n_any;
      (* a majority of mismatched replicas implies at least one mismatched
         replica: majority detections must be a subset, site by site *)
      if detected maj site then
        Alcotest.(check bool) "majority ddet implies any-mismatch ddet" true da)
    sites;
  Alcotest.(check bool) "N=3 any-mismatch detects something" true (!n_any > 0)

(* ---- Rx escalation through families ---- *)

let test_rx_family_recovery () =
  let p = Progs.overflow ~limit:16 () in
  let res =
    Rx.run_with_recovery Config.default p
      ~escalation:[ Rx.Family "pad-jitter"; Rx.Pad 2048 ]
  in
  Alcotest.(check bool) "detected first" true (Outcome.is_dpmr_detect res.Rx.first);
  (match res.Rx.recovered_with with
  | Some (Rx.Family f) -> Alcotest.(check string) "recovered by the family" "pad-jitter" f
  | Some (Rx.Pad _) -> () (* acceptable fallback, but the pad-jitter rewrite pads >= 64 *)
  | None -> Alcotest.fail "expected recovery");
  Alcotest.(check bool) "final clean" true
    (res.Rx.final.Outcome.outcome = Outcome.Normal)

let test_rx_skips_inapplicable_steps () =
  (* alloc-shuffle has no whole-program rewrite and "no-such" is not
     registered: neither may count as an attempt *)
  let p = Progs.overflow ~limit:16 () in
  let res =
    Rx.run_with_recovery Config.default p
      ~escalation:
        [ Rx.Family "alloc-shuffle"; Rx.Family "no-such"; Rx.Family "pad-jitter" ]
  in
  Alcotest.(check int) "inapplicable steps not counted" 1 res.Rx.attempts;
  Alcotest.(check bool) "recovered" true (res.Rx.recovered_with <> None)

(* ---- cache compatibility across the salt bump ---- *)

let old_salt = "dpmr-engine/1"
let test_dir = Filename.concat (Filename.get_temp_dir_name ()) "dpmr-nversion-cache-test"

let with_clean_cache f =
  ignore (Cache.clear ~dir:test_dir ());
  Fun.protect ~finally:(fun () -> ignore (Cache.clear ~dir:test_dir ())) f

let some_cls =
  {
    Experiment.sf = true;
    co = false;
    ndet = false;
    ddet = true;
    timeout = false;
    t2d = Some 17L;
    cost = 1234L;
    peak_heap = 512;
  }

let test_salt_bump_evicts_cleanly () =
  Alcotest.(check string) "salt was bumped for N-version" "dpmr-engine/2"
    Job.default_salt;
  with_clean_cache (fun () ->
      (* a pre-N-version cache: records written under the old salt *)
      let c1 = Cache.load ~dir:test_dir ~salt:old_salt () in
      Cache.add c1 ~key:"00aa" ~spec_repr:"w=mcf;s=1;r=42;nofi-dpmr(sds,none,all,42)"
        some_cls;
      Cache.add c1 ~key:"00ab" ~spec_repr:"w=mcf;s=1;r=43;nofi-dpmr(sds,none,all,42)"
        some_cls;
      Cache.close c1;
      (* the old records still parse: eviction is a clean reload drop,
         never a damaged line *)
      let d_old = Cache.disk_stats ~dir:test_dir ~salt:old_salt () in
      Alcotest.(check int) "old records intact" 2 d_old.Cache.current;
      Alcotest.(check int) "no damage before reload" 0 d_old.Cache.damaged;
      (* loading under the bumped salt evicts both, damages nothing *)
      let c2 = Cache.load ~dir:test_dir ~salt:Job.default_salt () in
      Alcotest.(check int) "nothing survives the bump" 0 (Cache.entries c2);
      Alcotest.(check int) "stale lines evicted" 2 (Cache.stats c2).Cache.evicted;
      Alcotest.(check int) "no lines damaged" 0 (Cache.stats c2).Cache.damaged;
      Cache.add c2 ~key:"00ac" ~spec_repr:"w=mcf;s=1;r=42;nofi-dpmr(sds,none,all,42,n=3,fam=pad-jitter,vote=majority)"
        some_cls;
      Cache.close c2;
      (* the equivalent of [dpmr cache verify]: zero damaged lines and
         full compaction to the current salt *)
      let d = Cache.disk_stats ~dir:test_dir ~salt:Job.default_salt () in
      Alcotest.(check int) "verify green: no damage" 0 d.Cache.damaged;
      Alcotest.(check int) "compacted to current salt" d.Cache.total d.Cache.current;
      Alcotest.(check int) "exactly the new record" 1 d.Cache.current)

let test_config_repr_nversion_suffix () =
  let spec cfg =
    let entry = Workloads.find "mcf" in
    let e =
      Experiment.make
        (Experiment.workload "mcf" (fun () -> entry.Workloads.build ~scale:1 ()))
    in
    Job.make e ~workload:"mcf" ~scale:1 ~run_seed:42L (Experiment.Nofi_dpmr cfg)
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let r1 = Job.repr (spec Config.default) in
  Alcotest.(check bool) "default repr is the pre-N-version repr" false
    (contains r1 ",n=");
  let r3 = Job.repr (spec (nv_cfg ~vote:Config.Majority 3)) in
  Alcotest.(check bool) "N=3 repr carries the replica count" true (contains r3 ",n=3");
  Alcotest.(check bool) "repr carries the families" true
    (contains r3 "fam=layout-perm+alloc-shuffle+segment-base+pad-jitter");
  Alcotest.(check bool) "repr carries the vote" true (contains r3 "vote=majority");
  Alcotest.(check bool) "distinct cache keys" true
    (Job.hash (spec Config.default) <> Job.hash (spec (nv_cfg 3)))

(* ---- wire protocol compatibility ---- *)

let test_protocol_defaults_and_roundtrip () =
  (* a frame from a pre-N-version client: no replicas/families/vote
     fields at all — must decode to the defaults *)
  let old_frame =
    "{\"v\":1,\"id\":7,\"t\":\"run\",\"w\":\"mcf\",\"scale\":1,\"exp_seed\":42,\
     \"run_seed\":42,\"budget\":0,\"mode\":\"sds\",\"div\":\"none\",\
     \"policy\":\"all-loads\",\"cfg_seed\":42}"
  in
  (match Protocol.decode_request old_frame with
  | Ok { Protocol.body = Protocol.Run p; _ } ->
      Alcotest.(check int) "replicas defaults to 1" 1 p.Protocol.replicas;
      Alcotest.(check bool) "families default to []" true (p.Protocol.families = []);
      Alcotest.(check bool) "vote defaults to any-mismatch" true
        (p.Protocol.vote = Config.Any_mismatch)
  | Ok _ -> Alcotest.fail "decoded to a non-run body"
  | Error e -> Alcotest.fail ("old-format frame rejected: " ^ e));
  (* default params encode without the new fields: byte-compatible with
     pre-N-version servers *)
  let enc p = Protocol.encode_request { Protocol.rid = 1; body = Protocol.Run p } in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "default encode omits replicas" false
    (contains (enc Protocol.default_run) "replicas");
  let nv =
    {
      Protocol.default_run with
      Protocol.replicas = 3;
      families = [ "pad-jitter"; "segment-base" ];
      vote = Config.Majority;
    }
  in
  let line = enc nv in
  Alcotest.(check bool) "non-default encode ships replicas" true
    (contains line "\"replicas\":3");
  match Protocol.decode_request line with
  | Ok { Protocol.body = Protocol.Run p; _ } ->
      Alcotest.(check int) "replicas round-trip" 3 p.Protocol.replicas;
      Alcotest.(check bool) "families round-trip" true
        (p.Protocol.families = [ "pad-jitter"; "segment-base" ]);
      Alcotest.(check bool) "vote round-trips" true (p.Protocol.vote = Config.Majority)
  | Ok _ -> Alcotest.fail "decoded to a non-run body"
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e)

(* ---- surface helpers ---- *)

let test_surface_helpers () =
  Alcotest.(check bool) "surface sweeps N=1..3" true (Surface.ns = [ 1; 2; 3 ]);
  Alcotest.(check bool) "family sets include the all-families cell" true
    (List.mem_assoc "all-families" Surface.family_sets);
  let c = Surface.cfg ~n:3 ~families:family_names () in
  Alcotest.(check int) "cfg carries N" 3 c.Config.replicas;
  (* Equation 3.1-style linear model: N replicas cost N times the
     single-replica overhead above 1 *)
  Alcotest.(check bool) "linear model at N=1 is the single overhead" true
    (abs_float (Surface.linear_overhead ~n:1 ~single:1.3 -. 1.3) < 1e-9);
  Alcotest.(check bool) "linear model at N=3" true
    (abs_float (Surface.linear_overhead ~n:3 ~single:1.3 -. 1.9) < 1e-9)

let suites =
  [
    ( "nversion",
      [
        Alcotest.test_case "family registry" `Quick test_registry;
        Alcotest.test_case "replica globals" `Quick test_replica_globals;
        Alcotest.test_case "majority subset of any-mismatch" `Slow
          test_majority_subset_of_any_mismatch;
        Alcotest.test_case "rx family recovery" `Quick test_rx_family_recovery;
        Alcotest.test_case "rx skips inapplicable" `Quick test_rx_skips_inapplicable_steps;
        Alcotest.test_case "salt bump evicts cleanly" `Quick test_salt_bump_evicts_cleanly;
        Alcotest.test_case "config repr suffix" `Quick test_config_repr_nversion_suffix;
        Alcotest.test_case "protocol defaults and roundtrip" `Quick
          test_protocol_defaults_and_roundtrip;
        Alcotest.test_case "surface helpers" `Quick test_surface_helpers;
      ] );
    ( "nversion-properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_family_n_preserves_output; prop_all_families_both_modes ] );
  ]
