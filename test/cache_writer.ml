(* Helper executable for the two-process cache-federation test: a
   sibling OS process appending records to a shared cache directory
   (Unix.fork is off-limits once the test runner has spawned domains).

   Invoked as  cache_writer.exe DIR WRITER N.  [cls] and [key_of] must
   stay in lockstep with test_cache_concurrent.ml, which verifies the
   records this process writes. *)

module Experiment = Dpmr_fi.Experiment
module Cache = Dpmr_engine.Cache

let salt = "test-salt/concurrent"

let cls i =
  {
    Experiment.sf = i mod 2 = 0;
    co = false;
    ndet = false;
    ddet = i mod 3 = 0;
    timeout = false;
    t2d = (if i mod 2 = 0 then Some (Int64.of_int (i * 17)) else None);
    cost = Int64.of_int (1000 + i);
    peak_heap = 64 + i;
  }

let key_of ~writer i = Printf.sprintf "%x%07x%08x" (i mod 16) writer i

let () =
  let dir = Sys.argv.(1) in
  let writer = int_of_string Sys.argv.(2) in
  let n = int_of_string Sys.argv.(3) in
  let c = Cache.load ~dir ~flush_every:7 ~salt () in
  for i = 0 to n - 1 do
    Cache.add c ~key:(key_of ~writer i)
      ~spec_repr:(Printf.sprintf "writer=%d i=%d" writer i)
      (cls i)
  done;
  Cache.close c
