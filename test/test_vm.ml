(* Tests for the interpreter: arithmetic, control flow, memory ops,
   function calls, externs, outcome classification, cost accounting. *)

open Dpmr_ir
open Types

let run_prog ?(args = [ "prog" ]) p =
  Verifier.check_prog p;
  let vm = Dpmr_vm.Vm.create p in
  Dpmr_vm.Extern.register_base vm;
  Dpmr_vm.Vm.run ~args vm

let fresh_prog () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  p

let main_builder p = Builder.create p ~name:"main" ~params:[] ~ret:i32 ()

let test_arith_loop () =
  let p = fresh_prog () in
  let b = main_builder p in
  let acc = Builder.local b i64 (Builder.i64c 0) in
  Builder.for_ b ~from:(Builder.i64c 1) ~below:(Builder.i64c 11) (fun i ->
      let a = Builder.get b i64 acc in
      Builder.set b i64 acc (Builder.add b W64 a i));
  Builder.call0 b (Inst.Direct "print_int") [ Builder.get b i64 acc ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check string) "sum 1..10" "55" r.Dpmr_vm.Outcome.output;
  Alcotest.(check bool) "normal" true (r.Dpmr_vm.Outcome.outcome = Dpmr_vm.Outcome.Normal)

let test_linked_list () =
  let p = fresh_prog () in
  Tenv.define_struct p.Prog.tenv "LL" [ i32; Ptr (Struct "LL") ];
  let ll = Struct "LL" in
  (* createNode(data, last) -> node, as in Figure 2.9 *)
  let b = Builder.create p ~name:"createNode" ~params:[ ("data", i32); ("last", Ptr ll) ] ~ret:(Ptr ll) () in
  let n = Builder.malloc b ~name:"n" ll in
  let data_ptr = Builder.gep_field b n 0 in
  Builder.store b i32 (Builder.param b 0) data_ptr;
  let nxt_ptr = Builder.gep_field b n 1 in
  Builder.store b (Ptr ll) (Builder.null ll) nxt_ptr;
  let last = Builder.param b 1 in
  let is_null = Builder.icmp b Inst.Ine W64 (Builder.ptr_to_int b last) (Builder.i64c 0) in
  Builder.if_ b is_null (fun () ->
      let last_nxt = Builder.gep_field b last 1 in
      Builder.store b (Ptr ll) n last_nxt);
  Builder.ret b (Some n);
  (* getSum(n), as in Figure 2.10 *)
  let b = Builder.create p ~name:"getSum" ~params:[ ("n", Ptr ll) ] ~ret:i32 () in
  let sum = Builder.local b ~name:"sum" i32 (Builder.i32c 0) in
  let cur = Builder.local b ~name:"cur" (Ptr ll) (Builder.param b 0) in
  Builder.while_ b
    (fun () ->
      let c = Builder.get b (Ptr ll) cur in
      Builder.icmp b Inst.Ine W64 (Builder.ptr_to_int b c) (Builder.i64c 0))
    (fun () ->
      let c = Builder.get b (Ptr ll) cur in
      let v = Builder.load b i32 (Builder.gep_field b c 0) in
      let s = Builder.get b i32 sum in
      Builder.set b i32 sum (Builder.add b W32 s v);
      let nxt = Builder.load b (Ptr ll) (Builder.gep_field b c 1) in
      Builder.set b (Ptr ll) cur nxt);
  Builder.ret b (Some (Builder.get b i32 sum));
  (* main: build 1..5, print sum *)
  let b = main_builder p in
  let head = Builder.call1 b (Inst.Direct "createNode") [ Builder.i32c 1; Builder.null ll ] in
  let tail = Builder.local b (Ptr ll) head in
  Builder.for_ b ~from:(Builder.i64c 2) ~below:(Builder.i64c 6) (fun i ->
      let t = Builder.get b (Ptr ll) tail in
      let v = Builder.int_cast b W32 i in
      let nn = Builder.call1 b (Inst.Direct "createNode") [ v; t ] in
      Builder.set b (Ptr ll) tail nn);
  let s = Builder.call1 b (Inst.Direct "getSum") [ head ] in
  Builder.call0 b (Inst.Direct "print_int") [ Builder.int_cast b W64 s ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check string) "list sum" "15" r.Dpmr_vm.Outcome.output

let test_segfault_classified_as_crash () =
  let p = fresh_prog () in
  let b = main_builder p in
  let wild = Builder.int_to_ptr b (Ptr i32) (Builder.i64c 0x7) in
  let v = Builder.load b i32 wild in
  Builder.call0 b (Inst.Direct "print_int") [ Builder.int_cast b W64 v ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check bool) "crash" true (Dpmr_vm.Outcome.is_crash r)

let test_exit_code_classification () =
  let p = fresh_prog () in
  let b = main_builder p in
  Builder.call0 b (Inst.Direct "exit") [ Builder.i32c 3 ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check bool) "app exit 3" true
    (r.Dpmr_vm.Outcome.outcome = Dpmr_vm.Outcome.App_exit 3)

let test_timeout () =
  let p = fresh_prog () in
  let b = main_builder p in
  Builder.while_ b (fun () -> Builder.i8c 1) (fun () -> ());
  Builder.ret b (Some (Builder.i32c 0));
  Verifier.check_prog p;
  let vm = Dpmr_vm.Vm.create ~budget:10_000L p in
  Dpmr_vm.Extern.register_base vm;
  let r = Dpmr_vm.Vm.run vm in
  Alcotest.(check bool) "timeout" true (r.Dpmr_vm.Outcome.outcome = Dpmr_vm.Outcome.Timeout)

let test_function_pointers () =
  let p = fresh_prog () in
  let b = Builder.create p ~name:"double" ~params:[ ("x", i64) ] ~ret:i64 () in
  Builder.ret b (Some (Builder.add b W64 (Builder.param b 0) (Builder.param b 0)));
  let b = main_builder p in
  let fp = Builder.local b (Ptr (fun_ty i64 [ i64 ])) (Inst.Fun_addr "double") in
  let f = Builder.get b (Ptr (fun_ty i64 [ i64 ])) fp in
  let v = Builder.call1 b (Inst.Indirect f) [ Builder.i64c 21 ] in
  Builder.call0 b (Inst.Direct "print_int") [ v ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check string) "indirect call" "42" r.Dpmr_vm.Outcome.output

let test_strings_and_externs () =
  let p = fresh_prog () in
  let b = main_builder p in
  let buf = Builder.malloc b ~count:(Builder.i64c 32) i8 in
  let buf = Builder.bitcast b (Ptr (arr i8 0)) buf in
  let hello = Builder.global b ~name:"hello" (arr i8 6) (Prog.Gstring "hello") in
  let hello = Builder.bitcast b (Ptr (arr i8 0)) hello in
  ignore (Builder.call b (Inst.Direct "strcpy") [ buf; hello ]);
  let n = Builder.call1 b (Inst.Direct "strlen") [ buf ] in
  Builder.call0 b (Inst.Direct "print_str") [ buf ];
  Builder.call0 b (Inst.Direct "print_int") [ n ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check string) "strcpy+strlen" "hello5" r.Dpmr_vm.Outcome.output

let test_argv () =
  let p = fresh_prog () in
  let b =
    Builder.create p ~name:"main"
      ~params:[ ("argc", i32); ("argv", Ptr (Ptr (arr i8 0))) ]
      ~ret:i32 ()
  in
  let argv = Builder.param b 1 in
  let a1p = Builder.gep_index b argv (Builder.i64c 1) in
  let a1 = Builder.load b (Ptr (arr i8 0)) a1p in
  let v = Builder.call1 b (Inst.Direct "atoi") [ a1 ] in
  Builder.call0 b (Inst.Direct "print_int") [ Builder.int_cast b W64 v ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog ~args:[ "prog"; "1234" ] p in
  Alcotest.(check string) "atoi(argv[1])" "1234" r.Dpmr_vm.Outcome.output

let test_uninitialized_heap_is_garbage () =
  let p = fresh_prog () in
  let b = main_builder p in
  let q = Builder.malloc b i64 in
  let v = Builder.load b i64 q in
  let z = Builder.icmp b Inst.Ieq W64 v (Builder.i64c 0) in
  Builder.call0 b (Inst.Direct "print_int") [ Builder.int_cast b W64 z ];
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  (* freshly mapped heap pages hold garbage, not zero *)
  Alcotest.(check string) "not zero" "0" r.Dpmr_vm.Outcome.output

let test_cost_accounting () =
  let mk loop_n =
    let p = fresh_prog () in
    let b = main_builder p in
    let acc = Builder.local b i64 (Builder.i64c 0) in
    Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c loop_n) (fun i ->
        let a = Builder.get b i64 acc in
        Builder.set b i64 acc (Builder.add b W64 a i));
    Builder.ret b (Some (Builder.i32c 0));
    (run_prog p).Dpmr_vm.Outcome.cost
  in
  let c1 = Int64.to_float (mk 100) and c2 = Int64.to_float (mk 200) in
  Alcotest.(check bool) "cost roughly doubles with work" true
    (c2 /. c1 > 1.7 && c2 /. c1 < 2.3)

let test_qsort_extern () =
  let p = fresh_prog () in
  let cmpty = fun_ty i32 [ Ptr (arr i8 0); Ptr (arr i8 0) ] in
  let b = Builder.create p ~name:"cmp" ~params:[ ("a", Ptr (arr i8 0)); ("b", Ptr (arr i8 0)) ] ~ret:i32 () in
  let pa = Builder.bitcast b (Ptr i64) (Builder.param b 0) in
  let pb = Builder.bitcast b (Ptr i64) (Builder.param b 1) in
  let va = Builder.load b i64 pa and vb = Builder.load b i64 pb in
  let lt = Builder.icmp b Inst.Islt W64 va vb in
  let gt = Builder.icmp b Inst.Isgt W64 va vb in
  let diff = Builder.sub b W8 gt lt in
  Builder.ret b (Some (Builder.int_cast b W32 diff));
  let b = main_builder p in
  let a = Builder.malloc b ~count:(Builder.i64c 5) i64 in
  List.iteri
    (fun i v ->
      let slot = Builder.gep_index b a (Builder.i64c i) in
      Builder.store b i64 (Builder.i64c v) slot)
    [ 5; 1; 4; 2; 3 ];
  let a8 = Builder.bitcast b (Ptr (arr i8 0)) a in
  ignore cmpty;
  Builder.call0 b (Inst.Direct "qsort")
    [ a8; Builder.i64c 5; Builder.i64c 8; Inst.Fun_addr "cmp" ];
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c 5) (fun i ->
      let v = Builder.load b i64 (Builder.gep_index b a i) in
      Builder.call0 b (Inst.Direct "print_int") [ v ]);
  Builder.ret b (Some (Builder.i32c 0));
  let r = run_prog p in
  Alcotest.(check string) "sorted" "12345" r.Dpmr_vm.Outcome.output

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "arith loop" `Quick test_arith_loop;
        Alcotest.test_case "linked list build+sum" `Quick test_linked_list;
        Alcotest.test_case "segfault -> crash" `Quick test_segfault_classified_as_crash;
        Alcotest.test_case "exit code classification" `Quick test_exit_code_classification;
        Alcotest.test_case "timeout" `Quick test_timeout;
        Alcotest.test_case "function pointers" `Quick test_function_pointers;
        Alcotest.test_case "strings + externs" `Quick test_strings_and_externs;
        Alcotest.test_case "argv plumbing" `Quick test_argv;
        Alcotest.test_case "uninitialized heap garbage" `Quick test_uninitialized_heap_is_garbage;
        Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
        Alcotest.test_case "qsort extern" `Quick test_qsort_extern;
      ] );
  ]
