(* Parallel experiment engine tests (lib/engine): job hashing, the jsonl
   cache codec, classification edge cases, determinism of the domain
   pool, content-addressed cache behaviour (hits, stale-salt eviction,
   clearing), and crash durability (CRC framing, torn-tail recovery,
   periodic flush, kill-and-resume). *)

module Config = Dpmr_core.Config
module Outcome = Dpmr_vm.Outcome
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Job = Dpmr_engine.Job
module Cache = Dpmr_engine.Cache
module Chaos = Dpmr_engine.Chaos
module Pool = Dpmr_engine.Pool
module Engine = Dpmr_engine.Engine
module Progs = Dpmr_testprogs.Progs
module Workloads = Dpmr_workloads.Workloads

(* ---- shared fixtures ---- *)

(* cheap registry workload: every engine job must name a registry entry *)
let app = "mcf"

let exp_ctx =
  lazy
    (let entry = Workloads.find app in
     Experiment.make
       (Experiment.workload app (fun () -> entry.Workloads.build ~scale:1 ())))

let specs_fixture () =
  let e = Lazy.force exp_ctx in
  let mk = Job.make e ~workload:app ~scale:1 ~run_seed:42L in
  let fi =
    List.concat_map
      (fun kind ->
        List.map
          (fun site -> mk (Experiment.Fi_dpmr (Config.default, kind, site)))
          (Experiment.sites e kind))
      [ Inject.Heap_array_resize 50; Inject.Immediate_free ]
  in
  mk Experiment.Golden :: mk (Experiment.Nofi_dpmr Config.default) :: fi

let check_cls = Alcotest.testable
    (fun ppf (c : Experiment.classification) ->
      Fmt.string ppf
        (Job.entry_to_line { Job.key = ""; salt = ""; spec_repr = ""; snap = None; cls = c }))
    ( = )

(* ---- job model ---- *)

let test_hash_stable_and_salted () =
  let spec = List.hd (specs_fixture ()) in
  Alcotest.(check string) "hash is deterministic" (Job.hash spec) (Job.hash spec);
  Alcotest.(check bool) "different salt, different hash" true
    (Job.hash spec <> Job.hash ~salt:"other-code-version" spec);
  let other = { spec with Job.run_seed = 43L } in
  Alcotest.(check bool) "different spec, different hash" true
    (Job.hash spec <> Job.hash other)

let test_jsonl_roundtrip () =
  let cls t2d =
    {
      Experiment.sf = true;
      co = false;
      ndet = false;
      ddet = true;
      timeout = false;
      t2d;
      cost = 123456789L;
      peak_heap = 4096;
    }
  in
  List.iter
    (fun t2d ->
      let e =
        {
          Job.key = "00ff";
          salt = Job.default_salt;
          spec_repr = "w=\"quoted\";\ttab";
          snap = Some "0123456789abcdef";
          cls = cls t2d;
        }
      in
      match Job.entry_of_line (Job.entry_to_line e) with
      | Some e' ->
          Alcotest.(check string) "key" e.Job.key e'.Job.key;
          Alcotest.(check string) "salt" e.Job.salt e'.Job.salt;
          Alcotest.(check string) "spec" e.Job.spec_repr e'.Job.spec_repr;
          Alcotest.(check (option string)) "snap" e.Job.snap e'.Job.snap;
          Alcotest.check check_cls "classification" e.Job.cls e'.Job.cls
      | None -> Alcotest.fail "round-trip parse failed")
    [ Some 99L; None ];
  Alcotest.(check bool) "corrupt line rejected" true
    (Job.entry_of_line "{\"key\":\"x\" garbage" = None)

(* ---- Experiment.classify edge cases ---- *)

let classify_exp =
  lazy (Experiment.make (Experiment.workload "t" (fun () -> Progs.overflow ~limit:8 ())))

let synthetic ?(outcome = Outcome.Normal) ?output ?(cost = 1000L) ?fi_first_cost () =
  let e = Lazy.force classify_exp in
  {
    Outcome.outcome;
    cost;
    output = Option.value output ~default:e.Experiment.golden.Outcome.output;
    peak_heap_bytes = 100;
    mapped_pages = 1;
    fi_first_cost;
  }

let test_classify_timeout () =
  let e = Lazy.force classify_exp in
  let c =
    Experiment.classify e
      (synthetic ~outcome:Outcome.Timeout ~output:"partial" ~fi_first_cost:10L ())
  in
  Alcotest.(check bool) "timeout flagged" true c.Experiment.timeout;
  Alcotest.(check bool) "not CO" false c.Experiment.co;
  Alcotest.(check bool) "no natural detection" false c.Experiment.ndet;
  Alcotest.(check bool) "no DPMR detection" false c.Experiment.ddet;
  Alcotest.(check bool) "SF recorded" true c.Experiment.sf

let test_classify_ddet_without_fi () =
  (* a DPMR check fired before (or without) any injected code running:
     detection stands, but T2D is undefined *)
  let e = Lazy.force classify_exp in
  let c =
    Experiment.classify e (synthetic ~outcome:(Outcome.Dpmr_detect "check 0") ~output:"" ())
  in
  Alcotest.(check bool) "ddet" true c.Experiment.ddet;
  Alcotest.(check bool) "not sf" false c.Experiment.sf;
  Alcotest.(check bool) "t2d undefined" true (c.Experiment.t2d = None)

let test_classify_app_exit_correct_output () =
  (* nonzero exit with byte-identical output: not CO (exit status is part
     of correctness), counted as natural detection *)
  let e = Lazy.force classify_exp in
  let c = Experiment.classify e (synthetic ~outcome:(Outcome.App_exit 3) ()) in
  Alcotest.(check bool) "not CO" false c.Experiment.co;
  Alcotest.(check bool) "natural detection" true c.Experiment.ndet;
  Alcotest.(check bool) "no DPMR detection" false c.Experiment.ddet

let test_classify_normal_correct () =
  let e = Lazy.force classify_exp in
  let c = Experiment.classify e (synthetic ~fi_first_cost:5L ()) in
  Alcotest.(check bool) "CO" true c.Experiment.co;
  Alcotest.(check bool) "no detections" true
    ((not c.Experiment.ndet) && not c.Experiment.ddet)

(* ---- pool ---- *)

let test_pool_order_and_exception () =
  let xs = List.init 64 Fun.id in
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.check_raises "exception re-raised" Exit (fun () ->
      ignore (Pool.map ~jobs:3 (fun x -> if x = 5 then raise Exit else x) xs))

let test_pool_map_results_per_slot () =
  (* one element failing keeps every other slot's result; the failing
     slot carries the exception instead of poisoning the batch *)
  List.iter
    (fun jobs ->
      let xs = List.init 16 Fun.id in
      let rs = Pool.map_results ~jobs (fun x -> if x mod 5 = 3 then raise Exit else x * 2) xs in
      Alcotest.(check int) "one result per input" 16 (List.length rs);
      List.iteri
        (fun i r ->
          match r with
          | Ok v ->
              Alcotest.(check bool) "slot should have failed" true (i mod 5 <> 3);
              Alcotest.(check int) "value" (i * 2) v
          | Error (e, _bt) ->
              Alcotest.(check bool) "slot should have succeeded" true (i mod 5 = 3);
              Alcotest.(check bool) "original exception kept" true (e = Exit))
        rs)
    [ 1; 4 ]

(* ---- determinism guard: serial vs multi-domain ---- *)

let lines_of cs =
  List.map (fun c -> Job.entry_to_line { Job.key = ""; salt = ""; spec_repr = ""; snap = None; cls = c }) cs

let test_parallel_determinism () =
  let specs = specs_fixture () in
  let serial = Engine.create ~jobs:1 ~use_cache:false ~progress:false () in
  let parallel = Engine.create ~jobs:4 ~use_cache:false ~progress:false () in
  let a = Engine.run_specs serial specs in
  let b = Engine.run_specs parallel specs in
  Alcotest.(check (list string)) "serial and 4-domain runs byte-identical"
    (lines_of a) (lines_of b)

(* ---- content-addressed cache ---- *)

let test_dir = "_engine_test_cache"

(* chaos is pinned off here: these tests assert exact hit/miss/added
   counts, which deliberate fault injection would perturb *)
let with_clean_dir f =
  Chaos.with_chaos None (fun () ->
      ignore (Cache.clear ~dir:test_dir ());
      Fun.protect ~finally:(fun () -> ignore (Cache.clear ~dir:test_dir ())) f)

let test_cache_hits_second_run () =
  with_clean_dir (fun () ->
      let specs = specs_fixture () in
      let e1 = Engine.create ~jobs:1 ~cache_dir:test_dir ~progress:false () in
      let a = Engine.run_specs e1 specs in
      let s1 = Option.get (Engine.cache_stats e1) in
      Alcotest.(check int) "first run: all misses" (List.length specs) s1.Cache.misses;
      Alcotest.(check int) "first run: all persisted" (List.length specs) s1.Cache.added;
      let e2 = Engine.create ~jobs:1 ~cache_dir:test_dir ~progress:false () in
      let b = Engine.run_specs e2 specs in
      let s2 = Option.get (Engine.cache_stats e2) in
      Alcotest.(check int) "second run: all hits" (List.length specs) s2.Cache.hits;
      Alcotest.(check int) "second run: no misses" 0 s2.Cache.misses;
      Alcotest.(check (list string)) "cached results identical" (lines_of a) (lines_of b))

let test_cache_stale_salt_misses () =
  with_clean_dir (fun () ->
      let specs = specs_fixture () in
      let e1 =
        Engine.create ~jobs:1 ~cache_dir:test_dir ~salt:"code-v1" ~snapshots:false
          ~progress:false ()
      in
      ignore (Engine.run_specs e1 specs);
      (* same specs under a bumped code-version salt: nothing may be
         served, and loading evicts every stale line *)
      let e2 =
        Engine.create ~jobs:1 ~cache_dir:test_dir ~salt:"code-v2" ~snapshots:false
          ~progress:false ()
      in
      ignore (Engine.run_specs e2 specs);
      let s2 = Option.get (Engine.cache_stats e2) in
      Alcotest.(check int) "stale salt: zero hits" 0 s2.Cache.hits;
      Alcotest.(check int) "stale lines evicted on load" (List.length specs) s2.Cache.evicted;
      (* and the rewritten file now only holds code-v2 entries *)
      let d = Cache.disk_stats ~dir:test_dir ~salt:"code-v2" () in
      Alcotest.(check int) "compacted to current salt" d.Cache.total d.Cache.current)

let test_cache_clear () =
  with_clean_dir (fun () ->
      let specs = specs_fixture () in
      let e1 =
        Engine.create ~jobs:1 ~cache_dir:test_dir ~snapshots:false ~progress:false ()
      in
      ignore (Engine.run_specs e1 specs);
      Alcotest.(check int) "clear reports entry count" (List.length specs)
        (Cache.clear ~dir:test_dir ());
      let d = Cache.disk_stats ~dir:test_dir ~salt:Job.default_salt () in
      Alcotest.(check int) "empty after clear" 0 d.Cache.total)

(* ---- snapshot fork-key federation ---- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_cache_fork_sidecar () =
  with_clean_dir (fun () ->
      let specs = specs_fixture () in
      let e1 = Engine.create ~jobs:1 ~cache_dir:test_dir ~progress:false () in
      let a = Engine.run_specs e1 specs in
      let s1 = Option.get (Engine.cache_stats e1) in
      (* fork-key records are sidecars: counted under [forked], never
         inflating the primary [added] count the grid reasons about *)
      Alcotest.(check bool) "sidecar entries recorded" true (s1.Cache.forked > 0);
      Alcotest.(check int) "primary entries unaffected" (List.length specs)
        s1.Cache.added;
      Engine.close e1;
      let raw =
        String.concat ""
          (List.filter_map
             (fun p ->
               let p = Cache.shard_file test_dir p in
               if Sys.file_exists p then
                 Some (In_channel.with_open_bin p In_channel.input_all)
               else None)
             (List.init Cache.shard_count Fun.id))
      in
      Alcotest.(check bool) "sidecar records on disk" true (contains raw "fork:");
      Alcotest.(check bool) "sidecars carry the snapshot hash" true
        (contains raw "\"snap\"");
      (* a fresh engine still serves every primary spec from cache, and
         the snapshot-tagged lines survive a verify-grade reload *)
      let e2 = Engine.create ~jobs:1 ~cache_dir:test_dir ~progress:false () in
      let b = Engine.run_specs e2 specs in
      let s2 = Option.get (Engine.cache_stats e2) in
      Alcotest.(check int) "second run: all hits" (List.length specs) s2.Cache.hits;
      Alcotest.(check (list string)) "results identical" (lines_of a) (lines_of b);
      Engine.close e2;
      let d = Cache.disk_stats ~dir:test_dir ~salt:Job.default_salt () in
      Alcotest.(check int) "no damaged lines" 0 d.Cache.damaged)

(* ---- crash durability: corruption recovery, flush, resume ---- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* the cache shards records over results-<x>.jsonl by hash prefix: the
   corruption tests damage a shard file that actually holds records *)
let nonempty_shards () =
  List.filter
    (fun p -> Sys.file_exists p && read_file p <> "")
    (List.init Cache.shard_count (Cache.shard_file test_dir))

(** Fill the test cache through a real engine run; returns the specs and
    their results. *)
(* snapshots off: these tests assert exact on-disk line counts, which
   fork-key sidecar records (snapshot federation) would shift *)
let populate () =
  let specs = specs_fixture () in
  let e =
    Engine.create ~jobs:1 ~cache_dir:test_dir ~snapshots:false ~progress:false ()
  in
  let rs = Engine.run_specs e specs in
  (specs, rs)

let reload () = Cache.load ~dir:test_dir ~salt:Job.default_salt ()

let check_repaired ~survivors =
  (* loading damage repairs the file in place (atomic compaction): a
     second scan must be clean and hold exactly the survivors *)
  let d = Cache.disk_stats ~dir:test_dir ~salt:Job.default_salt () in
  Alcotest.(check int) "repaired: no damaged lines" 0 d.Cache.damaged;
  Alcotest.(check bool) "repaired: clean tail" false d.Cache.torn_tail;
  Alcotest.(check int) "repaired: survivors intact" survivors d.Cache.total

let test_cache_torn_tail () =
  with_clean_dir (fun () ->
      let specs, _ = populate () in
      let n = List.length specs in
      let path = List.hd (nonempty_shards ()) in
      let s = read_file path in
      (* crash mid-append: the shard's final record loses its last bytes
         and its newline *)
      write_file path (String.sub s 0 (String.length s - 9));
      let c = reload () in
      Alcotest.(check int) "torn record dropped" (n - 1) (Cache.entries c);
      Alcotest.(check int) "torn tail counted" 1 (Cache.stats c).Cache.damaged;
      Cache.close c;
      check_repaired ~survivors:(n - 1))

let test_cache_garbage_line () =
  with_clean_dir (fun () ->
      let specs, _ = populate () in
      let n = List.length specs in
      let path = List.hd (nonempty_shards ()) in
      (match String.split_on_char '\n' (read_file path) with
      | first :: rest ->
          write_file path (String.concat "\n" (first :: "#### not a record ####" :: rest))
      | [] -> Alcotest.fail "empty cache file");
      let c = reload () in
      Alcotest.(check int) "all real records survive" n (Cache.entries c);
      Alcotest.(check int) "garbage counted" 1 (Cache.stats c).Cache.damaged;
      Cache.close c;
      check_repaired ~survivors:n)

let test_cache_crc_mismatch () =
  with_clean_dir (fun () ->
      let specs, _ = populate () in
      let n = List.length specs in
      let path = List.hd (nonempty_shards ()) in
      let b = Bytes.of_string (read_file path) in
      (* single byte flip inside the first record's payload: the line
         stays structurally plausible, only the CRC can catch it *)
      let pos = 25 in
      Bytes.set b pos (if Bytes.get b pos = 'x' then 'y' else 'x');
      write_file path (Bytes.to_string b);
      let c = reload () in
      Alcotest.(check int) "flipped record dropped" (n - 1) (Cache.entries c);
      Alcotest.(check int) "crc mismatch counted" 1 (Cache.stats c).Cache.damaged;
      (* a damaged record is a miss, never a wrong result *)
      let missed = ref 0 in
      List.iter
        (fun spec ->
          if Cache.find c (Job.hash ~salt:Job.default_salt spec) = None then incr missed)
        specs;
      Alcotest.(check int) "exactly one lookup degraded to a miss" 1 !missed;
      Cache.close c;
      check_repaired ~survivors:(n - 1))

let test_cache_random_corruption =
  (* any byte-level corruption anywhere in the file: load never raises,
     never over-counts survivors, and always repairs to a clean file *)
  QCheck.Test.make ~name:"cache: random corruption always recovered" ~count:40
    QCheck.(pair small_nat small_nat)
    (fun (pos, cut) ->
      Chaos.with_chaos None (fun () ->
          ignore (Cache.clear ~dir:test_dir ());
          Fun.protect ~finally:(fun () -> ignore (Cache.clear ~dir:test_dir ()))
            (fun () ->
              let specs, _ = populate () in
              let n = List.length specs in
              let shards = nonempty_shards () in
              let path = List.nth shards (pos mod List.length shards) in
              let pristine = read_file path in
              let len = String.length pristine in
              let pos = pos mod len in
              let cut = min (1 + cut) (len - pos) in
              let b = Bytes.of_string pristine in
              Bytes.fill b pos cut 'Z';
              write_file path (Bytes.to_string b);
              let c = reload () in
              let survivors = Cache.entries c in
              Cache.close c;
              let d = Cache.disk_stats ~dir:test_dir ~salt:Job.default_salt () in
              survivors <= n && d.Cache.damaged = 0 && (not d.Cache.torn_tail)
              && d.Cache.total = survivors)))

let test_cache_flush_every () =
  with_clean_dir (fun () ->
      let cls =
        {
          Experiment.sf = true; co = false; ndet = false; ddet = true;
          timeout = false; t2d = Some 7L; cost = 1L; peak_heap = 0;
        }
      in
      let c = Cache.load ~dir:test_dir ~flush_every:2 ~salt:"s" () in
      List.iter
        (fun k -> Cache.add c ~key:k ~spec_repr:"r" cls)
        [ "k1"; "k2"; "k3"; "k4"; "k5" ];
      (* no close, no explicit flush: everything up to the last periodic
         flush must already be on disk — that is what an interrupted
         campaign resumes from *)
      let d = Cache.disk_stats ~dir:test_dir ~salt:"s" () in
      Alcotest.(check bool) "flushed prefix on disk"
        true (d.Cache.current >= 4);
      Cache.close c)

let test_kill_and_resume () =
  with_clean_dir (fun () ->
      let specs, a = populate () in
      (* simulate dying mid-append after the run's flush: a torn
         half-record with no terminating newline on one shard *)
      let path = List.hd (nonempty_shards ()) in
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"crc\":\"00000000\",\"key\":\"torn";
      close_out oc;
      let e2 = Engine.create ~jobs:1 ~cache_dir:test_dir ~progress:false () in
      let b = Engine.run_specs e2 specs in
      let s2 = Option.get (Engine.cache_stats e2) in
      Alcotest.(check bool) "resume serves the flushed prefix" true (s2.Cache.hits > 0);
      Alcotest.(check int) "torn tail counted, not fatal" 1 s2.Cache.damaged;
      Alcotest.(check (list string)) "resumed results byte-identical" (lines_of a)
        (lines_of b))

let test_batch_dedup () =
  (* identical specs inside one batch execute once even without a cache *)
  let spec = List.hd (specs_fixture ()) in
  let engine = Engine.create ~jobs:1 ~use_cache:false ~progress:false () in
  let rs = Engine.run_specs engine [ spec; spec; spec ] in
  Alcotest.(check int) "three answers" 3 (List.length rs);
  Alcotest.(check int) "one execution" 1 (Engine.telemetry engine).Dpmr_engine.Telemetry.jobs_run

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "job hash stable and salt-sensitive" `Quick
          test_hash_stable_and_salted;
        Alcotest.test_case "cache line jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "classify: timeout" `Quick test_classify_timeout;
        Alcotest.test_case "classify: DPMR detect without SF" `Quick
          test_classify_ddet_without_fi;
        Alcotest.test_case "classify: app-exit with correct output" `Quick
          test_classify_app_exit_correct_output;
        Alcotest.test_case "classify: normal correct run" `Quick test_classify_normal_correct;
        Alcotest.test_case "pool: ordering and exceptions" `Quick
          test_pool_order_and_exception;
        Alcotest.test_case "pool: per-slot results survive a failing slot" `Quick
          test_pool_map_results_per_slot;
        Alcotest.test_case "determinism: serial vs 4 domains" `Quick
          test_parallel_determinism;
        Alcotest.test_case "cache: second run all hits" `Quick test_cache_hits_second_run;
        Alcotest.test_case "cache: stale code-version salt misses" `Quick
          test_cache_stale_salt_misses;
        Alcotest.test_case "cache: clear" `Quick test_cache_clear;
        Alcotest.test_case "cache: snapshot fork-key sidecar records" `Quick
          test_cache_fork_sidecar;
        Alcotest.test_case "cache: torn tail dropped and repaired" `Quick
          test_cache_torn_tail;
        Alcotest.test_case "cache: garbage line dropped, records kept" `Quick
          test_cache_garbage_line;
        Alcotest.test_case "cache: CRC mismatch degrades to one miss" `Quick
          test_cache_crc_mismatch;
        QCheck_alcotest.to_alcotest test_cache_random_corruption;
        Alcotest.test_case "cache: periodic flush persists without close" `Quick
          test_cache_flush_every;
        Alcotest.test_case "cache: kill and resume serves flushed prefix" `Quick
          test_kill_and_resume;
        Alcotest.test_case "batch dedup of identical specs" `Quick test_batch_dedup;
      ] );
  ]
