(* Tiered execution: the closure-compiled top tier must be invisible.
   Three groups of checks:

   1. differential — real workloads produce byte-identical outcomes
      under the reference tree-walker, the lowered interpreter, and the
      forced compiled tier;

   2. a fault-injection grid classifies identically whether members run
      lowered or compiled, from zero or resumed from a copy-on-write
      snapshot — and the compiled tier actually deoptimizes when the
      injected fault activates mid-run;

   3. [Vm.resume ?remap] edges: a member whose divergence frontier sits
      in a call block (a compiled-tier deopt point), and whose remap
      bijection shifts registers that the compiled tier's fused
      superinstructions then read from the translated frame. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Vm = Dpmr_vm.Vm
module Lower = Dpmr_vm.Lower
module Outcome = Dpmr_vm.Outcome
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Workloads = Dpmr_workloads.Workloads

let with_tier mode f =
  let old = Vm.tier_mode () in
  Vm.set_tier_mode mode;
  Fun.protect ~finally:(fun () -> Vm.set_tier_mode old) f

let run_fp (r : Outcome.run) =
  Printf.sprintf "%s cost=%Ld heap=%d out=%S"
    (Outcome.to_string r.Outcome.outcome)
    r.Outcome.cost r.Outcome.peak_heap_bytes r.Outcome.output

(* ---- 1. three-tier differential on real workloads ------------------- *)

let test_three_tiers_agree () =
  List.iter
    (fun name ->
      let entry = Workloads.find name in
      let p = entry.Workloads.build ~scale:1 () in
      let golden mode = with_tier mode (fun () -> run_fp (Dpmr.run_plain p)) in
      let reference = golden Vm.Tier_ref in
      Alcotest.(check string)
        (name ^ ": lowered = reference") reference (golden Vm.Tier_lowered);
      Alcotest.(check string)
        (name ^ ": compiled = reference") reference (golden Vm.Tier_compiled);
      Alcotest.(check string)
        (name ^ ": auto = reference") reference (golden Vm.Tier_auto);
      let cfg = { Config.default with Config.diversity = Config.Rearrange_heap } in
      let dpmr mode = with_tier mode (fun () -> run_fp (Dpmr.run_dpmr cfg p)) in
      let lowered = dpmr Vm.Tier_lowered in
      Alcotest.(check string)
        (name ^ ": transformed compiled = lowered") lowered
        (dpmr Vm.Tier_compiled))
    [ "equake"; "mcf" ]

(* ---- 2. fault grid: lowered vs compiled, from zero vs resumed ------- *)

let test_grid_tiers_agree () =
  let entry = Workloads.find "mcf" in
  let e =
    Experiment.make
      (Experiment.workload "mcf" (fun () -> entry.Workloads.build ~scale:1 ()))
  in
  let cfg = { Config.default with Config.diversity = Config.Rearrange_heap } in
  let kind = Inject.Immediate_free in
  let sites =
    match Experiment.sites e kind with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]
    | l -> l
  in
  Alcotest.(check bool) "workload has injectable sites" true (sites <> []);
  let variants =
    Array.of_list (List.map (fun s -> Experiment.Fi_dpmr (cfg, kind, s)) sites)
  in
  let classify_all mode ~resume =
    with_tier mode (fun () ->
        if resume then begin
          let g = Experiment.plan_group e variants in
          Array.to_list (Array.mapi (fun i _ -> Experiment.run_member e g i) variants)
        end
        else Array.to_list (Array.map (Experiment.run_variant e) variants))
  in
  let baseline = classify_all Vm.Tier_lowered ~resume:false in
  Alcotest.(check bool)
    "at least one injection activated" true
    (List.exists (fun c -> c.Experiment.sf) baseline);
  let _, deopts_before = Vm.tier_stats () in
  Alcotest.(check bool)
    "compiled from-zero grid = lowered" true
    (classify_all Vm.Tier_compiled ~resume:false = baseline);
  let _, deopts_after = Vm.tier_stats () in
  Alcotest.(check bool)
    "fault activation forced compiled-tier deopts" true
    (deopts_after > deopts_before);
  Alcotest.(check bool)
    "lowered resumed grid = lowered from zero" true
    (classify_all Vm.Tier_lowered ~resume:true = baseline);
  Alcotest.(check bool)
    "compiled resumed grid = lowered from zero" true
    (classify_all Vm.Tier_compiled ~resume:true = baseline)

(* ---- 3. resume ?remap edges ----------------------------------------- *)

(* Baseline and member share functions, globals and block structure; the
   member does an extra boxed round-trip inside the then-branch of a
   conditional the baseline run takes.  The alpha matcher reaches the
   join block through the (structurally identical) else-branch, so the
   join and the hot loop after it match modulo a shifted register
   numbering — a genuine non-identity bijection.  The member-side
   frontier block contains calls (box/free), so its boundary is a
   compiled-tier deoptimization point; and the hot loop past the join
   lowers to fused load/arith/store runs whose array-pointer and
   accumulator operands were captured in the baseline's numbering, so
   the resumed compiled tier reads them through the remap. *)
let build_remap_prog ~extra () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  let b = B.create p ~name:"box" ~params:[ ("v", i64) ] ~ret:(Ptr i64) () in
  let cell = B.malloc b i64 in
  B.store b i64 (B.param b 0) cell;
  B.ret b (Some cell);
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let arr = B.malloc b ~name:"arr" ~count:(B.i64c 64) i64 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 64) (fun i ->
      B.store b i64 (B.mul b W64 i (B.i64c 7)) (B.gep_index b arr i));
  let acc = B.local b ~name:"acc" i64 (B.i64c 0) in
  let flag = B.load b i64 (B.gep_index b arr (B.i64c 1)) in
  B.if_else b
    (B.icmp b Isgt W64 flag (B.i64c 0))
    (fun () ->
      (* the baseline run takes this branch (arr[1] = 7 > 0) *)
      let c = B.call1 b (Direct "box") [ B.i64c 9 ] in
      let v = B.load b i64 c in
      B.free b c;
      if extra then begin
        let c2 = B.call1 b (Direct "box") [ B.i64c 5 ] in
        let w = B.load b i64 c2 in
        B.free b c2;
        B.set b i64 acc (B.add b W64 v w)
      end
      else B.set b i64 acc v)
    (fun () -> B.set b i64 acc (B.i64c 1));
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 64) (fun i ->
      let v = B.load b i64 (B.gep_index b arr i) in
      let m = B.mul b W64 (B.get b i64 acc) (B.i64c 31) in
      B.set b i64 acc (B.add b W64 m v));
  B.call0 b (Direct "print_int") [ B.get b i64 acc ];
  B.ret b (Some (B.i32c 0));
  p

let test_resume_remap_compiled () =
  let base = build_remap_prog ~extra:false () in
  let memb = build_remap_prog ~extra:true () in
  Verifier.check_prog base;
  Verifier.check_prog memb;
  let lbase = Lower.lower_prog base and lmemb = Lower.lower_prog memb in
  let diffs =
    match Lower.diff_limits lbase lmemb with
    | Some d -> d
    | None -> Alcotest.fail "expected a common structural prefix"
  in
  let fd =
    match Hashtbl.find_opt diffs "main" with
    | Some fd -> fd
    | None -> Alcotest.fail "expected main to diverge"
  in
  let rm =
    match fd.Lower.fd_remap with
    | Some rm -> rm
    | None -> Alcotest.fail "expected a non-identity register bijection"
  in
  Alcotest.(check bool)
    "the bijection actually shifts registers" true
    (Array.exists (fun i -> i >= 0) rm.Lower.rm_regs
    && Array.to_list rm.Lower.rm_regs
       |> List.mapi (fun i j -> (i, j))
       |> List.exists (fun (i, j) -> j >= 0 && i <> j));
  (* the member-side frontier block contains calls: its boundary is a
     compiled-tier deoptimization point *)
  let frontier_is_call_block =
    let lf = Hashtbl.find lmemb.Lower.funcs "main" in
    let limits = fd.Lower.fd_limits in
    let rec first i =
      if i >= Array.length limits then None
      else if limits.(i) < max_int then Some i
      else first (i + 1)
    in
    match first 0 with
    | None -> false
    | Some bidx ->
        let midx =
          match fd.Lower.fd_remap with
          | Some rm when bidx < Array.length rm.Lower.rm_blocks
            && rm.Lower.rm_blocks.(bidx) >= 0 ->
              rm.Lower.rm_blocks.(bidx)
          | _ -> bidx
        in
        lf.Lower.lblocks.(midx).Lower.lflags land Lower.b_call <> 0
  in
  Alcotest.(check bool)
    "frontier block is a deopt point (call block)" true frontier_is_call_block;
  let remap fname =
    match Hashtbl.find_opt diffs fname with
    | Some fd -> fd.Lower.fd_remap
    | None -> None
  in
  let from_zero =
    with_tier Vm.Tier_lowered (fun () ->
        run_fp (Dpmr.run_plain ~lowered:lmemb memb))
  in
  let resumed mode =
    with_tier mode (fun () ->
        let limitss = [| Lower.limit_table diffs |] in
        match Dpmr.watched_plain ~lowered:lbase base limitss with
        | [| Vm.Wsnap snap |] ->
            run_fp (Dpmr.resume_plain ~lowered:lmemb ~remap memb snap)
        | _ -> Alcotest.fail "expected the baseline to reach the frontier")
  in
  Alcotest.(check string)
    "lowered resume through the remap = from zero" from_zero
    (resumed Vm.Tier_lowered);
  let promos_before, _ = Vm.tier_stats () in
  Alcotest.(check string)
    "compiled resume through the remap = from zero" from_zero
    (resumed Vm.Tier_compiled);
  let promos_after, _ = Vm.tier_stats () in
  Alcotest.(check bool)
    "the resumed member actually ran compiled" true
    (promos_after > promos_before)

let suites =
  [
    ( "tier",
      [
        Alcotest.test_case "three tiers agree on workloads" `Quick
          test_three_tiers_agree;
        Alcotest.test_case "fault grid agrees across tiers and plans" `Quick
          test_grid_tiers_agree;
        Alcotest.test_case "resume ?remap feeds the compiled tier" `Quick
          test_resume_remap_compiled;
      ] );
  ]
