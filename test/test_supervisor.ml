(* Supervision-layer tests (lib/engine): retry-with-backoff for
   transient failures, quarantine for deterministic ones, wall-clock
   deadlines through the VM's cooperative poll hook, and chaos mode —
   deterministic fault injection into the engine's own workers that the
   supervisor must absorb without changing any result. *)

module Config = Dpmr_core.Config
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Job = Dpmr_engine.Job
module Chaos = Dpmr_engine.Chaos
module Supervisor = Dpmr_engine.Supervisor
module Engine = Dpmr_engine.Engine
module Telemetry = Dpmr_engine.Telemetry
module Vm = Dpmr_vm.Vm
module Workloads = Dpmr_workloads.Workloads

(* fast backoff so retry tests don't sleep for real *)
let fast =
  {
    Supervisor.default_policy with
    Supervisor.backoff = 1e-4;
    backoff_max = 1e-3;
  }

exception Flaky of int

let () = Supervisor.register_transient (function Flaky _ -> true | _ -> false)

(* ---- classification ---- *)

let test_classify_exn () =
  let is r e = Supervisor.classify_exn e = r in
  Alcotest.(check bool) "chaos faults are transient" true
    (is Supervisor.Transient (Chaos.Injected_fault "x"));
  Alcotest.(check bool) "registered predicate is transient" true
    (is Supervisor.Transient (Flaky 1));
  Alcotest.(check bool) "cancellation is a deadline" true
    (is Supervisor.Deadline (Vm.Cancelled "x"));
  Alcotest.(check bool) "anything else is fatal" true
    (is Supervisor.Fatal (Failure "bug"))

(* ---- retry / quarantine ---- *)

(* these assert exact attempt counts and failure reasons, which
   environment-driven chaos injection (DPMR_CHAOS) would perturb *)
let no_chaos f () = Chaos.with_chaos None f

let test_transient_retry () =
  let sup = Supervisor.create ~policy:fast () in
  let n = ref 0 in
  (match
     Supervisor.run sup ~key:"flaky" (fun () ->
         incr n;
         if !n < 3 then raise (Flaky !n) else 42)
   with
  | Ok v -> Alcotest.(check int) "eventual result" 42 v
  | Error f -> Alcotest.failf "unexpected failure: %s" (Supervisor.failure_to_string f));
  Alcotest.(check int) "three attempts" 3 !n;
  Alcotest.(check int) "two retries recorded" 2 (Supervisor.retries sup);
  Alcotest.(check int) "no failures" 0 (Supervisor.failures sup);
  Alcotest.(check int) "nothing quarantined" 0 (Supervisor.quarantined sup)

let test_transient_exhausted () =
  let sup = Supervisor.create ~policy:{ fast with Supervisor.max_retries = 2 } () in
  let n = ref 0 in
  (match
     Supervisor.run sup ~key:"always-flaky" (fun () ->
         incr n;
         raise (Flaky !n))
   with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error f ->
      Alcotest.(check bool) "reason: transient exhausted" true
        (f.Supervisor.freason = Supervisor.Transient);
      Alcotest.(check int) "attempts = 1 + max_retries" 3 f.Supervisor.fattempts);
  Alcotest.(check int) "quarantined after exhaustion" 1 (Supervisor.quarantined sup)

let test_fatal_quarantine () =
  let sup = Supervisor.create ~policy:fast () in
  let n = ref 0 in
  (match
     Supervisor.run sup ~key:"boom" (fun () ->
         incr n;
         failwith "deterministic bug")
   with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Alcotest.(check bool) "reason: fatal" true (f.Supervisor.freason = Supervisor.Fatal);
      Alcotest.(check int) "no retry of fatal" 1 f.Supervisor.fattempts);
  (* resubmitting a quarantined key answers from the record: the job
     must not execute again *)
  (match Supervisor.run sup ~key:"boom" (fun () -> incr n; 1) with
  | Ok _ -> Alcotest.fail "quarantined key must not succeed"
  | Error f ->
      Alcotest.(check bool) "quarantine reports original reason" true
        (f.Supervisor.freason = Supervisor.Fatal));
  Alcotest.(check int) "executed exactly once" 1 !n;
  Alcotest.(check int) "one key quarantined" 1 (Supervisor.quarantined sup);
  Alcotest.(check int) "both submissions counted failed" 2 (Supervisor.failures sup)

(* ---- deadline via the VM poll hook ---- *)

(* a genuinely wedged job: infinite loop under an effectively unlimited
   cost budget, so only the wall-clock deadline can stop it *)
let infinite_prog () =
  let open Dpmr_ir in
  let open Types in
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let x = Builder.local b i32 (Builder.i32c 0) in
  Builder.while_ b
    (fun () -> Builder.icmp b Inst.Ine W32 (Builder.i32c 0) (Builder.i32c 1))
    (fun () ->
      Builder.set b i32 x (Builder.add b W32 (Builder.get b i32 x) (Builder.i32c 1)));
  Builder.ret b (Some (Builder.i32c 0));
  p

let test_deadline_cancels_wedged_vm () =
  let sup =
    Supervisor.create
      ~policy:{ fast with Supervisor.deadline = Some 0.05; max_retries = 0 }
      ()
  in
  let t0 = Unix.gettimeofday () in
  (match
     Supervisor.run sup ~key:"wedged" (fun () ->
         let vm = Vm.create ~budget:1_000_000_000_000L (infinite_prog ()) in
         Vm.run vm)
   with
  | Ok _ -> Alcotest.fail "wedged job cannot finish"
  | Error f ->
      Alcotest.(check bool) "reason: deadline" true
        (f.Supervisor.freason = Supervisor.Deadline));
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "cancelled promptly (not budget-bound)" true (elapsed < 5.);
  (* the hook is cleared afterwards: an ordinary VM run still works *)
  let sup2 = Supervisor.create ~policy:fast () in
  match
    Supervisor.run sup2 ~key:"ok" (fun () ->
        let vm = Vm.create (Dpmr_testprogs.Progs.linked_list ()) in
        Dpmr_vm.Extern.register_base vm;
        (Vm.run vm).Dpmr_vm.Outcome.outcome)
  with
  | Ok o -> Alcotest.(check bool) "later run unaffected" true (o = Dpmr_vm.Outcome.Normal)
  | Error f -> Alcotest.failf "unexpected failure: %s" (Supervisor.failure_to_string f)

(* ---- chaos mode through the whole engine ---- *)

let specs_fixture () =
  let entry = Workloads.find "mcf" in
  let e =
    Experiment.make
      (Experiment.workload "mcf" (fun () -> entry.Workloads.build ~scale:1 ()))
  in
  let mk = Job.make e ~workload:"mcf" ~scale:1 ~run_seed:42L in
  mk Experiment.Golden
  :: List.map
       (fun site -> mk (Experiment.Fi_dpmr (Config.default, Inject.Heap_array_resize 50, site)))
       (Experiment.sites e (Inject.Heap_array_resize 50))

let lines_of cs =
  List.map
    (fun c -> Job.entry_to_line { Job.key = ""; salt = ""; spec_repr = ""; snap = None; cls = c })
    cs

let test_chaos_is_result_transparent () =
  let specs = specs_fixture () in
  let quiet =
    Chaos.with_chaos None (fun () ->
        Engine.run_specs (Engine.create ~jobs:1 ~use_cache:false ~progress:false ()) specs)
  in
  (* chaos injects faults and stalls into every job's first attempts;
     the supervisor retries past them, so results must be byte-identical
     and no job may be lost *)
  let eng = Engine.create ~jobs:2 ~use_cache:false ~progress:false () in
  let noisy =
    Chaos.with_chaos
      (Some (Chaos.make ~prob:1.0 ~seed:7L ()))
      (fun () -> Engine.run_specs eng specs)
  in
  Alcotest.(check (list string)) "chaos run byte-identical" (lines_of quiet)
    (lines_of noisy);
  let tel = Engine.telemetry eng in
  Alcotest.(check bool) "chaos forced retries" true (tel.Telemetry.retries > 0);
  Alcotest.(check int) "no job abandoned" 0 tel.Telemetry.jobs_failed

let test_fatal_spec_is_a_hole () =
  Chaos.with_chaos None (fun () ->
      match specs_fixture () with
      | [] -> Alcotest.fail "empty fixture"
      | good :: _ as specs ->
          let bad = { good with Job.workload = "no-such-workload" } in
          let eng = Engine.create ~jobs:2 ~use_cache:false ~progress:false () in
          (match Engine.run_specs_r eng (bad :: specs) with
          | [] -> Alcotest.fail "no results"
          | hole :: rest ->
              (match hole with
              | Experiment.Job_failed f ->
                  Alcotest.(check string) "fatal reason carried" "fatal"
                    f.Experiment.fail_reason
              | Experiment.Run _ -> Alcotest.fail "bad spec must be a hole");
              Alcotest.(check int) "rest of the batch completed"
                (List.length specs)
                (List.length (List.filter_map Experiment.result_classification rest)));
          Alcotest.(check int) "failure counted" 1
            (Engine.telemetry eng).Telemetry.jobs_failed;
          (* the strict interface reports the hole as an exception *)
          let eng2 = Engine.create ~jobs:1 ~use_cache:false ~progress:false () in
          match Engine.run_specs eng2 [ bad ] with
          | _ -> Alcotest.fail "run_specs must raise on a failed job"
          | exception Failure _ -> ())

let suites =
  [
    ( "supervisor",
      [
        Alcotest.test_case "exception classification" `Quick test_classify_exn;
        Alcotest.test_case "transient failures retry then succeed" `Quick
          (no_chaos test_transient_retry);
        Alcotest.test_case "exhausted transients quarantine" `Quick
          (no_chaos test_transient_exhausted);
        Alcotest.test_case "fatal failures quarantine without retry" `Quick
          (no_chaos test_fatal_quarantine);
        Alcotest.test_case "deadline cancels a wedged VM" `Quick
          (no_chaos test_deadline_cancels_wedged_vm);
        Alcotest.test_case "chaos: engine results unchanged under injection" `Quick
          test_chaos_is_result_transparent;
        Alcotest.test_case "fatal spec: hole, not batch abort" `Quick
          test_fatal_spec_is_a_hole;
      ] );
  ]
