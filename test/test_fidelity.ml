(* Fidelity tests against the dissertation's worked transformation
   figures (2.9/2.10 for SDS, 4.1/4.2 for MDS) and the SDS-vs-MDS
   pointer-comparison trade-off (§2.9/§4.1). *)

open Dpmr_ir
open Types
open Inst
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Progs = Dpmr_testprogs.Progs

let sds = Config.default
let mds = { Config.default with Config.mode = Config.Mds }

let count_insts_in (f : Func.t) pred =
  let n = ref 0 in
  Func.iter_insts f (fun _ i -> if pred i then incr n);
  !n

(* --- Figure 2.9: createNode under SDS --- *)

let test_fig_2_9_createnode_sds () =
  let tp = Dpmr.transform sds (Progs.linked_list ()) in
  let f = Prog.func tp "createNode" in
  (* rvSop + (data) + (last, last_r, last_s) = 5 parameters *)
  Alcotest.(check int) "5 params" 5 (List.length f.Func.params);
  (* rvSop points at the return value's {ROP; NSOP} pair struct *)
  (match snd (List.hd f.Func.params) with
  | Ptr (Struct _) -> ()
  | t -> Alcotest.failf "rvSop type %a" Types.pp t);
  (* one heap allocation becomes three: application, replica, shadow *)
  Alcotest.(check int) "3 mallocs" 3
    (count_insts_in f (function Malloc _ -> true | _ -> false));
  (* the pointer store *lastNxtPtr = n expands to 4 stores total:
     app, replica, shadow ROP, shadow NSOP; plus the data stores (2) and
     null-init stores (4) and the two rvSop stores *)
  Alcotest.(check int) "12 stores" 12
    (count_insts_in f (function Store _ -> true | _ -> false))

(* --- Figure 2.10: getSum under SDS --- *)

let test_fig_2_10_getsum_sds () =
  let tp = Dpmr.transform sds (Progs.linked_list ()) in
  let f = Prog.func tp "getSum" in
  (* (n, n_r, n_s): non-pointer return adds no rvSop *)
  Alcotest.(check int) "3 params" 3 (List.length f.Func.params);
  (* every load gained a replica comparison: count cbr edges into the
     detect block *)
  let detect_branches =
    List.fold_left
      (fun acc (b : Func.block) ->
        match b.Func.term with
        | Cbr (_, _, l) when l = "dpmr.detect" -> acc + 1
        | _ -> acc)
      0 f.Func.blocks
  in
  Alcotest.(check bool) "load checks branch to the detect block" true
    (detect_branches >= 2)

(* --- Figures 4.1/4.2: MDS versions --- *)

let test_fig_4_1_createnode_mds () =
  let tp = Dpmr.transform mds (Progs.linked_list ()) in
  let f = Prog.func tp "createNode" in
  (* rvRopPtr + data + (last, last_r) = 4 parameters *)
  Alcotest.(check int) "4 params" 4 (List.length f.Func.params);
  (* rvRopPtr : LL** *)
  (match snd (List.hd f.Func.params) with
  | Ptr (Ptr (Struct _)) -> ()
  | t -> Alcotest.failf "rvRopPtr type %a" Types.pp t);
  Alcotest.(check int) "2 mallocs" 2
    (count_insts_in f (function Malloc _ -> true | _ -> false));
  (* stores: each of the 3 original stores doubles, plus one rvRopPtr
     store = 7 (Figure 4.1) *)
  Alcotest.(check int) "7 stores" 7
    (count_insts_in f (function Store _ -> true | _ -> false))

let test_fig_4_2_getsum_mds () =
  let tp = Dpmr.transform mds (Progs.linked_list ()) in
  let f = Prog.func tp "getSum" in
  Alcotest.(check int) "2 params" 2 (List.length f.Func.params);
  (* MDS never geps shadow structs *)
  Alcotest.(check int) "no shadow field addressing" 0
    (count_insts_in f (function
      | Gep_field (_, s, _, _) ->
          String.length s > 6 && String.sub s 0 6 = "satsdw"
      | _ -> false))

(* --- §2.9/§4.1: SDS compares loaded pointers, MDS cannot --- *)

let pointer_load_prog () =
  let p = Progs.fresh () in
  Tenv.define_struct p.Prog.tenv "Cfg" [ Ptr i64 ];
  Prog.add_global p
    { Prog.gname = "table"; gty = arr i64 4; ginit = Prog.Gagg [ Prog.Gint 5L; Prog.Gint 6L; Prog.Gint 7L; Prog.Gint 8L ] };
  Prog.add_global p
    { Prog.gname = "cfg"; gty = Struct "Cfg"; ginit = Prog.Gagg [ Prog.Gptr_global "table" ] };
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let tptr = Builder.load b (Ptr i64) (Builder.gep_field b (Global "cfg") 0) in
  let v = Builder.load b i64 (Builder.gep_index b tptr (Builder.i64c 1)) in
  Builder.call0 b (Direct "print_int") [ v ];
  Builder.ret b (Some (Builder.i32c 0));
  p

let run_with_poked_pointer mode =
  let p = pointer_load_prog () in
  let cfg = { Config.default with Config.mode } in
  let tp = Dpmr.transform cfg p in
  let vm = Dpmr.vm_dpmr ~mode tp in
  (* corrupt the APPLICATION's stored pointer (replica left intact) *)
  let addr = Hashtbl.find vm.Dpmr_vm.Vm.global_addr "cfg" in
  Dpmr_memsim.Mem.write_int vm.Dpmr_vm.Vm.mem addr 8 0x31337L;
  Dpmr_vm.Vm.run vm

let test_sds_detects_corrupted_pointer_at_load () =
  let r = run_with_poked_pointer Config.Sds in
  Alcotest.(check bool)
    ("SDS flags the pointer load itself: " ^ Outcome.to_string r.Outcome.outcome)
    true (Outcome.is_dpmr_detect r)

let test_mds_cannot_compare_loaded_pointers () =
  (* MDS never compares pointer loads (§4.2): the corruption survives the
     load and the program only fails later, dereferencing the wild
     pointer *)
  let r = run_with_poked_pointer Config.Mds in
  Alcotest.(check bool)
    ("MDS fails only at the dereference: " ^ Outcome.to_string r.Outcome.outcome)
    true (Outcome.is_crash r)

(* --- main/mainAug splitting (§3.1.1) --- *)

let test_main_aug_split () =
  List.iter
    (fun cfg ->
      let tp = Dpmr.transform cfg (Progs.argv_prog ()) in
      Alcotest.(check bool) "mainAug exists" true (Prog.has_func tp "mainAug");
      let m = Prog.func tp "main" in
      (* synthesized main keeps the original signature *)
      Alcotest.(check int) "main has 2 params" 2 (List.length m.Func.params);
      let aug = Prog.func tp "mainAug" in
      let expected = if cfg.Config.mode = Config.Sds then 4 else 3 in
      Alcotest.(check int)
        (Printf.sprintf "mainAug has %d params" expected)
        expected
        (List.length aug.Func.params))
    [ sds; mds ]

(* --- temporal mask semantics: exactly k of 64 loads checked --- *)

let test_temporal_mask_density () =
  (* a straight-line program with 64 identical loads under temporal-1/8:
     exactly 8 replica loads must execute.  We measure by comparing cost
     against the all-loads and static-0 ends. *)
  let mk_prog () =
    let p = Progs.fresh () in
    let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
    let x = Builder.malloc b ~count:(Builder.i64c 4) i64 in
    Builder.store b i64 (Builder.i64c 3) (Builder.gep_index b x (Builder.i64c 0));
    let acc = Builder.local b i64 (Builder.i64c 0) in
    Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c 64) (fun _ ->
        let v = Builder.load b i64 (Builder.gep_index b x (Builder.i64c 0)) in
        Builder.set b i64 acc (Builder.add b W64 (Builder.get b i64 acc) v));
    Builder.call0 b (Direct "print_int") [ Builder.get b i64 acc ];
    Builder.ret b (Some (Builder.i32c 0));
    p
  in
  let cost policy =
    let cfg = { sds with Config.policy } in
    (Dpmr.run_dpmr cfg (mk_prog ())).Outcome.cost
  in
  let c18 = cost (Config.Temporal Config.temporal_mask_1_8) in
  let c78 = cost (Config.Temporal Config.temporal_mask_7_8) in
  Alcotest.(check bool) "denser mask costs more" true (Int64.compare c78 c18 > 0);
  (* both produce correct output *)
  let r = Dpmr.run_dpmr { sds with Config.policy = Config.Temporal Config.temporal_mask_1_8 } (mk_prog ()) in
  Alcotest.(check string) "output" "192" r.Outcome.output

let suites =
  [
    ( "fidelity",
      [
        Alcotest.test_case "Fig 2.9: createNode (SDS)" `Quick test_fig_2_9_createnode_sds;
        Alcotest.test_case "Fig 2.10: getSum (SDS)" `Quick test_fig_2_10_getsum_sds;
        Alcotest.test_case "Fig 4.1: createNode (MDS)" `Quick test_fig_4_1_createnode_mds;
        Alcotest.test_case "Fig 4.2: getSum (MDS)" `Quick test_fig_4_2_getsum_mds;
        Alcotest.test_case "SDS compares loaded pointers" `Quick
          test_sds_detects_corrupted_pointer_at_load;
        Alcotest.test_case "MDS cannot compare loaded pointers" `Quick
          test_mds_cannot_compare_loaded_pointers;
        Alcotest.test_case "main/mainAug split (3.1.1)" `Quick test_main_aug_split;
        Alcotest.test_case "temporal mask density" `Quick test_temporal_mask_density;
      ] );
  ]
