(* Concurrent access to the sharded result cache (lib/engine/cache):

   - two OS processes appending to the same cache directory at once
     (the federation the daemon and batch runs rely on): every record
     survives intact — no torn frames, [disk_stats] clean, and a fresh
     load sees the union of both writers;
   - two domains of one process hammering one [Cache.t]: adds and
     lookups stay consistent under the per-shard locks;
   - sharding invariants: keys land in their hash shard, and a legacy
     single-file cache migrates into shards on load. *)

module Experiment = Dpmr_fi.Experiment
module Cache = Dpmr_engine.Cache
module Job = Dpmr_engine.Job

let salt = "test-salt/concurrent"

let in_tmp_dir f =
  let dir = Filename.temp_file "dpmr_cache_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  f dir

let cls i =
  {
    Experiment.sf = i mod 2 = 0;
    co = false;
    ndet = false;
    ddet = i mod 3 = 0;
    timeout = false;
    t2d = (if i mod 2 = 0 then Some (Int64.of_int (i * 17)) else None);
    cost = Int64.of_int (1000 + i);
    peak_heap = 64 + i;
  }

(* distinct, hash-shaped keys: 16 hex digits, spread over all shards *)
let key_of ~writer i = Printf.sprintf "%x%07x%08x" (i mod 16) writer i

let writer_loop dir ~writer ~n =
  let c = Cache.load ~dir ~flush_every:7 ~salt () in
  for i = 0 to n - 1 do
    Cache.add c ~key:(key_of ~writer i)
      ~spec_repr:(Printf.sprintf "writer=%d i=%d" writer i)
      (cls i)
  done;
  Cache.close c

let test_two_processes () =
  in_tmp_dir @@ fun dir ->
  let n = 400 in
  (* a sibling OS process (Unix.fork is forbidden once other suites have
     spawned domains) appends writer 1's records while this process
     writes writer 0's — cache_writer.ml keeps cls/key_of in lockstep *)
  let exe = Filename.concat (Filename.dirname Sys.executable_name) "cache_writer.exe" in
  let pid =
    Unix.create_process exe
      [| exe; dir; "1"; string_of_int n |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  writer_loop dir ~writer:0 ~n;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "sibling writer exited cleanly" true
    (status = Unix.WEXITED 0);
  (* every line on disk is intact: no torn frames, no CRC damage *)
  let s = Cache.disk_stats ~dir ~salt () in
  Alcotest.(check int) "no damaged lines" 0 s.Cache.damaged;
  Alcotest.(check bool) "no torn tail" false s.Cache.torn_tail;
  Alcotest.(check int) "all records intact on disk" (2 * n) s.Cache.total;
  Alcotest.(check int) "all records current" (2 * n) s.Cache.current;
  (* a fresh load serves the union of both writers *)
  let c = Cache.load ~dir ~salt () in
  Alcotest.(check int) "union loaded" (2 * n) (Cache.entries c);
  for i = 0 to n - 1 do
    for writer = 0 to 1 do
      match Cache.find c (key_of ~writer i) with
      | Some got ->
          if got <> cls i then
            Alcotest.failf "writer %d key %d: wrong classification" writer i
      | None -> Alcotest.failf "writer %d key %d: record lost" writer i
    done
  done;
  Cache.close c

let test_two_domains_one_cache () =
  in_tmp_dir @@ fun dir ->
  let c = Cache.load ~dir ~salt () in
  let n = 500 in
  let worker writer () =
    for i = 0 to n - 1 do
      Cache.add c ~key:(key_of ~writer i) ~spec_repr:"d" (cls i);
      (* interleave lookups of both writers' keys: readers under the
         shard locks while the other domain appends *)
      ignore (Cache.find c (key_of ~writer:(1 - writer) i))
    done
  in
  let d = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d;
  Alcotest.(check int) "all adds visible" (2 * n) (Cache.entries c);
  Cache.close c;
  let s = Cache.disk_stats ~dir ~salt () in
  Alcotest.(check int) "no damage from concurrent domains" 0 s.Cache.damaged;
  Alcotest.(check int) "every record persisted" (2 * n) s.Cache.total

let test_shard_placement () =
  in_tmp_dir @@ fun dir ->
  let c = Cache.load ~dir ~salt () in
  List.iter
    (fun k -> Cache.add c ~key:k ~spec_repr:"p" (cls 1))
    [ "0aaaaaaaaaaaaaaa"; "7bbbbbbbbbbbbbbb"; "fccccccccccccccc" ];
  Cache.close c;
  List.iter
    (fun (k, shard) ->
      Alcotest.(check int) (k ^ " shard index") shard (Cache.shard_of_key k);
      let path = Cache.shard_file dir shard in
      Alcotest.(check bool) (k ^ " shard file exists") true (Sys.file_exists path);
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) (k ^ " record in its shard") true
        (let rec find i =
           i + String.length k <= String.length line
           && (String.sub line i (String.length k) = k || find (i + 1))
         in
         find 0))
    [ ("0aaaaaaaaaaaaaaa", 0); ("7bbbbbbbbbbbbbbb", 7); ("fccccccccccccccc", 15) ]

let test_legacy_migration () =
  in_tmp_dir @@ fun dir ->
  (* write records through the current code, then concatenate every
     shard into a single legacy results.jsonl — the pre-sharding layout *)
  let keys = List.init 32 (fun i -> key_of ~writer:9 i) in
  let c = Cache.load ~dir ~salt () in
  List.iteri (fun i k -> Cache.add c ~key:k ~spec_repr:"m" (cls i)) keys;
  Cache.close c;
  let legacy = Buffer.create 4096 in
  for i = 0 to Cache.shard_count - 1 do
    let path = Cache.shard_file dir i in
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      Buffer.add_string legacy (really_input_string ic (in_channel_length ic));
      close_in ic;
      Sys.remove path
    end
  done;
  let oc = open_out_bin (Cache.file_of dir) in
  Buffer.output_buffer oc legacy;
  close_out oc;
  (* loading migrates every record into its shard and retires the file *)
  let c = Cache.load ~dir ~salt () in
  Alcotest.(check int) "all legacy records loaded" (List.length keys)
    (Cache.entries c);
  Cache.close c;
  Alcotest.(check bool) "legacy file retired" false
    (Sys.file_exists (Cache.file_of dir));
  let s = Cache.disk_stats ~dir ~salt () in
  Alcotest.(check int) "records re-homed intact" (List.length keys) s.Cache.total;
  Alcotest.(check int) "no damage from migration" 0 s.Cache.damaged;
  List.iter
    (fun i ->
      let k = List.nth keys i in
      let c = Cache.load ~dir ~salt () in
      (match Cache.find c k with
      | Some got when got = cls i -> ()
      | _ -> Alcotest.failf "legacy record %s lost or wrong" k);
      Cache.close c)
    [ 0; 31 ]

let suites =
  [
    ( "cache/concurrent",
      [
        Alcotest.test_case "two processes, one directory" `Quick test_two_processes;
        Alcotest.test_case "two domains, one cache" `Quick test_two_domains_one_cache;
        Alcotest.test_case "records land in their hash shard" `Quick
          test_shard_placement;
        Alcotest.test_case "legacy single-file cache migrates" `Quick
          test_legacy_migration;
      ] );
  ]
