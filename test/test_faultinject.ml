(* Fault-injection framework tests (§3.4–§3.6): site enumeration,
   injection semantics, run classification, metrics arithmetic. *)

open Dpmr_ir
module Config = Dpmr_core.Config
module Inject = Dpmr_fi.Inject
module Experiment = Dpmr_fi.Experiment
module Metrics = Dpmr_fi.Metrics
module Outcome = Dpmr_vm.Outcome
module Progs = Dpmr_testprogs.Progs

let mk_exp prog = Experiment.make (Experiment.workload "t" prog)

(* ---- site enumeration ---- *)

let test_sites_resize_skips_singletons () =
  (* linked-list program: node mallocs have count 1, so no resize sites *)
  let p = Progs.linked_list () in
  Alcotest.(check int) "no array sites" 0
    (List.length (Inject.sites (Inject.Heap_array_resize 50) p));
  Alcotest.(check bool) "but immediate-free sites exist" true
    (List.length (Inject.sites Inject.Immediate_free p) > 0)

let test_sites_counts () =
  let p = Progs.overflow ~limit:8 () in
  Alcotest.(check int) "2 array mallocs" 2
    (List.length (Inject.sites (Inject.Heap_array_resize 50) p));
  Alcotest.(check int) "2 free sites" 2 (List.length (Inject.sites Inject.Immediate_free p));
  Alcotest.(check int) "off-by-one shares resize sites" 2
    (List.length (Inject.sites Inject.Off_by_one p));
  Alcotest.(check bool) "wild-store sites exist" true
    (List.length (Inject.sites (Inject.Wild_store 4096) p) > 0)

let test_injection_does_not_mutate_original () =
  let p = Progs.overflow ~limit:8 () in
  let before = Printer.prog_to_string p in
  let site = List.hd (Inject.sites Inject.Immediate_free p) in
  let _injected = Inject.apply p Inject.Immediate_free site in
  Alcotest.(check string) "original untouched" before (Printer.prog_to_string p)

let test_injected_program_verifies () =
  let p = Progs.overflow ~limit:8 () in
  List.iter
    (fun kind ->
      List.iter
        (fun site -> Verifier.check_prog (Inject.apply p kind site))
        (Inject.sites kind p))
    [ Inject.Heap_array_resize 50; Inject.Immediate_free; Inject.Off_by_one;
      Inject.Wild_store 4096 ]

(* ---- classification ---- *)

let test_sf_marks_execution () =
  let e = mk_exp (fun () -> Progs.overflow ~limit:8 ()) in
  let site = List.hd (Experiment.sites e (Inject.Heap_array_resize 50)) in
  let c = Experiment.run_variant e (Experiment.Fi_stdapp (Inject.Heap_array_resize 50, site)) in
  Alcotest.(check bool) "sf" true c.Experiment.sf

let test_unexecuted_site_not_sf () =
  (* a malloc behind an always-false branch never executes its injection *)
  let build () =
    let p = Progs.fresh () in
    let b = Builder.create p ~name:"main" ~params:[] ~ret:Types.i32 () in
    Builder.if_ b (Builder.i8c 0) (fun () ->
        let x = Builder.malloc b ~count:(Builder.i64c 4) Types.i64 in
        Builder.free b x);
    Builder.call0 b (Inst.Direct "print_int") [ Builder.i64c 1 ];
    Builder.ret b (Some (Builder.i32c 0));
    p
  in
  let e = mk_exp build in
  let site = List.hd (Experiment.sites e Inject.Immediate_free) in
  let c = Experiment.run_variant e (Experiment.Fi_stdapp (Inject.Immediate_free, site)) in
  Alcotest.(check bool) "not sf" false c.Experiment.sf;
  Alcotest.(check bool) "correct output" true c.Experiment.co

let test_resize_can_be_hidden_by_rounding () =
  (* allocating 2 x i64 = 16 bytes: min payload is 24 rounded to 32, so a
     50% resize (1 x i64 = 8 -> still 32 usable) cannot manifest *)
  let build () =
    let p = Progs.fresh () in
    let b = Builder.create p ~name:"main" ~params:[] ~ret:Types.i32 () in
    let x = Builder.malloc b ~count:(Builder.i64c 2) Types.i64 in
    Builder.store b Types.i64 (Builder.i64c 5) (Builder.gep_index b x (Builder.i64c 1));
    let v = Builder.load b Types.i64 (Builder.gep_index b x (Builder.i64c 1)) in
    Builder.call0 b (Inst.Direct "print_int") [ v ];
    Builder.ret b (Some (Builder.i32c 0));
    p
  in
  let e = mk_exp build in
  let site = List.hd (Experiment.sites e (Inject.Heap_array_resize 50)) in
  let c = Experiment.run_variant e (Experiment.Fi_stdapp (Inject.Heap_array_resize 50, site)) in
  Alcotest.(check bool) "sf but correct output (overallocation)" true
    (c.Experiment.sf && c.Experiment.co)

let test_t2d_positive_when_detected () =
  let e = mk_exp (fun () -> Progs.overflow ~limit:8 ()) in
  let cfg = Config.default in
  let site = List.hd (Experiment.sites e (Inject.Heap_array_resize 50)) in
  let c = Experiment.run_variant e (Experiment.Fi_dpmr (cfg, Inject.Heap_array_resize 50, site)) in
  if c.Experiment.ddet || c.Experiment.ndet then
    match c.Experiment.t2d with
    | Some t -> Alcotest.(check bool) "t2d > 0" true (Int64.compare t 0L > 0)
    | None -> Alcotest.fail "detected but no t2d"

let test_wild_store_detected_or_crashes () =
  let e = mk_exp (fun () -> Progs.overflow ~limit:8 ()) in
  let cfg = Config.default in
  let kind = Inject.Wild_store 4096 in
  let results =
    List.map
      (fun site -> Experiment.run_variant e (Experiment.Fi_dpmr (cfg, kind, site)))
      (Experiment.sites e kind)
  in
  Alcotest.(check bool) "all covered" true
    (List.for_all
       (fun c ->
         (not c.Experiment.sf) || c.Experiment.co || c.Experiment.ndet
         || c.Experiment.ddet)
       results)

(* ---- metrics arithmetic ---- *)

let mk_class ~sf ~co ~ndet ~ddet =
  {
    Experiment.sf;
    co;
    ndet;
    ddet;
    timeout = false;
    t2d = (if ndet || ddet then Some 100L else None);
    cost = 1000L;
    peak_heap = 0;
  }

let test_coverage_fractions () =
  let cs =
    [
      mk_class ~sf:true ~co:true ~ndet:false ~ddet:false;
      mk_class ~sf:true ~co:false ~ndet:true ~ddet:false;
      mk_class ~sf:true ~co:false ~ndet:false ~ddet:true;
      mk_class ~sf:true ~co:false ~ndet:false ~ddet:false (* uncovered *);
      mk_class ~sf:false ~co:true ~ndet:false ~ddet:false (* not injected: ignored *);
    ]
  in
  let cov = Metrics.of_list cs in
  Alcotest.(check int) "n_sf" 4 cov.Metrics.n_sf;
  Alcotest.(check (float 1e-9)) "co" 0.25 (Metrics.co_frac cov);
  Alcotest.(check (float 1e-9)) "ndet" 0.25 (Metrics.ndet_frac cov);
  Alcotest.(check (float 1e-9)) "ddet" 0.25 (Metrics.ddet_frac cov);
  Alcotest.(check (float 1e-9)) "total" 0.75 (Metrics.total cov)

let test_mean_t2d () =
  let cs =
    [
      mk_class ~sf:true ~co:false ~ndet:true ~ddet:false;
      mk_class ~sf:true ~co:true ~ndet:false ~ddet:false;
    ]
  in
  (match Metrics.mean_t2d cs with
  | Some m -> Alcotest.(check (float 1e-9)) "mean over detected only" 100.0 m
  | None -> Alcotest.fail "expected a mean");
  Alcotest.(check bool) "none when nothing detected" true
    (Metrics.mean_t2d [ mk_class ~sf:true ~co:true ~ndet:false ~ddet:false ] = None)

let test_overhead_measures () =
  let e = mk_exp (fun () -> Progs.linked_list ~n:30 ()) in
  let oh = Experiment.overhead e Config.default in
  Alcotest.(check bool) "overhead in a sane band" true (oh > 1.2 && oh < 8.0);
  let mh = Experiment.memory_overhead e Config.default in
  Alcotest.(check bool) "memory overhead ~2-4x" true (mh >= 1.9 && mh < 4.2)

let suites =
  [
    ( "faultinject",
      [
        Alcotest.test_case "resize skips singleton mallocs" `Quick
          test_sites_resize_skips_singletons;
        Alcotest.test_case "site counts per kind" `Quick test_sites_counts;
        Alcotest.test_case "injection clones" `Quick test_injection_does_not_mutate_original;
        Alcotest.test_case "injected programs verify" `Quick test_injected_program_verifies;
        Alcotest.test_case "SF marks execution" `Quick test_sf_marks_execution;
        Alcotest.test_case "unexecuted site not SF" `Quick test_unexecuted_site_not_sf;
        Alcotest.test_case "rounding hides small resizes" `Quick
          test_resize_can_be_hidden_by_rounding;
        Alcotest.test_case "T2D positive when detected" `Quick test_t2d_positive_when_detected;
        Alcotest.test_case "wild stores covered" `Quick test_wild_store_detected_or_crashes;
        Alcotest.test_case "coverage fractions" `Quick test_coverage_fractions;
        Alcotest.test_case "mean T2D" `Quick test_mean_t2d;
        Alcotest.test_case "overhead measures" `Quick test_overhead_measures;
      ] );
  ]
