(* Differential property testing: for randomly generated (error-free)
   programs, the SDS- and MDS-transformed builds must verify, run to
   completion, and produce byte-identical output to the golden build.
   This is the strongest automated statement of the §1.1 invariant that
   application and replica state do not diverge under error-free
   execution. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

(* program shape: two 16-element i64 arrays, an accumulator, a linked
   cell, and a string buffer; ops are closed over valid indices *)
type op =
  | Store_arr of int * int * int  (* arr, idx, value *)
  | Copy_elt of int * int * int  (* src idx -> dst idx across arrays *)
  | Acc_load of int * int
  | Acc_arith of int
  | Box_round of int  (* heap round-trip through a helper call *)
  | Str_round of int  (* strcpy a word, accumulate strlen *)
  | Sort_prefix  (* qsort the first 8 elements of arr 0 *)

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (4, map3 (fun a i v -> Store_arr (a land 1, i land 15, v land 1023)) nat nat nat);
      (3, map3 (fun a i j -> Copy_elt (a land 1, i land 15, j land 15)) nat nat nat);
      (4, map2 (fun a i -> Acc_load (a land 1, i land 15)) nat nat);
      (3, map (fun v -> Acc_arith ((v land 255) + 1)) nat);
      (2, map (fun v -> Box_round (v land 511)) nat);
      (2, map (fun v -> Str_round (v land 3)) nat);
      (1, return Sort_prefix);
    ]

let words = [| "alpha"; "beta"; "gamma"; "delta" |]

let build_prog ops =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  let str8 = Ptr (arr i8 0) in
  (* helper: box a value on the heap *)
  let b = B.create p ~name:"box" ~params:[ ("v", i64) ] ~ret:(Ptr i64) () in
  let cell = B.malloc b i64 in
  B.store b i64 (B.param b 0) cell;
  B.ret b (Some cell);
  (* i64 comparator for qsort *)
  let b = B.create p ~name:"cmp" ~params:[ ("a", str8); ("b", str8) ] ~ret:i32 () in
  let va = B.load b i64 (B.bitcast b (Ptr i64) (B.param b 0)) in
  let vb = B.load b i64 (B.bitcast b (Ptr i64) (B.param b 1)) in
  let lt = B.icmp b Islt W64 va vb and gt = B.icmp b Isgt W64 va vb in
  B.ret b (Some (B.int_cast b W32 (B.sub b W8 gt lt)));
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let arr0 = B.malloc b ~name:"arr0" ~count:(B.i64c 16) i64 in
  let arr1 = B.malloc b ~name:"arr1" ~count:(B.i64c 16) i64 in
  (* initialize: uninitialized reads are themselves detectable divergence *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 16) (fun i ->
      B.store b i64 i (B.gep_index b arr0 i);
      B.store b i64 (B.mul b W64 i (B.i64c 2)) (B.gep_index b arr1 i));
  let arr_of = function 0 -> arr0 | _ -> arr1 in
  let acc = B.local b ~name:"acc" i64 (B.i64c 0) in
  let strbuf = B.bitcast b str8 (B.malloc b ~count:(B.i64c 16) i8) in
  let word_globals =
    Array.mapi
      (fun i w ->
        B.bitcast b str8
          (B.global b ~name:(Printf.sprintf "dw%d" i) (arr i8 8) (Prog.Gstring w)))
      words
  in
  List.iter
    (fun op ->
      match op with
      | Store_arr (a, i, v) ->
          B.store b i64 (B.i64c v) (B.gep_index b (arr_of a) (B.i64c i))
      | Copy_elt (a, i, j) ->
          let v = B.load b i64 (B.gep_index b (arr_of a) (B.i64c i)) in
          B.store b i64 v (B.gep_index b (arr_of (1 - a)) (B.i64c j))
      | Acc_load (a, i) ->
          let v = B.load b i64 (B.gep_index b (arr_of a) (B.i64c i)) in
          B.set b i64 acc (B.add b W64 (B.get b i64 acc) v)
      | Acc_arith v ->
          let x = B.get b i64 acc in
          let y = B.mul b W64 x (B.i64c 3) in
          B.set b i64 acc (B.add b W64 y (B.i64c v))
      | Box_round v ->
          let cell = B.call1 b (Direct "box") [ B.i64c v ] in
          let got = B.load b i64 cell in
          B.set b i64 acc (B.add b W64 (B.get b i64 acc) got);
          B.free b cell
      | Str_round i ->
          ignore (B.call b (Direct "strcpy") [ strbuf; word_globals.(i) ]);
          let l = B.call1 b (Direct "strlen") [ strbuf ] in
          B.set b i64 acc (B.add b W64 (B.get b i64 acc) l)
      | Sort_prefix ->
          B.call0 b (Direct "qsort")
            [ B.bitcast b str8 arr0; B.i64c 8; B.i64c 8; Fun_addr "cmp" ])
    ops;
  (* output: accumulator + both array checksums *)
  B.call0 b (Direct "print_int") [ B.get b i64 acc ];
  B.call0 b (Direct "putchar") [ B.i32c 32 ];
  let ck arrv =
    let s = B.local b i64 (B.i64c 0) in
    B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 16) (fun i ->
        let v = B.load b i64 (B.gep_index b arrv i) in
        let m = B.mul b W64 (B.get b i64 s) (B.i64c 31) in
        B.set b i64 s (B.add b W64 m v));
    B.get b i64 s
  in
  B.call0 b (Direct "print_int") [ ck arr0 ];
  B.call0 b (Direct "putchar") [ B.i32c 32 ];
  B.call0 b (Direct "print_int") [ ck arr1 ];
  B.ret b (Some (B.i32c 0));
  p

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Store_arr (a, i, v) -> Printf.sprintf "st(%d,%d,%d)" a i v
         | Copy_elt (a, i, j) -> Printf.sprintf "cp(%d,%d,%d)" a i j
         | Acc_load (a, i) -> Printf.sprintf "ld(%d,%d)" a i
         | Acc_arith v -> Printf.sprintf "ar(%d)" v
         | Box_round v -> Printf.sprintf "box(%d)" v
         | Str_round i -> Printf.sprintf "str(%d)" i
         | Sort_prefix -> "sort")
       ops)

let arb_ops =
  QCheck.make ~print:print_ops QCheck.Gen.(list_size (int_range 1 40) op_gen)

let run_all_modes ops =
  let p = build_prog ops in
  Verifier.check_prog p;
  let golden = Dpmr.run_plain p in
  let check cfg =
    let tp = Dpmr.transform cfg p in
    Verifier.check_prog tp;
    let r = Dpmr.run_dpmr cfg p in
    r.Outcome.outcome = Outcome.Normal && r.Outcome.output = golden.Outcome.output
  in
  golden.Outcome.outcome = Outcome.Normal
  && check Config.default
  && check { Config.default with Config.mode = Config.Mds }
  && check { Config.default with Config.diversity = Config.Rearrange_heap }
  && check
       {
         Config.default with
         Config.mode = Config.Mds;
         diversity = Config.Zero_before_free;
       }

let prop_differential =
  QCheck.Test.make ~name:"random programs: golden = SDS = MDS output" ~count:60
    arb_ops run_all_modes

let prop_temporal_policy =
  QCheck.Test.make ~name:"random programs: temporal policy preserves output" ~count:25
    arb_ops
    (fun ops ->
      let p = build_prog ops in
      let golden = Dpmr.run_plain p in
      let cfg =
        { Config.default with Config.policy = Config.Temporal Config.temporal_mask_1_2 }
      in
      let r = Dpmr.run_dpmr cfg p in
      r.Outcome.output = golden.Outcome.output)

let prop_dsa_scope =
  QCheck.Test.make ~name:"random programs: DSA+MDS preserves output" ~count:25 arb_ops
    (fun ops ->
      let p = build_prog ops in
      let golden = Dpmr.run_plain p in
      let cfg = { Config.default with Config.mode = Config.Mds } in
      let tp = Dpmr_dsa.Dsa_dpmr.transform cfg p in
      Verifier.check_prog tp;
      let vm = Dpmr.vm_dpmr ~mode:Config.Mds tp in
      let r = Dpmr_vm.Vm.run vm in
      r.Outcome.output = golden.Outcome.output)

(* Snapshot/fork campaign execution: a real fault-injection grid run
   with copy-on-write snapshot forking (the default engine path) must
   classify every job byte-identically to running each one from zero
   (--no-snapshot).  This drives the whole pipeline the forks depend on:
   structural diff limits, the watched baseline, frame remapping, and
   the cell riders that inherit the baseline outcome. *)
let test_snapshot_vs_zero_grid () =
  let module Experiment = Dpmr_fi.Experiment in
  let module Inject = Dpmr_fi.Inject in
  let module Job = Dpmr_engine.Job in
  let module Engine = Dpmr_engine.Engine in
  let module Workloads = Dpmr_workloads.Workloads in
  let app = "mcf" in
  let entry = Workloads.find app in
  let e =
    Experiment.make
      (Experiment.workload app (fun () -> entry.Workloads.build ~scale:1 ()))
  in
  let mk = Job.make e ~workload:app ~scale:1 ~run_seed:42L in
  let cfg = { Config.default with Config.diversity = Config.Rearrange_heap } in
  let specs =
    mk Experiment.Golden
    :: mk (Experiment.Nofi_dpmr cfg)
    :: List.concat_map
         (fun kind ->
           List.map
             (fun site -> mk (Experiment.Fi_dpmr (cfg, kind, site)))
             (Experiment.sites e kind))
         [ Inject.Heap_array_resize 50; Inject.Immediate_free ]
  in
  let run snapshots =
    let eng = Engine.create ~jobs:1 ~use_cache:false ~snapshots ~progress:false () in
    let r = Engine.run_specs eng specs in
    Engine.close eng;
    r
  in
  let line c =
    Job.entry_to_line { Job.key = ""; salt = ""; spec_repr = ""; snap = None; cls = c }
  in
  Alcotest.(check (list string))
    "snapshot forks classify like from-zero runs"
    (List.map line (run false))
    (List.map line (run true))

let suites =
  [
    ( "differential",
      List.map QCheck_alcotest.to_alcotest
        [ prop_differential; prop_temporal_policy; prop_dsa_scope ]
      @ [
          Alcotest.test_case "snapshot grid = from-zero grid" `Quick
            test_snapshot_vs_zero_grid;
        ] );
  ]
