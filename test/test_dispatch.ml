(* Remote-dispatch tests (lib/engine/dispatch + lib/server/remote):
   the failover matrix against a deterministic fake transport — happy
   path, failover with quarantine, all-remotes-dead local fallback,
   min-workers floor holes, remote job failures vs rejections, hedging
   with first-result-wins — plus end-to-end campaigns against real
   in-process daemons: multi-worker scatter equal to a local run, a
   worker draining mid-campaign, and wire chaos on the serving path. *)

module Config = Dpmr_core.Config
module Experiment = Dpmr_fi.Experiment
module Job = Dpmr_engine.Job
module Chaos = Dpmr_engine.Chaos
module Supervisor = Dpmr_engine.Supervisor
module Dispatch = Dpmr_engine.Dispatch
module Engine = Dpmr_engine.Engine
module Server = Dpmr_server.Server
module Remote = Dpmr_server.Remote

(* ---- fake transport ---- *)

let spec i =
  {
    Job.workload = "fake";
    scale = 1;
    exp_seed = 42L;
    run_seed = Int64.of_int i;
    budget = 1000L;
    variant = Experiment.Golden;
  }

let singles n = List.init n (fun i -> let s = spec i in [| (Job.hash s, s) |])

(* the "verdict" the fake remote (and fake local engine) computes: a
   pure function of the spec, so misrouted results are detectable *)
let cls_of ((_, s) : Dispatch.item) =
  {
    Experiment.sf = false;
    co = false;
    ndet = false;
    ddet = false;
    timeout = false;
    t2d = None;
    cost = Int64.add 1000L s.Job.run_seed;
    peak_heap = s.Job.scale;
  }

type fake = {
  alive : bool Atomic.t;  (** connect / batch / ping all fail when false *)
  stall : float;  (** seconds each batch takes *)
  fail_next : int Atomic.t;  (** fail this many batches with [Host_down] *)
  reply : Dispatch.item -> Dispatch.remote_result;
  batches : Dispatch.item array list Atomic.t;  (** completed calls, latest first *)
}

let fake ?(alive = true) ?(stall = 0.) ?(fail_next = 0) ?(reply = fun it -> Dispatch.R_verdict (cls_of it))
    () =
  {
    alive = Atomic.make alive;
    stall;
    fail_next = Atomic.make fail_next;
    reply;
    batches = Atomic.make [];
  }

let record_batch f items =
  let rec go () =
    let old = Atomic.get f.batches in
    if not (Atomic.compare_and_set f.batches old (items :: old)) then go ()
  in
  go ()

let fake_transport hosts =
  {
    Dispatch.connect =
      (fun addr ->
        let f = List.assoc addr hosts in
        if not (Atomic.get f.alive) then raise (Dispatch.Host_down "connect refused");
        {
          Dispatch.c_run_batch =
            (fun items ->
              if not (Atomic.get f.alive) then raise (Dispatch.Host_down "reset");
              if Atomic.fetch_and_add f.fail_next (-1) > 0 then
                raise (Dispatch.Host_down "injected failure")
              else Atomic.incr f.fail_next;
              if f.stall > 0. then Unix.sleepf f.stall;
              record_batch f items;
              Array.map f.reply items);
          c_ping = (fun () -> Atomic.get f.alive);
          c_abort = ignore;
          c_close = ignore;
        });
  }

let fast_policy =
  {
    Dispatch.base =
      { Supervisor.deadline = None; max_retries = 3; backoff = 0.001; backoff_max = 0.004 };
    window = 2;
    chunk_jobs = 2;
    hedge_after = 0.;
    quarantine_after = 3;
    probe_period = 0.02;
    min_workers = 0;
  }

(* degradation path: the fake "local engine" *)
let local_count = Atomic.make 0

let fake_local groups =
  List.concat_map
    (fun g ->
      Array.to_list g
      |> List.map (fun it ->
             Atomic.incr local_count;
             (it, Dispatch.Done (cls_of it), 0., None)))
    groups

let run_fake ?(policy = fast_policy) hosts groups =
  Atomic.set local_count 0;
  let t = Dispatch.create ~policy (fake_transport hosts) ~hosts:(List.map fst hosts) in
  let out = Dispatch.run t ~local:fake_local groups in
  (t, out)

let check_all_done name groups completed =
  let expect = List.concat_map Array.to_list groups in
  Alcotest.(check int) (name ^ ": result count") (List.length expect) (List.length completed);
  List.iter2
    (fun (k, s) ((k', _), out, _, _) ->
      Alcotest.(check string) (name ^ ": input order") k k';
      match out with
      | Dispatch.Done c ->
          Alcotest.(check bool) (name ^ ": verdict content") true (c = cls_of (k, s))
      | Dispatch.Hole h -> Alcotest.failf "%s: unexpected hole (%s: %s)" name h.Dispatch.hreason h.Dispatch.herror)
    expect completed

let test_happy_path () =
  let hosts = [ ("w0", fake ()); ("w1", fake ()) ] in
  let groups = singles 12 in
  let t, out = run_fake hosts groups in
  check_all_done "happy" groups out;
  let tot = Dispatch.totals t in
  Alcotest.(check int) "all jobs remote" 12 tot.Dispatch.t_remote_jobs;
  Alcotest.(check int) "no local fallback" 0 tot.Dispatch.t_local_jobs;
  Alcotest.(check int) "no holes" 0 tot.Dispatch.t_holes;
  let served =
    List.fold_left (fun acc h -> acc + h.Dispatch.hs_jobs) 0 (Dispatch.host_stats t)
  in
  Alcotest.(check int) "host stats account every job" 12 served;
  Alcotest.(check int) "both hosts healthy" 2 (Dispatch.healthy_hosts t)

let test_failover_quarantine () =
  (* w0 is dead from the start; every chunk it would have served fails
     over to w1 and the campaign still completes in full *)
  let hosts = [ ("w0", fake ~alive:false ()); ("w1", fake ~stall:0.01 ()) ] in
  let policy = { fast_policy with Dispatch.quarantine_after = 1 } in
  let groups = singles 10 in
  let t, out = run_fake ~policy hosts groups in
  check_all_done "failover" groups out;
  let s0 = List.find (fun h -> h.Dispatch.hs_addr = "w0") (Dispatch.host_stats t) in
  Alcotest.(check bool) "dead host saw failures" true (s0.Dispatch.hs_failures >= 1);
  Alcotest.(check bool) "dead host quarantined" true (s0.Dispatch.hs_quarantined >= 1);
  Alcotest.(check bool) "dead host unhealthy" false s0.Dispatch.hs_healthy;
  Alcotest.(check int) "dead host won no jobs" 0 s0.Dispatch.hs_jobs

let test_transient_failure_redispatch () =
  (* w0 fails its first two batches, then recovers: re-dispatch with
     backoff must absorb the failures without quarantining forever *)
  let hosts = [ ("w0", fake ~fail_next:2 ()); ("w1", fake ()) ] in
  let groups = singles 12 in
  let t, out = run_fake hosts groups in
  check_all_done "transient" groups out;
  let tot = Dispatch.totals t in
  Alcotest.(check bool) "failures were re-dispatched" true (tot.Dispatch.t_requeues >= 1);
  Alcotest.(check int) "no holes" 0 tot.Dispatch.t_holes

let test_all_dead_local_fallback () =
  let hosts = [ ("w0", fake ~alive:false ()); ("w1", fake ~alive:false ()) ] in
  let policy = { fast_policy with Dispatch.quarantine_after = 1 } in
  let groups = singles 8 in
  let t, out = run_fake ~policy hosts groups in
  check_all_done "all-dead" groups out;
  let tot = Dispatch.totals t in
  Alcotest.(check int) "nothing served remotely" 0 tot.Dispatch.t_remote_jobs;
  Alcotest.(check int) "everything fell back to local" 8 tot.Dispatch.t_local_jobs;
  Alcotest.(check int) "local engine really ran them" 8 (Atomic.get local_count);
  Alcotest.(check int) "no healthy hosts" 0 (Dispatch.healthy_hosts t)

let test_min_workers_floor () =
  (* with a floor of 1 and zero healthy workers the batch must finish
     with explicit holes — never an abort, never a silent local run *)
  let hosts = [ ("w0", fake ~alive:false ()); ("w1", fake ~alive:false ()) ] in
  let policy = { fast_policy with Dispatch.quarantine_after = 1; min_workers = 1 } in
  let groups = singles 6 in
  let t, out = run_fake ~policy hosts groups in
  Alcotest.(check int) "every job answered" 6 (List.length out);
  List.iter
    (fun (_, outcome, _, _) ->
      match outcome with
      | Dispatch.Hole h ->
          Alcotest.(check string) "hole reason" "dispatch-floor" h.Dispatch.hreason
      | Dispatch.Done _ -> Alcotest.fail "below the floor no job may complete")
    out;
  Alcotest.(check int) "holes counted" 6 (Dispatch.totals t).Dispatch.t_holes;
  Alcotest.(check int) "local engine never invoked" 0 (Atomic.get local_count)

let test_remote_failed_is_hole () =
  let broken = spec 3 in
  let bkey = Job.hash broken in
  let reply (k, _) =
    if k = bkey then Dispatch.R_failed "deterministic deadline"
    else Dispatch.R_verdict (cls_of (k, broken))
  in
  let hosts = [ ("w0", fake ~reply ()) ] in
  let groups = singles 6 in
  let _, out = run_fake hosts groups in
  Alcotest.(check int) "every job answered" 6 (List.length out);
  List.iter
    (fun ((k, _), outcome, _, _) ->
      match outcome with
      | Dispatch.Hole h when k = bkey ->
          Alcotest.(check string) "remote failure reason" "remote" h.Dispatch.hreason
      | Dispatch.Hole h -> Alcotest.failf "unexpected hole: %s" h.Dispatch.herror
      | Dispatch.Done _ when k = bkey -> Alcotest.fail "failed job must stay a hole"
      | Dispatch.Done _ -> ())
    out

let test_remote_reject_runs_locally () =
  let rejected = spec 0 in
  let rkey = Job.hash rejected in
  let reply (k, s) =
    if k = rkey then Dispatch.R_reject "unknown workload" else Dispatch.R_verdict (cls_of (k, s))
  in
  let hosts = [ ("w0", fake ~reply ()) ] in
  let groups = singles 5 in
  let t, out = run_fake hosts groups in
  check_all_done "reject" groups out;
  Alcotest.(check int) "rejected job ran locally" 1 (Atomic.get local_count);
  Alcotest.(check int) "rejected job billed local" 1 (Dispatch.totals t).Dispatch.t_local_jobs

let test_hedging_first_result_wins () =
  (* w0 sits on every chunk for a second; hedges onto w1 must win and
     the stragglers' late verdicts must dedup, not double-count *)
  let hosts = [ ("w0", fake ~stall:1.0 ()); ("w1", fake ~stall:0.02 ()) ] in
  let policy =
    { fast_policy with Dispatch.chunk_jobs = 1; hedge_after = 0.05; window = 2 }
  in
  let groups = singles 8 in
  let t, out = run_fake ~policy hosts groups in
  check_all_done "hedge" groups out;
  let tot = Dispatch.totals t in
  Alcotest.(check bool) "hedges issued" true (tot.Dispatch.t_hedges >= 1);
  Alcotest.(check bool) "a hedge won" true (tot.Dispatch.t_hedge_wins >= 1);
  Alcotest.(check int) "no holes" 0 tot.Dispatch.t_holes

let test_groups_never_split () =
  (* snapshot cells must land in one chunk so remote engines can fork
     members from the shared baseline *)
  let next = ref 0 in
  let group n =
    Array.init n (fun _ ->
        let s = spec !next in
        incr next;
        (Job.hash s, s))
  in
  let groups = [ group 3; group 2; group 4; group 1 ] in
  let w = fake () in
  let policy = { fast_policy with Dispatch.chunk_jobs = 1 } in
  let _, out = run_fake ~policy [ ("w0", w) ] groups in
  check_all_done "groups" groups out;
  let calls = Atomic.get w.batches in
  List.iter
    (fun g ->
      let keys = Array.to_list g |> List.map fst in
      let together =
        List.exists
          (fun call ->
            let ck = Array.to_list call |> List.map fst in
            List.for_all (fun k -> List.mem k ck) keys)
          calls
      in
      Alcotest.(check bool) "group served by a single batch" true together)
    groups

(* ---- end-to-end against real in-process daemons ---- *)

let in_tmp_dir f =
  let dir = Filename.temp_file "dpmr_dispatch_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cwd = Sys.getcwd () in
  Sys.chdir dir;
  Fun.protect ~finally:(fun () -> Sys.chdir cwd) (fun () -> f dir)

let boot_server dir name =
  let engine = Engine.create ~jobs:2 ~use_cache:false ~resident:true () in
  let sock = Filename.concat dir (name ^ ".sock") in
  let cfg = { Server.default_config with Server.listen = Server.Unix_sock sock } in
  let t = Server.create ~cfg engine in
  let ready = Atomic.make false in
  let d = Domain.spawn (fun () -> Server.serve ~ready:(fun () -> Atomic.set ready true) t) in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  (t, d, engine, "unix:" ^ sock)

let stop_server (t, d, engine, _) =
  Server.request_drain t;
  Domain.join d;
  Engine.close engine

let e2e_specs =
  let nofi seed =
    {
      Job.workload = "mcf";
      scale = 1;
      exp_seed = 42L;
      run_seed = seed;
      budget = 2_000_000L;
      variant = Experiment.Nofi_dpmr { Config.default with Config.seed = 42L };
    }
  in
  [
    { (nofi 43L) with Job.variant = Experiment.Golden };
    nofi 43L;
    nofi 44L;
    { (nofi 45L) with Job.workload = "art" };
    { (nofi 46L) with Job.variant = Experiment.Golden; workload = "art" };
    nofi 47L;
  ]

let reference_run () =
  let e = Engine.create ~jobs:2 ~use_cache:false () in
  let r = Engine.run_specs e e2e_specs in
  Engine.close e;
  r

let dispatch_policy =
  {
    Dispatch.default_policy with
    Dispatch.base =
      { Supervisor.default_policy with Supervisor.backoff = 0.002; backoff_max = 0.02 };
    window = 2;
    chunk_jobs = 2;
    probe_period = 0.05;
    quarantine_after = 2;
  }

let run_dispatched ?(policy = dispatch_policy) hosts =
  let dispatcher = Dispatch.create ~policy (Remote.transport ~timeout:30. ()) ~hosts in
  let e = Engine.create ~jobs:2 ~use_cache:false ~dispatcher () in
  let r = Engine.run_specs e e2e_specs in
  Engine.close e;
  (dispatcher, r)

let test_e2e_two_workers () =
  in_tmp_dir @@ fun dir ->
  let reference = reference_run () in
  let s0 = boot_server dir "w0" and s1 = boot_server dir "w1" in
  let _, _, _, a0 = s0 and _, _, _, a1 = s1 in
  Fun.protect
    ~finally:(fun () -> stop_server s0; stop_server s1)
    (fun () ->
      let d, out = run_dispatched [ a0; a1 ] in
      Alcotest.(check bool) "dispatched verdicts = local verdicts" true (out = reference);
      let tot = Dispatch.totals d in
      Alcotest.(check bool) "remote execution happened" true
        (tot.Dispatch.t_remote_jobs >= 1))

let test_e2e_dead_host_failover () =
  in_tmp_dir @@ fun dir ->
  let reference = reference_run () in
  let s0 = boot_server dir "w0" in
  let _, _, _, a0 = s0 in
  Fun.protect
    ~finally:(fun () -> stop_server s0)
    (fun () ->
      (* second address never listens: connect fails, host quarantines,
         campaign completes on the survivor alone *)
      let dead = "unix:" ^ Filename.concat dir "never.sock" in
      let d, out = run_dispatched [ a0; dead ] in
      Alcotest.(check bool) "verdicts survive a dead worker" true (out = reference);
      let sd =
        List.find (fun h -> h.Dispatch.hs_addr = dead) (Dispatch.host_stats d)
      in
      Alcotest.(check bool) "dead host recorded failures" true
        (sd.Dispatch.hs_failures >= 1);
      Alcotest.(check int) "dead host served nothing" 0 sd.Dispatch.hs_jobs)

let test_e2e_all_dead_local () =
  in_tmp_dir @@ fun dir ->
  let reference = reference_run () in
  let dead0 = "unix:" ^ Filename.concat dir "no0.sock" in
  let dead1 = "unix:" ^ Filename.concat dir "no1.sock" in
  let policy = { dispatch_policy with Dispatch.quarantine_after = 1 } in
  let d, out = run_dispatched ~policy [ dead0; dead1 ] in
  Alcotest.(check bool) "local degradation is byte-identical" true (out = reference);
  Alcotest.(check int) "nothing ran remotely" 0 (Dispatch.totals d).Dispatch.t_remote_jobs

let test_e2e_drain_mid_campaign () =
  in_tmp_dir @@ fun dir ->
  let reference = reference_run () in
  let s0 = boot_server dir "w0" and s1 = boot_server dir "w1" in
  let t0, _, _, a0 = s0 and _, _, _, a1 = s1 in
  (* drain w0 almost immediately: in-flight chunks fail with Draining /
     connection loss and must re-dispatch onto w1 *)
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Server.request_drain t0)
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join killer;
      stop_server s1;
      stop_server s0)
    (fun () ->
      let _, out = run_dispatched [ a0; a1 ] in
      Alcotest.(check bool) "verdicts survive a mid-campaign drain" true
        (out = reference))

let test_e2e_wire_chaos () =
  in_tmp_dir @@ fun dir ->
  let reference = reference_run () in
  (* stalls, torn frames and resets on every served reply (kills are
     downgraded to resets in-process); the dispatcher must still
     converge to byte-identical verdicts *)
  Chaos.set_wire (Some (Chaos.make ~prob:0.5 ~seed:11L ~max_delay:0.02 ()));
  Fun.protect
    ~finally:(fun () -> Chaos.set_wire None)
    (fun () ->
      let s0 = boot_server dir "w0" and s1 = boot_server dir "w1" in
      let _, _, _, a0 = s0 and _, _, _, a1 = s1 in
      Fun.protect
        ~finally:(fun () -> stop_server s0; stop_server s1)
        (fun () ->
          let _, out = run_dispatched [ a0; a1 ] in
          Alcotest.(check bool) "verdicts survive wire chaos" true (out = reference)))

let suites =
  [
    ( "dispatch/fake",
      [
        Alcotest.test_case "happy path" `Quick test_happy_path;
        Alcotest.test_case "failover + quarantine" `Quick test_failover_quarantine;
        Alcotest.test_case "transient failures re-dispatch" `Quick
          test_transient_failure_redispatch;
        Alcotest.test_case "all dead: local fallback" `Quick test_all_dead_local_fallback;
        Alcotest.test_case "min-workers floor: explicit holes" `Quick
          test_min_workers_floor;
        Alcotest.test_case "remote failure is a hole" `Quick test_remote_failed_is_hole;
        Alcotest.test_case "remote reject runs locally" `Quick
          test_remote_reject_runs_locally;
        Alcotest.test_case "hedging: first result wins" `Quick
          test_hedging_first_result_wins;
        Alcotest.test_case "snapshot groups never split" `Quick test_groups_never_split;
      ] );
    ( "dispatch/e2e",
      [
        Alcotest.test_case "two workers = local verdicts" `Quick test_e2e_two_workers;
        Alcotest.test_case "dead worker fails over" `Quick test_e2e_dead_host_failover;
        Alcotest.test_case "all workers dead: local" `Quick test_e2e_all_dead_local;
        Alcotest.test_case "drain mid-campaign" `Quick test_e2e_drain_mid_campaign;
        Alcotest.test_case "wire chaos converges" `Quick test_e2e_wire_chaos;
      ] );
  ]
