(* External function wrapper tests (§2.8, §3.1.5): each wrapper preserves
   behaviour through the transformation, maintains replica state, and its
   load checks fire on planted divergence. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

let str8 = Ptr (arr i8 0)

let fresh () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  p

let run_both ?(modes = [ Config.Sds; Config.Mds ]) build =
  let p = build () in
  Verifier.check_prog p;
  let golden = Dpmr.run_plain p in
  Alcotest.(check bool) "golden normal" true (golden.Outcome.outcome = Outcome.Normal);
  List.iter
    (fun mode ->
      let cfg = { Config.default with Config.mode } in
      let r = Dpmr.run_dpmr cfg p in
      Alcotest.(check string)
        (Config.mode_name mode ^ " output")
        golden.Outcome.output r.Outcome.output;
      Alcotest.(check bool)
        (Config.mode_name mode ^ " normal")
        true
        (r.Outcome.outcome = Outcome.Normal))
    modes;
  golden

let word b name s =
  B.bitcast b str8 (B.global b ~name (arr i8 (String.length s + 1)) (Prog.Gstring s))

(* --- behaviour preservation per wrapper --- *)

let test_strcpy_strlen () =
  ignore
    (run_both (fun () ->
         let p = fresh () in
         let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
         let src = word b "w" "wrapped" in
         let buf = B.bitcast b str8 (B.malloc b ~count:(B.i64c 32) i8) in
         let rv = B.call1 b (Direct "strcpy") [ buf; src ] in
         B.call0 b (Direct "print_str") [ rv ];
         B.call0 b (Direct "print_int") [ B.call1 b (Direct "strlen") [ rv ] ];
         B.ret b (Some (B.i32c 0));
         p))

let test_strcmp_orderings () =
  ignore
    (run_both (fun () ->
         let p = fresh () in
         let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
         let a = word b "a" "apple" and bb = word b "b" "berry" in
         let lt = B.call1 b (Direct "strcmp") [ a; bb ] in
         let gt = B.call1 b (Direct "strcmp") [ bb; a ] in
         let eq = B.call1 b (Direct "strcmp") [ a; a ] in
         List.iter
           (fun v ->
             let sign =
               B.select b i32
                 (B.icmp b Islt W32 v (B.i32c 0))
                 (B.i32c (-1))
                 (B.select b i32 (B.icmp b Isgt W32 v (B.i32c 0)) (B.i32c 1) (B.i32c 0))
             in
             B.call0 b (Direct "print_int") [ B.int_cast b W64 sign ])
           [ lt; gt; eq ];
         B.ret b (Some (B.i32c 0));
         p))

let test_memcpy_memset_memmove () =
  ignore
    (run_both (fun () ->
         let p = fresh () in
         let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
         let a = B.malloc b ~count:(B.i64c 8) i64 in
         B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 8) (fun i ->
             B.store b i64 (B.mul b W64 i (B.i64c 5)) (B.gep_index b a i));
         let c = B.malloc b ~count:(B.i64c 8) i64 in
         ignore
           (B.call b (Direct "memcpy")
              [ B.bitcast b str8 c; B.bitcast b str8 a; B.i64c 64 ]);
         (* overlapping memmove: shift left by one element *)
         ignore
           (B.call b (Direct "memmove")
              [
                B.bitcast b str8 c;
                B.bitcast b str8 (B.gep_index b c (B.i64c 1));
                B.i64c 56;
              ]);
         ignore
           (B.call b (Direct "memset")
              [ B.bitcast b str8 (B.gep_index b c (B.i64c 7)); B.i32c 0; B.i64c 8 ]);
         B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 8) (fun i ->
             B.call0 b (Direct "print_int") [ B.load b i64 (B.gep_index b c i) ];
             B.call0 b (Direct "putchar") [ B.i32c 32 ]);
         B.ret b (Some (B.i32c 0));
         p))

let test_calloc_zeroed () =
  ignore
    (run_both (fun () ->
         let p = fresh () in
         let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
         let c = B.call1 b (Direct "calloc") [ B.i64c 16; B.i64c 8 ] in
         let c64 = B.bitcast b (Ptr i64) c in
         let acc = B.local b i64 (B.i64c 0) in
         B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 16) (fun i ->
             let v = B.load b i64 (B.gep_index b c64 i) in
             B.set b i64 acc (B.add b W64 (B.get b i64 acc) v));
         B.call0 b (Direct "print_int") [ B.get b i64 acc ];
         B.ret b (Some (B.i32c 0));
         p))

let test_realloc_preserves_prefix () =
  let golden =
    run_both (fun () ->
        let p = fresh () in
        let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
        let a = B.call1 b (Direct "calloc") [ B.i64c 4; B.i64c 8 ] in
        let a64 = B.bitcast b (Ptr i64) a in
        B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 4) (fun i ->
            B.store b i64 (B.add b W64 i (B.i64c 100)) (B.gep_index b a64 i));
        let a2 = B.call1 b (Direct "realloc") [ a; B.i64c 128 ] in
        let a2_64 = B.bitcast b (Ptr i64) a2 in
        B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 4) (fun i ->
            B.call0 b (Direct "print_int") [ B.load b i64 (B.gep_index b a2_64 i) ];
            B.call0 b (Direct "putchar") [ B.i32c 32 ]);
        B.ret b (Some (B.i32c 0));
        p)
  in
  Alcotest.(check string) "prefix preserved" "100 101 102 103 " golden.Outcome.output

let test_printf_conversions () =
  let golden =
    run_both (fun () ->
        let p = fresh () in
        let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
        let fmt = word b "fmt" "i=%d f=%g c=%c s=%s pct=%%\n" in
        let s = word b "s" "str" in
        ignore
          (B.call b (Direct "printf")
             [ fmt; B.i64c (-7); B.fc 2.5; B.i32c 88; s ]);
        B.ret b (Some (B.i32c 0));
        p)
  in
  Alcotest.(check string) "printf output" "i=-7 f=2.5 c=X s=str pct=%\n"
    golden.Outcome.output

(* --- wrapper-side detection: corrupt a replica before running --- *)

let corrupting_run ~mode ~global_to_corrupt build =
  let p = build () in
  let cfg = { Config.default with Config.mode } in
  let tp = Dpmr.transform cfg p in
  let vm = Dpmr.vm_dpmr ~mode tp in
  let addr = Hashtbl.find vm.Dpmr_vm.Vm.global_addr (global_to_corrupt ^ ".rep") in
  Dpmr_memsim.Mem.write_u8 vm.Dpmr_vm.Vm.mem addr (Char.code '!');
  Dpmr_vm.Vm.run vm

let simple_consumer callee () =
  let p = fresh () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let s = word b "g" "payload" in
  (match callee with
  | "print_str" -> B.call0 b (Direct "print_str") [ s ]
  | "strlen" -> B.call0 b (Direct "print_int") [ B.call1 b (Direct "strlen") [ s ] ]
  | "strcmp" ->
      B.call0 b (Direct "print_int")
        [ B.int_cast b W64 (B.call1 b (Direct "strcmp") [ s; s ]) ]
  | _ -> assert false);
  B.ret b (Some (B.i32c 0));
  p

let test_wrapper_checks_fire () =
  List.iter
    (fun callee ->
      List.iter
        (fun mode ->
          let r =
            corrupting_run ~mode ~global_to_corrupt:"g" (simple_consumer callee)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s detects" callee (Config.mode_name mode))
            true (Outcome.is_dpmr_detect r))
        [ Config.Sds; Config.Mds ])
    [ "print_str"; "strlen"; "strcmp" ]

let test_strcmp_checks_only_read_prefix () =
  (* strings differing at byte 0: the wrapper must compare only the read
     prefix, so corrupting the replica *past* the difference is invisible *)
  let p = fresh () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let a = word b "ga" "xbcdef" and bb = word b "gb" "ybcdef" in
  B.call0 b (Direct "print_int")
    [ B.int_cast b W64 (B.call1 b (Direct "strcmp") [ a; bb ]) ];
  B.ret b (Some (B.i32c 0));
  let cfg = Config.default in
  let tp = Dpmr.transform cfg p in
  let vm = Dpmr.vm_dpmr ~mode:Config.Sds tp in
  (* corrupt byte 3 of ga's replica: strcmp reads only byte 0 of each *)
  let addr = Hashtbl.find vm.Dpmr_vm.Vm.global_addr "ga.rep" in
  Dpmr_memsim.Mem.write_u8 vm.Dpmr_vm.Vm.mem (Int64.add addr 3L) (Char.code '!');
  let r = Dpmr_vm.Vm.run vm in
  Alcotest.(check bool) "no detection past read prefix" true
    (r.Outcome.outcome = Outcome.Normal)

let test_qsort_sorts_replica_consistently () =
  (* after a transformed qsort, loads of the sorted array must still pass
     their checks (the wrapper permuted app, replica and shadow alike) *)
  ignore
    (run_both (fun () -> Dpmr_testprogs.Progs.qsort_prog ()))

let suites =
  [
    ( "wrappers",
      [
        Alcotest.test_case "strcpy + strlen" `Quick test_strcpy_strlen;
        Alcotest.test_case "strcmp orderings" `Quick test_strcmp_orderings;
        Alcotest.test_case "memcpy/memmove/memset" `Quick test_memcpy_memset_memmove;
        Alcotest.test_case "calloc zeroes" `Quick test_calloc_zeroed;
        Alcotest.test_case "realloc preserves prefix" `Quick test_realloc_preserves_prefix;
        Alcotest.test_case "printf conversions" `Quick test_printf_conversions;
        Alcotest.test_case "wrapper checks fire on divergence" `Quick
          test_wrapper_checks_fire;
        Alcotest.test_case "strcmp checks only read prefix" `Quick
          test_strcmp_checks_only_read_prefix;
        Alcotest.test_case "qsort keeps copies consistent" `Quick
          test_qsort_sorts_replica_consistently;
      ] );
  ]
