(* Workload tests: golden-output regression, transformation preservation
   for both designs (benchmark + micro workloads), overhead and memory
   bands, detection-conditions scenarios, and the periodicity measurement. *)

module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Workloads = Dpmr_workloads.Workloads
module Micro = Dpmr_workloads.Micro

(* golden outputs pinned: these change only if a workload's semantics (or
   the deterministic garbage/seed machinery) changes — both are worth a
   loud test failure *)
let golden_outputs =
  [
    ("art", "0 0 0 23 1 0 0 0 \ntd=261.118\nbu=81.9284\n");
    ("bzip2", "in=1024\nenc=490\nest=6078\n");
    ("equake", "energy=19.7927\n");
    ("mcf", "flow=6\ncost=64\nrelax=-624103884168206764\n");
  ]

let test_golden_regression () =
  List.iter
    (fun (name, expected) ->
      let p = (Workloads.find name).Workloads.build () in
      let r = Dpmr.run_plain p in
      Alcotest.(check string) (name ^ " golden output") expected r.Outcome.output;
      Alcotest.(check bool) (name ^ " normal") true (r.Outcome.outcome = Outcome.Normal))
    golden_outputs

let all_builds =
  List.map (fun (e : Workloads.entry) -> (e.Workloads.name, fun () -> e.Workloads.build ()))
    Workloads.all
  @ Micro.all

let test_preservation_matrix () =
  List.iter
    (fun (name, build) ->
      let p = build () in
      Dpmr_ir.Verifier.check_prog p;
      let golden = Dpmr.run_plain p in
      List.iter
        (fun (mode, diversity) ->
          let cfg = { Config.default with Config.mode; diversity } in
          let tp = Dpmr.transform cfg p in
          Dpmr_ir.Verifier.check_prog tp;
          let r = Dpmr.run_dpmr cfg p in
          Alcotest.(check string)
            (Printf.sprintf "%s %s output" name (Config.name cfg))
            golden.Outcome.output r.Outcome.output)
        [
          (Config.Sds, Config.No_diversity);
          (Config.Sds, Config.Rearrange_heap);
          (Config.Mds, Config.No_diversity);
          (Config.Mds, Config.Pad_malloc 256);
        ])
    all_builds

let test_workloads_deterministic () =
  List.iter
    (fun (name, build) ->
      let r1 = Dpmr.run_plain (build ()) in
      let r2 = Dpmr.run_plain (build ()) in
      Alcotest.(check string) (name ^ " deterministic") r1.Outcome.output r2.Outcome.output;
      Alcotest.(check int64) (name ^ " cost deterministic") r1.Outcome.cost r2.Outcome.cost)
    all_builds

let test_overhead_band () =
  (* the headline §3.7 claim: DPMR overheads land in a 2x-5x band *)
  List.iter
    (fun (e : Workloads.entry) ->
      let p = e.Workloads.build () in
      let golden = Dpmr.run_plain p in
      let r = Dpmr.run_dpmr Config.default p in
      let oh = Int64.to_float r.Outcome.cost /. Int64.to_float golden.Outcome.cost in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.2f in [1.8, 5.5]" e.Workloads.name oh)
        true
        (oh >= 1.8 && oh <= 5.5))
    Workloads.all

let test_memory_band () =
  (* §4.1: MDS memory overhead 2x; SDS in [2x, 4x) *)
  List.iter
    (fun (e : Workloads.entry) ->
      let p = e.Workloads.build () in
      let golden = (Dpmr.run_plain p).Outcome.peak_heap_bytes in
      let sds =
        (Dpmr.run_dpmr Config.default p).Outcome.peak_heap_bytes
      in
      let mds =
        (Dpmr.run_dpmr { Config.default with Config.mode = Config.Mds } p)
          .Outcome.peak_heap_bytes
      in
      let fs = float_of_int sds /. float_of_int golden in
      let fm = float_of_int mds /. float_of_int golden in
      Alcotest.(check bool)
        (Printf.sprintf "%s MDS %.2f ~ 2x" e.Workloads.name fm)
        true
        (fm >= 1.95 && fm <= 2.1);
      Alcotest.(check bool)
        (Printf.sprintf "%s SDS %.2f in [2, 4)" e.Workloads.name fs)
        true
        (fs >= 1.95 && fs < 4.0))
    Workloads.all

let test_mds_cheaper_on_pointer_heavy () =
  (* §4.5: the MDS gain concentrates on equake and mcf *)
  let gap name =
    let p = (Workloads.find name).Workloads.build () in
    let g = Int64.to_float (Dpmr.run_plain p).Outcome.cost in
    let s = Int64.to_float (Dpmr.run_dpmr Config.default p).Outcome.cost in
    let m =
      Int64.to_float
        (Dpmr.run_dpmr { Config.default with Config.mode = Config.Mds } p).Outcome.cost
    in
    (s -. m) /. g
  in
  let light = (gap "art" +. gap "bzip2") /. 2.0 in
  let heavy = (gap "equake" +. gap "mcf") /. 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "pointer-heavy gap %.2f > pointer-light gap %.2f" heavy light)
    true (heavy > light)

let test_scale_parameter () =
  let p1 = (Workloads.find "equake").Workloads.build ~scale:1 () in
  let p2 = (Workloads.find "equake").Workloads.build ~scale:2 () in
  let c1 = (Dpmr.run_plain p1).Outcome.cost and c2 = (Dpmr.run_plain p2).Outcome.cost in
  Alcotest.(check bool) "scale 2 costs more" true (Int64.compare c2 c1 > 0)

let test_detect_conditions_scenarios () =
  List.iter
    (fun (s : Dpmr_harness.Detect_conditions.scenario) ->
      let _, r, ok = Dpmr_harness.Detect_conditions.run_scenario s in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s" s.Dpmr_harness.Detect_conditions.sname
           (Outcome.to_string r.Outcome.outcome))
        true ok)
    Dpmr_harness.Detect_conditions.scenarios

let test_periodicity_beats_counter () =
  let counter, periodic = Dpmr_harness.Periodicity.measure () in
  Alcotest.(check bool)
    (Printf.sprintf "periodic %Ld < counter %Ld" periodic counter)
    true
    (Int64.compare periodic counter < 0)

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "golden output regression" `Quick test_golden_regression;
        Alcotest.test_case "preservation matrix (8 workloads x 4 configs)" `Slow
          test_preservation_matrix;
        Alcotest.test_case "determinism" `Quick test_workloads_deterministic;
        Alcotest.test_case "overhead band 2-5x" `Quick test_overhead_band;
        Alcotest.test_case "memory band (SDS 2-4x, MDS 2x)" `Quick test_memory_band;
        Alcotest.test_case "MDS gap concentrates on pointer-heavy apps" `Quick
          test_mds_cheaper_on_pointer_heavy;
        Alcotest.test_case "scale parameter" `Quick test_scale_parameter;
        Alcotest.test_case "detection-conditions scenarios" `Quick
          test_detect_conditions_scenarios;
        Alcotest.test_case "periodicity optimization wins" `Quick
          test_periodicity_beats_counter;
      ] );
  ]
