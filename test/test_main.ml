let () =
  Alcotest.run "dpmr"
    (Test_ir.suites @ Test_memsim.suites @ Test_vm.suites @ Test_shadow_type.suites @ Test_transform.suites @ Test_dsa.suites @ Test_wrappers.suites @ Test_faultinject.suites @ Test_workloads.suites @ Test_differential.suites @ Test_lowered.suites @ Test_fidelity.suites @ Test_rx.suites @ Test_text.suites @ Test_engine.suites @ Test_supervisor.suites @ Test_cache_concurrent.suites @ Test_server.suites @ Test_dispatch.suites @ Test_trace.suites @ Test_tier.suites @ Test_nversion.suites)
