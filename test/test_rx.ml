(* Rx-style recovery tests (§1.5 / Chapter 6 extension): a DPMR-detected
   overflow is masked by re-execution with padded heap requests. *)

open Dpmr_ir
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Rx = Dpmr_core.Rx
module Outcome = Dpmr_vm.Outcome
module Inject = Dpmr_fi.Inject
module Progs = Dpmr_testprogs.Progs

let test_padding_masks_overflow () =
  (* the limit-16 overflow writes 8 elements past an 8-element buffer;
     padding every request by 64 bytes absorbs the whole excursion *)
  let p = Progs.overflow ~limit:16 () in
  let padded = Rx.pad_heap_requests p 64 in
  Verifier.check_prog padded;
  let r = Dpmr.run_dpmr Config.default padded in
  Alcotest.(check bool)
    ("padded run clean: " ^ Outcome.to_string r.Outcome.outcome)
    true
    (r.Outcome.outcome = Outcome.Normal)

let test_recovery_escalation () =
  let p = Progs.overflow ~limit:16 () in
  let res =
    Rx.run_with_recovery Config.default p ~escalation:[ Rx.Pad 8; Rx.Pad 64; Rx.Pad 256 ]
  in
  Alcotest.(check bool) "first run detected" true (Outcome.is_dpmr_detect res.Rx.first);
  (* even the 8-byte pad can succeed thanks to size-class rounding; what
     matters is that some escalation level recovers *)
  (match res.Rx.recovered_with with
  | Some _ -> ()
  | None -> Alcotest.fail "expected recovery");
  Alcotest.(check bool) "final run clean" true
    (res.Rx.final.Outcome.outcome = Outcome.Normal)

let test_clean_program_not_reexecuted () =
  let p = Progs.linked_list () in
  let res = Rx.run_with_recovery Config.default p ~escalation:[ Rx.Pad 64 ] in
  Alcotest.(check int) "no re-executions" 0 res.Rx.attempts;
  Alcotest.(check bool) "clean" true (res.Rx.final.Outcome.outcome = Outcome.Normal)

let test_recovery_of_injected_resize () =
  (* end-to-end with the fault injector: a 50% heap-array resize on the
     bzip2 encoder buffer, detected by DPMR, recovered by padding *)
  let base = (Dpmr_workloads.Workloads.find "bzip2").Dpmr_workloads.Workloads.build () in
  let golden = Dpmr.run_plain base in
  let kind = Inject.Heap_array_resize 50 in
  let detected =
    List.filter_map
      (fun site ->
        let injected = Inject.apply base kind site in
        let res = Rx.run_with_recovery Config.default injected ~escalation:[ Rx.Pad 2048 ] in
        if Outcome.is_dpmr_detect res.Rx.first then Some res else None)
      (Inject.sites kind base)
  in
  Alcotest.(check bool) "at least one detected fault" true (detected <> []);
  (* every detected resize must be recoverable by a sufficiently large pad,
     and the recovered run must produce the golden output *)
  List.iter
    (fun (res : Rx.recovery_result) ->
      Alcotest.(check bool) "recovered" true (res.Rx.recovered_with <> None);
      Alcotest.(check string) "recovered output is golden" golden.Outcome.output
        res.Rx.final.Outcome.output)
    detected

let test_unrecoverable_reports_failure () =
  (* use-after-free under zero-before-free: padding does not mask it *)
  let p = Progs.read_after_free () in
  let cfg = { Config.default with Config.diversity = Config.Zero_before_free } in
  let res = Rx.run_with_recovery cfg p ~escalation:[ Rx.Pad 8; Rx.Pad 64 ] in
  Alcotest.(check bool) "detected" true (Outcome.is_dpmr_detect res.Rx.first);
  Alcotest.(check bool) "not recovered" true (res.Rx.recovered_with = None);
  Alcotest.(check int) "both escalations tried" 2 res.Rx.attempts

let suites =
  [
    ( "rx",
      [
        Alcotest.test_case "padding masks overflow" `Quick test_padding_masks_overflow;
        Alcotest.test_case "escalating recovery" `Quick test_recovery_escalation;
        Alcotest.test_case "clean program untouched" `Quick test_clean_program_not_reexecuted;
        Alcotest.test_case "injected resize recovered end-to-end" `Quick
          test_recovery_of_injected_resize;
        Alcotest.test_case "unrecoverable fault reported" `Quick
          test_unrecoverable_reports_failure;
      ] );
  ]
