(* End-to-end tests of the DPMR transformation: semantic preservation
   under error-free execution, detection of injected memory errors, and
   the SDS/MDS structural properties of Chapters 2 and 4. *)

open Dpmr_ir
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

let sds = { Config.default with Config.mode = Config.Sds }
let mds = { Config.default with Config.mode = Config.Mds }

let run_plain ?args p = Dpmr.run_plain ?args p

let run_dpmr ?args cfg p =
  let tp = Dpmr.transform cfg p in
  Verifier.check_prog tp;
  Dpmr.run_dpmr ?args cfg p |> fun r -> r

(* --- semantic preservation: transformed programs produce identical
   output and exit normally on every test program, in both designs --- *)

let preservation_cases =
  [
    ("linked list", fun () -> Dpmr_testprogs.Progs.linked_list ());
    ("globals with pointers", Dpmr_testprogs.Progs.global_pointers);
    ("strings + printf", Dpmr_testprogs.Progs.strings);
    ("qsort", Dpmr_testprogs.Progs.qsort_prog);
    ("boxed pointers across calls", Dpmr_testprogs.Progs.boxed);
    ("function pointer table", Dpmr_testprogs.Progs.fun_table);
  ]

let check_preserved cfg name mk () =
  let p = mk () in
  let golden = run_plain p in
  Alcotest.(check bool)
    (name ^ ": golden normal")
    true
    (golden.Outcome.outcome = Outcome.Normal);
  let r = run_dpmr cfg p in
  Alcotest.(check string) (name ^ ": output preserved") golden.Outcome.output
    r.Outcome.output;
  Alcotest.(check bool) (name ^ ": normal exit") true (r.Outcome.outcome = Outcome.Normal)

let test_argv_preserved cfg () =
  let p = Dpmr_testprogs.Progs.argv_prog () in
  let golden = run_plain ~args:[ "prog"; "21" ] p in
  let r = run_dpmr ~args:[ "prog"; "21" ] cfg p in
  Alcotest.(check string) "output" "42" golden.Outcome.output;
  Alcotest.(check string) "output preserved" golden.Outcome.output r.Outcome.output

(* --- detection --- *)

let test_overflow_detected cfg () =
  (* without DPMR: silent corruption, wrong-but-quiet or normal output *)
  let p = Dpmr_testprogs.Progs.overflow ~limit:16 () in
  let r = run_dpmr cfg p in
  Alcotest.(check bool)
    ("overflow detected: got " ^ Outcome.to_string r.Outcome.outcome)
    true
    (Outcome.is_dpmr_detect r)

let test_clean_overflow_prog_ok cfg () =
  (* same program without the overflow: runs clean under DPMR *)
  let p = Dpmr_testprogs.Progs.overflow ~limit:8 () in
  let golden = run_plain p in
  let r = run_dpmr cfg p in
  Alcotest.(check string) "output" golden.Outcome.output r.Outcome.output;
  Alcotest.(check bool) "normal" true (r.Outcome.outcome = Outcome.Normal)

let test_read_after_free_zbf () =
  (* zero-before-free makes the stale read differ between app and replica *)
  let cfg = { sds with Config.diversity = Config.Zero_before_free } in
  let r = run_dpmr cfg (Dpmr_testprogs.Progs.read_after_free ()) in
  Alcotest.(check bool)
    ("detected: got " ^ Outcome.to_string r.Outcome.outcome)
    true (Outcome.is_dpmr_detect r)

let test_read_after_free_no_diversity () =
  (* without diversity both copies read the same stale value: the (benign
     here) error goes undetected — the §2.5.2 "same correct value" case *)
  let r = run_dpmr sds (Dpmr_testprogs.Progs.read_after_free ()) in
  Alcotest.(check bool) "undetected" true (r.Outcome.outcome = Outcome.Normal);
  Alcotest.(check string) "stale value read" "77" r.Outcome.output

let test_int_to_ptr_rejected () =
  List.iter
    (fun cfg ->
      Alcotest.(check bool)
        ("rejected under " ^ Config.mode_name cfg.Config.mode)
        true
        (try
           ignore (Dpmr.transform cfg (Dpmr_testprogs.Progs.int_to_ptr_prog ()));
           false
         with Dpmr.Unsupported _ -> true))
    [ sds; mds ]

(* --- stack memory: replication covers allocas too (§1.3's "all
   segments"), and the Pad_alloca production extension (§2.6) --- *)

let stack_overflow_prog ~limit () =
  let open Dpmr_ir.Types in
  let p = Dpmr_testprogs.Progs.fresh () in
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let x = Builder.alloca b ~name:"x" ~count:(Builder.i64c 8) i32 in
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c limit) (fun i ->
      Builder.store b i32 (Builder.int_cast b W32 i) (Builder.gep_index b x i));
  let v = Builder.load b i32 (Builder.gep_index b x (Builder.i64c 0)) in
  Builder.call0 b (Inst.Direct "print_int") [ Builder.int_cast b W64 v ];
  Builder.ret b (Some (Builder.i32c 0));
  p

let test_stack_overflow_detected () =
  List.iter
    (fun cfg ->
      let r = run_dpmr cfg (stack_overflow_prog ~limit:24 ()) in
      Alcotest.(check bool)
        (Config.name cfg ^ " stack overflow caught: "
        ^ Outcome.to_string r.Outcome.outcome)
        true
        (Outcome.is_dpmr_detect r))
    [ sds; mds ]

let test_pad_alloca_preserves_and_displaces () =
  (* error-free program unchanged under the stack-padding extension *)
  let clean = stack_overflow_prog ~limit:8 () in
  let golden = run_plain clean in
  let cfg = { sds with Config.diversity = Config.Pad_alloca 64 } in
  let r = run_dpmr cfg clean in
  Alcotest.(check string) "output preserved" golden.Outcome.output r.Outcome.output;
  (* and the faulty program is still covered *)
  let r = run_dpmr cfg (stack_overflow_prog ~limit:24 ()) in
  Alcotest.(check bool) "still covered" true
    (Outcome.is_dpmr_detect r || Outcome.is_crash r)

(* --- structural properties --- *)

let count_insts pred p =
  let n = ref 0 in
  Prog.iter_funcs p (fun f -> Func.iter_insts f (fun _ i -> if pred i then incr n));
  !n

let is_malloc = function Inst.Malloc _ -> true | _ -> false
let is_load = function Inst.Load _ -> true | _ -> false
let is_store = function Inst.Store _ -> true | _ -> false

let test_sds_triples_allocations () =
  let p = Dpmr_testprogs.Progs.linked_list () in
  let tp = Dpmr.transform sds p in
  (* every LL malloc becomes app + replica + shadow *)
  let orig = count_insts is_malloc p in
  let trans = count_insts is_malloc tp in
  Alcotest.(check int) "3x mallocs" (3 * orig) trans

let test_mds_doubles_allocations () =
  let p = Dpmr_testprogs.Progs.linked_list () in
  let tp = Dpmr.transform mds p in
  let orig = count_insts is_malloc p in
  Alcotest.(check int) "2x mallocs" (2 * orig) (count_insts is_malloc tp)

let test_mds_fewer_stores_than_sds () =
  let p = Dpmr_testprogs.Progs.linked_list () in
  let s = count_insts is_store (Dpmr.transform sds p) in
  let m = count_insts is_store (Dpmr.transform mds p) in
  Alcotest.(check bool) "MDS emits fewer stores" true (m < s)

let test_static_policy_reduces_loads () =
  let p = Dpmr_testprogs.Progs.linked_list () in
  let all = count_insts is_load (Dpmr.transform sds p) in
  let ten =
    count_insts is_load
      (Dpmr.transform { sds with Config.policy = Config.Static 0.10 } p)
  in
  Alcotest.(check bool) "static 10% emits fewer replica loads" true (ten < all)

let test_temporal_policy_runs () =
  let cfg = { sds with Config.policy = Config.Temporal Config.temporal_mask_1_2 } in
  let p = Dpmr_testprogs.Progs.linked_list () in
  let golden = run_plain p in
  let r = run_dpmr cfg p in
  Alcotest.(check string) "output preserved" golden.Outcome.output r.Outcome.output

let test_temporal_catches_overflow () =
  let cfg = { sds with Config.policy = Config.Temporal Config.temporal_mask_7_8 } in
  let r = run_dpmr cfg (Dpmr_testprogs.Progs.overflow ~limit:16 ()) in
  Alcotest.(check bool) "detected under temporal 7/8" true (Outcome.is_dpmr_detect r)

(* --- diversity transformations run clean on error-free programs --- *)

let test_diversity_preservation () =
  let p = Dpmr_testprogs.Progs.linked_list () in
  let golden = run_plain p in
  List.iter
    (fun (mode, d) ->
      let cfg = { Config.default with Config.mode; diversity = d } in
      let r = run_dpmr cfg p in
      Alcotest.(check string)
        (Config.name cfg ^ " output")
        golden.Outcome.output r.Outcome.output;
      Alcotest.(check bool)
        (Config.name cfg ^ " normal")
        true
        (r.Outcome.outcome = Outcome.Normal))
    [
      (Config.Sds, Config.Pad_malloc 8);
      (Config.Sds, Config.Pad_malloc 1024);
      (Config.Sds, Config.Zero_before_free);
      (Config.Sds, Config.Rearrange_heap);
      (Config.Mds, Config.Pad_malloc 32);
      (Config.Mds, Config.Zero_before_free);
      (Config.Mds, Config.Rearrange_heap);
    ]

(* --- overhead sanity: instrumentation costs more, MDS <= SDS on the
   pointer-heavy linked list --- *)

let test_overhead_ordering () =
  let p = Dpmr_testprogs.Progs.linked_list ~n:50 () in
  let golden = (run_plain p).Outcome.cost in
  let s = (run_dpmr sds p).Outcome.cost in
  let m = (run_dpmr mds p).Outcome.cost in
  Alcotest.(check bool) "SDS > golden" true (Int64.compare s golden > 0);
  Alcotest.(check bool) "MDS > golden" true (Int64.compare m golden > 0);
  Alcotest.(check bool) "MDS <= SDS on pointer-heavy code" true (Int64.compare m s <= 0)

(* --- memory overhead: MDS 2x, SDS in [2x, 4x] (§4.1) --- *)

let test_memory_overhead_band () =
  let p = Dpmr_testprogs.Progs.linked_list ~n:100 () in
  let golden = (run_plain p).Outcome.peak_heap_bytes in
  let s = (run_dpmr sds p).Outcome.peak_heap_bytes in
  let m = (run_dpmr mds p).Outcome.peak_heap_bytes in
  let fs = float_of_int s /. float_of_int golden in
  let fm = float_of_int m /. float_of_int golden in
  Alcotest.(check bool) (Printf.sprintf "MDS ~2x (%.2f)" fm) true (fm >= 1.9 && fm <= 2.4)
  ;
  Alcotest.(check bool) (Printf.sprintf "SDS in [2x,4.2x] (%.2f)" fs) true
    (fs >= 2.0 && fs <= 4.2);
  Alcotest.(check bool) "SDS >= MDS" true (s >= m)

let preservation_tests cfg tag =
  List.map
    (fun (name, mk) ->
      Alcotest.test_case (tag ^ ": " ^ name) `Quick (check_preserved cfg name mk))
    preservation_cases

let suites =
  [
    ( "transform.preservation",
      preservation_tests sds "sds"
      @ preservation_tests mds "mds"
      @ [
          Alcotest.test_case "sds: argv" `Quick (test_argv_preserved sds);
          Alcotest.test_case "mds: argv" `Quick (test_argv_preserved mds);
          Alcotest.test_case "diversity transforms preserve semantics" `Quick
            test_diversity_preservation;
          Alcotest.test_case "temporal policy preserves semantics" `Quick
            test_temporal_policy_runs;
        ] );
    ( "transform.detection",
      [
        Alcotest.test_case "sds: overflow detected" `Quick (test_overflow_detected sds);
        Alcotest.test_case "mds: overflow detected" `Quick (test_overflow_detected mds);
        Alcotest.test_case "sds: clean variant runs" `Quick (test_clean_overflow_prog_ok sds);
        Alcotest.test_case "mds: clean variant runs" `Quick (test_clean_overflow_prog_ok mds);
        Alcotest.test_case "read-after-free + zero-before-free" `Quick
          test_read_after_free_zbf;
        Alcotest.test_case "read-after-free w/o diversity undetected" `Quick
          test_read_after_free_no_diversity;
        Alcotest.test_case "temporal 7/8 catches overflow" `Quick
          test_temporal_catches_overflow;
        Alcotest.test_case "int-to-ptr rejected" `Quick test_int_to_ptr_rejected;
      ] );
    ( "transform.stack",
      [
        Alcotest.test_case "stack overflow detected" `Quick test_stack_overflow_detected;
        Alcotest.test_case "pad-alloca extension" `Quick
          test_pad_alloca_preserves_and_displaces;
      ] );
    ( "transform.structure",
      [
        Alcotest.test_case "SDS triples allocations" `Quick test_sds_triples_allocations;
        Alcotest.test_case "MDS doubles allocations" `Quick test_mds_doubles_allocations;
        Alcotest.test_case "MDS stores < SDS stores" `Quick test_mds_fewer_stores_than_sds;
        Alcotest.test_case "static policy drops checks" `Quick test_static_policy_reduces_loads;
        Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering;
        Alcotest.test_case "memory overhead band" `Quick test_memory_overhead_band;
      ] );
  ]
