(* Differential tests: the lowered threaded-code engine ({!Vm.run}) must
   be observationally identical to the reference tree-walking engine
   ({!Vm.run_reference}) — same outcome, output, cost, memory footprint,
   and fault-detection point — across every workload, DPMR mode, and
   injected-fault variant.  The reference engine is the executable
   specification; any divergence here is a lowering or interpreter bug,
   and because every figure is computed from these fields, equality here
   is what makes the fast engine safe to use for the experiments. *)

module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Vm = Dpmr_vm.Vm
module Outcome = Dpmr_vm.Outcome
module Inject = Dpmr_fi.Inject
module Workloads = Dpmr_workloads.Workloads

let sds = Config.default
let mds = { Config.default with Config.mode = Config.Mds }

(* Run [prog] on both engines, each in a fresh VM (a run mutates its VM's
   memory, so sharing one would let the first run contaminate the second). *)
let run_pair ?budget ~mode prog =
  let mk () =
    match mode with
    | None -> Dpmr.vm_plain ?budget prog
    | Some m -> Dpmr.vm_dpmr ?budget ~mode:m prog
  in
  (Vm.run (mk ()), Vm.run_reference (mk ()))

let check_equal name (lowered, reference) =
  let chk sub fmt project =
    Alcotest.check fmt (name ^ ": " ^ sub) (project reference) (project lowered)
  in
  chk "outcome" Alcotest.string (fun r -> Outcome.to_string r.Outcome.outcome);
  chk "output" Alcotest.string (fun r -> r.Outcome.output);
  chk "cost" Alcotest.int64 (fun r -> r.Outcome.cost);
  chk "peak heap" Alcotest.int (fun r -> r.Outcome.peak_heap_bytes);
  chk "mapped pages" Alcotest.int (fun r -> r.Outcome.mapped_pages);
  chk "fi first cost"
    Alcotest.(option int64)
    (fun r -> r.Outcome.fi_first_cost)

(* --- every workload, golden and both DPMR designs --- *)

let test_workload wname () =
  let entry = Workloads.find wname in
  let base = entry.Workloads.build ~scale:1 () in
  check_equal (wname ^ " golden") (run_pair ~mode:None base);
  List.iter
    (fun (label, cfg) ->
      let tp = Dpmr.transform cfg base in
      check_equal (wname ^ " " ^ label)
        (run_pair ~mode:(Some cfg.Config.mode) tp))
    [
      ("sds", sds);
      ("mds", mds);
      ("sds+rearrange", { sds with Config.diversity = Config.Rearrange_heap });
      ("mds+zero-free", { mds with Config.diversity = Config.Zero_before_free });
      ("sds+temporal", { sds with Config.policy = Config.Temporal Config.temporal_mask_1_2 });
    ]

(* --- injected faults: the engines must agree on crashes, detections,
   and the exact detection point, not just on clean runs --- *)

let test_injected () =
  let entry = Workloads.find "mcf" in
  let base = entry.Workloads.build ~scale:1 () in
  (* the experiment harness's ~20x-golden budget: without it, a fault
     that silently loops runs to the 2e9-unit default on both engines *)
  let golden = Dpmr.run_plain base in
  let budget = Int64.mul 20L golden.Outcome.cost in
  List.iter
    (fun kind ->
      (* a prefix of the sites is enough: first/last bracket the range *)
      let sites =
        match Inject.sites kind base with
        | [] -> []
        | [ s ] -> [ s ]
        | s :: rest -> [ s; List.nth rest (List.length rest - 1) ]
      in
      List.iteri
        (fun i site ->
          let faulty = Inject.apply base kind site in
          let name = Printf.sprintf "mcf fi site %d" i in
          check_equal (name ^ " stdapp") (run_pair ~budget ~mode:None faulty);
          let tp = Dpmr.transform sds faulty in
          check_equal (name ^ " sds")
            (run_pair ~budget ~mode:(Some Config.Sds) tp))
        sites)
    [ Inject.Heap_array_resize 50; Inject.Immediate_free; Inject.Off_by_one; Inject.Wild_store 7 ]

(* --- the budget check fires at the same instruction in both engines --- *)

let test_timeout_agrees () =
  let entry = Workloads.find "mcf" in
  let base = entry.Workloads.build ~scale:1 () in
  let pair = run_pair ~budget:5_000L ~mode:None base in
  check_equal "mcf tiny budget" pair;
  Alcotest.(check string) "is a timeout" "timeout"
    (Outcome.to_string (fst pair).Outcome.outcome)

let suites =
  [
    ( "lowered-vs-reference",
      [
        Alcotest.test_case "art" `Quick (test_workload "art");
        Alcotest.test_case "bzip2" `Quick (test_workload "bzip2");
        Alcotest.test_case "equake" `Quick (test_workload "equake");
        Alcotest.test_case "mcf" `Quick (test_workload "mcf");
        Alcotest.test_case "injected faults" `Quick test_injected;
        Alcotest.test_case "timeout point" `Quick test_timeout_agrees;
      ] );
  ]
