(* Shared IR program builders used across the transformation tests. *)

open Dpmr_ir
open Types
open Inst

let fresh () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  p

let main_b p = Builder.create p ~name:"main" ~params:[] ~ret:i32 ()

let finish b = Builder.ret b (Some (Builder.i32c 0))

(* The Figure 2.9/2.10 linked-list program: createNode + getSum, driven by
   a main that builds [1..n] and prints the sum. *)
let linked_list ?(n = 5) () =
  let p = fresh () in
  Tenv.define_struct p.Prog.tenv "LL" [ i32; Ptr (Struct "LL") ];
  let ll = Struct "LL" in
  let b =
    Builder.create p ~name:"createNode"
      ~params:[ ("data", i32); ("last", Ptr ll) ]
      ~ret:(Ptr ll) ()
  in
  let node = Builder.malloc b ~name:"n" ll in
  Builder.store b i32 (Builder.param b 0) (Builder.gep_field b node 0);
  Builder.store b (Ptr ll) (Builder.null ll) (Builder.gep_field b node 1);
  let last = Builder.param b 1 in
  let nz = Builder.icmp b Ine W64 (Builder.ptr_to_int b last) (Builder.i64c 0) in
  Builder.if_ b nz (fun () ->
      Builder.store b (Ptr ll) node (Builder.gep_field b last 1));
  Builder.ret b (Some node);
  let b = Builder.create p ~name:"getSum" ~params:[ ("n", Ptr ll) ] ~ret:i32 () in
  let sum = Builder.local b ~name:"sum" i32 (Builder.i32c 0) in
  let cur = Builder.local b ~name:"cur" (Ptr ll) (Builder.param b 0) in
  Builder.while_ b
    (fun () ->
      let c = Builder.get b (Ptr ll) cur in
      Builder.icmp b Ine W64 (Builder.ptr_to_int b c) (Builder.i64c 0))
    (fun () ->
      let c = Builder.get b (Ptr ll) cur in
      let v = Builder.load b i32 (Builder.gep_field b c 0) in
      let s = Builder.get b i32 sum in
      Builder.set b i32 sum (Builder.add b W32 s v);
      Builder.set b (Ptr ll) cur (Builder.load b (Ptr ll) (Builder.gep_field b c 1)));
  Builder.ret b (Some (Builder.get b i32 sum));
  let b = main_b p in
  let head = Builder.call1 b (Direct "createNode") [ Builder.i32c 1; Builder.null ll ] in
  let tail = Builder.local b (Ptr ll) head in
  Builder.for_ b ~from:(Builder.i64c 2) ~below:(Builder.i64c (n + 1)) (fun i ->
      let t = Builder.get b (Ptr ll) tail in
      let v = Builder.int_cast b W32 i in
      Builder.set b (Ptr ll) tail (Builder.call1 b (Direct "createNode") [ v; t ]));
  let s = Builder.call1 b (Direct "getSum") [ head ] in
  Builder.call0 b (Direct "print_int") [ Builder.int_cast b W64 s ];
  finish b;
  p

(* Buffer overflow: allocate 8 i32s, write [0, limit) through the buffer,
   then read back index 0 and print it.  With limit > 8 the writes run
   past the object; by limit = 16 the application-side overflow has
   clobbered the replica object, so a DPMR load check fires on the
   read-back (the Figure 1.1 scenario realized through implicit
   diversity). *)
let overflow ~limit () =
  let p = fresh () in
  let b = main_b p in
  let x = Builder.malloc b ~name:"x" ~count:(Builder.i64c 8) i32 in
  let y = Builder.malloc b ~name:"y" ~count:(Builder.i64c 8) i32 in
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c limit) (fun i ->
      let slot = Builder.gep_index b x i in
      Builder.store b i32 (Builder.int_cast b W32 i) slot);
  Builder.store b i32 (Builder.i32c 7) (Builder.gep_index b y (Builder.i64c 0));
  let v0 = Builder.load b i32 (Builder.gep_index b x (Builder.i64c 0)) in
  let vy = Builder.load b i32 (Builder.gep_index b y (Builder.i64c 0)) in
  Builder.call0 b (Direct "print_int") [ Builder.int_cast b W64 v0 ];
  Builder.call0 b (Direct "print_int") [ Builder.int_cast b W64 vy ];
  finish b;
  p

(* Read after free: store a value, free the buffer, read it back.  The
   stale read returns the old value in application memory; under
   zero-before-free the replica reads zero and the check fires. *)
let read_after_free () =
  let p = fresh () in
  let b = main_b p in
  let x = Builder.malloc b ~name:"x" ~count:(Builder.i64c 4) i64 in
  Builder.store b i64 (Builder.i64c 77) (Builder.gep_index b x (Builder.i64c 1));
  Builder.free b x;
  let v = Builder.load b i64 (Builder.gep_index b x (Builder.i64c 1)) in
  Builder.call0 b (Direct "print_int") [ v ];
  finish b;
  p

(* Globals with pointers: a global config struct holding a pointer to a
   global table; main reads table[2] through the config. *)
let global_pointers () =
  let p = fresh () in
  Tenv.define_struct p.Prog.tenv "cfg" [ Ptr i64; i32 ];
  Prog.add_global p
    {
      Prog.gname = "table";
      gty = arr i64 4;
      ginit = Prog.Gagg [ Prog.Gint 10L; Prog.Gint 20L; Prog.Gint 30L; Prog.Gint 40L ];
    };
  Prog.add_global p
    {
      Prog.gname = "config";
      gty = Struct "cfg";
      ginit = Prog.Gagg [ Prog.Gptr_global "table"; Prog.Gint 9L ];
    };
  let b = main_b p in
  let cfgp = Global "config" in
  let tptr = Builder.load b (Ptr i64) (Builder.gep_field b cfgp 0) in
  let v = Builder.load b i64 (Builder.gep_index b tptr (Builder.i64c 2)) in
  Builder.call0 b (Direct "print_int") [ v ];
  finish b;
  p

(* String/externs workout: strcpy, strlen, strcmp, printf with %s/%d. *)
let strings () =
  let p = fresh () in
  let b = main_b p in
  let buf = Builder.malloc b ~count:(Builder.i64c 32) i8 in
  let buf = Builder.bitcast b (Ptr (arr i8 0)) buf in
  let hello = Builder.global b ~name:"hello" (arr i8 8) (Prog.Gstring "hello") in
  let hello = Builder.bitcast b (Ptr (arr i8 0)) hello in
  ignore (Builder.call b (Direct "strcpy") [ buf; hello ]);
  let n = Builder.call1 b (Direct "strlen") [ buf ] in
  let c = Builder.call1 b (Direct "strcmp") [ buf; hello ] in
  let fmt = Builder.global b ~name:"fmt" (arr i8 16) (Prog.Gstring "%s:%d:%d\n") in
  let fmt = Builder.bitcast b (Ptr (arr i8 0)) fmt in
  ignore
    (Builder.call b (Direct "printf")
       [ fmt; buf; n; Builder.int_cast b W64 c ]);
  finish b;
  p

(* qsort through the wrapper, sorting an i64 array with an IR comparator. *)
let qsort_prog () =
  let p = fresh () in
  let b =
    Builder.create p ~name:"cmp"
      ~params:[ ("a", Ptr (arr i8 0)); ("b", Ptr (arr i8 0)) ]
      ~ret:i32 ()
  in
  let va = Builder.load b i64 (Builder.bitcast b (Ptr i64) (Builder.param b 0)) in
  let vb = Builder.load b i64 (Builder.bitcast b (Ptr i64) (Builder.param b 1)) in
  let lt = Builder.icmp b Islt W64 va vb in
  let gt = Builder.icmp b Isgt W64 va vb in
  let d = Builder.sub b W8 gt lt in
  Builder.ret b (Some (Builder.int_cast b W32 d));
  let b = main_b p in
  let a = Builder.malloc b ~count:(Builder.i64c 6) i64 in
  List.iteri
    (fun i v -> Builder.store b i64 (Builder.i64c v) (Builder.gep_index b a (Builder.i64c i)))
    [ 42; 7; 19; 3; 25; 11 ];
  Builder.call0 b (Direct "qsort")
    [ Builder.bitcast b (Ptr (arr i8 0)) a; Builder.i64c 6; Builder.i64c 8; Fun_addr "cmp" ];
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c 6) (fun i ->
      let v = Builder.load b i64 (Builder.gep_index b a i) in
      Builder.call0 b (Direct "print_int") [ v ];
      Builder.call0 b (Direct "putchar") [ Builder.i32c 32 ]);
  finish b;
  p

(* argv consumer: prints atoi(argv[1]) * 2. *)
let argv_prog () =
  let p = fresh () in
  let b =
    Builder.create p ~name:"main"
      ~params:[ ("argc", i32); ("argv", Ptr (Ptr (arr i8 0))) ]
      ~ret:i32 ()
  in
  let argv = Builder.param b 1 in
  let a1 = Builder.load b (Ptr (arr i8 0)) (Builder.gep_index b argv (Builder.i64c 1)) in
  let v = Builder.call1 b (Direct "atoi") [ a1 ] in
  let v2 = Builder.add b W32 v v in
  Builder.call0 b (Direct "print_int") [ Builder.int_cast b W64 v2 ];
  finish b;
  p

(* Pointer-returning helper across a call boundary (exercises the
   rvSop/rvRopPtr machinery): box(v) allocates a cell holding v. *)
let boxed () =
  let p = fresh () in
  let b = Builder.create p ~name:"box" ~params:[ ("v", i64) ] ~ret:(Ptr i64) () in
  let cell = Builder.malloc b i64 in
  Builder.store b i64 (Builder.param b 0) cell;
  Builder.ret b (Some cell);
  let b = main_b p in
  let acc = Builder.local b i64 (Builder.i64c 0) in
  Builder.for_ b ~from:(Builder.i64c 1) ~below:(Builder.i64c 4) (fun i ->
      let cell = Builder.call1 b (Direct "box") [ i ] in
      let v = Builder.load b i64 cell in
      let a = Builder.get b i64 acc in
      Builder.set b i64 acc (Builder.add b W64 a v);
      Builder.free b cell);
  Builder.call0 b (Direct "print_int") [ Builder.get b i64 acc ];
  finish b;
  p

(* Function-pointer dispatch table stored in memory. *)
let fun_table () =
  let p = fresh () in
  let fty = fun_ty i64 [ i64 ] in
  let mk name f =
    let b = Builder.create p ~name ~params:[ ("x", i64) ] ~ret:i64 () in
    Builder.ret b (Some (f b (Builder.param b 0)))
  in
  mk "twice" (fun b x -> Builder.add b W64 x x);
  mk "square" (fun b x -> Builder.mul b W64 x x);
  let b = main_b p in
  let tbl = Builder.malloc b ~count:(Builder.i64c 2) (Ptr fty) in
  Builder.store b (Ptr fty) (Fun_addr "twice") (Builder.gep_index b tbl (Builder.i64c 0));
  Builder.store b (Ptr fty) (Fun_addr "square") (Builder.gep_index b tbl (Builder.i64c 1));
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c 2) (fun i ->
      let fp = Builder.load b (Ptr fty) (Builder.gep_index b tbl i) in
      let v = Builder.call1 b (Indirect fp) [ Builder.i64c 5 ] in
      Builder.call0 b (Direct "print_int") [ v ]);
  finish b;
  p

(* Program containing an int-to-pointer cast (forbidden under SDS/MDS). *)
let int_to_ptr_prog () =
  let p = fresh () in
  let b = main_b p in
  let x = Builder.malloc b i64 in
  let addr = Builder.ptr_to_int b x in
  let x2 = Builder.int_to_ptr b (Ptr i64) addr in
  Builder.store b i64 (Builder.i64c 1) x2;
  finish b;
  p
