(* Data Structure Analysis tests (Chapter 5): local graphs, flags,
   unification, completeness, interprocedural phases, the markX exclusion
   closure, and the end-to-end scope-expanded transformation. *)

open Dpmr_ir
open Types
open Inst
module Graph = Dpmr_dsa.Graph
module Local = Dpmr_dsa.Local
module Interproc = Dpmr_dsa.Interproc
module Scope = Dpmr_dsa.Scope
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Progs = Dpmr_testprogs.Progs

let node_of res r =
  match Graph.reg_node res.Local.graph r with
  | Some (n, _) -> n
  | None -> Alcotest.fail "register has no DS node"

let reg_of_operand = function
  | Reg r -> r
  | _ -> Alcotest.fail "expected register operand"

(* ---- local phase basics ---- *)

let test_alloc_flags () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  let h = Builder.malloc b i64 in
  let s = Builder.alloca b i64 in
  Builder.ret0 b;
  let res = Local.analyze p (Prog.func p "f") in
  Alcotest.(check bool) "heap flag" true
    (Graph.has_flag (node_of res (reg_of_operand h)) Graph.Heap);
  Alcotest.(check bool) "stack flag" true
    (Graph.has_flag (node_of res (reg_of_operand s)) Graph.Stack)

(* Figure 5.1(a): ptr-to-int then int-to-ptr *)
let test_ptr_int_flags () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  let x = Builder.malloc b ~count:(Builder.i64c 3) i32 in
  let y = Builder.ptr_to_int b x in
  let y4 = Builder.add b W64 y (Builder.i64c 4) in
  let z = Builder.int_to_ptr b (Ptr i32) y4 in
  Builder.store b i32 (Builder.i32c 1) z;
  Builder.ret0 b;
  let res = Local.analyze p (Prog.func p "f") in
  Alcotest.(check bool) "x marked P" true
    (Graph.has_flag (node_of res (reg_of_operand x)) Graph.Ptr_to_int_f);
  let zn = node_of res (reg_of_operand z) in
  Alcotest.(check bool) "z marked 2" true (Graph.has_flag zn Graph.Int_to_ptr_f);
  Alcotest.(check bool) "z marked U" true (Graph.has_flag zn Graph.Unknown)

(* Type-inhomogeneous use collapses the node (the O flag). *)
let test_collapse_on_inhomogeneous_use () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  let x = Builder.malloc b ~count:(Builder.i64c 2) i64 in
  Builder.store b i64 (Builder.i64c 1) x;
  let xf = Builder.bitcast b (Ptr Float) x in
  Builder.store b Float (Builder.fc 1.0) xf;
  Builder.ret0 b;
  let res = Local.analyze p (Prog.func p "f") in
  Alcotest.(check bool) "collapsed" true
    (Graph.is_collapsed (node_of res (reg_of_operand x)))

let test_homogeneous_use_stays_field_sensitive () =
  let p = Progs.fresh () in
  Tenv.define_struct p.Prog.tenv "Pair" [ i64; Ptr i64 ];
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  let x = Builder.malloc b (Struct "Pair") in
  Builder.store b i64 (Builder.i64c 1) (Builder.gep_field b x 0);
  let cell = Builder.malloc b i64 in
  Builder.store b (Ptr i64) cell (Builder.gep_field b x 1);
  Builder.ret0 b;
  let res = Local.analyze p (Prog.func p "f") in
  Alcotest.(check bool) "not collapsed" false
    (Graph.is_collapsed (node_of res (reg_of_operand x)))

(* Store then load of a pointer flows through the field edge. *)
let test_points_to_through_memory () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"f" ~params:[] ~ret:Void () in
  let target = Builder.malloc b i64 in
  let cell = Builder.malloc b (Ptr i64) in
  Builder.store b (Ptr i64) target cell;
  let loaded = Builder.load b (Ptr i64) cell in
  Builder.store b i64 (Builder.i64c 5) loaded;
  Builder.ret0 b;
  let res = Local.analyze p (Prog.func p "f") in
  Alcotest.(check bool) "loaded aliases target" true
    (Graph.find (node_of res (reg_of_operand target))
    == Graph.find (node_of res (reg_of_operand loaded)))

(* Completeness: local heap data not passed anywhere is complete; data
   reachable from arguments or calls is not (Figure 5.2's reachability). *)
let test_completeness () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"f" ~params:[ ("q", Ptr i64) ] ~ret:Void () in
  let local_obj = Builder.malloc b i64 in
  Builder.store b i64 (Builder.i64c 1) local_obj;
  let escaping = Builder.malloc b ~count:(Builder.i64c 4) i8 in
  let esc8 = Builder.bitcast b (Ptr (arr i8 0)) escaping in
  ignore (Builder.call b (Direct "strlen") [ esc8 ]);
  Builder.ret0 b;
  let res = Local.analyze p (Prog.func p "f") in
  Local.mark_completeness res;
  Alcotest.(check bool) "local object complete" true
    (Graph.is_complete (node_of res (reg_of_operand local_obj)));
  Alcotest.(check bool) "escaping object incomplete" false
    (Graph.is_complete (node_of res (reg_of_operand escaping)));
  let qreg = fst (List.hd (Prog.func p "f").Func.params) in
  Alcotest.(check bool) "argument incomplete" false
    (Graph.is_complete (node_of res qreg))

(* ---- interprocedural ---- *)

(* Bottom-up: callee stores its argument into a global cell; the caller's
   actual must end up aliased with what the global points to. *)
let test_bottom_up_inlining () =
  let p = Progs.fresh () in
  Prog.add_global p { Prog.gname = "cell"; gty = Ptr i64; ginit = Prog.Gptr_null };
  let b = Builder.create p ~name:"stash" ~params:[ ("v", Ptr i64) ] ~ret:Void () in
  Builder.store b (Ptr i64) (Builder.param b 0) (Global "cell");
  Builder.ret0 b;
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let obj = Builder.malloc b i64 in
  Builder.call0 b (Direct "stash") [ obj ];
  let back = Builder.load b (Ptr i64) (Global "cell") in
  Builder.store b i64 (Builder.i64c 9) back;
  Builder.ret b (Some (Builder.i32c 0));
  let summary = Interproc.analyze p in
  let main_res = Hashtbl.find summary.Interproc.results "main" in
  Alcotest.(check bool) "obj aliases load from global cell" true
    (Graph.find (node_of main_res (reg_of_operand obj))
    == Graph.find (node_of main_res (reg_of_operand back)))

(* Top-down: an int-to-ptr pointer passed into a callee taints the
   callee's formal. *)
let test_top_down_flag_propagation () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"sink" ~params:[ ("q", Ptr i64) ] ~ret:Void () in
  Builder.store b i64 (Builder.i64c 1) (Builder.param b 0);
  Builder.ret0 b;
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let wild = Builder.int_to_ptr b (Ptr i64) (Builder.i64c 0x1234) in
  Builder.call0 b (Direct "sink") [ wild ];
  Builder.ret b (Some (Builder.i32c 0));
  let summary = Interproc.analyze p in
  let sink_res = Hashtbl.find summary.Interproc.results "sink" in
  let qreg = fst (List.hd (Prog.func p "sink").Func.params) in
  Alcotest.(check bool) "formal tainted Unknown" true
    (Graph.has_flag (node_of sink_res qreg) Graph.Unknown)

(* ---- markX exclusion closure (Figures 5.3/5.4/5.7) ---- *)

let test_exclusion_closure () =
  let p = Progs.fresh () in
  Tenv.define_struct p.Prog.tenv "Box" [ Ptr i64 ];
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  (* box is reached from a manufactured pointer: excluded, and the object
     its field points to must be excluded too (reachability closure) *)
  let box = Builder.malloc b (Struct "Box") in
  let inner = Builder.malloc b i64 in
  Builder.store b (Ptr i64) inner (Builder.gep_field b box 0);
  let addr = Builder.ptr_to_int b box in
  let box2 = Builder.int_to_ptr b (Ptr (Struct "Box")) addr in
  let inner2 = Builder.load b (Ptr i64) (Builder.gep_field b box2 0) in
  Builder.store b i64 (Builder.i64c 3) inner2;
  (* a separate clean object stays included *)
  let clean = Builder.malloc b i64 in
  Builder.store b i64 (Builder.i64c 4) clean;
  Builder.ret b (Some (Builder.i32c 0));
  let scope = Scope.compute p in
  let ex r = Scope.excluded_reg scope "main" (reg_of_operand r) in
  Alcotest.(check bool) "box2 excluded" true (ex box2);
  Alcotest.(check bool) "inner (reached from excluded) excluded" true (ex inner);
  Alcotest.(check bool) "clean object included" false (ex clean);
  Alcotest.(check bool) "exclusion ratio in (0,1)" true
    (let r = Scope.exclusion_ratio scope "main" in
     r > 0.0 && r < 1.0)

(* ---- end-to-end: DSA + MDS transforms programs MDS alone rejects ---- *)

let test_int_to_ptr_program_runs_under_dsa () =
  let p = Progs.int_to_ptr_prog () in
  (* plain MDS rejects it *)
  Alcotest.(check bool) "MDS alone rejects" true
    (try
       ignore (Dpmr.transform { Config.default with Config.mode = Config.Mds } p);
       false
     with Dpmr.Unsupported _ -> true);
  (* DSA scope expansion accepts and preserves semantics *)
  let cfg = { Config.default with Config.mode = Config.Mds } in
  let tp = Dpmr_dsa.Dsa_dpmr.transform cfg p in
  Verifier.check_prog tp;
  let golden = Dpmr.run_plain p in
  let vm = Dpmr.vm_dpmr ~mode:Config.Mds tp in
  let r = Dpmr_vm.Vm.run vm in
  Alcotest.(check string) "output preserved" golden.Outcome.output r.Outcome.output;
  Alcotest.(check bool) "normal" true (r.Outcome.outcome = Outcome.Normal)

let test_dsa_keeps_detection_on_included_memory () =
  (* the overflow program has no unknown behaviour: DSA excludes nothing
     relevant and detection still fires *)
  let p = Progs.overflow ~limit:16 () in
  let cfg = { Config.default with Config.mode = Config.Mds } in
  let tp = Dpmr_dsa.Dsa_dpmr.transform cfg p in
  Verifier.check_prog tp;
  let vm = Dpmr.vm_dpmr ~mode:Config.Mds tp in
  let r = Dpmr_vm.Vm.run vm in
  Alcotest.(check bool)
    ("still detected: got " ^ Outcome.to_string r.Outcome.outcome)
    true (Outcome.is_dpmr_detect r)

let test_dsa_mixed_program () =
  (* one object accessed through a manufactured pointer (excluded, no
     checks) and one replicated normally; semantics preserved *)
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let a = Builder.malloc b i64 in
  Builder.store b i64 (Builder.i64c 11) a;
  let addr = Builder.ptr_to_int b a in
  let a2 = Builder.int_to_ptr b (Ptr i64) addr in
  let v1 = Builder.load b i64 a2 in
  let c = Builder.malloc b i64 in
  Builder.store b i64 (Builder.i64c 31) c;
  let v2 = Builder.load b i64 c in
  Builder.call0 b (Direct "print_int") [ Builder.add b W64 v1 v2 ];
  Builder.ret b (Some (Builder.i32c 0));
  let cfg = { Config.default with Config.mode = Config.Mds } in
  let tp, scope = Dpmr_dsa.Dsa_dpmr.transform_with_scope cfg p in
  Verifier.check_prog tp;
  ignore scope;
  let vm = Dpmr.vm_dpmr ~mode:Config.Mds tp in
  let r = Dpmr_vm.Vm.run vm in
  Alcotest.(check string) "42" "42" r.Outcome.output;
  Alcotest.(check bool) "normal" true (r.Outcome.outcome = Outcome.Normal)

let test_sds_with_dsa_rejected () =
  Alcotest.(check bool) "SDS+DSA invalid" true
    (try
       ignore (Dpmr_dsa.Dsa_dpmr.transform Config.default (Progs.linked_list ()));
       false
     with Invalid_argument _ -> true)

(* §5.4: external functions with support libraries do not contaminate the
   analysis — memory passed to a wrapped extern stays analyzable (merely
   incomplete), so it is NOT excluded from replication. *)
let test_externs_do_not_exclude () =
  let p = Progs.fresh () in
  let b = Builder.create p ~name:"main" ~params:[] ~ret:i32 () in
  let buf = Builder.malloc b ~count:(Builder.i64c 16) i8 in
  let buf8 = Builder.bitcast b (Ptr (arr i8 0)) buf in
  let n = Builder.call1 b (Direct "strlen") [ buf8 ] in
  Builder.call0 b (Direct "print_int") [ n ];
  Builder.ret b (Some (Builder.i32c 0));
  let scope = Scope.compute p in
  Alcotest.(check bool) "buffer passed to strlen not excluded" false
    (Scope.excluded_reg scope "main" (reg_of_operand buf))

let test_graph_pp_smoke () =
  let p = Progs.linked_list () in
  let summary = Interproc.analyze p in
  let res = Hashtbl.find summary.Interproc.results "getSum" in
  let s = Fmt.str "%a" Graph.pp res.Local.graph in
  Alcotest.(check bool) "prints nodes" true (String.length s > 20)

let test_workloads_analyze () =
  (* DSA runs over every benchmark workload without exploding, and the
     clean workloads exclude nothing *)
  List.iter
    (fun (e : Dpmr_workloads.Workloads.entry) ->
      let p = e.Dpmr_workloads.Workloads.build () in
      let scope = Scope.compute p in
      let r = Scope.exclusion_ratio scope "main" in
      Alcotest.(check bool)
        (e.Dpmr_workloads.Workloads.name ^ " has no exclusions")
        true (r = 0.0))
    Dpmr_workloads.Workloads.all

let suites =
  [
    ( "dsa.local",
      [
        Alcotest.test_case "allocation flags" `Quick test_alloc_flags;
        Alcotest.test_case "Fig 5.1: P and 2 flags" `Quick test_ptr_int_flags;
        Alcotest.test_case "collapse on inhomogeneous use" `Quick
          test_collapse_on_inhomogeneous_use;
        Alcotest.test_case "field sensitivity retained" `Quick
          test_homogeneous_use_stays_field_sensitive;
        Alcotest.test_case "points-to through memory" `Quick test_points_to_through_memory;
        Alcotest.test_case "completeness marking" `Quick test_completeness;
      ] );
    ( "dsa.interproc",
      [
        Alcotest.test_case "bottom-up inlining" `Quick test_bottom_up_inlining;
        Alcotest.test_case "top-down flag propagation" `Quick
          test_top_down_flag_propagation;
      ] );
    ( "dsa.scope",
      [
        Alcotest.test_case "markX closure" `Quick test_exclusion_closure;
        Alcotest.test_case "int-to-ptr program runs" `Quick
          test_int_to_ptr_program_runs_under_dsa;
        Alcotest.test_case "detection kept on included memory" `Quick
          test_dsa_keeps_detection_on_included_memory;
        Alcotest.test_case "mixed program preserved" `Quick test_dsa_mixed_program;
        Alcotest.test_case "SDS+DSA rejected" `Quick test_sds_with_dsa_rejected;
        Alcotest.test_case "externs do not exclude (5.4)" `Quick
          test_externs_do_not_exclude;
        Alcotest.test_case "DS graph printing" `Quick test_graph_pp_smoke;
        Alcotest.test_case "workloads analyze cleanly" `Quick test_workloads_analyze;
      ] );
  ]
