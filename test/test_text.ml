(* Textual IR round-trip tests: parse (emit p) behaves exactly like p for
   every workload, micro workload and random program — outputs, exit
   classification and cost all equal. *)

open Dpmr_ir
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

let behaviour p =
  let r = Dpmr.run_plain p in
  (Outcome.to_string r.Outcome.outcome, r.Outcome.output, r.Outcome.cost)

let check_roundtrip name p =
  let text = Text.emit p in
  let p2 =
    try Text.parse text
    with Text.Parse_error (line, msg) ->
      Alcotest.failf "%s: parse error line %d: %s" name line msg
  in
  Verifier.check_prog p2;
  let o1, out1, c1 = behaviour p and o2, out2, c2 = behaviour p2 in
  Alcotest.(check string) (name ^ " outcome") o1 o2;
  Alcotest.(check string) (name ^ " output") out1 out2;
  Alcotest.(check int64) (name ^ " cost") c1 c2

let test_workloads_roundtrip () =
  List.iter
    (fun (e : Dpmr_workloads.Workloads.entry) ->
      check_roundtrip e.Dpmr_workloads.Workloads.name
        (e.Dpmr_workloads.Workloads.build ()))
    Dpmr_workloads.Workloads.all

let test_micro_roundtrip () =
  List.iter (fun (name, build) -> check_roundtrip name (build ()))
    Dpmr_workloads.Micro.all

let test_transformed_roundtrip () =
  (* even DPMR-instrumented programs (with generated shadow structs)
     survive serialization *)
  let p = Dpmr_testprogs.Progs.linked_list () in
  let tp = Dpmr.transform Dpmr_core.Config.default p in
  let text = Text.emit tp in
  let tp2 = Text.parse text in
  Verifier.check_prog tp2;
  let run q =
    let vm = Dpmr.vm_dpmr ~mode:Dpmr_core.Config.Sds q in
    Dpmr_vm.Vm.run vm
  in
  let r1 = run tp and r2 = run tp2 in
  Alcotest.(check string) "output" r1.Outcome.output r2.Outcome.output;
  Alcotest.(check int64) "cost" r1.Outcome.cost r2.Outcome.cost

let test_double_roundtrip_stable () =
  let p = Dpmr_testprogs.Progs.qsort_prog () in
  let t1 = Text.emit p in
  let t2 = Text.emit (Text.parse t1) in
  Alcotest.(check string) "emit is a fixpoint after one round" t1 t2

let test_parse_errors () =
  let bad =
    [
      ("global g :", "truncated global");
      ("func @f( : i32 {", "bad param");
      ("struct S { badtype }", "unknown type");
      ("wibble", "unknown top-level");
    ]
  in
  List.iter
    (fun (src, what) ->
      Alcotest.(check bool) what true
        (try
           ignore (Text.parse src);
           false
         with Text.Parse_error _ -> true))
    bad

let test_comments_and_blank_lines () =
  let src =
    "# a comment\n\nglobal g : i64 = 7\n\nfunc @main() : i32 {\nentry:\n  \
     %v : i64 = load i64, @g  # trailing comment\n  call print_int(%v)\n  ret 0:i32\n}\n"
  in
  let p = Text.parse src in
  (* declare the externs the snippet relies on before verifying *)
  Dpmr_vm.Extern.declare_signatures p;
  Verifier.check_prog p;
  let r = Dpmr.run_plain p in
  Alcotest.(check string) "runs" "7" r.Outcome.output

let test_handwritten_program () =
  let src =
    {|# hand-written textual IR
struct Node { i64, %Node* }
extern print_int : void (i64)
global seed : i64 = 3

func @sum(%n : %Node*) : i64 {
entry:
  %acc : i64* = alloca i64, 1:i64
  store i64 0:i64, %acc
  %cur : %Node** = alloca %Node*, 1:i64
  store %Node* %n, %cur
  br head
head:
  %c : %Node* = load %Node*, %cur
  %ci : i64 = ptrtoint %c
  %nz : i8 = icmp ne i64 %ci, 0:i64
  cbr %nz, body, done
body:
  %vp : i64* = gepf %Node, %c, 0
  %v : i64 = load i64, %vp
  %a : i64 = load i64, %acc
  %a2 : i64 = add i64 %a, %v
  store i64 %a2, %acc
  %np : %Node** = gepf %Node, %c, 1
  %nx : %Node* = load %Node*, %np
  store %Node* %nx, %cur
  br head
done:
  %r : i64 = load i64, %acc
  ret %r
}

func @main() : i32 {
entry:
  %a : %Node* = malloc %Node, 1:i64
  %b : %Node* = malloc %Node, 1:i64
  %ap : i64* = gepf %Node, %a, 0
  store i64 40:i64, %ap
  %anp : %Node** = gepf %Node, %a, 1
  store %Node* %b, %anp
  %bp : i64* = gepf %Node, %b, 0
  store i64 2:i64, %bp
  %bnp : %Node** = gepf %Node, %b, 1
  store %Node* null %Node, %bnp
  %s : i64 = call sum(%a)
  call print_int(%s)
  ret 0:i32
}
|}
  in
  let p = Text.parse src in
  Verifier.check_prog p;
  let r = Dpmr.run_plain p in
  Alcotest.(check string) "hand-written program runs" "42" r.Outcome.output;
  (* and it transforms *)
  let r2 = Dpmr.run_dpmr Dpmr_core.Config.default p in
  Alcotest.(check string) "under DPMR too" "42" r2.Outcome.output

(* qcheck: random programs round-trip *)
let prop_random_roundtrip =
  QCheck.Test.make ~name:"random programs round-trip through text" ~count:40
    Test_differential.arb_ops
    (fun ops ->
      let p = Test_differential.build_prog ops in
      let p2 = Text.parse (Text.emit p) in
      behaviour p = behaviour p2)

(* qcheck: the parsed program verifies and re-emits to the identical
   text — parse . emit is a verifier-preserving fixpoint, so golden
   files and cache keys derived from emitted text are stable. *)
let prop_random_emit_fixpoint =
  QCheck.Test.make ~name:"random programs: emit . parse . emit is a fixpoint"
    ~count:40 Test_differential.arb_ops
    (fun ops ->
      let p = Test_differential.build_prog ops in
      let text = Text.emit p in
      let p2 = Text.parse text in
      Verifier.check_prog p2;
      String.equal text (Text.emit p2))

let suites =
  [
    ( "text",
      [
        Alcotest.test_case "workloads round-trip" `Quick test_workloads_roundtrip;
        Alcotest.test_case "micro workloads round-trip" `Quick test_micro_roundtrip;
        Alcotest.test_case "transformed programs round-trip" `Quick
          test_transformed_roundtrip;
        Alcotest.test_case "emit is stable" `Quick test_double_roundtrip_stable;
        Alcotest.test_case "parse errors reported" `Quick test_parse_errors;
        Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
        Alcotest.test_case "hand-written program" `Quick test_handwritten_program;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_random_roundtrip; prop_random_emit_fixpoint ] );
  ]
