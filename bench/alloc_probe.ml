(* Per-instruction-class allocation probe: tight IR loops of one
   instruction class, run through the lowered engine and the compiled
   tier, bytes allocated per executed instruction printed for each.

   The compiled column is asserted ~0: once a function's closures are
   built (cached on the shared lowered program), the steady-state loop
   must be allocation-free — operand shapes are pre-bound, block and
   terminator closures return immediate ints, and the frame is the same
   unboxed lframe the lowered engine uses.  The simulated cost must also
   agree across tiers exactly. *)
open Dpmr_ir
open Types
open Inst
module B = Builder
module Vm = Dpmr_vm.Vm
module Dpmr = Dpmr_core.Dpmr
module Mem = Dpmr_memsim.Mem

let n = 1_000_000

let mk_prog fill =
  let p = Prog.create () in
  let b = B.create p ~name:"main" ~params:[] ~ret:(Int W32) () in
  fill b;
  B.ret b (Some (B.i32c 0));
  p

let with_tier mode f =
  let old = Vm.tier_mode () in
  Vm.set_tier_mode mode;
  Fun.protect ~finally:(fun () -> Vm.set_tier_mode old) f

(* steady-state bytes/iteration: one warmup run (which also compiles,
   under the compiled tier — the closures cache on [lowered]), then one
   measured run *)
let steady_state lowered p =
  let r0 = Dpmr.run_plain ~lowered p in
  assert (r0.Dpmr_vm.Outcome.outcome = Dpmr_vm.Outcome.Normal);
  let a0 = Gc.allocated_bytes () in
  let _ = Dpmr.run_plain ~lowered p in
  let a1 = Gc.allocated_bytes () in
  ((a1 -. a0) /. float_of_int n, r0.Dpmr_vm.Outcome.cost)

let probe label fill =
  let p = mk_prog fill in
  let lowered = Dpmr_vm.Lower.lower_prog p in
  let low, cost = with_tier Vm.Tier_lowered (fun () -> steady_state lowered p) in
  let comp, cost' =
    with_tier Vm.Tier_compiled (fun () -> steady_state lowered p)
  in
  Printf.printf "%-20s lowered %8.1f B/loop-iter   compiled %8.1f B/loop-iter  (cost %Ld)\n%!"
    label low comp cost;
  assert (Int64.equal cost cost');
  (* allocation-free modulo per-run VM setup amortized over [n] iters *)
  assert (comp < 0.5)

let () =
  probe "alu add" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          ignore (B.binop b Add W64 i (B.i64c 7))));
  probe "icmp" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          ignore (B.icmp b Islt W64 i (B.i64c 5))));
  probe "load+store" (fun b ->
      let buf = B.malloc b ~name:"buf" ~count:(B.i64c 8) (Int W64) in
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let v = B.load b (Int W64) buf in
          B.store b (Int W64) (B.binop b Add W64 v i) buf));
  probe "gep+mov" (fun b ->
      let buf = B.malloc b ~name:"buf" ~count:(B.i64c 8) (Int W64) in
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          ignore (B.gep_index b buf i)));
  probe "fbinop" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let f = B.i_to_f b W64 i in
          ignore (B.fbinop b Fmul f (B.fc 1.5))));
  probe "empty loop" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun _ -> ()))

(* Copy-on-write fork probe: thawing a fork from a frozen image and
   dirtying [k] pages must allocate O(k) page copies (plus a page-table
   copy), never O(heap) — the property snapshot/fork campaign execution
   depends on to make per-site forks cheaper than warmup replay. *)
let () =
  let pages = 4096 and dirty = 8 in
  let base = Mem.heap_base in
  let page i = Int64.add base (Int64.of_int (i * Mem.page_size)) in
  let m = Mem.create () in
  Mem.map_range m base (pages * Mem.page_size) Mem.Fill_zero;
  (* touch every page so the frozen image really materializes [pages] *)
  for i = 0 to pages - 1 do
    Mem.write_u8 m (page i) 1
  done;
  let frozen = Mem.freeze m in
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let fork = Mem.thaw frozen in
  for i = 0 to dirty - 1 do
    Mem.write_u8 fork (page (i * (pages / dirty))) 2
  done;
  let a1 = Gc.allocated_bytes () in
  let bytes = a1 -. a0 in
  let heap_bytes = pages * Mem.page_size in
  (* generous bound: 8x the dirtied payload plus 16 B/page of table copy
     — still 32x below the O(heap) a deep copy would cost *)
  let bound = (dirty * Mem.page_size * 8) + (pages * 16) in
  Printf.printf "cow fork+%d dirty     %8.1f KB  (heap %d KB, bound %d KB)\n%!" dirty
    (bytes /. 1024.) (heap_bytes / 1024) (bound / 1024);
  assert (bytes < float_of_int bound)
