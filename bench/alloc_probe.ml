(* Per-instruction-class allocation probe: tight IR loops of one
   instruction class, run through the lowered engine, bytes allocated per
   executed instruction printed for each. *)
open Dpmr_ir
open Types
open Inst
module B = Builder
module Vm = Dpmr_vm.Vm
module Dpmr = Dpmr_core.Dpmr

let n = 1_000_000

let mk_prog fill =
  let p = Prog.create () in
  let b = B.create p ~name:"main" ~params:[] ~ret:(Int W32) () in
  fill b;
  B.ret b (Some (B.i32c 0));
  p

let probe label fill =
  let p = mk_prog fill in
  let r0 = Dpmr.run_plain p in
  assert (r0.Dpmr_vm.Outcome.outcome = Dpmr_vm.Outcome.Normal);
  let a0 = Gc.allocated_bytes () in
  let _ = Dpmr.run_plain p in
  let a1 = Gc.allocated_bytes () in
  Printf.printf "%-20s %8.1f B/loop-iter  (cost %Ld)\n%!" label
    ((a1 -. a0) /. float_of_int n) r0.Dpmr_vm.Outcome.cost

let () =
  probe "alu add" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          ignore (B.binop b Add W64 i (B.i64c 7))));
  probe "icmp" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          ignore (B.icmp b Islt W64 i (B.i64c 5))));
  probe "load+store" (fun b ->
      let buf = B.malloc b ~name:"buf" ~count:(B.i64c 8) (Int W64) in
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let v = B.load b (Int W64) buf in
          B.store b (Int W64) (B.binop b Add W64 v i) buf));
  probe "gep+mov" (fun b ->
      let buf = B.malloc b ~name:"buf" ~count:(B.i64c 8) (Int W64) in
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          ignore (B.gep_index b buf i)));
  probe "fbinop" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let f = B.i_to_f b W64 i in
          ignore (B.fbinop b Fmul f (B.fc 1.5))));
  probe "empty loop" (fun b ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun _ -> ()))
