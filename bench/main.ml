(* Benchmark harness.

   Two halves:

   1. Regenerate every evaluation table and figure of the paper (Chapters
      3 and 4) by running the actual experiments — this prints the same
      rows/series the paper reports, in cost-model units.

   2. A Bechamel microbenchmark per table/figure measuring the host-side
      cost of the representative operation behind it (transforming a
      workload, running one instrumented variant, one fault-injection
      experiment, ...), so regressions in the tooling itself are visible.

   Usage:
     dune exec bench/main.exe              # both halves
     dune exec bench/main.exe -- figures   # paper tables/figures only
     dune exec bench/main.exe -- micro     # bechamel microbenches only

   The figures half goes through the parallel experiment engine
   (lib/engine): worker domains + the content-addressed result cache,
   with the engine summary printed to stderr at the end. *)

open Bechamel
open Toolkit
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Workloads = Dpmr_workloads.Workloads
module Figures = Dpmr_harness.Figures
module Engine = Dpmr_engine.Engine
module Job = Dpmr_engine.Job

(* ------------------------------------------------------------------ *)
(* Half 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  let engine = Engine.create () in
  let ctx = Figures.create ~engine () in
  Figures.run_all ctx;
  Engine.print_summary engine

(* ------------------------------------------------------------------ *)
(* Half 2: bechamel microbenches, one per table/figure                 *)
(* ------------------------------------------------------------------ *)

let sds = Config.default
let mds = { Config.default with Config.mode = Config.Mds }

(* shared, built once *)
let equake = (Workloads.find "equake").Workloads.build ()
let mcf = (Workloads.find "mcf").Workloads.build ()

let run_cfg cfg prog () = ignore (Dpmr.run_dpmr cfg prog)
let transform_only cfg prog () = ignore (Dpmr.transform cfg prog)

let one_injection cfg kind prog () =
  let wk = Experiment.workload "bench" (fun () -> prog) in
  let e = Experiment.make wk in
  match Experiment.sites e kind with
  | site :: _ -> ignore (Experiment.run_variant e (Experiment.Fi_dpmr (cfg, kind, site)))
  | [] -> ()

let div_cfg mode d = { Config.default with Config.mode; diversity = d }
let pol_cfg mode p =
  { Config.default with Config.mode; diversity = Config.Rearrange_heap; policy = p }

(* One Test.make per table/figure: the representative operation whose
   cost dominates regenerating it. *)
let micro_tests =
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "table-3.1/transform-sds" (transform_only sds equake);
    t "table-3.2/transform-mds" (transform_only mds equake);
    t "fig-3.6/resize-injection-sds" (one_injection sds (Inject.Heap_array_resize 50) equake);
    t "fig-3.7/free-injection-sds" (one_injection sds Inject.Immediate_free equake);
    t "fig-3.8/resize-injection-mcf" (one_injection sds (Inject.Heap_array_resize 50) mcf);
    t "fig-3.9/free-injection-mcf" (one_injection sds Inject.Immediate_free mcf);
    t "fig-3.10/run-no-diversity" (run_cfg (div_cfg Config.Sds Config.No_diversity) equake);
    t "table-3.3/run-rearrange" (run_cfg (div_cfg Config.Sds Config.Rearrange_heap) equake);
    t "fig-3.11/run-pad-1024" (run_cfg (div_cfg Config.Sds (Config.Pad_malloc 1024)) equake);
    t "fig-3.12/run-zero-before-free" (run_cfg (div_cfg Config.Sds Config.Zero_before_free) equake);
    t "fig-3.13/run-temporal-12" (run_cfg (pol_cfg Config.Sds (Config.Temporal Config.temporal_mask_1_2)) equake);
    t "fig-3.14/run-static-10" (run_cfg (pol_cfg Config.Sds (Config.Static 0.1)) equake);
    t "fig-3.15/run-all-loads" (run_cfg (pol_cfg Config.Sds Config.All_loads) equake);
    t "fig-3.16/periodicity" (fun () -> ignore (Dpmr_harness.Periodicity.measure ()));
    t "table-3.4/run-static-90" (run_cfg (pol_cfg Config.Sds (Config.Static 0.9)) equake);
    t "fig-4.3/run-mds-no-diversity" (run_cfg (div_cfg Config.Mds Config.No_diversity) equake);
    t "fig-4.4/run-mds-static-50" (run_cfg (pol_cfg Config.Mds (Config.Static 0.5)) equake);
    t "fig-4.5/run-mds-pad-256" (run_cfg (div_cfg Config.Mds (Config.Pad_malloc 256)) mcf);
    t "fig-4.6/run-mds-temporal-78" (run_cfg (pol_cfg Config.Mds (Config.Temporal Config.temporal_mask_7_8)) mcf);
    t "fig-4.7/resize-injection-mds" (one_injection mds (Inject.Heap_array_resize 50) equake);
    t "fig-4.8/free-injection-mds" (one_injection mds Inject.Immediate_free equake);
    t "fig-4.9/resize-injection-mds-mcf" (one_injection mds (Inject.Heap_array_resize 50) mcf);
    t "fig-4.10/free-injection-mds-mcf" (one_injection mds Inject.Immediate_free mcf);
    t "fig-4.11/run-mds-rearrange" (run_cfg (div_cfg Config.Mds Config.Rearrange_heap) equake);
    t "fig-4.12/run-mds-rearrange-mcf" (run_cfg (div_cfg Config.Mds Config.Rearrange_heap) mcf);
    t "fig-4.13/golden-equake" (fun () -> ignore (Dpmr.run_plain equake));
    t "fig-4.14/golden-mcf" (fun () -> ignore (Dpmr.run_plain mcf));
    t "table-4.5/dsa-scope-equake" (fun () -> ignore (Dpmr_dsa.Scope.compute equake));
    t "table-4.6/dsa-transform-mcf" (fun () -> ignore (Dpmr_dsa.Dsa_dpmr.transform mds mcf));
    (* the lowered threaded-code engine vs the reference tree-walker,
       plus the one-time lowering cost itself (amortized across runs) *)
    t "vm/lower-mcf" (fun () -> ignore (Dpmr_vm.Lower.lower_prog mcf));
    (t "vm/run-lowered-mcf"
       (let lowered = Dpmr_vm.Lower.lower_prog mcf in
        fun () -> ignore (Dpmr.run_plain ~lowered mcf)));
    (t "vm/run-reference-mcf"
       (fun () ->
         let vm = Dpmr.vm_plain mcf in
         ignore (Dpmr_vm.Vm.run_reference vm)));
    (t "engine/job-hash"
       (let e = Experiment.make (Experiment.workload "equake" (fun () -> (Workloads.find "equake").Workloads.build ())) in
        let spec = Job.make e ~workload:"equake" ~scale:1 ~run_seed:42L (Experiment.Nofi_dpmr sds) in
        fun () -> ignore (Job.hash spec)));
  ]

let run_micro () =
  print_endline "\n=== Bechamel microbenchmarks (host-side tool cost) ===\n";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 54 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock m in
          match Analyze.OLS.estimates est with
          | Some (e :: _) ->
              let name = Test.Elt.name elt in
              if e > 1e9 then Printf.printf "%-36s %11.2f s\n" name (e /. 1e9)
              else if e > 1e6 then Printf.printf "%-36s %11.2f ms\n" name (e /. 1e6)
              else Printf.printf "%-36s %11.2f us\n" name (e /. 1e3)
          | _ -> Printf.printf "%-36s %14s\n" (Test.Elt.name elt) "n/a")
        (Test.elements test))
    micro_tests

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "both" in
  if what = "figures" || what = "both" then run_figures ();
  if what = "micro" || what = "both" then run_micro ()
