(* Benchmark harness.

   Two halves:

   1. Regenerate every evaluation table and figure of the paper (Chapters
      3 and 4) by running the actual experiments — this prints the same
      rows/series the paper reports, in cost-model units.

   2. A Bechamel microbenchmark per table/figure measuring the host-side
      cost of the representative operation behind it (transforming a
      workload, running one instrumented variant, one fault-injection
      experiment, ...), so regressions in the tooling itself are visible.

   Usage:
     dune exec bench/main.exe              # both halves
     dune exec bench/main.exe -- figures   # paper tables/figures only
     dune exec bench/main.exe -- micro     # bechamel microbenches only

   A third mode compares two shell commands A/B-style:

     dune exec bench/main.exe -- --compare [--rounds N] [--json FILE] \
       'CMD_BEFORE' 'CMD_AFTER'

   Each round runs both commands back-to-back (paired, so machine-load
   drift hits both sides of a pair equally) and the report is the ratio
   of the two per-command wall-time medians.

   The figures half goes through the parallel experiment engine
   (lib/engine): worker domains + the content-addressed result cache,
   with the engine summary printed to stderr at the end. *)

open Bechamel
open Toolkit
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Workloads = Dpmr_workloads.Workloads
module Figures = Dpmr_harness.Figures
module Engine = Dpmr_engine.Engine
module Job = Dpmr_engine.Job

(* ------------------------------------------------------------------ *)
(* Half 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  let engine = Engine.create () in
  let ctx = Figures.create ~engine () in
  Figures.run_all ctx;
  Engine.print_summary engine

(* ------------------------------------------------------------------ *)
(* Half 2: bechamel microbenches, one per table/figure                 *)
(* ------------------------------------------------------------------ *)

let sds = Config.default
let mds = { Config.default with Config.mode = Config.Mds }

(* shared, built once *)
let equake = (Workloads.find "equake").Workloads.build ()
let mcf = (Workloads.find "mcf").Workloads.build ()

let run_cfg cfg prog () = ignore (Dpmr.run_dpmr cfg prog)
let transform_only cfg prog () = ignore (Dpmr.transform cfg prog)

let one_injection cfg kind prog () =
  let wk = Experiment.workload "bench" (fun () -> prog) in
  let e = Experiment.make wk in
  match Experiment.sites e kind with
  | site :: _ -> ignore (Experiment.run_variant e (Experiment.Fi_dpmr (cfg, kind, site)))
  | [] -> ()

let div_cfg mode d = { Config.default with Config.mode; diversity = d }
let pol_cfg mode p =
  { Config.default with Config.mode; diversity = Config.Rearrange_heap; policy = p }

(* One Test.make per table/figure: the representative operation whose
   cost dominates regenerating it. *)
let micro_tests =
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "table-3.1/transform-sds" (transform_only sds equake);
    t "table-3.2/transform-mds" (transform_only mds equake);
    t "fig-3.6/resize-injection-sds" (one_injection sds (Inject.Heap_array_resize 50) equake);
    t "fig-3.7/free-injection-sds" (one_injection sds Inject.Immediate_free equake);
    t "fig-3.8/resize-injection-mcf" (one_injection sds (Inject.Heap_array_resize 50) mcf);
    t "fig-3.9/free-injection-mcf" (one_injection sds Inject.Immediate_free mcf);
    t "fig-3.10/run-no-diversity" (run_cfg (div_cfg Config.Sds Config.No_diversity) equake);
    t "table-3.3/run-rearrange" (run_cfg (div_cfg Config.Sds Config.Rearrange_heap) equake);
    t "fig-3.11/run-pad-1024" (run_cfg (div_cfg Config.Sds (Config.Pad_malloc 1024)) equake);
    t "fig-3.12/run-zero-before-free" (run_cfg (div_cfg Config.Sds Config.Zero_before_free) equake);
    t "fig-3.13/run-temporal-12" (run_cfg (pol_cfg Config.Sds (Config.Temporal Config.temporal_mask_1_2)) equake);
    t "fig-3.14/run-static-10" (run_cfg (pol_cfg Config.Sds (Config.Static 0.1)) equake);
    t "fig-3.15/run-all-loads" (run_cfg (pol_cfg Config.Sds Config.All_loads) equake);
    t "fig-3.16/periodicity" (fun () -> ignore (Dpmr_harness.Periodicity.measure ()));
    t "table-3.4/run-static-90" (run_cfg (pol_cfg Config.Sds (Config.Static 0.9)) equake);
    t "fig-4.3/run-mds-no-diversity" (run_cfg (div_cfg Config.Mds Config.No_diversity) equake);
    t "fig-4.4/run-mds-static-50" (run_cfg (pol_cfg Config.Mds (Config.Static 0.5)) equake);
    t "fig-4.5/run-mds-pad-256" (run_cfg (div_cfg Config.Mds (Config.Pad_malloc 256)) mcf);
    t "fig-4.6/run-mds-temporal-78" (run_cfg (pol_cfg Config.Mds (Config.Temporal Config.temporal_mask_7_8)) mcf);
    t "fig-4.7/resize-injection-mds" (one_injection mds (Inject.Heap_array_resize 50) equake);
    t "fig-4.8/free-injection-mds" (one_injection mds Inject.Immediate_free equake);
    t "fig-4.9/resize-injection-mds-mcf" (one_injection mds (Inject.Heap_array_resize 50) mcf);
    t "fig-4.10/free-injection-mds-mcf" (one_injection mds Inject.Immediate_free mcf);
    t "fig-4.11/run-mds-rearrange" (run_cfg (div_cfg Config.Mds Config.Rearrange_heap) equake);
    t "fig-4.12/run-mds-rearrange-mcf" (run_cfg (div_cfg Config.Mds Config.Rearrange_heap) mcf);
    t "fig-4.13/golden-equake" (fun () -> ignore (Dpmr.run_plain equake));
    t "fig-4.14/golden-mcf" (fun () -> ignore (Dpmr.run_plain mcf));
    t "table-4.5/dsa-scope-equake" (fun () -> ignore (Dpmr_dsa.Scope.compute equake));
    t "table-4.6/dsa-transform-mcf" (fun () -> ignore (Dpmr_dsa.Dsa_dpmr.transform mds mcf));
    (* the lowered threaded-code engine vs the reference tree-walker,
       plus the one-time lowering cost itself (amortized across runs) *)
    t "vm/lower-mcf" (fun () -> ignore (Dpmr_vm.Lower.lower_prog mcf));
    (t "vm/run-lowered-mcf"
       (let lowered = Dpmr_vm.Lower.lower_prog mcf in
        fun () -> ignore (Dpmr.run_plain ~lowered mcf)));
    (t "vm/run-reference-mcf"
       (fun () ->
         let vm = Dpmr.vm_plain mcf in
         ignore (Dpmr_vm.Vm.run_reference vm)));
    (t "engine/job-hash"
       (let e = Experiment.make (Experiment.workload "equake" (fun () -> (Workloads.find "equake").Workloads.build ())) in
        let spec = Job.make e ~workload:"equake" ~scale:1 ~run_seed:42L (Experiment.Nofi_dpmr sds) in
        fun () -> ignore (Job.hash spec)));
  ]

let run_micro () =
  print_endline "\n=== Bechamel microbenchmarks (host-side tool cost) ===\n";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 54 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock m in
          match Analyze.OLS.estimates est with
          | Some (e :: _) ->
              let name = Test.Elt.name elt in
              if e > 1e9 then Printf.printf "%-36s %11.2f s\n" name (e /. 1e9)
              else if e > 1e6 then Printf.printf "%-36s %11.2f ms\n" name (e /. 1e6)
              else Printf.printf "%-36s %11.2f us\n" name (e /. 1e3)
          | _ -> Printf.printf "%-36s %14s\n" (Test.Elt.name elt) "n/a")
        (Test.elements test))
    micro_tests

(* ------------------------------------------------------------------ *)
(* Mode 3: paired A/B comparison of two shell commands                  *)
(* ------------------------------------------------------------------ *)

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then nan
  else if n land 1 = 1 then s.(n / 2)
  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.

let timed_command cmd =
  let t0 = Unix.gettimeofday () in
  let rc = Sys.command cmd in
  let wall = Unix.gettimeofday () -. t0 in
  if rc <> 0 then (
    Printf.eprintf "compare: command exited %d: %s\n%!" rc cmd;
    exit 1);
  wall

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let run_compare ~rounds ~json cmd_a cmd_b =
  let ta = Array.make rounds 0. and tb = Array.make rounds 0. in
  (* one untimed warmup pair so cold caches (file system, result cache
     state) are charged to neither side *)
  ignore (timed_command cmd_a);
  ignore (timed_command cmd_b);
  for i = 0 to rounds - 1 do
    ta.(i) <- timed_command cmd_a;
    tb.(i) <- timed_command cmd_b;
    Printf.printf "round %d/%d: A %.3fs  B %.3fs  (A/B %.2fx)\n%!" (i + 1)
      rounds ta.(i) tb.(i)
      (ta.(i) /. tb.(i))
  done;
  let ma = median ta and mb = median tb in
  let speedup = ma /. mb in
  Printf.printf "\nA: %s\nB: %s\n" cmd_a cmd_b;
  Printf.printf "median A %.3fs, median B %.3fs — B is %.2fx vs A\n" ma mb
    speedup;
  match json with
  | None -> ()
  | Some file ->
      let b = Buffer.create 512 in
      let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      let floats a =
        String.concat ", "
          (List.map (Printf.sprintf "%.4f") (Array.to_list a))
      in
      add "{\n";
      add "  \"schema\": \"dpmr-bench-compare/1\",\n";
      add "  \"cmd_before\": \"%s\",\n" (json_escape cmd_a);
      add "  \"cmd_after\": \"%s\",\n" (json_escape cmd_b);
      add "  \"rounds\": %d,\n" rounds;
      add "  \"before_seconds\": [%s],\n" (floats ta);
      add "  \"after_seconds\": [%s],\n" (floats tb);
      add "  \"median_before_seconds\": %.4f,\n" ma;
      add "  \"median_after_seconds\": %.4f,\n" mb;
      add "  \"speedup\": %.3f\n" speedup;
      add "}\n";
      let oc = open_out file in
      output_string oc (Buffer.contents b);
      close_out oc;
      Printf.printf "wrote %s\n" file

let compare_main args =
  let rounds = ref 5 and json = ref None and cmds = ref [] in
  let rec parse = function
    | "--rounds" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> rounds := v
        | _ ->
            Printf.eprintf "compare: bad --rounds %S\n" n;
            exit 2);
        parse rest
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | cmd :: rest ->
        cmds := cmd :: !cmds;
        parse rest
    | [] -> ()
  in
  parse args;
  match List.rev !cmds with
  | [ a; b ] -> run_compare ~rounds:!rounds ~json:!json a b
  | _ ->
      Printf.eprintf
        "usage: bench/main.exe --compare [--rounds N] [--json FILE] 'CMD_BEFORE' 'CMD_AFTER'\n";
      exit 2

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "both" in
  if what = "--compare" then
    compare_main (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)))
  else begin
    if what = "figures" || what = "both" then run_figures ();
    if what = "micro" || what = "both" then run_micro ()
  end
