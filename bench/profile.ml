(* Quick wall-clock breakdown of one fault-injection job: where does the
   ~10ms/job of `report all` go?  Not a bechamel bench — prints a plain
   table for eyeballing while optimising.

     dune exec bench/profile.exe *)

module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Workloads = Dpmr_workloads.Workloads
module Lower = Dpmr_vm.Lower
module Vm = Dpmr_vm.Vm

let time label n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-28s %8.3f ms/iter  (%d iters)\n%!" label
    (1000.0 *. dt /. float_of_int n)
    n

let () =
  List.iter
    (fun wname ->
      let entry = Workloads.find wname in
      let base = entry.Workloads.build ~scale:1 () in
      Printf.printf "== %s (scale 1) ==\n%!" wname;
      let cfg = Config.default in
      let tp = Dpmr.transform cfg base in
      let lowered = Lower.lower_prog tp in
      let base_lowered = Lower.lower_prog base in
      time "clone+inject" 50 (fun () ->
          match Inject.sites Inject.Immediate_free base with
          | s :: _ -> Inject.apply base Inject.Immediate_free s
          | [] -> base);
      time "transform (sds)" 50 (fun () -> Dpmr.transform cfg base);
      time "lower (transformed)" 50 (fun () -> Lower.lower_prog tp);
      time "vm create (lowered reuse)" 50 (fun () ->
          Vm.create ~lowered base_lowered.Lower.src);
      time "run golden" 20 (fun () -> Dpmr.run_plain ~lowered:base_lowered base);
      time "run dpmr (lowered reuse)" 20 (fun () ->
          Dpmr.run_transformed ~lowered ~mode:cfg.Config.mode tp);
      time "run dpmr (cold build)" 20 (fun () -> Dpmr.run_dpmr cfg base))
    [ "mcf"; "bzip2"; "equake"; "art" ]

let () =
  (* allocation volume of one dpmr run *)
  let entry = Workloads.find "mcf" in
  let base = entry.Workloads.build ~scale:1 () in
  let cfg = Config.default in
  let tp = Dpmr.transform cfg base in
  let lowered = Lower.lower_prog tp in
  let a0 = Gc.allocated_bytes () in
  let s0 = Gc.quick_stat () in
  let r = Dpmr.run_transformed ~lowered ~mode:cfg.Config.mode tp in
  let a1 = Gc.allocated_bytes () in
  let s1 = Gc.quick_stat () in
  Printf.printf "mcf dpmr run: cost=%Ld alloc=%.1f MB minor_cols=%d\n%!"
    r.Dpmr_vm.Outcome.cost
    ((a1 -. a0) /. 1048576.0)
    (s1.Gc.minor_collections - s0.Gc.minor_collections)
