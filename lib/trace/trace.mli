(** Pay-for-use execution tracing.

    A sink is a fixed-size binary ring buffer of 40-byte event slots.
    Installation follows the [Vm.set_poll_hook] pattern: the sink is
    domain-local and nullable; producers ([Vm], [Allocator], the DPMR
    wrappers) capture {!current} once at construction time, so a [None]
    sink costs one pointer test per would-be event and an installed sink
    costs a handful of unchecked [Bytes] writes — no OCaml-heap
    allocation per event in either case.  Strings (function names,
    detection labels, phase labels) are interned to small ids on first
    use; steady-state emission never allocates.

    When the ring wraps, the oldest events are overwritten and counted
    in {!dropped} — emission never fails and never grows memory. *)

type t

val create : ?capacity:int -> ?sample_every:int -> unit -> t
(** [capacity] is rounded up to a power of two (slots, default [65536];
    40 bytes each).  Block-retirement events are sampled one-in-
    [sample_every] (rounded up to a power of two, default [64]); all
    other events are always recorded. *)

val set_clock : t -> (unit -> int) -> unit
(** Cost clock used by producers that have no cost counter of their own
    (the allocator, phase markers).  [Vm.create] points it at the VM's
    [cost] field. *)

val capacity : t -> int
val emitted : t -> int
val dropped : t -> int

(** {1 Domain-local installation} *)

val current : unit -> t option
val set : t option -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Install the sink for the duration of [f] on this domain, restoring
    the previous sink afterwards (exception-safe). *)

(** {1 Emission} — hot paths; no allocation after name interning. *)

val intern : t -> string -> int
val sample_block : t -> cost:int -> fname:string -> blk:int -> unit
val emit_call_enter : t -> cost:int -> fname:string -> unit
val emit_call_exit : t -> cost:int -> fname:string -> unit
val emit_malloc : t -> addr:int64 -> requested:int -> granted:int -> live:int -> unit
val emit_free : t -> addr:int64 -> live:int -> unit
val emit_store : t -> cost:int -> addr:int64 -> bytes:int -> unit
val emit_write : t -> cost:int -> addr:int64 -> len:int -> unit
val emit_mirror : t -> cost:int -> app:int64 -> rep:int64 -> len:int -> unit

val emit_compare : t -> cost:int -> app:int64 -> rep:int64 -> len:int -> unit
(** A replica comparison that passed.  Wrapper-level byte comparisons
    carry both addresses and the length; inline load-checks compiled by
    the diversity transform carry [app = rep = -1L, len = 0] (the
    comparison site has no address at branch time). *)

val emit_detect : t -> cost:int -> what:string -> addr:int64 -> off:int -> unit
(** A detection firing.  [addr]/[off] name the first divergent app-space
    byte when known (wrapper byte comparisons); [-1L]/[-1] otherwise. *)

val emit_fi_mark : t -> cost:int -> unit
val emit_phase : t -> label:string -> unit

(** Tier-transition outcome at a hot-function boundary: the promotion
    check refused compilation (full-fidelity run), the function was
    promoted to the compiled tier, or compiled code deoptimized back
    into the lowered interpreter. *)
type transition = Tier_refused | Tier_promote | Tier_deopt

val emit_tier : t -> cost:int -> fname:string -> transition:transition -> unit

(** {1 Decoding} *)

type event =
  | Block of { fn : string; blk : int }
  | Call_enter of string
  | Call_exit of string
  | Malloc of { addr : int64; requested : int; granted : int; live : int }
  | Free of { addr : int64; live : int }
  | Store of { addr : int64; bytes : int }
  | Write of { addr : int64; len : int }
  | Mirror of { app : int64; rep : int64; len : int }
  | Compare of { app : int64; rep : int64; len : int }
  | Detect of { what : string; addr : int64; off : int }
  | Fi_mark
  | Phase of string
  | Tier of { fn : string; transition : transition }

type record = { cost : int; ev : event }

val snapshot : t -> record array
(** Chronological decode of the (up to [capacity]) most recent events.
    Safe to call repeatedly; does not consume the ring. *)

(** {1 Summaries} — mergeable across domains via [Telemetry]. *)

type summary = {
  s_emitted : int;
  s_dropped : int;
  s_detections : int;
  s_comparisons : int;
  s_fi_marks : int;
}

val summary : t -> summary
val zero_summary : summary
val add_summary : summary -> summary -> summary

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit
