(* Chrome trace-event ("Perfetto legacy JSON") export and cost profiles.

   Timestamps are VM cost-model units written into the [ts] microsecond
   field — absolute wall time is meaningless for a deterministic cost
   model, but relative spans render correctly in Perfetto / chrome://tracing.

   Span events come from Call_enter/Call_exit pairs; detections,
   injection marks and phases become instant events; the live-heap
   counter track is driven by Malloc/Free events. *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let event b ~first ~name ~cat ~ph ~ts ~pid ~tid args =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b "  {\"name\":\"";
  escape b name;
  Buffer.add_string b (Printf.sprintf "\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d" cat ph ts pid tid);
  (match args with
  | [] -> ()
  | kvs ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
        kvs;
      Buffer.add_char b '}');
  (match ph with "i" -> Buffer.add_string b ",\"s\":\"t\"" | _ -> ());
  Buffer.add_string b "}"

let chrome_json ?(pid = 1) ?(tid = 1) (records : Trace.record array) =
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  let ev = event b ~first ~pid ~tid in
  let last_cost = ref 0 in
  Array.iter
    (fun (r : Trace.record) ->
      last_cost := max !last_cost r.cost;
      match r.ev with
      | Trace.Call_enter fn -> ev ~name:fn ~cat:"vm" ~ph:"B" ~ts:r.cost []
      | Trace.Call_exit fn -> ev ~name:fn ~cat:"vm" ~ph:"E" ~ts:r.cost []
      | Trace.Malloc { live; _ } | Trace.Free { live; _ } ->
          ev ~name:"live_heap_bytes" ~cat:"mem" ~ph:"C" ~ts:r.cost
            [ ("bytes", string_of_int live) ]
      | Trace.Detect { what; addr; off } ->
          let args =
            [ ("what", Printf.sprintf "\"%s\"" (String.map (function '"' -> '\'' | c -> c) what)) ]
            @ (if Int64.equal addr (-1L) then []
               else [ ("addr", Printf.sprintf "\"0x%Lx\"" addr); ("off", string_of_int off) ])
          in
          ev ~name:"detect" ~cat:"dpmr" ~ph:"i" ~ts:r.cost args
      | Trace.Fi_mark -> ev ~name:"fi_mark" ~cat:"fi" ~ph:"i" ~ts:r.cost []
      | Trace.Phase p -> ev ~name:p ~cat:"phase" ~ph:"i" ~ts:r.cost []
      | Trace.Tier { fn; transition } ->
          let what =
            match transition with
            | Trace.Tier_refused -> "refused"
            | Trace.Tier_promote -> "promote"
            | Trace.Tier_deopt -> "deopt"
          in
          ev ~name:"tier" ~cat:"tier" ~ph:"i" ~ts:r.cost
            [ ("fn", Printf.sprintf "\"%s\"" fn);
              ("transition", Printf.sprintf "\"%s\"" what) ]
      | Trace.Block _ | Trace.Store _ | Trace.Write _ | Trace.Mirror _
      | Trace.Compare _ ->
          (* too dense for a span view; represented by profiles instead *)
          ())
    records;
  (* close frames left open by an exceptional unwind (detections) *)
  let depth = ref 0 in
  Array.iter
    (fun (r : Trace.record) ->
      match r.ev with
      | Trace.Call_enter _ -> incr depth
      | Trace.Call_exit _ -> if !depth > 0 then decr depth
      | _ -> ())
    records;
  for _ = 1 to !depth do
    ev ~name:"(unwound)" ~cat:"vm" ~ph:"E" ~ts:!last_cost []
  done;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome_json ?pid ?tid file records =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json ?pid ?tid records))

(* ---- cost profiles --------------------------------------------------- *)

type frame = {
  fn : string;
  calls : int;
  inclusive : int;  (* cost units, summed over calls *)
  exclusive : int;  (* inclusive minus callee time *)
}

(* Walk Call_enter/Call_exit pairs with an explicit shadow stack.
   Frames still open at the end of the trace (an exception unwound
   through them, or the ring dropped their exits) are closed at the cost
   of the last event, so a detection-terminated run still charges work
   to the function it died in. *)
let profile (records : Trace.record array) =
  let totals : (string, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let last_cost = ref 0 in
  let charge fn incl child =
    let c, i, e = try Hashtbl.find totals fn with Not_found -> (0, 0, 0) in
    Hashtbl.replace totals fn (c + 1, i + incl, e + (incl - child))
  in
  let close fn enter child at =
    let incl = max 0 (at - enter) in
    charge fn incl (min child incl);
    match !stack with
    | (pfn, penter, pchild) :: rest -> stack := (pfn, penter, pchild + incl) :: rest
    | [] -> ()
  in
  Array.iter
    (fun (r : Trace.record) ->
      last_cost := max !last_cost r.cost;
      match r.ev with
      | Trace.Call_enter fn -> stack := (fn, r.cost, 0) :: !stack
      | Trace.Call_exit fn -> (
          match !stack with
          | (tfn, enter, child) :: rest when String.equal tfn fn ->
              stack := rest;
              close tfn enter child r.cost
          | _ -> (* truncated ring head: exit without a recorded enter *) ())
      | _ -> ())
    records;
  let rec unwind () =
    match !stack with
    | (fn, enter, child) :: rest ->
        stack := rest;
        close fn enter child !last_cost;
        unwind ()
    | [] -> ()
  in
  unwind ();
  let rows =
    Hashtbl.fold
      (fun fn (calls, inclusive, exclusive) acc ->
        { fn; calls; inclusive; exclusive } :: acc)
      totals []
  in
  List.sort
    (fun a b ->
      match compare b.exclusive a.exclusive with
      | 0 -> String.compare a.fn b.fn
      | n -> n)
    rows

let pp_profile ?(top = 20) ppf rows =
  let total = List.fold_left (fun acc r -> acc + r.exclusive) 0 rows in
  Fmt.pf ppf "%-24s %8s %12s %12s %6s@." "function" "calls" "exclusive" "inclusive" "excl%";
  List.iteri
    (fun i r ->
      if i < top then
        Fmt.pf ppf "%-24s %8d %12d %12d %5.1f%%@." r.fn r.calls r.exclusive
          r.inclusive
          (if total = 0 then 0. else 100. *. float_of_int r.exclusive /. float_of_int total))
    rows;
  if List.length rows > top then Fmt.pf ppf "... (%d more)@." (List.length rows - top)
