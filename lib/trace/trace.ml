(* Fixed-size binary event ring.  See trace.mli for the contract.

   Slot layout (40 bytes, little-endian int64 fields):
     +0  kind  (1 byte)
     +8  cost  (int64 — Vm.cost at emission)
     +16 a
     +24 b
     +32 c
   The payload meaning of a/b/c depends on [kind]; strings are interned
   to small ids so slots never hold OCaml heap pointers. *)

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let slot_bytes = 40

(* Event kind tags (slot byte 0). *)
let k_block = 1
let k_call_enter = 2
let k_call_exit = 3
let k_malloc = 4
let k_free = 5
let k_store = 6
let k_write = 7
let k_mirror = 8
let k_compare = 9
let k_detect = 10
let k_fi_mark = 11
let k_phase = 12
let k_tier = 13

type t = {
  buf : Bytes.t;
  cap : int;  (* slot count, power of two *)
  mutable head : int;  (* total events ever emitted *)
  mutable block_ctr : int;
  sample_mask : int;
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n_names : int;
  mutable clock : unit -> int;
  (* summary counters (cheap; maintained even for dropped slots) *)
  mutable n_detections : int;
  mutable n_comparisons : int;
  mutable n_fi_marks : int;
}

let rec pow2_ge n k = if k >= n then k else pow2_ge n (k * 2)

let create ?(capacity = 1 lsl 16) ?(sample_every = 64) () =
  let cap = pow2_ge (max 8 capacity) 8 in
  let mask = pow2_ge (max 1 sample_every) 1 - 1 in
  {
    buf = Bytes.create (cap * slot_bytes);
    cap;
    head = 0;
    block_ctr = 0;
    sample_mask = mask;
    ids = Hashtbl.create 64;
    names = Array.make 64 "";
    n_names = 0;
    clock = (fun () -> 0);
    n_detections = 0;
    n_comparisons = 0;
    n_fi_marks = 0;
  }

let set_clock t f = t.clock <- f
let capacity t = t.cap
let emitted t = t.head
let dropped t = max 0 (t.head - t.cap)

(* ---- string interning ------------------------------------------------ *)

let intern t s =
  match Hashtbl.find t.ids s with
  | i -> i
  | exception Not_found ->
      let i = t.n_names in
      if i >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 bigger 0 i;
        t.names <- bigger
      end;
      t.names.(i) <- s;
      t.n_names <- i + 1;
      Hashtbl.replace t.ids s i;
      i

let name_of t i = if i >= 0 && i < t.n_names then t.names.(i) else "?"

(* ---- raw emission ---------------------------------------------------- *)

let[@inline] put t kind cost a b c =
  let off = (t.head land (t.cap - 1)) * slot_bytes in
  t.head <- t.head + 1;
  Bytes.unsafe_set t.buf off (Char.unsafe_chr kind);
  set64 t.buf (off + 8) (Int64.of_int cost);
  set64 t.buf (off + 16) a;
  set64 t.buf (off + 24) b;
  set64 t.buf (off + 32) c

let[@inline] sample_block t ~cost ~fname ~blk =
  let ctr = t.block_ctr in
  t.block_ctr <- ctr + 1;
  if ctr land t.sample_mask = 0 then
    put t k_block cost (Int64.of_int (intern t fname)) (Int64.of_int blk) 0L

let[@inline] emit_call_enter t ~cost ~fname =
  put t k_call_enter cost (Int64.of_int (intern t fname)) 0L 0L

let[@inline] emit_call_exit t ~cost ~fname =
  put t k_call_exit cost (Int64.of_int (intern t fname)) 0L 0L

let[@inline] emit_malloc t ~addr ~requested ~granted ~live =
  put t k_malloc (t.clock ()) addr
    (Int64.logor
       (Int64.of_int (requested land 0xffffffff))
       (Int64.shift_left (Int64.of_int granted) 32))
    (Int64.of_int live)

let[@inline] emit_free t ~addr ~live =
  put t k_free (t.clock ()) addr 0L (Int64.of_int live)

let[@inline] emit_store t ~cost ~addr ~bytes =
  put t k_store cost addr (Int64.of_int bytes) 0L

let[@inline] emit_write t ~cost ~addr ~len =
  put t k_write cost addr (Int64.of_int len) 0L

let[@inline] emit_mirror t ~cost ~app ~rep ~len =
  put t k_mirror cost app rep (Int64.of_int len)

let[@inline] emit_compare t ~cost ~app ~rep ~len =
  t.n_comparisons <- t.n_comparisons + 1;
  put t k_compare cost app rep (Int64.of_int len)

let emit_detect t ~cost ~what ~addr ~off =
  t.n_detections <- t.n_detections + 1;
  put t k_detect cost (Int64.of_int (intern t what)) addr (Int64.of_int off)

let[@inline] emit_fi_mark t ~cost =
  t.n_fi_marks <- t.n_fi_marks + 1;
  put t k_fi_mark cost 0L 0L 0L

let emit_phase t ~label =
  put t k_phase (t.clock ()) (Int64.of_int (intern t label)) 0L 0L

type transition = Tier_refused | Tier_promote | Tier_deopt

let int_of_transition = function
  | Tier_refused -> 0
  | Tier_promote -> 1
  | Tier_deopt -> 2

let transition_of_int = function
  | 0 -> Tier_refused
  | 1 -> Tier_promote
  | _ -> Tier_deopt

let emit_tier t ~cost ~fname ~transition =
  put t k_tier cost
    (Int64.of_int (intern t fname))
    (Int64.of_int (int_of_transition transition))
    0L

(* ---- domain-local installation --------------------------------------- *)

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = Domain.DLS.get key
let set o = Domain.DLS.set key o

let with_sink t f =
  let prev = current () in
  set (Some t);
  Fun.protect ~finally:(fun () -> set prev) f

(* ---- decoding -------------------------------------------------------- *)

type event =
  | Block of { fn : string; blk : int }
  | Call_enter of string
  | Call_exit of string
  | Malloc of { addr : int64; requested : int; granted : int; live : int }
  | Free of { addr : int64; live : int }
  | Store of { addr : int64; bytes : int }
  | Write of { addr : int64; len : int }
  | Mirror of { app : int64; rep : int64; len : int }
  | Compare of { app : int64; rep : int64; len : int }
  | Detect of { what : string; addr : int64; off : int }
  | Fi_mark
  | Phase of string
  | Tier of { fn : string; transition : transition }

type record = { cost : int; ev : event }

let decode t kind a b c =
  let i64 = Int64.to_int in
  if kind = k_block then Block { fn = name_of t (i64 a); blk = i64 b }
  else if kind = k_call_enter then Call_enter (name_of t (i64 a))
  else if kind = k_call_exit then Call_exit (name_of t (i64 a))
  else if kind = k_malloc then
    Malloc
      {
        addr = a;
        requested = i64 (Int64.logand b 0xffffffffL);
        granted = i64 (Int64.shift_right_logical b 32);
        live = i64 c;
      }
  else if kind = k_free then Free { addr = a; live = i64 c }
  else if kind = k_store then Store { addr = a; bytes = i64 b }
  else if kind = k_write then Write { addr = a; len = i64 b }
  else if kind = k_mirror then Mirror { app = a; rep = b; len = i64 c }
  else if kind = k_compare then Compare { app = a; rep = b; len = i64 c }
  else if kind = k_detect then
    Detect { what = name_of t (i64 a); addr = b; off = i64 c }
  else if kind = k_fi_mark then Fi_mark
  else if kind = k_phase then Phase (name_of t (i64 a))
  else if kind = k_tier then
    Tier { fn = name_of t (i64 a); transition = transition_of_int (i64 b) }
  else Phase (Printf.sprintf "?kind=%d" kind)

let snapshot t =
  let n = min t.head t.cap in
  let start = t.head - n in
  Array.init n (fun k ->
      let off = ((start + k) land (t.cap - 1)) * slot_bytes in
      let kind = Char.code (Bytes.unsafe_get t.buf off) in
      let cost = Int64.to_int (get64 t.buf (off + 8)) in
      let a = get64 t.buf (off + 16) in
      let b = get64 t.buf (off + 24) in
      let c = get64 t.buf (off + 32) in
      { cost; ev = decode t kind a b c })

(* ---- summaries ------------------------------------------------------- *)

type summary = {
  s_emitted : int;
  s_dropped : int;
  s_detections : int;
  s_comparisons : int;
  s_fi_marks : int;
}

let summary t =
  {
    s_emitted = t.head;
    s_dropped = dropped t;
    s_detections = t.n_detections;
    s_comparisons = t.n_comparisons;
    s_fi_marks = t.n_fi_marks;
  }

let zero_summary =
  { s_emitted = 0; s_dropped = 0; s_detections = 0; s_comparisons = 0; s_fi_marks = 0 }

let add_summary x y =
  {
    s_emitted = x.s_emitted + y.s_emitted;
    s_dropped = x.s_dropped + y.s_dropped;
    s_detections = x.s_detections + y.s_detections;
    s_comparisons = x.s_comparisons + y.s_comparisons;
    s_fi_marks = x.s_fi_marks + y.s_fi_marks;
  }

let pp_event ppf ev =
  match ev with
  | Block { fn; blk } -> Fmt.pf ppf "block %s#%d" fn blk
  | Call_enter fn -> Fmt.pf ppf "enter %s" fn
  | Call_exit fn -> Fmt.pf ppf "exit %s" fn
  | Malloc { addr; requested; granted; live } ->
      Fmt.pf ppf "malloc 0x%Lx req=%d granted=%d live=%d" addr requested granted live
  | Free { addr; live } -> Fmt.pf ppf "free 0x%Lx live=%d" addr live
  | Store { addr; bytes } -> Fmt.pf ppf "store 0x%Lx n=%d" addr bytes
  | Write { addr; len } -> Fmt.pf ppf "write 0x%Lx len=%d" addr len
  | Mirror { app; rep; len } -> Fmt.pf ppf "mirror 0x%Lx->0x%Lx len=%d" app rep len
  | Compare { app; rep; len } ->
      if Int64.equal app (-1L) then Fmt.pf ppf "check ok"
      else Fmt.pf ppf "compare 0x%Lx~0x%Lx len=%d" app rep len
  | Detect { what; addr; off } ->
      if Int64.equal addr (-1L) then Fmt.pf ppf "DETECT %s" what
      else Fmt.pf ppf "DETECT %s at 0x%Lx+%d" what addr off
  | Fi_mark -> Fmt.pf ppf "fi-mark"
  | Phase p -> Fmt.pf ppf "phase %s" p
  | Tier { fn; transition } ->
      let what =
        match transition with
        | Tier_refused -> "refused"
        | Tier_promote -> "promote"
        | Tier_deopt -> "deopt"
      in
      Fmt.pf ppf "tier %s %s" what fn

let pp_record ppf r = Fmt.pf ppf "[%10d] %a" r.cost pp_event r.ev
