(* Detection forensics over a decoded trace.

   Given the event stream of one fault-injection run, reconstruct the
   heap-chunk map from Malloc/Free events and walk from the first
   injection mark to the detection (or to the end of the run for
   misses), naming:

   - the injected corruption itself (the undersized reallocation, the
     premature free, or the displaced store — identified in the event
     window right after the first [Fi_mark]);
   - the first store that lands outside any live chunk payload after the
     injection (the proximate corrupting write);
   - the first divergent replica byte, when a wrapper byte-comparison
     caught it;
   - the instruction distance from injection to detection in cost units,
     which must equal the [Metrics] detection latency t2d.

   Misses are explained: either no replica comparison executed after the
   injection ("comparison never reached"), or comparisons ran and all
   passed ("replica agreed" — the corruption never made an app/replica
   pair diverge at a checked load). *)

module I64Map = Map.Make (Int64)

type target =
  | In_freed of int64  (* store into a freed chunk's payload *)
  | Chunk_header of int64  (* store into allocator metadata *)
  | Overflow of int64  (* starts inside a live chunk, runs past its end *)
  | Wilderness  (* heap-segment store inside no chunk ever allocated *)

type corruption =
  | Injected_free of { addr : int64 }
  | Undersized_malloc of { addr : int64; requested : int; granted : int }
  | Displaced_store of { addr : int64; bytes : int; target : target }

type detection = { what : string; at_cost : int; addr : int64 option; off : int option }

type verdict =
  | Detected
  | Detected_naturally
      (* never produced by [analyze] (the trace alone cannot see a crash);
         a runner that knows the run's classification substitutes it *)
  | Miss_no_comparison
  | Miss_replica_agreed of int  (* comparisons after injection, all passed *)
  | Not_injected

type report = {
  injected_at : int option;  (* cost of the first Fi_mark *)
  corruption : corruption option;
  first_bad_store : (int * corruption) option;
      (* first post-injection store outside live payloads: (cost, Displaced_store) *)
  detection : detection option;
  distance : int option;  (* detection cost - injection cost *)
  compares_after : int;
  verdict : verdict;
  truncated : bool;  (* ring dropped events; analysis may be partial *)
}

let pp_target ppf = function
  | In_freed a -> Fmt.pf ppf "freed chunk 0x%Lx" a
  | Chunk_header a -> Fmt.pf ppf "header of chunk 0x%Lx" a
  | Overflow a -> Fmt.pf ppf "overflow of chunk 0x%Lx" a
  | Wilderness -> Fmt.pf ppf "unallocated heap"

let pp_corruption ppf = function
  | Injected_free { addr } -> Fmt.pf ppf "premature free of chunk 0x%Lx" addr
  | Undersized_malloc { addr; requested; granted } ->
      Fmt.pf ppf "undersized allocation 0x%Lx (asked %d, granted %d)" addr requested granted
  | Displaced_store { addr; bytes; target } ->
      Fmt.pf ppf "%d-byte store to 0x%Lx (%a)" bytes addr pp_target target

let pp_verdict ppf = function
  | Detected -> Fmt.string ppf "detected"
  | Detected_naturally ->
      Fmt.string ppf "detected naturally (crash / error exit ended the run)"
  | Miss_no_comparison -> Fmt.string ppf "miss: comparison never reached"
  | Miss_replica_agreed n -> Fmt.pf ppf "miss: replica agreed (%d comparisons passed)" n
  | Not_injected -> Fmt.string ppf "fault site never executed"

(* Allocator geometry (mirrors lib/memsim/allocator.ml): a chunk's
   16-byte header sits immediately below its payload base. *)
let header_bytes = 16L

(* Chunk map: payload base -> (granted payload bytes, live?).  Freed
   chunks stay in the map marked dead so use-after-free stores can be
   attributed; reallocation flips them live again. *)
let classify chunks ~heap_base ~addr ~bytes =
  if Int64.unsigned_compare addr heap_base < 0 then None
  else
    let last = Int64.add addr (Int64.of_int (max 1 bytes - 1)) in
    let below = I64Map.find_last_opt (fun base -> Int64.unsigned_compare base addr <= 0) chunks in
    match below with
    | Some (base, (granted, live)) when Int64.unsigned_compare addr (Int64.add base (Int64.of_int granted)) < 0 ->
        if not live then Some (In_freed base)
        else if Int64.unsigned_compare last (Int64.add base (Int64.of_int granted)) >= 0 then
          Some (Overflow base)
        else None (* inside a live payload: legitimate *)
    | _ -> (
        (* not inside any payload: allocator metadata or wilderness *)
        match I64Map.find_first_opt (fun base -> Int64.unsigned_compare base addr > 0) chunks with
        | Some (base, _) when Int64.unsigned_compare addr (Int64.sub base header_bytes) >= 0 ->
            Some (Chunk_header base)
        | _ -> Some Wilderness)

let analyze ~heap_base ?(dropped = 0) (records : Trace.record array) : report =
  let n = Array.length records in
  (* first injection mark *)
  let fi_idx = ref (-1) in
  (try
     for i = 0 to n - 1 do
       match records.(i).ev with
       | Trace.Fi_mark -> fi_idx := i; raise Exit
       | _ -> ()
     done
   with Exit -> ());
  let injected_at = if !fi_idx >= 0 then Some records.(!fi_idx).cost else None in
  (* detection (at most one per run: the exception ends the run) *)
  let detection = ref None in
  Array.iter
    (fun (r : Trace.record) ->
      match r.ev with
      | Trace.Detect { what; addr; off } ->
          detection :=
            Some
              {
                what;
                at_cost = r.cost;
                addr = (if Int64.equal addr (-1L) then None else Some addr);
                off = (if off < 0 then None else Some off);
              }
      | _ -> ())
    records;
  (* forward walk: chunk map + post-injection classification *)
  let chunks = ref I64Map.empty in
  let first_bad = ref None in
  let compares_after = ref 0 in
  for i = 0 to n - 1 do
    let r = records.(i) in
    let after = !fi_idx >= 0 && i > !fi_idx in
    match r.ev with
    | Trace.Malloc { addr; granted; _ } -> chunks := I64Map.add addr (granted, true) !chunks
    | Trace.Free { addr; _ } ->
        chunks :=
          I64Map.update addr
            (function Some (g, _) -> Some (g, false) | None -> Some (0, false))
            !chunks
    | Trace.Store { addr; bytes } when after && !first_bad = None -> (
        match classify !chunks ~heap_base ~addr ~bytes with
        | Some target ->
            first_bad := Some (r.cost, Displaced_store { addr; bytes; target })
        | None -> ())
    | Trace.Compare _ when after -> incr compares_after
    | _ -> ()
  done;
  (* name the injected corruption from the event window right after the
     first mark: the injected code runs immediately (same block), so its
     chunk/store events are the next few records. *)
  let corruption =
    if !fi_idx < 0 then None
    else begin
      let window = Array.sub records (!fi_idx + 1) (min 8 (n - !fi_idx - 1)) in
      let first_malloc = ref None and freed = ref None and first_store = ref None in
      Array.iter
        (fun (r : Trace.record) ->
          match r.ev with
          | Trace.Malloc { addr; requested; granted; _ } ->
              if !first_malloc = None then
                first_malloc := Some (Undersized_malloc { addr; requested; granted })
          | Trace.Free { addr; _ } -> if !freed = None then freed := Some addr
          | Trace.Store { addr; bytes } when !first_store = None -> (
              match classify !chunks ~heap_base ~addr ~bytes with
              (* chunk map here reflects the END state; only use it as a
                 hint — a displaced store is named even if it can't be
                 classified against the final map. *)
              | Some target -> first_store := Some (Displaced_store { addr; bytes; target })
              | None -> ())
          | _ -> ())
        window;
      match (!freed, !first_malloc, !first_store) with
      | Some addr, _, _ -> Some (Injected_free { addr })
      | None, Some m, _ -> Some m
      | None, None, s -> s
    end
  in
  let distance =
    match (injected_at, !detection) with
    | Some inj, Some d -> Some (d.at_cost - inj)
    | _ -> None
  in
  let verdict =
    if !fi_idx < 0 then Not_injected
    else if !detection <> None then Detected
    else if !compares_after = 0 then Miss_no_comparison
    else Miss_replica_agreed !compares_after
  in
  {
    injected_at;
    corruption;
    first_bad_store = !first_bad;
    detection = !detection;
    distance;
    compares_after = !compares_after;
    verdict;
    truncated = dropped > 0;
  }

let pp_report ppf (r : report) =
  (match r.injected_at with
  | None -> Fmt.pf ppf "injection   : site never executed@."
  | Some c -> Fmt.pf ppf "injection   : fi-mark at cost %d@." c);
  (match r.corruption with
  | Some c -> Fmt.pf ppf "corruption  : %a@." pp_corruption c
  | None -> ());
  (match r.first_bad_store with
  | Some (cost, c) -> Fmt.pf ppf "first bad st: %a at cost %d@." pp_corruption c cost
  | None -> ());
  (match r.detection with
  | Some d ->
      Fmt.pf ppf "detection   : %s at cost %d" d.what d.at_cost;
      (match (d.addr, d.off) with
      | Some a, Some o -> Fmt.pf ppf " — first divergent byte 0x%Lx (offset %d)" a o
      | _ -> ());
      Fmt.pf ppf "@."
  | None -> ());
  (match r.distance with
  | Some d -> Fmt.pf ppf "distance    : %d cost units@." d
  | None -> ());
  Fmt.pf ppf "verdict     : %a%s@." pp_verdict r.verdict
    (if r.truncated then " (ring truncated; partial)" else "")
