(* Minimal JSON parser + trace-event schema check.

   The repo deliberately has no JSON dependency; this parser exists so
   tests and CI can validate exported traces without one.  It accepts
   strict JSON (RFC 8259) minus \u surrogate-pair decoding (escapes are
   preserved verbatim in strings — sufficient for validation). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | ('"' | '\\' | '/') as c -> Buffer.add_char b c
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              String.iter
                (fun c ->
                  match c with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                  | _ -> fail "bad \\u escape")
                (String.sub s (!pos + 1) 4);
              Buffer.add_string b (String.sub s !pos 5);
              pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c when Char.code c < 0x20 -> fail "control char in string"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let digits () =
      let d = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d then fail "expected digit"
    in
    digits ();
    if peek () = '.' then (advance (); digits ());
    (match peek () with
    | 'e' | 'E' ->
        advance ();
        (match peek () with '+' | '-' -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elems (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> Num (parse_number ())
    | _ -> fail "expected value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* Validate the Chrome trace-event JSON object format: a top-level
   object with a [traceEvents] array whose elements each carry the
   required name/ph/ts/pid/tid fields with the right types, [ph] drawn
   from the phases we emit, and instant events scoped correctly. *)
let validate_trace (s : string) : (int, string) result =
  match parse s with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok root -> (
      match mem "traceEvents" root with
      | None -> Error "missing \"traceEvents\" key"
      | Some (Arr evs) -> (
          let check i e =
            let want k pred ty =
              match mem k e with
              | Some v when pred v -> Ok ()
              | Some _ -> Error (Printf.sprintf "event %d: \"%s\" is not a %s" i k ty)
              | None -> Error (Printf.sprintf "event %d: missing \"%s\"" i k)
            in
            let str = function Str _ -> true | _ -> false in
            let num = function Num _ -> true | _ -> false in
            let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
            want "name" str "string" >>= fun () ->
            want "ph" str "string" >>= fun () ->
            want "ts" num "number" >>= fun () ->
            want "pid" num "number" >>= fun () ->
            want "tid" num "number" >>= fun () ->
            match mem "ph" e with
            | Some (Str ("B" | "E" | "C" | "X" | "M")) -> Ok ()
            | Some (Str "i") -> (
                match mem "s" e with
                | Some (Str ("t" | "p" | "g")) | None -> Ok ()
                | Some _ -> Error (Printf.sprintf "event %d: bad instant scope" i))
            | Some (Str ph) -> Error (Printf.sprintf "event %d: unknown phase %S" i ph)
            | _ -> Error (Printf.sprintf "event %d: \"ph\" is not a string" i)
          in
          let rec go i = function
            | [] -> Ok (List.length evs)
            | (Obj _ as e) :: rest -> (
                match check i e with Ok () -> go (i + 1) rest | Error m -> Error m)
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          go 0 evs)
      | Some _ -> Error "\"traceEvents\" is not an array")
