(** External function wrappers (§2.8, §3.1, §4.3).

    For every external function [e] the transformed program calls
    [e_efw], responsible for (1) the original behaviour and (2) the
    application-visible DPMR behaviour a transformed [e] would have:
    replica (and shadow) allocation, mimicked stores, load checks, and
    the rvSop/rvRopPtr return channel.  These are the "external code
    support library" of §2.8, implemented as runtime functions.

    Also provides the argv replication runtime of §3.1.1
    ([__dpmr_argv_r], [__dpmr_argv_s]). *)

(** Register every wrapper into a VM for the given design and replica
    count (default 1, the historical single-replica wrappers). *)
val register : mode:Config.mode -> ?replicas:int -> Dpmr_vm.Vm.t -> unit
