(** External function wrappers (§2.8, §3.1, §4.3).

    For every external function [e] the transformed program calls
    [e_efw], whose responsibilities are (1) the original behaviour, and
    (2) the application-visible DPMR behaviour a transformed [e] would
    have: replica (and shadow) allocation, mimicked stores, load checks,
    and the rvSop/rvRopPtr return channel.  The wrappers are the
    "external code support library" of §2.8, implemented as runtime
    (OCaml) functions — exactly the role libDpmrSupport plays for the C
    tool.

    Under N-version replication every pointer parameter group carries N
    replica pointers; the wrappers mirror stores into and load-check
    against every replica.  At N=1 each loop degenerates to the single
    historical operation, byte- and cost-identical to the pre-N-version
    wrappers. *)

open Dpmr_memsim
module Vm = Dpmr_vm.Vm
module Extern = Dpmr_vm.Extern

module Trace = Dpmr_trace.Trace

let detect what = raise (Vm.Dpmr_detected ("efw:" ^ what))

(* A wrapper detection knows the exact divergent byte; hand it to any
   installed trace sink before raising. *)
let detect_at vm what ~app ~off =
  (match vm.Vm.trace with
  | Some s ->
      Trace.emit_detect s ~cost:!(vm.Vm.cost) ~what:("efw:" ^ what) ~addr:app ~off
  | None -> ());
  detect what

(* --- argument stream: wrappers consume the γ()-expanded argument list --- *)

type stream = { mutable rest : Vm.value list; mode : Config.mode; nrep : int }

let mk mode nrep args = { rest = args; mode; nrep }

let next s =
  match s.rest with
  | [] -> raise (Vm.Vm_error "wrapper: missing argument")
  | x :: xs ->
      s.rest <- xs;
      x

let scalar s = Vm.as_int (next s)

(** Consume a pointer parameter group: (app, rop_1..rop_N[, nsop]). *)
let pointer s =
  let app = Vm.as_int (next s) in
  let rops = Array.init s.nrep (fun _ -> Vm.as_int (next s)) in
  let nsop = match s.mode with Config.Sds -> Vm.as_int (next s) | Config.Mds -> 0L in
  (app, rops, nsop)

(** Consume the return-value channel parameter (π()). *)
let rv_channel s = Vm.as_int (next s)

(** Store the return ROPs (slots 0..N-1) and, under SDS, the NSOP (slot
    N) through the channel. *)
let set_rv vm s chan ~rops ~nsop =
  Array.iteri
    (fun k rop -> Mem.write_int vm.Vm.mem (Int64.add chan (Int64.of_int (8 * k))) 8 rop)
    rops;
  match s.mode with
  | Config.Sds ->
      Mem.write_int vm.Vm.mem (Int64.add chan (Int64.of_int (8 * Array.length rops))) 8 nsop
  | Config.Mds -> ()

(* --- load-check helpers --- *)

(** Compare [n] bytes of application memory at [a] with replica memory at
    [b]; a mismatch is a DPMR detection. *)
let check_bytes vm what a b n =
  Vm.add_cost vm ((n / 4) + 2);
  let rec go i =
    if i < n then
      let x = Mem.read_u8 vm.Vm.mem (Int64.add a (Int64.of_int i)) in
      let y = Mem.read_u8 vm.Vm.mem (Int64.add b (Int64.of_int i)) in
      if x <> y then detect_at vm what ~app:a ~off:i else go (i + 1)
  in
  go 0;
  match vm.Vm.trace with
  | Some s -> Trace.emit_compare s ~cost:!(vm.Vm.cost) ~app:a ~rep:b ~len:n
  | None -> ()

(** Load-check [n] bytes of application memory against every replica. *)
let check_bytes_r vm what a rops n =
  Array.iter (fun b -> check_bytes vm what a b n) rops

(** Check the NUL-terminated string at [a] against every replica (the
    Figure 2.11 [assert(strcmp(src, src_r) == 0)]). *)
let check_cstr_r vm what a rops =
  let n = Extern.cstring_len vm a in
  check_bytes_r vm what a rops (n + 1)

(** Copy [n] application bytes to replica memory (a mimicked store: under
    both designs non-pointer bytes are stored identically; under SDS even
    pointer bytes are identical). *)
let mirror vm ~app ~rep n =
  Vm.add_cost vm ((n / 4) + 2);
  (match vm.Vm.trace with
  | Some s -> Trace.emit_mirror s ~cost:!(vm.Vm.cost) ~app ~rep ~len:n
  | None -> ());
  Mem.move vm.Vm.mem ~dst:rep ~src:app n

(** Mimicked store into every replica. *)
let mirror_r vm ~app ~rops n = Array.iter (fun rep -> mirror vm ~app ~rep n) rops

(* ------------------------------------------------------------------ *)
(* Individual wrappers                                                 *)
(* ------------------------------------------------------------------ *)

let w_print_int _c vm args =
  Extern.out vm (Int64.to_string (Vm.as_int (List.hd args)));
  None

let w_print_float _c vm args =
  Extern.out vm (Printf.sprintf "%.6g" (Vm.as_float (List.hd args)));
  None

let w_putchar _c vm args =
  Extern.out vm (String.make 1 (Char.chr (Int64.to_int (Vm.as_int (List.hd args)) land 0xFF)));
  None

let w_print_newline _c vm _args =
  Extern.out vm "\n";
  None

let w_exit _c _vm args = raise (Vm.Exit_program (Int64.to_int (Vm.as_int (List.hd args))))
let w_abort _c _vm _args = raise (Vm.Exit_program 134)

let w_print_str (mode, nrep) vm args =
  let s = mk mode nrep args in
  let p, p_rs, _ = pointer s in
  check_cstr_r vm "print_str" p p_rs;
  Extern.out vm (Extern.read_cstring vm p);
  None

let w_strlen (mode, nrep) vm args =
  let s = mk mode nrep args in
  let p, p_rs, _ = pointer s in
  check_cstr_r vm "strlen" p p_rs;
  Some (Vm.I (Int64.of_int (Extern.cstring_len vm p)))

(* Figure 2.11's wrapper, faithfully: check src, run strcpy, mimic the
   write to every dest_r, return the ROPs/NSOP of dest through rvSop. *)
let w_strcpy (mode, nrep) vm args =
  let s = mk mode nrep args in
  let chan = rv_channel s in
  let dest, dest_rs, dest_s = pointer s in
  let src, src_rs, _src_s = pointer s in
  check_cstr_r vm "strcpy:src" src src_rs;
  let len = Extern.impl_strcpy vm ~dst:dest ~src in
  mirror_r vm ~app:dest ~rops:dest_rs (len + 1);
  set_rv vm s chan ~rops:dest_rs ~nsop:dest_s;
  Some (Vm.I dest)

(* strcmp emulates the comparison itself so it knows exactly how many
   bytes of each input were read (§3.1.5) — there is no guarantee the
   strings are NUL-terminated past the first difference. *)
let w_strcmp (mode, nrep) vm args =
  let s = mk mode nrep args in
  let a, a_rs, _ = pointer s in
  let b, b_rs, _ = pointer s in
  let r, read = Extern.impl_strcmp vm a b in
  check_bytes_r vm "strcmp:a" a a_rs read;
  check_bytes_r vm "strcmp:b" b b_rs read;
  Some (Vm.I (Int64.logand (Int64.of_int r) 0xFFFFFFFFL))

(* atoi compares only as much of the input string as its parse consumed
   (§3.1.5's atof discussion). *)
let w_atoi (mode, nrep) vm args =
  let s = mk mode nrep args in
  let p, p_rs, _ = pointer s in
  let v, consumed = Extern.impl_atoi vm p in
  check_bytes_r vm "atoi" p p_rs consumed;
  Some (Vm.I (Int64.logand v 0xFFFFFFFFL))

(** Unpack the memcpy/memmove sdwSize parameter: (shadow elem size << 16)
    | elem size, or 0 when the copied data has no shadow. *)
let sdw_scale packed n =
  if Int64.equal packed 0L then 0
  else
    let ssz = Int64.to_int (Int64.shift_right_logical packed 16) in
    let esz = Int64.to_int (Int64.logand packed 0xFFFFL) in
    if esz = 0 then 0 else n / esz * ssz

let w_memcpy (mode, nrep) vm args =
  let s = mk mode nrep args in
  let packed = match mode with Config.Sds -> scalar s | Config.Mds -> 0L in
  let chan = rv_channel s in
  let dest, dest_rs, dest_s = pointer s in
  let src, src_rs, src_s = pointer s in
  let n = Int64.to_int (scalar s) in
  (match mode with
  | Config.Sds ->
      (* under SDS all bytes are comparable, pointers included *)
      check_bytes_r vm "memcpy:src" src src_rs n;
      Extern.impl_memcpy vm ~dst:dest ~src n;
      mirror_r vm ~app:dest ~rops:dest_rs n;
      let sn = sdw_scale packed n in
      if sn > 0 then Mem.move vm.Vm.mem ~dst:dest_s ~src:src_s sn
  | Config.Mds ->
      (* replica k mirrors replica k: pointer cells hold that replica's
         ROPs (§4.3) *)
      Extern.impl_memcpy vm ~dst:dest ~src n;
      Array.iteri
        (fun k dst_r -> Extern.impl_memcpy vm ~dst:dst_r ~src:src_rs.(k) n)
        dest_rs);
  set_rv vm s chan ~rops:dest_rs ~nsop:dest_s;
  Some (Vm.I dest)

let w_memset (mode, nrep) vm args =
  let s = mk mode nrep args in
  let chan = rv_channel s in
  let dest, dest_rs, dest_s = pointer s in
  let byte = Int64.to_int (scalar s) in
  let n = Int64.to_int (scalar s) in
  Extern.impl_memset vm dest byte n;
  Array.iter (fun dest_r -> Extern.impl_memset vm dest_r byte n) dest_rs;
  set_rv vm s chan ~rops:dest_rs ~nsop:dest_s;
  Some (Vm.I dest)

(* qsort: sort application, every replica and shadow region with the same
   permutation; the comparator is the *transformed* comparison function,
   so it is called with the augmented (a, a_r1..a_rN[, a_s], b, ...)
   argument list of Figure 3.3, and its own load checks fire on the
   scratch copies we pass it. *)
let w_qsort (mode, nrep) vm args =
  let s = mk mode nrep args in
  let sdw_elem = match mode with Config.Sds -> Int64.to_int (scalar s) | Config.Mds -> 0 in
  let base, base_rs, base_s = pointer s in
  let nmemb = Int64.to_int (scalar s) in
  let size = Int64.to_int (scalar s) in
  let cmp, _cmp_rs, _cmp_s = pointer s in
  let cmp_name =
    match Hashtbl.find_opt vm.Vm.addr_fun cmp with
    | Some n -> n
    | None -> raise (Mem.Fault (Mem.Unmapped cmp))
  in
  let read_at region i sz = Mem.read_bytes vm.Vm.mem (Int64.add region (Int64.of_int (i * sz))) sz in
  let app = Array.init nmemb (fun i -> read_at base i size) in
  let reps =
    Array.map (fun base_r -> Array.init nmemb (fun i -> read_at base_r i size)) base_rs
  in
  let shd =
    if sdw_elem > 0 then Some (Array.init nmemb (fun i -> read_at base_s i sdw_elem))
    else None
  in
  (* scratch element copies the comparator dereferences *)
  let sa = Allocator.malloc vm.Vm.alloc size and sb = Allocator.malloc vm.Vm.alloc size in
  let ras = Array.init nrep (fun _ -> Allocator.malloc vm.Vm.alloc size) in
  let rbs = Array.init nrep (fun _ -> Allocator.malloc vm.Vm.alloc size) in
  let ha, hb =
    if sdw_elem > 0 then
      (Allocator.malloc vm.Vm.alloc sdw_elem, Allocator.malloc vm.Vm.alloc sdw_elem)
    else (0L, 0L)
  in
  let idx = Array.init nmemb (fun i -> i) |> Array.to_list in
  let compare_idx i j =
    Vm.add_cost vm 10;
    Mem.write_bytes vm.Vm.mem sa app.(i) 0 size;
    Mem.write_bytes vm.Vm.mem sb app.(j) 0 size;
    Array.iteri
      (fun k ra ->
        Mem.write_bytes vm.Vm.mem ra reps.(k).(i) 0 size;
        Mem.write_bytes vm.Vm.mem rbs.(k) reps.(k).(j) 0 size)
      ras;
    (match shd with
    | Some sh ->
        Mem.write_bytes vm.Vm.mem ha sh.(i) 0 sdw_elem;
        Mem.write_bytes vm.Vm.mem hb sh.(j) 0 sdw_elem
    | None -> ());
    let group p rs h =
      match mode with
      | Config.Sds -> (Vm.I p :: Array.to_list (Array.map (fun r -> Vm.I r) rs)) @ [ Vm.I h ]
      | Config.Mds -> Vm.I p :: Array.to_list (Array.map (fun r -> Vm.I r) rs)
    in
    let cargs = group sa ras ha @ group sb rbs hb in
    match Vm.call_function vm cmp_name cargs with
    | Some (Vm.I r) -> Int64.to_int (Vm.sign_extend Dpmr_ir.Types.W32 r)
    | _ -> raise (Vm.Vm_error "qsort comparator did not return an int")
  in
  let sorted = List.stable_sort compare_idx idx in
  List.iteri
    (fun newpos oldpos ->
      Mem.write_bytes vm.Vm.mem (Int64.add base (Int64.of_int (newpos * size))) app.(oldpos) 0 size;
      Array.iteri
        (fun k base_r ->
          Mem.write_bytes vm.Vm.mem
            (Int64.add base_r (Int64.of_int (newpos * size)))
            reps.(k).(oldpos) 0 size)
        base_rs;
      match shd with
      | Some sh ->
          Mem.write_bytes vm.Vm.mem
            (Int64.add base_s (Int64.of_int (newpos * sdw_elem)))
            sh.(oldpos) 0 sdw_elem
      | None -> ())
    sorted;
  List.iter (Allocator.free vm.Vm.alloc)
    (List.filter
       (fun a -> not (Int64.equal a 0L))
       ([ sa; sb ] @ Array.to_list ras @ Array.to_list rbs @ [ ha; hb ]));
  Vm.add_cost vm (nmemb * (size / 8) * 4);
  None

(* calloc/realloc: heap management through external code.  The wrappers
   allocate and maintain replica memory; the allocated memory is typed as
   bytes, so its shadow is null (storing pointers into it falls under the
   §2.9 typing restrictions, or the Chapter 5 scope expansion). *)
let w_calloc (mode, nrep) vm args =
  let s = mk mode nrep args in
  let chan = rv_channel s in
  let n = Int64.to_int (scalar s) in
  let size = Int64.to_int (scalar s) in
  let bytes = max 1 (n * size) in
  Vm.add_cost vm ((1 + nrep) * Extern.dpmr_vm_cost_calloc bytes);
  let p = Allocator.malloc vm.Vm.alloc bytes in
  Mem.fill vm.Vm.mem p bytes 0;
  let p_rs =
    Array.init nrep (fun _ ->
        let p_r = Allocator.malloc vm.Vm.alloc bytes in
        Mem.fill vm.Vm.mem p_r bytes 0;
        p_r)
  in
  set_rv vm s chan ~rops:p_rs ~nsop:0L;
  Some (Vm.I p)

let w_realloc (mode, nrep) vm args =
  let s = mk mode nrep args in
  let chan = rv_channel s in
  let p, p_rs, _p_s = pointer s in
  let n = Int64.to_int (scalar s) in
  (* load check: the preserved prefix is read by realloc *)
  if not (Int64.equal p 0L) then begin
    let keep = min (Allocator.usable_size vm.Vm.alloc p) (max 1 n) in
    check_bytes_r vm "realloc:prefix" p p_rs keep
  end;
  (* each copy preserves its own prefix — replica content mirrors by
     construction (and under MDS may legitimately differ at pointer
     cells, which byte-typed memory must not contain anyway) *)
  let q = Extern.impl_realloc vm p n in
  let q_rs = Array.map (fun p_r -> Extern.impl_realloc vm p_r n) p_rs in
  set_rv vm s chan ~rops:q_rs ~nsop:0L;
  Some (Vm.I q)

(* printf: the variable-length argument list arrives with original values
   in place and (ROP_1..ROP_N[, NSOP]) groups appended at the end
   (§3.1.2).  The wrapper parses the format string to find which variadic
   arguments are dereferenced pointers, and load-checks exactly those
   against every replica (§3.1.5). *)
let w_printf (mode, nrep) vm args =
  let s = mk mode nrep args in
  let fmt, fmt_rs, _ = pointer s in
  check_cstr_r vm "printf:fmt" fmt fmt_rs;
  let rest = Array.of_list s.rest in
  (* appended group width per variadic argument *)
  let g = match mode with Config.Sds -> nrep + 1 | Config.Mds -> nrep in
  let n_var = Array.length rest / (1 + g) in
  let vapp = Array.sub rest 0 n_var in
  let rendered, string_reads = Extern.impl_printf vm fmt vapp in
  List.iter
    (fun (idx, addr, len) ->
      for k = 0 to nrep - 1 do
        let rop = Vm.as_int rest.(n_var + (idx * g) + k) in
        check_bytes vm "printf:%s-arg" addr rop len
      done)
    string_reads;
  Extern.out vm rendered;
  Some (Vm.I (Int64.of_int (String.length rendered)))

(* ------------------------------------------------------------------ *)
(* argv replication (§3.1.1, Figure 3.1)                               *)
(* ------------------------------------------------------------------ *)

let read_argv vm argc argv =
  List.init argc (fun i -> Mem.read_int vm.Vm.mem (Int64.add argv (Int64.of_int (8 * i))) 8)

let replicate_string vm p =
  let n = Extern.cstring_len vm p + 1 in
  let r = Allocator.malloc vm.Vm.alloc n in
  Mem.move vm.Vm.mem ~dst:r ~src:p n;
  r

(* Called once per replica by the synthesized main, so it needs no
   replica count of its own. *)
let w_argv_r mode vm args =
  let argc = Int64.to_int (Vm.as_int (List.hd args)) in
  let argv = Vm.as_int (List.nth args 1) in
  let ptrs = read_argv vm argc argv in
  let arr = Allocator.malloc vm.Vm.alloc (max 8 (8 * argc)) in
  List.iteri
    (fun i p ->
      let v =
        match mode with
        | Config.Sds -> p (* comparable pointers: identical values *)
        | Config.Mds -> replicate_string vm p
      in
      Mem.write_int vm.Vm.mem (Int64.add arr (Int64.of_int (8 * i))) 8 v)
    ptrs;
  Some (Vm.I arr)

let w_argv_s nrep vm args =
  let argc = Int64.to_int (Vm.as_int (List.hd args)) in
  let argv = Vm.as_int (List.nth args 1) in
  let ptrs = read_argv vm argc argv in
  (* array of {ROP_1..ROP_N; NSOP} groups: each ROP -> its own replica of
     the i-th argument, NSOP -> null (char data has no shadow) *)
  let gsz = 8 * (nrep + 1) in
  let arr = Allocator.malloc vm.Vm.alloc (max gsz (gsz * argc)) in
  List.iteri
    (fun i p ->
      for k = 0 to nrep - 1 do
        let rep = replicate_string vm p in
        Mem.write_int vm.Vm.mem (Int64.add arr (Int64.of_int ((gsz * i) + (8 * k)))) 8 rep
      done;
      Mem.write_int vm.Vm.mem (Int64.add arr (Int64.of_int ((gsz * i) + (8 * nrep)))) 8 0L)
    ptrs;
  Some (Vm.I arr)

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

(** Register every wrapper into [vm] for the given design and replica
    count. *)
let register ~mode ?(replicas = 1) vm =
  let reg name f = Vm.register_extern vm (name ^ "_efw") (f (mode, replicas)) in
  reg "print_int" w_print_int;
  reg "print_float" w_print_float;
  reg "putchar" w_putchar;
  reg "print_newline" w_print_newline;
  reg "exit" w_exit;
  reg "abort" w_abort;
  reg "print_str" w_print_str;
  reg "strlen" w_strlen;
  reg "strcpy" w_strcpy;
  reg "strcmp" w_strcmp;
  reg "atoi" w_atoi;
  reg "memcpy" w_memcpy;
  reg "memmove" w_memcpy;
  reg "memset" w_memset;
  reg "qsort" w_qsort;
  reg "printf" w_printf;
  reg "calloc" w_calloc;
  reg "realloc" w_realloc;
  Vm.register_extern vm "__dpmr_argv_r" (w_argv_r mode);
  Vm.register_extern vm "__dpmr_argv_s" (w_argv_s replicas)
