(** External function wrappers (§2.8, §3.1, §4.3).

    For every external function [e] the transformed program calls
    [e_efw], whose responsibilities are (1) the original behaviour, and
    (2) the application-visible DPMR behaviour a transformed [e] would
    have: replica (and shadow) allocation, mimicked stores, load checks,
    and the rvSop/rvRopPtr return channel.  The wrappers are the
    "external code support library" of §2.8, implemented as runtime
    (OCaml) functions — exactly the role libDpmrSupport plays for the C
    tool. *)

open Dpmr_memsim
module Vm = Dpmr_vm.Vm
module Extern = Dpmr_vm.Extern

module Trace = Dpmr_trace.Trace

let detect what = raise (Vm.Dpmr_detected ("efw:" ^ what))

(* A wrapper detection knows the exact divergent byte; hand it to any
   installed trace sink before raising. *)
let detect_at vm what ~app ~off =
  (match vm.Vm.trace with
  | Some s ->
      Trace.emit_detect s ~cost:!(vm.Vm.cost) ~what:("efw:" ^ what) ~addr:app ~off
  | None -> ());
  detect what

(* --- argument stream: wrappers consume the γ()-expanded argument list --- *)

type stream = { mutable rest : Vm.value list; mode : Config.mode }

let mk mode args = { rest = args; mode }

let next s =
  match s.rest with
  | [] -> raise (Vm.Vm_error "wrapper: missing argument")
  | x :: xs ->
      s.rest <- xs;
      x

let scalar s = Vm.as_int (next s)

(** Consume a pointer parameter group: (app, rop[, nsop]). *)
let pointer s =
  let app = Vm.as_int (next s) in
  let rop = Vm.as_int (next s) in
  let nsop = match s.mode with Config.Sds -> Vm.as_int (next s) | Config.Mds -> 0L in
  (app, rop, nsop)

(** Consume the return-value channel parameter (π()). *)
let rv_channel s = Vm.as_int (next s)

(** Store the return ROP/NSOP through the channel. *)
let set_rv vm s chan ~rop ~nsop =
  match s.mode with
  | Config.Sds ->
      Mem.write_int vm.Vm.mem chan 8 rop;
      Mem.write_int vm.Vm.mem (Int64.add chan 8L) 8 nsop
  | Config.Mds -> Mem.write_int vm.Vm.mem chan 8 rop

(* --- load-check helpers --- *)

(** Compare [n] bytes of application memory at [a] with replica memory at
    [b]; a mismatch is a DPMR detection. *)
let check_bytes vm what a b n =
  Vm.add_cost vm ((n / 4) + 2);
  let rec go i =
    if i < n then
      let x = Mem.read_u8 vm.Vm.mem (Int64.add a (Int64.of_int i)) in
      let y = Mem.read_u8 vm.Vm.mem (Int64.add b (Int64.of_int i)) in
      if x <> y then detect_at vm what ~app:a ~off:i else go (i + 1)
  in
  go 0;
  match vm.Vm.trace with
  | Some s -> Trace.emit_compare s ~cost:!(vm.Vm.cost) ~app:a ~rep:b ~len:n
  | None -> ()

(** Check the NUL-terminated string at [a] against its replica (the
    Figure 2.11 [assert(strcmp(src, src_r) == 0)]). *)
let check_cstr vm what a a_r =
  let n = Extern.cstring_len vm a in
  check_bytes vm what a a_r (n + 1)

(** Copy [n] application bytes to replica memory (a mimicked store: under
    both designs non-pointer bytes are stored identically; under SDS even
    pointer bytes are identical). *)
let mirror vm ~app ~rep n =
  Vm.add_cost vm ((n / 4) + 2);
  (match vm.Vm.trace with
  | Some s -> Trace.emit_mirror s ~cost:!(vm.Vm.cost) ~app ~rep ~len:n
  | None -> ());
  Mem.move vm.Vm.mem ~dst:rep ~src:app n

(* ------------------------------------------------------------------ *)
(* Individual wrappers                                                 *)
(* ------------------------------------------------------------------ *)

let w_print_int _mode vm args =
  Extern.out vm (Int64.to_string (Vm.as_int (List.hd args)));
  None

let w_print_float _mode vm args =
  Extern.out vm (Printf.sprintf "%.6g" (Vm.as_float (List.hd args)));
  None

let w_putchar _mode vm args =
  Extern.out vm (String.make 1 (Char.chr (Int64.to_int (Vm.as_int (List.hd args)) land 0xFF)));
  None

let w_print_newline _mode vm _args =
  Extern.out vm "\n";
  None

let w_exit _mode _vm args = raise (Vm.Exit_program (Int64.to_int (Vm.as_int (List.hd args))))
let w_abort _mode _vm _args = raise (Vm.Exit_program 134)

let w_print_str mode vm args =
  let s = mk mode args in
  let p, p_r, _ = pointer s in
  check_cstr vm "print_str" p p_r;
  Extern.out vm (Extern.read_cstring vm p);
  None

let w_strlen mode vm args =
  let s = mk mode args in
  let p, p_r, _ = pointer s in
  check_cstr vm "strlen" p p_r;
  Some (Vm.I (Int64.of_int (Extern.cstring_len vm p)))

(* Figure 2.11's wrapper, faithfully: check src, run strcpy, mimic the
   write to dest_r, return the ROP/NSOP of dest through rvSop. *)
let w_strcpy mode vm args =
  let s = mk mode args in
  let chan = rv_channel s in
  let dest, dest_r, dest_s = pointer s in
  let src, src_r, _src_s = pointer s in
  check_cstr vm "strcpy:src" src src_r;
  let len = Extern.impl_strcpy vm ~dst:dest ~src in
  mirror vm ~app:dest ~rep:dest_r (len + 1);
  set_rv vm s chan ~rop:dest_r ~nsop:dest_s;
  Some (Vm.I dest)

(* strcmp emulates the comparison itself so it knows exactly how many
   bytes of each input were read (§3.1.5) — there is no guarantee the
   strings are NUL-terminated past the first difference. *)
let w_strcmp mode vm args =
  let s = mk mode args in
  let a, a_r, _ = pointer s in
  let b, b_r, _ = pointer s in
  let r, read = Extern.impl_strcmp vm a b in
  check_bytes vm "strcmp:a" a a_r read;
  check_bytes vm "strcmp:b" b b_r read;
  Some (Vm.I (Int64.logand (Int64.of_int r) 0xFFFFFFFFL))

(* atoi compares only as much of the input string as its parse consumed
   (§3.1.5's atof discussion). *)
let w_atoi mode vm args =
  let s = mk mode args in
  let p, p_r, _ = pointer s in
  let v, consumed = Extern.impl_atoi vm p in
  check_bytes vm "atoi" p p_r consumed;
  Some (Vm.I (Int64.logand v 0xFFFFFFFFL))

(** Unpack the memcpy/memmove sdwSize parameter: (shadow elem size << 16)
    | elem size, or 0 when the copied data has no shadow. *)
let sdw_scale packed n =
  if Int64.equal packed 0L then 0
  else
    let ssz = Int64.to_int (Int64.shift_right_logical packed 16) in
    let esz = Int64.to_int (Int64.logand packed 0xFFFFL) in
    if esz = 0 then 0 else n / esz * ssz

let w_memcpy mode vm args =
  let s = mk mode args in
  let packed = match mode with Config.Sds -> scalar s | Config.Mds -> 0L in
  let chan = rv_channel s in
  let dest, dest_r, dest_s = pointer s in
  let src, src_r, src_s = pointer s in
  let n = Int64.to_int (scalar s) in
  (match mode with
  | Config.Sds ->
      (* under SDS all bytes are comparable, pointers included *)
      check_bytes vm "memcpy:src" src src_r n;
      Extern.impl_memcpy vm ~dst:dest ~src n;
      mirror vm ~app:dest ~rep:dest_r n;
      let sn = sdw_scale packed n in
      if sn > 0 then Mem.move vm.Vm.mem ~dst:dest_s ~src:src_s sn
  | Config.Mds ->
      (* replica mirrors replica: pointer cells hold ROPs there (§4.3) *)
      Extern.impl_memcpy vm ~dst:dest ~src n;
      Extern.impl_memcpy vm ~dst:dest_r ~src:src_r n);
  set_rv vm s chan ~rop:dest_r ~nsop:dest_s;
  Some (Vm.I dest)

let w_memset mode vm args =
  let s = mk mode args in
  let chan = rv_channel s in
  let dest, dest_r, dest_s = pointer s in
  let byte = Int64.to_int (scalar s) in
  let n = Int64.to_int (scalar s) in
  Extern.impl_memset vm dest byte n;
  Extern.impl_memset vm dest_r byte n;
  set_rv vm s chan ~rop:dest_r ~nsop:dest_s;
  Some (Vm.I dest)

(* qsort: sort application, replica and shadow regions with the same
   permutation; the comparator is the *transformed* comparison function,
   so it is called with the augmented (a, a_r[, a_s], b, b_r[, b_s])
   argument list of Figure 3.3, and its own load checks fire on the
   scratch copies we pass it. *)
let w_qsort mode vm args =
  let s = mk mode args in
  let sdw_elem = match mode with Config.Sds -> Int64.to_int (scalar s) | Config.Mds -> 0 in
  let base, base_r, base_s = pointer s in
  let nmemb = Int64.to_int (scalar s) in
  let size = Int64.to_int (scalar s) in
  let cmp, _cmp_r, _cmp_s = pointer s in
  let cmp_name =
    match Hashtbl.find_opt vm.Vm.addr_fun cmp with
    | Some n -> n
    | None -> raise (Mem.Fault (Mem.Unmapped cmp))
  in
  let read_at region i sz = Mem.read_bytes vm.Vm.mem (Int64.add region (Int64.of_int (i * sz))) sz in
  let app = Array.init nmemb (fun i -> read_at base i size) in
  let rep = Array.init nmemb (fun i -> read_at base_r i size) in
  let shd =
    if sdw_elem > 0 then Some (Array.init nmemb (fun i -> read_at base_s i sdw_elem))
    else None
  in
  (* scratch element copies the comparator dereferences *)
  let sa = Allocator.malloc vm.Vm.alloc size and sb = Allocator.malloc vm.Vm.alloc size in
  let ra = Allocator.malloc vm.Vm.alloc size and rb = Allocator.malloc vm.Vm.alloc size in
  let ha, hb =
    if sdw_elem > 0 then
      (Allocator.malloc vm.Vm.alloc sdw_elem, Allocator.malloc vm.Vm.alloc sdw_elem)
    else (0L, 0L)
  in
  let idx = Array.init nmemb (fun i -> i) |> Array.to_list in
  let compare_idx i j =
    Vm.add_cost vm 10;
    Mem.write_bytes vm.Vm.mem sa app.(i) 0 size;
    Mem.write_bytes vm.Vm.mem sb app.(j) 0 size;
    Mem.write_bytes vm.Vm.mem ra rep.(i) 0 size;
    Mem.write_bytes vm.Vm.mem rb rep.(j) 0 size;
    (match shd with
    | Some sh ->
        Mem.write_bytes vm.Vm.mem ha sh.(i) 0 sdw_elem;
        Mem.write_bytes vm.Vm.mem hb sh.(j) 0 sdw_elem
    | None -> ());
    let cargs =
      match mode with
      | Config.Sds -> [ Vm.I sa; Vm.I ra; Vm.I ha; Vm.I sb; Vm.I rb; Vm.I hb ]
      | Config.Mds -> [ Vm.I sa; Vm.I ra; Vm.I sb; Vm.I rb ]
    in
    match Vm.call_function vm cmp_name cargs with
    | Some (Vm.I r) -> Int64.to_int (Vm.sign_extend Dpmr_ir.Types.W32 r)
    | _ -> raise (Vm.Vm_error "qsort comparator did not return an int")
  in
  let sorted = List.stable_sort compare_idx idx in
  List.iteri
    (fun newpos oldpos ->
      Mem.write_bytes vm.Vm.mem (Int64.add base (Int64.of_int (newpos * size))) app.(oldpos) 0 size;
      Mem.write_bytes vm.Vm.mem (Int64.add base_r (Int64.of_int (newpos * size))) rep.(oldpos) 0 size;
      match shd with
      | Some sh ->
          Mem.write_bytes vm.Vm.mem
            (Int64.add base_s (Int64.of_int (newpos * sdw_elem)))
            sh.(oldpos) 0 sdw_elem
      | None -> ())
    sorted;
  List.iter (Allocator.free vm.Vm.alloc)
    (List.filter (fun a -> not (Int64.equal a 0L)) [ sa; sb; ra; rb; ha; hb ]);
  Vm.add_cost vm (nmemb * (size / 8) * 4);
  None

(* calloc/realloc: heap management through external code.  The wrappers
   allocate and maintain replica memory; the allocated memory is typed as
   bytes, so its shadow is null (storing pointers into it falls under the
   §2.9 typing restrictions, or the Chapter 5 scope expansion). *)
let w_calloc mode vm args =
  let s = mk mode args in
  let chan = rv_channel s in
  let n = Int64.to_int (scalar s) in
  let size = Int64.to_int (scalar s) in
  let bytes = max 1 (n * size) in
  Vm.add_cost vm (2 * Extern.dpmr_vm_cost_calloc bytes);
  let p = Allocator.malloc vm.Vm.alloc bytes in
  Mem.fill vm.Vm.mem p bytes 0;
  let p_r = Allocator.malloc vm.Vm.alloc bytes in
  Mem.fill vm.Vm.mem p_r bytes 0;
  set_rv vm s chan ~rop:p_r ~nsop:0L;
  Some (Vm.I p)

let w_realloc mode vm args =
  let s = mk mode args in
  let chan = rv_channel s in
  let p, p_r, _p_s = pointer s in
  let n = Int64.to_int (scalar s) in
  (* load check: the preserved prefix is read by realloc *)
  if not (Int64.equal p 0L) then begin
    let keep = min (Allocator.usable_size vm.Vm.alloc p) (max 1 n) in
    check_bytes vm "realloc:prefix" p p_r keep
  end;
  (* both copies preserve their own prefixes — replica content mirrors by
     construction (and under MDS may legitimately differ at pointer
     cells, which byte-typed memory must not contain anyway) *)
  let q = Extern.impl_realloc vm p n in
  let q_r = Extern.impl_realloc vm p_r n in
  set_rv vm s chan ~rop:q_r ~nsop:0L;
  Some (Vm.I q)

(* printf: the variable-length argument list arrives with original values
   in place and (ROP[, NSOP]) groups appended at the end (§3.1.2).  The
   wrapper parses the format string to find which variadic arguments are
   dereferenced pointers, and load-checks exactly those (§3.1.5). *)
let w_printf mode vm args =
  let s = mk mode args in
  let fmt, fmt_r, _ = pointer s in
  check_cstr vm "printf:fmt" fmt fmt_r;
  let rest = Array.of_list s.rest in
  let per = match mode with Config.Sds -> 3 | Config.Mds -> 2 in
  let n_var = Array.length rest / per in
  let vapp = Array.sub rest 0 n_var in
  let rendered, string_reads = Extern.impl_printf vm fmt vapp in
  List.iter
    (fun (idx, addr, len) ->
      let rop = Vm.as_int rest.(n_var + (idx * (per - 1))) in
      check_bytes vm "printf:%s-arg" addr rop len)
    string_reads;
  Extern.out vm rendered;
  Some (Vm.I (Int64.of_int (String.length rendered)))

(* ------------------------------------------------------------------ *)
(* argv replication (§3.1.1, Figure 3.1)                               *)
(* ------------------------------------------------------------------ *)

let read_argv vm argc argv =
  List.init argc (fun i -> Mem.read_int vm.Vm.mem (Int64.add argv (Int64.of_int (8 * i))) 8)

let replicate_string vm p =
  let n = Extern.cstring_len vm p + 1 in
  let r = Allocator.malloc vm.Vm.alloc n in
  Mem.move vm.Vm.mem ~dst:r ~src:p n;
  r

let w_argv_r mode vm args =
  let argc = Int64.to_int (Vm.as_int (List.hd args)) in
  let argv = Vm.as_int (List.nth args 1) in
  let ptrs = read_argv vm argc argv in
  let arr = Allocator.malloc vm.Vm.alloc (max 8 (8 * argc)) in
  List.iteri
    (fun i p ->
      let v =
        match mode with
        | Config.Sds -> p (* comparable pointers: identical values *)
        | Config.Mds -> replicate_string vm p
      in
      Mem.write_int vm.Vm.mem (Int64.add arr (Int64.of_int (8 * i))) 8 v)
    ptrs;
  Some (Vm.I arr)

let w_argv_s _mode vm args =
  let argc = Int64.to_int (Vm.as_int (List.hd args)) in
  let argv = Vm.as_int (List.nth args 1) in
  let ptrs = read_argv vm argc argv in
  (* array of {ROP; NSOP} pairs: ROP -> replica of the i-th argument,
     NSOP -> null (char data has no shadow) *)
  let arr = Allocator.malloc vm.Vm.alloc (max 16 (16 * argc)) in
  List.iteri
    (fun i p ->
      let rep = replicate_string vm p in
      Mem.write_int vm.Vm.mem (Int64.add arr (Int64.of_int (16 * i))) 8 rep;
      Mem.write_int vm.Vm.mem (Int64.add arr (Int64.of_int ((16 * i) + 8))) 8 0L)
    ptrs;
  Some (Vm.I arr)

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

(** Register every wrapper into [vm] for the given design. *)
let register ~mode vm =
  let reg name f = Vm.register_extern vm (name ^ "_efw") (f mode) in
  reg "print_int" w_print_int;
  reg "print_float" w_print_float;
  reg "putchar" w_putchar;
  reg "print_newline" w_print_newline;
  reg "exit" w_exit;
  reg "abort" w_abort;
  reg "print_str" w_print_str;
  reg "strlen" w_strlen;
  reg "strcpy" w_strcpy;
  reg "strcmp" w_strcmp;
  reg "atoi" w_atoi;
  reg "memcpy" w_memcpy;
  reg "memmove" w_memcpy;
  reg "memset" w_memset;
  reg "qsort" w_qsort;
  reg "printf" w_printf;
  reg "calloc" w_calloc;
  reg "realloc" w_realloc;
  Vm.register_extern vm "__dpmr_argv_r" (w_argv_r mode);
  Vm.register_extern vm "__dpmr_argv_s" (w_argv_s mode)
