(** Top-level DPMR driver: transform a program and run it with the full
    runtime (base libc + external function wrappers) registered. *)

module Vm = Dpmr_vm.Vm
module Extern = Dpmr_vm.Extern
module Outcome = Dpmr_vm.Outcome

exception Unsupported = Transform.Unsupported

(** [transform cfg prog] returns the DPMR-instrumented program; [prog] is
    not modified. *)
let transform = Transform.transform

(** Create a VM for an *untransformed* program (golden / fi-stdapp).
    [lowered] lets callers that run the same program repeatedly lower it
    once (see {!Vm.create}). *)
let vm_plain ?seed ?budget ?lowered prog =
  let vm = Vm.create ?seed ?budget ?lowered prog in
  Extern.register_base vm;
  vm

(** Create a VM for a *transformed* program: base externs plus the
    external function wrappers for the given design. *)
let vm_dpmr ?seed ?budget ?lowered ~mode ?replicas prog =
  let vm = Vm.create ?seed ?budget ?lowered prog in
  Extern.register_base vm;
  Ext_wrappers.register ~mode ?replicas vm;
  vm

(** Convenience: run [prog] untransformed. *)
let run_plain ?seed ?budget ?args ?lowered prog =
  Vm.run ?args (vm_plain ?seed ?budget ?lowered prog)

(** Run an {e already-transformed} program with the design's wrappers —
    the repeat-run path: callers transform (and lower) once, then run per
    seed. *)
let run_transformed ?seed ?budget ?args ?lowered ~mode ?replicas tp =
  Vm.run ?args (vm_dpmr ?seed ?budget ?lowered ~mode ?replicas tp)

(** Convenience: transform [prog] under [cfg] and run it. *)
let run_dpmr ?seed ?budget ?args (cfg : Config.t) prog =
  run_transformed ?seed ?budget ?args ~mode:cfg.Config.mode
    ~replicas:cfg.Config.replicas (transform cfg prog)

(** {1 Snapshot/fork campaign execution} *)

(** Run an untransformed program watched for a whole group (see
    {!Vm.run_watched}): one copy-on-write snapshot per member, captured
    at that member's own divergence frontier. *)
let watched_plain ?seed ?budget ?args ?lowered prog limitss =
  Vm.run_watched ?args (vm_plain ?seed ?budget ?lowered prog) limitss

(** Same for an already-transformed program. *)
let watched_transformed ?seed ?budget ?args ?lowered ~mode ?replicas tp limitss =
  Vm.run_watched ?args (vm_dpmr ?seed ?budget ?lowered ~mode ?replicas tp) limitss

(** Fork an untransformed program from a snapshot: build its VM, swap in
    the captured state, run to completion.  Bit-identical to
    {!run_plain} with the same seed. *)
let resume_plain ?seed ?budget ?lowered ?remap prog snap =
  Vm.resume ?remap (vm_plain ?seed ?budget ?lowered prog) snap

(** Same for an already-transformed program vs {!run_transformed}. *)
let resume_transformed ?seed ?budget ?lowered ?remap ~mode ?replicas tp snap =
  Vm.resume ?remap (vm_dpmr ?seed ?budget ?lowered ~mode ?replicas tp) snap
