(** Top-level DPMR driver: transform a program and run it with the full
    runtime (base libc + external function wrappers) registered. *)

module Vm = Dpmr_vm.Vm
module Extern = Dpmr_vm.Extern
module Outcome = Dpmr_vm.Outcome

exception Unsupported = Transform.Unsupported

(** [transform cfg prog] returns the DPMR-instrumented program; [prog] is
    not modified. *)
let transform = Transform.transform

(** Create a VM for an *untransformed* program (golden / fi-stdapp).
    [lowered] lets callers that run the same program repeatedly lower it
    once (see {!Vm.create}). *)
let vm_plain ?seed ?budget ?lowered prog =
  let vm = Vm.create ?seed ?budget ?lowered prog in
  Extern.register_base vm;
  vm

(** Create a VM for a *transformed* program: base externs plus the
    external function wrappers for the given design. *)
let vm_dpmr ?seed ?budget ?lowered ~mode prog =
  let vm = Vm.create ?seed ?budget ?lowered prog in
  Extern.register_base vm;
  Ext_wrappers.register ~mode vm;
  vm

(** Convenience: run [prog] untransformed. *)
let run_plain ?seed ?budget ?args ?lowered prog =
  Vm.run ?args (vm_plain ?seed ?budget ?lowered prog)

(** Run an {e already-transformed} program with the design's wrappers —
    the repeat-run path: callers transform (and lower) once, then run per
    seed. *)
let run_transformed ?seed ?budget ?args ?lowered ~mode tp =
  Vm.run ?args (vm_dpmr ?seed ?budget ?lowered ~mode tp)

(** Convenience: transform [prog] under [cfg] and run it. *)
let run_dpmr ?seed ?budget ?args (cfg : Config.t) prog =
  run_transformed ?seed ?budget ?args ~mode:cfg.Config.mode (transform cfg prog)
