(** State comparison policies (§2.7, Table 2.9).

    A *load check* performs the replica load and compares it with the
    application load; the policies tune how often checks run:

    - [All_loads] — every load is replicated and compared;
    - [Temporal mask] — a rolling 64-bit mask counter gates each check at
      runtime (Table 2.9);
    - [Static fraction] — each load site keeps or drops its check at
      compile time with the given probability. *)

open Dpmr_ir
open Dpmr_memsim
open Types
open Inst

type state = {
  mask_counter : string option;  (** global i32 for temporal checking *)
  rng : Rng.t;  (** compile-time coin flips for static checking *)
}

let mask_counter_name = "__dpmr_mask_counter"

let prepare (p : Config.policy) seed (dst : Prog.t) =
  let rng = Rng.create seed in
  match p with
  | Config.Temporal _ ->
      Prog.add_global dst
        { Prog.gname = mask_counter_name; gty = i32; ginit = Prog.Gint 0L };
      { mask_counter = Some mask_counter_name; rng }
  | Config.All_loads | Config.Static _ -> { mask_counter = None; rng }

(** Load one replica value and compare it with the application value,
    yielding the equality operand. *)
let emit_eq (b : Builder.t) ty app_val rep_addr =
  let rep_val = Builder.load b ~name:"chk" ty rep_addr in
  match ty with
  | Float -> Builder.fcmp b Foeq app_val rep_val
  | Int w -> Builder.icmp b Ieq w app_val rep_val
  | Ptr _ ->
      let a = Builder.ptr_to_int b app_val in
      let r = Builder.ptr_to_int b rep_val in
      Builder.icmp b Ieq W64 a r
  | _ -> invalid_arg "Policy.emit_compare: non-scalar load"

(** Emit the comparison itself: load the replica value, compare it with
    the application value, branch to [detect_label] on mismatch. *)
let emit_compare (b : Builder.t) ty app_val rep_addr detect_label =
  let eq = emit_eq b ty app_val rep_addr in
  let cont = Builder.new_block b "chk.ok" in
  Builder.cbr b eq cont.Func.label detect_label;
  Builder.position b cont

(** Emit the N-replica vote for one load site.  A single replica address
    emits exactly the dissertation's compare-and-branch under either
    rule; [Any_mismatch] chains per-replica compares, each branching
    straight to detection; [Majority] accumulates a mismatch count and
    detects only when more than N/2 replicas disagree. *)
let emit_vote (vote : Config.vote) (b : Builder.t) ty app_val rep_addrs
    detect_label =
  match (rep_addrs, vote) with
  | [], _ -> ()
  | [ one ], _ -> emit_compare b ty app_val one detect_label
  | addrs, Config.Any_mismatch ->
      List.iter (fun a -> emit_compare b ty app_val a detect_label) addrs
  | addrs, Config.Majority ->
      let n = List.length addrs in
      let count =
        List.fold_left
          (fun acc a ->
            let eq = emit_eq b ty app_val a in
            let miss =
              Builder.select b ~name:"miss" i64 eq (Builder.i64c 0)
                (Builder.i64c 1)
            in
            Builder.add b ~name:"votes" W64 acc miss)
          (Builder.i64c 0) addrs
      in
      let over =
        Builder.icmp b ~name:"maj" Isgt W64 count (Builder.i64c (n / 2))
      in
      let cont = Builder.new_block b "vote.ok" in
      Builder.cbr b over detect_label cont.Func.label;
      Builder.position b cont

(** Emit the (possibly gated) load check for one load site across the N
    replica addresses.  Returns [true] if any check code was emitted
    (used by tests and statistics). *)
let emit_check state (p : Config.policy) (vote : Config.vote) (b : Builder.t)
    ty app_val rep_addrs detect_label =
  match p with
  | Config.All_loads ->
      emit_vote vote b ty app_val rep_addrs detect_label;
      true
  | Config.Static fraction ->
      if Rng.float state.rng < fraction then begin
        emit_vote vote b ty app_val rep_addrs detect_label;
        true
      end
      else false
  | Config.Temporal mask ->
      (* Table 2.9: the check runs iff bit [maskCounter] of [mask] is set
         [mask shifted left by 64 - c - 1, then logically right by 63],
         and maskCounter advances to [maskCounter + 1 mod 64].  The mask
         gates the whole vote, so each site still advances the counter
         exactly once regardless of N. *)
      let counter = Global (Option.get state.mask_counter) in
      let c = Builder.load b ~name:"mc" i32 counter in
      let c64 = Builder.int_cast b ~signed:false W64 c in
      let shift = Builder.sub b W64 (Builder.i64c 63) c64 in
      let shifted = Builder.binop b Shl W64 (Cint (W64, mask)) shift in
      let bit = Builder.binop b Lshr W64 shifted (Builder.i64c 63) in
      Builder.if_ b bit (fun () ->
          emit_vote vote b ty app_val rep_addrs detect_label);
      let c1 = Builder.add b W32 c (Builder.i32c 1) in
      let cm = Builder.srem b W32 c1 (Builder.i32c 64) in
      Builder.store b i32 cm counter;
      true
