(** Rx-style recovery on top of DPMR detection (§1.5, Chapter 6): on a
    DPMR detection, re-execute from the initial state in a diversified
    environment — escalating program-wide heap padding — until a run
    completes cleanly. *)

open Dpmr_ir

(** Clone the program with every heap request padded by at least the
    given number of bytes. *)
val pad_heap_requests : Prog.t -> int -> Prog.t

type recovery_result = {
  first : Dpmr_vm.Outcome.run;  (** the original (detecting) run *)
  final : Dpmr_vm.Outcome.run;  (** the last run performed *)
  recovered_with : int option;  (** padding that produced a clean run *)
  attempts : int;
}

val run_with_recovery :
  ?seed:int64 ->
  ?budget:int64 ->
  ?args:string list ->
  Config.t ->
  Prog.t ->
  escalation:int list ->
  recovery_result
