(** Rx-style recovery on top of DPMR detection (§1.5, Chapter 6): on a
    DPMR detection, re-execute from the initial state in a diversified
    environment — escalating program-wide heap padding — until a run
    completes cleanly. *)

open Dpmr_ir

(** Clone the program with every heap request padded by at least the
    given number of bytes. *)
val pad_heap_requests : Prog.t -> int -> Prog.t

(** An Rx environment change: program-wide heap padding, or a registered
    N-version diversity family applied as a whole-program rewrite. *)
type env_change = Pad of int | Family of string

val env_change_name : env_change -> string

(** Apply an environment change to a (cloned) program; [None] when the
    change is inapplicable — unregistered family, or a family with no
    whole-program rewrite.  Inapplicable escalation steps are skipped
    by {!run_with_recovery} without counting as attempts. *)
val apply_env_change : Prog.t -> seed:int64 -> env_change -> Prog.t option

type recovery_result = {
  first : Dpmr_vm.Outcome.run;  (** the original (detecting) run *)
  final : Dpmr_vm.Outcome.run;  (** the last run performed *)
  recovered_with : env_change option;
      (** environment change that produced a clean run *)
  attempts : int;
}

val run_with_recovery :
  ?seed:int64 ->
  ?budget:int64 ->
  ?args:string list ->
  Config.t ->
  Prog.t ->
  escalation:env_change list ->
  recovery_result
