(** The DPMR code transformation engine.

    One parameterized engine implements both designs: Shadow Data
    Structures (Tables 2.6/2.7) and Mirrored Data Structures (Tables
    4.3/4.4).  The two differ only where the tables differ — shadow
    object allocation and addressing, pointer load/store mirroring, and
    the γ()/π() argument expansions — so those points branch on
    [cfg.mode]; everything else is shared.

    Inputs are never mutated: the engine reads the source program and
    builds a fresh program (with a copied, extended type environment). *)

open Dpmr_ir
open Types
open Inst

exception Unsupported of string
(** Raised when the input program violates the design's restrictions
    (§2.9 for SDS, §4.4 for MDS) — e.g. an int-to-pointer cast. *)

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

let is_intrinsic name =
  String.length name >= 2
  && (String.sub name 0 (min 7 (String.length name)) = "__dpmr_"
     || String.sub name 0 (min 5 (String.length name)) = "__fi_")

(** New-register group for an original register: the application register
    plus one replica register per replica ([reps] is empty for
    non-pointers) and the SDS shadow register.  With N = 1 this is the
    dissertation's (x, xr, xs) triple. *)
type triple = { app : reg; reps : reg array; shd : reg option }

type env = {
  cfg : Config.t;
  stx : Shadow_type.t;
  src : Prog.t;
  dst : Prog.t;
  pol : Policy.state;
  div : Diversity.state;
  nrep : int;  (** replica count N (>= 1) *)
  fams : Diversity_family.instance list;
      (** resolved N-version diversity families, hook order = config order *)
  asite : int ref;  (** global heap-allocation-site counter (family seeding) *)
  excluded : string -> reg -> bool;
      (** Chapter 5 scope refinement: accesses through excluded registers
          (memory DSA cannot vouch for) keep their original behaviour and
          are left out of replication.  Always [false] without DSA. *)
}

let rep_global g = g ^ ".rep"

(** Replica [k]'s global name: replica 0 keeps the paper's [".rep"]
    suffix; extras are numbered from 2. *)
let rep_global_k g k =
  if k = 0 then rep_global g else Printf.sprintf "%s.rep%d" g (k + 1)

let shd_global g = g ^ ".sdw"

(** Replica [k]'s register suffix for parameter/register names. *)
let rep_suffix k = if k = 0 then "_r" else Printf.sprintf "_r%d" (k + 1)

let efw_name n = n ^ "_efw"

let map_fun_name env n =
  if n = "main" then "mainAug"
  else if Prog.has_func env.src n then n
  else if is_intrinsic n then n
  else efw_name n

(* ------------------------------------------------------------------ *)
(* Global variables                                                    *)
(* ------------------------------------------------------------------ *)

(** Shadow initializer for a global of type [ty] with initializer [g]:
    keeps only pointer positions, each becoming an {ROP_1..ROP_N; NSOP}
    group ({ROP; NSOP} pair at N = 1; §2.8: replica/shadow memory for
    globals is statically initialized). *)
let rec shadow_ginit env ty (g : Prog.ginit) : Prog.ginit option =
  let tenv = env.dst.Prog.tenv in
  let pair rop nsop =
    Prog.Gagg (List.init env.nrep (fun _ -> rop) @ [ nsop ])
  in
  match ty with
  | Int _ | Float | Void | Fun _ -> None
  | Ptr _ -> (
      if Shadow_type.sat env.stx ty = None then None
      else
        match g with
        | Prog.Gptr_null | Prog.Gzero -> Some (pair Prog.Gptr_null Prog.Gptr_null)
        | Prog.Gptr_fun f ->
            (* address-of-function rule: ROP = same address, NSOP = null *)
            Some (pair (Prog.Gptr_fun f) Prog.Gptr_null)
        | Prog.Gptr_global target ->
            let target_has_shadow =
              Shadow_type.sat env.stx (Prog.global_ty env.src target) <> None
            in
            let nsop =
              if target_has_shadow then Prog.Gptr_global (shd_global target)
              else Prog.Gptr_null
            in
            Some (pair (Prog.Gptr_global target) nsop)
        | _ -> unsupported "global pointer cell with non-pointer initializer")
  | Arr (e, n) -> (
      match Shadow_type.sat env.stx ty with
      | None -> None
      | Some _ -> (
          match g with
          | Prog.Gzero -> Some Prog.Gzero
          | Prog.Gagg elems ->
              Some (Prog.Gagg (List.filter_map (shadow_ginit env e) elems))
          | _ ->
              ignore n;
              unsupported "array global with scalar initializer"))
  | Struct sname | Union sname -> (
      match Shadow_type.sat env.stx ty with
      | None -> None
      | Some _ -> (
          match g with
          | Prog.Gzero -> Some Prog.Gzero
          | Prog.Gagg elems ->
              let fields = Tenv.fields tenv sname in
              Some
                (Prog.Gagg
                   (List.concat
                      (List.map2
                         (fun fty fi ->
                           match shadow_ginit env fty fi with
                           | Some s -> [ s ]
                           | None -> [])
                         fields elems)))
          | _ -> unsupported "aggregate global with scalar initializer"))

(** SDS replica initializer: identical to the application initializer —
    stored pointer values are the same in both (Figure 2.3).  MDS replica
    [k]'s pointers point at replica [k]'s objects instead (Figure 2.2). *)
let rec replica_ginit env k ty (g : Prog.ginit) : Prog.ginit =
  match env.cfg.Config.mode with
  | Config.Sds -> g
  | Config.Mds -> (
      match (ty, g) with
      | Ptr _, Prog.Gptr_global target ->
          if Prog.has_global env.src target then
            Prog.Gptr_global (rep_global_k target k)
          else g
      | (Arr (e, _) | Ptr e), Prog.Gagg elems ->
          Prog.Gagg (List.map (replica_ginit env k e) elems)
      | (Struct sname | Union sname), Prog.Gagg elems ->
          let fields = Tenv.fields env.dst.Prog.tenv sname in
          Prog.Gagg (List.map2 (replica_ginit env k) fields elems)
      | _ -> g)

let transform_globals env =
  Prog.iter_globals env.src (fun g ->
      let aug_ty = Shadow_type.at env.stx g.Prog.gty in
      Prog.add_global env.dst { Prog.gname = g.Prog.gname; gty = aug_ty; ginit = g.Prog.ginit };
      for k = 0 to env.nrep - 1 do
        Prog.add_global env.dst
          {
            Prog.gname = rep_global_k g.Prog.gname k;
            gty = aug_ty;
            ginit = replica_ginit env k g.Prog.gty g.Prog.ginit;
          }
      done;
      if env.cfg.Config.mode = Config.Sds then
        match Shadow_type.sat env.stx g.Prog.gty with
        | Some sdw_ty ->
            let sinit =
              match shadow_ginit env g.Prog.gty g.Prog.ginit with
              | Some s -> s
              | None -> Prog.Gzero
            in
            Prog.add_global env.dst
              { Prog.gname = shd_global g.Prog.gname; gty = sdw_ty; ginit = sinit }
        | None -> ())

(* ------------------------------------------------------------------ *)
(* Function signatures                                                 *)
(* ------------------------------------------------------------------ *)

(** γ()-expanded parameter list plus the π() return-value parameter. *)
let augment_params env (f : Func.t) =
  let rv_extra =
    match (f.Func.ret, env.cfg.Config.mode) with
    | Ptr _, Config.Sds ->
        [ ("rvSop", Ptr (Option.get (Shadow_type.sat env.stx f.Func.ret))) ]
    | Ptr _, Config.Mds -> [ ("rvRopPtr", Ptr (Shadow_type.at env.stx f.Func.ret)) ]
    | _ -> []
  in
  let expand (r, ty) =
    let name = Func.reg_name f r in
    match ty with
    | Ptr pointee ->
        let aug = Shadow_type.at env.stx ty in
        let base =
          (name, aug)
          :: List.init env.nrep (fun k -> (name ^ rep_suffix k, aug))
        in
        if env.cfg.Config.mode = Config.Sds then
          base @ [ (name ^ "_s", Shadow_type.shadow_reg_ty env.stx pointee) ]
        else base
    | _ -> [ (name, Shadow_type.at env.stx ty) ]
  in
  rv_extra @ List.concat_map expand f.Func.params

(* ------------------------------------------------------------------ *)
(* Function bodies                                                     *)
(* ------------------------------------------------------------------ *)

type fn_ctx = {
  env : env;
  sf : Func.t;  (** source function *)
  df : Func.t;  (** destination function *)
  triples : (reg, triple) Hashtbl.t;
  rv_param : reg option;  (** rvSop / rvRopPtr parameter of [df] *)
  mutable detect_label : string option;
  mutable site : int;
  rv_slots : (ty, reg) Hashtbl.t;
      (** per-type rvSop/rvRopPtr stack slots, hoisted to the entry block
          so call sites in loops do not grow the stack *)
  mutable entry_allocas : inst list;
}

(** A stack slot for a call-site return channel, allocated once per
    function in the entry block and reused across call sites.  [count]
    (default 1) sizes the slot: MDS with N > 1 returns N ROPs through
    an N-element rvRopPtr buffer. *)
let rv_slot c ?(count = 1) ty =
  match Hashtbl.find_opt c.rv_slots ty with
  | Some r -> Reg r
  | None ->
      let r = Func.fresh_reg c.df ~name:"rvslot" (Ptr ty) in
      c.entry_allocas <-
        Alloca (r, ty, Cint (W64, Int64.of_int count)) :: c.entry_allocas;
      Hashtbl.replace c.rv_slots ty r;
      Reg r

let sds c = c.env.cfg.Config.mode = Config.Sds

(** Allocate destination registers for every source register. *)
let make_triples env (sf : Func.t) (df : Func.t) rv_param_count =
  let triples = Hashtbl.create 32 in
  (* parameters first: their destination registers are the declared params *)
  let dparams = Array.of_list (List.map fst df.Func.params) in
  let cursor = ref rv_param_count in
  List.iter
    (fun (r, ty) ->
      match ty with
      | Ptr _ ->
          let app = dparams.(!cursor) in
          let reps = Array.init env.nrep (fun k -> dparams.(!cursor + 1 + k)) in
          let shd =
            if env.cfg.Config.mode = Config.Sds then
              Some dparams.(!cursor + 1 + env.nrep)
            else None
          in
          cursor :=
            !cursor + 1 + env.nrep
            + (if env.cfg.Config.mode = Config.Sds then 1 else 0);
          Hashtbl.replace triples r { app; reps; shd }
      | _ ->
          Hashtbl.replace triples r { app = dparams.(!cursor); reps = [||]; shd = None };
          incr cursor)
    sf.Func.params;
  (* remaining registers *)
  Hashtbl.iter
    (fun r ty ->
      if not (Hashtbl.mem triples r) then
        let name = Func.reg_name sf r in
        match ty with
        | Ptr pointee ->
            let aug = Shadow_type.at env.stx ty in
            let app = Func.fresh_reg df ~name aug in
            let reps =
              Array.init env.nrep (fun k ->
                  Func.fresh_reg df ~name:(name ^ rep_suffix k) aug)
            in
            let shd =
              if env.cfg.Config.mode = Config.Sds then
                Some
                  (Func.fresh_reg df ~name:(name ^ "_s")
                     (Shadow_type.shadow_reg_ty env.stx pointee))
              else None
            in
            Hashtbl.replace triples r { app; reps; shd }
        | _ ->
            let app = Func.fresh_reg df ~name (Shadow_type.at env.stx ty) in
            Hashtbl.replace triples r { app; reps = [||]; shd = None })
    sf.Func.reg_tys;
  triples

let triple_of c r =
  match Hashtbl.find_opt c.triples r with
  | Some t -> t
  | None -> unsupported "%s: register %d has no destination mapping" c.sf.Func.name r

(** Is [o] a register DSA excluded from replication? *)
let excl c (o : operand) =
  match o with Reg r -> c.env.excluded c.sf.Func.name r | _ -> false

(** Mark a pointer definition as unreplicated: its replica register takes
    the application value (and its shadow, if any, goes null).  Values
    flowing out of excluded memory stay consistent this way: replica
    stores of them write the application pointer, and dereferences of them
    are themselves excluded by the DSA reachability closure. *)
let set_unreplicated c b dst_reg =
  let t = triple_of c dst_reg in
  Array.iter
    (fun r -> Builder.emit b (Bitcast (r, Func.reg_ty c.df r, Reg t.app)))
    t.reps;
  match t.shd with
  | Some s -> Builder.emit b (Bitcast (s, Func.reg_ty c.df s, Null i8))
  | None -> ()

(** Map an operand to its (application, replicas, shadow) destination
    operands.  For non-pointer operands every replica = application
    (non-memory computation is not replicated, §2.1) and shadow is
    unused. *)
let map_operand c (o : operand) =
  let n = c.env.nrep in
  match o with
  | Reg r ->
      let t = triple_of c r in
      let reps =
        if Array.length t.reps = 0 then Array.make n (Reg t.app)
        else Array.map (fun r' -> Reg r') t.reps
      in
      let shd = match t.shd with Some s -> Reg s | None -> Null i8 in
      (Reg t.app, reps, shd)
  | Cint _ | Cfloat _ -> (o, Array.make n o, Null i8)
  | Null t ->
      let aug = Shadow_type.at c.env.stx t in
      (Null aug, Array.make n (Null aug), Null i8)
  | Global g ->
      let reps = Array.init n (fun k -> Global (rep_global_k g k)) in
      let shd =
        if sds c && Prog.has_global c.env.dst (shd_global g) then
          Global (shd_global g)
        else Null i8
      in
      (Global g, reps, shd)
  | Fun_addr fn ->
      (* address-of-function rule: ROP = same value, NSOP = null *)
      let fn' = map_fun_name c.env fn in
      (Fun_addr fn', Array.make n (Fun_addr fn'), Null i8)

let app_op c o = let a, _, _ = map_operand c o in a
let rep_ops c o = let _, r, _ = map_operand c o in r
let shd_op c o = let _, _, s = map_operand c o in s

(** The per-function detection block: [call __dpmr_detect(id); unreachable]. *)
let detect_label c (b : Builder.t) =
  match c.detect_label with
  | Some l -> l
  | None ->
      let blk = Func.add_block c.df "dpmr.detect" in
      let save = b.Builder.cur in
      Builder.position b blk;
      Builder.call0 b (Direct "__dpmr_detect") [ Builder.i64c c.site ];
      Builder.unreachable b;
      Builder.position b save;
      c.detect_label <- Some blk.Func.label;
      blk.Func.label

(** The [xs <- null] cases of Table 2.6, materialized as a cast into the
    shadow register (which keeps its declared type). *)
let set_shd_null c b (t : triple) =
  match t.shd with
  | Some s ->
      let ty = Func.reg_ty c.df s in
      Builder.emit b (Bitcast (s, ty, Null i8))
  | None -> ()

(** Pointee type of a source pointer register/operand (static type). *)
let src_pointee c o =
  match Prog.operand_ty c.env.src c.sf o with
  | Ptr t -> t
  | t -> unsupported "%s: expected pointer operand, got %a" c.sf.Func.name Types.pp t

(** Shadow struct name for pointer cells of (source) pointee type [t]:
    sat(Ptr t) is always an {ROP_1..ROP_N; NSOP} struct (a two-field
    {ROP; NSOP} pair at N = 1). *)
let pair_struct c cell_ty =
  match Shadow_type.sat c.env.stx (Ptr cell_ty) with
  | Some (Struct s) -> s
  | _ -> assert false

(** Compose the diversity families' per-site permutations of the replica
    emission order into one permutation of [0 .. n-1]. *)
let replica_order c ~site =
  let n = c.env.nrep in
  let order = Array.init n (fun i -> i) in
  List.fold_left
    (fun acc fam ->
      let p = fam.Diversity_family.i_order ~site ~n in
      Array.init n (fun i -> acc.(p.(i))))
    order c.env.fams

(* --- the per-instruction transformation (Tables 2.6/2.7, 4.3/4.4) --- *)

let transform_alloc c b ~heap dst_reg src_ty count =
  let t = triple_of c dst_reg in
  let aug = Shadow_type.at c.env.stx src_ty in
  let n_app = app_op c count in
  if heap then begin
    Builder.emit b (Malloc (t.app, aug, n_app));
    let site = !(c.env.asite) in
    c.env.asite := site + 1;
    (* replica allocations in the (family-permuted) emission order; each
       family may pad the request and surround it with dummy allocations *)
    Array.iter
      (fun k ->
        let extra =
          List.fold_left
            (fun acc f -> acc + f.Diversity_family.i_alloc_pad ~replica:k ~site)
            0 c.env.fams
        in
        let pres =
          List.map
            (fun f ->
              (f, f.Diversity_family.i_pre_alloc ~replica:k ~site b aug n_app))
            c.env.fams
        in
        let rep_val =
          Diversity.emit_replica_malloc c.env.div c.env.cfg.Config.diversity
            ~extra_pad:extra b aug n_app
        in
        List.iter
          (fun (f, ds) -> f.Diversity_family.i_post_alloc ~replica:k ~site b ds)
          (List.rev pres);
        match rep_val with
        | Reg src -> Builder.emit b (Bitcast (t.reps.(k), Ptr aug, Reg src))
        | _ -> assert false)
      (replica_order c ~site);
    if sds c then
      match (Shadow_type.sat c.env.stx src_ty, t.shd) with
      | Some sdw, Some s -> Builder.emit b (Malloc (s, sdw, n_app))
      | None, Some _ -> set_shd_null c b t
      | _, None -> ()
  end
  else begin
    Builder.emit b (Alloca (t.app, aug, n_app));
    Array.iter
      (fun rk ->
        let rep_val =
          Diversity.emit_replica_alloca c.env.div c.env.cfg.Config.diversity b
            aug n_app
        in
        match rep_val with
        | Reg src -> Builder.emit b (Bitcast (rk, Ptr aug, Reg src))
        | _ -> assert false)
      t.reps;
    if sds c then
      match (Shadow_type.sat c.env.stx src_ty, t.shd) with
      | Some sdw, Some s -> Builder.emit b (Alloca (s, sdw, n_app))
      | None, Some _ -> set_shd_null c b t
      | _, None -> ()
  end

let transform_free c b p =
  Builder.free b (app_op c p);
  Array.iter
    (fun rp ->
      Diversity.emit_replica_free c.env.div c.env.cfg.Config.diversity b rp)
    (rep_ops c p);
  if sds c then begin
    (* if (ps != null) { free(ps) } — runtime check, in case the static
       type is not precise enough (Table 2.6) *)
    let s = shd_op c p in
    match s with
    | Null _ -> ()
    | _ ->
        let si = Builder.ptr_to_int b s in
        let nz = Builder.icmp b Ine W64 si (Builder.i64c 0) in
        Builder.if_ b nz (fun () -> Builder.free b s)
  end

let transform_load c b dst_reg ty p =
  let t = triple_of c dst_reg in
  let aug_ty = Shadow_type.at c.env.stx ty in
  Builder.emit b (Load (t.app, aug_ty, app_op c p));
  let is_ptr = is_pointer ty in
  let do_check =
    (* under MDS, loads that return pointers are never compared — the
       pointers differ by definition (§4.2) *)
    (not is_ptr) || sds c
  in
  if do_check then begin
    let lbl = detect_label c b in
    c.site <- c.site + 1;
    ignore
      (Policy.emit_check c.env.pol c.env.cfg.Config.policy
         c.env.cfg.Config.vote b aug_ty (Reg t.app)
         (Array.to_list (rep_ops c p)) lbl)
  end;
  if is_ptr then
    if sds c then begin
      (* xr_k <- (ps->rop_k); xs <- (ps->nsop) *)
      let cell = src_pointee c p in
      let pair = pair_struct c cell in
      let ps = shd_op c p in
      (match ps with
      | Null _ ->
          unsupported "%s: pointer load through null shadow (restriction %s)"
            c.sf.Func.name "2.9"
      | _ -> ());
      Array.iteri
        (fun k rk ->
          let rop_addr =
            Func.fresh_reg c.df (Ptr (Shadow_type.at c.env.stx cell))
          in
          Builder.emit b (Gep_field (rop_addr, pair, ps, k));
          Builder.emit b (Load (rk, aug_ty, Reg rop_addr)))
        t.reps;
      let nsop_ty = Func.reg_ty c.df (Option.get t.shd) in
      let nsop_addr = Func.fresh_reg c.df (Ptr nsop_ty) in
      Builder.emit b (Gep_field (nsop_addr, pair, ps, c.env.nrep));
      Builder.emit b (Load (Option.get t.shd, nsop_ty, Reg nsop_addr))
    end
    else
      (* MDS: xr_k <- *pr_k *)
      let prs = rep_ops c p in
      Array.iteri (fun k rk -> Builder.emit b (Load (rk, aug_ty, prs.(k)))) t.reps

let transform_store c b ty v p =
  let aug_ty = Shadow_type.at c.env.stx ty in
  let v_app, v_reps, v_shd = map_operand c v in
  Builder.store b aug_ty v_app (app_op c p);
  let is_ptr = is_pointer ty in
  (* SDS stores the identical value to every replica memory (comparable
     pointers, Figure 2.3); MDS stores replica k's ROP to replica k
     (Figure 2.2). *)
  let prs = rep_ops c p in
  Array.iteri
    (fun k pr ->
      let rep_value = if sds c then v_app else v_reps.(k) in
      Builder.store b aug_ty rep_value pr)
    prs;
  if is_ptr && sds c then begin
    let cell = src_pointee c p in
    let pair = pair_struct c cell in
    let ps = shd_op c p in
    (match ps with
    | Null _ ->
        unsupported "%s: pointer store through null shadow (restriction 2.9)"
          c.sf.Func.name
    | _ -> ());
    let rop_ty = Shadow_type.at c.env.stx cell in
    Array.iteri
      (fun k vr ->
        let rop_addr = Func.fresh_reg c.df (Ptr rop_ty) in
        Builder.emit b (Gep_field (rop_addr, pair, ps, k));
        Builder.store b rop_ty vr (Reg rop_addr))
      v_reps;
    let nsop_ty =
      List.nth (Tenv.fields c.env.dst.Prog.tenv pair) c.env.nrep
    in
    let nsop_addr = Func.fresh_reg c.df (Ptr nsop_ty) in
    Builder.emit b (Gep_field (nsop_addr, pair, ps, c.env.nrep));
    Builder.store b nsop_ty v_shd (Reg nsop_addr)
  end

let transform_gep_field c b dst_reg sname p i =
  let t = triple_of c dst_reg in
  let aug_sname =
    match Shadow_type.at c.env.stx (Struct sname) with
    | Struct s | Union s -> s
    | _ -> assert false
  in
  Builder.emit b (Gep_field (t.app, aug_sname, app_op c p, i));
  let prs = rep_ops c p in
  Array.iteri
    (fun k r -> Builder.emit b (Gep_field (r, aug_sname, prs.(k), i)))
    t.reps;
  if sds c then
    let field_ty = List.nth (Tenv.fields c.env.src.Prog.tenv sname) i in
    match (Shadow_type.sat c.env.stx field_ty, t.shd) with
    | Some _, Some s -> (
        match Shadow_type.sat c.env.stx (Struct sname) with
        | Some (Struct sdw_name) | Some (Union sdw_name) -> (
            let ps = shd_op c p in
            match ps with
            | Null _ ->
                unsupported "%s: field address through null shadow" c.sf.Func.name
            | _ ->
                Builder.emit
                  b
                  (Gep_field (s, sdw_name, ps, Shadow_type.phi c.env.stx sname i)))
        | _ -> unsupported "%s: struct has pointer field but no shadow" c.sf.Func.name)
    | None, Some _ -> set_shd_null c b t
    | _, None -> ()

let transform_gep_index c b dst_reg ety p i =
  let t = triple_of c dst_reg in
  let aug_e = Shadow_type.at c.env.stx ety in
  let i_app = app_op c i in
  Builder.emit b (Gep_index (t.app, aug_e, app_op c p, i_app));
  let prs = rep_ops c p in
  Array.iteri
    (fun k r -> Builder.emit b (Gep_index (r, aug_e, prs.(k), i_app)))
    t.reps;
  if sds c then
    match (Shadow_type.sat c.env.stx ety, t.shd) with
    | Some sdw_e, Some s -> (
        let ps = shd_op c p in
        match ps with
        | Null _ ->
            unsupported "%s: element address through null shadow" c.sf.Func.name
        | _ -> Builder.emit b (Gep_index (s, sdw_e, ps, i_app)))
    | None, Some _ -> set_shd_null c b t
    | _, None -> ()

let transform_bitcast c b dst_reg target p =
  let t = triple_of c dst_reg in
  let pointee = match target with Ptr e -> e | _ -> unsupported "bitcast to non-pointer" in
  let aug_target = Ptr (Shadow_type.at c.env.stx pointee) in
  Builder.emit b (Bitcast (t.app, aug_target, app_op c p));
  let prs = rep_ops c p in
  Array.iteri
    (fun k r -> Builder.emit b (Bitcast (r, aug_target, prs.(k))))
    t.reps;
  if sds c then
    match t.shd with
    | Some s ->
        let sty = Shadow_type.shadow_reg_ty c.env.stx pointee in
        Builder.emit b (Bitcast (s, sty, shd_op c p))
    | None -> ()

(** Compute the sdwSize extra argument for the qsort/memcpy/memmove
    wrappers (§3.1.5): look through bitcasts to the operand's pre-cast
    type to recover the "real" element type. *)
let rec original_pointee c (defs : (reg, inst) Hashtbl.t) (o : operand) =
  match o with
  | Reg r -> (
      match Hashtbl.find_opt defs r with
      | Some (Bitcast (_, _, src)) -> original_pointee c defs src
      | _ -> (
          match Func.reg_ty c.sf r with Ptr t -> Some t | _ -> None))
  | Global g -> Some (Prog.global_ty c.env.src g)
  | Null t -> Some t
  | _ -> None

let elem_of = function Arr (e, _) -> e | t -> t

let sdw_size_arg c defs callee args =
  match (c.env.cfg.Config.mode, callee, args) with
  | Config.Sds, "qsort", base :: _ ->
      let esz =
        match original_pointee c defs base with
        | Some t -> (
            match Shadow_type.sat c.env.stx (elem_of t) with
            | Some s -> Layout.size_of c.env.dst.Prog.tenv s
            | None -> 0)
        | None -> 0
      in
      Some (Builder.i64c esz)
  | Config.Sds, ("memcpy" | "memmove"), dst :: _ ->
      (* total shadow bytes corresponding to the copied region: scale n by
         sizeof(shadow elem) / sizeof(elem) *)
      let scale =
        match original_pointee c defs dst with
        | Some t -> (
            let e = elem_of t in
            match Shadow_type.sat c.env.stx e with
            | Some s ->
                Some
                  ( Layout.size_of c.env.dst.Prog.tenv s,
                    Layout.size_of c.env.dst.Prog.tenv e )
            | None -> None)
        | None -> None
      in
      Some
        (match scale with
        | None -> Builder.i64c 0
        | Some (ssz, esz) -> Builder.i64c ((ssz lsl 16) lor esz)
          (* packed (shadow elem size << 16 | elem size); the wrapper
             unpacks and scales the runtime length *))
  | _ -> None

let transform_call c b defs dst_reg callee args =
  (* intrinsics pass through untransformed (application operands only) *)
  (match callee with
  | Direct n when is_intrinsic n ->
      let args' = List.map (app_op c) args in
      let dst' = Option.map (fun r -> (triple_of c r).app) dst_reg in
      Builder.emit b (Call (dst', Direct n, args'))
  | _ ->
      let sig_ =
        match callee with
        | Direct n -> Prog.fun_sig c.env.src n
        | Indirect o -> (
            match Prog.operand_ty c.env.src c.sf o with
            | Ptr (Fun ft) -> ft
            | t -> unsupported "indirect call through %a" Types.pp t)
      in
      let callee' =
        match callee with
        | Direct n -> Direct (map_fun_name c.env n)
        | Indirect o -> Indirect (app_op c o)
      in
      let nfixed = List.length sig_.params in
      let fixed_args = List.filteri (fun i _ -> i < nfixed) args in
      let var_args = List.filteri (fun i _ -> i >= nfixed) args in
      (* γ(): each fixed pointer argument becomes (arg, ROP_1..ROP_N[, NSOP]) *)
      let expand_fixed p a =
        match p with
        | Ptr _ ->
            let app, reps, shd = map_operand c a in
            let base = app :: Array.to_list reps in
            if sds c then base @ [ shd ] else base
        | _ -> [ app_op c a ]
      in
      let fixed' = List.concat (List.map2 expand_fixed sig_.params fixed_args) in
      (* variable-length argument lists: original values stay in place;
         ROPs (and NSOPs under SDS) are appended at the end (§3.1.2) *)
      let var_app = List.map (app_op c) var_args in
      let var_extra =
        List.concat_map
          (fun a ->
            let _, reps, shd = map_operand c a in
            let rl = Array.to_list reps in
            if sds c then rl @ [ shd ] else rl)
          var_args
      in
      (* π(): return-value ROP/NSOP channel *)
      let rv_alloca =
        match (sig_.ret, c.env.cfg.Config.mode) with
        | Ptr _, Config.Sds ->
            let pair_ty = Option.get (Shadow_type.sat c.env.stx sig_.ret) in
            Some (rv_slot c pair_ty, pair_ty)
        | Ptr _, Config.Mds ->
            let pty = Shadow_type.at c.env.stx sig_.ret in
            Some (rv_slot c ~count:c.env.nrep pty, pty)
        | _ -> None
      in
      let rv_args = match rv_alloca with Some (a, _) -> [ a ] | None -> [] in
      let sdw_extra =
        match callee with
        | Direct n when Prog.is_extern c.env.src n -> (
            match sdw_size_arg c defs n args with Some a -> [ a ] | None -> [])
        | _ -> []
      in
      let all_args = sdw_extra @ rv_args @ fixed' @ var_app @ var_extra in
      let dst' = Option.map (fun r -> (triple_of c r).app) dst_reg in
      Builder.emit b (Call (dst', callee', all_args));
      (* unload the returned ROPs/NSOP *)
      match (dst_reg, rv_alloca) with
      | Some r, Some (slot, slot_ty) -> (
          let t = triple_of c r in
          match c.env.cfg.Config.mode with
          | Config.Sds ->
              let pair =
                match slot_ty with Struct s -> s | _ -> assert false
              in
              let rop_ty = Func.reg_ty c.df t.app in
              Array.iteri
                (fun k rk ->
                  let ak = Func.fresh_reg c.df (Ptr rop_ty) in
                  Builder.emit b (Gep_field (ak, pair, slot, k));
                  Builder.emit b (Load (rk, rop_ty, Reg ak)))
                t.reps;
              let nsop_ty = Func.reg_ty c.df (Option.get t.shd) in
              let a1 = Func.fresh_reg c.df (Ptr nsop_ty) in
              Builder.emit b (Gep_field (a1, pair, slot, c.env.nrep));
              Builder.emit b (Load (Option.get t.shd, nsop_ty, Reg a1))
          | Config.Mds ->
              if c.env.nrep = 1 then
                Builder.emit b (Load (t.reps.(0), slot_ty, slot))
              else
                Array.iteri
                  (fun k rk ->
                    let ak = Func.fresh_reg c.df (Ptr slot_ty) in
                    Builder.emit b (Gep_index (ak, slot_ty, slot, Builder.i64c k));
                    Builder.emit b (Load (rk, slot_ty, Reg ak)))
                  t.reps)
      | _ -> ())

let transform_ret c b o =
  match o with
  | None -> Builder.ret0 b
  | Some v -> (
      let v_app, v_reps, v_shd = map_operand c v in
      match (Prog.operand_ty c.env.src c.sf v, c.rv_param) with
      | Ptr _, Some rv -> (
          match c.env.cfg.Config.mode with
          | Config.Sds ->
              let pair =
                match Func.reg_ty c.df rv with
                | Ptr (Struct s) -> s
                | _ -> assert false
              in
              let fields = Tenv.fields c.env.dst.Prog.tenv pair in
              let rop_ty = List.nth fields 0
              and nsop_ty = List.nth fields c.env.nrep in
              Array.iteri
                (fun k vr ->
                  let ak = Func.fresh_reg c.df (Ptr rop_ty) in
                  Builder.emit b (Gep_field (ak, pair, Reg rv, k));
                  Builder.store b rop_ty vr (Reg ak))
                v_reps;
              let a1 = Func.fresh_reg c.df (Ptr nsop_ty) in
              Builder.emit b (Gep_field (a1, pair, Reg rv, c.env.nrep));
              Builder.store b nsop_ty v_shd (Reg a1);
              Builder.ret b (Some v_app)
          | Config.Mds ->
              let pty = match Func.reg_ty c.df rv with Ptr t -> t | _ -> assert false in
              if c.env.nrep = 1 then Builder.store b pty v_reps.(0) (Reg rv)
              else
                Array.iteri
                  (fun k vr ->
                    let ak = Func.fresh_reg c.df (Ptr pty) in
                    Builder.emit b (Gep_index (ak, pty, Reg rv, Builder.i64c k));
                    Builder.store b pty vr (Reg ak))
                  v_reps;
              Builder.ret b (Some v_app))
      | _ -> Builder.ret b (Some v_app))

let transform_select c b dst_reg ty cond a0 a1 =
  let t = triple_of c dst_reg in
  let cond' = app_op c cond in
  let aug = Shadow_type.at c.env.stx ty in
  Builder.emit b (Select (t.app, aug, cond', app_op c a0, app_op c a1));
  let r0 = rep_ops c a0 and r1 = rep_ops c a1 in
  Array.iteri
    (fun k r -> Builder.emit b (Select (r, aug, cond', r0.(k), r1.(k))))
    t.reps;
  match t.shd with
  | Some s ->
      let sty = Func.reg_ty c.df s in
      let cast o =
        match o with
        | Null _ -> Null i8
        | _ -> o
      in
      let s0 = Func.fresh_reg c.df sty and s1 = Func.fresh_reg c.df sty in
      Builder.emit b (Bitcast (s0, sty, cast (shd_op c a0)));
      Builder.emit b (Bitcast (s1, sty, cast (shd_op c a1)));
      Builder.emit b (Select (s, sty, cond', Reg s0, Reg s1))
  | None -> ()

let transform_inst c b defs inst =
  match inst with
  (* --- Chapter 5 exclusions: accesses DSA cannot vouch for keep their
     original behaviour and leave replication alone --- *)
  | Malloc (r, ty, n) when excl c (Reg r) ->
      Builder.emit
        b
        (Malloc ((triple_of c r).app, Shadow_type.at c.env.stx ty, app_op c n));
      set_unreplicated c b r
  | Alloca (r, ty, n) when excl c (Reg r) ->
      Builder.emit
        b
        (Alloca ((triple_of c r).app, Shadow_type.at c.env.stx ty, app_op c n));
      set_unreplicated c b r
  | Free p when excl c p -> Builder.free b (app_op c p)
  | Load (r, ty, p) when excl c p ->
      Builder.emit b (Load ((triple_of c r).app, Shadow_type.at c.env.stx ty, app_op c p));
      if is_pointer ty then set_unreplicated c b r
  | Store (ty, v, p) when excl c p ->
      Builder.store b (Shadow_type.at c.env.stx ty) (app_op c v) (app_op c p)
  | Gep_field (r, s, p, i) when excl c p ->
      let aug_s =
        match Shadow_type.at c.env.stx (Struct s) with
        | Struct s' | Union s' -> s'
        | _ -> assert false
      in
      Builder.emit b (Gep_field ((triple_of c r).app, aug_s, app_op c p, i));
      set_unreplicated c b r
  | Gep_index (r, e, p, i) when excl c p ->
      Builder.emit
        b
        (Gep_index ((triple_of c r).app, Shadow_type.at c.env.stx e, app_op c p, app_op c i));
      set_unreplicated c b r
  | Bitcast (r, ty, p) when excl c p ->
      let pointee = match ty with Ptr e -> e | _ -> unsupported "bitcast to non-pointer" in
      Builder.emit
        b
        (Bitcast ((triple_of c r).app, Ptr (Shadow_type.at c.env.stx pointee), app_op c p));
      set_unreplicated c b r
  | Int_to_ptr (r, ty, v) when excl c (Reg r) ->
      (* permitted exactly when DSA has excluded the manufactured pointer
         (Unknown + int-to-ptr node, closed under reachability) *)
      Builder.emit
        b
        (Int_to_ptr ((triple_of c r).app, Ptr (Shadow_type.at c.env.stx
            (match ty with Ptr e -> e | t -> t)), app_op c v));
      set_unreplicated c b r
  (* --- standard transformation --- *)
  | Malloc (r, ty, n) -> transform_alloc c b ~heap:true r ty n
  | Alloca (r, ty, n) -> transform_alloc c b ~heap:false r ty n
  | Free p -> transform_free c b p
  | Load (r, ty, p) -> transform_load c b r ty p
  | Store (ty, v, p) -> transform_store c b ty v p
  | Gep_field (r, s, p, i) -> transform_gep_field c b r s p i
  | Gep_index (r, e, p, i) -> transform_gep_index c b r e p i
  | Bitcast (r, ty, p) -> transform_bitcast c b r ty p
  | Ptr_to_int (r, p) ->
      Builder.emit b (Ptr_to_int ((triple_of c r).app, app_op c p))
  | Int_to_ptr _ ->
      unsupported
        "%s: int-to-pointer casts are not allowed under SDS/MDS (§2.9, §4.4) \
         without the Chapter 5 DSA scope expansion"
        c.sf.Func.name
  | Binop (r, op, w, a, b') ->
      Builder.emit b (Binop ((triple_of c r).app, op, w, app_op c a, app_op c b'))
  | Fbinop (r, op, a, b') ->
      Builder.emit b (Fbinop ((triple_of c r).app, op, app_op c a, app_op c b'))
  | Icmp (r, cond, w, a, b') ->
      Builder.emit b (Icmp ((triple_of c r).app, cond, w, app_op c a, app_op c b'))
  | Fcmp (r, cond, a, b') ->
      Builder.emit b (Fcmp ((triple_of c r).app, cond, app_op c a, app_op c b'))
  | Int_cast (r, w, s, v) ->
      Builder.emit b (Int_cast ((triple_of c r).app, w, s, app_op c v))
  | F_to_i (r, w, v) -> Builder.emit b (F_to_i ((triple_of c r).app, w, app_op c v))
  | I_to_f (r, w, v) -> Builder.emit b (I_to_f ((triple_of c r).app, w, app_op c v))
  | Select (r, ty, cond, a0, a1) -> transform_select c b r ty cond a0 a1
  | Call (r, callee, args) -> transform_call c b defs r callee args

let transform_body env (sf : Func.t) (df : Func.t) =
  let rv_param_count =
    match sf.Func.ret with Ptr _ -> 1 | _ -> 0
  in
  let rv_param =
    if rv_param_count = 1 then Some (fst (List.hd df.Func.params)) else None
  in
  let triples = make_triples env sf df rv_param_count in
  let c =
    {
      env;
      sf;
      df;
      triples;
      rv_param;
      detect_label = None;
      site = 0;
      rv_slots = Hashtbl.create 4;
      entry_allocas = [];
    }
  in
  (* defining-instruction map, for looking through bitcasts (§3.1.5) *)
  let defs = Hashtbl.create 32 in
  Func.iter_insts sf (fun _ inst ->
      match Inst.def_of inst with
      | Some r -> Hashtbl.replace defs r inst
      | None -> ());
  (* fresh labels must not collide with copied source labels *)
  df.Func.next_label <- sf.Func.next_label;
  (* create all destination blocks first so branches resolve *)
  List.iter
    (fun (sb : Func.block) -> ignore (Func.add_block df sb.Func.label))
    sf.Func.blocks;
  List.iter
    (fun (sb : Func.block) ->
      let dbk = Func.find_block df sb.Func.label in
      let b = Builder.on_func env.dst df dbk in
      List.iter (transform_inst c b defs) sb.Func.insts;
      match sb.Func.term with
      | Br l -> Builder.br b l
      | Cbr (o, l1, l2) -> Builder.cbr b (app_op c o) l1 l2
      | Ret o -> transform_ret c b o
      | Unreachable -> Builder.unreachable b)
    sf.Func.blocks;
  (* hoisted return-channel slots go at the top of the entry block *)
  if c.entry_allocas <> [] then begin
    let entry = Func.entry df in
    entry.Func.insts <- List.rev c.entry_allocas @ entry.Func.insts
  end

(* ------------------------------------------------------------------ *)
(* main() handling (§3.1.1)                                            *)
(* ------------------------------------------------------------------ *)

let synthesize_main env (orig_main : Func.t) =
  let startups b =
    (* one-time diversity-family startup code, ahead of any replication *)
    List.iter (fun f -> f.Diversity_family.i_startup b) env.fams
  in
  match orig_main.Func.params with
  | [] ->
      (* no command-line arguments: main just tail-calls mainAug *)
      let b = Builder.create env.dst ~name:"main" ~params:[] ~ret:orig_main.Func.ret () in
      startups b;
      let r = Builder.call b (Direct "mainAug") [] in
      Builder.ret b r
  | [ (_, argc_ty); (_, argv_ty) ] ->
      let b =
        Builder.create env.dst ~name:"main"
          ~params:[ ("argc", argc_ty); ("argv", argv_ty) ]
          ~ret:orig_main.Func.ret ()
      in
      let argc = Builder.param b 0 and argv = Builder.param b 1 in
      startups b;
      let argv_rs =
        List.init env.nrep (fun k ->
            Builder.call1 b
              ~name:("argv" ^ rep_suffix k)
              (Direct "__dpmr_argv_r") [ argc; argv ])
      in
      let args =
        match env.cfg.Config.mode with
        | Config.Sds ->
            let argv_s =
              Builder.call1 b ~name:"argv_s" (Direct "__dpmr_argv_s") [ argc; argv ]
            in
            (argc :: argv :: argv_rs) @ [ argv_s ]
        | Config.Mds -> argc :: argv :: argv_rs
      in
      let r = Builder.call b (Direct "mainAug") args in
      Builder.ret b r
  | _ -> unsupported "main must take () or (argc, argv)"

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(** Transform [src] under configuration [cfg] into a new program.  The
    source program is left untouched.  [excluded] is the Chapter 5 DSA
    scope callback (function name, register) -> leave-unreplicated. *)
let transform ?(excluded = fun _ _ -> false) (cfg : Config.t) (src : Prog.t) : Prog.t =
  if cfg.Config.replicas < 1 then
    unsupported "replica count must be >= 1 (got %d)" cfg.Config.replicas;
  let dst = Prog.create ~tenv:(Tenv.copy src.Prog.tenv) () in
  let stx =
    Shadow_type.create ~replicas:cfg.Config.replicas dst.Prog.tenv
      cfg.Config.mode
  in
  let pol = Policy.prepare cfg.Config.policy cfg.Config.seed dst in
  let div = Diversity.prepare cfg.Config.diversity dst in
  let fams =
    match Diversity_family.resolve cfg.Config.families with
    | Ok fs ->
        List.map
          (fun f ->
            Diversity_family.instantiate f src ~seed:cfg.Config.seed
              ~replicas:cfg.Config.replicas)
          fs
    | Error n ->
        unsupported "unknown diversity family %S (registered: %s)" n
          (match Diversity_family.names () with
          | [] -> "none"
          | ns -> String.concat ", " ns)
  in
  let env =
    {
      cfg;
      stx;
      src;
      dst;
      pol;
      div;
      nrep = cfg.Config.replicas;
      fams;
      asite = ref 0;
      excluded;
    }
  in
  (* intrinsic signatures (also declares the base libc names; transformed
     code never calls those directly, but the declarations are harmless) *)
  Dpmr_vm.Extern.declare_signatures dst;
  (* external function wrappers: one _efw per source extern *)
  Hashtbl.iter
    (fun name ft ->
      if not (is_intrinsic name) then begin
        let aug = Shadow_type.at_fun stx ft in
        let aug =
          (* qsort/memcpy/memmove take the extra shadow-size parameter
             under SDS (§3.1.5) *)
          if cfg.Config.mode = Config.Sds
             && (name = "qsort" || name = "memcpy" || name = "memmove")
          then { aug with params = i64 :: aug.params }
          else aug
        in
        Prog.declare_extern dst (efw_name name) aug
      end)
    src.Prog.externs;
  (* argv replication runtime support *)
  (match (Hashtbl.find_opt src.Prog.funcs "main" : Func.t option) with
  | Some f when List.length f.Func.params = 2 ->
      let argv_ty = snd (List.nth f.Func.params 1) in
      let argc_ty = snd (List.nth f.Func.params 0) in
      Prog.declare_extern dst "__dpmr_argv_r"
        { ret = argv_ty; params = [ argc_ty; argv_ty ]; vararg = false };
      if cfg.Config.mode = Config.Sds then begin
        let pointee = match argv_ty with Ptr t -> t | _ -> argv_ty in
        let pair = Option.get (Shadow_type.sat stx (Ptr pointee)) in
        Prog.declare_extern dst "__dpmr_argv_s"
          { ret = Ptr pair; params = [ argc_ty; argv_ty ]; vararg = false }
      end
  | _ -> ());
  transform_globals env;
  (* shells first so calls resolve *)
  let shells = Hashtbl.create 16 in
  Prog.iter_funcs src (fun f ->
      let name = if f.Func.name = "main" then "mainAug" else f.Func.name in
      let df =
        Func.create ~name
          ~params:(augment_params env f)
          ~ret:(Shadow_type.at stx f.Func.ret)
          ~vararg:f.Func.vararg ()
      in
      Prog.add_func dst df;
      Hashtbl.replace shells f.Func.name df);
  Prog.iter_funcs src (fun f -> transform_body env f (Hashtbl.find shells f.Func.name));
  (match Hashtbl.find_opt src.Prog.funcs "main" with
  | Some f -> synthesize_main env f
  | None -> ());
  dst
