(** Shadow and augmented type computation.

    Implements [st()] (Table 2.1, Figure 2.5), [at()] (Table 2.3 for SDS,
    Table 4.1 for MDS; Figures 2.6/2.7), the composed [(st ∘ at)()]
    (Table 2.5, Figure 2.8) in one pass, and the helper functions of the
    symbol list: [φ()], [rpt()], [spt()].

    Recursion flows through named structs, so the dissertation's
    placeholders become declared-but-undefined struct names pre-registered
    in the memo table before their bodies are computed; the three
    dynamic-programming caches are the [ST]/[AT]/[SAT] maps of the
    figures. *)

open Dpmr_ir
open Types

(** The stand-in for C's [void*] ([i8*]): the NSOP type when the pointee
    has a null shadow (Table 2.1). *)
val void_ptr : ty

type t
(** A computation context: memo tables over a (mutable) type environment
    that receives the generated shadow/augmented struct definitions. *)

(** [replicas] (default 1) sets the N-version arity: pointer-cell
    shadows become [{ROP_1 .. ROP_N; NSOP}] structs and pointer
    parameters expand to one replica parameter per replica. *)
val create : ?replicas:int -> Tenv.t -> Config.mode -> t

(** Does the type transitively mention a function type?  ([at] is the
    identity on types that do not.) *)
val contains_fun_ty : t -> string list -> ty -> bool

(** [st t]: the shadow type, or [None] when null (Table 2.1). *)
val st : t -> ty -> ty option

(** [sat t] = [(st ∘ at) t], computed in one calculation (Table 2.5 /
    Figure 2.8). *)
val sat : t -> ty -> ty option

(** [at t]: the augmented type (function types gain ROP/NSOP parameters
    and the rvSop/rvRopPtr return channel). *)
val at : t -> ty -> ty

(** rpt(): replica parameter type — [Some (at t)] for pointers. *)
val rpt : t -> ty -> ty option

(** spt() (SDS): shadow parameter type — pointer to the pointee's
    [sat], or [void*]. *)
val spt : t -> ty -> ty option

(** Augmented function type (Figure 2.7 / Table 4.1 by mode). *)
val at_fun : t -> fun_ty -> fun_ty

(** φ(): map an original field index to its shadow-struct index
    (Equation 2.2). *)
val phi : t -> string -> int -> int

(** Declared type of the NSOP register for a pointer to [pointee]. *)
val shadow_reg_ty : t -> ty -> ty
