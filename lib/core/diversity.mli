(** Diversity transformations (Table 2.8).

    Each transformation rewrites the {e replica} side of heap allocation
    and deallocation; application behaviour is untouched, and under
    error-free execution replica state stays equal to application
    state. *)

open Dpmr_ir
open Types
open Inst

type state
(** Per-program state (rearrange-heap's 20-slot scratch pointer buffer). *)

val rearrange_slots : int

(** Add any globals the transformation needs to the output program. *)
val prepare : Config.diversity -> Prog.t -> state

(** Emit the replica heap allocation for [count] objects of (augmented)
    type [aug_ty]; returns an operand of type [Ptr aug_ty].  [extra_pad]
    (default 0) adds the N-version diversity-family request growth for
    this (replica, site). *)
val emit_replica_malloc :
  state -> Config.diversity -> ?extra_pad:int -> Builder.t -> ty -> operand -> operand

(** Emit the replica deallocation (zero-before-free zeroes first). *)
val emit_replica_free : state -> Config.diversity -> Builder.t -> operand -> unit

(** Emit the replica stack allocation (diversified only by the
    Pad_alloca extension). *)
val emit_replica_alloca :
  state -> Config.diversity -> Builder.t -> ty -> operand -> operand
