(** DPMR build configuration: replication design × diversity transformation
    × state comparison policy — the three tunable axes the dissertation
    evaluates. *)

(** Pointer-in-memory handling strategy (the key design choice of
    Chapters 2 and 4). *)
type mode =
  | Sds  (** Shadow Data Structures: pointers in memory are comparable;
             ROP/NSOP pairs live in shadow objects (§2.2) *)
  | Mds  (** Mirrored Data Structures: replica memory mirrors application
             memory; replica pointers stored in replica memory (§4.1) *)

(** Diversity transformations (Table 2.8). *)
type diversity =
  | No_diversity  (** implicit diversity from intra-process layout only *)
  | Pad_malloc of int  (** grow replica heap requests by a static amount *)
  | Zero_before_free  (** zero replica buffers prior to deallocation *)
  | Rearrange_heap  (** randomize replica heap object placement *)
  | Pad_alloca of int
      (** grow replica *stack* allocations by a static amount — the
          production-version extension §2.6 sketches ("similar techniques
          could easily be applied to stack memory") *)

(** State comparison policies (§2.7). *)
type policy =
  | All_loads
  | Temporal of int64
      (** 64-bit mask; bit [i] of the rolling counter decides whether load
          check [i mod 64] executes (Table 2.9) *)
  | Static of float  (** compile-time probability that a load site keeps its check *)

(** Per-site voting rule across the N replicas (N-version extension).
    With a single replica the two coincide: one mismatch is both "any"
    and a majority. *)
type vote =
  | Any_mismatch  (** any replica disagreeing with the application detects *)
  | Majority  (** more than N/2 replicas must disagree *)

type t = {
  mode : mode;
  diversity : diversity;
  policy : policy;
  seed : int64;  (** drives static-policy coin flips and rearrange-heap *)
  replicas : int;  (** N >= 1 diverse replicas; 1 is the paper's design *)
  families : string list;
      (** diversity-family names ({!Diversity_family} registry), applied
          to every replica with per-replica deterministic seeding *)
  vote : vote;
}

let default =
  {
    mode = Sds;
    diversity = No_diversity;
    policy = All_loads;
    seed = 42L;
    replicas = 1;
    families = [];
    vote = Any_mismatch;
  }

(* The three masks evaluated in §2.7: repeating the printed 32-bit
   constants to 64 bits gives the stated 1/8, 1/2 and 7/8 densities. *)
let temporal_mask_1_8 = 0x8080808080808080L
let temporal_mask_1_2 = 0xAAAAAAAAAAAAAAAAL
let temporal_mask_7_8 = 0xFEFEFEFEFEFEFEFEL

let mode_name = function Sds -> "sds" | Mds -> "mds"

let diversity_name = function
  | No_diversity -> "no-diversity"
  | Pad_malloc n -> Printf.sprintf "pad-malloc-%d" n
  | Zero_before_free -> "zero-before-free"
  | Rearrange_heap -> "rearrange-heap"
  | Pad_alloca n -> Printf.sprintf "pad-alloca-%d" n

let policy_name = function
  | All_loads -> "all-loads"
  | Temporal m ->
      let bits = ref 0 in
      for i = 0 to 63 do
        if Int64.logand (Int64.shift_right_logical m i) 1L = 1L then incr bits
      done;
      Printf.sprintf "temporal-%d/64" !bits
  | Static f -> Printf.sprintf "static-%d%%" (int_of_float (f *. 100.))

let vote_name = function Any_mismatch -> "any-mismatch" | Majority -> "majority"

(* The N-version axes render only when non-default, so every display
   label of the paper's single-replica grid is unchanged. *)
let nversion_suffix c =
  if c.replicas = 1 && c.families = [] && c.vote = Any_mismatch then ""
  else
    Printf.sprintf "/n%d%s%s" c.replicas
      (match c.families with [] -> "" | fs -> "/" ^ String.concat "+" fs)
      (match c.vote with Any_mismatch -> "" | Majority -> "/majority")

let name c =
  Printf.sprintf "%s/%s/%s%s" (mode_name c.mode) (diversity_name c.diversity)
    (policy_name c.policy) (nversion_suffix c)
