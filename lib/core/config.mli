(** DPMR build configuration: replication design × diversity
    transformation × state comparison policy — the three tunable axes the
    dissertation evaluates. *)

(** Pointer-in-memory handling strategy (the key design choice of
    Chapters 2 and 4). *)
type mode =
  | Sds
      (** Shadow Data Structures: pointers stored in memory are
          comparable; ROP/NSOP pairs live in shadow objects (§2.2) *)
  | Mds
      (** Mirrored Data Structures: replica memory mirrors application
          memory; replica pointers are stored in replica memory (§4.1) *)

(** Diversity transformations (Table 2.8). *)
type diversity =
  | No_diversity  (** implicit diversity from intra-process layout only *)
  | Pad_malloc of int  (** grow replica heap requests by a static amount *)
  | Zero_before_free  (** zero replica buffers prior to deallocation *)
  | Rearrange_heap  (** randomize replica heap object placement *)
  | Pad_alloca of int
      (** grow replica stack allocations (the §2.6 production-version
          extension to stack memory) *)

(** State comparison policies (§2.7). *)
type policy =
  | All_loads
  | Temporal of int64
      (** 64-bit mask; bit [counter] decides whether a check executes
          (Table 2.9) *)
  | Static of float  (** compile-time keep-probability per load site *)

(** Per-site voting rule across the N replicas (N-version extension);
    with one replica the two coincide. *)
type vote =
  | Any_mismatch  (** any replica disagreeing with the application detects *)
  | Majority  (** more than N/2 replicas must disagree *)

type t = {
  mode : mode;
  diversity : diversity;
  policy : policy;
  seed : int64;  (** drives static-policy coin flips and rearrange-heap *)
  replicas : int;  (** N >= 1 diverse replicas; 1 is the paper's design *)
  families : string list;
      (** diversity-family names ({!Diversity_family} registry), applied
          to every replica with per-replica deterministic seeding *)
  vote : vote;
}

(** SDS, no diversity, all loads, seed 42, one replica, no families,
    any-mismatch voting — the paper's configuration. *)
val default : t

(** The §2.7 masks: 1/8, 1/2 and 7/8 checking density. *)
val temporal_mask_1_8 : int64

val temporal_mask_1_2 : int64
val temporal_mask_7_8 : int64

val mode_name : mode -> string
val diversity_name : diversity -> string
val policy_name : policy -> string
val vote_name : vote -> string

(** Display rendering of the N-version axes; [""] for the single-replica
    default, so the paper grid's labels are unchanged. *)
val nversion_suffix : t -> string

val name : t -> string
