(** State comparison policies (§2.7, Table 2.9).

    A load check performs the replica load and compares it with the
    application load; policies tune how often checks run: every load,
    a rolling 64-bit mask counter at runtime (temporal, Table 2.9), or a
    compile-time coin flip per site (static). *)

open Dpmr_ir
open Types
open Inst

type state
(** Per-program state: the temporal policy's mask-counter global and the
    static policy's compile-time RNG. *)

val mask_counter_name : string
val prepare : Config.policy -> int64 -> Prog.t -> state

(** Emit the raw comparison: load the replica value, compare, branch to
    the detect label on mismatch. *)
val emit_compare : Builder.t -> ty -> operand -> operand -> string -> unit

(** Emit the N-replica vote for one site over the replica addresses; a
    single address reproduces {!emit_compare} exactly under either rule. *)
val emit_vote :
  Config.vote -> Builder.t -> ty -> operand -> operand list -> string -> unit

(** Emit the (policy-gated) load check for one site across the N replica
    addresses; returns whether any check code was emitted. *)
val emit_check :
  state ->
  Config.policy ->
  Config.vote ->
  Builder.t ->
  ty ->
  operand ->
  operand list ->
  string ->
  bool
