(** Top-level DPMR driver: transform a program and run it with the full
    runtime (base mini-libc + external function wrappers) registered. *)

open Dpmr_ir
module Vm = Dpmr_vm.Vm
module Extern = Dpmr_vm.Extern
module Outcome = Dpmr_vm.Outcome

exception Unsupported of string

(** [transform cfg prog] returns the DPMR-instrumented program; [prog]
    is not modified. *)
val transform :
  ?excluded:(string -> Inst.reg -> bool) -> Config.t -> Prog.t -> Prog.t

(** VM for an untransformed program (golden / fi-stdapp builds).
    [lowered] lets callers that run the same program repeatedly lower it
    once (see {!Vm.create}). *)
val vm_plain :
  ?seed:int64 -> ?budget:int64 -> ?lowered:Dpmr_vm.Lower.prog -> Prog.t -> Vm.t

(** VM for a transformed program: base externs plus the design's external
    function wrappers. *)
val vm_dpmr :
  ?seed:int64 ->
  ?budget:int64 ->
  ?lowered:Dpmr_vm.Lower.prog ->
  mode:Config.mode ->
  ?replicas:int ->
  Prog.t ->
  Vm.t

(** Run a program untransformed. *)
val run_plain :
  ?seed:int64 ->
  ?budget:int64 ->
  ?args:string list ->
  ?lowered:Dpmr_vm.Lower.prog ->
  Prog.t ->
  Outcome.run

(** Run an {e already-transformed} program with the design's wrappers —
    the repeat-run path: callers transform (and lower) once, then run per
    seed. *)
val run_transformed :
  ?seed:int64 ->
  ?budget:int64 ->
  ?args:string list ->
  ?lowered:Dpmr_vm.Lower.prog ->
  mode:Config.mode ->
  ?replicas:int ->
  Prog.t ->
  Outcome.run

(** Transform under a configuration, then run. *)
val run_dpmr :
  ?seed:int64 -> ?budget:int64 -> ?args:string list -> Config.t -> Prog.t -> Outcome.run

(** {1 Snapshot/fork campaign execution}

    Watched baselines and snapshot forks — see {!Vm.run_watched} and
    {!Vm.resume}.  A fork is bit-identical to the corresponding from-zero
    run with the same seed. *)

val watched_plain :
  ?seed:int64 ->
  ?budget:int64 ->
  ?args:string list ->
  ?lowered:Dpmr_vm.Lower.prog ->
  Prog.t ->
  (string, int array) Hashtbl.t array ->
  Vm.watch_result array

val watched_transformed :
  ?seed:int64 ->
  ?budget:int64 ->
  ?args:string list ->
  ?lowered:Dpmr_vm.Lower.prog ->
  mode:Config.mode ->
  ?replicas:int ->
  Prog.t ->
  (string, int array) Hashtbl.t array ->
  Vm.watch_result array

val resume_plain :
  ?seed:int64 ->
  ?budget:int64 ->
  ?lowered:Dpmr_vm.Lower.prog ->
  ?remap:(string -> Dpmr_vm.Lower.remap option) ->
  Prog.t ->
  Vm.snapshot ->
  Outcome.run

val resume_transformed :
  ?seed:int64 ->
  ?budget:int64 ->
  ?lowered:Dpmr_vm.Lower.prog ->
  ?remap:(string -> Dpmr_vm.Lower.remap option) ->
  mode:Config.mode ->
  ?replicas:int ->
  Prog.t ->
  Vm.snapshot ->
  Outcome.run
