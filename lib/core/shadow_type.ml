(** Shadow and augmented type computation.

    Implements [st()] (Table 2.1, Figure 2.5), [at()] (Table 2.3 for SDS,
    Table 4.1 for MDS, Figures 2.6/2.7), and the composed [(st ∘ at)()]
    (Table 2.5, Figure 2.8) in one calculation, plus the helper functions
    from the symbol list: [φ()] (shadow field indices), [rpt()] and
    [spt()] (replica/shadow parameter types).

    The dissertation's placeholder machinery (Figures 2.5–2.8) exists to
    handle recursive types: here recursion flows through *named* structs,
    so a placeholder is simply a declared-but-not-yet-defined struct name
    that we pre-register in the memo table before computing its body —
    recursive references then resolve through the table, and "placeholder
    resolution" is the final [define_struct].  The dynamic-programming
    caches ([ST], [AT], [SAT] in the figures) are the three hashtables
    below. *)

open Dpmr_ir
open Types

(** The C [void*]: our IR has no void pointer, so [i8*] stands in, exactly
    as the null-shadow NSOP placeholder type of Table 2.1. *)
let void_ptr = Ptr i8

type t = {
  tenv : Tenv.t;
  mode : Config.mode;
  replicas : int;
      (** N-version extension: pointer-cell shadows carry one ROP per
          replica, [{ROP_1 .. ROP_N; NSOP}]; N = 1 is the dissertation's
          [{ROP; NSOP}] pair exactly *)
  st_cache : (ty, ty option) Hashtbl.t;
  at_cache : (ty, ty) Hashtbl.t;
  sat_cache : (ty, ty option) Hashtbl.t;
  fun_free : (string, bool) Hashtbl.t;  (** struct name -> contains fun type *)
}

let create ?(replicas = 1) tenv mode =
  if replicas < 1 then invalid_arg "Shadow_type.create: replicas must be >= 1";
  {
    tenv;
    mode;
    replicas;
    st_cache = Hashtbl.create 64;
    at_cache = Hashtbl.create 64;
    sat_cache = Hashtbl.create 64;
    fun_free = Hashtbl.create 64;
  }

(** Does [t] transitively mention a function type?  [at()] is the identity
    on types that do not (it only rewrites function types), which lets us
    keep original struct names for the common case. *)
let rec contains_fun_ty ctx seen t =
  match t with
  | Fun _ -> true
  | Int _ | Float | Void -> false
  | Ptr e | Arr (e, _) -> contains_fun_ty ctx seen e
  | Struct n | Union n -> (
      match Hashtbl.find_opt ctx.fun_free n with
      | Some b -> b
      | None ->
          if List.mem n seen then false
          else
            let b =
              List.exists
                (contains_fun_ty ctx (n :: seen))
                (Tenv.fields ctx.tenv n)
            in
            Hashtbl.replace ctx.fun_free n b;
            b)

(* ------------------------------------------------------------------ *)
(* st(): Table 2.1                                                     *)
(* ------------------------------------------------------------------ *)

let rec st ctx t =
  match Hashtbl.find_opt ctx.st_cache t with
  | Some r -> r
  | None ->
      if not (contains_pointer_outside_fun_ty ctx.tenv t) then begin
        (* short-circuit of Figure 2.5 line 17; covers primitives,
           function types, void, and pointer-free aggregates *)
        Hashtbl.replace ctx.st_cache t None;
        None
      end
      else begin
        match t with
        | Ptr tau ->
            (* pre-register the named pair struct: this is the placeholder *)
            let name = Tenv.fresh_name ctx.tenv "sdw.ptr" in
            Tenv.declare_struct ctx.tenv name;
            Hashtbl.replace ctx.st_cache t (Some (Struct name));
            let nsop =
              match st ctx tau with None -> void_ptr | Some s -> Ptr s
            in
            Tenv.define_struct ctx.tenv name [ t; nsop ];
            Some (Struct name)
        | Arr (e, n) ->
            let r =
              match st ctx e with None -> None | Some s -> Some (Arr (s, n))
            in
            Hashtbl.replace ctx.st_cache t r;
            r
        | Struct sname | Union sname ->
            let is_union = (Tenv.body ctx.tenv sname).is_union in
            let name = Tenv.fresh_name ctx.tenv (sname ^ ".sdw") in
            Tenv.declare_struct ctx.tenv name;
            let self = if is_union then Union name else Struct name in
            Hashtbl.replace ctx.st_cache t (Some self);
            let fields = List.filter_map (st ctx) (Tenv.fields ctx.tenv sname) in
            if is_union then Tenv.define_union ctx.tenv name fields
            else Tenv.define_struct ctx.tenv name fields;
            Some self
        | Int _ | Float | Void | Fun _ -> assert false (* short-circuited *)
      end

(* ------------------------------------------------------------------ *)
(* sat() = (st ∘ at)(): Table 2.5, computed in one pass (Figure 2.8)   *)
(* ------------------------------------------------------------------ *)

let rec sat ctx t =
  match Hashtbl.find_opt ctx.sat_cache t with
  | Some r -> r
  | None ->
      (* at() preserves pointer structure outside function types, so the
         same short-circuit applies *)
      if not (contains_pointer_outside_fun_ty ctx.tenv t) then begin
        Hashtbl.replace ctx.sat_cache t None;
        None
      end
      else begin
        match t with
        | Ptr tau ->
            let name = Tenv.fresh_name ctx.tenv "satsdw.ptr" in
            Tenv.declare_struct ctx.tenv name;
            Hashtbl.replace ctx.sat_cache t (Some (Struct name));
            let nsop =
              match sat ctx tau with None -> void_ptr | Some s -> Ptr s
            in
            let rop = at ctx t in
            (* one ROP field per replica, NSOP last: field k holds
               replica k's object pointer, field N the shadow pointer *)
            Tenv.define_struct ctx.tenv name
              (List.init ctx.replicas (fun _ -> rop) @ [ nsop ]);
            Some (Struct name)
        | Arr (e, n) ->
            let r =
              match sat ctx e with None -> None | Some s -> Some (Arr (s, n))
            in
            Hashtbl.replace ctx.sat_cache t r;
            r
        | Struct sname | Union sname ->
            let is_union = (Tenv.body ctx.tenv sname).is_union in
            let name = Tenv.fresh_name ctx.tenv (sname ^ ".satsdw") in
            Tenv.declare_struct ctx.tenv name;
            let self = if is_union then Union name else Struct name in
            Hashtbl.replace ctx.sat_cache t (Some self);
            let fields = List.filter_map (sat ctx) (Tenv.fields ctx.tenv sname) in
            if is_union then Tenv.define_union ctx.tenv name fields
            else Tenv.define_struct ctx.tenv name fields;
            Some self
        | Int _ | Float | Void | Fun _ -> assert false
      end

(* ------------------------------------------------------------------ *)
(* at(): Table 2.3 (SDS) / Table 4.1 (MDS), Figures 2.6/2.7            *)
(* ------------------------------------------------------------------ *)

and at ctx t =
  match Hashtbl.find_opt ctx.at_cache t with
  | Some r -> r
  | None -> (
      match t with
      | Int _ | Float | Void ->
          Hashtbl.replace ctx.at_cache t t;
          t
      | Ptr tau ->
          if not (contains_fun_ty ctx [] t) then begin
            Hashtbl.replace ctx.at_cache t t;
            t
          end
          else begin
            (* Pre-registration is only needed for recursion, which flows
               through named structs (handled below); a raw [Ptr] chain to
               a function type is finite. *)
            let r = Ptr (at ctx tau) in
            Hashtbl.replace ctx.at_cache t r;
            r
          end
      | Arr (e, n) ->
          let r = if contains_fun_ty ctx [] t then Arr (at ctx e, n) else t in
          Hashtbl.replace ctx.at_cache t r;
          r
      | Struct sname | Union sname ->
          if not (contains_fun_ty ctx [] t) then begin
            Hashtbl.replace ctx.at_cache t t;
            t
          end
          else begin
            let is_union = (Tenv.body ctx.tenv sname).is_union in
            let name = Tenv.fresh_name ctx.tenv (sname ^ ".aug") in
            Tenv.declare_struct ctx.tenv name;
            let self = if is_union then Union name else Struct name in
            Hashtbl.replace ctx.at_cache t self;
            let fields = List.map (at ctx) (Tenv.fields ctx.tenv sname) in
            if is_union then Tenv.define_union ctx.tenv name fields
            else Tenv.define_struct ctx.tenv name fields;
            self
          end
      | Fun ft ->
          let r = Fun (at_fun ctx ft) in
          Hashtbl.replace ctx.at_cache t r;
          r)

(** rpt() — replica parameter type: [at(τ)*] for pointers, null otherwise. *)
and rpt ctx t = match t with Ptr _ -> Some (at ctx t) | _ -> None

(** spt() — shadow parameter type (SDS only): [st(at(τ))*] for pointer
    parameters whose pointee has a shadow, [void*] for pointer parameters
    whose pointee does not, null for non-pointers. *)
and spt ctx t =
  match t with
  | Ptr tau -> (
      match sat ctx tau with None -> Some void_ptr | Some s -> Some (Ptr s))
  | _ -> None

(** Augmented function type (the getAugFunTypeImpl of Figure 2.7). *)
and at_fun ctx (ft : fun_ty) =
  let rv_extra =
    match (ft.ret, ctx.mode) with
    | Ptr _, Config.Sds -> (
        (* rvSop: pointer to st(at(r)) — always non-null for pointer r *)
        match sat ctx ft.ret with
        | Some s -> [ Ptr s ]
        | None -> assert false)
    | Ptr _, Config.Mds -> [ Ptr (at ctx ft.ret) ]  (* rvRopPtr: rpt(r)* *)
    | _ -> []
  in
  let param_group p =
    let base = at ctx p in
    match (p, ctx.mode) with
    | Ptr _, Config.Sds ->
        (base :: List.init ctx.replicas (fun _ -> Option.get (rpt ctx p)))
        @ [ Option.get (spt ctx p) ]
    | Ptr _, Config.Mds ->
        base :: List.init ctx.replicas (fun _ -> Option.get (rpt ctx p))
    | _ -> [ base ]
  in
  {
    ret = at ctx ft.ret;
    params = rv_extra @ List.concat_map param_group ft.params;
    vararg = ft.vararg;
  }

(* ------------------------------------------------------------------ *)
(* φ() and layout helpers                                              *)
(* ------------------------------------------------------------------ *)

(** φ(): map field index [i] of struct [sname] to the index of the
    corresponding field in the shadow struct (Equation 2.2): the number of
    earlier fields with non-null shadows. *)
let phi ctx sname i =
  let fields = Tenv.fields ctx.tenv sname in
  let rec go j acc = function
    | [] -> invalid_arg "Shadow_type.phi: index out of range"
    | f :: rest ->
        if j = i then acc
        else go (j + 1) (acc + if sat ctx f <> None then 1 else 0) rest
  in
  go 0 0 fields

(** Shadow pointer type for a register of type [Ptr tau]: the declared
    type of its NSOP register. *)
let shadow_reg_ty ctx pointee =
  match sat ctx pointee with None -> void_ptr | Some s -> Ptr s
