(** Diversity transformations (Table 2.8).

    Each transformation rewrites the *replica* side of heap allocation and
    deallocation; application behaviour is untouched, and under error-free
    execution replica state stays equal to application state.  Stack and
    global allocations keep the standard replica behaviour (§2.6 notes the
    same techniques could be applied there; the evaluated tool targets the
    heap). *)

open Dpmr_ir
open Types
open Inst

(** Per-program state: rearrange-heap needs its scratch pointer buffer
    [B] (a global holding up to 20 pointers). *)
type state = { rearrange_buf : string option }

let rearrange_slots = 20

(** Add any globals/externs the diversity transformation needs to the
    output program. *)
let prepare (d : Config.diversity) (dst : Prog.t) =
  match d with
  | Config.Rearrange_heap ->
      let name = "__dpmr_rearrange_buf" in
      Prog.add_global dst
        { Prog.gname = name; gty = arr (Ptr i8) rearrange_slots; ginit = Prog.Gzero };
      { rearrange_buf = Some name }
  | Config.No_diversity | Config.Pad_malloc _ | Config.Zero_before_free
  | Config.Pad_alloca _ ->
      { rearrange_buf = None }

(** Emit the replica heap allocation for an application allocation of
    [count] objects of (augmented) type [aug_ty].  Returns an operand of
    type [Ptr aug_ty].  [extra_pad] is the N-version diversity-family
    request growth for this (replica, site); 0 preserves the paper's
    emission byte for byte. *)
let emit_replica_malloc state (d : Config.diversity) ?(extra_pad = 0)
    (b : Builder.t) aug_ty count =
  let padded_request ~label pad =
    (* replica request becomes a byte-array request of
       sizeof(aug) * count + pad, then cast back (Table 2.8) *)
    let esz = Layout.size_of b.Builder.prog.Prog.tenv aug_ty in
    let bytes = Builder.mul b W64 count (Builder.i64c esz) in
    let padded = Builder.add b W64 bytes (Builder.i64c pad) in
    let raw = Builder.malloc b ~name:label ~count:padded i8 in
    Builder.bitcast b (Ptr aug_ty) raw
  in
  let plain () =
    if extra_pad = 0 then Builder.malloc b ~name:"rep" ~count aug_ty
    else padded_request ~label:"rep.pad" extra_pad
  in
  match d with
  | Config.No_diversity | Config.Zero_before_free | Config.Pad_alloca _ -> plain ()
  | Config.Pad_malloc pad -> padded_request ~label:"rep.pad" (pad + extra_pad)
  | Config.Rearrange_heap ->
      (* allocate 1..20 dummies of the same request, allocate the replica,
         free the dummies — randomizing the replica's placement *)
      let buf =
        match state.rearrange_buf with
        | Some g -> Global g
        | None -> invalid_arg "Diversity: rearrange state missing"
      in
      let k =
        Builder.call1 b ~name:"k" (Direct "__dpmr_rand_range")
          [ Builder.i64c 1; Builder.i64c rearrange_slots ]
      in
      Builder.for_ b ~from:(Builder.i64c 0) ~below:k (fun j ->
          let dummy = Builder.malloc b ~count aug_ty in
          let dummy8 = Builder.bitcast b (Ptr i8) dummy in
          let slot = Builder.gep_index b buf j in
          Builder.store b (Ptr i8) dummy8 slot);
      let rep = plain () in
      Builder.for_ b ~from:(Builder.i64c 0) ~below:k (fun j ->
          let slot = Builder.gep_index b buf j in
          let dummy = Builder.load b (Ptr i8) slot in
          Builder.free b dummy);
      rep

(** Emit the replica deallocation for [free(p)]. *)
let emit_replica_free _state (d : Config.diversity) (b : Builder.t) rep_ptr =
  (match d with
  | Config.Zero_before_free ->
      (* zero the replica buffer prior to deallocation; lowered to a
         runtime call whose cost model matches the Table 2.8 store loop *)
      let p8 = Builder.bitcast b (Ptr i8) rep_ptr in
      let sz = Builder.call1 b (Direct "__dpmr_heap_size") [ p8 ] in
      Builder.call0 b (Direct "__dpmr_zero") [ p8; sz ]
  | Config.No_diversity | Config.Pad_malloc _ | Config.Rearrange_heap
  | Config.Pad_alloca _ -> ());
  Builder.free b rep_ptr

(** Emit the replica *stack* allocation: only the Pad_alloca extension
    diversifies it; everything else mirrors the application alloca. *)
let emit_replica_alloca _state (d : Config.diversity) (b : Builder.t) aug_ty count =
  match d with
  | Config.Pad_alloca pad ->
      let esz = Layout.size_of b.Builder.prog.Prog.tenv aug_ty in
      let bytes = Builder.mul b W64 count (Builder.i64c esz) in
      let padded = Builder.add b W64 bytes (Builder.i64c pad) in
      let raw = Builder.alloca b ~name:"rep.spad" ~count:padded i8 in
      Builder.bitcast b (Ptr aug_ty) raw
  | Config.No_diversity | Config.Pad_malloc _ | Config.Zero_before_free
  | Config.Rearrange_heap ->
      Builder.alloca b ~name:"rep" ~count aug_ty
