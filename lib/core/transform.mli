(** The DPMR code transformation engine.

    One parameterized engine implements both designs — Shadow Data
    Structures (Tables 2.6/2.7) and Mirrored Data Structures (Tables
    4.3/4.4) — branching on the configured mode only where the tables
    differ.  Also handles: augmented signatures with the γ()/π()
    expansions, [main]/[mainAug] splitting with argv replication (§3.1.1),
    variadic call sites (§3.1.2), the qsort/memcpy/memmove shadow-size
    parameter (§3.1.5), per-site comparison-policy codegen, diversity
    codegen on replica allocation, and global variable replication with
    static shadow initialization. *)

open Dpmr_ir

(** Raised when the input violates the design's restrictions (§2.9 for
    SDS, §4.4 for MDS) — e.g. an int-to-pointer cast without the
    Chapter 5 scope expansion. *)
exception Unsupported of string

(** [transform cfg src] builds the instrumented program; [src] is not
    modified.  [excluded fname reg] is the Chapter 5 DSA scope callback:
    accesses through excluded registers keep their original behaviour and
    are left out of replication (default: nothing excluded). *)
val transform :
  ?excluded:(string -> Inst.reg -> bool) -> Config.t -> Prog.t -> Prog.t
