(** Pluggable diversity-transform families for N-version replication.

    The paper evaluates one replica under one diversity transformation
    (Table 2.8); the N-version extension generalizes this to a registry
    of *families*, each a module implementing {!S}.  A family observes
    every replica heap-allocation site and may (a) grow the request by a
    per-(replica, site) pad, (b) emit dummy allocations before/after the
    replica allocation to permute its placement, (c) permute the order
    in which the N replica allocations of one site are emitted, and (d)
    emit one-time startup code in the synthesized [main].

    All family randomness is *compile-time* and derived purely from
    [(config seed, family name, replica index, site index)], so the
    transformed program — and therefore every cached verdict — is a
    deterministic function of the {!Config.t}.

    Implementations live in [lib/nversion] (the subsystem proper) and
    self-register here; the transform engine resolves names through
    {!find} and fails with a clear error when a family was named but the
    implementing library is not linked. *)

open Dpmr_ir

module type S = sig
  val name : string
  val description : string

  type state

  val prepare : Prog.t -> seed:int64 -> replicas:int -> state

  (** Extra bytes appended to replica [replica]'s request at allocation
      site [site] (0 = no pad). *)
  val alloc_pad : state -> replica:int -> site:int -> int

  (** Emitted immediately before replica [replica]'s allocation at
      [site]; returns the dummy pointers [post_alloc] must release.
      [aug_ty]/[count] describe the application request. *)
  val pre_alloc :
    state ->
    replica:int ->
    site:int ->
    Builder.t ->
    Types.ty ->
    Inst.operand ->
    Inst.operand list

  (** Emitted immediately after the replica allocation, receiving
      [pre_alloc]'s dummies. *)
  val post_alloc :
    state -> replica:int -> site:int -> Builder.t -> Inst.operand list -> unit

  (** Emission-order permutation of the [n] replica allocations at
      [site]: a permutation of [0 .. n-1]. *)
  val order : state -> site:int -> n:int -> int array

  (** One-time startup emission in the synthesized [main], before
      [mainAug] is called. *)
  val startup : state -> Builder.t -> unit

  (** Application-side Rx environment change: rewrite the (untransformed)
      program the way this family displaces replica objects, so a
      re-execution after detection can absorb the fault ([Rx]).  [None]
      when the family has no application-side analog. *)
  val rx_rewrite : Prog.t -> seed:int64 -> Prog.t option
end

type family = (module S)

(** A family applied to one program: [prepare]'s state packed with the
    hooks, so the transform engine needs no first-class-module plumbing
    per call. *)
type instance = {
  i_name : string;
  i_alloc_pad : replica:int -> site:int -> int;
  i_pre_alloc :
    replica:int -> site:int -> Builder.t -> Types.ty -> Inst.operand -> Inst.operand list;
  i_post_alloc : replica:int -> site:int -> Builder.t -> Inst.operand list -> unit;
  i_order : site:int -> n:int -> int array;
  i_startup : Builder.t -> unit;
}

let instantiate (module F : S) prog ~seed ~replicas =
  let st = F.prepare prog ~seed ~replicas in
  {
    i_name = F.name;
    i_alloc_pad = F.alloc_pad st;
    i_pre_alloc = F.pre_alloc st;
    i_post_alloc = F.post_alloc st;
    i_order = F.order st;
    i_startup = F.startup st;
  }

(* ---------------- registry ---------------- *)

let registry : (string, family) Hashtbl.t = Hashtbl.create 8

let register ((module F : S) as f) = Hashtbl.replace registry F.name f
let find name : family option = Hashtbl.find_opt registry name
let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let description name =
  match find name with Some (module F) -> Some F.description | None -> None

(** Resolve a config's family-name list; [Error] names the first unknown
    family (callers turn this into a validation error, never an abort). *)
let resolve names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match find n with Some f -> go (f :: acc) rest | None -> Error n)
  in
  go [] names

(* ---------------- deterministic per-(replica, site) randomness ------- *)

(** splitmix64 finalizer: a pure 64-bit mix, so family decisions depend
    only on the derivation inputs and never on hook call order. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fnv1a64 str =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    str;
  !h

(** [derive ~seed ~tag ~replica ~site] — the family's random word for one
    (replica, site) decision. *)
let derive ~seed ~tag ~replica ~site =
  mix64
    (Int64.logxor
       (Int64.add seed (fnv1a64 tag))
       (Int64.add
          (Int64.mul (Int64.of_int (replica + 1)) 0x9e3779b97f4a7c15L)
          (Int64.mul (Int64.of_int (site + 1)) 0xd1b54a32d192ed03L)))

(** Map a random word into [lo, hi] inclusive. *)
let rand_in ~lo ~hi x =
  if hi <= lo then lo
  else
    let span = Int64.of_int (hi - lo + 1) in
    lo + Int64.to_int (Int64.unsigned_rem x span)
