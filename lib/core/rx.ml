(** Rx-style recovery on top of DPMR detection (§1.5, Chapter 6).

    The dissertation positions DPMR and Qin et al.'s Rx as complements:
    "DPMR could be used to detect memory errors, and Rx could be used to
    recover from the detected errors."  This module implements that
    pairing with the coarsest checkpoint — re-execution from the start —
    and Rx's buffer-overflow environment change: after a DPMR detection,
    the program is re-executed with every heap allocation request padded,
    escalating the padding until a re-execution completes cleanly or the
    escalation list is exhausted.

    Deterministically activated overflow faults (the kind classic
    replication cannot mask, §1.2) are exactly the ones this recovers:
    the fault still executes, but the padded environment absorbs it. *)

open Dpmr_ir
open Types
open Inst

(** [pad_heap_requests prog extra_bytes] returns a clone in which every
    heap allocation requests enough additional elements to cover
    [extra_bytes] more bytes — the Rx "pad the overflowed buffer"
    environment change, applied program-wide (the detector does not know
    which buffer overflowed). *)
let pad_heap_requests (prog : Prog.t) extra_bytes =
  let q = Clone.prog prog in
  Prog.iter_funcs q (fun f ->
      List.iter
        (fun (b : Func.block) ->
          b.Func.insts <-
            List.concat_map
              (fun inst ->
                match inst with
                | Malloc (r, ty, n) ->
                    let esz = max 1 (Layout.size_of q.Prog.tenv ty) in
                    let extra_elems = (extra_bytes + esz - 1) / esz in
                    let t = Func.fresh_reg f ~name:"rx_pad" i64 in
                    [
                      Binop (t, Add, W64, n, Cint (W64, Int64.of_int extra_elems));
                      Malloc (r, ty, Reg t);
                    ]
                | other -> [ other ])
              b.Func.insts)
        f.Func.blocks);
  q

(** An Rx environment change: program-wide heap padding (the classic Rx
    buffer-overflow response) or one of the registered N-version
    diversity families, applied as a whole-program rewrite. *)
type env_change = Pad of int | Family of string

let env_change_name = function
  | Pad n -> Printf.sprintf "pad %d" n
  | Family f -> Printf.sprintf "family %s" f

(** Apply an environment change to a program; [None] when the change is
    inapplicable (unregistered family, or the family has no whole-program
    rewrite), in which case the escalation step is skipped. *)
let apply_env_change (prog : Prog.t) ~seed = function
  | Pad n -> Some (pad_heap_requests prog n)
  | Family f -> (
      match Diversity_family.find f with
      | None -> None
      | Some (module F : Diversity_family.S) -> F.rx_rewrite prog ~seed)

type recovery_result = {
  first : Dpmr_vm.Outcome.run;  (** the original (detecting) run *)
  final : Dpmr_vm.Outcome.run;  (** the last run performed *)
  recovered_with : env_change option;
      (** environment change that produced a clean run *)
  attempts : int;  (** re-executions performed *)
}

(** [run_with_recovery cfg prog ~escalation] runs [prog] under DPMR; on a
    DPMR detection, re-executes from the initial state with each
    environment change in [escalation] (in order) until a run completes
    normally. *)
let run_with_recovery ?seed ?budget ?args (cfg : Config.t) (prog : Prog.t)
    ~escalation =
  let module Trace = Dpmr_trace.Trace in
  (* phase markers separate the original run from each diversified
     re-execution in a recorded trace *)
  let mark label =
    match Trace.current () with
    | Some s -> Trace.emit_phase s ~label
    | None -> ()
  in
  let run p = Dpmr.run_dpmr ?seed ?budget ?args cfg p in
  let rw_seed = match seed with Some s -> s | None -> cfg.Config.seed in
  mark "rx:first-run";
  let first = run prog in
  match first.Dpmr_vm.Outcome.outcome with
  | Dpmr_vm.Outcome.Dpmr_detect _ ->
      let rec attempt n = function
        | [] -> { first; final = first; recovered_with = None; attempts = n }
        | change :: rest -> (
            match apply_env_change prog ~seed:rw_seed change with
            | None -> attempt n rest
            | Some p ->
                mark (Printf.sprintf "rx:retry %s" (env_change_name change));
                let r = run p in
                if r.Dpmr_vm.Outcome.outcome = Dpmr_vm.Outcome.Normal then
                  { first; final = r; recovered_with = Some change; attempts = n + 1 }
                else attempt (n + 1) rest)
      in
      attempt 0 escalation
  | _ -> { first; final = first; recovered_with = None; attempts = 0 }
