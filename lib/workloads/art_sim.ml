(** art: floating-point neural-network object recognizer (SPEC 179.art
    stand-in).

    Adaptive-resonance-flavoured competitive learning over synthetic
    "thermal image" patches: bottom-up weights score each F1 neuron, the
    winner passes a vigilance test against its top-down template and
    learns the patch.  Allocation profile matches the original's
    character: a handful of large heap arrays of doubles, almost no
    pointers stored in memory (pointer-light). *)

open Dpmr_ir
open Types
open Inst
module B = Builder

let name = "art"

(* scale 1: ~100k golden cost units *)
let prog ?(scale = 1) () =
  let n_inputs = 36 in
  let n_f1 = 8 in
  let epochs = 1 + scale in
  let n_scans = 12 * scale in
  let p = Wk_util.fresh_prog () in

  (* dot(a + off_a, b + off_b, n) *)
  let b = B.create p ~name:"dot" ~params:[ ("a", Ptr Float); ("b", Ptr Float); ("n", i64) ] ~ret:Float () in
  let acc = B.local b ~name:"acc" Float (B.fc 0.0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.param b 2) (fun i ->
      let x = B.load b Float (B.gep_index b (B.param b 0) i) in
      let y = B.load b Float (B.gep_index b (B.param b 1) i) in
      B.set b Float acc (B.fadd b (B.get b Float acc) (B.fmul b x y)));
  B.ret b (Some (B.get b Float acc));

  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let g = Wk_util.lcg_init b 0x5EEDL in
  (* heap arrays (array allocation sites for the resize injections) *)
  let image = B.malloc b ~name:"image" ~count:(B.i64c (n_scans * n_inputs)) Float in
  let bus = B.malloc b ~name:"bus" ~count:(B.i64c (n_f1 * n_inputs)) Float in
  let tds = B.malloc b ~name:"tds" ~count:(B.i64c (n_f1 * n_inputs)) Float in
  let act = B.malloc b ~name:"act" ~count:(B.i64c n_f1) Float in
  let wins = B.malloc b ~name:"wins" ~count:(B.i64c n_f1) i64 in
  (* synthetic thermal image: smooth-ish pseudo-random field *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c (n_scans * n_inputs)) (fun i ->
      let r = Wk_util.lcg_below b g 1000 in
      let x = B.i_to_f b W64 r in
      let v = B.fdiv b x (B.fc 1000.0) in
      B.store b Float v (B.gep_index b image i));
  (* weight init *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c (n_f1 * n_inputs)) (fun i ->
      let r = Wk_util.lcg_below b g 100 in
      let v = B.fdiv b (B.i_to_f b W64 r) (B.fc 200.0) in
      B.store b Float v (B.gep_index b bus i);
      B.store b Float (B.fc 1.0) (B.gep_index b tds i));
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n_f1) (fun i ->
      B.store b i64 (B.i64c 0) (B.gep_index b wins i));

  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c epochs) (fun _e ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n_scans) (fun s ->
          let patch_off = B.mul b W64 s (B.i64c n_inputs) in
          let patch = B.gep_index b image patch_off in
          (* bottom-up activations *)
          B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n_f1) (fun f ->
              let woff = B.mul b W64 f (B.i64c n_inputs) in
              let w = B.gep_index b bus woff in
              let a = B.call1 b (Direct "dot") [ patch; w; B.i64c n_inputs ] in
              B.store b Float a (B.gep_index b act f));
          (* winner take all *)
          let best = B.local b ~name:"best" i64 (B.i64c 0) in
          let bestv = B.local b ~name:"bestv" Float (B.fc (-1e18)) in
          B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n_f1) (fun f ->
              let a = B.load b Float (B.gep_index b act f) in
              let gt = B.fcmp b Fogt a (B.get b Float bestv) in
              B.if_ b gt (fun () ->
                  B.set b Float bestv a;
                  B.set b i64 best f));
          let w = B.get b i64 best in
          (* vigilance: match score of top-down template against patch *)
          let toff = B.mul b W64 w (B.i64c n_inputs) in
          let td = B.gep_index b tds toff in
          let m = B.call1 b (Direct "dot") [ patch; td; B.i64c n_inputs ] in
          let norm = B.call1 b (Direct "dot") [ patch; patch; B.i64c n_inputs ] in
          let vig = B.fcmp b Foge m (B.fmul b norm (B.fc 0.3)) in
          B.if_ b vig (fun () ->
              (* resonance: learn the patch into both weight sets *)
              let wslot = B.gep_index b wins w in
              let c = B.load b i64 wslot in
              B.store b i64 (B.add b W64 c (B.i64c 1)) wslot;
              B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n_inputs) (fun i ->
                  let pi = B.load b Float (B.gep_index b patch i) in
                  let tdp = B.gep_index b td i in
                  let old_td = B.load b Float tdp in
                  let blended =
                    B.fadd b (B.fmul b old_td (B.fc 0.6)) (B.fmul b pi (B.fc 0.4))
                  in
                  B.store b Float blended tdp;
                  let buoff = B.add b W64 toff i in
                  let bup = B.gep_index b bus buoff in
                  let old_bu = B.load b Float bup in
                  let bu' = B.fadd b (B.fmul b old_bu (B.fc 0.8)) (B.fmul b pi (B.fc 0.2)) in
                  B.store b Float bu' bup))));

  (* report: winner histogram + weight checksums *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n_f1) (fun f ->
      let c = B.load b i64 (B.gep_index b wins f) in
      B.call0 b (Direct "print_int") [ c ];
      B.call0 b (Direct "putchar") [ B.i32c 32 ]);
  B.call0 b (Direct "print_newline") [];
  Wk_util.print_kv_f b "td" (Wk_util.sum_f64 b tds (n_f1 * n_inputs));
  Wk_util.print_kv_f b "bu" (Wk_util.sum_f64 b bus (n_f1 * n_inputs));
  B.free b act;
  B.free b wins;
  B.free b tds;
  B.free b bus;
  B.free b image;
  B.ret b (Some (B.i32c 0));
  p
