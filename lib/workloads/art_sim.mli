(** art: floating-point neural-network object recognizer (SPEC 179.art
    stand-in) — competitive learning over synthetic thermal-image
    patches.  Pointer-light, float-array heavy. *)

val name : string
val prog : ?scale:int -> unit -> Dpmr_ir.Prog.t
