(** equake: seismic wave propagation on an unstructured sparse mesh (SPEC
    183.equake stand-in) — per-node adjacency reached through pointers in
    node structures; displacement vectors rotated by pointer swaps.
    Pointer-heavy, floating point. *)

val name : string
val prog : ?scale:int -> unit -> Dpmr_ir.Prog.t
