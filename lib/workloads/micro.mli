(** Micro workloads: small single-data-structure programs used by the
    wider test matrix and ablation benches. *)

open Dpmr_ir

(** Linked list: build, sum, reverse in place, sum again. *)
val linked_list : ?n:int -> unit -> Prog.t

(** Unbalanced BST: random inserts, then membership counting. *)
val binary_tree : ?n:int -> unit -> Prog.t

(** Open-addressing hash table over calloc'd storage, grown with
    realloc. *)
val hash_table : ?n:int -> unit -> Prog.t

(** strcpy/strlen/strcmp/qsort-over-pointers workout. *)
val string_suite : unit -> Prog.t

val all : (string * (unit -> Prog.t)) list
