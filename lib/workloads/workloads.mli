(** Registry of the benchmark workloads — stand-ins for the §3.3
    application set (SPEC CPU2000 art, bzip2, equake, mcf), chosen to
    span the same space of pointer density and allocation behaviour. *)

type entry = {
  name : string;
  description : string;
  build : ?scale:int -> unit -> Dpmr_ir.Prog.t;
}

val all : entry list
val find : string -> entry
val names : string list
