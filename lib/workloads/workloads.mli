(** Registry of the benchmark workloads — stand-ins for the §3.3
    application set (SPEC CPU2000 art, bzip2, equake, mcf), chosen to
    span the same space of pointer density and allocation behaviour. *)

type entry = {
  name : string;
  description : string;
  build : ?scale:int -> unit -> Dpmr_ir.Prog.t;
}

val all : entry list

val register : entry -> unit
(** Add a dynamic entry (e.g. a program submitted over the serving
    protocol) resolvable by {!find} alongside the built-ins.  Names
    should be content-addressed — the engine's cache identity hashes
    the workload {e name}, so two different programs must never share
    one.  Thread-safe; re-registering a name replaces the entry;
    built-in names are refused. *)

val find : string -> entry
(** Built-ins first, then dynamic entries; raises [Invalid_argument] on
    unknown names. *)

val names : string list
(** Built-in names only. *)

