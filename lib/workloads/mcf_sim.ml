(** mcf: combinatorial minimum-cost-flow vehicle scheduler (SPEC 181.mcf
    stand-in).

    Successive shortest-path augmentation on a random flow network whose
    arcs live in per-node linked lists (arc records chained through
    [next] pointers) — the pointer-chasing allocation and traversal
    profile of the original.  Prints the routed flow and its cost. *)

open Dpmr_ir
open Types
open Inst
module B = Builder

let name = "mcf"

let prog ?(scale = 1) () =
  let n = 24 * scale in
  let out_deg = 4 in
  let rounds = 6 * scale in
  let p = Wk_util.fresh_prog () in
  (* Arc: dst, cost, cap, flow, next (per-source chain), src *)
  Tenv.define_struct p.Prog.tenv "Arc" [ i64; i64; i64; i64; Ptr (Struct "Arc"); i64 ];
  (* Node: first-arc, dist, pred-arc *)
  Tenv.define_struct p.Prog.tenv "Nd" [ Ptr (Struct "Arc"); i64; Ptr (Struct "Arc") ];
  let arc = Struct "Arc" and nd = Struct "Nd" in
  let inf = 1_000_000_000 in

  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let g = Wk_util.lcg_init b 0x3CFL in
  let nodes = B.malloc b ~name:"nodes" ~count:(B.i64c n) nd in
  (* per-node relaxation counters (basis-change statistics in real mcf) *)
  let relax = B.malloc b ~name:"relax" ~count:(B.i64c n) i64 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      B.store b i64 (B.i64c 0) (B.gep_index b relax i));
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let v = B.gep_index b nodes i in
      B.store b (Ptr arc) (B.null arc) (B.gep_field b v 0);
      B.store b i64 (B.i64c inf) (B.gep_field b v 1);
      B.store b (Ptr arc) (B.null arc) (B.gep_field b v 2));
  (* arcs: each node gets a forward edge (connectivity) + random chords *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let v = B.gep_index b nodes i in
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c out_deg) (fun c ->
          let a = B.malloc b ~name:"arc" arc in
          let is_fwd = B.icmp b Ieq W64 c (B.i64c 0) in
          let fwd = B.binop b Urem W64 (B.add b W64 i (B.i64c 1)) (B.i64c n) in
          let rnd = Wk_util.lcg_below b g n in
          let dst = B.select b i64 is_fwd fwd rnd in
          B.store b i64 dst (B.gep_field b a 0);
          let cost = B.add b W64 (Wk_util.lcg_below b g 20) (B.i64c 1) in
          B.store b i64 cost (B.gep_field b a 1);
          let cap = B.add b W64 (Wk_util.lcg_below b g 8) (B.i64c 2) in
          B.store b i64 cap (B.gep_field b a 2);
          B.store b i64 (B.i64c 0) (B.gep_field b a 3);
          B.store b i64 i (B.gep_field b a 5);
          (* push on the source node's chain *)
          let head = B.load b (Ptr arc) (B.gep_field b v 0) in
          B.store b (Ptr arc) head (B.gep_field b a 4);
          B.store b (Ptr arc) a (B.gep_field b v 0)));

  let total_flow = B.local b ~name:"flow" i64 (B.i64c 0) in
  let total_cost = B.local b ~name:"cost" i64 (B.i64c 0) in
  let sink = n - 1 in

  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c rounds) (fun _round ->
      (* Bellman-Ford over residual capacity (forward arcs only) *)
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let v = B.gep_index b nodes i in
          B.store b i64 (B.i64c inf) (B.gep_field b v 1);
          B.store b (Ptr arc) (B.null arc) (B.gep_field b v 2));
      let src = B.gep_index b nodes (B.i64c 0) in
      B.store b i64 (B.i64c 0) (B.gep_field b src 1);
      let passes = 1 + (n / 3) in
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c passes) (fun _pass ->
          B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
              let v = B.gep_index b nodes i in
              let dv = B.load b i64 (B.gep_field b v 1) in
              let reachable = B.icmp b Islt W64 dv (B.i64c inf) in
              B.if_ b reachable (fun () ->
                  let cur = B.local b ~name:"cura" (Ptr arc) (B.load b (Ptr arc) (B.gep_field b v 0)) in
                  B.while_ b
                    (fun () ->
                      let a = B.get b (Ptr arc) cur in
                      B.icmp b Ine W64 (B.ptr_to_int b a) (B.i64c 0))
                    (fun () ->
                      let a = B.get b (Ptr arc) cur in
                      let cap = B.load b i64 (B.gep_field b a 2) in
                      let flw = B.load b i64 (B.gep_field b a 3) in
                      let residual = B.sub b W64 cap flw in
                      let has = B.icmp b Isgt W64 residual (B.i64c 0) in
                      B.if_ b has (fun () ->
                          let dst = B.load b i64 (B.gep_field b a 0) in
                          let w = B.gep_index b nodes dst in
                          let cost = B.load b i64 (B.gep_field b a 1) in
                          let cand = B.add b W64 dv cost in
                          let dw = B.load b i64 (B.gep_field b w 1) in
                          let better = B.icmp b Islt W64 cand dw in
                          B.if_ b better (fun () ->
                              B.store b i64 cand (B.gep_field b w 1);
                              B.store b (Ptr arc) a (B.gep_field b w 2);
                              let rslot = B.gep_index b relax dst in
                              let rc = B.load b i64 rslot in
                              B.store b i64 (B.add b W64 rc (B.i64c 1)) rslot));
                      B.set b (Ptr arc) cur (B.load b (Ptr arc) (B.gep_field b a 4))))));
      (* augment one unit along the predecessor chain, if the sink was
         reached (unit augmentation keeps the walk simple) *)
      let snk = B.gep_index b nodes (B.i64c sink) in
      let ds = B.load b i64 (B.gep_field b snk 1) in
      let reached = B.icmp b Islt W64 ds (B.i64c inf) in
      B.if_ b reached (fun () ->
          let cur = B.local b ~name:"walk" (Ptr arc) (B.load b (Ptr arc) (B.gep_field b snk 2)) in
          let steps = B.local b ~name:"steps" i64 (B.i64c 0) in
          B.while_ b
            (fun () ->
              let a = B.get b (Ptr arc) cur in
              let nz = B.icmp b Ine W64 (B.ptr_to_int b a) (B.i64c 0) in
              let bounded = B.icmp b Islt W64 (B.get b i64 steps) (B.i64c (2 * n)) in
              B.binop b And W8 nz bounded)
            (fun () ->
              let a = B.get b (Ptr arc) cur in
              let f = B.load b i64 (B.gep_field b a 3) in
              B.store b i64 (B.add b W64 f (B.i64c 1)) (B.gep_field b a 3);
              (* hop to the arc that reached this arc's source node *)
              let src_i = B.load b i64 (B.gep_field b a 5) in
              let vsrc = B.gep_index b nodes src_i in
              B.set b (Ptr arc) cur (B.load b (Ptr arc) (B.gep_field b vsrc 2));
              B.set b i64 steps (B.add b W64 (B.get b i64 steps) (B.i64c 1)));
          B.set b i64 total_flow (B.add b W64 (B.get b i64 total_flow) (B.i64c 1));
          B.set b i64 total_cost (B.add b W64 (B.get b i64 total_cost) ds)));

  Wk_util.print_kv b "flow" (B.get b i64 total_flow);
  Wk_util.print_kv b "cost" (B.get b i64 total_cost);
  Wk_util.print_kv b "relax" (Wk_util.checksum_i64 b relax n);
  B.free b relax;
  (* teardown: free the arc chains, then the node array *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let v = B.gep_index b nodes i in
      let cur = B.local b ~name:"fcur" (Ptr arc) (B.load b (Ptr arc) (B.gep_field b v 0)) in
      B.while_ b
        (fun () ->
          let a = B.get b (Ptr arc) cur in
          B.icmp b Ine W64 (B.ptr_to_int b a) (B.i64c 0))
        (fun () ->
          let a = B.get b (Ptr arc) cur in
          let nxt = B.load b (Ptr arc) (B.gep_field b a 4) in
          B.free b a;
          B.set b (Ptr arc) cur nxt));
  B.free b nodes;
  B.ret b (Some (B.i32c 0));
  p
