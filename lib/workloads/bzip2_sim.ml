(** bzip2: integer in-memory block compressor (SPEC 256.bzip2 stand-in;
    like SPEC's version it performs all compression and decompression
    entirely in memory).

    Pipeline: synthetic run-structured input -> RLE encode -> move-to-
    front transform -> byte-frequency model (entropy size estimate) ->
    MTF decode -> RLE decode -> verify round-trip against the input.  A
    verification failure prints an error and exits nonzero, giving the
    workload an application-level (natural) detection path.  Allocation
    profile: a few large integer buffers, no pointers in memory. *)

open Dpmr_ir
open Types
open Inst
module B = Builder

let name = "bzip2"

let prog ?(scale = 1) () =
  let n = 1024 * scale in
  let p = Wk_util.fresh_prog () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let g = Wk_util.lcg_init b 0xB2100L in

  (* input: runs of random bytes with random short lengths *)
  let input = B.malloc b ~name:"input" ~count:(B.i64c n) i8 in
  let pos = B.local b ~name:"pos" i64 (B.i64c 0) in
  B.while_ b
    (fun () ->
      let q = B.get b i64 pos in
      B.icmp b Islt W64 q (B.i64c n))
    (fun () ->
      let byte = Wk_util.lcg_below b g 32 in
      let len = Wk_util.lcg_below b g 7 in
      let len = B.add b W64 len (B.i64c 1) in
      B.for_ b ~from:(B.i64c 0) ~below:len (fun _ ->
          let q = B.get b i64 pos in
          let inb = B.icmp b Islt W64 q (B.i64c n) in
          B.if_ b inb (fun () ->
              B.store b i8 (B.int_cast b W8 byte) (B.gep_index b input q);
              B.set b i64 pos (B.add b W64 q (B.i64c 1)))));

  (* RLE encode: pairs (byte, runlen<=255); worst case 2n *)
  let enc = B.malloc b ~name:"enc" ~count:(B.i64c (2 * n)) i8 in
  let out = B.local b ~name:"out" i64 (B.i64c 0) in
  let i = B.local b ~name:"i" i64 (B.i64c 0) in
  B.while_ b
    (fun () -> B.icmp b Islt W64 (B.get b i64 i) (B.i64c n))
    (fun () ->
      let ii = B.get b i64 i in
      let cur = B.load b i8 (B.gep_index b input ii) in
      let run = B.local b ~name:"run" i64 (B.i64c 1) in
      B.while_ b
        (fun () ->
          let j = B.add b W64 ii (B.get b i64 run) in
          let inb = B.icmp b Islt W64 j (B.i64c n) in
          let short = B.icmp b Islt W64 (B.get b i64 run) (B.i64c 255) in
          let both = B.binop b And W8 inb short in
          (* guarded continuation check: compare the next byte only when
             it is in range *)
          let cont = B.local b ~name:"cont" i8 (B.i8c 0) in
          B.if_ b both (fun () ->
              let j2 = B.add b W64 ii (B.get b i64 run) in
              let nb = B.load b i8 (B.gep_index b input j2) in
              let eq = B.icmp b Ieq W8 nb cur in
              B.set b i8 cont eq);
          B.get b i8 cont)
        (fun () -> B.set b i64 run (B.add b W64 (B.get b i64 run) (B.i64c 1)));
      let o = B.get b i64 out in
      B.store b i8 cur (B.gep_index b enc o);
      let o1 = B.add b W64 o (B.i64c 1) in
      B.store b i8 (B.int_cast b W8 (B.get b i64 run)) (B.gep_index b enc o1);
      B.set b i64 out (B.add b W64 o (B.i64c 2));
      B.set b i64 i (B.add b W64 ii (B.get b i64 run)));
  let enc_len = B.get b i64 out in

  (* move-to-front over the encoded bytes + frequency model *)
  let mtf = B.malloc b ~name:"mtf" ~count:(B.i64c 256) i8 in
  let freq = B.malloc b ~name:"freq" ~count:(B.i64c 256) i64 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 256) (fun k ->
      B.store b i8 (B.int_cast b W8 k) (B.gep_index b mtf k);
      B.store b i64 (B.i64c 0) (B.gep_index b freq k));
  let coded = B.malloc b ~name:"coded" ~count:(B.i64c (2 * n)) i8 in
  B.for_ b ~from:(B.i64c 0) ~below:enc_len (fun k ->
      let byte = B.load b i8 (B.gep_index b enc k) in
      (* find rank of byte in mtf table *)
      let rank = B.local b ~name:"rank" i64 (B.i64c 0) in
      B.while_ b
        (fun () ->
          let r = B.get b i64 rank in
          let v = B.load b i8 (B.gep_index b mtf r) in
          let ne = B.icmp b Ine W8 v byte in
          let inb = B.icmp b Islt W64 r (B.i64c 255) in
          B.binop b And W8 ne inb)
        (fun () -> B.set b i64 rank (B.add b W64 (B.get b i64 rank) (B.i64c 1)));
      let r = B.get b i64 rank in
      B.store b i8 (B.int_cast b W8 r) (B.gep_index b coded k);
      (* shift table down, put byte in front *)
      let j = B.local b ~name:"j" i64 r in
      B.while_ b
        (fun () -> B.icmp b Isgt W64 (B.get b i64 j) (B.i64c 0))
        (fun () ->
          let jj = B.get b i64 j in
          let prev = B.sub b W64 jj (B.i64c 1) in
          let v = B.load b i8 (B.gep_index b mtf prev) in
          B.store b i8 v (B.gep_index b mtf jj);
          B.set b i64 j prev);
      B.store b i8 byte (B.gep_index b mtf (B.i64c 0));
      let fslot = B.gep_index b freq r in
      let c = B.load b i64 fslot in
      B.store b i64 (B.add b W64 c (B.i64c 1)) fslot);
  (* "entropy" estimate: sum rank * freq *)
  let est = B.local b ~name:"est" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 256) (fun k ->
      let c = B.load b i64 (B.gep_index b freq k) in
      let e = B.get b i64 est in
      B.set b i64 est (B.add b W64 e (B.mul b W64 c (B.add b W64 k (B.i64c 1)))));

  (* decode: MTF decode then RLE decode, verify round trip *)
  let mtf2 = B.malloc b ~name:"mtf2" ~count:(B.i64c 256) i8 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 256) (fun k ->
      B.store b i8 (B.int_cast b W8 k) (B.gep_index b mtf2 k));
  let dec = B.malloc b ~name:"dec" ~count:(B.i64c n) i8 in
  let dpos = B.local b ~name:"dpos" i64 (B.i64c 0) in
  let k = B.local b ~name:"k" i64 (B.i64c 0) in
  B.while_ b
    (fun () -> B.icmp b Islt W64 (B.get b i64 k) enc_len)
    (fun () ->
      let kk = B.get b i64 k in
      (* decode one MTF symbol at stream position [pos] and update the
         decoder table (both byte and run-length positions are coded) *)
      let decode_at pos =
        let rank = B.load b i8 (B.gep_index b coded pos) in
        let rank64 = B.int_cast b ~signed:false W64 rank in
        let byte = B.load b i8 (B.gep_index b mtf2 rank64) in
        let j = B.local b ~name:"j2" i64 rank64 in
        B.while_ b
          (fun () -> B.icmp b Isgt W64 (B.get b i64 j) (B.i64c 0))
          (fun () ->
            let jj = B.get b i64 j in
            let prev = B.sub b W64 jj (B.i64c 1) in
            let v = B.load b i8 (B.gep_index b mtf2 prev) in
            B.store b i8 v (B.gep_index b mtf2 jj);
            B.set b i64 j prev);
        B.store b i8 byte (B.gep_index b mtf2 (B.i64c 0));
        byte
      in
      let byte = decode_at kk in
      let k1 = B.add b W64 kk (B.i64c 1) in
      let run = decode_at k1 in
      let run64 = B.int_cast b ~signed:false W64 run in
      B.for_ b ~from:(B.i64c 0) ~below:run64 (fun _ ->
          let d = B.get b i64 dpos in
          let inb = B.icmp b Islt W64 d (B.i64c n) in
          B.if_ b inb (fun () ->
              B.store b i8 byte (B.gep_index b dec d);
              B.set b i64 dpos (B.add b W64 d (B.i64c 1))));
      B.set b i64 k (B.add b W64 kk (B.i64c 2)));

  (* verify round trip *)
  let errors = B.local b ~name:"errors" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun q ->
      let a = B.load b i8 (B.gep_index b input q) in
      let d = B.load b i8 (B.gep_index b dec q) in
      let ne = B.icmp b Ine W8 a d in
      B.if_ b ne (fun () ->
          B.set b i64 errors (B.add b W64 (B.get b i64 errors) (B.i64c 1))));
  let bad = B.icmp b Isgt W64 (B.get b i64 errors) (B.i64c 0) in
  B.if_ b bad (fun () ->
      Wk_util.print_kv b "MISCOMPARE" (B.get b i64 errors);
      B.call0 b (Direct "exit") [ B.i32c 2 ]);
  Wk_util.print_kv b "in" (B.i64c n);
  Wk_util.print_kv b "enc" enc_len;
  Wk_util.print_kv b "est" (B.get b i64 est);
  List.iter (B.free b) [ dec; mtf2; coded; freq; mtf; enc; input ];
  B.ret b (Some (B.i32c 0));
  p
