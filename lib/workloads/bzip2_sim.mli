(** bzip2: integer in-memory block compressor (SPEC 256.bzip2 stand-in) —
    RLE + move-to-front + frequency model with a round-trip verify that
    exits nonzero on miscompare.  Pointer-light, int-array heavy. *)

val name : string
val prog : ?scale:int -> unit -> Dpmr_ir.Prog.t
