(** Registry of the benchmark workloads (the §3.3 application set). *)

type entry = {
  name : string;
  description : string;
  build : ?scale:int -> unit -> Dpmr_ir.Prog.t;
}

let all =
  [
    {
      name = Art_sim.name;
      description = "neural network recognizing objects in a thermal image (FP, pointer-light)";
      build = (fun ?scale () -> Art_sim.prog ?scale ());
    };
    {
      name = Bzip2_sim.name;
      description = "in-memory block compression with round-trip verify (int, pointer-light)";
      build = (fun ?scale () -> Bzip2_sim.prog ?scale ());
    };
    {
      name = Equake_sim.name;
      description = "seismic wave propagation on a sparse mesh (FP, pointer-heavy)";
      build = (fun ?scale () -> Equake_sim.prog ?scale ());
    };
    {
      name = Mcf_sim.name;
      description = "min-cost-flow vehicle scheduling on linked arcs (int, pointer-heavy)";
      build = (fun ?scale () -> Mcf_sim.prog ?scale ());
    };
  ]

(* Dynamic entries: programs submitted over the serving protocol (or by
   embedders) register here under content-addressed names, so the whole
   engine path — job specs, the result cache, per-domain experiment
   contexts — applies to them unchanged.  Shared across domains, hence
   the mutex: pool workers resolve names while a server session
   registers new ones. *)
let dynamic : (string, entry) Hashtbl.t = Hashtbl.create 16
let dynamic_mu = Mutex.create ()

let register e =
  Mutex.protect dynamic_mu (fun () ->
      if List.exists (fun s -> s.name = e.name) all then
        invalid_arg (Printf.sprintf "Workloads.register: %S is a built-in" e.name)
      else Hashtbl.replace dynamic e.name e)

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> (
      match Mutex.protect dynamic_mu (fun () -> Hashtbl.find_opt dynamic name) with
      | Some e -> e
      | None -> invalid_arg (Printf.sprintf "Workloads.find: unknown workload %S" name))

let names = List.map (fun e -> e.name) all
