(** Shared helpers for the benchmark workloads.

    Workload inputs are generated *inside* the IR with a 64-bit LCG, so
    input data is part of program semantics: golden and transformed builds
    see identical inputs, and runs are reproducible by construction. *)

open Dpmr_ir
open Types
open Inst

let fresh_prog () =
  let p = Prog.create () in
  Dpmr_vm.Extern.declare_signatures p;
  p

(** Mutable LCG state in a stack slot; [next] emits one step and returns
    the new value (a positive pseudo-random i64). *)
type lcg = { slot : operand }

let lcg_init b seed = { slot = Builder.local b ~name:"lcg" i64 (Builder.i64c' seed) }

let lcg_next b g =
  let s = Builder.get b i64 g.slot in
  let m = Builder.mul b W64 s (Builder.i64c' 6364136223846793005L) in
  let s' = Builder.add b W64 m (Builder.i64c' 1442695040888963407L) in
  Builder.set b i64 g.slot s';
  (* top bits are the most random; keep the result non-negative *)
  Builder.binop b Lshr W64 s' (Builder.i64c 17)

(** [lcg_below b g n]: pseudo-random i64 in [0, n). *)
let lcg_below b g n =
  let v = lcg_next b g in
  Builder.binop b Urem W64 v (Builder.i64c n)

(** Print "label=value\n" for an i64 operand. *)
let print_kv b label v =
  String.iter (fun ch -> Builder.call0 b (Direct "putchar") [ Builder.i32c (Char.code ch) ]) label;
  Builder.call0 b (Direct "putchar") [ Builder.i32c (Char.code '=') ];
  Builder.call0 b (Direct "print_int") [ v ];
  Builder.call0 b (Direct "print_newline") []

(** Print "label=value\n" for an f64 operand. *)
let print_kv_f b label v =
  String.iter (fun ch -> Builder.call0 b (Direct "putchar") [ Builder.i32c (Char.code ch) ]) label;
  Builder.call0 b (Direct "putchar") [ Builder.i32c (Char.code '=') ];
  Builder.call0 b (Direct "print_float") [ v ];
  Builder.call0 b (Direct "print_newline") []

(** Sum an i64 array (wrapping) — the standard output checksum. *)
let checksum_i64 b arr n =
  let acc = Builder.local b ~name:"cksum" i64 (Builder.i64c 0) in
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c n) (fun i ->
      let v = Builder.load b i64 (Builder.gep_index b arr i) in
      let a = Builder.get b i64 acc in
      let a = Builder.mul b W64 a (Builder.i64c 31) in
      Builder.set b i64 acc (Builder.add b W64 a v));
  Builder.get b i64 acc

(** Sum of an f64 array. *)
let sum_f64 b arr n =
  let acc = Builder.local b ~name:"fsum" Float (Builder.fc 0.0) in
  Builder.for_ b ~from:(Builder.i64c 0) ~below:(Builder.i64c n) (fun i ->
      let v = Builder.load b Float (Builder.gep_index b arr i) in
      Builder.set b Float acc (Builder.fadd b (Builder.get b Float acc) v));
  Builder.get b Float acc

let exit_with b code =
  Builder.call0 b (Direct "exit") [ Builder.i32c code ];
  Builder.ret b (Some (Builder.i32c code))
