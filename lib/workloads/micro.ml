(** Micro workloads: small, single-data-structure programs used by the
    wider test matrix and the ablation benches.  Each returns a fresh
    program whose golden output is a deterministic checksum. *)

open Dpmr_ir
open Types
open Inst
module B = Builder

let fresh = Wk_util.fresh_prog

(** Singly linked list: push n nodes, sum, reverse in place, sum again. *)
let linked_list ?(n = 64) () =
  let p = fresh () in
  Tenv.define_struct p.Prog.tenv "MLNode" [ i64; Ptr (Struct "MLNode") ];
  let node = Struct "MLNode" in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let head = B.local b ~name:"head" (Ptr node) (B.null node) in
  B.for_ b ~from:(B.i64c 1) ~below:(B.i64c (n + 1)) (fun i ->
      let nd = B.malloc b node in
      B.store b i64 (B.mul b W64 i (B.i64c 3)) (B.gep_field b nd 0);
      B.store b (Ptr node) (B.get b (Ptr node) head) (B.gep_field b nd 1);
      B.set b (Ptr node) head nd);
  let sum_list tag =
    let sum = B.local b ~name:("sum" ^ tag) i64 (B.i64c 0) in
    let cur = B.local b ~name:("cur" ^ tag) (Ptr node) (B.get b (Ptr node) head) in
    B.while_ b
      (fun () ->
        B.icmp b Ine W64 (B.ptr_to_int b (B.get b (Ptr node) cur)) (B.i64c 0))
      (fun () ->
        let c = B.get b (Ptr node) cur in
        let v = B.load b i64 (B.gep_field b c 0) in
        B.set b i64 sum (B.add b W64 (B.get b i64 sum) v);
        B.set b (Ptr node) cur (B.load b (Ptr node) (B.gep_field b c 1)));
    B.get b i64 sum
  in
  let s1 = sum_list "1" in
  (* reverse in place *)
  let prev = B.local b ~name:"prev" (Ptr node) (B.null node) in
  let cur = B.local b ~name:"rcur" (Ptr node) (B.get b (Ptr node) head) in
  B.while_ b
    (fun () -> B.icmp b Ine W64 (B.ptr_to_int b (B.get b (Ptr node) cur)) (B.i64c 0))
    (fun () ->
      let c = B.get b (Ptr node) cur in
      let nxt = B.load b (Ptr node) (B.gep_field b c 1) in
      B.store b (Ptr node) (B.get b (Ptr node) prev) (B.gep_field b c 1);
      B.set b (Ptr node) prev c;
      B.set b (Ptr node) cur nxt);
  B.set b (Ptr node) head (B.get b (Ptr node) prev);
  let s2 = sum_list "2" in
  Wk_util.print_kv b "s1" s1;
  Wk_util.print_kv b "s2" s2;
  B.ret b (Some (B.i32c 0));
  p

(** Unbalanced binary search tree: insert pseudo-random keys, then count
    the keys found by search and sum an in-order traversal (iterative,
    via an explicit stack of node pointers). *)
let binary_tree ?(n = 48) () =
  let p = fresh () in
  Tenv.define_struct p.Prog.tenv "TNode"
    [ i64; Ptr (Struct "TNode"); Ptr (Struct "TNode") ];
  let node = Struct "TNode" in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let g = Wk_util.lcg_init b 0x7EEEL in
  let root = B.local b ~name:"root" (Ptr node) (B.null node) in
  let mk_node k =
    let nd = B.malloc b node in
    B.store b i64 k (B.gep_field b nd 0);
    B.store b (Ptr node) (B.null node) (B.gep_field b nd 1);
    B.store b (Ptr node) (B.null node) (B.gep_field b nd 2);
    nd
  in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun _ ->
      let k = Wk_util.lcg_below b g 1000 in
      let nd = mk_node k in
      let r = B.get b (Ptr node) root in
      let root_null = B.icmp b Ieq W64 (B.ptr_to_int b r) (B.i64c 0) in
      B.if_else b root_null
        (fun () -> B.set b (Ptr node) root nd)
        (fun () ->
          let cur = B.local b ~name:"icur" (Ptr node) (B.get b (Ptr node) root) in
          let placed = B.local b ~name:"placed" i8 (B.i8c 0) in
          B.while_ b
            (fun () -> B.icmp b Ieq W8 (B.get b i8 placed) (B.i8c 0))
            (fun () ->
              let c = B.get b (Ptr node) cur in
              let ck = B.load b i64 (B.gep_field b c 0) in
              let go_left = B.icmp b Islt W64 k ck in
              let side = B.select b i64 go_left (B.i64c 1) (B.i64c 2) in
              (* gep to child slot: fields 1/2 share a type, address both *)
              let left = B.gep_field b c 1 in
              let right = B.gep_field b c 2 in
              let is_left = B.icmp b Ieq W64 side (B.i64c 1) in
              let slot = B.select b (Ptr (Ptr node)) is_left left right in
              let child = B.load b (Ptr node) slot in
              let child_null = B.icmp b Ieq W64 (B.ptr_to_int b child) (B.i64c 0) in
              B.if_else b child_null
                (fun () ->
                  B.store b (Ptr node) nd slot;
                  B.set b i8 placed (B.i8c 1))
                (fun () -> B.set b (Ptr node) cur child))));
  (* search for every key in 0..99, counting hits *)
  let hits = B.local b ~name:"hits" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c 1000) (fun k ->
      let cur = B.local b ~name:"scur" (Ptr node) (B.get b (Ptr node) root) in
      let found = B.local b ~name:"found" i8 (B.i8c 0) in
      B.while_ b
        (fun () ->
          let nz = B.icmp b Ine W64 (B.ptr_to_int b (B.get b (Ptr node) cur)) (B.i64c 0) in
          let nf = B.icmp b Ieq W8 (B.get b i8 found) (B.i8c 0) in
          B.binop b And W8 nz nf)
        (fun () ->
          let c = B.get b (Ptr node) cur in
          let ck = B.load b i64 (B.gep_field b c 0) in
          let eq = B.icmp b Ieq W64 ck k in
          B.if_else b eq
            (fun () -> B.set b i8 found (B.i8c 1))
            (fun () ->
              let lt = B.icmp b Islt W64 k ck in
              let l = B.load b (Ptr node) (B.gep_field b c 1) in
              let r = B.load b (Ptr node) (B.gep_field b c 2) in
              B.set b (Ptr node) cur (B.select b (Ptr node) lt l r)));
      let f64v = B.int_cast b ~signed:false W64 (B.get b i8 found) in
      B.set b i64 hits (B.add b W64 (B.get b i64 hits) f64v));
  Wk_util.print_kv b "hits" (B.get b i64 hits);
  B.ret b (Some (B.i32c 0));
  p

(** Open-addressing hash table over a calloc'd bucket array, grown with
    realloc — exercises the calloc/realloc wrappers. *)
let hash_table ?(n = 60) () =
  let p = fresh () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let str8 = Ptr (arr i8 0) in
  let cap0 = 64 in
  (* table of i64 keys (0 = empty), calloc'd so it starts empty *)
  let tbl =
    B.local b ~name:"tbl" str8
      (B.call1 b (Direct "calloc") [ B.i64c cap0; B.i64c 8 ])
  in
  let cap = B.local b ~name:"cap" i64 (B.i64c cap0) in
  let g = Wk_util.lcg_init b 0x4A54L in
  let insert k =
    let t = B.bitcast b (Ptr i64) (B.get b str8 tbl) in
    let c = B.get b i64 cap in
    let idx = B.local b ~name:"idx" i64 (B.binop b Urem W64 k c) in
    let placed = B.local b ~name:"hplaced" i8 (B.i8c 0) in
    B.while_ b
      (fun () -> B.icmp b Ieq W8 (B.get b i8 placed) (B.i8c 0))
      (fun () ->
        let i = B.get b i64 idx in
        let slot = B.gep_index b t i in
        let v = B.load b i64 slot in
        let empty = B.icmp b Ieq W64 v (B.i64c 0) in
        let same = B.icmp b Ieq W64 v k in
        let stop = B.binop b Or W8 empty same in
        B.if_else b stop
          (fun () ->
            B.store b i64 k slot;
            B.set b i8 placed (B.i8c 1))
          (fun () ->
            let i1 = B.binop b Urem W64 (B.add b W64 i (B.i64c 1)) c in
            B.set b i64 idx i1))
  in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun _ ->
      let k = B.add b W64 (Wk_util.lcg_below b g 5000) (B.i64c 1) in
      insert k);
  (* grow: realloc to double capacity (fresh slots are garbage; count only
     the original region afterwards, as the program knows its own load) *)
  let t8 = B.get b str8 tbl in
  let grown = B.call1 b (Direct "realloc") [ t8; B.i64c (cap0 * 16) ] in
  B.set b str8 tbl grown;
  let t = B.bitcast b (Ptr i64) (B.get b str8 tbl) in
  let occupied = B.local b ~name:"occ" i64 (B.i64c 0) in
  let keysum = B.local b ~name:"keysum" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.get b i64 cap) (fun i ->
      let v = B.load b i64 (B.gep_index b t i) in
      let nz = B.icmp b Ine W64 v (B.i64c 0) in
      B.if_ b nz (fun () ->
          B.set b i64 occupied (B.add b W64 (B.get b i64 occupied) (B.i64c 1));
          B.set b i64 keysum (B.add b W64 (B.get b i64 keysum) v)));
  Wk_util.print_kv b "occ" (B.get b i64 occupied);
  Wk_util.print_kv b "keysum" (B.get b i64 keysum);
  B.ret b (Some (B.i32c 0));
  p

(** String suite: builds words, concatenates into a buffer with strcpy,
    measures with strlen, compares with strcmp, sorts word pointers with
    qsort through an indirect comparator. *)
let string_suite () =
  let p = fresh () in
  let str8 = Ptr (arr i8 0) in
  (* comparator over char** elements *)
  let b = B.create p ~name:"pcmp" ~params:[ ("a", str8); ("b", str8) ] ~ret:i32 () in
  let pa = B.load b str8 (B.bitcast b (Ptr str8) (B.param b 0)) in
  let pb = B.load b str8 (B.bitcast b (Ptr str8) (B.param b 1)) in
  B.ret b (Some (B.call1 b (Direct "strcmp") [ pa; pb ]));
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let words = [ "pear"; "apple"; "quince"; "fig"; "banana" ] in
  let nwords = List.length words in
  let arr_words = B.malloc b ~name:"words" ~count:(B.i64c nwords) str8 in
  List.iteri
    (fun i w ->
      let gname = Printf.sprintf "w%d" i in
      let gw =
        B.bitcast b str8
          (B.global b ~name:gname (arr i8 (String.length w + 1)) (Prog.Gstring w))
      in
      (* copy into heap storage so the sort moves heap pointers *)
      let buf = B.bitcast b str8 (B.malloc b ~count:(B.i64c 16) i8) in
      ignore (B.call b (Direct "strcpy") [ buf; gw ]);
      B.store b str8 buf (B.gep_index b arr_words (B.i64c i)))
    words;
  B.call0 b (Direct "qsort")
    [ B.bitcast b str8 arr_words; B.i64c nwords; B.i64c 8; Fun_addr "pcmp" ];
  let total = B.local b ~name:"total" i64 (B.i64c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c nwords) (fun i ->
      let w = B.load b str8 (B.gep_index b arr_words i) in
      B.call0 b (Direct "print_str") [ w ];
      B.call0 b (Direct "putchar") [ B.i32c 32 ];
      let l = B.call1 b (Direct "strlen") [ w ] in
      B.set b i64 total (B.add b W64 (B.get b i64 total) l));
  B.call0 b (Direct "print_newline") [];
  Wk_util.print_kv b "len" (B.get b i64 total);
  B.ret b (Some (B.i32c 0));
  p

let all : (string * (unit -> Prog.t)) list =
  [
    ("micro-list", fun () -> linked_list ());
    ("micro-tree", fun () -> binary_tree ());
    ("micro-hash", fun () -> hash_table ());
    ("micro-strings", string_suite);
  ]
