(** equake: seismic wave propagation on an unstructured sparse mesh (SPEC
    183.equake stand-in).

    Explicit time stepping of a damped wave equation over a ring-plus-
    chords mesh.  Allocation profile matches the original's character:
    per-node adjacency and coefficient arrays reached through pointers
    stored in node structures (pointer-heavy), plus displacement vectors
    rotated by pointer swapping. *)

open Dpmr_ir
open Types
open Inst
module B = Builder

let name = "equake"

let prog ?(scale = 1) () =
  let n = 48 * scale in
  let steps = 20 * scale in
  let chords = 2 in
  let deg = 2 + chords in
  let p = Wk_util.fresh_prog () in
  Tenv.define_struct p.Prog.tenv "Node" [ i64; Ptr i64; Ptr Float ];
  let node = Struct "Node" in

  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let g = Wk_util.lcg_init b 0xE0A4EL in
  let nodes = B.malloc b ~name:"nodes" ~count:(B.i64c n) node in
  (* per-node adjacency: ring neighbours + random chords *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let nd = B.gep_index b nodes i in
      B.store b i64 (B.i64c deg) (B.gep_field b nd 0);
      let nbrs = B.malloc b ~name:"nbrs" ~count:(B.i64c deg) i64 in
      let ws = B.malloc b ~name:"ws" ~count:(B.i64c deg) Float in
      B.store b (Ptr i64) nbrs (B.gep_field b nd 1);
      B.store b (Ptr Float) ws (B.gep_field b nd 2);
      (* ring *)
      let prev = B.binop b Urem W64 (B.add b W64 i (B.i64c (n - 1))) (B.i64c n) in
      let next = B.binop b Urem W64 (B.add b W64 i (B.i64c 1)) (B.i64c n) in
      B.store b i64 prev (B.gep_index b nbrs (B.i64c 0));
      B.store b i64 next (B.gep_index b nbrs (B.i64c 1));
      B.for_ b ~from:(B.i64c 2) ~below:(B.i64c deg) (fun c ->
          let r = Wk_util.lcg_below b g n in
          B.store b i64 r (B.gep_index b nbrs c));
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c deg) (fun c ->
          let r = Wk_util.lcg_below b g 90 in
          let w = B.fdiv b (B.i_to_f b W64 (B.add b W64 r (B.i64c 10))) (B.fc 400.0) in
          B.store b Float w (B.gep_index b ws c)));

  (* displacement vectors, rotated by pointer swaps each step *)
  let prev = B.local b ~name:"prev" (Ptr Float) (B.malloc b ~count:(B.i64c n) Float) in
  let cur = B.local b ~name:"cur" (Ptr Float) (B.malloc b ~count:(B.i64c n) Float) in
  let nxt = B.local b ~name:"nxt" (Ptr Float) (B.malloc b ~count:(B.i64c n) Float) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      B.store b Float (B.fc 0.0) (B.gep_index b (B.get b (Ptr Float) prev) i);
      B.store b Float (B.fc 0.0) (B.gep_index b (B.get b (Ptr Float) cur) i);
      B.store b Float (B.fc 0.0) (B.gep_index b (B.get b (Ptr Float) nxt) i));

  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c steps) (fun t ->
      let pv = B.get b (Ptr Float) prev in
      let cv = B.get b (Ptr Float) cur in
      let nv = B.get b (Ptr Float) nxt in
      (* source excitation at node 0 for the first quarter of the run *)
      let early = B.icmp b Islt W64 t (B.i64c (steps / 4)) in
      B.if_ b early (fun () ->
          let tf = B.i_to_f b W64 t in
          let pulse = B.fmul b tf (B.fc 0.05) in
          B.store b Float pulse (B.gep_index b cv (B.i64c 0)));
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let nd = B.gep_index b nodes i in
          let d = B.load b i64 (B.gep_field b nd 0) in
          let nbrs = B.load b (Ptr i64) (B.gep_field b nd 1) in
          let ws = B.load b (Ptr Float) (B.gep_field b nd 2) in
          let acc = B.local b ~name:"acc" Float (B.fc 0.0) in
          B.for_ b ~from:(B.i64c 0) ~below:d (fun c ->
              let j = B.load b i64 (B.gep_index b nbrs c) in
              let w = B.load b Float (B.gep_index b ws c) in
              let uj = B.load b Float (B.gep_index b cv j) in
              B.set b Float acc (B.fadd b (B.get b Float acc) (B.fmul b w uj)));
          let ui = B.load b Float (B.gep_index b cv i) in
          let up = B.load b Float (B.gep_index b pv i) in
          (* u'' = coupling - damping, explicit integration *)
          let lap = B.fsub b (B.get b Float acc) (B.fmul b ui (B.fc 0.22)) in
          let vel = B.fsub b ui up in
          let unew =
            B.fadd b ui (B.fadd b (B.fmul b vel (B.fc 0.98)) (B.fmul b lap (B.fc 0.4)))
          in
          B.store b Float unew (B.gep_index b nv i));
      (* rotate: prev <- cur <- nxt <- prev *)
      B.set b (Ptr Float) prev cv;
      B.set b (Ptr Float) cur nv;
      B.set b (Ptr Float) nxt pv);

  (* energy report *)
  let cv = B.get b (Ptr Float) cur in
  let energy = B.local b ~name:"energy" Float (B.fc 0.0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let u = B.load b Float (B.gep_index b cv i) in
      B.set b Float energy (B.fadd b (B.get b Float energy) (B.fmul b u u)));
  Wk_util.print_kv_f b "energy" (B.get b Float energy);
  (* teardown: free adjacency through the node structures *)
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let nd = B.gep_index b nodes i in
      B.free b (B.load b (Ptr i64) (B.gep_field b nd 1));
      B.free b (B.load b (Ptr Float) (B.gep_field b nd 2)));
  B.free b (B.get b (Ptr Float) prev);
  B.free b (B.get b (Ptr Float) cur);
  B.free b (B.get b (Ptr Float) nxt);
  B.free b nodes;
  B.ret b (Some (B.i32c 0));
  p
