(** Shared helpers for the benchmark workloads.

    Workload inputs are generated inside the IR with a 64-bit LCG, so
    input data is part of program semantics: golden and transformed
    builds see identical inputs, and runs are reproducible by
    construction. *)

open Dpmr_ir
open Inst

(** A program with all extern signatures declared. *)
val fresh_prog : unit -> Prog.t

type lcg
(** Mutable LCG state in a stack slot. *)

val lcg_init : Builder.t -> int64 -> lcg

(** Emit one LCG step; returns a non-negative pseudo-random i64. *)
val lcg_next : Builder.t -> lcg -> operand

(** Pseudo-random i64 in [0, n). *)
val lcg_below : Builder.t -> lcg -> int -> operand

(** Print "label=value\n" for an i64 / f64 operand. *)
val print_kv : Builder.t -> string -> operand -> unit

val print_kv_f : Builder.t -> string -> operand -> unit

(** Multiplicative rolling checksum of an i64 array. *)
val checksum_i64 : Builder.t -> operand -> int -> operand

val sum_f64 : Builder.t -> operand -> int -> operand
val exit_with : Builder.t -> int -> unit
