(** mcf: min-cost-flow vehicle scheduling (SPEC 181.mcf stand-in) —
    successive shortest-path augmentation over arcs chained in per-node
    linked lists.  Pointer-heavy, integer. *)

val name : string
val prog : ?scale:int -> unit -> Dpmr_ir.Prog.t
