(** Deterministic pseudo-random stream (splitmix64).

    Every source of randomness in the system — rearrange-heap's
    [randInt], static load-checking's compile-time coin flips, initial
    heap/stack garbage, workload inputs — draws from a seeded instance,
    making whole experiments bit-reproducible. *)

type t

val create : int64 -> t
val next : t -> int64

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [lo, hi], inclusive. *)
val range : t -> int -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Stateless hash of two ints (deterministic page garbage). *)
val hash2 : int -> int -> int64

(** Raw stream position, for checkpointing a VM: restoring it with
    {!set_state} resumes the exact draw sequence. *)
val state : t -> int64

val set_state : t -> int64 -> unit
