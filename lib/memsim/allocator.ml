(** Binned first-fit heap allocator over {!Mem}.

    The allocator reproduces the behaviours the dissertation's detection
    conditions (§2.5) and fault-model discussion (§3.4) rely on:

    - {b size-class rounding}: requests are rounded up to a minimum payload
      of 24 bytes and then to a 16-byte multiple, so a heap-array resize
      from 24 to 16 bytes may still receive enough memory and produce
      correct output despite a successful injection;
    - {b inline chunk headers}: 16 bytes immediately before each payload,
      so overflows corrupt neighbouring metadata and frees of corrupted or
      non-chunk pointers fail the magic check and crash (natural
      detection — "error checking in the heap allocator");
    - {b metadata poisoning of freed buffers}: the free-list link is
      written into the first 8 payload bytes on [free], so reads after
      free observe allocator metadata, as many real allocators behave;
    - {b LIFO reallocation}: a freed chunk is the first candidate for the
      next allocation of its size class, which is what pairs dangling
      pointers with fresh objects (and what rearrange-heap disrupts). *)

let header_size = 16
let magic = 0xA110CA7EL
let min_payload = 24

type stats = {
  mutable n_malloc : int;
  mutable n_free : int;
  mutable live_bytes : int;
  mutable peak_bytes : int;
}

type t = {
  mem : Mem.t;
  mutable wilderness : int64;  (** next unused heap address *)
  bins : (int, int64 list ref) Hashtbl.t;  (** size class -> free payloads *)
  chunk_sizes : (int64, int) Hashtbl.t;
      (** authoritative payload sizes (headers can be corrupted by faulty
          programs; the allocator's own bookkeeping survives, as a real
          allocator's out-of-band metadata would) *)
  free_set : (int64, unit) Hashtbl.t;
  stats : stats;
  tr : Dpmr_trace.Trace.t option;
      (** the domain's trace sink, captured at {!create}; chunk events are
          timestamped through the sink's clock (the VM's cost counter) *)
}

let create mem =
  {
    mem;
    wilderness = Mem.heap_base;
    bins = Hashtbl.create 64;
    chunk_sizes = Hashtbl.create 256;
    free_set = Hashtbl.create 256;
    stats = { n_malloc = 0; n_free = 0; live_bytes = 0; peak_bytes = 0 };
    tr = Dpmr_trace.Trace.current ();
  }

let round_size n =
  let n = max n min_payload in
  (n + 15) / 16 * 16

let bin t size =
  match Hashtbl.find_opt t.bins size with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.bins size l;
      l

let write_header t payload size ~free =
  let h = Int64.sub payload (Int64.of_int header_size) in
  Mem.write_int t.mem h 8 (Int64.of_int size);
  Mem.write_int t.mem (Int64.add h 8L) 4 magic;
  Mem.write_int t.mem (Int64.add h 12L) 4 (if free then 0L else 1L)

let header_ok t payload =
  let h = Int64.sub payload (Int64.of_int header_size) in
  Mem.is_mapped t.mem h
  && Mem.is_mapped t.mem (Int64.add h 8L)
  && Int64.equal (Mem.read_int t.mem (Int64.add h 8L) 4) magic

let account_alloc t size =
  t.stats.n_malloc <- t.stats.n_malloc + 1;
  t.stats.live_bytes <- t.stats.live_bytes + size;
  if t.stats.live_bytes > t.stats.peak_bytes then
    t.stats.peak_bytes <- t.stats.live_bytes

let[@inline] trace_malloc t payload ~requested ~granted =
  match t.tr with
  | Some s ->
      Dpmr_trace.Trace.emit_malloc s ~addr:payload ~requested ~granted
        ~live:t.stats.live_bytes
  | None -> ()

(** Allocate [n] bytes; returns the payload address. *)
let malloc t n =
  let size = round_size n in
  let b = bin t size in
  match !b with
  | payload :: rest ->
      b := rest;
      Hashtbl.remove t.free_set payload;
      write_header t payload size ~free:false;
      account_alloc t size;
      trace_malloc t payload ~requested:n ~granted:size;
      payload
  | [] ->
      let chunk = t.wilderness in
      let payload = Int64.add chunk (Int64.of_int header_size) in
      t.wilderness <- Int64.add payload (Int64.of_int size);
      Mem.map_range t.mem chunk (header_size + size) Mem.Fill_garbage;
      Hashtbl.replace t.chunk_sizes payload size;
      write_header t payload size ~free:false;
      account_alloc t size;
      trace_malloc t payload ~requested:n ~granted:size;
      payload

(** Free [payload].  Faults on non-chunk pointers (magic check) and on
    double frees of intact chunks; poisons the first 8 payload bytes with
    the free-list link. *)
let free t payload =
  (* before the sanity checks, so a crashing free is still on record *)
  (match t.tr with
  | Some s ->
      Dpmr_trace.Trace.emit_free s ~addr:payload ~live:t.stats.live_bytes
  | None -> ());
  if not (header_ok t payload) then raise (Mem.Fault (Mem.Invalid_free payload));
  if Hashtbl.mem t.free_set payload then
    raise (Mem.Fault (Mem.Double_free payload));
  match Hashtbl.find_opt t.chunk_sizes payload with
  | None ->
      (* Intact-looking header at an address we never allocated: an
         out-of-bounds free that happens to hit copied metadata.  Treat as
         invalid, like a hardened allocator would. *)
      raise (Mem.Fault (Mem.Invalid_free payload))
  | Some size ->
      let b = bin t size in
      (* poison: write the free-list head into the payload (metadata in
         freed buffers), then push *)
      let old_head = match !b with a :: _ -> a | [] -> 0L in
      Mem.write_int t.mem payload 8 old_head;
      write_header t payload size ~free:true;
      b := payload :: !b;
      Hashtbl.replace t.free_set payload ();
      t.stats.n_free <- t.stats.n_free + 1;
      t.stats.live_bytes <- t.stats.live_bytes - size

(** Usable payload size of an allocated chunk ([heapBufSize] in the
    zero-before-free transformation, Table 2.8). *)
let usable_size t payload =
  match Hashtbl.find_opt t.chunk_sizes payload with
  | Some s -> s
  | None -> raise (Mem.Fault (Mem.Invalid_free payload))

let is_heap_chunk t payload = Hashtbl.mem t.chunk_sizes payload
let stats t = t.stats

(** Live heap bytes, read straight off the mutable counter — the VM's
    per-load/store cache-pressure term calls this on its hottest path. *)
let[@inline] live_bytes t = t.stats.live_bytes

(** Total heap footprint: bytes between the heap base and the wilderness
    pointer (the working set the cache-pressure cost model taxes). *)
let footprint_bytes t = Int64.to_int (Int64.sub t.wilderness Mem.heap_base)

(* ---------------- copy-on-write snapshots ---------------- *)

type frozen = {
  f_wilderness : int64;
  f_bins : (int * int64 list) list;  (** size class -> free payloads, sorted by class *)
  f_chunk_sizes : (int64, int) Hashtbl.t;  (** private copy, never mutated *)
  f_free_set : (int64, unit) Hashtbl.t;
  f_n_malloc : int;
  f_n_free : int;
  f_live : int;
  f_peak : int;
  f_hash : int64;
}

let fnv_basis = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L
let[@inline] fnv_word h w = Int64.mul (Int64.logxor h w) fnv_prime

(** Capture the allocator's bookkeeping.  O(chunks), but only in cheap
    table copies — no simulated-memory traffic at all (the heap contents
    are the {!Mem} snapshot's concern).  The hash is deterministic across
    processes: bins are folded in size order, and the chunk tables with
    an order-independent XOR fold (their iteration order is
    unspecified). *)
let freeze t =
  let bins =
    Hashtbl.fold (fun size l acc -> (size, !l) :: acc) t.bins []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  let h = ref (fnv_word fnv_basis t.wilderness) in
  h := fnv_word !h (Int64.of_int t.stats.n_malloc);
  h := fnv_word !h (Int64.of_int t.stats.n_free);
  h := fnv_word !h (Int64.of_int t.stats.live_bytes);
  h := fnv_word !h (Int64.of_int t.stats.peak_bytes);
  List.iter
    (fun (size, l) ->
      h := fnv_word !h (Int64.of_int size);
      List.iter (fun a -> h := fnv_word !h a) l)
    bins;
  let fold_tbl f tbl =
    let acc = ref 0L in
    Hashtbl.iter (fun k v -> acc := Int64.logxor !acc (f k v)) tbl;
    !acc
  in
  h :=
    fnv_word !h
      (fold_tbl
         (fun payload size -> fnv_word (fnv_word fnv_basis payload) (Int64.of_int size))
         t.chunk_sizes);
  h := fnv_word !h (fold_tbl (fun payload () -> fnv_word fnv_basis payload) t.free_set);
  {
    f_wilderness = t.wilderness;
    f_bins = bins;
    f_chunk_sizes = Hashtbl.copy t.chunk_sizes;
    f_free_set = Hashtbl.copy t.free_set;
    f_n_malloc = t.stats.n_malloc;
    f_n_free = t.stats.n_free;
    f_live = t.stats.live_bytes;
    f_peak = t.stats.peak_bytes;
    f_hash = !h;
  }

(** Rebuild a live allocator over [mem] (a fork of the frozen address
    space).  Fresh bin refs and table copies: forks never observe each
    other's bookkeeping. *)
let thaw mem f =
  let bins = Hashtbl.create 64 in
  List.iter (fun (size, l) -> Hashtbl.replace bins size (ref l)) f.f_bins;
  {
    mem;
    wilderness = f.f_wilderness;
    bins;
    chunk_sizes = Hashtbl.copy f.f_chunk_sizes;
    free_set = Hashtbl.copy f.f_free_set;
    stats =
      {
        n_malloc = f.f_n_malloc;
        n_free = f.f_n_free;
        live_bytes = f.f_live;
        peak_bytes = f.f_peak;
      };
    tr = Dpmr_trace.Trace.current ();
  }

let frozen_hash f = f.f_hash
