(** Deterministic pseudo-random stream (splitmix64).

    Every source of randomness in the system — rearrange-heap's
    [randInt(1,20)], static load-checking's compile-time coin flips,
    initial heap/stack garbage, workload input generation — draws from a
    seeded instance of this module, which is what makes whole experiments
    bit-reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int bound))

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

(** [float t] is uniform in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

(** Stateless hash of two ints — used for deterministic page garbage. *)
let hash2 a b =
  let t = create (Int64.logxor (Int64.of_int a) (Int64.mul (Int64.of_int b) golden)) in
  next t

(** Raw stream position, for checkpointing: [set_state t (state t')]
    makes [t] produce exactly the draws [t'] would have. *)
let state t = t.state

let set_state t s = t.state <- s
