(** Simulated flat 64-bit address space with demand-mapped 4 KiB pages.

    Segment map (chosen so that wild pointers usually land in unmapped
    territory and fault, while overflows between neighbouring objects
    corrupt silently — the two behaviours §2.5 distinguishes):

    {v
      [0, 0x10000)               guard: never mapped (null page)
      [0x0001_0000, ...)         globals, laid out at load time
      [0x4000_0000, ...)         stack, grows upward
      [0x8000_0000, ...)         heap wilderness
    v}

    Accesses to an unmapped page raise {!Fault}, which the VM reports as a
    crash (a *naturally detected* error in the dissertation's metric
    vocabulary, §3.6).  Pages are filled with deterministic garbage when
    first mapped, so uninitialized heap/stack reads see arbitrary — but
    reproducible — data.

    Pages live in three dense per-segment tables indexed by page number
    relative to the segment base.  All three segments grow upward from a
    fixed base, so the tables stay compact, lookups are an array index
    (no hashing — the diversity transform interleaves app and replica
    accesses on far-apart pages, which thrashed the previous
    hashtable-plus-one-entry-cache design), and a table is itself a
    snapshot of the address space: {!freeze} captures the page pointers,
    and copy-on-write keeps captured pages immutable afterwards. *)

type fault =
  | Unmapped of int64  (** access to an address with no mapped page *)
  | Invalid_free of int64  (** free of a non-chunk address (allocator check) *)
  | Double_free of int64  (** free of an already-free chunk *)

exception Fault of fault

let fault_to_string = function
  | Unmapped a -> Printf.sprintf "segfault at 0x%Lx" a
  | Invalid_free a -> Printf.sprintf "invalid free of 0x%Lx" a
  | Double_free a -> Printf.sprintf "double free of 0x%Lx" a

let page_bits = 12
let page_size = 1 lsl page_bits

let globals_base = 0x0001_0000L
let stack_base = 0x4000_0000L
let heap_base = 0x8000_0000L

(* Segment bases in page numbers.  The globals table starts at page 0 so
   the [0, 0x10000) null guard needs no special case: nothing ever maps
   a page there, so any access finds an empty slot and faults. *)
let g_idx0 = 0
let s_idx0 = Int64.to_int (Int64.shift_right_logical stack_base page_bits)
let h_idx0 = Int64.to_int (Int64.shift_right_logical heap_base page_bits)

type fill = Fill_zero | Fill_garbage

(* A segment's pages ([Bytes.empty] = unmapped) and, parallel to it, one
   share flag per slot: ['\001'] marks a page captured by a {!freeze} —
   owned jointly with some snapshot — which the write path must copy
   before mutating.  Flags of unmapped slots are meaningless (the empty
   sentinel is checked first). *)
type t = {
  seed : int64;
  mutable mapped_pages : int;  (** footprint statistic *)
  mutable g_tbl : Bytes.t array;
  mutable g_shr : Bytes.t;
  mutable s_tbl : Bytes.t array;
  mutable s_shr : Bytes.t;
  mutable h_tbl : Bytes.t array;
  mutable h_shr : Bytes.t;
  mutable chain : int64;
      (** chained content hash: digest of every byte written up to the
          last {!freeze} (see {!freeze} for the chaining scheme) *)
}

type frozen = {
  f_seed : int64;
  f_mapped : int;
  f_g : Bytes.t array;
  f_s : Bytes.t array;
  f_h : Bytes.t array;
  f_hash : int64;
}

let fnv_basis = 0xCBF29CE484222325L

let create ?(seed = 1L) () =
  {
    seed;
    mapped_pages = 0;
    g_tbl = [||];
    g_shr = Bytes.empty;
    s_tbl = [||];
    s_shr = Bytes.empty;
    h_tbl = [||];
    h_shr = Bytes.empty;
    chain = Int64.logxor fnv_basis seed;
  }

let[@inline] page_index addr = Int64.to_int (Int64.shift_right_logical addr page_bits)

(* ------------------------------------------------------------------ *)
(* Page lookup                                                         *)
(* ------------------------------------------------------------------ *)

(* Shared raise point: keeps the inlined fast paths free of the
   exception-allocation code. *)
let unmapped addr = raise (Fault (Unmapped addr))

let[@inline] tbl_get tbl rel addr =
  if rel < Array.length tbl then begin
    let p = Array.unsafe_get tbl rel in
    if p != Bytes.empty then p else unmapped addr
  end
  else unmapped addr

let[@inline] get_page t addr =
  let idx = page_index addr in
  if idx >= h_idx0 then tbl_get t.h_tbl (idx - h_idx0) addr
  else if idx >= s_idx0 then tbl_get t.s_tbl (idx - s_idx0) addr
  else tbl_get t.g_tbl idx addr

(* Copy-on-write page for the write path: pages marked shared (captured
   by a snapshot) are duplicated into the table before the first write,
   so a forked run never mutates its parent's state.  O(page) per dirty
   page, once. *)
let[@inline] tbl_get_w tbl shr rel addr =
  if rel < Array.length tbl then begin
    let p = Array.unsafe_get tbl rel in
    if p == Bytes.empty then unmapped addr
    else if Bytes.unsafe_get shr rel = '\000' then p
    else begin
      let q = Bytes.copy p in
      Array.unsafe_set tbl rel q;
      Bytes.unsafe_set shr rel '\000';
      q
    end
  end
  else unmapped addr

let[@inline] get_page_w t addr =
  let idx = page_index addr in
  if idx >= h_idx0 then tbl_get_w t.h_tbl t.h_shr (idx - h_idx0) addr
  else if idx >= s_idx0 then tbl_get_w t.s_tbl t.s_shr (idx - s_idx0) addr
  else tbl_get_w t.g_tbl t.g_shr idx addr

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let new_page t idx fill =
  let page = Bytes.create page_size in
  (match fill with
  | Fill_zero -> Bytes.fill page 0 page_size '\000'
  | Fill_garbage ->
      for i = 0 to (page_size / 8) - 1 do
        let v = Rng.hash2 idx (i + Int64.to_int t.seed) in
        Bytes.set_int64_le page (i * 8) v
      done);
  page

let grow_tbl tbl shr need =
  let n = Array.length tbl in
  let n' = max need (max 64 (2 * n)) in
  let tbl' = Array.make n' Bytes.empty in
  Array.blit tbl 0 tbl' 0 n;
  let shr' = Bytes.make n' '\000' in
  Bytes.blit shr 0 shr' 0 n;
  (tbl', shr')

let map_page t idx fill =
  let seg =
    if idx >= h_idx0 then 2 else if idx >= s_idx0 then 1 else 0
  in
  let rel = match seg with 2 -> idx - h_idx0 | 1 -> idx - s_idx0 | _ -> idx in
  let tbl = match seg with 2 -> t.h_tbl | 1 -> t.s_tbl | _ -> t.g_tbl in
  if rel >= Array.length tbl then begin
    let shr = match seg with 2 -> t.h_shr | 1 -> t.s_shr | _ -> t.g_shr in
    let tbl', shr' = grow_tbl tbl shr (rel + 1) in
    match seg with
    | 2 ->
        t.h_tbl <- tbl';
        t.h_shr <- shr'
    | 1 ->
        t.s_tbl <- tbl';
        t.s_shr <- shr'
    | _ ->
        t.g_tbl <- tbl';
        t.g_shr <- shr'
  end;
  let tbl = match seg with 2 -> t.h_tbl | 1 -> t.s_tbl | _ -> t.g_tbl in
  if Array.unsafe_get tbl rel == Bytes.empty then begin
    Array.unsafe_set tbl rel (new_page t idx fill);
    (* freshly mapped: privately owned, whatever a stale flag said *)
    (match seg with
    | 2 -> Bytes.unsafe_set t.h_shr rel '\000'
    | 1 -> Bytes.unsafe_set t.s_shr rel '\000'
    | _ -> Bytes.unsafe_set t.g_shr rel '\000');
    t.mapped_pages <- t.mapped_pages + 1
  end

(** Map every page overlapping [addr, addr+len). *)
let map_range t addr len fill =
  if len > 0 then
    let first = page_index addr
    and last = page_index (Int64.add addr (Int64.of_int (len - 1))) in
    for idx = first to last do
      map_page t idx fill
    done

let is_mapped t addr =
  let idx = page_index addr in
  let tbl, rel =
    if idx >= h_idx0 then (t.h_tbl, idx - h_idx0)
    else if idx >= s_idx0 then (t.s_tbl, idx - s_idx0)
    else (t.g_tbl, idx)
  in
  rel < Array.length tbl && Array.unsafe_get tbl rel != Bytes.empty

let[@inline] offset addr = Int64.to_int (Int64.logand addr 0xFFFL)

(* Byte accessors.  Multi-byte accesses may straddle a page boundary; the
   fast path (fully within one page) covers virtually all accesses. *)

let read_u8 t addr = Char.code (Bytes.get (get_page t addr) (offset addr))

let write_u8 t addr v =
  Bytes.set (get_page_w t addr) (offset addr) (Char.chr (v land 0xFF))

let rec read_bytes t addr len =
  let off = offset addr in
  if off + len <= page_size then Bytes.sub (get_page t addr) off len
  else
    let first = page_size - off in
    let a = Bytes.sub (get_page t addr) off first in
    let b = read_bytes t (Int64.add addr (Int64.of_int first)) (len - first) in
    Bytes.cat a b

let rec write_bytes t addr b pos len =
  let off = offset addr in
  if off + len <= page_size then Bytes.blit b pos (get_page_w t addr) off len
  else begin
    let first = page_size - off in
    Bytes.blit b pos (get_page_w t addr) off first;
    write_bytes t (Int64.add addr (Int64.of_int first)) b (pos + first) (len - first)
  end

(* Unchecked little-endian scalar accessors.  The stdlib's checked
   [Bytes.get_int64_le] is an ordinary function, so every call boxes its
   [int64]; these compile to single load/store instructions and keep the
   value unboxed end-to-end in the interpreter's load/store path.  Bounds
   hold by construction: callers only use them under the
   [off + len <= page_size] guard, and every page is [page_size] bytes. *)
external unsafe_get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_get32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_set32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external bswap16 : int -> int = "%bswap16"
external bswap32 : int32 -> int32 = "%bswap_int32"
external bswap64 : int64 -> int64 = "%bswap_int64"

let[@inline] get16_le b i = if Sys.big_endian then bswap16 (unsafe_get16 b i) else unsafe_get16 b i
let[@inline] get32_le b i = if Sys.big_endian then bswap32 (unsafe_get32 b i) else unsafe_get32 b i
let[@inline] get64_le b i = if Sys.big_endian then bswap64 (unsafe_get64 b i) else unsafe_get64 b i
let[@inline] set16_le b i v = unsafe_set16 b i (if Sys.big_endian then bswap16 v else v)
let[@inline] set32_le b i v = unsafe_set32 b i (if Sys.big_endian then bswap32 v else v)
let[@inline] set64_le b i v = unsafe_set64 b i (if Sys.big_endian then bswap64 v else v)

(* Straddling access: byte-at-a-time.  Top-level (not a local function of
   [read_int]) because a local closure makes the enclosing function
   non-inlinable without flambda, and [read_int] must inline for its
   [int64] to stay unboxed in the interpreter loop. *)
let rec read_int_straddle t addr len i acc =
  if i = len then acc
  else
    let b = Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int i))) in
    read_int_straddle t addr len (i + 1)
      (Int64.logor acc (Int64.shift_left b (8 * i)))

let[@inline] read_int t addr len =
  let off = offset addr in
  if off + len <= page_size then
    let page = get_page t addr in
    match len with
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get page off))
    | 2 -> Int64.of_int (get16_le page off)
    | 4 -> Int64.logand (Int64.of_int32 (get32_le page off)) 0xFFFFFFFFL
    | 8 -> get64_le page off
    (* [raise], not [invalid_arg]: a call in any arm forces the whole
       match result into a box; a raise arm leaves it unboxed *)
    | _ -> raise (Invalid_argument "Mem.read_int: bad length")
  else Int64.add (read_int_straddle t addr len 0 0L) 0L

let[@inline] write_int t addr len v =
  let off = offset addr in
  if off + len <= page_size then
    let page = get_page_w t addr in
    match len with
    | 1 -> Bytes.unsafe_set page off (Char.unsafe_chr (Int64.to_int (Int64.logand v 0xFFL)))
    | 2 -> set16_le page off (Int64.to_int (Int64.logand v 0xFFFFL))
    | 4 -> set32_le page off (Int64.to_int32 v)
    | 8 -> set64_le page off v
    | _ -> invalid_arg "Mem.write_int: bad length"
  else
    for i = 0 to len - 1 do
      write_u8 t
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

let read_f64 t addr = Int64.float_of_bits (read_int t addr 8)
let write_f64 t addr v = write_int t addr 8 (Int64.bits_of_float v)

(* Page-wise [Bytes.fill]: this zeroes every global and every
   [__dpmr_zero] region, so a byte-at-a-time loop shows up in profiles.
   Faults at the same address the byte loop would have: the first byte
   touched in the first unmapped page. *)
let fill t addr len byte =
  let c = Char.chr (byte land 0xFF) in
  let rec go addr len =
    if len > 0 then begin
      let off = offset addr in
      let seg = min len (page_size - off) in
      Bytes.fill (get_page_w t addr) off seg c;
      go (Int64.add addr (Int64.of_int seg)) (len - seg)
    end
  in
  go addr len

(** memmove semantics (overlap-safe). *)
let move t ~dst ~src len =
  let b = read_bytes t src len in
  write_bytes t dst b 0 len

(* ------------------------------------------------------------------ *)
(* Copy-on-write snapshots                                             *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over 8-byte lanes: same mixing discipline as FNV-1a but
   consuming a 64-bit word per step instead of a byte, so hashing a dirty
   page costs 512 multiplies, not 4096.  Deterministic across processes
   (pure arithmetic over page contents), which is what lets the hash
   participate in the federated cache identity. *)
let fnv_prime = 0x100000001B3L

let[@inline] fnv_word h w = Int64.mul (Int64.logxor h w) fnv_prime

let fnv_page h page =
  let h = ref h in
  for i = 0 to (page_size / 8) - 1 do
    h := fnv_word !h (get64_le page (i * 8))
  done;
  !h

(* Hash every *privately owned* mapped page of a segment — exactly the
   pages written (or freshly mapped) since the previous [freeze], because
   freezing marks everything shared and the write path clears the flag on
   privatized copies. *)
let fnv_dirty h seg_tag tbl shr =
  let h = ref h in
  for rel = 0 to Array.length tbl - 1 do
    let p = Array.unsafe_get tbl rel in
    if p != Bytes.empty && Bytes.unsafe_get shr rel = '\000' then begin
      h := fnv_word !h (Int64.of_int ((seg_tag lsl 24) lxor rel));
      h := fnv_page !h p
    end
  done;
  !h

(** Capture the current state as an immutable snapshot.  The snapshot
    shares page storage with [t]: both sides copy a page before their
    first subsequent write to it (copy-on-write), so the capture itself
    is O(table), not O(heap).

    [f_hash] is a {e chained} content hash: the previous chain value
    extended with the content of every page dirtied since.  Two states
    with equal chain hashes went through identical write histories from
    the same root, so equal hashes imply equal memory content (the
    converse may not hold — identical content reached via different
    histories hashes differently, which costs sharing, never
    soundness). *)
let freeze t =
  let h = ref t.chain in
  h := fnv_word !h (Int64.of_int t.mapped_pages);
  h := fnv_dirty !h 0 t.g_tbl t.g_shr;
  h := fnv_dirty !h 1 t.s_tbl t.s_shr;
  h := fnv_dirty !h 2 t.h_tbl t.h_shr;
  Bytes.fill t.g_shr 0 (Bytes.length t.g_shr) '\001';
  Bytes.fill t.s_shr 0 (Bytes.length t.s_shr) '\001';
  Bytes.fill t.h_shr 0 (Bytes.length t.h_shr) '\001';
  t.chain <- !h;
  {
    f_seed = t.seed;
    f_mapped = t.mapped_pages;
    f_g = Array.copy t.g_tbl;
    f_s = Array.copy t.s_tbl;
    f_h = Array.copy t.h_tbl;
    f_hash = !h;
  }

(** Rebuild a live memory from a snapshot.  The new memory shares every
    page with the snapshot (and with any other fork of it); all pages are
    marked shared, so the first write to each page copies it.  O(table). *)
let thaw f =
  {
    seed = f.f_seed;
    mapped_pages = f.f_mapped;
    g_tbl = Array.copy f.f_g;
    g_shr = Bytes.make (Array.length f.f_g) '\001';
    s_tbl = Array.copy f.f_s;
    s_shr = Bytes.make (Array.length f.f_s) '\001';
    h_tbl = Array.copy f.f_h;
    h_shr = Bytes.make (Array.length f.f_h) '\001';
    chain = f.f_hash;
  }

let frozen_hash f = f.f_hash
let frozen_pages f = f.f_mapped
