(** Simulated flat 64-bit address space with demand-mapped 4 KiB pages.

    Segment map (chosen so that wild pointers usually land in unmapped
    territory and fault, while overflows between neighbouring objects
    corrupt silently — the two behaviours §2.5 distinguishes):

    {v
      [0, 0x10000)               guard: never mapped (null page)
      [0x0001_0000, ...)         globals, laid out at load time
      [0x4000_0000, ...)         stack, grows upward
      [0x8000_0000, ...)         heap wilderness
    v}

    Accesses to an unmapped page raise {!Fault}, which the VM reports as a
    crash (a *naturally detected* error in the dissertation's metric
    vocabulary, §3.6).  Pages are filled with deterministic garbage when
    first mapped, so uninitialized heap/stack reads see arbitrary — but
    reproducible — data. *)

type fault =
  | Unmapped of int64  (** access to an address with no mapped page *)
  | Invalid_free of int64  (** free of a non-chunk address (allocator check) *)
  | Double_free of int64  (** free of an already-free chunk *)

exception Fault of fault

let fault_to_string = function
  | Unmapped a -> Printf.sprintf "segfault at 0x%Lx" a
  | Invalid_free a -> Printf.sprintf "invalid free of 0x%Lx" a
  | Double_free a -> Printf.sprintf "double free of 0x%Lx" a

let page_bits = 12
let page_size = 1 lsl page_bits

let globals_base = 0x0001_0000L
let stack_base = 0x4000_0000L
let heap_base = 0x8000_0000L

type fill = Fill_zero | Fill_garbage

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  seed : int64;
  mutable mapped_pages : int;  (** footprint statistic *)
}

let create ?(seed = 1L) () = { pages = Hashtbl.create 1024; seed; mapped_pages = 0 }

let page_index addr = Int64.to_int (Int64.shift_right_logical addr page_bits)

let map_page t idx fill =
  if not (Hashtbl.mem t.pages idx) then begin
    let page = Bytes.create page_size in
    (match fill with
    | Fill_zero -> Bytes.fill page 0 page_size '\000'
    | Fill_garbage ->
        for i = 0 to (page_size / 8) - 1 do
          let v = Rng.hash2 idx (i + Int64.to_int t.seed) in
          Bytes.set_int64_le page (i * 8) v
        done);
    Hashtbl.replace t.pages idx page;
    t.mapped_pages <- t.mapped_pages + 1
  end

(** Map every page overlapping [addr, addr+len). *)
let map_range t addr len fill =
  if len > 0 then
    let first = page_index addr
    and last = page_index (Int64.add addr (Int64.of_int (len - 1))) in
    for idx = first to last do
      map_page t idx fill
    done

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let get_page t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | Some p -> p
  | None -> raise (Fault (Unmapped addr))

let offset addr = Int64.to_int (Int64.logand addr 0xFFFL)

(* Byte accessors.  Multi-byte accesses may straddle a page boundary; the
   fast path (fully within one page) covers virtually all accesses. *)

let read_u8 t addr = Char.code (Bytes.get (get_page t addr) (offset addr))

let write_u8 t addr v =
  Bytes.set (get_page t addr) (offset addr) (Char.chr (v land 0xFF))

let rec read_bytes t addr len =
  let off = offset addr in
  if off + len <= page_size then Bytes.sub (get_page t addr) off len
  else
    let first = page_size - off in
    let a = Bytes.sub (get_page t addr) off first in
    let b = read_bytes t (Int64.add addr (Int64.of_int first)) (len - first) in
    Bytes.cat a b

let rec write_bytes t addr b pos len =
  let off = offset addr in
  if off + len <= page_size then Bytes.blit b pos (get_page t addr) off len
  else begin
    let first = page_size - off in
    Bytes.blit b pos (get_page t addr) off first;
    write_bytes t (Int64.add addr (Int64.of_int first)) b (pos + first) (len - first)
  end

let read_int t addr len =
  let off = offset addr in
  if off + len <= page_size then
    let page = get_page t addr in
    match len with
    | 1 -> Int64.of_int (Char.code (Bytes.get page off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le page off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le page off)) 0xFFFFFFFFL
    | 8 -> Bytes.get_int64_le page off
    | _ -> invalid_arg "Mem.read_int: bad length"
  else
    (* straddling access: byte-at-a-time *)
    let rec go i acc =
      if i = len then acc
      else
        let b = Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int i))) in
        go (i + 1) (Int64.logor acc (Int64.shift_left b (8 * i)))
    in
    go 0 0L

let write_int t addr len v =
  let off = offset addr in
  if off + len <= page_size then
    let page = get_page t addr in
    match len with
    | 1 -> Bytes.set page off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | 2 -> Bytes.set_uint16_le page off (Int64.to_int (Int64.logand v 0xFFFFL))
    | 4 -> Bytes.set_int32_le page off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le page off v
    | _ -> invalid_arg "Mem.write_int: bad length"
  else
    for i = 0 to len - 1 do
      write_u8 t
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

let read_f64 t addr = Int64.float_of_bits (read_int t addr 8)
let write_f64 t addr v = write_int t addr 8 (Int64.bits_of_float v)

let fill t addr len byte =
  for i = 0 to len - 1 do
    write_u8 t (Int64.add addr (Int64.of_int i)) byte
  done

(** memmove semantics (overlap-safe). *)
let move t ~dst ~src len =
  let b = read_bytes t src len in
  write_bytes t dst b 0 len
