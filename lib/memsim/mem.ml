(** Simulated flat 64-bit address space with demand-mapped 4 KiB pages.

    Segment map (chosen so that wild pointers usually land in unmapped
    territory and fault, while overflows between neighbouring objects
    corrupt silently — the two behaviours §2.5 distinguishes):

    {v
      [0, 0x10000)               guard: never mapped (null page)
      [0x0001_0000, ...)         globals, laid out at load time
      [0x4000_0000, ...)         stack, grows upward
      [0x8000_0000, ...)         heap wilderness
    v}

    Accesses to an unmapped page raise {!Fault}, which the VM reports as a
    crash (a *naturally detected* error in the dissertation's metric
    vocabulary, §3.6).  Pages are filled with deterministic garbage when
    first mapped, so uninitialized heap/stack reads see arbitrary — but
    reproducible — data. *)

type fault =
  | Unmapped of int64  (** access to an address with no mapped page *)
  | Invalid_free of int64  (** free of a non-chunk address (allocator check) *)
  | Double_free of int64  (** free of an already-free chunk *)

exception Fault of fault

let fault_to_string = function
  | Unmapped a -> Printf.sprintf "segfault at 0x%Lx" a
  | Invalid_free a -> Printf.sprintf "invalid free of 0x%Lx" a
  | Double_free a -> Printf.sprintf "double free of 0x%Lx" a

let page_bits = 12
let page_size = 1 lsl page_bits

let globals_base = 0x0001_0000L
let stack_base = 0x4000_0000L
let heap_base = 0x8000_0000L

type fill = Fill_zero | Fill_garbage

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  seed : int64;
  mutable mapped_pages : int;  (** footprint statistic *)
  mutable cached_idx : int;
      (** one-entry page cache: index of [cached_page], [-1] when empty.
          Runs of same-page accesses (the overwhelmingly common case)
          skip the hashtable.  Pages are never unmapped or replaced once
          mapped, so the cache can only go stale via [Hashtbl.reset] —
          which nothing does — making it safe to keep forever. *)
  mutable cached_page : Bytes.t;
}

let create ?(seed = 1L) () =
  {
    pages = Hashtbl.create 1024;
    seed;
    mapped_pages = 0;
    cached_idx = -1;
    cached_page = Bytes.empty;
  }

let[@inline] page_index addr = Int64.to_int (Int64.shift_right_logical addr page_bits)

let map_page t idx fill =
  if not (Hashtbl.mem t.pages idx) then begin
    let page = Bytes.create page_size in
    (match fill with
    | Fill_zero -> Bytes.fill page 0 page_size '\000'
    | Fill_garbage ->
        for i = 0 to (page_size / 8) - 1 do
          let v = Rng.hash2 idx (i + Int64.to_int t.seed) in
          Bytes.set_int64_le page (i * 8) v
        done);
    Hashtbl.replace t.pages idx page;
    t.mapped_pages <- t.mapped_pages + 1
  end

(** Map every page overlapping [addr, addr+len). *)
let map_range t addr len fill =
  if len > 0 then
    let first = page_index addr
    and last = page_index (Int64.add addr (Int64.of_int (len - 1))) in
    for idx = first to last do
      map_page t idx fill
    done

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let[@inline] get_page t addr =
  let idx = page_index addr in
  if idx = t.cached_idx then t.cached_page
  else
    (* [Hashtbl.find], not [find_opt]: loops that touch two pages miss
       the one-entry cache on every access, and the intermediate [Some]
       would be an allocation per miss *)
    match Hashtbl.find t.pages idx with
    | p ->
        t.cached_idx <- idx;
        t.cached_page <- p;
        p
    | exception Not_found -> raise (Fault (Unmapped addr))

let[@inline] offset addr = Int64.to_int (Int64.logand addr 0xFFFL)

(* Byte accessors.  Multi-byte accesses may straddle a page boundary; the
   fast path (fully within one page) covers virtually all accesses. *)

let read_u8 t addr = Char.code (Bytes.get (get_page t addr) (offset addr))

let write_u8 t addr v =
  Bytes.set (get_page t addr) (offset addr) (Char.chr (v land 0xFF))

let rec read_bytes t addr len =
  let off = offset addr in
  if off + len <= page_size then Bytes.sub (get_page t addr) off len
  else
    let first = page_size - off in
    let a = Bytes.sub (get_page t addr) off first in
    let b = read_bytes t (Int64.add addr (Int64.of_int first)) (len - first) in
    Bytes.cat a b

let rec write_bytes t addr b pos len =
  let off = offset addr in
  if off + len <= page_size then Bytes.blit b pos (get_page t addr) off len
  else begin
    let first = page_size - off in
    Bytes.blit b pos (get_page t addr) off first;
    write_bytes t (Int64.add addr (Int64.of_int first)) b (pos + first) (len - first)
  end

(* Unchecked little-endian scalar accessors.  The stdlib's checked
   [Bytes.get_int64_le] is an ordinary function, so every call boxes its
   [int64]; these compile to single load/store instructions and keep the
   value unboxed end-to-end in the interpreter's load/store path.  Bounds
   hold by construction: callers only use them under the
   [off + len <= page_size] guard, and every page is [page_size] bytes. *)
external unsafe_get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_get32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_set32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external bswap16 : int -> int = "%bswap16"
external bswap32 : int32 -> int32 = "%bswap_int32"
external bswap64 : int64 -> int64 = "%bswap_int64"

let[@inline] get16_le b i = if Sys.big_endian then bswap16 (unsafe_get16 b i) else unsafe_get16 b i
let[@inline] get32_le b i = if Sys.big_endian then bswap32 (unsafe_get32 b i) else unsafe_get32 b i
let[@inline] get64_le b i = if Sys.big_endian then bswap64 (unsafe_get64 b i) else unsafe_get64 b i
let[@inline] set16_le b i v = unsafe_set16 b i (if Sys.big_endian then bswap16 v else v)
let[@inline] set32_le b i v = unsafe_set32 b i (if Sys.big_endian then bswap32 v else v)
let[@inline] set64_le b i v = unsafe_set64 b i (if Sys.big_endian then bswap64 v else v)

(* Straddling access: byte-at-a-time.  Top-level (not a local function of
   [read_int]) because a local closure makes the enclosing function
   non-inlinable without flambda, and [read_int] must inline for its
   [int64] to stay unboxed in the interpreter loop. *)
let rec read_int_straddle t addr len i acc =
  if i = len then acc
  else
    let b = Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int i))) in
    read_int_straddle t addr len (i + 1)
      (Int64.logor acc (Int64.shift_left b (8 * i)))

let[@inline] read_int t addr len =
  let off = offset addr in
  if off + len <= page_size then
    let page = get_page t addr in
    match len with
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get page off))
    | 2 -> Int64.of_int (get16_le page off)
    | 4 -> Int64.logand (Int64.of_int32 (get32_le page off)) 0xFFFFFFFFL
    | 8 -> get64_le page off
    (* [raise], not [invalid_arg]: a call in any arm forces the whole
       match result into a box; a raise arm leaves it unboxed *)
    | _ -> raise (Invalid_argument "Mem.read_int: bad length")
  else Int64.add (read_int_straddle t addr len 0 0L) 0L

let[@inline] write_int t addr len v =
  let off = offset addr in
  if off + len <= page_size then
    let page = get_page t addr in
    match len with
    | 1 -> Bytes.unsafe_set page off (Char.unsafe_chr (Int64.to_int (Int64.logand v 0xFFL)))
    | 2 -> set16_le page off (Int64.to_int (Int64.logand v 0xFFFFL))
    | 4 -> set32_le page off (Int64.to_int32 v)
    | 8 -> set64_le page off v
    | _ -> invalid_arg "Mem.write_int: bad length"
  else
    for i = 0 to len - 1 do
      write_u8 t
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

let read_f64 t addr = Int64.float_of_bits (read_int t addr 8)
let write_f64 t addr v = write_int t addr 8 (Int64.bits_of_float v)

(* Page-wise [Bytes.fill]: this zeroes every global and every
   [__dpmr_zero] region, so a byte-at-a-time loop shows up in profiles.
   Faults at the same address the byte loop would have: the first byte
   touched in the first unmapped page. *)
let fill t addr len byte =
  let c = Char.chr (byte land 0xFF) in
  let rec go addr len =
    if len > 0 then begin
      let off = offset addr in
      let seg = min len (page_size - off) in
      Bytes.fill (get_page t addr) off seg c;
      go (Int64.add addr (Int64.of_int seg)) (len - seg)
    end
  in
  go addr len

(** memmove semantics (overlap-safe). *)
let move t ~dst ~src len =
  let b = read_bytes t src len in
  write_bytes t dst b 0 len
