(** Simulated flat 64-bit address space with demand-mapped 4 KiB pages.

    Segment map (chosen so wild pointers usually fault while overflows
    between neighbouring objects corrupt silently — the two behaviours
    §2.5 distinguishes):

    {v
      [0, 0x10000)         guard: never mapped (null page)
      [0x0001_0000, ...)   globals, laid out at load time
      [0x4000_0000, ...)   stack, grows upward
      [0x8000_0000, ...)   heap wilderness
    v}

    Accesses to an unmapped page raise {!Fault} — a crash, which the
    experiment classification counts as natural detection (§3.6).  Pages
    are filled with deterministic garbage when first mapped, so
    uninitialized heap/stack reads see arbitrary but reproducible data.

    Pages live in dense per-segment tables (array index per access, no
    hashing), which doubles as the snapshot representation: {!freeze}
    captures the page pointers in O(table) and marks every page
    copy-on-write, so forks created by {!thaw} and the frozen parent
    never observe each other's writes. *)

type fault =
  | Unmapped of int64
  | Invalid_free of int64  (** allocator magic-check failure *)
  | Double_free of int64

exception Fault of fault

val fault_to_string : fault -> string

val page_size : int
val globals_base : int64
val stack_base : int64
val heap_base : int64

type fill = Fill_zero | Fill_garbage

type t = {
  seed : int64;
  mutable mapped_pages : int;  (** footprint statistic *)
  mutable g_tbl : Bytes.t array;  (** globals pages, indexed from page 0 *)
  mutable g_shr : Bytes.t;  (** share flags parallel to [g_tbl] *)
  mutable s_tbl : Bytes.t array;  (** stack pages, from [stack_base] *)
  mutable s_shr : Bytes.t;
  mutable h_tbl : Bytes.t array;  (** heap pages, from [heap_base] *)
  mutable h_shr : Bytes.t;
  mutable chain : int64;  (** chained content hash as of the last freeze *)
}

(** Immutable snapshot of an address space.  Shares page storage with
    live memories; copy-on-write keeps it unchanged under their writes. *)
type frozen

val create : ?seed:int64 -> unit -> t
val map_page : t -> int -> fill -> unit

(** Map every page overlapping [addr, addr+len). *)
val map_range : t -> int64 -> int -> fill -> unit

val is_mapped : t -> int64 -> bool

(** {1 Accessors} — little-endian; multi-byte accesses may straddle
    pages. *)

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_bytes : t -> int64 -> int -> Bytes.t
val write_bytes : t -> int64 -> Bytes.t -> int -> int -> unit
val read_int : t -> int64 -> int -> int64
val write_int : t -> int64 -> int -> int64 -> unit
val read_f64 : t -> int64 -> float
val write_f64 : t -> int64 -> float -> unit

(** Set [len] bytes from [addr] to a byte value, page-wise
    ([Bytes.fill] per touched page rather than a byte loop). *)
val fill : t -> int64 -> int -> int -> unit

(** memmove semantics (overlap-safe copy). *)
val move : t -> dst:int64 -> src:int64 -> int -> unit

(** {1 Copy-on-write snapshots} *)

(** Capture the current state.  O(table), not O(heap): pages are shared
    with the snapshot and copied lazily on the next write from either
    side.  Advances the memory's chained content hash over every page
    dirtied since the previous freeze. *)
val freeze : t -> frozen

(** Rebuild a live, independently mutable memory from a snapshot in
    O(table).  Writes to the result never touch the snapshot or any
    other fork of it. *)
val thaw : frozen -> t

(** Chained content hash of the frozen state: equal hashes imply equal
    content (same write history from the same root); deterministic
    across processes, so it can serve as a cache-key component. *)
val frozen_hash : frozen -> int64

val frozen_pages : frozen -> int
