(** Simulated flat 64-bit address space with demand-mapped 4 KiB pages.

    Segment map (chosen so wild pointers usually fault while overflows
    between neighbouring objects corrupt silently — the two behaviours
    §2.5 distinguishes):

    {v
      [0, 0x10000)         guard: never mapped (null page)
      [0x0001_0000, ...)   globals, laid out at load time
      [0x4000_0000, ...)   stack, grows upward
      [0x8000_0000, ...)   heap wilderness
    v}

    Accesses to an unmapped page raise {!Fault} — a crash, which the
    experiment classification counts as natural detection (§3.6).  Pages
    are filled with deterministic garbage when first mapped, so
    uninitialized heap/stack reads see arbitrary but reproducible data. *)

type fault =
  | Unmapped of int64
  | Invalid_free of int64  (** allocator magic-check failure *)
  | Double_free of int64

exception Fault of fault

val fault_to_string : fault -> string

val page_size : int
val globals_base : int64
val stack_base : int64
val heap_base : int64

type fill = Fill_zero | Fill_garbage

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  seed : int64;
  mutable mapped_pages : int;  (** footprint statistic *)
  mutable cached_idx : int;
      (** one-entry page cache (index of [cached_page], [-1] when empty);
          pages are never unmapped or replaced, so it cannot go stale *)
  mutable cached_page : Bytes.t;
}

val create : ?seed:int64 -> unit -> t
val map_page : t -> int -> fill -> unit

(** Map every page overlapping [addr, addr+len). *)
val map_range : t -> int64 -> int -> fill -> unit

val is_mapped : t -> int64 -> bool

(** {1 Accessors} — little-endian; multi-byte accesses may straddle
    pages. *)

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_bytes : t -> int64 -> int -> Bytes.t
val write_bytes : t -> int64 -> Bytes.t -> int -> int -> unit
val read_int : t -> int64 -> int -> int64
val write_int : t -> int64 -> int -> int64 -> unit
val read_f64 : t -> int64 -> float
val write_f64 : t -> int64 -> float -> unit

(** Set [len] bytes from [addr] to a byte value, page-wise
    ([Bytes.fill] per touched page rather than a byte loop). *)
val fill : t -> int64 -> int -> int -> unit

(** memmove semantics (overlap-safe copy). *)
val move : t -> dst:int64 -> src:int64 -> int -> unit
