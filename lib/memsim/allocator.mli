(** Binned first-fit heap allocator over {!Mem}.

    Reproduces the behaviours the dissertation's detection conditions
    (§2.5) and fault model (§3.4) rely on: size-class rounding with a
    24-byte minimum payload (so small resize faults can be hidden by
    overallocation), inline 16-byte chunk headers (so overflows corrupt
    neighbouring metadata and bad frees crash on the magic check),
    free-list poisoning of freed payloads (metadata in freed buffers),
    and LIFO reuse (so dangling pointers get paired with fresh objects —
    the behaviour rearrange-heap disrupts). *)

type stats = {
  mutable n_malloc : int;
  mutable n_free : int;
  mutable live_bytes : int;
  mutable peak_bytes : int;
}

type t

val create : Mem.t -> t

(** Round a request to its size class (minimum payload 24, then to a
    16-byte multiple). *)
val round_size : int -> int

(** Allocate [n] bytes; returns the payload address. *)
val malloc : t -> int -> int64

(** Free a payload.  Raises {!Mem.Fault} on non-chunk pointers (magic
    check) and double frees; poisons the first 8 payload bytes with the
    free-list link. *)
val free : t -> int64 -> unit

(** Usable payload size — [heapBufSize] in the zero-before-free
    transformation (Table 2.8). *)
val usable_size : t -> int64 -> int

val is_heap_chunk : t -> int64 -> bool
val stats : t -> stats

(** Live heap bytes (the [stats] counter, without going through the
    record) — used by the per-load/store cache-pressure cost term. *)
val live_bytes : t -> int

(** Bytes between heap base and the wilderness pointer (high-water
    footprint). *)
val footprint_bytes : t -> int

(** {1 Copy-on-write snapshots} *)

(** Immutable capture of the allocator's bookkeeping (wilderness, bins,
    chunk tables, stats).  The heap {e contents} live in the paired
    {!Mem.frozen}. *)
type frozen

(** O(table-size) capture; touches no simulated memory. *)
val freeze : t -> frozen

(** Rebuild a live allocator over a thawed memory.  Fully independent of
    the snapshot and of any other fork. *)
val thaw : Mem.t -> frozen -> t

(** Deterministic content hash of the frozen bookkeeping (folds bins in
    size order and chunk tables order-independently). *)
val frozen_hash : frozen -> int64
