(** Wire protocol of the DPMR serving daemon.

    Frames are length-prefixed: a 4-byte big-endian payload length
    followed by the payload, one flat JSON object per frame — the same
    single-line convention as the result cache ([Job.parse_flat_object]
    parses both), so the protocol needs no JSON dependency and tolerates
    unknown fields.  Every payload carries the schema version in ["v"];
    a peer speaking a different version is answered with a [bad-request]
    error, never a parse failure.

    Requests reference programs by name: a built-in workload, or a
    content-addressed ["@ir/<hash>"] name minted by a [register]
    request carrying textual IR.  Variants are flat scalar fields using
    the exact canonical atoms of the cache identity ([Job.repr]), so a
    request, its cache key and its batch-CLI equivalent can never
    disagree on what was asked. *)

module Config = Dpmr_core.Config
module Inject = Dpmr_fi.Inject
module Experiment = Dpmr_fi.Experiment
module Job = Dpmr_engine.Job

let version = 1

let max_frame = 16 * 1024 * 1024
(** Upper bound on one frame's payload: large enough for any IR program
    we ship, small enough to refuse a garbage length prefix. *)

(* ---------------- variant atoms (Job.repr conventions) ---------------- *)

let kind_to_string = function
  | Inject.Heap_array_resize pct -> Printf.sprintf "resize-%d" pct
  | Inject.Immediate_free -> "free"
  | Inject.Off_by_one -> "off-by-one"
  | Inject.Wild_store off -> Printf.sprintf "wild-store-%d" off

let kind_of_string s =
  match s with
  | "free" -> Some Inject.Immediate_free
  | "off-by-one" -> Some Inject.Off_by_one
  | "resize" -> Some (Inject.Heap_array_resize 50)
  | _ when String.starts_with ~prefix:"resize-" s -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some pct -> Some (Inject.Heap_array_resize pct)
      | None -> None)
  | _ when String.starts_with ~prefix:"wild-store-" s -> (
      match int_of_string_opt (String.sub s 11 (String.length s - 11)) with
      | Some off -> Some (Inject.Wild_store off)
      | None -> None)
  | _ -> None

let diversity_to_string = function
  | Config.No_diversity -> "no-diversity"
  | Config.Pad_malloc n -> Printf.sprintf "pad-malloc-%d" n
  | Config.Zero_before_free -> "zero-before-free"
  | Config.Rearrange_heap -> "rearrange-heap"
  | Config.Pad_alloca n -> Printf.sprintf "pad-alloca-%d" n

let diversity_of_string s =
  match s with
  | "no-diversity" | "none" -> Some Config.No_diversity
  | "zero-before-free" -> Some Config.Zero_before_free
  | "rearrange-heap" -> Some Config.Rearrange_heap
  | _ when String.starts_with ~prefix:"pad-malloc-" s -> (
      match int_of_string_opt (String.sub s 11 (String.length s - 11)) with
      | Some n -> Some (Config.Pad_malloc n)
      | None -> None)
  | _ when String.starts_with ~prefix:"pad-alloca-" s -> (
      match int_of_string_opt (String.sub s 11 (String.length s - 11)) with
      | Some n -> Some (Config.Pad_alloca n)
      | None -> None)
  | _ -> None

let policy_to_string = function
  | Config.All_loads -> "all-loads"
  | Config.Temporal m -> Printf.sprintf "temporal-%Lx" m
  | Config.Static f -> Printf.sprintf "static-%h" f

let policy_of_string s =
  match s with
  | "all-loads" -> Some Config.All_loads
  | _ when String.starts_with ~prefix:"temporal-" s -> (
      match Int64.of_string_opt ("0x" ^ String.sub s 9 (String.length s - 9)) with
      | Some m -> Some (Config.Temporal m)
      | None -> None)
  | _ when String.starts_with ~prefix:"static-" s -> (
      match float_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some f -> Some (Config.Static f)
      | None -> None)
  | _ -> None

let mode_to_string = function Config.Sds -> "sds" | Config.Mds -> "mds"

let mode_of_string = function
  | "sds" -> Some Config.Sds
  | "mds" -> Some Config.Mds
  | _ -> None

let vote_to_string = function
  | Config.Any_mismatch -> "any-mismatch"
  | Config.Majority -> "majority"

let vote_of_string = function
  | "any-mismatch" -> Some Config.Any_mismatch
  | "majority" -> Some Config.Majority
  | _ -> None

(** Families travel as one "+"-joined string field, matching the
    {!Config.nversion_suffix} rendering. *)
let families_to_string fs = String.concat "+" fs

let families_of_string s =
  if s = "" then []
  else String.split_on_char '+' s |> List.filter (fun f -> f <> "")

(* ---------------- request / response model ---------------- *)

(** One detection-verdict request.  [golden] runs the untransformed
    program; [plain] injects without the DPMR transformation
    ([Fi_stdapp]); otherwise the config fields select the DPMR build.
    [site] indexes the deterministic [Inject.sites] list of the
    program; [site_ref] names the site outright (function, block,
    in-block index) and wins over [site] when present — the dispatcher
    uses it so workers need no site-list resolution round-trip.
    [budget = 0L] means "resolve from the experiment context" (~20x the
    golden cost, the batch default).  [forensics] additionally runs the
    request under a trace sink and returns the corruption→detection
    report. *)
type run_params = {
  workload : string;
  scale : int;
  exp_seed : int64;
  run_seed : int64;
  budget : int64;
  golden : bool;
  plain : bool;
  kind : Inject.kind option;
  site : int;
  site_ref : Inject.site option;
  mode : Config.mode;
  diversity : Config.diversity;
  policy : Config.policy;
  cfg_seed : int64;
  replicas : int;  (** N-version replica count; 1 = the paper's design *)
  families : string list;  (** diversity-family names, registry-validated *)
  vote : Config.vote;
  forensics : bool;
}

let default_run =
  {
    workload = "art";
    scale = 1;
    exp_seed = 42L;
    run_seed = 42L;
    budget = 0L;
    golden = false;
    plain = false;
    kind = None;
    site = 0;
    site_ref = None;
    mode = Config.Sds;
    diversity = Config.No_diversity;
    policy = Config.All_loads;
    cfg_seed = 42L;
    replicas = 1;
    families = [];
    vote = Config.Any_mismatch;
    forensics = false;
  }

let config_of (p : run_params) =
  {
    Config.mode = p.mode;
    diversity = p.diversity;
    policy = p.policy;
    seed = p.cfg_seed;
    replicas = p.replicas;
    families = p.families;
    vote = p.vote;
  }

type body =
  | Hello of string  (** client identification, echoed in logs *)
  | Run of run_params
  | Batch of int
      (** batch header: the next [n] frames on this connection are [Run]
          requests forming one batch.  The server executes them as one
          engine batch (pool parallelism, shared snapshot cells) and
          answers with [n] frames in input order, each tagged with the
          header's request id and its batch index ([encode_response
          ?index]) so a desynchronized stream fails loudly. *)
  | Register of string  (** textual IR; the response carries the minted name *)
  | Stats
  | Drain
  | Ping

type request = { rid : int; body : body }

type error_code =
  | Bad_request
  | Unknown_workload
  | Quota
  | Busy  (** admission refused: the daemon is at [--max-conns] *)
  | Failed  (** the supervisor gave up: deadline / retries exhausted / fatal *)
  | Draining
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_workload -> "unknown-workload"
  | Quota -> "quota"
  | Busy -> "busy"
  | Failed -> "failed"
  | Draining -> "draining"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad-request" -> Some Bad_request
  | "unknown-workload" -> Some Unknown_workload
  | "quota" -> Some Quota
  | "busy" -> Some Busy
  | "failed" -> Some Failed
  | "draining" -> Some Draining
  | "internal" -> Some Internal
  | _ -> None

type verdict = {
  cls : Experiment.classification;
  cached : bool;  (** served from the federated result cache *)
  wall_us : int;  (** server-side handling time, microseconds *)
  vforensics : string option;  (** forensics report JSON, when requested *)
}

type reply =
  | Verdict of verdict
  | Registered of string  (** content-addressed program name *)
  | Stats_json of string  (** nested JSON, shipped as one string field *)
  | Ack of string
  | Error of error_code * string

type response = { rrid : int; reply : reply }

(* ---------------- encoding ---------------- *)

let esc = Job.json_escape

let encode_request { rid; body } =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"v\":%d,\"id\":%d" version rid;
  (match body with
  | Hello client -> add ",\"t\":\"hello\",\"client\":\"%s\"" (esc client)
  | Register ir -> add ",\"t\":\"register\",\"ir\":\"%s\"" (esc ir)
  | Stats -> add ",\"t\":\"stats\""
  | Drain -> add ",\"t\":\"drain\""
  | Ping -> add ",\"t\":\"ping\""
  | Batch n -> add ",\"t\":\"batch\",\"n\":%d" n
  | Run p ->
      add ",\"t\":\"run\",\"workload\":\"%s\",\"scale\":%d" (esc p.workload) p.scale;
      add ",\"eseed\":%Ld,\"rseed\":%Ld,\"budget\":%Ld" p.exp_seed p.run_seed p.budget;
      add ",\"golden\":%b,\"plain\":%b" p.golden p.plain;
      add ",\"kind\":%s"
        (match p.kind with Some k -> Printf.sprintf "\"%s\"" (kind_to_string k) | None -> "null");
      add ",\"site\":%d" p.site;
      (match p.site_ref with
      | None -> ()
      | Some s ->
          add ",\"sfunc\":\"%s\",\"sblock\":\"%s\",\"sidx\":%d" (esc s.Inject.func)
            (esc s.Inject.block) s.Inject.index);
      add ",\"mode\":\"%s\",\"diversity\":\"%s\",\"policy\":\"%s\",\"cseed\":%Ld"
        (mode_to_string p.mode)
        (diversity_to_string p.diversity)
        (policy_to_string p.policy) p.cfg_seed;
      (* N-version fields travel only when non-default, so single-replica
         frames are byte-identical to the pre-N-version wire format *)
      if p.replicas <> 1 then add ",\"replicas\":%d" p.replicas;
      if p.families <> [] then
        add ",\"families\":\"%s\"" (esc (families_to_string p.families));
      if p.vote <> Config.Any_mismatch then
        add ",\"vote\":\"%s\"" (vote_to_string p.vote);
      add ",\"forensics\":%b" p.forensics);
  Buffer.add_char b '}';
  Buffer.contents b

let encode_response ?index { rrid; reply } =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"v\":%d,\"id\":%d" version rrid;
  (match index with Some i -> add ",\"i\":%d" i | None -> ());
  (match reply with
  | Ack msg -> add ",\"t\":\"ok\",\"msg\":\"%s\"" (esc msg)
  | Registered name -> add ",\"t\":\"registered\",\"name\":\"%s\"" (esc name)
  | Stats_json json -> add ",\"t\":\"stats\",\"json\":\"%s\"" (esc json)
  | Error (code, msg) ->
      add ",\"t\":\"error\",\"code\":\"%s\",\"msg\":\"%s\"" (error_code_to_string code)
        (esc msg)
  | Verdict v ->
      let c = v.cls in
      add ",\"t\":\"verdict\"";
      add ",\"sf\":%b,\"co\":%b,\"ndet\":%b,\"ddet\":%b,\"timeout\":%b" c.Experiment.sf
        c.Experiment.co c.Experiment.ndet c.Experiment.ddet c.Experiment.timeout;
      add ",\"t2d\":%s"
        (match c.Experiment.t2d with Some t -> Int64.to_string t | None -> "null");
      add ",\"cost\":%Ld,\"peak_heap\":%d" c.Experiment.cost c.Experiment.peak_heap;
      add ",\"cached\":%b,\"wall_us\":%d" v.cached v.wall_us;
      add ",\"forensics\":%s"
        (match v.vforensics with
        | Some j -> Printf.sprintf "\"%s\"" (esc j)
        | None -> "null"));
  Buffer.add_char b '}';
  Buffer.contents b

(* ---------------- decoding ---------------- *)

type 'a parse = ('a, string) result

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let fields_of line =
  match Job.parse_flat_object line with
  | Some fields -> Ok fields
  | None -> Error "malformed frame (not a flat JSON object)"

let str fields k =
  match List.assoc_opt k fields with
  | Some (`String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" k)

let int_field fields k ~default =
  match List.assoc_opt k fields with
  | Some (`Int i) -> Ok (Int64.to_int i)
  | None -> Ok default
  | _ -> Error (Printf.sprintf "field %S must be an integer" k)

let int64_field fields k ~default =
  match List.assoc_opt k fields with
  | Some (`Int i) -> Ok i
  | None -> Ok default
  | _ -> Error (Printf.sprintf "field %S must be an integer" k)

let bool_field fields k ~default =
  match List.assoc_opt k fields with
  | Some (`Bool b) -> Ok b
  | None -> Ok default
  | _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let str_field fields k ~default =
  match List.assoc_opt k fields with
  | Some (`String s) -> Ok s
  | None -> Ok default
  | _ -> Error (Printf.sprintf "field %S must be a string" k)

let opt_str fields k =
  match List.assoc_opt k fields with
  | Some (`String s) -> Ok (Some s)
  | Some `Null | None -> Ok None
  | _ -> Error (Printf.sprintf "field %S must be a string or null" k)

let opt_int64 fields k =
  match List.assoc_opt k fields with
  | Some (`Int i) -> Ok (Some i)
  | Some `Null | None -> Ok None
  | _ -> Error (Printf.sprintf "field %S must be an integer or null" k)

let check_version fields =
  match List.assoc_opt "v" fields with
  | Some (`Int v) when Int64.to_int v = version -> Ok ()
  | Some (`Int v) ->
      Error (Printf.sprintf "protocol version %Ld not supported (this end speaks %d)" v version)
  | _ -> Error "missing protocol version field \"v\""

let atom name parse s =
  match parse s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" name s)

let decode_run fields =
  let* workload = str_field fields "workload" ~default:default_run.workload in
  let* scale = int_field fields "scale" ~default:default_run.scale in
  let* exp_seed = int64_field fields "eseed" ~default:default_run.exp_seed in
  let* run_seed = int64_field fields "rseed" ~default:exp_seed in
  let* budget = int64_field fields "budget" ~default:0L in
  let* golden = bool_field fields "golden" ~default:false in
  let* plain = bool_field fields "plain" ~default:false in
  let* kind_s = opt_str fields "kind" in
  let* kind =
    match kind_s with
    | None | Some "none" -> Ok None
    | Some s ->
        let* k = atom "fault kind" kind_of_string s in
        Ok (Some k)
  in
  let* site = int_field fields "site" ~default:0 in
  let* sfunc = opt_str fields "sfunc" in
  let* site_ref =
    match sfunc with
    | None -> Ok None
    | Some func ->
        let* block = str fields "sblock" in
        let* index = int_field fields "sidx" ~default:0 in
        Ok (Some { Inject.func; block; index })
  in
  let* mode_s = str_field fields "mode" ~default:"sds" in
  let* mode = atom "mode" mode_of_string mode_s in
  let* div_s = str_field fields "diversity" ~default:"no-diversity" in
  let* diversity = atom "diversity" diversity_of_string div_s in
  let* pol_s = str_field fields "policy" ~default:"all-loads" in
  let* policy = atom "policy" policy_of_string pol_s in
  let* cfg_seed = int64_field fields "cseed" ~default:exp_seed in
  let* replicas = int_field fields "replicas" ~default:1 in
  let* () =
    if replicas >= 1 then Ok ()
    else Error (Printf.sprintf "replicas must be >= 1 (got %d)" replicas)
  in
  let* families_s = str_field fields "families" ~default:"" in
  let families = families_of_string families_s in
  let* vote_s = str_field fields "vote" ~default:"any-mismatch" in
  let* vote = atom "vote" vote_of_string vote_s in
  let* forensics = bool_field fields "forensics" ~default:false in
  Ok
    {
      workload;
      scale;
      exp_seed;
      run_seed;
      budget;
      golden;
      plain;
      kind;
      site;
      site_ref;
      mode;
      diversity;
      policy;
      cfg_seed;
      replicas;
      families;
      vote;
      forensics;
    }

let decode_request line =
  let* fields = fields_of line in
  let* () = check_version fields in
  let* rid = int_field fields "id" ~default:0 in
  let* t = str fields "t" in
  let* body =
    match t with
    | "hello" ->
        let* client = str_field fields "client" ~default:"" in
        Ok (Hello client)
    | "register" ->
        let* ir = str fields "ir" in
        Ok (Register ir)
    | "stats" -> Ok Stats
    | "drain" -> Ok Drain
    | "ping" -> Ok Ping
    | "run" ->
        let* p = decode_run fields in
        Ok (Run p)
    | "batch" ->
        let* n = int_field fields "n" ~default:0 in
        if n < 1 then Error "batch size must be >= 1" else Ok (Batch n)
    | other -> Error (Printf.sprintf "unknown request type %S" other)
  in
  Ok { rid; body }

(* The batch index a response frame was tagged with ([encode_response
   ?index]); decoded separately so the [response] record (and every
   single-request call site) keeps its historical shape. *)
let decode_response_index line =
  match fields_of line with
  | Error _ -> None
  | Ok fields -> (
      match List.assoc_opt "i" fields with Some (`Int i) -> Some (Int64.to_int i) | _ -> None)

let decode_response line =
  let* fields = fields_of line in
  let* () = check_version fields in
  let* rrid = int_field fields "id" ~default:0 in
  let* t = str fields "t" in
  let* reply =
    match t with
    | "ok" ->
        let* msg = str_field fields "msg" ~default:"" in
        Ok (Ack msg)
    | "registered" ->
        let* name = str fields "name" in
        Ok (Registered name)
    | "stats" ->
        let* json = str fields "json" in
        Ok (Stats_json json)
    | "error" ->
        let* code_s = str fields "code" in
        let* code = atom "error code" error_code_of_string code_s in
        let* msg = str_field fields "msg" ~default:"" in
        Ok (Error (code, msg))
    | "verdict" ->
        let* sf = bool_field fields "sf" ~default:false in
        let* co = bool_field fields "co" ~default:false in
        let* ndet = bool_field fields "ndet" ~default:false in
        let* ddet = bool_field fields "ddet" ~default:false in
        let* timeout = bool_field fields "timeout" ~default:false in
        let* t2d = opt_int64 fields "t2d" in
        let* cost = int64_field fields "cost" ~default:0L in
        let* peak_heap = int_field fields "peak_heap" ~default:0 in
        let* cached = bool_field fields "cached" ~default:false in
        let* wall_us = int_field fields "wall_us" ~default:0 in
        let* vforensics = opt_str fields "forensics" in
        Ok
          (Verdict
             {
               cls = { Experiment.sf; co; ndet; ddet; timeout; t2d; cost; peak_heap };
               cached;
               wall_us;
               vforensics;
             })
    | other -> Error (Printf.sprintf "unknown response type %S" other)
  in
  Ok { rrid; reply }

(* ---------------- framing ---------------- *)

exception Closed

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  (* one buffer, one write: a frame never interleaves with another
     writer's bytes as long as each frame has a single writer *)
  let buf = Bytes.create (4 + n) in
  Bytes.set_uint8 buf 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 buf 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 buf 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 buf 3 (n land 0xff);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then buf
    else
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then raise Closed else go (off + n)
  in
  go 0

(** [None] on a clean EOF at a frame boundary; raises {!Closed} on EOF
    mid-frame and [Failure] on an over-limit length prefix. *)
let read_frame fd =
  match read_exact fd 4 with
  | exception Closed -> None
  | hdr ->
      let n =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if n > max_frame then failwith "Protocol.read_frame: frame length exceeds limit";
      Some (Bytes.to_string (read_exact fd n))
