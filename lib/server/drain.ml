(** Graceful shutdown on SIGINT/SIGTERM, shared by the daemon and batch
    CLI runs.

    Two shapes:

    - {!graceful_exit} — for batch commands: on the first signal, run
      the registered cleanups (flush cache frames, dump telemetry) and
      exit with the conventional [128 + signo]; a second signal during
      cleanup exits immediately, so a wedged flush cannot make the
      process unkillable.
    - {!notify} — for the daemon: the handler only invokes the given
      callback (set a draining flag, wake the accept loop); the server
      owns the actual wind-down.

    OCaml runs signal handlers at safepoints on some running domain, so
    handlers here may execute full OCaml code — but cleanups should
    still be idempotent and quick. *)

let default_signals = [ Sys.sigint; Sys.sigterm ]

let cleanups : (unit -> unit) list ref = ref []
let cleaning = Atomic.make false

let on_cleanup f = cleanups := f :: !cleanups

let run_cleanups () =
  if not (Atomic.exchange cleaning true) then
    List.iter (fun f -> try f () with _ -> ()) !cleanups

let graceful_exit ?(signals = default_signals) () =
  List.iter
    (fun signo ->
      try
        Sys.set_signal signo
          (Sys.Signal_handle
             (fun s ->
               if Atomic.get cleaning then exit (128 + s)
               else begin
                 run_cleanups ();
                 exit (128 + s)
               end))
      with Invalid_argument _ | Sys_error _ -> ())
    signals

let notify ?(signals = default_signals) f =
  List.iter
    (fun signo ->
      try Sys.set_signal signo (Sys.Signal_handle (fun _ -> f ()))
      with Invalid_argument _ | Sys_error _ -> ())
    signals
