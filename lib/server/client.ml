(** Synchronous client for the serving protocol: one socket, one
    request (or one batch) in flight — the load generator opens many
    clients for concurrency, the dispatcher one per window slot.
    Request ids are assigned per client and checked against the
    response, so a desynchronized stream fails loudly instead of
    mis-attributing verdicts.

    Connection loss no longer has to end the session: a client created
    with [~reconnect:n] re-establishes the socket up to [n] times per
    operation, pacing attempts with the Supervisor's capped exponential
    backoff + deterministic jitter, and retransmits the request.
    Retransmission is safe by construction — every request is
    content-addressed and idempotent, and a reconnect discards the old
    socket wholesale so no stale response can be mis-attributed.  The
    default stays [reconnect = 0] (fail fast): the remote dispatcher
    wants the failure signal for its own quarantine accounting. *)

module Supervisor = Dpmr_engine.Supervisor

type endpoint = Unix_ep of string | Tcp_ep of string * int

let endpoint_name = function
  | Unix_ep p -> "unix:" ^ p
  | Tcp_ep (h, p) -> Printf.sprintf "%s:%d" h p

type t = {
  endpoint : endpoint;
  mutable fd : Unix.file_descr option;
  mutable next_rid : int;
  reconnect : int;  (** extra connection attempts per operation *)
  timeout : float;  (** per-socket send/receive timeout; [0.] = none *)
}

(* Reconnect pacing: same discipline as job retries, scaled for sockets
   (10 ms base, capped at 1 s). *)
let reconnect_policy =
  { Supervisor.deadline = None; max_retries = 0; backoff = 0.01; backoff_max = 1.0 }

let establish endpoint timeout =
  (* a peer may die between our frames; that must surface as EPIPE (a
     reconnectable Unix_error), not terminate the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd =
    match endpoint with
    | Unix_ep path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e ->
           Unix.close fd;
           raise e);
        fd
    | Tcp_ep (host, port) ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd (Unix.ADDR_INET (addr, port));
           Unix.setsockopt fd Unix.TCP_NODELAY true
         with e ->
           Unix.close fd;
           raise e);
        fd
  in
  if timeout > 0. then begin
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout with Unix.Unix_error _ -> ());
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout with Unix.Unix_error _ -> ())
  end;
  fd

let connect ?(reconnect = 0) ?(timeout = 0.) endpoint =
  (* eager connect: callers expect an unreachable server to fail here *)
  { endpoint; fd = Some (establish endpoint timeout); next_rid = 1; reconnect; timeout }

let connect_unix ?reconnect ?timeout path = connect ?reconnect ?timeout (Unix_ep path)
let connect_tcp ?reconnect ?timeout host port =
  connect ?reconnect ?timeout (Tcp_ep (host, port))

let drop t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

let close = drop

let abort t =
  (* shut both directions down so a [call] blocked in [read] on another
     thread wakes with a clean EOF; safe to race with [close] *)
  match t.fd with
  | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

let ensure t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let fd = establish t.endpoint t.timeout in
      t.fd <- Some fd;
      fd

(* One operation with the reconnect loop around it: any transport-level
   failure tears the socket down and (budget permitting) re-establishes
   and retransmits. *)
let with_retry t op =
  let rec go attempt =
    match op () with
    | r -> r
    | exception ((Protocol.Closed | Unix.Unix_error _ | Sys_error _ | Failure _) as e) ->
        drop t;
        if attempt >= t.reconnect then raise e
        else begin
          Unix.sleepf
            (Supervisor.backoff_delay reconnect_policy
               ~key:(endpoint_name t.endpoint) ~attempt);
          go (attempt + 1)
        end
  in
  go 0

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let read_reply fd ~rid =
  match Protocol.read_frame fd with
  | None -> raise Protocol.Closed
  | Some payload -> (
      match Protocol.decode_response payload with
      | Error msg -> failwith ("malformed response: " ^ msg)
      | Ok resp ->
          (* rrid 0 = a pre-decode failure on the server: it could not
             attribute the error to a request id *)
          if resp.Protocol.rrid <> rid && resp.Protocol.rrid <> 0 then
            failwith
              (Printf.sprintf "response id %d does not answer request %d"
                 resp.Protocol.rrid rid);
          (resp.Protocol.reply, Protocol.decode_response_index payload))

(** Send one request body; blocks for the matching response and returns
    its reply.  Raises [Protocol.Closed] if the server hung up (after
    exhausting any reconnect budget) and [Failure] on a malformed or
    mismatched response. *)
let call t body =
  with_retry t (fun () ->
      let fd = ensure t in
      let rid = fresh_rid t in
      Protocol.write_frame fd (Protocol.encode_request { Protocol.rid; body });
      fst (read_reply fd ~rid))

(** Scatter one chunk: a batch header plus one [run] frame per item,
    answered by one reply per item in input order.  A response frame
    carrying the wrong batch index fails the whole call (the stream is
    desynchronized); the caller re-dispatches the chunk. *)
let run_batch t params =
  match params with
  | [] -> []
  | _ ->
      with_retry t (fun () ->
          let fd = ensure t in
          let rid = fresh_rid t in
          let n = List.length params in
          Protocol.write_frame fd
            (Protocol.encode_request { Protocol.rid; body = Protocol.Batch n });
          List.iter
            (fun p ->
              Protocol.write_frame fd
                (Protocol.encode_request { Protocol.rid; body = Protocol.Run p }))
            params;
          List.init n (fun i ->
              let reply, index = read_reply fd ~rid in
              (match index with
              | Some j when j <> i ->
                  failwith
                    (Printf.sprintf "batch response out of order: got item %d, expected %d"
                       j i)
              | _ -> ());
              reply))

let hello t client_name = call t (Protocol.Hello client_name)
let ping t = call t Protocol.Ping
let stats t = call t Protocol.Stats
let drain t = call t Protocol.Drain
let register t ir_source = call t (Protocol.Register ir_source)
let run t params = call t (Protocol.Run params)
