(** Synchronous client for the serving protocol: one socket, one
    request in flight (the load generator opens many clients for
    concurrency).  Request ids are assigned per client and checked
    against the response, so a desynchronized stream fails loudly
    instead of mis-attributing verdicts. *)

type t = {
  fd : Unix.file_descr;
  mutable next_rid : int;
}

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; next_rid = 1 }

let connect_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (addr, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     Unix.close fd;
     raise e);
  { fd; next_rid = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** Send one request body; blocks for the matching response and returns
    its reply.  Raises [Protocol.Closed] if the server hung up and
    [Failure] on a malformed or mismatched response. *)
let call t body =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  Protocol.write_frame t.fd (Protocol.encode_request { Protocol.rid; body });
  match Protocol.read_frame t.fd with
  | None -> raise Protocol.Closed
  | Some payload -> (
      match Protocol.decode_response payload with
      | Error msg -> failwith ("malformed response: " ^ msg)
      | Ok resp ->
          (* rrid 0 = a pre-decode failure on the server: it could not
             attribute the error to a request id *)
          if resp.Protocol.rrid <> rid && resp.Protocol.rrid <> 0 then
            failwith
              (Printf.sprintf "response id %d does not answer request %d"
                 resp.Protocol.rrid rid);
          resp.Protocol.reply)

let hello t client_name = call t (Protocol.Hello client_name)
let ping t = call t Protocol.Ping
let stats t = call t Protocol.Stats
let drain t = call t Protocol.Drain
let register t ir_source = call t (Protocol.Register ir_source)
let run t params = call t (Protocol.Run params)
