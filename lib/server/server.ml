(** The resident DPMR daemon: detection verdicts as a service.

    One process holds one {!Engine} with a resident worker pool and the
    sharded result cache open, and serves protocol requests over a
    Unix-domain or TCP socket.  The accept loop runs on the main
    domain; each connection gets a handler domain that reads frames,
    validates and resolves them, and hands execution to the engine:

    - cache-known specs are answered on the handler domain itself
      (the engine's batch path serves hits before touching the pool),
      so hot keys never pay a pool round-trip;
    - misses execute on the shared pool under the supervisor
      (per-request deadline, retry/backoff, quarantine), exactly like a
      batch campaign — verdicts are byte-for-byte the batch CLI's;
    - per-client token buckets reject over-rate requests with a [quota]
      error before any work is done.

    Graceful drain: SIGTERM/SIGINT (or a [drain] request) stops
    admission, lets in-flight requests finish, flushes the cache and
    returns from {!serve}. *)

module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Fi_forensics = Dpmr_fi.Forensics
module Engine = Dpmr_engine.Engine
module Job = Dpmr_engine.Job
module Telemetry = Dpmr_engine.Telemetry
module Chaos = Dpmr_engine.Chaos

type listen = Unix_sock of string | Tcp of string * int

let pp_listen = function
  | Unix_sock p -> Printf.sprintf "unix:%s" p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  listen : listen;
  max_conns : int;  (** concurrent connections (each one handler domain) *)
  quota_rps : float;  (** per-connection token refill; [<= 0] = unlimited *)
  quota_burst : int;
  drain_grace : float;  (** seconds to wait for in-flight connections on drain *)
  verbose : bool;
  allow_chaos_kill : bool;
      (** permit [Wire_kill] chaos to [_exit] the process — only safe in
          a standalone daemon; in-process test servers downgrade the
          kill to a connection reset *)
}

let default_config =
  {
    listen = Unix_sock "dpmr.sock";
    max_conns = 16;
    quota_rps = 0.;
    quota_burst = 64;
    drain_grace = 30.;
    verbose = false;
    allow_chaos_kill = false;
  }

type t = {
  engine : Engine.t;
  cfg : config;
  draining : bool Atomic.t;
  conns : int Atomic.t;
  served : int Atomic.t;  (** requests answered, errors included *)
  errors : int Atomic.t;
  quota_rejects : int Atomic.t;
  (* golden-derived facts (budget, site lists) per experiment identity:
     resolved once on first request, shared by every connection.  Values
     are plain data, safe to cross domains — unlike the experiment
     contexts themselves, which stay in each worker's DLS. *)
  budgets : (string, int64) Hashtbl.t;
  sites : (string, Inject.site array) Hashtbl.t;
  meta_mu : Mutex.t;
  (* wire-chaos attempt counters: how many times each request identity
     was served, so the burst rule guarantees a retrying peer clean
     service eventually *)
  wire_attempts : (string, int) Hashtbl.t;
  wire_mu : Mutex.t;
}

let create ?(cfg = default_config) engine =
  {
    engine;
    cfg = { cfg with max_conns = max 1 (min 64 cfg.max_conns) };
    draining = Atomic.make false;
    conns = Atomic.make 0;
    served = Atomic.make 0;
    errors = Atomic.make 0;
    quota_rejects = Atomic.make 0;
    budgets = Hashtbl.create 16;
    sites = Hashtbl.create 16;
    meta_mu = Mutex.create ();
    wire_attempts = Hashtbl.create 64;
    wire_mu = Mutex.create ();
  }

let draining t = Atomic.get t.draining
let request_drain t = Atomic.set t.draining true

let logf t fmt =
  Printf.ksprintf
    (fun m -> if t.cfg.verbose then Printf.eprintf "[dpmr_serve] %s\n%!" m)
    fmt

(* ---------------- request resolution ---------------- *)

exception Reject of Protocol.error_code * string

let exp_key (p : Protocol.run_params) =
  Printf.sprintf "%s\x00%d\x00%Ld" p.workload p.scale p.exp_seed

(** The spec used only to locate/build the experiment context on a
    worker; variant and seeds are irrelevant to the context key. *)
let probe_spec (p : Protocol.run_params) =
  {
    Job.workload = p.workload;
    scale = p.scale;
    exp_seed = p.exp_seed;
    run_seed = p.exp_seed;
    budget = 0L;
    variant = Experiment.Golden;
  }

(** Budget (and, when [kind] is given, the injection-site list) of the
    request's experiment, resolved by one engine task on first use and
    memoized.  Building the context takes the golden run, so an unknown
    workload or a failing program surfaces here — before the request is
    admitted to the run path. *)
let resolve_meta t (p : Protocol.run_params) kind =
  let bkey = exp_key p in
  let skey = Option.map (fun k -> bkey ^ "\x00" ^ Protocol.kind_to_string k) kind in
  let cached =
    Mutex.protect t.meta_mu (fun () ->
        match (Hashtbl.find_opt t.budgets bkey, skey) with
        | Some b, None -> Some (b, [||])
        | Some b, Some sk -> (
            match Hashtbl.find_opt t.sites sk with
            | Some s -> Some (b, s)
            | None -> None)
        | None, _ -> None)
  in
  match cached with
  | Some r -> r
  | None -> (
      let task () =
        let e = Engine.experiment_for (probe_spec p) in
        let sites =
          match kind with
          | Some k -> Array.of_list (Experiment.sites e k)
          | None -> [||]
        in
        (e.Experiment.budget, sites)
      in
      match Engine.run_tasks t.engine [ task ] with
      | [ (budget, sites) ] ->
          Mutex.protect t.meta_mu (fun () ->
              Hashtbl.replace t.budgets bkey budget;
              Option.iter (fun sk -> Hashtbl.replace t.sites sk sites) skey);
          (budget, sites)
      | _ -> raise (Reject (Protocol.Internal, "meta resolution returned no result"))
      | exception Invalid_argument msg -> raise (Reject (Protocol.Unknown_workload, msg))
      | exception Failure msg -> raise (Reject (Protocol.Bad_request, msg)))

let spec_of_params t (p : Protocol.run_params) =
  (* The N-version axes are validated up front so a bad request is the
     client's error (a protocol [Bad_request]), never a worker abort
     deep inside the transform. *)
  (match Dpmr_core.Diversity_family.resolve p.families with
  | Ok _ -> ()
  | Error f ->
      raise
        (Reject
           ( Protocol.Bad_request,
             Printf.sprintf "unknown diversity family %S (have: %s)" f
               (String.concat ", " (Dpmr_core.Diversity_family.names ())) )));
  let variant =
    if p.golden then Experiment.Golden
    else
      match p.kind with
      | None ->
          if p.plain then Experiment.Golden else Experiment.Nofi_dpmr (Protocol.config_of p)
      | Some k -> (
          (* an explicit site needs no site-list resolution: the
             dispatcher ships sites it already resolved, so a worker
             can serve the job without a golden-run round-trip *)
          match p.site_ref with
          | Some site ->
              if p.plain then Experiment.Fi_stdapp (k, site)
              else Experiment.Fi_dpmr (Protocol.config_of p, k, site)
          | None ->
              let _, sites = resolve_meta t p (Some k) in
              if p.site < 0 || p.site >= Array.length sites then
                raise
                  (Reject
                     ( Protocol.Bad_request,
                       Printf.sprintf "no such site %d for kind %s (have %d)" p.site
                         (Protocol.kind_to_string k) (Array.length sites) ))
              else if p.plain then Experiment.Fi_stdapp (k, sites.(p.site))
              else Experiment.Fi_dpmr (Protocol.config_of p, k, sites.(p.site)))
  in
  let budget =
    if Int64.compare p.budget 0L > 0 then p.budget else fst (resolve_meta t p None)
  in
  {
    Job.workload = p.workload;
    scale = p.scale;
    exp_seed = p.exp_seed;
    run_seed = p.run_seed;
    budget;
    variant;
  }

let run_forensics t spec (p : Protocol.run_params) =
  let task () =
    let e = Engine.experiment_for spec in
    let e =
      if Int64.equal e.Experiment.budget spec.Job.budget then e
      else { e with Experiment.budget = spec.Job.budget }
    in
    let tr = Fi_forensics.run_variant ~seed:p.run_seed e spec.Job.variant in
    (tr.Fi_forensics.classification, Fi_forensics.to_json tr)
  in
  match Engine.run_tasks t.engine [ task ] with
  | [ (cls, json) ] -> (cls, Some json)
  | _ -> raise (Reject (Protocol.Internal, "forensics task returned no result"))

let run_one t (p : Protocol.run_params) =
  let t0 = Unix.gettimeofday () in
  let spec = spec_of_params t p in
  let cached = Engine.cache_mem t.engine spec in
  let cls, forensics =
    if p.forensics then run_forensics t spec p
    else
      match Engine.run_specs_r t.engine [ spec ] with
      | [ Experiment.Run cls ] -> (cls, None)
      | [ Experiment.Job_failed f ] ->
          raise
            (Reject
               ( Protocol.Failed,
                 Printf.sprintf "%s after %d attempt(s): %s" f.Experiment.fail_reason
                   f.Experiment.fail_attempts f.Experiment.fail_error ))
      | _ -> raise (Reject (Protocol.Internal, "engine returned no result"))
  in
  let wall_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  Protocol.Verdict { Protocol.cls; cached; wall_us; vforensics = forensics }

(* ---------------- stats ---------------- *)

let stats_json t =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"dpmr-serve-stats/1\",\n";
  add "  \"served\": %d,\n" (Atomic.get t.served);
  add "  \"errors\": %d,\n" (Atomic.get t.errors);
  add "  \"quota_rejects\": %d,\n" (Atomic.get t.quota_rejects);
  add "  \"connections\": %d,\n" (Atomic.get t.conns);
  add "  \"draining\": %b,\n" (Atomic.get t.draining);
  add "  \"telemetry\": %s" (String.trim
    (Telemetry.to_json (Engine.telemetry t.engine) ~workers:(Engine.jobs t.engine)
       ~cache:(Engine.cache_stats t.engine)
       ~tier:(Dpmr_vm.Vm.tier_stats ())
       ~plan_memo:(Dpmr_fi.Experiment.diff_memo_stats ())));
  add "\n}\n";
  Buffer.contents b

(* ---------------- wire chaos ---------------- *)

(* Drop the connection deliberately (reset, or the tail of a torn
   frame); the handler treats it like any peer hang-up. *)
exception Chaos_drop

let wire_attempt t key =
  Mutex.protect t.wire_mu (fun () ->
      let n = Option.value ~default:0 (Hashtbl.find_opt t.wire_attempts key) in
      Hashtbl.replace t.wire_attempts key (n + 1);
      n)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

(* A torn frame: the length prefix promises the whole payload but only
   the first half arrives before the connection drops — the peer must
   detect the mid-frame EOF, not mis-parse a short record. *)
let write_torn_frame cfd payload =
  let n = String.length payload in
  let keep = max 1 (n / 2) in
  let buf = Bytes.create (4 + keep) in
  Bytes.set_uint8 buf 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 buf 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 buf 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 buf 3 (n land 0xff);
  Bytes.blit_string payload 0 buf 4 keep;
  (try write_all cfd buf 0 (4 + keep) with Unix.Unix_error _ -> ())

(** Write one response frame, subject to wire chaos when [ckey] names a
    retriable request identity (verdict frames only — control replies
    stay reliable so probes measure host health, not chaos). *)
let send_reply t cfd ?index ?ckey resp =
  let payload = Protocol.encode_response ?index resp in
  match ckey with
  | None -> Protocol.write_frame cfd payload
  | Some key -> (
      match Chaos.wire_active () with
      | None -> Protocol.write_frame cfd payload
      | Some c -> (
          let attempt = wire_attempt t key in
          match Chaos.wire_plan c ~key ~attempt with
          | None -> Protocol.write_frame cfd payload
          | Some (Chaos.Wire_stall d) ->
              Unix.sleepf d;
              Protocol.write_frame cfd payload
          | Some Chaos.Wire_torn ->
              write_torn_frame cfd payload;
              raise Chaos_drop
          | Some Chaos.Wire_reset -> raise Chaos_drop
          | Some Chaos.Wire_kill ->
              if t.cfg.allow_chaos_kill then begin
                (* the worker dies mid-job: no reply, no cache flush, no
                   drain — exactly the failure quarantine + re-dispatch
                   (and the cache's torn-tail recovery) must absorb *)
                logf t "wire chaos: killing worker process";
                Unix._exit 137
              end
              else raise Chaos_drop))

let chaos_key_of_run (p : Protocol.run_params) =
  Protocol.encode_request { Protocol.rid = 0; body = Protocol.Run p }

(* ---------------- per-connection handling ---------------- *)

let handle t (session : Session.t) (req : Protocol.request) =
  let reply =
    match req.Protocol.body with
    | Protocol.Hello client ->
        session.Session.client <- client;
        Protocol.Ack (Printf.sprintf "dpmr_serve protocol v%d" Protocol.version)
    | Protocol.Ping -> Protocol.Ack "pong"
    | Protocol.Stats -> Protocol.Stats_json (stats_json t)
    | Protocol.Drain ->
        request_drain t;
        Protocol.Ack "draining"
    | Protocol.Register ir -> (
        match Session.register_ir ir with
        | Ok name -> Protocol.Registered name
        | Error msg -> Protocol.Error (Protocol.Bad_request, msg))
    | Protocol.Batch _ ->
        (* batches are framed at the connection level (header + n run
           frames); one reaching the single-request path is a peer bug *)
        Protocol.Error (Protocol.Bad_request, "batch header outside connection framing")
    | Protocol.Run p -> (
        if Atomic.get t.draining then
          Protocol.Error (Protocol.Draining, "server is draining; resubmit elsewhere")
        else if not (Session.admit session) then begin
          Atomic.incr t.quota_rejects;
          Protocol.Error (Protocol.Quota, "per-connection rate limit exceeded")
        end
        else
          try run_one t p with
          | Reject (code, msg) -> Protocol.Error (code, msg)
          | e -> Protocol.Error (Protocol.Internal, Printexc.to_string e))
  in
  session.Session.served <- session.Session.served + 1;
  Atomic.incr t.served;
  (match reply with Protocol.Error _ -> Atomic.incr t.errors | _ -> ());
  { Protocol.rrid = req.Protocol.rid; reply }

(* One scattered chunk: a batch header followed by [n] run frames,
   answered with [n] frames in input order (each tagged with the header
   rid and its batch index).  All admissible items execute as ONE engine
   batch, so the remote pool parallelism and snapshot-cell forking the
   dispatcher grouped them for actually happen; inadmissible items
   (draining, quota, bad request, unknown workload) answer with their
   own error frames and never poison the rest of the chunk. *)
let handle_batch t (session : Session.t) cfd ~rid n =
  let frames =
    Array.init n (fun _ ->
        match Protocol.read_frame cfd with
        | Some payload -> payload
        | None -> raise Protocol.Closed)
  in
  let t0 = Unix.gettimeofday () in
  let slots =
    Array.map
      (fun payload ->
        match Protocol.decode_request payload with
        | Error msg -> `Err (Protocol.Bad_request, msg)
        | Ok { Protocol.body = Protocol.Run p; _ } ->
            if p.Protocol.forensics then
              `Err (Protocol.Bad_request, "forensics runs are not batchable")
            else if Atomic.get t.draining then
              `Err (Protocol.Draining, "server is draining; resubmit elsewhere")
            else if not (Session.admit session) then begin
              Atomic.incr t.quota_rejects;
              `Err (Protocol.Quota, "per-connection rate limit exceeded")
            end
            else (
              try
                let spec = spec_of_params t p in
                `Spec (spec, Engine.cache_mem t.engine spec)
              with
              | Reject (code, msg) -> `Err (code, msg)
              | e -> `Err (Protocol.Internal, Printexc.to_string e))
        | Ok _ -> `Err (Protocol.Bad_request, "batch items must be run requests"))
      frames
  in
  let specs =
    Array.to_list slots
    |> List.filter_map (function `Spec (s, _) -> Some s | `Err _ -> None)
  in
  let outcomes = Array.of_list (Engine.run_specs_r t.engine specs) in
  let wall_us =
    int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) / max 1 (Array.length outcomes)
  in
  let next = ref 0 in
  Array.iteri
    (fun i slot ->
      let reply, ckey =
        match slot with
        | `Err (code, msg) -> (Protocol.Error (code, msg), None)
        | `Spec (spec, cached) -> (
            let r = outcomes.(!next) in
            incr next;
            match r with
            | Experiment.Run cls ->
                ( Protocol.Verdict { Protocol.cls; cached; wall_us; vforensics = None },
                  Some (Job.repr spec) )
            | Experiment.Job_failed f ->
                ( Protocol.Error
                    ( Protocol.Failed,
                      Printf.sprintf "%s after %d attempt(s): %s" f.Experiment.fail_reason
                        f.Experiment.fail_attempts f.Experiment.fail_error ),
                  Some (Job.repr spec) ))
      in
      session.Session.served <- session.Session.served + 1;
      Atomic.incr t.served;
      (match reply with Protocol.Error _ -> Atomic.incr t.errors | _ -> ());
      send_reply t cfd ~index:i ?ckey { Protocol.rrid = rid; reply })
    slots

let handle_conn t cfd =
  let session =
    Session.create ~quota_rps:t.cfg.quota_rps ~quota_burst:t.cfg.quota_burst ()
  in
  (try
     let rec loop () =
       match Protocol.read_frame cfd with
       | None -> ()
       | Some payload ->
           (match Protocol.decode_request payload with
           | Ok { Protocol.rid; body = Protocol.Batch n } ->
               handle_batch t session cfd ~rid n
           | Ok req ->
               let resp = handle t session req in
               let ckey =
                 match req.Protocol.body with
                 | Protocol.Run p -> Some (chaos_key_of_run p)
                 | _ -> None
               in
               send_reply t cfd ?ckey resp
           | Error msg ->
               Atomic.incr t.served;
               Atomic.incr t.errors;
               Protocol.write_frame cfd
                 (Protocol.encode_response
                    { Protocol.rrid = 0; reply = Protocol.Error (Protocol.Bad_request, msg) }));
           loop ()
     in
     loop ();
     logf t "session %d (%s): %d request(s), %d quota reject(s)" session.Session.sid
       session.Session.client session.Session.served session.Session.rejected
   with
  | Protocol.Closed | Chaos_drop | Unix.Unix_error _ | Failure _ -> ()
  | e -> logf t "connection error: %s" (Printexc.to_string e));
  (try Unix.close cfd with Unix.Unix_error _ -> ());
  Atomic.decr t.conns

(* ---------------- the accept loop ---------------- *)

let bind_listener = function
  | Unix_sock path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_any
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      fd

(** Run the daemon until drained.  Installs SIGINT/SIGTERM handlers
    that request a drain; returns once admission has stopped, in-flight
    connections have finished (or [drain_grace] expired) and the cache
    is flushed.  The engine itself is left open — the caller owns it. *)
let serve ?(ready = fun () -> ()) t =
  (* clients may vanish mid-reply; writes must fail with EPIPE, not
     kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lfd = bind_listener t.cfg.listen in
  Unix.listen lfd 64;
  Drain.notify (fun () -> request_drain t);
  logf t "listening on %s (%d workers, quota %.1f rps)" (pp_listen t.cfg.listen)
    (Engine.jobs t.engine) t.cfg.quota_rps;
  ready ();
  let handlers = ref [] in
  let handlers_mu = Mutex.create () in
  while not (Atomic.get t.draining) do
    match Unix.select [ lfd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept lfd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | cfd, _ ->
            if Atomic.get t.conns >= t.cfg.max_conns then begin
              (* refuse politely: one error frame, then close *)
              (try
                 Protocol.write_frame cfd
                   (Protocol.encode_response
                      {
                        Protocol.rrid = 0;
                        reply =
                          Protocol.Error
                            ( Protocol.Busy,
                              Printf.sprintf "connection limit (%d) reached"
                                t.cfg.max_conns );
                      })
               with _ -> ());
              (try Unix.close cfd with Unix.Unix_error _ -> ())
            end
            else begin
              Atomic.incr t.conns;
              let d = Domain.spawn (fun () -> handle_conn t cfd) in
              Mutex.protect handlers_mu (fun () -> handlers := d :: !handlers)
            end)
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match t.cfg.listen with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  (* drain: wait for in-flight connections, then join their domains *)
  let cutoff = Unix.gettimeofday () +. t.cfg.drain_grace in
  while Atomic.get t.conns > 0 && Unix.gettimeofday () < cutoff do
    Unix.sleepf 0.01
  done;
  if Atomic.get t.conns = 0 then
    List.iter Domain.join (Mutex.protect handlers_mu (fun () -> !handlers))
  else
    logf t "drain grace expired with %d connection(s) still open" (Atomic.get t.conns);
  Engine.drain t.engine;
  logf t "drained: %d request(s) served, %d error(s)" (Atomic.get t.served)
    (Atomic.get t.errors)
