(** Per-connection session state: client identity, token-bucket quota,
    and the programs this client registered.

    The token bucket refills continuously at [rate] requests per second
    up to [burst]; a request that finds no token is answered with a
    [quota] error and costs nothing.  [rate <= 0] disables the quota
    (the loopback/benchmark configuration).

    Registration parses and verifies textual IR once, on the session's
    domain, then publishes a builder under a content-addressed name
    ["@ir/<hash>"] in the [Workloads] dynamic registry — from there the
    ordinary engine path applies: specs hash the name, the federated
    cache serves repeats, and each worker domain lowers the program
    once into its domain-local context. *)

module Text = Dpmr_ir.Text
module Verifier = Dpmr_ir.Verifier
module Workloads = Dpmr_workloads.Workloads

(* ---------------- token bucket ---------------- *)

type bucket = {
  rate : float;  (** tokens per second *)
  burst : float;
  mutable tokens : float;
  mutable last : float;  (** last refill timestamp *)
  mu : Mutex.t;
}

let bucket ~rate ~burst =
  if rate <= 0. then None
  else
    Some
      {
        rate;
        burst = Float.max 1. burst;
        tokens = Float.max 1. burst;
        last = Unix.gettimeofday ();
        mu = Mutex.create ();
      }

let try_take b =
  Mutex.protect b.mu (fun () ->
      let now = Unix.gettimeofday () in
      b.tokens <- Float.min b.burst (b.tokens +. ((now -. b.last) *. b.rate));
      b.last <- now;
      if b.tokens >= 1. then begin
        b.tokens <- b.tokens -. 1.;
        true
      end
      else false)

(* ---------------- sessions ---------------- *)

type t = {
  sid : int;
  mutable client : string;  (** from the hello request; for logs only *)
  quota : bucket option;
  mutable served : int;  (** requests answered, errors included *)
  mutable rejected : int;  (** quota rejections *)
}

let next_sid = Atomic.make 1

let create ?(quota_rps = 0.) ?(quota_burst = 64) () =
  {
    sid = Atomic.fetch_and_add next_sid 1;
    client = "";
    quota = bucket ~rate:quota_rps ~burst:(float_of_int quota_burst);
    served = 0;
    rejected = 0;
  }

let admit t =
  match t.quota with
  | None -> true
  | Some b ->
      let ok = try_take b in
      if not ok then t.rejected <- t.rejected + 1;
      ok

(* ---------------- program registration ---------------- *)

let fnv1a64 str =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    str;
  !h

let name_of_ir src = Printf.sprintf "@ir/%016Lx" (fnv1a64 src)

(** Parse, verify and publish textual IR; returns the content-addressed
    workload name (stable across sessions and hosts: the same source
    always mints the same name, so the result cache federates across
    submitters).  [Error] renders the parse/verification failure. *)
let register_ir src =
  match
    let prog = Text.parse src in
    Dpmr_vm.Extern.declare_signatures prog;
    Verifier.check_prog prog;
    prog
  with
  | exception Text.Parse_error (line, msg) ->
      Error (Printf.sprintf "parse error at line %d: %s" line msg)
  | exception e -> Error (Printf.sprintf "invalid program: %s" (Printexc.to_string e))
  | _prog ->
      let name = name_of_ir src in
      Workloads.register
        {
          Workloads.name;
          description = "registered over the serving protocol";
          build =
            (fun ?scale:_ () ->
              (* per-domain rebuild from source: a [Prog.t] carries
                 internal caches and must never cross domains *)
              let p = Text.parse src in
              Dpmr_vm.Extern.declare_signatures p;
              p);
        };
      Ok name
