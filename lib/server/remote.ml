(** The production {!Dpmr_engine.Dispatch.transport}: scatter/gather
    over the serving protocol.

    [Dispatch] lives in [lib/engine] and cannot name the protocol (this
    library depends on that one), so the dispatcher takes its transport
    as a record of functions and this module supplies the real one: a
    {!Client} per connection, batches as a header frame plus one [run]
    frame per job, verdicts mapped back to dispatcher outcomes.

    The reply-to-outcome mapping encodes the failure taxonomy:

    - [Verdict] — the verdict; [R_verdict];
    - [Error failed] — the {e remote} supervisor gave up after its own
      deadline/retry/quarantine discipline.  Deterministic, so
      re-dispatching elsewhere would fail identically: [R_failed]
      (a job hole), not a host failure;
    - [Error unknown-workload / bad-request / internal] — this worker
      cannot run the job at all: [R_reject], the dispatcher runs it
      locally;
    - [Error quota / draining / busy] — the {e connection} was refused
      service: [Host_down], the chunk re-dispatches and the host is
      suspected;
    - connection loss, timeouts, torn frames, desynchronized batch
      indices — [Host_down] likewise.

    Specs ship with their injection site named outright ([site_ref]),
    so a worker never pays a site-list resolution round-trip for jobs
    the driver already planned. *)

module Dispatch = Dpmr_engine.Dispatch
module Job = Dpmr_engine.Job
module Experiment = Dpmr_fi.Experiment

let params_of_spec (spec : Job.spec) =
  let base =
    {
      Protocol.default_run with
      Protocol.workload = spec.Job.workload;
      scale = spec.Job.scale;
      exp_seed = spec.Job.exp_seed;
      run_seed = spec.Job.run_seed;
      budget = spec.Job.budget;
    }
  in
  match spec.Job.variant with
  | Experiment.Golden -> { base with Protocol.golden = true }
  | Experiment.Fi_stdapp (kind, site) ->
      { base with Protocol.plain = true; kind = Some kind; site_ref = Some site }
  | Experiment.Nofi_dpmr cfg ->
      {
        base with
        Protocol.mode = cfg.Dpmr_core.Config.mode;
        diversity = cfg.Dpmr_core.Config.diversity;
        policy = cfg.Dpmr_core.Config.policy;
        cfg_seed = cfg.Dpmr_core.Config.seed;
        replicas = cfg.Dpmr_core.Config.replicas;
        families = cfg.Dpmr_core.Config.families;
        vote = cfg.Dpmr_core.Config.vote;
      }
  | Experiment.Fi_dpmr (cfg, kind, site) ->
      {
        base with
        Protocol.kind = Some kind;
        site_ref = Some site;
        mode = cfg.Dpmr_core.Config.mode;
        diversity = cfg.Dpmr_core.Config.diversity;
        policy = cfg.Dpmr_core.Config.policy;
        cfg_seed = cfg.Dpmr_core.Config.seed;
        replicas = cfg.Dpmr_core.Config.replicas;
        families = cfg.Dpmr_core.Config.families;
        vote = cfg.Dpmr_core.Config.vote;
      }

(** [unix:PATH], [HOST:PORT], or a bare socket path. *)
let endpoint_of_addr addr =
  if String.starts_with ~prefix:"unix:" addr then
    Client.Unix_ep (String.sub addr 5 (String.length addr - 5))
  else
    match String.rindex_opt addr ':' with
    | Some i -> (
        let host = String.sub addr 0 i in
        let port = String.sub addr (i + 1) (String.length addr - i - 1) in
        match int_of_string_opt port with
        | Some p when host <> "" -> Client.Tcp_ep (host, p)
        | _ -> Client.Unix_ep addr)
    | None -> Client.Unix_ep addr

let down msg = raise (Dispatch.Host_down msg)

let outcome_of_reply = function
  | Protocol.Verdict v -> Dispatch.R_verdict v.Protocol.cls
  | Protocol.Error (Protocol.Failed, msg) -> Dispatch.R_failed msg
  | Protocol.Error ((Protocol.Quota | Protocol.Draining | Protocol.Busy), msg) -> down msg
  | Protocol.Error ((Protocol.Bad_request | Protocol.Unknown_workload | Protocol.Internal), msg)
    ->
      Dispatch.R_reject msg
  | Protocol.Registered _ | Protocol.Stats_json _ | Protocol.Ack _ ->
      down "unexpected reply type in batch"

let transport ?(timeout = 0.) () =
  {
    Dispatch.connect =
      (fun addr ->
        let c =
          try Client.connect ~timeout (endpoint_of_addr addr)
          with e -> down (Printexc.to_string e)
        in
        {
          Dispatch.c_run_batch =
            (fun items ->
              let params =
                Array.to_list (Array.map (fun (_, spec) -> params_of_spec spec) items)
              in
              let replies =
                try Client.run_batch c params with
                | Dispatch.Host_down _ as e -> raise e
                | Protocol.Closed -> down "connection closed"
                | Unix.Unix_error (e, _, _) -> down (Unix.error_message e)
                | Failure msg -> down msg
              in
              Array.of_list (List.map outcome_of_reply replies));
          c_ping =
            (fun () ->
              match Client.ping c with
              | Protocol.Ack _ -> true
              | _ -> false
              | exception _ -> false);
          c_abort = (fun () -> Client.abort c);
          c_close = (fun () -> Client.close c);
        });
  }
