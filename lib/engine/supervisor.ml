(** Fault-tolerant job supervision for campaign runs.

    Long fault-injection campaigns cannot afford the failure modes of a
    bare worker pool: one raised exception must not void thousands of
    completed runs, a wedged job must hit a wall-clock ceiling (the
    simulated-cost budget bounds simulated time, not host time), and a
    job that fails deterministically must not be retried forever.

    [run] wraps one job attempt with three mechanisms:

    - {b deadline}: a per-attempt wall-clock ceiling enforced
      cooperatively through {!Vm.set_poll_hook} — the VM's dispatch
      loops poll once per basic block, so even a program stuck in a hot
      loop is cancelled within one poll interval;
    - {b retry}: transient failures (chaos injections, or exceptions
      matching a registered predicate) are retried with exponential
      backoff and deterministic jitter (hashed from the job key and
      attempt, so reruns back off identically);
    - {b quarantine}: deterministic failures — and transient ones that
      exhaust their retries — are recorded once and answered from the
      quarantine table on every later submission, so a poisoned spec
      cannot stall a sweep twice.

    A failed job surfaces as an explicit [Error failure] per slot, never
    as a batch abort. *)

type reason =
  | Deadline  (** wall-clock ceiling hit; cancelled mid-run *)
  | Transient  (** retriable failures, retries exhausted *)
  | Fatal  (** deterministic failure; no retry *)

let reason_name = function
  | Deadline -> "deadline"
  | Transient -> "transient-exhausted"
  | Fatal -> "fatal"

type failure = {
  fkey : string;
  freason : reason;
  fattempts : int;  (** attempts actually executed *)
  ferror : string;  (** [Printexc.to_string] of the last exception *)
}

let failure_to_string f =
  Printf.sprintf "%s after %d attempt(s): %s" (reason_name f.freason) f.fattempts f.ferror

type policy = {
  deadline : float option;  (** per-attempt wall-clock ceiling, seconds *)
  max_retries : int;  (** extra attempts granted to transient failures *)
  backoff : float;  (** base backoff sleep, seconds *)
  backoff_max : float;
}

(* The default deadline is deliberately generous: it exists to catch
   wedged jobs (minutes), not slow ones — the simulated-cost budget
   already bounds legitimate work.  Retries cover at least a chaos
   burst; backoff is short because our transients (chaos, scheduling
   noise) clear quickly. *)
let default_policy =
  { deadline = Some 300.; max_retries = 3; backoff = 0.005; backoff_max = 0.25 }

type t = {
  policy : policy;
  quarantine : (string, failure) Hashtbl.t;
  mutable retries : int;  (** attempts beyond the first, all jobs *)
  mutable failures : int;  (** jobs that ended in [Error] *)
  mu : Mutex.t;
}

let create ?(policy = default_policy) () =
  { policy; quarantine = Hashtbl.create 16; retries = 0; failures = 0; mu = Mutex.create () }

let policy t = t.policy
let retries t = Mutex.protect t.mu (fun () -> t.retries)
let failures t = Mutex.protect t.mu (fun () -> t.failures)
let quarantined t = Mutex.protect t.mu (fun () -> Hashtbl.length t.quarantine)

let quarantine_find t key = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.quarantine key)

(* ---------------- failure classification ---------------- *)

(* Extra transient predicates (beyond chaos injections), for embedders
   whose jobs touch genuinely flaky resources. *)
let transient_predicates : (exn -> bool) list ref = ref []

let register_transient p = transient_predicates := p :: !transient_predicates

let classify_exn = function
  | Dpmr_vm.Vm.Cancelled _ -> Deadline
  | Chaos.Injected_fault _ -> Transient
  | e -> if List.exists (fun p -> p e) !transient_predicates then Transient else Fatal

(* ---------------- deadline enforcement ---------------- *)

(* Sampled wall-clock check: the hook runs once per basic block, so it
   only pays for [gettimeofday] every [mask + 1] polls.  4096 blocks is
   far under a millisecond even on the slow reference engine. *)
let poll_mask = 4095

let with_deadline deadline f =
  match deadline with
  | None -> f ()
  | Some d ->
      let cutoff = Unix.gettimeofday () +. d in
      let ticks = ref 0 in
      Dpmr_vm.Vm.set_poll_hook
        (Some
           (fun () ->
             incr ticks;
             if !ticks land poll_mask = 0 && Unix.gettimeofday () > cutoff then
               raise
                 (Dpmr_vm.Vm.Cancelled
                    (Printf.sprintf "wall-clock deadline (%.3fs) exceeded" d))));
      Fun.protect ~finally:(fun () -> Dpmr_vm.Vm.set_poll_hook None) f

(* ---------------- retry backoff ---------------- *)

(* Deterministic jitter: exponential envelope scaled by a hash of
   (key, attempt) into [0.5, 1.0] — concurrent retries of different
   jobs desynchronize, yet a rerun of the same campaign sleeps the
   same amounts. *)
let fnv1a64 str =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    str;
  !h

let jitter ~key ~attempt =
  let h = fnv1a64 (Printf.sprintf "backoff\x00%s\x00%d" key attempt) in
  0.5 +. (Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992. /. 2.)

let backoff_delay policy ~key ~attempt =
  let envelope =
    Float.min policy.backoff_max (policy.backoff *. Float.pow 2. (float_of_int attempt))
  in
  envelope *. jitter ~key ~attempt

let sleep_backoff policy ~key ~attempt = Unix.sleepf (backoff_delay policy ~key ~attempt)

(* ---------------- the supervised attempt loop ---------------- *)

let record_failure t key fl =
  Mutex.protect t.mu (fun () ->
      t.failures <- t.failures + 1;
      if not (Hashtbl.mem t.quarantine key) then Hashtbl.replace t.quarantine key fl);
  Error fl

let run t ~key f =
  match quarantine_find t key with
  | Some fl ->
      Mutex.protect t.mu (fun () -> t.failures <- t.failures + 1);
      Error fl
  | None ->
      let rec attempt n =
        if n > 0 then Mutex.protect t.mu (fun () -> t.retries <- t.retries + 1);
        match
          with_deadline t.policy.deadline (fun () ->
              Chaos.attempt_fault ~key ~attempt:n;
              Ok (f ()))
        with
        | r -> r
        | exception e -> (
            let err = Printexc.to_string e in
            match classify_exn e with
            | Deadline -> record_failure t key { fkey = key; freason = Deadline; fattempts = n + 1; ferror = err }
            | Fatal -> record_failure t key { fkey = key; freason = Fatal; fattempts = n + 1; ferror = err }
            | Transient ->
                if n < t.policy.max_retries then begin
                  sleep_backoff t.policy ~key ~attempt:n;
                  attempt (n + 1)
                end
                else
                  record_failure t key
                    { fkey = key; freason = Transient; fattempts = n + 1; ferror = err })
      in
      attempt 0
