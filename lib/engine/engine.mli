(** Parallel experiment engine with content-addressed result cache.

    Experiment drivers submit batches of [Job.spec]s; the engine dedups
    identical specs, serves known ones from the on-disk cache, runs the
    rest on a fixed pool of OCaml 5 domains, and returns classifications
    in input order — so output is byte-identical to a serial run
    regardless of worker count. *)

module Experiment = Dpmr_fi.Experiment

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create :
  ?jobs:int ->
  ?use_cache:bool ->
  ?cache_dir:string ->
  ?salt:string ->
  ?progress:bool ->
  unit ->
  t
(** [jobs] defaults to [default_jobs ()]; [use_cache] defaults to [true]
    (directory [Cache.default_dir]); [salt] defaults to
    [Job.default_salt]; [progress] prints batch progress to stderr on
    long grids. *)

val jobs : t -> int
val telemetry : t -> Telemetry.t
val cache_stats : t -> Cache.stats option

val run_specs : t -> Job.spec list -> Experiment.classification list
(** Run a batch; the i-th classification answers the i-th spec. *)

val run_spec : t -> Job.spec -> Experiment.classification

val run_tasks : t -> (unit -> 'a) list -> 'a list
(** Parallel map over ad-hoc thunks (uncached, telemetry-counted),
    results in input order.  Thunks must be self-contained: any [Prog.t]
    they touch must be built inside the thunk (programs carry internal
    caches and must not cross domains). *)

val summary_lines : t -> string list

val print_summary : t -> unit
(** Engine summary (jobs run/cached, cache hit rate, busy vs wall time,
    speedup estimate) on stderr. *)
