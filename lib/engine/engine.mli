(** Parallel experiment engine with content-addressed result cache.

    Experiment drivers submit batches of [Job.spec]s; the engine dedups
    identical specs, serves known ones from the on-disk cache, runs the
    rest on a fixed pool of OCaml 5 domains, and returns classifications
    in input order — so output is byte-identical to a serial run
    regardless of worker count. *)

module Experiment = Dpmr_fi.Experiment

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create :
  ?jobs:int ->
  ?use_cache:bool ->
  ?cache_dir:string ->
  ?salt:string ->
  ?policy:Supervisor.policy ->
  ?progress:bool ->
  ?resident:bool ->
  ?snapshots:bool ->
  ?dispatcher:Dispatch.t ->
  unit ->
  t
(** [snapshots] (default [true] unless the [DPMR_NO_SNAPSHOT]
    environment variable is set) enables snapshot/fork campaign
    execution: each fault-injection cell's warmup runs once as a watched
    baseline and members fork from its copy-on-write capture, with
    byte-identical results.  [jobs] defaults to [default_jobs ()]; [use_cache] defaults to [true]
    (directory [Cache.default_dir]); [salt] defaults to
    [Job.default_salt]; [policy] is the supervision policy (deadline /
    retry / backoff, default [Supervisor.default_policy]); [progress]
    prints batch progress to stderr on long grids.  [resident] (default
    [false]) keeps one worker pool alive across batches instead of
    spawning domains per batch, so per-domain warmup (experiment
    contexts, lowered programs) is paid once — the mode long-lived
    embedders (the serving daemon, multi-figure reports) use.  A
    resident engine must be {!close}d; its domains otherwise park
    forever.  [dispatcher] scatters cache misses to remote workers
    ([report all --workers]) with the local pool as the degradation
    path; the engine's cache, figures, and result ordering are
    unchanged. *)

val jobs : t -> int

val dispatcher : t -> Dispatch.t option
(** The remote dispatcher wired in at {!create} time, for telemetry. *)
val telemetry : t -> Telemetry.t
val supervisor : t -> Supervisor.t
val cache_stats : t -> Cache.stats option

val cache_mem : t -> Job.spec -> bool
(** Whether the spec's verdict is already in the result cache, without
    touching the hit/miss counters.  [false] when caching is off. *)

val drain : t -> unit
(** Flush (and fsync) the result cache.  The graceful-shutdown path of
    the daemon and of interrupted batch reports. *)

val close : t -> unit
(** [drain], close the cache channels, and shut down the resident pool
    (if any), joining its domains. *)

val experiment_for : Job.spec -> Experiment.t
(** The per-domain experiment context (golden run, budget, prepared
    program) a spec executes against, built on first use and cached in
    domain-local storage.  Must be called on the domain that will run
    the experiment — contexts hold a [Prog.t] and must never cross
    domains; inside {!run_tasks} thunks is the intended place. *)

val run_specs_r : t -> Job.spec list -> Experiment.run_result list
(** Run a batch under supervision; the i-th result answers the i-th
    spec.  A job the supervisor gave up on (deadline, fatal exception,
    retries exhausted, quarantined) yields [Job_failed] in its own
    slots; the rest of the batch completes and is cached normally. *)

val run_specs : t -> Job.spec list -> Experiment.classification list
(** [run_specs_r] for callers that cannot represent holes: raises
    [Failure] on the first failed job — after the whole batch ran, so
    completed results are already persisted. *)

val run_spec : t -> Job.spec -> Experiment.classification

val run_tasks : t -> (unit -> 'a) list -> 'a list
(** Parallel map over ad-hoc thunks (uncached, telemetry-counted),
    results in input order.  Thunks must be self-contained: any [Prog.t]
    they touch must be built inside the thunk (programs carry internal
    caches and must not cross domains). *)

val summary_lines : t -> string list

val print_summary : t -> unit
(** Engine summary (jobs run/cached, cache hit rate, busy vs wall time,
    speedup estimate) on stderr. *)
