(** Parallel experiment engine.

    All experiment drivers go through [run_specs] instead of calling
    [Experiment.run_variant] in a loop.  The engine:

    - deduplicates identical specs inside a batch and serves previously
      seen specs from the content-addressed result [Cache];
    - executes the remaining jobs on a fixed pool of OCaml 5 domains
      ([Pool]), each worker holding its own experiment contexts (programs
      carry internal caches, so a [Prog.t] must never cross domains);
    - returns classifications keyed by input position, so output is
      byte-identical to the serial engine regardless of completion order
      or worker count;
    - records per-job wall time and simulated cost in [Telemetry] and
      reports progress on long grids. *)

module Experiment = Dpmr_fi.Experiment
module Workloads = Dpmr_workloads.Workloads

type t = {
  jobs : int;
  salt : string;
  cache : Cache.t option;
  telemetry : Telemetry.t;
  supervisor : Supervisor.t;
  progress : bool;
  pool : Pool.t option;
      (** resident worker pool, reused across batches; [None] runs every
          batch on transient domains (the historical behaviour) *)
  snapshots : bool;
      (** snapshot/fork campaign execution: run each fault-injection
          cell's warmup once as a watched baseline and fork the members
          from its copy-on-write capture ({!Experiment.plan_group}) *)
  dispatcher : Dispatch.t option;
      (** remote scatter/gather: cache misses go to resident workers
          over the wire instead of the local pool, with the local pool
          as the degradation path ([report all --workers]) *)
}

let default_jobs () = Pool.default_size ()

let create ?jobs ?(use_cache = true) ?(cache_dir = Cache.default_dir)
    ?(salt = Job.default_salt) ?policy ?(progress = true) ?(resident = false)
    ?(snapshots = Sys.getenv_opt "DPMR_NO_SNAPSHOT" = None) ?dispatcher () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let cache = if use_cache then Some (Cache.load ~dir:cache_dir ~salt ()) else None in
  {
    jobs;
    salt;
    cache;
    telemetry = Telemetry.create ();
    supervisor = Supervisor.create ?policy ();
    progress;
    pool = (if resident && jobs > 1 then Some (Pool.create ~size:jobs ()) else None);
    snapshots;
    dispatcher;
  }

let jobs t = t.jobs
let dispatcher t = t.dispatcher
let telemetry t = t.telemetry
let supervisor t = t.supervisor
let cache_stats t = Option.map Cache.stats t.cache

let cache_mem t spec =
  match t.cache with
  | None -> false
  | Some c -> Cache.mem c (Job.hash ~salt:t.salt spec)

let drain t = Option.iter Cache.flush t.cache

let close t =
  Option.iter Cache.flush t.cache;
  Option.iter Cache.close t.cache;
  Option.iter Pool.shutdown t.pool

(* Batches go to the resident pool when there is one; otherwise to a
   transient per-batch pool. *)
let pool_map t ?progress f xs =
  match t.pool with
  | Some p -> Pool.map_on p ?progress f xs
  | None -> Pool.map ?progress ~jobs:t.jobs f xs

(* ---------------- per-domain experiment contexts ---------------- *)

(* Each domain builds and keeps its own [Experiment.t] per (workload,
   scale, seed): golden runs are cheap relative to a grid, and sharing a
   program across domains would race on its internal caches. *)
let experiments_key :
    (string * int * int64, Experiment.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let experiment_for (spec : Job.spec) =
  let tbl = Domain.DLS.get experiments_key in
  let key = (spec.Job.workload, spec.Job.scale, spec.Job.exp_seed) in
  match Hashtbl.find_opt tbl key with
  | Some e -> e
  | None ->
      let entry = Workloads.find spec.Job.workload in
      let wk =
        Experiment.workload spec.Job.workload (fun () ->
            entry.Workloads.build ~scale:spec.Job.scale ())
      in
      let e = Experiment.make ~seed:spec.Job.exp_seed wk in
      Hashtbl.replace tbl key e;
      e

let adjusted (spec : Job.spec) =
  let e = experiment_for spec in
  if Int64.equal e.Experiment.budget spec.Job.budget then e
  else { e with Experiment.budget = spec.Job.budget }

let execute (spec : Job.spec) =
  Experiment.run_variant ~seed:spec.Job.run_seed (adjusted spec) spec.Job.variant

(* ---------------- snapshot groups ---------------- *)

(* A schedulable unit: one spec, or a whole fault-injection cell whose
   members share the watched baseline's copy-on-write capture. *)
type unit_ = Single of string * Job.spec | Cell of (string * Job.spec) array

(* Members of one cell execute bit-identically until their own injection
   diverges, so they must agree on everything the prefix depends on:
   workload/scale/seeds/budget, and for the DPMR variants the full
   configuration (the transform's coin flips are part of the prefix).
   Golden and Nofi_dpmr jobs ARE their class's baseline — they join the
   matching cell and inherit the watched baseline's whole outcome for
   free instead of running separately. *)
let cell_key (s : Job.spec) =
  let cls =
    match s.Job.variant with
    | Experiment.Golden | Experiment.Fi_stdapp _ -> "std"
    | Experiment.Nofi_dpmr cfg | Experiment.Fi_dpmr (cfg, _, _) ->
        "dpmr:" ^ Job.config_repr cfg
  in
  Printf.sprintf "%s;%d;%Ld;%Ld;%Ld;%s" s.Job.workload s.Job.scale s.Job.exp_seed
    s.Job.run_seed s.Job.budget cls

(* Partition a batch into schedulable units, preserving first-seen order
   (a cell sits at its first member's position). *)
let partition_units t to_run =
  if not t.snapshots then List.map (fun (k, s) -> Single (k, s)) to_run
  else begin
    let cells : (string, (string * Job.spec) list ref) Hashtbl.t = Hashtbl.create 32 in
    let order =
      List.filter_map
        (fun (key, spec) ->
          let ck = cell_key spec in
          match Hashtbl.find_opt cells ck with
          | Some members ->
              members := (key, spec) :: !members;
              None
          | None ->
              let members = ref [ (key, spec) ] in
              Hashtbl.replace cells ck members;
              Some (`Cell members))
        to_run
    in
    List.map
      (function
        | `One (k, s) -> Single (k, s)
        | `Cell members -> (
            match !members with
            | [ (k, s) ] -> Single (k, s)
            | ms -> Cell (Array.of_list (List.rev ms))))
      order
  end

(* Run a whole cell on one worker: plan the shared baseline once, then
   run each member under its own supervision.  Any planning failure
   degrades every member to the ordinary from-zero path — never worse
   than ungrouped execution.  Returns one result per member, tagged with
   the snapshot hash its run actually resumed from. *)
let run_cell t members =
  let _, spec0 = members.(0) in
  let e = adjusted spec0 in
  let t_plan = Telemetry.now () in
  let plan =
    try
      Some
        (Experiment.plan_group ~seed:spec0.Job.run_seed e
           (Array.map (fun (_, s) -> s.Job.variant) members))
    with _ -> None
  in
  (* the shared planning cost (member builds + watched baseline) is
     billed to the cell's first member so no wall time goes missing *)
  let plan_wall = Telemetry.now () -. t_plan in
  Array.to_list
    (Array.mapi
       (fun i (key, spec) ->
         let t1 = Telemetry.now () -. (if i = 0 then plan_wall else 0.) in
         let r, snap =
           match plan with
           | None ->
               (Supervisor.run t.supervisor ~key (fun () -> execute spec), None)
           | Some g ->
               ( Supervisor.run t.supervisor ~key (fun () ->
                     Experiment.run_member ~seed:spec.Job.run_seed e g i),
                 Option.map
                   (Printf.sprintf "%016Lx")
                   (Experiment.member_snapshot_hash g i) )
         in
         ((key, spec), r, Telemetry.now () -. t1, snap))
       members)

(* ---------------- progress reporting ---------------- *)

let progress_fn t n =
  if (not t.progress) || n < 32 then None
  else begin
    let step = max 8 (n / 8) in
    Some
      (fun ~done_ ~total ->
        if done_ mod step = 0 || done_ = total then
          Printf.eprintf "[engine] %d/%d jobs done\n%!" done_ total)
  end

(* ---------------- batch execution ---------------- *)

let run_specs_r t specs =
  match specs with
  | [] -> []
  | _ ->
      let t0 = Telemetry.now () in
      let n = List.length specs in
      let keyed = List.map (fun s -> (Job.hash ~salt:t.salt s, s)) specs in
      let results = Array.make n None in
      (* serve cache hits; group the misses by key so identical specs
         inside one batch execute once *)
      let order = ref [] (* unique missing keys, first-seen order *) in
      let missing : (string, Job.spec * int list) Hashtbl.t = Hashtbl.create 64 in
      List.iteri
        (fun i (key, spec) ->
          (* within-batch duplicates join the miss group of their key even
             when the cache is disabled *)
          match Hashtbl.find_opt missing key with
          | Some (s, idxs) -> Hashtbl.replace missing key (s, i :: idxs)
          | None -> (
              let cached = match t.cache with Some c -> Cache.find c key | None -> None in
              match cached with
              | Some cls -> results.(i) <- Some (Experiment.Run cls)
              | None ->
                  Hashtbl.replace missing key (spec, [ i ]);
                  order := key :: !order))
        keyed;
      let cached_count = n - List.fold_left (fun a k -> a + List.length (snd (Hashtbl.find missing k))) 0 !order in
      Telemetry.record_cached t.telemetry cached_count;
      let retries_before = Supervisor.retries t.supervisor in
      let to_run = List.rev_map (fun key -> (key, fst (Hashtbl.find missing key))) !order in
      let units = partition_units t to_run in
      (* every job runs under supervision: deadline, retry-with-backoff
         for transient failures, quarantine for deterministic ones — a
         failure fills its own slots and cannot abort the batch.  A
         [Cell] runs whole on one worker: its members share a watched
         baseline, but each member is still supervised individually. *)
      let exec_unit = function
        | Single (key, spec) ->
            let t1 = Telemetry.now () in
            let r = Supervisor.run t.supervisor ~key (fun () -> execute spec) in
            [ ((key, spec), r, Telemetry.now () -. t1, None) ]
        | Cell members -> run_cell t members
      in
      let run_units us =
        pool_map t ?progress:(progress_fn t (List.length us)) exec_unit us
        |> List.concat
        |> List.map (fun (it, r, wall, snap) ->
               let outcome =
                 match r with
                 | Ok cls -> Dispatch.Done cls
                 | Error (fl : Supervisor.failure) ->
                     Dispatch.Hole
                       {
                         Dispatch.hreason = Supervisor.reason_name fl.Supervisor.freason;
                         hattempts = fl.Supervisor.fattempts;
                         herror = fl.Supervisor.ferror;
                       }
               in
               (it, outcome, wall, snap))
      in
      let ran =
        match t.dispatcher with
        | None -> run_units units
        | Some d ->
            (* scatter the schedulable units to remote workers, whole
               groups at a time so remote engines re-derive the same
               snapshot cells; the local pool is the degradation path *)
            let groups =
              List.map (function Single (k, s) -> [| (k, s) |] | Cell ms -> ms) units
            in
            Dispatch.run d
              ~local:(fun gs ->
                run_units
                  (List.map
                     (fun g ->
                       if Array.length g = 1 then Single (fst g.(0), snd g.(0)) else Cell g)
                     gs))
              groups
      in
      List.iter
        (fun ((key, spec), outcome, wall, snap) ->
          let result =
            match outcome with
            | Dispatch.Done cls ->
                Telemetry.record_job t.telemetry ~wall ~cost:cls.Experiment.cost;
                (match t.cache with
                | Some c ->
                    Cache.add c ?snap ~key ~spec_repr:(Job.repr spec) cls;
                    (* federation: the same result under its fork key, so
                       another writer that captured a bit-identical
                       baseline can serve it without re-hashing the grid *)
                    Option.iter
                      (fun h ->
                        Cache.add c ~aux:true ~snap:h
                          ~key:(Job.fork_hash ~salt:t.salt ~snap:h spec)
                          ~spec_repr:("fork:" ^ Job.repr spec) cls)
                      snap
                | None -> ());
                Experiment.Run cls
            | Dispatch.Hole h ->
                Telemetry.record_failed t.telemetry ~wall;
                Experiment.Job_failed
                  {
                    Experiment.fail_reason = h.Dispatch.hreason;
                    fail_attempts = h.Dispatch.hattempts;
                    fail_error = h.Dispatch.herror;
                  }
          in
          let _, idxs = Hashtbl.find missing key in
          List.iter (fun i -> results.(i) <- Some result) idxs)
        ran;
      Telemetry.record_retries t.telemetry (Supervisor.retries t.supervisor - retries_before);
      Option.iter Cache.flush t.cache;
      Telemetry.record_batch t.telemetry ~wall:(Telemetry.now () -. t0);
      Array.to_list results
      |> List.map (function
           | Some r -> r
           | None -> failwith "Engine.run_specs_r: missing result")

(** The historical strict interface: callers that cannot represent holes
    get the first failure as an exception — after the whole batch ran,
    so completed results are already persisted in the cache. *)
let run_specs t specs =
  List.map
    (function
      | Experiment.Run cls -> cls
      | Experiment.Job_failed f ->
          failwith
            (Printf.sprintf "Engine.run_specs: job failed (%s after %d attempt(s): %s)"
               f.Experiment.fail_reason f.Experiment.fail_attempts f.Experiment.fail_error))
    (run_specs_r t specs)

let run_spec t spec = List.hd (run_specs t [ spec ])

let run_tasks t thunks =
  match thunks with
  | [] -> []
  | _ ->
      let t0 = Telemetry.now () in
      let outs =
        pool_map t
          (fun f ->
            let t1 = Telemetry.now () in
            let r = f () in
            (r, Telemetry.now () -. t1))
          thunks
      in
      List.iter (fun (_, wall) -> Telemetry.record_task t.telemetry ~wall) outs;
      Telemetry.record_batch t.telemetry ~wall:(Telemetry.now () -. t0);
      List.map fst outs

(* ---------------- summary ---------------- *)

let summary_lines t =
  Telemetry.summary_lines t.telemetry ~workers:t.jobs ~cache:(cache_stats t)
    ~tier:(Dpmr_vm.Vm.tier_stats ())
    ~plan_memo:(Experiment.diff_memo_stats ())
    ?dispatch:t.dispatcher

(** Printed to stderr so report output stays byte-identical across
    worker counts and cache states. *)
let print_summary t =
  List.iter (fun l -> Printf.eprintf "%s\n" l) (summary_lines t);
  flush stderr
