(** Serializable experiment-run requests (the engine's job model).

    A run of the reproduction is a pure function of its spec: workload,
    scale, seeds, budget and variant fully determine the classification
    (DESIGN.md §6 — splitmix64-seeded, deterministic interpreter).  The
    spec therefore doubles as a cache identity: [hash] folds a canonical
    rendering of every field together with a code-version salt, so
    results persisted by an older build of the transforms are never
    served by a newer one. *)

module Config = Dpmr_core.Config
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Outcome = Dpmr_vm.Outcome

type spec = {
  workload : string;  (** name in the [Workloads] registry *)
  scale : int;
  exp_seed : int64;  (** seed of the golden/reference run *)
  run_seed : int64;  (** seed of the measured run *)
  budget : int64;  (** cost budget (~20x golden, §3.6) *)
  variant : Experiment.variant;
}

(** Bump whenever the transforms, VM, cost model, allocator or workload
    builders change semantics: the salt is folded into every content
    hash, so bumping it invalidates all previously cached results. *)
let default_salt = "dpmr-engine/2"

let make (e : Experiment.t) ~workload ~scale ~run_seed variant =
  {
    workload;
    scale;
    exp_seed = e.Experiment.seed;
    run_seed;
    budget = e.Experiment.budget;
    variant;
  }

(* ---------------- canonical rendering ---------------- *)

let kind_repr = function
  | Inject.Heap_array_resize pct -> Printf.sprintf "resize-%d" pct
  | Inject.Immediate_free -> "free"
  | Inject.Off_by_one -> "off-by-one"
  | Inject.Wild_store off -> Printf.sprintf "wild-store-%d" off

let site_repr (s : Inject.site) =
  Printf.sprintf "%s:%s:%d" s.Inject.func s.Inject.block s.Inject.index

(* [Config.name] is for display (it rounds [Static] fractions); the cache
   identity needs full fidelity, so floats render as hex and temporal
   masks as the exact 64-bit pattern. *)
let config_repr (c : Config.t) =
  let diversity =
    match c.Config.diversity with
    | Config.No_diversity -> "no-diversity"
    | Config.Pad_malloc n -> Printf.sprintf "pad-malloc-%d" n
    | Config.Zero_before_free -> "zero-before-free"
    | Config.Rearrange_heap -> "rearrange-heap"
    | Config.Pad_alloca n -> Printf.sprintf "pad-alloca-%d" n
  in
  let policy =
    match c.Config.policy with
    | Config.All_loads -> "all-loads"
    | Config.Temporal m -> Printf.sprintf "temporal-%Lx" m
    | Config.Static f -> Printf.sprintf "static-%h" f
  in
  (* N-version axes append only when non-default, so every pre-N-version
     repr (and therefore its key) is reproduced byte for byte *)
  let nversion =
    if
      c.Config.replicas = 1 && c.Config.families = []
      && c.Config.vote = Config.Any_mismatch
    then ""
    else
      Printf.sprintf ",n=%d,fam=%s,vote=%s" c.Config.replicas
        (String.concat "+" c.Config.families)
        (Config.vote_name c.Config.vote)
  in
  Printf.sprintf "%s,%s,%s,%Ld%s" (Config.mode_name c.Config.mode) diversity policy
    c.Config.seed nversion

let variant_repr = function
  | Experiment.Golden -> "golden"
  | Experiment.Fi_stdapp (kind, site) ->
      Printf.sprintf "fi-stdapp(%s@%s)" (kind_repr kind) (site_repr site)
  | Experiment.Nofi_dpmr cfg -> Printf.sprintf "nofi-dpmr(%s)" (config_repr cfg)
  | Experiment.Fi_dpmr (cfg, kind, site) ->
      Printf.sprintf "fi-dpmr(%s;%s@%s)" (config_repr cfg) (kind_repr kind)
        (site_repr site)

let repr s =
  Printf.sprintf "w=%s;scale=%d;eseed=%Ld;rseed=%Ld;budget=%Ld;v=%s" s.workload
    s.scale s.exp_seed s.run_seed s.budget (variant_repr s.variant)

(* ---------------- content hash (FNV-1a 64) ---------------- *)

let fnv1a64 str =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    str;
  !h

let hash ?(salt = default_salt) s =
  Printf.sprintf "%016Lx" (fnv1a64 (salt ^ "\x00" ^ repr s))

(* Cache key of a run that resumed from a copy-on-write snapshot: the
   snapshot's content hash rides in front of the spec rendering, so the
   key identifies (shared prefix state, divergent suffix) rather than the
   whole from-zero run.  Two processes that capture bit-identical group
   baselines therefore coin the same fork keys and can federate them
   through one cache directory even under different grid shapes. *)
let fork_hash ?(salt = default_salt) ~snap s =
  Printf.sprintf "%016Lx"
    (fnv1a64 (Printf.sprintf "%s\x00snap=%s;%s" salt snap (repr s)))

(* ---------------- cache-line (de)serialization ---------------- *)

type entry = {
  key : string;
  salt : string;
  spec_repr : string;
  snap : string option;
      (** content hash of the snapshot the run resumed from, if any *)
  cls : Experiment.classification;
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let classification_fields (c : Experiment.classification) =
  Printf.sprintf
    "\"sf\":%b,\"co\":%b,\"ndet\":%b,\"ddet\":%b,\"timeout\":%b,\"t2d\":%s,\"cost\":%Ld,\"peak_heap\":%d"
    c.Experiment.sf c.Experiment.co c.Experiment.ndet c.Experiment.ddet
    c.Experiment.timeout
    (match c.Experiment.t2d with Some t -> Int64.to_string t | None -> "null")
    c.Experiment.cost c.Experiment.peak_heap

let entry_to_line e =
  let snap =
    match e.snap with
    | None -> ""
    | Some h -> Printf.sprintf "\"snap\":\"%s\"," (json_escape h)
  in
  Printf.sprintf "{\"key\":\"%s\",\"salt\":\"%s\",\"spec\":\"%s\",%s%s}"
    (json_escape e.key) (json_escape e.salt) (json_escape e.spec_repr) snap
    (classification_fields e.cls)

(* Minimal parser for the flat JSON objects [entry_to_line] emits: string,
   bool, integer and null values only.  Returns [None] on any malformed
   input — a corrupt cache line is treated as a miss, never an error. *)
let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let exception Bad in
  try
    let skip_ws () = while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done in
    let expect c = skip_ws (); if !pos < n && line.[!pos] = c then incr pos else raise Bad in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise Bad
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              if !pos + 1 >= n then raise Bad;
              (match line.[!pos + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !pos + 5 >= n then raise Bad;
                  let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
                  Buffer.add_char b (Char.chr (code land 0xff));
                  pos := !pos + 4
              | _ -> raise Bad);
              pos := !pos + 2;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_value () =
      skip_ws ();
      if !pos >= n then raise Bad
      else if line.[!pos] = '"' then `String (parse_string ())
      else
        let start = !pos in
        while
          !pos < n && (match line.[!pos] with 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
        do
          incr pos
        done;
        match String.sub line start (!pos - start) with
        | "true" -> `Bool true
        | "false" -> `Bool false
        | "null" -> `Null
        | num -> ( match Int64.of_string_opt num with Some i -> `Int i | None -> raise Bad)
    in
    expect '{';
    let fields = ref [] in
    let rec members () =
      let k = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then (incr pos; members ()) else expect '}'
    in
    skip_ws ();
    if !pos < n && line.[!pos] = '}' then incr pos else members ();
    Some !fields
  with Bad | Invalid_argument _ | Failure _ -> None

let entry_of_line line =
  match parse_flat_object line with
  | None -> None
  | Some fields -> (
      let str k = match List.assoc_opt k fields with Some (`String s) -> Some s | _ -> None in
      let boolean k = match List.assoc_opt k fields with Some (`Bool b) -> Some b | _ -> None in
      let int64 k = match List.assoc_opt k fields with Some (`Int i) -> Some i | _ -> None in
      let opt_int64 k =
        match List.assoc_opt k fields with
        | Some (`Int i) -> Some (Some i)
        | Some `Null -> Some None
        | _ -> None
      in
      match
        ( str "key", str "salt", str "spec", boolean "sf", boolean "co", boolean "ndet",
          boolean "ddet", boolean "timeout", opt_int64 "t2d", int64 "cost",
          int64 "peak_heap" )
      with
      | ( Some key, Some salt, Some spec_repr, Some sf, Some co, Some ndet, Some ddet,
          Some timeout, Some t2d, Some cost, Some peak ) ->
          Some
            {
              key;
              salt;
              spec_repr;
              snap = str "snap";
              cls =
                {
                  Experiment.sf;
                  co;
                  ndet;
                  ddet;
                  timeout;
                  t2d;
                  cost;
                  peak_heap = Int64.to_int peak;
                };
            }
      | _ -> None)
