(** Deterministic chaos injection for the engine's own machinery
    ([--chaos] / [DPMR_CHAOS]).

    Worker attempts raise {!Injected_fault} or stall briefly and cache
    appends get torn mid-record, all decided by pure hashes of
    [(seed, key, attempt)] — a chaos run is exactly reproducible.
    Injections never target attempt numbers [>= burst], so a supervisor
    retrying at least [burst] times always recovers: with chaos on,
    report output must stay byte-identical to a chaos-off run. *)

(** The transient-failure class: the supervisor retries these. *)
exception Injected_fault of string

type t = {
  prob : float;  (** per-attempt injection probability *)
  seed : int64;
  burst : int;  (** attempts [>= burst] are never injected into *)
  max_delay : float;  (** cap on injected stalls, seconds *)
}

val make : ?prob:float -> ?seed:int64 -> ?burst:int -> ?max_delay:float -> unit -> t

val parse : string -> t option
(** ["1"], ["0.3"] or ["0.3,7"] ([prob[,seed]]); [None] on junk or
    [prob <= 0]. *)

val of_env : unit -> t option
(** Parse [DPMR_CHAOS] (unset, [""] and ["0"] mean off). *)

val set : t option -> unit
(** Set the process-wide chaos config.  Call before worker domains
    spawn; workers only read. *)

val active : unit -> t option
(** Current config; consults [DPMR_CHAOS] on first use if {!set} was
    never called. *)

val with_chaos : t option -> (unit -> 'a) -> 'a
(** Run with the config pinned, restoring the previous one after. *)

type action = Fail | Delay of float

val plan : t -> key:string -> attempt:int -> action option
(** The (pure) decision for one worker attempt. *)

val attempt_fault : key:string -> attempt:int -> unit
(** Execute the decision: no-op, brief stall, or raise
    {!Injected_fault}.  No-op when chaos is off. *)

val truncation : key:string -> len:int -> int option
(** Torn-write decision for a cache record of [len] bytes (newline
    included): [Some n] means persist only the first [n] bytes. *)

(** {2 Wire chaos}

    Deterministic failure injection for the {e serving} path
    ([--chaos-wire] / [DPMR_CHAOS_WIRE]), configured separately from
    worker chaos because its blast radius is a connection: response
    frames are torn mid-write, connections reset, replies stall, and
    (rarely) the worker process dies mid-job.  The recovery layer under
    test is the dispatcher / client-reconnect machinery.  The burst
    rule applies per peer-visible key, so retrying peers always reach
    clean service and goldens stay byte-identical. *)

type wire_action =
  | Wire_stall of float  (** delay the response; straggler/hedge fodder *)
  | Wire_torn  (** write a partial frame, then drop the connection *)
  | Wire_reset  (** drop the connection before replying *)
  | Wire_kill  (** the worker process dies mid-job ([_exit]) *)

val set_wire : t option -> unit
(** Set the process-wide wire-chaos config (the daemon's
    [--chaos-wire] flag). *)

val wire_active : unit -> t option
(** Current wire-chaos config; consults [DPMR_CHAOS_WIRE] on first use
    if {!set_wire} was never called. *)

val wire_plan : t -> key:string -> attempt:int -> wire_action option
(** The (pure) decision for one served response, keyed by request
    content and a per-peer attempt number.  Attempts [>= burst] are
    never injected into. *)
