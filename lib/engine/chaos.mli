(** Deterministic chaos injection for the engine's own machinery
    ([--chaos] / [DPMR_CHAOS]).

    Worker attempts raise {!Injected_fault} or stall briefly and cache
    appends get torn mid-record, all decided by pure hashes of
    [(seed, key, attempt)] — a chaos run is exactly reproducible.
    Injections never target attempt numbers [>= burst], so a supervisor
    retrying at least [burst] times always recovers: with chaos on,
    report output must stay byte-identical to a chaos-off run. *)

(** The transient-failure class: the supervisor retries these. *)
exception Injected_fault of string

type t = {
  prob : float;  (** per-attempt injection probability *)
  seed : int64;
  burst : int;  (** attempts [>= burst] are never injected into *)
  max_delay : float;  (** cap on injected stalls, seconds *)
}

val make : ?prob:float -> ?seed:int64 -> ?burst:int -> ?max_delay:float -> unit -> t

val parse : string -> t option
(** ["1"], ["0.3"] or ["0.3,7"] ([prob[,seed]]); [None] on junk or
    [prob <= 0]. *)

val of_env : unit -> t option
(** Parse [DPMR_CHAOS] (unset, [""] and ["0"] mean off). *)

val set : t option -> unit
(** Set the process-wide chaos config.  Call before worker domains
    spawn; workers only read. *)

val active : unit -> t option
(** Current config; consults [DPMR_CHAOS] on first use if {!set} was
    never called. *)

val with_chaos : t option -> (unit -> 'a) -> 'a
(** Run with the config pinned, restoring the previous one after. *)

type action = Fail | Delay of float

val plan : t -> key:string -> attempt:int -> action option
(** The (pure) decision for one worker attempt. *)

val attempt_fault : key:string -> attempt:int -> unit
(** Execute the decision: no-op, brief stall, or raise
    {!Injected_fault}.  No-op when chaos is off. *)

val truncation : key:string -> len:int -> int option
(** Torn-write decision for a cache record of [len] bytes (newline
    included): [Some n] means persist only the first [n] bytes. *)
