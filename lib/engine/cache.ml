(** Content-addressed, crash-durable result cache — sharded by job-hash
    prefix so concurrent appenders (worker domains of one process, or
    several processes federating one cache directory) never contend on a
    single file.

    Classifications are persisted as line-delimited JSON across
    [_dpmr_cache/results-<x>.jsonl], one shard per leading hex digit of
    the job hash (16 shards).  The pre-sharding single file
    [results.jsonl] is still read and migrated into the shards on load.
    Durability against process death is the design center:

    - every record is framed with a CRC32 of its payload, so garbage
      bytes, merged lines and bit flips are detected, not parsed;
    - a torn tail (a record cut short by a crash mid-append) is dropped
      and counted on load, and the shard is repaired so later appends
      cannot merge into the torn bytes;
    - each record is pushed to the OS in a single [write] as soon as it
      is appended (shard files are opened [O_APPEND], so concurrent
      appenders interleave at record granularity, never mid-record) and
      fsync'd every [flush_every] added records per shard, so an
      interrupted campaign resumes from the last flushed record instead
      of restarting;
    - compaction (dropping stale-salt and damaged lines) writes to
      [results-<x>.jsonl.tmp] and renames over the original — a crash
      mid-compaction leaves the old shard intact.

    Damage of any kind degrades to misses and is counted in {!stats};
    it is never an error and never a wrong result. *)

module Experiment = Dpmr_fi.Experiment

let default_dir = "_dpmr_cache"
let shard_count = 16
let file_of dir = Filename.concat dir "results.jsonl"

let shard_file dir i = Filename.concat dir (Printf.sprintf "results-%x.jsonl" i)
let tmp_of path = path ^ ".tmp"
let default_flush_every = 64

(* Job hashes are 16 lowercase hex digits; anything else (hand-edited
   keys in tests) falls back to a modulus of the first byte. *)
let shard_of_key key =
  if key = "" then 0
  else
    match key.[0] with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | c -> Char.code c land (shard_count - 1)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  mutable damaged : int;
  mutable added : int;
  mutable forked : int;
}

type shard = {
  path : string;
  tbl : (string, Experiment.classification) Hashtbl.t;
  mutable chan : out_channel option;
  mutable since_sync : int;  (** appends since the last fsync *)
  mu : Mutex.t;
}

type t = {
  dir : string;
  salt : string;
  flush_every : int;
  shards : shard array;
  stats : stats;
  stats_mu : Mutex.t;
}

(* ---------------- CRC32 (IEEE 802.3) record framing ---------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

(* A framed line is the payload object with a leading fixed-width crc
   field: [{"crc":"xxxxxxxx",<payload minus its '{'>]. The offset is
   constant, so unframing is two substring operations — and the result
   is still one flat JSON object. *)
let crc_prefix = "{\"crc\":\""
let crc_prefix_len = String.length crc_prefix + 8 + 2 (* ..."xxxxxxxx", *)

let frame payload =
  Printf.sprintf "%s%08x\",%s" crc_prefix (crc32 payload)
    (String.sub payload 1 (String.length payload - 1))

let unframe line =
  let n = String.length line in
  if n <= crc_prefix_len || not (String.starts_with ~prefix:crc_prefix line) then None
  else if not (line.[crc_prefix_len - 2] = '"' && line.[crc_prefix_len - 1] = ',') then None
  else
    match int_of_string_opt ("0x" ^ String.sub line 8 8) with
    | None -> None
    | Some crc ->
        let payload = "{" ^ String.sub line crc_prefix_len (n - crc_prefix_len) in
        if crc32 payload = crc then Some payload else None

type decoded = Entry of Job.entry | Damaged

let decode line =
  match unframe line with
  | None -> Damaged
  | Some payload -> (
      match Job.entry_of_line payload with Some e -> Entry e | None -> Damaged)

(* ---------------- raw file access ---------------- *)

(** Complete lines plus whether the file ends in a torn (newline-less)
    record — [input_line] cannot make that distinction. *)
let read_raw path =
  if not (Sys.file_exists path) then ([], false)
  else
    let content = In_channel.with_open_bin path In_channel.input_all in
    if content = "" then ([], false)
    else
      let parts = String.split_on_char '\n' content in
      let rec split acc = function
        | [ last ] -> (List.rev acc, last <> "")
        | x :: rest -> split (x :: acc) rest
        | [] -> (List.rev acc, false)
      in
      split [] parts

let sync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(** Atomic rewrite: temp file, fsync, rename.  A crash at any point
    leaves either the old file or the complete new one. *)
let compact ~dir path lines =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let tmp = tmp_of path in
  let oc = open_out tmp in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  sync_channel oc;
  close_out oc;
  Sys.rename tmp path

(* ---------------- load / lookup / append ---------------- *)

let load ?(dir = default_dir) ?(flush_every = default_flush_every) ~salt () =
  let stats = { hits = 0; misses = 0; evicted = 0; damaged = 0; added = 0; forked = 0 } in
  let shards =
    Array.init shard_count (fun i ->
        {
          path = shard_file dir i;
          tbl = Hashtbl.create 64;
          chan = None;
          since_sync = 0;
          mu = Mutex.create ();
        })
  in
  let live = Array.make shard_count [] (* reversed live lines per shard *) in
  let dirty = Array.make shard_count false (* shard must be rewritten *) in
  (* absorb one raw line; [src] is the shard file it was read from
     ([None] for the legacy single file).  A line survives into [live]
     of its {e key's} shard; any line that is dropped (damaged,
     stale-salt, duplicate) or moves shard dirties the file(s) involved
     so compaction repairs them. *)
  let absorb ~src line =
    let dirty_src () = match src with Some j -> dirty.(j) <- true | None -> () in
    match decode line with
    | Damaged ->
        stats.damaged <- stats.damaged + 1;
        dirty_src ()
    | Entry e ->
        let i = shard_of_key e.Job.key in
        if e.Job.salt <> salt then begin
          stats.evicted <- stats.evicted + 1;
          dirty_src ()
        end
        else if Hashtbl.mem shards.(i).tbl e.Job.key then begin
          (* duplicate append (legacy overlap, or two federated writers
             racing on one key): keep the first, drop this line *)
          dirty_src ();
          dirty.(i) <- true
        end
        else begin
          Hashtbl.replace shards.(i).tbl e.Job.key e.Job.cls;
          live.(i) <- line :: live.(i);
          match src with
          | Some j when j = i -> ()
          | Some j ->
              (* mis-homed record: rewrite both files *)
              dirty.(j) <- true;
              dirty.(i) <- true
          | None -> dirty.(i) <- true (* legacy migration *)
        end
  in
  Array.iteri
    (fun i sh ->
      let lines, torn = read_raw sh.path in
      List.iter (absorb ~src:(Some i)) lines;
      if torn then begin
        stats.damaged <- stats.damaged + 1;
        dirty.(i) <- true
      end)
    shards;
  (* migrate the pre-sharding single file, if present *)
  let legacy = file_of dir in
  let legacy_lines, legacy_torn = read_raw legacy in
  List.iter (absorb ~src:None) legacy_lines;
  if legacy_torn then stats.damaged <- stats.damaged + 1;
  Array.iteri
    (fun i sh -> if dirty.(i) then compact ~dir sh.path (List.rev live.(i)))
    shards;
  if Sys.file_exists legacy then Sys.remove legacy;
  if Sys.file_exists (tmp_of legacy) then Sys.remove (tmp_of legacy);
  { dir; salt; flush_every = max 1 flush_every; shards; stats; stats_mu = Mutex.create () }

let entries t = Array.fold_left (fun n sh -> n + Hashtbl.length sh.tbl) 0 t.shards

let bump t f = Mutex.protect t.stats_mu (fun () -> f t.stats)

let mem t key =
  let sh = t.shards.(shard_of_key key) in
  Mutex.protect sh.mu (fun () -> Hashtbl.mem sh.tbl key)

let find t key =
  let sh = t.shards.(shard_of_key key) in
  let r = Mutex.protect sh.mu (fun () -> Hashtbl.find_opt sh.tbl key) in
  (match r with
  | Some _ -> bump t (fun s -> s.hits <- s.hits + 1)
  | None -> bump t (fun s -> s.misses <- s.misses + 1));
  r

let channel t sh =
  match sh.chan with
  | Some oc -> oc
  | None ->
      (try Sys.mkdir t.dir 0o755 with Sys_error _ -> ());
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 sh.path in
      sh.chan <- Some oc;
      oc

let add t ?(aux = false) ?snap ~key ~spec_repr cls =
  let sh = t.shards.(shard_of_key key) in
  let added =
    Mutex.protect sh.mu (fun () ->
        if Hashtbl.mem sh.tbl key then false
        else begin
          Hashtbl.replace sh.tbl key cls;
          let line =
            frame (Job.entry_to_line { Job.key; salt = t.salt; spec_repr; snap; cls }) ^ "\n"
          in
          let oc = channel t sh in
          (match Chaos.truncation ~key ~len:(String.length line) with
          | None -> output_string oc line
          | Some n ->
              (* chaos: tear this append mid-record; the CRC frame turns
                 it (and any line it merges with) into a counted miss on
                 the next load *)
              output_substring oc line 0 n);
          (* push the whole record to the OS now: with O_APPEND this is
             one write, so a concurrent appender in another process can
             interleave between records but never inside one *)
          flush oc;
          sh.since_sync <- sh.since_sync + 1;
          if sh.since_sync >= t.flush_every then begin
            sync_channel oc;
            sh.since_sync <- 0
          end;
          true
        end)
  in
  if added then
    bump t (fun s -> if aux then s.forked <- s.forked + 1 else s.added <- s.added + 1)

let flush t =
  Array.iter
    (fun sh ->
      Mutex.protect sh.mu (fun () ->
          match sh.chan with
          | Some oc when sh.since_sync > 0 ->
              sync_channel oc;
              sh.since_sync <- 0
          | _ -> ()))
    t.shards

let close t =
  Array.iter
    (fun sh ->
      Mutex.protect sh.mu (fun () ->
          match sh.chan with
          | Some oc ->
              close_out oc;
              sh.chan <- None
          | None -> ()))
    t.shards

let stats t = t.stats

(* ---------------- maintenance (CLI [cache] subcommand) ---------------- *)

let all_files dir =
  file_of dir :: List.init shard_count (fun i -> shard_file dir i)

let clear ?(dir = default_dir) () =
  let n =
    List.fold_left
      (fun n path ->
        let lines, _torn = read_raw path in
        List.fold_left
          (fun n l -> match decode l with Entry _ -> n + 1 | Damaged -> n)
          n lines)
      0 (all_files dir)
  in
  List.iter
    (fun path ->
      if Sys.file_exists (tmp_of path) then Sys.remove (tmp_of path);
      if Sys.file_exists path then Sys.remove path)
    (all_files dir);
  (try Sys.rmdir dir with Sys_error _ -> ());
  n

type shard_stats = {
  sh_records : int;  (** intact entries in this shard file *)
  sh_current : int;  (** of those, entries under the given salt *)
  sh_damaged : int;  (** torn, corrupt or CRC-mismatched lines *)
}

type disk_stats = {
  path : string;
  files : int;  (** shard files present on disk (plus any legacy file) *)
  total : int;  (** intact entries on disk *)
  current : int;  (** entries under the given salt *)
  stale : int;  (** entries under any other salt *)
  damaged : int;  (** torn, corrupt or CRC-mismatched lines *)
  torn_tail : bool;  (** some file ends in an unterminated record *)
  bytes : int;
  per_shard : shard_stats array;
      (** one slot per shard file ([shard_count] of them; the legacy
          single file, when present, counts toward the totals only) *)
}

let disk_stats ?(dir = default_dir) ~salt () =
  let files = ref 0 in
  let total = ref 0 and current = ref 0 and damaged = ref 0 in
  let torn_tail = ref false in
  let bytes = ref 0 in
  let per_shard =
    Array.make shard_count { sh_records = 0; sh_current = 0; sh_damaged = 0 }
  in
  let scan ?shard path =
    if Sys.file_exists path then begin
      incr files;
      bytes := !bytes + (Unix.stat path).Unix.st_size;
      let records = ref 0 and cur = ref 0 and dam = ref 0 in
      let lines, torn = read_raw path in
      if torn then begin
        torn_tail := true;
        incr damaged;
        incr dam
      end;
      List.iter
        (fun l ->
          match decode l with
          | Damaged ->
              incr damaged;
              incr dam
          | Entry e ->
              incr total;
              incr records;
              if e.Job.salt = salt then begin
                incr current;
                incr cur
              end)
        lines;
      match shard with
      | Some i ->
          per_shard.(i) <-
            { sh_records = !records; sh_current = !cur; sh_damaged = !dam }
      | None -> ()
    end
  in
  scan (file_of dir);
  List.iteri (fun i path -> scan ~shard:i path) (List.init shard_count (shard_file dir));
  {
    path = dir;
    files = !files;
    total = !total;
    current = !current;
    stale = !total - !current;
    damaged = !damaged;
    torn_tail = !torn_tail;
    bytes = !bytes;
    per_shard;
  }

let disk_stats_to_json (s : disk_stats) =
  let pct part =
    if s.total = 0 then 0. else 100. *. float_of_int part /. float_of_int s.total
  in
  String.concat ""
    [
      "{\n";
      "  \"schema\": \"dpmr-cache-stats/1\",\n";
      Printf.sprintf "  \"dir\": \"%s\",\n" (String.concat "\\\\" (String.split_on_char '\\' s.path) |> String.split_on_char '"' |> String.concat "\\\"");
      Printf.sprintf "  \"files\": %d,\n" s.files;
      Printf.sprintf "  \"shards\": %d,\n" shard_count;
      Printf.sprintf "  \"entries\": { \"total\": %d, \"current\": %d, \"stale\": %d },\n"
        s.total s.current s.stale;
      Printf.sprintf "  \"servable_pct\": %.1f,\n" (pct s.current);
      Printf.sprintf "  \"damaged\": %d,\n" s.damaged;
      Printf.sprintf "  \"torn_tail\": %b,\n" s.torn_tail;
      Printf.sprintf "  \"bytes\": %d,\n" s.bytes;
      "  \"per_shard\": [\n";
      String.concat ",\n"
        (Array.to_list
           (Array.mapi
              (fun i (sh : shard_stats) ->
                Printf.sprintf
                  "    { \"shard\": %d, \"records\": %d, \"current\": %d, \"damaged\": %d }"
                  i sh.sh_records sh.sh_current sh.sh_damaged)
              s.per_shard));
      "\n  ]\n";
      "}\n";
    ]
