(** Content-addressed result cache.

    Classifications are persisted as line-delimited JSON in
    [_dpmr_cache/results.jsonl].  Every line carries the code-version
    salt it was produced under; on load, lines with a stale salt are
    evicted (dropped and counted), and the file is compacted when the
    eviction ratio warrants it.  Corrupt lines are silently skipped —
    a damaged cache degrades to misses, never to wrong results. *)

module Experiment = Dpmr_fi.Experiment

let default_dir = "_dpmr_cache"
let file_of dir = Filename.concat dir "results.jsonl"

type stats = { mutable hits : int; mutable misses : int; mutable evicted : int; mutable added : int }

type t = {
  dir : string;
  salt : string;
  tbl : (string, Experiment.classification) Hashtbl.t;
  stats : stats;
  mutable chan : out_channel option;
  mu : Mutex.t;
}

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> close_in ic; List.rev acc
    in
    go []
  end

let load ?(dir = default_dir) ~salt () =
  let tbl = Hashtbl.create 256 in
  let stats = { hits = 0; misses = 0; evicted = 0; added = 0 } in
  let live = ref [] in
  List.iter
    (fun line ->
      match Job.entry_of_line line with
      | None -> ()
      | Some e ->
          if e.Job.salt = salt then begin
            Hashtbl.replace tbl e.Job.key e.Job.cls;
            live := line :: !live
          end
          else stats.evicted <- stats.evicted + 1)
    (read_lines (file_of dir));
  (* compact: rewrite without the evicted (stale-salt) lines *)
  if stats.evicted > 0 then begin
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let oc = open_out (file_of dir) in
    List.iter (fun l -> output_string oc l; output_char oc '\n') (List.rev !live);
    close_out oc
  end;
  { dir; salt; tbl; stats; chan = None; mu = Mutex.create () }

let entries t = Hashtbl.length t.tbl

let find t key =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some c ->
          t.stats.hits <- t.stats.hits + 1;
          Some c
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          None)

let channel t =
  match t.chan with
  | Some oc -> oc
  | None ->
      (try Sys.mkdir t.dir 0o755 with Sys_error _ -> ());
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 (file_of t.dir)
      in
      t.chan <- Some oc;
      oc

let add t ~key ~spec_repr cls =
  Mutex.protect t.mu (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        Hashtbl.replace t.tbl key cls;
        t.stats.added <- t.stats.added + 1;
        let line = Job.entry_to_line { Job.key; salt = t.salt; spec_repr; cls } in
        let oc = channel t in
        output_string oc line;
        output_char oc '\n'
      end)

let flush t =
  Mutex.protect t.mu (fun () -> match t.chan with Some oc -> flush oc | None -> ())

let close t =
  Mutex.protect t.mu (fun () ->
      match t.chan with
      | Some oc ->
          close_out oc;
          t.chan <- None
      | None -> ())

let stats t = t.stats

(* ---------------- maintenance (CLI [cache] subcommand) ---------------- *)

let clear ?(dir = default_dir) () =
  let path = file_of dir in
  let lines = read_lines path in
  let n = List.fold_left (fun n l -> if Job.entry_of_line l = None then n else n + 1) 0 lines in
  if Sys.file_exists path then Sys.remove path;
  (try Sys.rmdir dir with Sys_error _ -> ());
  n

type disk_stats = {
  path : string;
  total : int;  (** well-formed entries on disk *)
  current : int;  (** entries under the given salt *)
  stale : int;  (** entries under any other salt *)
  bytes : int;
}

let disk_stats ?(dir = default_dir) ~salt () =
  let path = file_of dir in
  let lines = read_lines path in
  let total, current =
    List.fold_left
      (fun (t, c) l ->
        match Job.entry_of_line l with
        | None -> (t, c)
        | Some e -> (t + 1, if e.Job.salt = salt then c + 1 else c))
      (0, 0) lines
  in
  let bytes = if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0 in
  { path; total; current; stale = total - current; bytes }
