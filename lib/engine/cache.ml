(** Content-addressed, crash-durable result cache.

    Classifications are persisted as line-delimited JSON in
    [_dpmr_cache/results.jsonl].  Durability against process death is
    the design center:

    - every record is framed with a CRC32 of its payload, so garbage
      bytes, merged lines and bit flips are detected, not parsed;
    - a torn tail (a record cut short by a crash mid-append) is dropped
      and counted on load, and the file is repaired so later appends
      cannot merge into the torn bytes;
    - the channel is flushed and fsync'd every [flush_every] added
      records, so an interrupted campaign resumes from the last flushed
      record instead of restarting;
    - compaction (dropping stale-salt and damaged lines) writes to
      [results.jsonl.tmp] and renames over the original — a crash
      mid-compaction leaves the old file intact.

    Damage of any kind degrades to misses and is counted in {!stats};
    it is never an error and never a wrong result. *)

module Experiment = Dpmr_fi.Experiment

let default_dir = "_dpmr_cache"
let file_of dir = Filename.concat dir "results.jsonl"
let tmp_of dir = file_of dir ^ ".tmp"
let default_flush_every = 64

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
  mutable damaged : int;
  mutable added : int;
}

type t = {
  dir : string;
  salt : string;
  flush_every : int;
  mutable since_flush : int;
  tbl : (string, Experiment.classification) Hashtbl.t;
  stats : stats;
  mutable chan : out_channel option;
  mu : Mutex.t;
}

(* ---------------- CRC32 (IEEE 802.3) record framing ---------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

(* A framed line is the payload object with a leading fixed-width crc
   field: [{"crc":"xxxxxxxx",<payload minus its '{'>]. The offset is
   constant, so unframing is two substring operations — and the result
   is still one flat JSON object. *)
let crc_prefix = "{\"crc\":\""
let crc_prefix_len = String.length crc_prefix + 8 + 2 (* ..."xxxxxxxx", *)

let frame payload =
  Printf.sprintf "%s%08x\",%s" crc_prefix (crc32 payload)
    (String.sub payload 1 (String.length payload - 1))

let unframe line =
  let n = String.length line in
  if n <= crc_prefix_len || not (String.starts_with ~prefix:crc_prefix line) then None
  else if not (line.[crc_prefix_len - 2] = '"' && line.[crc_prefix_len - 1] = ',') then None
  else
    match int_of_string_opt ("0x" ^ String.sub line 8 8) with
    | None -> None
    | Some crc ->
        let payload = "{" ^ String.sub line crc_prefix_len (n - crc_prefix_len) in
        if crc32 payload = crc then Some payload else None

type decoded = Entry of Job.entry | Damaged

let decode line =
  match unframe line with
  | None -> Damaged
  | Some payload -> (
      match Job.entry_of_line payload with Some e -> Entry e | None -> Damaged)

(* ---------------- raw file access ---------------- *)

(** Complete lines plus whether the file ends in a torn (newline-less)
    record — [input_line] cannot make that distinction. *)
let read_raw path =
  if not (Sys.file_exists path) then ([], false)
  else
    let content = In_channel.with_open_bin path In_channel.input_all in
    if content = "" then ([], false)
    else
      let parts = String.split_on_char '\n' content in
      let rec split acc = function
        | [ last ] -> (List.rev acc, last <> "")
        | x :: rest -> split (x :: acc) rest
        | [] -> (List.rev acc, false)
      in
      split [] parts

let sync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(** Atomic rewrite: temp file, fsync, rename.  A crash at any point
    leaves either the old file or the complete new one. *)
let compact ~dir lines =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let tmp = tmp_of dir in
  let oc = open_out tmp in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  sync_channel oc;
  close_out oc;
  Sys.rename tmp (file_of dir)

(* ---------------- load / lookup / append ---------------- *)

let load ?(dir = default_dir) ?(flush_every = default_flush_every) ~salt () =
  let tbl = Hashtbl.create 256 in
  let stats = { hits = 0; misses = 0; evicted = 0; damaged = 0; added = 0 } in
  let lines, torn = read_raw (file_of dir) in
  let live = ref [] in
  List.iter
    (fun line ->
      match decode line with
      | Damaged -> stats.damaged <- stats.damaged + 1
      | Entry e ->
          if e.Job.salt = salt then begin
            Hashtbl.replace tbl e.Job.key e.Job.cls;
            live := line :: !live
          end
          else stats.evicted <- stats.evicted + 1)
    lines;
  if torn then stats.damaged <- stats.damaged + 1;
  (* repair + compact: drop stale-salt and damaged lines, truncate the
     torn tail so the next append cannot merge into it *)
  if (stats.evicted > 0 || stats.damaged > 0) && Sys.file_exists (file_of dir) then
    compact ~dir (List.rev !live);
  {
    dir;
    salt;
    flush_every = max 1 flush_every;
    since_flush = 0;
    tbl;
    stats;
    chan = None;
    mu = Mutex.create ();
  }

let entries t = Hashtbl.length t.tbl

let find t key =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some c ->
          t.stats.hits <- t.stats.hits + 1;
          Some c
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          None)

let channel t =
  match t.chan with
  | Some oc -> oc
  | None ->
      (try Sys.mkdir t.dir 0o755 with Sys_error _ -> ());
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 (file_of t.dir)
      in
      t.chan <- Some oc;
      oc

let add t ~key ~spec_repr cls =
  Mutex.protect t.mu (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        Hashtbl.replace t.tbl key cls;
        t.stats.added <- t.stats.added + 1;
        let line =
          frame (Job.entry_to_line { Job.key; salt = t.salt; spec_repr; cls }) ^ "\n"
        in
        let oc = channel t in
        (match Chaos.truncation ~key ~len:(String.length line) with
        | None -> output_string oc line
        | Some n ->
            (* chaos: tear this append mid-record; the CRC frame turns
               it (and any line it merges with) into a counted miss on
               the next load *)
            output_substring oc line 0 n);
        t.since_flush <- t.since_flush + 1;
        if t.since_flush >= t.flush_every then begin
          sync_channel oc;
          t.since_flush <- 0
        end
      end)

let flush t =
  Mutex.protect t.mu (fun () ->
      match t.chan with
      | Some oc ->
          sync_channel oc;
          t.since_flush <- 0
      | None -> ())

let close t =
  Mutex.protect t.mu (fun () ->
      match t.chan with
      | Some oc ->
          close_out oc;
          t.chan <- None
      | None -> ())

let stats t = t.stats

(* ---------------- maintenance (CLI [cache] subcommand) ---------------- *)

let clear ?(dir = default_dir) () =
  let path = file_of dir in
  let lines, _torn = read_raw path in
  let n =
    List.fold_left (fun n l -> match decode l with Entry _ -> n + 1 | Damaged -> n) 0 lines
  in
  if Sys.file_exists (tmp_of dir) then Sys.remove (tmp_of dir);
  if Sys.file_exists path then Sys.remove path;
  (try Sys.rmdir dir with Sys_error _ -> ());
  n

type disk_stats = {
  path : string;
  total : int;  (** intact entries on disk *)
  current : int;  (** entries under the given salt *)
  stale : int;  (** entries under any other salt *)
  damaged : int;  (** torn, corrupt or CRC-mismatched lines *)
  torn_tail : bool;  (** the file ends in an unterminated record *)
  bytes : int;
}

let disk_stats ?(dir = default_dir) ~salt () =
  let path = file_of dir in
  let lines, torn = read_raw path in
  let total, current, damaged =
    List.fold_left
      (fun (t, c, d) l ->
        match decode l with
        | Damaged -> (t, c, d + 1)
        | Entry e -> (t + 1, (if e.Job.salt = salt then c + 1 else c), d))
      (0, 0, 0) lines
  in
  let bytes = if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0 in
  {
    path;
    total;
    current;
    stale = total - current;
    damaged = (damaged + if torn then 1 else 0);
    torn_tail = torn;
    bytes;
  }
