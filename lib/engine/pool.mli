(** Fixed-size domain worker pool with deterministic result ordering. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map :
  ?progress:(done_:int -> total:int -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] applies [f] to every element using [jobs] worker
    domains (clamped to [1 .. length xs]); results are returned in input
    order regardless of completion order.  [jobs <= 1] degenerates to a
    plain sequential map with no domain spawned.  [f] must not share
    mutable state across calls — in particular it must not touch a
    [Prog.t] built outside itself (programs carry internal caches).  The
    first exception raised by [f], in input order, is re-raised after all
    workers finish.  [progress] is called under the pool lock after each
    completion. *)
