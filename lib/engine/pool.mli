(** Fixed-size domain worker pool with deterministic result ordering.

    Batches either spin up a transient pool per call ({!map},
    {!map_results}) or run on a {b resident} pool ({!create}) whose
    worker domains park between batches — the mode the engine and the
    serving daemon use so per-domain warmup (DLS-cached experiment
    contexts, lowered programs) survives from one batch to the next. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)

type t
(** A resident pool: [size] worker domains pulling from one queue. *)

val create : ?size:int -> unit -> t
(** Spawn the worker domains (default {!default_size}, minimum 1). *)

val size : t -> int

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains.
    Idempotent only in the sense that a second call joins nothing. *)

val map_results_on :
  t ->
  ?progress:(done_:int -> total:int -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** Run one batch on a resident pool; same slot/ordering/error contract
    as {!map_results}.  Thread-safe: batches submitted concurrently from
    several domains interleave in the queue, and each caller blocks only
    on its own completion count. *)

val map_on :
  t ->
  ?progress:(done_:int -> total:int -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** {!map_results_on} with the raise-on-first-error contract of {!map}. *)

val map_results :
  ?progress:(done_:int -> total:int -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** [map_results ~jobs f xs] applies [f] to every element using [jobs]
    worker domains (clamped to [1 .. length xs]); the i-th slot holds
    the i-th element's result regardless of completion order.  A raising
    job yields [Error (exn, backtrace)] in its own slot and never
    discards the other slots — the property the campaign supervisor
    builds on.  [jobs <= 1] degenerates to a plain sequential map with
    no domain spawned.  [f] must not share mutable state across calls —
    in particular it must not touch a [Prog.t] built outside itself
    (programs carry internal caches).  [progress] is called under the
    pool lock after each completion. *)

val map :
  ?progress:(done_:int -> total:int -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map_results] with the historical contract: after all workers
    finish, the first error in input order is re-raised on the joining
    domain with the worker's backtrace preserved
    ([Printexc.raise_with_backtrace]). *)
