(** Fixed-size domain worker pool with deterministic result ordering. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_results :
  ?progress:(done_:int -> total:int -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** [map_results ~jobs f xs] applies [f] to every element using [jobs]
    worker domains (clamped to [1 .. length xs]); the i-th slot holds
    the i-th element's result regardless of completion order.  A raising
    job yields [Error (exn, backtrace)] in its own slot and never
    discards the other slots — the property the campaign supervisor
    builds on.  [jobs <= 1] degenerates to a plain sequential map with
    no domain spawned.  [f] must not share mutable state across calls —
    in particular it must not touch a [Prog.t] built outside itself
    (programs carry internal caches).  [progress] is called under the
    pool lock after each completion. *)

val map :
  ?progress:(done_:int -> total:int -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map_results] with the historical contract: after all workers
    finish, the first error in input order is re-raised on the joining
    domain with the worker's backtrace preserved
    ([Printexc.raise_with_backtrace]). *)
