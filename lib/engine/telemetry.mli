(** Run telemetry: per-job wall time and simulated-cost accounting,
    aggregated across engine batches. *)

type t = {
  mutable jobs_run : int;
  mutable jobs_cached : int;
  mutable jobs_failed : int;  (** specs the supervisor gave up on *)
  mutable retries : int;  (** supervised attempts beyond each job's first *)
  mutable tasks_run : int;
  mutable cost_units : int64;
  mutable busy_seconds : float;  (** sum of per-job wall times *)
  mutable wall_seconds : float;  (** elapsed time inside engine batches *)
  mutable batches : int;
  mutable trace : Dpmr_trace.Trace.summary;
      (** merged per-domain trace-sink summaries (traced campaigns only) *)
  mu : Mutex.t;
}

val create : unit -> t
val now : unit -> float
val record_job : t -> wall:float -> cost:int64 -> unit
val record_task : t -> wall:float -> unit
val record_cached : t -> int -> unit
val record_failed : t -> wall:float -> unit
val record_retries : t -> int -> unit

val record_trace : t -> Dpmr_trace.Trace.summary -> unit
(** Merge one sink's summary into the campaign totals (thread-safe; call
    once per retired sink). *)
val record_batch : t -> wall:float -> unit

val speedup_estimate : t -> float option
(** Busy time over batch wall time — the engine's advantage over running
    every executed job back-to-back on one domain. *)

val summary_lines :
  ?tier:int * int ->
  ?plan_memo:int * int ->
  ?dispatch:Dispatch.t ->
  t ->
  workers:int ->
  cache:Cache.stats option ->
  string list
(** [tier] = (functions promoted, deopts) from [Vm.tier_stats];
    [plan_memo] = (hits, misses) of the snapshot planner's
    divergence-diff cache ([Experiment.diff_memo_stats]).  Passed in by
    the engine at summary time to keep this module free of VM and
    experiment dependencies; a tier line appears only when either
    counter pair is non-zero, preserving historical summary shapes.
    [dispatch] adds per-host scatter/gather lines for campaigns run
    with [--workers]. *)

val to_json :
  ?tier:int * int ->
  ?plan_memo:int * int ->
  ?dispatch:Dispatch.t ->
  t ->
  workers:int ->
  cache:Cache.stats option ->
  string
(** Machine-readable snapshot of the campaign (the [--telemetry-json]
    payload): one JSON object with stable keys. *)
