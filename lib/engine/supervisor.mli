(** Fault-tolerant job supervision for campaign runs: per-attempt
    wall-clock deadlines (cooperative cancellation through the VM's
    step-poll hook), retry with exponential backoff and deterministic
    jitter for transient failures, and quarantine for deterministic
    ones.  A failed job surfaces as an explicit [Error failure] in its
    own slot — never a batch abort. *)

type reason =
  | Deadline  (** wall-clock ceiling hit; cancelled mid-run *)
  | Transient  (** retriable failures, retries exhausted *)
  | Fatal  (** deterministic failure; no retry *)

val reason_name : reason -> string

type failure = {
  fkey : string;
  freason : reason;
  fattempts : int;  (** attempts actually executed *)
  ferror : string;  (** rendering of the last exception *)
}

val failure_to_string : failure -> string

type policy = {
  deadline : float option;  (** per-attempt wall-clock ceiling, seconds *)
  max_retries : int;  (** extra attempts granted to transient failures *)
  backoff : float;  (** base backoff sleep, seconds *)
  backoff_max : float;
}

val default_policy : policy
(** 300 s deadline, 3 retries, 5 ms base backoff capped at 250 ms.  The
    deadline catches wedged jobs, not slow ones — legitimate work is
    already bounded by the simulated-cost budget. *)

type t
(** Shared supervision state: policy, quarantine table, counters.
    Thread-safe; one instance serves all worker domains of an engine. *)

val create : ?policy:policy -> unit -> t
val policy : t -> policy

val retries : t -> int
(** Attempts beyond each job's first, across all jobs. *)

val failures : t -> int
(** Submissions answered with [Error] (including quarantine hits). *)

val quarantined : t -> int
(** Distinct keys currently quarantined. *)

val register_transient : (exn -> bool) -> unit
(** Extend the transient (retriable) exception class.  Chaos injections
    are always transient; {!Vm.Cancelled} is always a deadline;
    everything else defaults to fatal. *)

val classify_exn : exn -> reason

val backoff_delay : policy -> key:string -> attempt:int -> float
(** The (pure) backoff sleep for one retry: exponential envelope capped
    at [backoff_max], scaled by deterministic jitter hashed from
    [(key, attempt)].  Exposed so other supervision layers (the remote
    dispatcher paces failing hosts with it) back off identically. *)

val run : t -> key:string -> (unit -> 'a) -> ('a, failure) result
(** Run one job under supervision.  A quarantined [key] answers
    immediately with its recorded failure (the job does not run).
    Otherwise attempts execute under the policy deadline; transient
    failures retry with backoff, deadline and fatal failures quarantine
    the key at once, and exhausted transients quarantine it too. *)
