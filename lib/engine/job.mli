(** Serializable experiment-run requests (the engine's job model).

    Every run is a pure function of its spec (seeded splitmix64,
    deterministic interpreter — DESIGN.md §6), so the spec doubles as a
    cache identity: [hash] folds a canonical rendering of every field
    plus a code-version salt. *)

module Experiment = Dpmr_fi.Experiment

type spec = {
  workload : string;  (** name in the [Workloads] registry *)
  scale : int;
  exp_seed : int64;  (** seed of the golden/reference run *)
  run_seed : int64;  (** seed of the measured run *)
  budget : int64;  (** cost budget (~20x golden, §3.6) *)
  variant : Experiment.variant;
}

val default_salt : string
(** Current code-version salt.  Bump it whenever transforms, VM, cost
    model, allocator or workload builders change semantics: it is folded
    into every content hash, invalidating stale cached results. *)

val make :
  Experiment.t ->
  workload:string ->
  scale:int ->
  run_seed:int64 ->
  Experiment.variant ->
  spec
(** Spec for one run of an existing experiment context ([exp_seed] and
    [budget] are taken from the context). *)

val repr : spec -> string
(** Canonical, full-fidelity rendering (the hashed content). *)

val hash : ?salt:string -> spec -> string
(** 16-hex-digit FNV-1a content hash of [salt + repr]. *)

val config_repr : Dpmr_core.Config.t -> string
(** Full-fidelity rendering of a configuration (a [repr] component). *)

val fork_hash : ?salt:string -> snap:string -> spec -> string
(** Cache key of a run resumed from a copy-on-write snapshot: the
    snapshot's content hash is folded in front of [repr], identifying
    (shared prefix state, divergent suffix) — so federated writers that
    captured bit-identical group baselines coin identical fork keys. *)

(** One persisted cache record. *)
type entry = {
  key : string;  (** [hash] of the spec at write time *)
  salt : string;  (** code-version salt at write time *)
  spec_repr : string;  (** [repr], for human inspection of the cache *)
  snap : string option;
      (** content hash of the snapshot the run resumed from, if any *)
  cls : Experiment.classification;
}

val entry_to_line : entry -> string
(** One line of JSON (no trailing newline). *)

val entry_of_line : string -> entry option
(** Parse a cache line; [None] on malformed input (treated as a miss). *)

(** {2 Flat-JSON helpers}

    The cache lines — and the serving wire protocol built on the same
    convention — are single flat JSON objects with string / bool /
    integer / null values only. *)

val json_escape : string -> string

val parse_flat_object :
  string -> (string * [ `String of string | `Bool of bool | `Int of int64 | `Null ]) list option
(** Parse one flat object into its field list (reverse field order);
    [None] on any malformed input. *)
