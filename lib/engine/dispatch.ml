(** Failure-hardened multi-host scatter/gather.

    The dispatcher treats remote workers the way the Supervisor treats
    jobs: every interaction is an attempt that may fail, failures are
    classified and paced, and no failure schedule can abort a batch.
    The load-bearing invariant comes from content-addressed job
    identity: a job's cache key {e is} its meaning, so re-dispatching
    it, racing two copies of it, or replaying it after a reconnect are
    all safe — the first verdict gathered for a key wins and every
    later one is discarded.

    Concurrency shape (per {!run}):

    - [window] runner domains per host, each owning one connection and
      serving one chunk at a time — the bounded outstanding-window;
    - one prober domain per host heart-beating on its own connection,
      quarantining after consecutive misses and reviving on success;
    - the calling thread drives the gather loop: it drains chunks that
      must run locally (exhausted re-dispatch budgets, rejected specs,
      all hosts dead), issues hedge duplicates against stragglers, and
      declares the [min_workers] floor breached — the only path that
      manufactures holes, and it still completes the batch.

    Work moves through one mutex-guarded state: a queue of chunk
    entries, an in-flight list (for hedging), a local queue, and a
    first-write-wins results array.  Runners park on a condition
    variable while their host is quarantined; probers wake them on
    revival. *)

module Experiment = Dpmr_fi.Experiment

type item = string * Job.spec

type hole = { hreason : string; hattempts : int; herror : string }
type outcome = Done of Experiment.classification | Hole of hole
type completed = item * outcome * float * string option

type remote_result =
  | R_verdict of Experiment.classification
  | R_failed of string
  | R_reject of string

exception Host_down of string

type conn = {
  c_run_batch : item array -> remote_result array;
  c_ping : unit -> bool;
  c_abort : unit -> unit;
  c_close : unit -> unit;
}

type transport = { connect : string -> conn }

type policy = {
  base : Supervisor.policy;
  window : int;
  chunk_jobs : int;
  hedge_after : float;
  quarantine_after : int;
  probe_period : float;
  min_workers : int;
}

let default_policy =
  {
    base = Supervisor.default_policy;
    window = 4;
    chunk_jobs = 0;
    hedge_after = 1.5;
    quarantine_after = 3;
    probe_period = 0.5;
    min_workers = 0;
  }

type host_stats = {
  hs_addr : string;
  hs_healthy : bool;
  hs_sent : int;
  hs_completed : int;
  hs_jobs : int;
  hs_retried : int;
  hs_hedged : int;
  hs_quarantined : int;
  hs_failures : int;
  hs_rtt_p50_ms : float;
  hs_rtt_p95_ms : float;
}

type totals = {
  t_remote_jobs : int;
  t_local_jobs : int;
  t_holes : int;
  t_hedges : int;
  t_hedge_wins : int;
  t_requeues : int;
  t_duplicate_results : int;
}

type host = {
  h_idx : int;
  h_addr : string;
  mutable h_healthy : bool;
  mutable h_consec : int;  (** consecutive connection-level failures *)
  mutable h_probed : bool;  (** heart-beaten at least once this run *)
  mutable h_sent : int;
  mutable h_completed : int;
  mutable h_jobs : int;
  mutable h_retried : int;
  mutable h_hedged : int;
  mutable h_quarantined : int;
  mutable h_failures : int;
  mutable h_rtts : float list;
}

(* A chunk is the dispatch unit: whole groups (snapshot cells), so the
   remote engine re-derives the same cells and forks them from shared
   baselines.  Items carry their global result index. *)
type chunk = {
  ck_groups : (item * int) array array;
  mutable ck_attempts : int;  (** re-dispatches consumed *)
  mutable ck_hedged : bool;
  mutable ck_hedge_won : bool;
}

type entry = { qe_chunk : chunk; qe_not_on : int option; qe_hedge : bool }

(* Per-run gather state; host health and telemetry live on [t] and
   persist across the many batches of a campaign. *)
type run_state = {
  all : (item * int) array;
  results : completed option array;
  localized : bool array;  (** claimed by a local batch in progress *)
  mutable remaining : int;
  queue : entry Queue.t;
  mutable localq : chunk list;
  mutable inflight : (int * int * chunk * float) list;  (** token, host, chunk, t0 *)
  mutable conns : conn list;
  mutable next_token : int;
  mutable stop : bool;
  mutable floor_breached : bool;
}

type t = {
  transport : transport;
  policy : policy;
  hosts : host array;
  mu : Mutex.t;
  work : Condition.t;
  mutable tot_local : int;
  mutable tot_holes : int;
  mutable tot_hedges : int;
  mutable tot_hedge_wins : int;
  mutable tot_requeues : int;
  mutable tot_dups : int;
  mutable running : bool;
}

let now () = Unix.gettimeofday ()

let create ?(policy = default_policy) transport ~hosts =
  if hosts = [] then invalid_arg "Dispatch.create: empty host list";
  let policy =
    {
      policy with
      window = max 1 policy.window;
      quarantine_after = max 1 policy.quarantine_after;
      probe_period = Float.max 0.05 policy.probe_period;
    }
  in
  let mk i addr =
    {
      h_idx = i;
      h_addr = addr;
      h_healthy = true;
      h_consec = 0;
      h_probed = false;
      h_sent = 0;
      h_completed = 0;
      h_jobs = 0;
      h_retried = 0;
      h_hedged = 0;
      h_quarantined = 0;
      h_failures = 0;
      h_rtts = [];
    }
  in
  {
    transport;
    policy;
    hosts = Array.of_list (List.mapi mk hosts);
    mu = Mutex.create ();
    work = Condition.create ();
    tot_local = 0;
    tot_holes = 0;
    tot_hedges = 0;
    tot_hedge_wins = 0;
    tot_requeues = 0;
    tot_dups = 0;
    running = false;
  }

(* ---------------- chunking ---------------- *)

let flat ck = Array.concat (Array.to_list ck.ck_groups)

(* Auto chunk size: enough chunks to keep every window slot busy a few
   times over (so failures forfeit little work), but not so small that
   framing dominates. *)
let chunk_target t ~total_jobs =
  if t.policy.chunk_jobs > 0 then t.policy.chunk_jobs
  else
    let slots = Array.length t.hosts * t.policy.window in
    max 1 (min 24 (total_jobs / max 1 (slots * 4)))

let chunks_of_groups t groups =
  let total_jobs = List.fold_left (fun a g -> a + Array.length g) 0 groups in
  let target = chunk_target t ~total_jobs in
  let gi = ref 0 in
  let indexed =
    List.map
      (fun g ->
        Array.map
          (fun it ->
            let i = !gi in
            incr gi;
            (it, i))
          g)
      groups
  in
  let chunks = ref [] and cur = ref [] and cur_n = ref 0 in
  let cut () =
    if !cur <> [] then begin
      chunks :=
        {
          ck_groups = Array.of_list (List.rev !cur);
          ck_attempts = 0;
          ck_hedged = false;
          ck_hedge_won = false;
        }
        :: !chunks;
      cur := [];
      cur_n := 0
    end
  in
  List.iter
    (fun g ->
      cur := g :: !cur;
      cur_n := !cur_n + Array.length g;
      if !cur_n >= target then cut ())
    indexed;
  cut ();
  (List.rev !chunks, !gi)

(* ---------------- shared-state transitions (all under [t.mu]) ---------------- *)

let chunk_done rs ck =
  Array.for_all
    (Array.for_all (fun (_, gi) -> rs.results.(gi) <> None || rs.localized.(gi)))
    ck.ck_groups

let quarantine_if_due t host =
  if host.h_healthy && host.h_consec >= t.policy.quarantine_after then begin
    host.h_healthy <- false;
    host.h_quarantined <- host.h_quarantined + 1
  end

let note_failure t host =
  host.h_failures <- host.h_failures + 1;
  host.h_consec <- host.h_consec + 1;
  quarantine_if_due t host;
  Condition.broadcast t.work

let note_success t host =
  host.h_consec <- 0;
  if not host.h_healthy then begin
    host.h_healthy <- true;
    Condition.broadcast t.work
  end

(* Re-dispatch a failed chunk; budget exhausted sends it local. *)
let requeue t rs host ck =
  if (not (chunk_done rs ck)) && (not rs.stop) && not rs.floor_breached then begin
    ck.ck_attempts <- ck.ck_attempts + 1;
    t.tot_requeues <- t.tot_requeues + 1;
    host.h_retried <- host.h_retried + 1;
    if ck.ck_attempts > t.policy.base.max_retries then rs.localq <- ck :: rs.localq
    else Queue.push { qe_chunk = ck; qe_not_on = None; qe_hedge = false } rs.queue;
    Condition.broadcast t.work
  end

let gather t rs host ~hedge ck replies rtt =
  let items = flat ck in
  let n = Array.length items in
  let share = if n = 0 then 0. else rtt /. float_of_int n in
  let won = ref false in
  Array.iteri
    (fun k reply ->
      let ((key, spec) as it), gi = items.(k) in
      ignore key;
      match reply with
      | R_verdict cls ->
          if rs.results.(gi) = None then begin
            rs.results.(gi) <- Some (it, Done cls, share, None);
            rs.remaining <- rs.remaining - 1;
            host.h_jobs <- host.h_jobs + 1;
            won := true
          end
          else t.tot_dups <- t.tot_dups + 1
      | R_failed msg ->
          (* the remote supervisor failed the job deterministically:
             that's a verdict about the job, not about the host *)
          if rs.results.(gi) = None then begin
            rs.results.(gi) <-
              Some
                ( it,
                  Hole { hreason = "remote"; hattempts = ck.ck_attempts + 1; herror = msg },
                  share,
                  None );
            rs.remaining <- rs.remaining - 1;
            t.tot_holes <- t.tot_holes + 1
          end
          else t.tot_dups <- t.tot_dups + 1
      | R_reject _ ->
          if rs.results.(gi) = None && not rs.localized.(gi) then begin
            ignore spec;
            rs.localq <-
              {
                ck_groups = [| [| items.(k) |] |];
                ck_attempts = ck.ck_attempts;
                ck_hedged = false;
                ck_hedge_won = false;
              }
              :: rs.localq
          end)
    replies;
  host.h_completed <- host.h_completed + 1;
  host.h_rtts <- rtt :: host.h_rtts;
  if hedge && !won && not ck.ck_hedge_won then begin
    ck.ck_hedge_won <- true;
    t.tot_hedge_wins <- t.tot_hedge_wins + 1
  end;
  Condition.broadcast t.work

(* ---------------- runner domains ---------------- *)

(* Pop the next chunk this host may serve: skip hedge entries excluded
   from it and drop entries whose chunk already finished elsewhere.
   Parks (condition wait) while the host is quarantined or the queue
   holds nothing eligible. *)
let rec take_entry t rs host =
  if rs.stop then None
  else if not host.h_healthy then begin
    Condition.wait t.work t.mu;
    take_entry t rs host
  end
  else begin
    let n = Queue.length rs.queue in
    let chosen = ref None in
    for _ = 1 to n do
      let e = Queue.pop rs.queue in
      if !chosen <> None then Queue.push e rs.queue
      else if chunk_done rs e.qe_chunk then ()
      else if e.qe_not_on = Some host.h_idx then Queue.push e rs.queue
      else chosen := Some e
    done;
    match !chosen with
    | Some e -> Some e
    | None ->
        Condition.wait t.work t.mu;
        take_entry t rs host
  end

let runner t rs host =
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> c
    | None ->
        let c =
          try t.transport.connect host.h_addr
          with
          | Host_down _ as e -> raise e
          | e -> raise (Host_down (Printexc.to_string e))
        in
        Mutex.protect t.mu (fun () -> rs.conns <- c :: rs.conns);
        conn := Some c;
        c
  in
  let drop_conn () =
    (match !conn with Some c -> ( try c.c_close () with _ -> ()) | None -> ());
    conn := None
  in
  let rec loop () =
    match Mutex.protect t.mu (fun () -> take_entry t rs host) with
    | None -> ()
    | Some e ->
        let ck = e.qe_chunk in
        let items = flat ck in
        let token =
          Mutex.protect t.mu (fun () ->
              host.h_sent <- host.h_sent + 1;
              let tok = rs.next_token in
              rs.next_token <- tok + 1;
              rs.inflight <- (tok, host.h_idx, ck, now ()) :: rs.inflight;
              tok)
        in
        let t0 = now () in
        let outcome =
          try Ok ((get_conn ()).c_run_batch (Array.map fst items)) with
          | Host_down m -> Error m
          | ex -> Error (Printexc.to_string ex)
        in
        let rtt = now () -. t0 in
        Mutex.protect t.mu (fun () ->
            rs.inflight <- List.filter (fun (tk, _, _, _) -> tk <> token) rs.inflight);
        (match outcome with
        | Ok replies when Array.length replies = Array.length items ->
            Mutex.protect t.mu (fun () ->
                note_success t host;
                gather t rs host ~hedge:e.qe_hedge ck replies rtt)
        | Ok _ ->
            (* arity desync: the stream can't be trusted any more *)
            drop_conn ();
            Mutex.protect t.mu (fun () ->
                note_failure t host;
                requeue t rs host ck)
        | Error _ ->
            drop_conn ();
            let attempt =
              Mutex.protect t.mu (fun () ->
                  note_failure t host;
                  requeue t rs host ck;
                  host.h_consec)
            in
            (* pace this host's next attempt with the Supervisor's own
               capped-exponential-backoff-with-jitter discipline *)
            if not (Mutex.protect t.mu (fun () -> rs.stop)) then
              Unix.sleepf
                (Supervisor.backoff_delay t.policy.base ~key:host.h_addr
                   ~attempt:(min attempt 8)));
        loop ()
  in
  loop ()

(* ---------------- heartbeat domains ---------------- *)

let prober t rs host =
  let conn = ref None in
  let drop_conn () =
    (match !conn with Some c -> ( try c.c_close () with _ -> ()) | None -> ());
    conn := None
  in
  let probe () =
    let ok =
      try
        let c =
          match !conn with
          | Some c -> c
          | None ->
              let c = t.transport.connect host.h_addr in
              Mutex.protect t.mu (fun () -> rs.conns <- c :: rs.conns);
              conn := Some c;
              c
        in
        c.c_ping ()
      with _ ->
        drop_conn ();
        false
    in
    Mutex.protect t.mu (fun () ->
        host.h_probed <- true;
        if ok then note_success t host else note_failure t host;
        Condition.broadcast t.work)
  in
  let stopped () = Mutex.protect t.mu (fun () -> rs.stop) in
  probe ();
  let continue = ref (not (stopped ())) in
  while !continue do
    (* sleep the probe period in slices so shutdown stays prompt *)
    let slept = ref 0. in
    while (not (stopped ())) && !slept < t.policy.probe_period do
      Unix.sleepf 0.05;
      slept := !slept +. 0.05
    done;
    if stopped () then continue := false else probe ()
  done;
  drop_conn ()

(* ---------------- the gather loop (calling thread) ---------------- *)

type decision = D_done | D_wait | D_local of item array list

let breach_floor t rs ~healthy =
  rs.floor_breached <- true;
  Queue.clear rs.queue;
  rs.localq <- [];
  Array.iter
    (fun (it, gi) ->
      if rs.results.(gi) = None then begin
        rs.results.(gi) <-
          Some
            ( it,
              Hole
                {
                  hreason = "dispatch-floor";
                  hattempts = 0;
                  herror =
                    Printf.sprintf "healthy workers %d below --min-workers %d" healthy
                      t.policy.min_workers;
                },
              0.,
              None );
        rs.remaining <- rs.remaining - 1;
        t.tot_holes <- t.tot_holes + 1
      end)
    rs.all;
  Condition.broadcast t.work

(* Claim the local queue: keep only items nobody finished yet, mark
   them so concurrent remote verdicts for the same keys are discarded
   as duplicates rather than re-localized. *)
let claim_local rs cks =
  List.concat_map
    (fun ck ->
      Array.to_list ck.ck_groups
      |> List.filter_map (fun g ->
             let live =
               Array.to_list g
               |> List.filter (fun (_, gi) -> rs.results.(gi) = None && not rs.localized.(gi))
             in
             match live with
             | [] -> None
             | live ->
                 List.iter (fun (_, gi) -> rs.localized.(gi) <- true) live;
                 Some (Array.of_list (List.map fst live))))
    cks

let decide t rs =
  if rs.remaining = 0 then D_done
  else begin
    let healthy = Array.fold_left (fun a h -> if h.h_healthy then a + 1 else a) 0 t.hosts in
    let all_probed = Array.for_all (fun h -> h.h_probed) t.hosts in
    if
      t.policy.min_workers > 0 && all_probed
      && healthy < t.policy.min_workers
      && not rs.floor_breached
    then begin
      breach_floor t rs ~healthy;
      D_done
    end
    else begin
      (* every remote dead: the queue drains to local execution *)
      if healthy = 0 && all_probed then begin
        Queue.iter
          (fun e -> if not (chunk_done rs e.qe_chunk) then rs.localq <- e.qe_chunk :: rs.localq)
          rs.queue;
        Queue.clear rs.queue
      end;
      (* hedge stragglers when a second host could plausibly win *)
      if t.policy.hedge_after > 0. && healthy >= 2 then begin
        let tnow = now () in
        List.iter
          (fun (_, hidx, ck, t0) ->
            if
              (not ck.ck_hedged)
              && tnow -. t0 > t.policy.hedge_after
              && not (chunk_done rs ck)
            then begin
              ck.ck_hedged <- true;
              t.tot_hedges <- t.tot_hedges + 1;
              t.hosts.(hidx).h_hedged <- t.hosts.(hidx).h_hedged + 1;
              Queue.push { qe_chunk = ck; qe_not_on = Some hidx; qe_hedge = true } rs.queue;
              Condition.broadcast t.work
            end)
          rs.inflight
      end;
      match rs.localq with
      | [] -> D_wait
      | cks -> (
          rs.localq <- [];
          match claim_local rs cks with [] -> D_wait | batch -> D_local batch)
    end
  end

let absorb_local t rs idx_of_key completed =
  Mutex.protect t.mu (fun () ->
      List.iter
        (fun ((((key, _) : item) as it), outcome, wall, snap) ->
          match Hashtbl.find_opt idx_of_key key with
          | Some gi when rs.results.(gi) = None ->
              rs.results.(gi) <- Some (it, outcome, wall, snap);
              rs.remaining <- rs.remaining - 1;
              t.tot_local <- t.tot_local + 1;
              (match outcome with Hole _ -> t.tot_holes <- t.tot_holes + 1 | Done _ -> ())
          | _ -> t.tot_dups <- t.tot_dups + 1)
        completed;
      Condition.broadcast t.work)

let run t ~local groups =
  let groups = List.filter (fun g -> Array.length g > 0) groups in
  if groups = [] then []
  else begin
    Mutex.protect t.mu (fun () ->
        if t.running then invalid_arg "Dispatch.run: batch already in flight";
        t.running <- true);
    Fun.protect ~finally:(fun () -> Mutex.protect t.mu (fun () -> t.running <- false))
    @@ fun () ->
    let chunks, total = chunks_of_groups t groups in
    let all = Array.concat (List.map flat chunks) in
    let rs =
      {
        all;
        results = Array.make total None;
        localized = Array.make total false;
        remaining = total;
        queue = Queue.create ();
        localq = [];
        inflight = [];
        conns = [];
        next_token = 0;
        stop = false;
        floor_breached = false;
      }
    in
    let idx_of_key = Hashtbl.create total in
    Array.iter (fun ((key, _), gi) -> Hashtbl.replace idx_of_key key gi) all;
    List.iter
      (fun ck -> Queue.push { qe_chunk = ck; qe_not_on = None; qe_hedge = false } rs.queue)
      chunks;
    Array.iter (fun h -> h.h_probed <- false) t.hosts;
    let domains = ref [] in
    Array.iter
      (fun h ->
        for _ = 1 to t.policy.window do
          domains := Domain.spawn (fun () -> runner t rs h) :: !domains
        done;
        domains := Domain.spawn (fun () -> prober t rs h) :: !domains)
      t.hosts;
    let rec drive () =
      match Mutex.protect t.mu (fun () -> decide t rs) with
      | D_done -> ()
      | D_wait ->
          Unix.sleepf 0.02;
          drive ()
      | D_local batch ->
          absorb_local t rs idx_of_key (local batch);
          drive ()
    in
    Fun.protect
      ~finally:(fun () ->
        let conns =
          Mutex.protect t.mu (fun () ->
              rs.stop <- true;
              Condition.broadcast t.work;
              rs.conns)
        in
        (* unblock reads parked on dead hosts before joining *)
        List.iter (fun c -> try c.c_abort () with _ -> ()) conns;
        List.iter Domain.join !domains;
        List.iter (fun c -> try c.c_close () with _ -> ()) conns)
      drive;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* remaining = 0 covers every slot *))
         rs.results)
  end

(* ---------------- telemetry ---------------- *)

let percentile p xs =
  match xs with
  | [] -> 0.
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let i = int_of_float ((float_of_int (n - 1) *. p) +. 0.5) in
      a.(max 0 (min (n - 1) i))

let host_stats t =
  Mutex.protect t.mu (fun () ->
      Array.to_list
        (Array.map
           (fun h ->
             {
               hs_addr = h.h_addr;
               hs_healthy = h.h_healthy;
               hs_sent = h.h_sent;
               hs_completed = h.h_completed;
               hs_jobs = h.h_jobs;
               hs_retried = h.h_retried;
               hs_hedged = h.h_hedged;
               hs_quarantined = h.h_quarantined;
               hs_failures = h.h_failures;
               hs_rtt_p50_ms = 1000. *. percentile 0.50 h.h_rtts;
               hs_rtt_p95_ms = 1000. *. percentile 0.95 h.h_rtts;
             })
           t.hosts))

let totals t =
  Mutex.protect t.mu (fun () ->
      {
        t_remote_jobs = Array.fold_left (fun a h -> a + h.h_jobs) 0 t.hosts;
        t_local_jobs = t.tot_local;
        t_holes = t.tot_holes;
        t_hedges = t.tot_hedges;
        t_hedge_wins = t.tot_hedge_wins;
        t_requeues = t.tot_requeues;
        t_duplicate_results = t.tot_dups;
      }
  )

let healthy_hosts t =
  Mutex.protect t.mu (fun () ->
      Array.fold_left (fun a h -> if h.h_healthy then a + 1 else a) 0 t.hosts)

let summary_lines t =
  let tot = totals t in
  let hosts = host_stats t in
  let head =
    Printf.sprintf
      "dispatch: %d host(s) (%d healthy), %d remote / %d local jobs, %d holes, %d requeues, %d hedges (%d won), %d dup results"
      (List.length hosts) (healthy_hosts t) tot.t_remote_jobs tot.t_local_jobs tot.t_holes
      tot.t_requeues tot.t_hedges tot.t_hedge_wins tot.t_duplicate_results
  in
  head
  :: List.map
       (fun h ->
         Printf.sprintf
           "  %s [%s]: sent %d, completed %d, jobs %d, retried %d, hedged %d, quarantined %d, failures %d, rtt p50 %.1fms p95 %.1fms"
           h.hs_addr
           (if h.hs_healthy then "healthy" else "quarantined")
           h.hs_sent h.hs_completed h.hs_jobs h.hs_retried h.hs_hedged h.hs_quarantined
           h.hs_failures h.hs_rtt_p50_ms h.hs_rtt_p95_ms)
       hosts
