(** Run telemetry: per-job wall time and simulated-cost accounting,
    aggregated across engine batches. *)

type t = {
  mutable jobs_run : int;  (** specs actually executed *)
  mutable jobs_cached : int;  (** specs served from the result cache *)
  mutable jobs_failed : int;  (** specs the supervisor gave up on *)
  mutable retries : int;  (** supervised attempts beyond each job's first *)
  mutable tasks_run : int;  (** uncached ad-hoc tasks ([Engine.run_tasks]) *)
  mutable cost_units : int64;  (** simulated cost consumed by executed jobs *)
  mutable busy_seconds : float;  (** sum of per-job wall times *)
  mutable wall_seconds : float;  (** elapsed time inside engine batches *)
  mutable batches : int;
  mutable trace : Dpmr_trace.Trace.summary;
      (** merged per-domain trace-sink summaries (traced campaigns only) *)
  mu : Mutex.t;
}

let create () =
  {
    jobs_run = 0;
    jobs_cached = 0;
    jobs_failed = 0;
    retries = 0;
    tasks_run = 0;
    cost_units = 0L;
    busy_seconds = 0.;
    wall_seconds = 0.;
    batches = 0;
    trace = Dpmr_trace.Trace.zero_summary;
    mu = Mutex.create ();
  }

let now () = Unix.gettimeofday ()

let record_job t ~wall ~cost =
  Mutex.protect t.mu (fun () ->
      t.jobs_run <- t.jobs_run + 1;
      t.busy_seconds <- t.busy_seconds +. wall;
      t.cost_units <- Int64.add t.cost_units cost)

let record_task t ~wall =
  Mutex.protect t.mu (fun () ->
      t.tasks_run <- t.tasks_run + 1;
      t.busy_seconds <- t.busy_seconds +. wall)

let record_cached t n = Mutex.protect t.mu (fun () -> t.jobs_cached <- t.jobs_cached + n)

let record_failed t ~wall =
  Mutex.protect t.mu (fun () ->
      t.jobs_failed <- t.jobs_failed + 1;
      t.busy_seconds <- t.busy_seconds +. wall)

let record_retries t n = Mutex.protect t.mu (fun () -> t.retries <- t.retries + n)

let record_trace t s =
  Mutex.protect t.mu (fun () ->
      t.trace <- Dpmr_trace.Trace.add_summary t.trace s)

let record_batch t ~wall =
  Mutex.protect t.mu (fun () ->
      t.batches <- t.batches + 1;
      t.wall_seconds <- t.wall_seconds +. wall)

(** Estimated speedup of the engine over running every executed job
    back-to-back on one domain: busy time over batch wall time.  [None]
    until enough signal exists to be meaningful. *)
let speedup_estimate t =
  if t.wall_seconds > 1e-6 && t.busy_seconds > 0. then Some (t.busy_seconds /. t.wall_seconds)
  else None

(* [tier] = (functions promoted, deopts) from [Vm.tier_stats]; [plan_memo]
   = (hits, misses) of the snapshot planner's divergence-diff cache
   ([Experiment.diff_memo_stats]).  Both are process-global counters the
   engine samples at summary time; passed in rather than read here to
   keep this module free of VM/experiment dependencies.  Only surfaced
   when the subsystem actually fired, so historical summary shapes are
   preserved. *)

let summary_lines ?(tier = (0, 0)) ?(plan_memo = (0, 0)) ?dispatch t ~workers
    ~(cache : Cache.stats option) =
  let total = t.jobs_run + t.jobs_cached + t.jobs_failed in
  let degraded =
    (* only surfaced when the supervisor actually intervened, so healthy
       runs keep the historical summary shape *)
    if t.jobs_failed = 0 && t.retries = 0 then ""
    else Printf.sprintf ", %d failed, %d retrie(s)" t.jobs_failed t.retries
  in
  let first =
    Printf.sprintf "[engine] %d jobs (%d run, %d cached%s), %d task(s), workers=%d" total
      t.jobs_run t.jobs_cached degraded t.tasks_run workers
  in
  let cache_line =
    match cache with
    | None -> "[engine] cache: disabled"
    | Some s ->
        let looked = s.Cache.hits + s.Cache.misses in
        let pct = if looked = 0 then 0. else 100. *. float_of_int s.Cache.hits /. float_of_int looked in
        let damage =
          if s.Cache.damaged = 0 then ""
          else Printf.sprintf ", %d damaged" s.Cache.damaged
        in
        Printf.sprintf "[engine] cache: %d hits / %d lookups (%.1f%%), %d added, %d evicted%s"
          s.Cache.hits looked pct s.Cache.added s.Cache.evicted damage
  in
  let time_line =
    let speed =
      match speedup_estimate t with
      | Some s when t.jobs_run + t.tasks_run > 0 ->
          Printf.sprintf " (%.2fx vs serial estimate)" s
      | _ -> ""
    in
    Printf.sprintf "[engine] time: busy %.2fs, wall %.2fs over %d batch(es)%s; sim cost %Ld units"
      t.busy_seconds t.wall_seconds t.batches speed t.cost_units
  in
  let tier_lines =
    let promoted, deopts = tier in
    let hits, misses = plan_memo in
    let looked = hits + misses in
    if promoted = 0 && deopts = 0 && looked = 0 then []
    else
      let memo =
        if looked = 0 then ""
        else
          Printf.sprintf "; plan diff memo %d hits / %d lookups (%.1f%%)"
            hits looked
            (100. *. float_of_int hits /. float_of_int looked)
      in
      [
        Printf.sprintf "[engine] tier: %d function(s) promoted, %d deopt(s)%s"
          promoted deopts memo;
      ]
  in
  (* only surfaced when a remote dispatcher was wired in, so
     single-host runs keep the historical summary shape *)
  let dispatch_lines =
    match dispatch with
    | None -> []
    | Some d -> List.map (fun l -> "[engine] " ^ l) (Dispatch.summary_lines d)
  in
  let base = [ first; cache_line; time_line ] @ tier_lines @ dispatch_lines in
  (* only surfaced when a trace sink actually recorded something, so
     untraced runs keep the historical summary shape *)
  let tr = t.trace in
  if tr.Dpmr_trace.Trace.s_emitted = 0 then base
  else
    base
    @ [
        Printf.sprintf
          "[engine] trace: %d events (%d dropped), %d comparison(s), %d detection(s), %d injection mark(s)"
          tr.Dpmr_trace.Trace.s_emitted tr.Dpmr_trace.Trace.s_dropped
          tr.Dpmr_trace.Trace.s_comparisons tr.Dpmr_trace.Trace.s_detections
          tr.Dpmr_trace.Trace.s_fi_marks;
      ]

(** Machine-readable snapshot of everything {!summary_lines} reports
    (plus the raw fields), for CI trend tracking.  One flat JSON object;
    keys are stable, floats fixed-precision, absent subsystems [null]. *)
let to_json ?(tier = (0, 0)) ?(plan_memo = (0, 0)) ?dispatch t ~workers
    ~(cache : Cache.stats option) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"dpmr-telemetry/1\",\n";
  add "  \"workers\": %d,\n" workers;
  add "  \"jobs\": { \"run\": %d, \"cached\": %d, \"failed\": %d, \"total\": %d },\n"
    t.jobs_run t.jobs_cached t.jobs_failed
    (t.jobs_run + t.jobs_cached + t.jobs_failed);
  add "  \"retries\": %d,\n" t.retries;
  add "  \"tasks_run\": %d,\n" t.tasks_run;
  add "  \"cost_units\": %Ld,\n" t.cost_units;
  add "  \"busy_seconds\": %.3f,\n" t.busy_seconds;
  add "  \"wall_seconds\": %.3f,\n" t.wall_seconds;
  add "  \"batches\": %d,\n" t.batches;
  (match speedup_estimate t with
  | Some s -> add "  \"speedup_estimate\": %.2f,\n" s
  | None -> add "  \"speedup_estimate\": null,\n");
  (match cache with
  | None -> add "  \"cache\": null,\n"
  | Some c ->
      let looked = c.Cache.hits + c.Cache.misses in
      let pct =
        if looked = 0 then 0.
        else 100. *. float_of_int c.Cache.hits /. float_of_int looked
      in
      add
        "  \"cache\": { \"hits\": %d, \"lookups\": %d, \"hit_rate_pct\": %.1f, \"added\": %d, \"evicted\": %d, \"damaged\": %d },\n"
        c.Cache.hits looked pct c.Cache.added c.Cache.evicted c.Cache.damaged);
  (let promoted, deopts = tier in
   add "  \"tier\": { \"promoted\": %d, \"deopts\": %d },\n" promoted deopts);
  (let hits, misses = plan_memo in
   let looked = hits + misses in
   let pct =
     if looked = 0 then 0. else 100. *. float_of_int hits /. float_of_int looked
   in
   add
     "  \"plan_memo\": { \"hits\": %d, \"lookups\": %d, \"hit_rate_pct\": %.1f },\n"
     hits looked pct);
  (match dispatch with
  | None -> add "  \"dispatch\": null,\n"
  | Some d ->
      let tot = Dispatch.totals d in
      add
        "  \"dispatch\": { \"remote_jobs\": %d, \"local_jobs\": %d, \"holes\": %d, \"hedges\": %d, \"hedge_wins\": %d, \"requeues\": %d, \"duplicate_results\": %d, \"hosts\": ["
        tot.Dispatch.t_remote_jobs tot.Dispatch.t_local_jobs tot.Dispatch.t_holes
        tot.Dispatch.t_hedges tot.Dispatch.t_hedge_wins tot.Dispatch.t_requeues
        tot.Dispatch.t_duplicate_results;
      List.iteri
        (fun i (h : Dispatch.host_stats) ->
          if i > 0 then add ", ";
          add
            "{ \"addr\": \"%s\", \"healthy\": %b, \"sent\": %d, \"completed\": %d, \"jobs\": %d, \"retried\": %d, \"hedged\": %d, \"quarantined\": %d, \"failures\": %d, \"rtt_p50_ms\": %.2f, \"rtt_p95_ms\": %.2f }"
            (Job.json_escape h.Dispatch.hs_addr)
            h.Dispatch.hs_healthy h.Dispatch.hs_sent h.Dispatch.hs_completed
            h.Dispatch.hs_jobs h.Dispatch.hs_retried h.Dispatch.hs_hedged
            h.Dispatch.hs_quarantined h.Dispatch.hs_failures h.Dispatch.hs_rtt_p50_ms
            h.Dispatch.hs_rtt_p95_ms)
        (Dispatch.host_stats d);
      add "] },\n");
  let tr = t.trace in
  add
    "  \"trace\": { \"emitted\": %d, \"dropped\": %d, \"comparisons\": %d, \"detections\": %d, \"fi_marks\": %d }\n"
    tr.Dpmr_trace.Trace.s_emitted tr.Dpmr_trace.Trace.s_dropped
    tr.Dpmr_trace.Trace.s_comparisons tr.Dpmr_trace.Trace.s_detections
    tr.Dpmr_trace.Trace.s_fi_marks;
  add "}\n";
  Buffer.contents b
