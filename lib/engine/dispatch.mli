(** Failure-hardened multi-host scatter/gather for campaign batches.

    A dispatcher scatters cache-miss job specs to resident [dpmr_serve]
    workers over the serving protocol and gathers their verdicts back
    into the engine's result path.  Robustness is the contract, not the
    plumbing: any schedule of worker failures (connection loss, stalls,
    crashes, drains, wire corruption) may slow a campaign down but can
    only change its output where {e no} execution capacity remains at
    all — and even then the batch degrades to explicit holes, never to
    an abort.

    Mechanisms (DESIGN.md §12):

    - {b bounded windows} — each host serves at most [window] chunks
      concurrently, one per connection, so a slow host backlogs itself,
      not the campaign;
    - {b heartbeats} — a per-host prober pings on its own connection;
      consecutive misses quarantine the host, later successes revive it;
    - {b connection-level supervision} — the Supervisor's
      deadline/retry/backoff policy lifted to the wire: failed chunks
      are re-dispatched with capped exponential backoff, and a host
      failing [quarantine_after] consecutive operations is quarantined
      while its in-flight work is re-dispatched elsewhere;
    - {b hedging} — a chunk in flight longer than [hedge_after] is
      duplicated to a second host; verdicts dedup first-result-wins by
      job content hash, so duplicated execution is invisible (every job
      is idempotent by construction);
    - {b graceful degradation} — chunks that exhaust their re-dispatch
      budget, and whole campaigns whose remotes all died, fall back to
      local execution; below a [min_workers] floor of healthy hosts the
      remaining jobs become explicit [Hole]s instead (a requested
      distributed guarantee fails loudly, not by silently running
      10x slower).

    The wire transport is injected ({!transport}): [lib/server] already
    depends on this library, so the protocol client cannot be named
    here.  [Dpmr_server.Remote.transport] is the production
    implementation; tests inject deterministic fakes. *)

module Experiment = Dpmr_fi.Experiment

type item = string * Job.spec
(** A job to dispatch: (content-hash cache key, spec). *)

type hole = {
  hreason : string;  (** e.g. ["dispatch-floor"], ["remote"] *)
  hattempts : int;
  herror : string;
}

type outcome = Done of Experiment.classification | Hole of hole

type completed = item * outcome * float * string option
(** (item, outcome, wall seconds billed, snapshot fork hash if any). *)

(** What one remote answered for one job of a chunk. *)
type remote_result =
  | R_verdict of Experiment.classification
  | R_failed of string
      (** the remote supervisor gave up deterministically — a job hole,
          not a host failure; re-dispatching elsewhere would fail the
          same way *)
  | R_reject of string
      (** the remote cannot run this job at all (unknown workload, bad
          request): execute it locally instead *)

exception Host_down of string
(** Connection-level failure: closed, reset, timed out, refused,
    draining.  The chunk is re-dispatched and the host suspected. *)

(** One established connection to a worker.  All operations may raise
    {!Host_down}; any other exception is treated the same way. *)
type conn = {
  c_run_batch : item array -> remote_result array;
      (** scatter one chunk, gather one result per item (in order) *)
  c_ping : unit -> bool;
  c_abort : unit -> unit;
      (** wake any blocked [c_run_batch] from another thread (shutdown
          both socket directions); used at campaign end so a read
          blocked on a dead host cannot delay completion *)
  c_close : unit -> unit;
}

type transport = { connect : string -> conn }
(** [connect addr] — raises {!Host_down} when the host is unreachable. *)

type policy = {
  base : Supervisor.policy;
      (** the per-job supervision policy lifted to the connection level:
          [max_retries] bounds chunk re-dispatches, [backoff] /
          [backoff_max] pace a failing host's next attempt *)
  window : int;  (** outstanding chunks (connections) per host *)
  chunk_jobs : int;  (** target jobs per chunk; [0] = auto-size *)
  hedge_after : float;
      (** seconds in flight before a chunk is duplicated to a second
          host; [0.] disables hedging *)
  quarantine_after : int;
      (** consecutive connection-level failures that quarantine a host *)
  probe_period : float;  (** heartbeat interval, seconds *)
  min_workers : int;
      (** healthy-host floor: when fewer remain, unfinished jobs become
          explicit holes ([0] = no floor; degrade to local execution) *)
}

val default_policy : policy

type host_stats = {
  hs_addr : string;
  hs_healthy : bool;
  hs_sent : int;  (** chunks dispatched (hedges included) *)
  hs_completed : int;  (** chunks answered in full *)
  hs_jobs : int;  (** job verdicts this host won *)
  hs_retried : int;  (** chunks re-dispatched after this host failed *)
  hs_hedged : int;  (** hedge duplicates issued against this host's stragglers *)
  hs_quarantined : int;  (** times quarantined *)
  hs_failures : int;  (** connection-level failures (probes included) *)
  hs_rtt_p50_ms : float;  (** over completed chunks; [0.] when none *)
  hs_rtt_p95_ms : float;
}

type totals = {
  t_remote_jobs : int;
  t_local_jobs : int;  (** jobs that fell back to local execution *)
  t_holes : int;
  t_hedges : int;  (** hedge duplicates issued *)
  t_hedge_wins : int;  (** hedged chunks whose first verdict came from the duplicate *)
  t_requeues : int;  (** chunk re-dispatches *)
  t_duplicate_results : int;  (** verdicts discarded by first-result-wins dedup *)
}

type t

val create : ?policy:policy -> transport -> hosts:string list -> t
(** Host health, quarantine state and telemetry persist across {!run}
    calls (an engine dispatches many batches per campaign). *)

val run : t -> local:(item array list -> completed list) -> item array list -> completed list
(** Scatter the given groups and gather every outcome.  Grouped items
    (snapshot cells) always land in the same chunk, so remote engines
    can fork them from a shared baseline.  [local] executes groups on
    the caller's engine (the degradation path); it is invoked on the
    calling thread.  The result covers every input item exactly once,
    in input order. *)

val host_stats : t -> host_stats list
val totals : t -> totals
val healthy_hosts : t -> int
val summary_lines : t -> string list
