(** Content-addressed result cache: classifications persisted as
    line-delimited JSON under [_dpmr_cache/], keyed by [Job.hash].
    Stale-salt lines are evicted on load; corrupt lines degrade to
    misses. *)

module Experiment = Dpmr_fi.Experiment

val default_dir : string
(** ["_dpmr_cache"]. *)

val file_of : string -> string
(** The jsonl path inside a cache directory. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;  (** stale-salt lines dropped on load *)
  mutable added : int;
}

type t

val load : ?dir:string -> salt:string -> unit -> t
(** Load the cache, evicting (and compacting away) entries recorded
    under a different code-version salt. *)

val entries : t -> int
val find : t -> string -> Experiment.classification option
(** Lookup by content hash; counts a hit or a miss. *)

val add : t -> key:string -> spec_repr:string -> Experiment.classification -> unit
(** Insert and append to the on-disk file (no-op if the key is already
    present). *)

val flush : t -> unit
val close : t -> unit
val stats : t -> stats

val clear : ?dir:string -> unit -> int
(** Delete the cache file; returns the number of entries removed. *)

type disk_stats = {
  path : string;
  total : int;  (** well-formed entries on disk *)
  current : int;  (** entries under the given salt *)
  stale : int;
  bytes : int;
}

val disk_stats : ?dir:string -> salt:string -> unit -> disk_stats
