(** Content-addressed, crash-durable result cache: classifications
    persisted as CRC32-framed line-delimited JSON under [_dpmr_cache/],
    keyed by [Job.hash] and {b sharded by the hash's leading hex digit}
    into [results-<x>.jsonl] (16 shards), so concurrent appenders —
    worker domains of one process, or several processes federating one
    cache directory — never contend on a single file.  The pre-sharding
    [results.jsonl] is migrated into the shards on load.

    Crash durability: each record reaches the OS in one [O_APPEND]
    write as it is added (concurrent appends interleave at record
    granularity, never mid-record) and shards are fsync'd every
    [flush_every] appends; a torn tail is dropped, counted and repaired
    on load; compaction is atomic per shard (temp file + rename).
    Stale-salt lines are evicted on load; damage of any kind degrades
    to counted misses, never to wrong or lost-beyond-the-tail
    results. *)

module Experiment = Dpmr_fi.Experiment

val default_dir : string
(** ["_dpmr_cache"]. *)

val shard_count : int
(** 16: one shard per leading hex digit of the job hash. *)

val file_of : string -> string
(** The legacy (pre-sharding) jsonl path inside a cache directory. *)

val shard_file : string -> int -> string
(** [shard_file dir i] — the jsonl path of shard [i]. *)

val shard_of_key : string -> int
(** The shard a key's record lives in. *)

val default_flush_every : int
(** 64: records between fsyncs of a shard's append channel. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;  (** stale-salt lines dropped on load *)
  mutable damaged : int;  (** torn/corrupt/CRC-mismatched lines dropped on load *)
  mutable added : int;  (** primary results persisted this session *)
  mutable forked : int;
      (** auxiliary fork-key records persisted this session (snapshot
          federation sidecar — see {!Job.fork_hash}) *)
}

type t

val load : ?dir:string -> ?flush_every:int -> salt:string -> unit -> t
(** Load the cache: evict stale-salt entries, drop damaged lines,
    migrate any legacy single-file records into their shards, and
    repair every shard that lost or gained lines by atomic
    compaction. *)

val entries : t -> int

val mem : t -> string -> bool
(** Membership by content hash, without touching the hit/miss counters
    (the daemon's "was this verdict served from cache" probe). *)

val find : t -> string -> Experiment.classification option
(** Lookup by content hash; counts a hit or a miss.  Thread-safe; only
    the key's shard is locked. *)

val add :
  t -> ?aux:bool -> ?snap:string -> key:string -> spec_repr:string ->
  Experiment.classification -> unit
(** Insert and append to the key's shard (no-op if the key is already
    present).  The record is pushed to the OS immediately; every
    [flush_every]-th append per shard also fsyncs.  [snap] records the
    content hash of the snapshot the run resumed from (see
    {!Job.fork_hash}).  [aux] marks a sidecar record (a fork-key
    federation entry): counted under {!stats}.[forked], not [added]. *)

val flush : t -> unit
(** Fsync every shard with unsynced appends. *)

val close : t -> unit
val stats : t -> stats

val clear : ?dir:string -> unit -> int
(** Delete all shard files, the legacy file and any compaction temp
    files; returns the number of intact entries removed. *)

type shard_stats = {
  sh_records : int;  (** intact entries in this shard file *)
  sh_current : int;  (** of those, entries under the given salt *)
  sh_damaged : int;  (** torn, corrupt or CRC-mismatched lines *)
}

type disk_stats = {
  path : string;  (** the cache directory *)
  files : int;  (** jsonl files present (shards plus any legacy file) *)
  total : int;  (** intact entries on disk *)
  current : int;  (** entries under the given salt *)
  stale : int;  (** entries under any other salt *)
  damaged : int;  (** torn, corrupt or CRC-mismatched lines *)
  torn_tail : bool;  (** some file ends in an unterminated record *)
  bytes : int;
  per_shard : shard_stats array;
      (** one slot per shard file; the legacy single file, when present,
          counts toward the totals only.  Federated writers hash jobs
          across shards, so the [cache stats --json] consumer (the CI
          federated-cache verify step) can check the spread and pin
          damage to a shard. *)
}

val disk_stats : ?dir:string -> salt:string -> unit -> disk_stats
(** Scan all files without loading them (the [cache stats] / [cache
    verify] CLI view).  Read-only: performs no repair. *)

val disk_stats_to_json : disk_stats -> string
(** Machine-readable rendering of {!disk_stats} (the [cache stats
    --json] payload): one JSON object with stable keys. *)
