(** Content-addressed, crash-durable result cache: classifications
    persisted as CRC32-framed line-delimited JSON under [_dpmr_cache/],
    keyed by [Job.hash].

    Crash durability: records are flushed and fsync'd every
    [flush_every] appends; a torn tail is dropped, counted and repaired
    on load; compaction is atomic (temp file + rename).  Stale-salt
    lines are evicted on load; damage of any kind degrades to counted
    misses, never to wrong or lost-beyond-the-tail results. *)

module Experiment = Dpmr_fi.Experiment

val default_dir : string
(** ["_dpmr_cache"]. *)

val file_of : string -> string
(** The jsonl path inside a cache directory. *)

val default_flush_every : int
(** 64: records between fsync'd flushes of the append channel. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;  (** stale-salt lines dropped on load *)
  mutable damaged : int;  (** torn/corrupt/CRC-mismatched lines dropped on load *)
  mutable added : int;
}

type t

val load : ?dir:string -> ?flush_every:int -> salt:string -> unit -> t
(** Load the cache: evict stale-salt entries, drop damaged lines, and —
    when anything was dropped or the tail was torn — repair the file by
    atomic compaction. *)

val entries : t -> int

val find : t -> string -> Experiment.classification option
(** Lookup by content hash; counts a hit or a miss. *)

val add : t -> key:string -> spec_repr:string -> Experiment.classification -> unit
(** Insert and append to the on-disk file (no-op if the key is already
    present).  Every [flush_every]-th append flushes and fsyncs. *)

val flush : t -> unit
(** Flush and fsync the append channel. *)

val close : t -> unit
val stats : t -> stats

val clear : ?dir:string -> unit -> int
(** Delete the cache file (and any compaction temp file); returns the
    number of intact entries removed. *)

type disk_stats = {
  path : string;
  total : int;  (** intact entries on disk *)
  current : int;  (** entries under the given salt *)
  stale : int;  (** entries under any other salt *)
  damaged : int;  (** torn, corrupt or CRC-mismatched lines *)
  torn_tail : bool;  (** the file ends in an unterminated record *)
  bytes : int;
}

val disk_stats : ?dir:string -> salt:string -> unit -> disk_stats
(** Scan the file without loading it (the [cache stats] / [cache
    verify] CLI view).  Read-only: performs no repair. *)
