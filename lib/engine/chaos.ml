(** Deterministic chaos injection for the engine's own machinery.

    Chaos mode proves the supervision layer works by attacking the
    campaign runner itself: worker attempts raise {!Injected_fault} or
    stall briefly, and cache appends get torn mid-record.  Every decision
    is a pure hash of [(seed, key, attempt)], so a chaos run is exactly
    reproducible — the chaos CI job can assert that report output stays
    byte-identical to the golden files despite the injected failures.

    Faults are {e transient by construction}: {!plan} never injects into
    attempt numbers [>= burst], so a supervisor that retries at least
    [burst] times always reaches a clean attempt.  Deterministic
    (non-chaos) failures are the quarantine path, exercised separately.

    Enabled either programmatically ({!set}) or by the [DPMR_CHAOS]
    environment variable / [--chaos] flag: ["1"] or ["p"] or
    ["p,seed"] with probability [p] in [0..1]. *)

exception Injected_fault of string

type t = {
  prob : float;  (** per-attempt injection probability *)
  seed : int64;
  burst : int;  (** attempts [>= burst] are never injected into *)
  max_delay : float;  (** cap on injected stalls, seconds *)
}

let make ?(prob = 1.0) ?(seed = 0L) ?(burst = 2) ?(max_delay = 0.002) () =
  { prob = Float.max 0. (Float.min 1. prob); seed; burst = max 1 burst; max_delay }

let parse s =
  let mk prob seed = Some (make ~prob ~seed ()) in
  match String.index_opt s ',' with
  | None -> (
      match float_of_string_opt (String.trim s) with
      | Some p when p > 0. -> mk p 0L
      | _ -> None)
  | Some i -> (
      let p = String.trim (String.sub s 0 i) in
      let sd = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      match (float_of_string_opt p, Int64.of_string_opt sd) with
      | Some p, Some seed when p > 0. -> mk p seed
      | _ -> None)

let of_env () =
  match Sys.getenv_opt "DPMR_CHAOS" with
  | None | Some "" | Some "0" -> None
  | Some s -> parse s

(* Set once at startup (or pinned by a test) before worker domains
   spawn; workers only read it. *)
let state : t option option ref = ref None (* None = env not consulted yet *)

let set c = state := Some c

let active () =
  match !state with
  | Some c -> c
  | None ->
      let c = of_env () in
      state := Some c;
      c

let with_chaos c f =
  let saved = !state in
  set c;
  Fun.protect ~finally:(fun () -> state := saved) f

(* ---------------- deterministic decision streams ---------------- *)

let fnv1a64 seed str =
  let h = ref (Int64.logxor 0xcbf29ce484222325L seed) in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    str;
  !h

(* top 53 bits to a float in [0, 1) *)
let u01 h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let decision c ~stream ~key ~attempt =
  u01 (fnv1a64 c.seed (Printf.sprintf "%s\x00%s\x00%d" stream key attempt))

type action = Fail | Delay of float

let plan c ~key ~attempt =
  if attempt >= c.burst then None
  else
    let u = decision c ~stream:"fault" ~key ~attempt in
    if u >= c.prob then None
    else
      let pick = decision c ~stream:"kind" ~key ~attempt in
      (* mostly exceptions, some stalls — stalls must stay far under any
         reasonable deadline, they model scheduling noise, not hangs *)
      if pick < 0.7 then Some Fail else Some (Delay (c.max_delay *. pick))

(** Injection point for one worker attempt: no-op when chaos is off;
    otherwise deterministically either returns, stalls briefly, or
    raises {!Injected_fault}. *)
let attempt_fault ~key ~attempt =
  match active () with
  | None -> ()
  | Some c -> (
      match plan c ~key ~attempt with
      | None -> ()
      | Some (Delay d) -> Unix.sleepf d
      | Some Fail ->
          raise
            (Injected_fault (Printf.sprintf "chaos: injected fault (%s, attempt %d)" key attempt)))

(* ---------------- wire chaos ---------------- *)

(* Wire chaos attacks the serving path the way worker chaos attacks the
   job path: response frames get torn mid-write, connections reset,
   replies stall, and (rarely) the whole worker process dies mid-job.
   It is configured separately (DPMR_CHAOS_WIRE) because its blast
   radius is a *connection*, not an attempt — the recovery layer under
   test is the dispatcher/client reconnect machinery, not the job
   supervisor.  Decisions are pure in [(seed, key, attempt)] with the
   same burst rule, so a peer that retries [burst] times always gets
   clean service eventually and goldens stay byte-identical. *)

type wire_action =
  | Wire_stall of float  (** delay the response; straggler/hedge fodder *)
  | Wire_torn  (** write a partial frame, then drop the connection *)
  | Wire_reset  (** drop the connection before replying *)
  | Wire_kill  (** the worker process dies mid-job ([_exit]) *)

let wire_state : t option option ref = ref None

let set_wire c = wire_state := Some c

let wire_of_env () =
  match Sys.getenv_opt "DPMR_CHAOS_WIRE" with
  | None | Some "" | Some "0" -> None
  | Some s -> parse s

let wire_active () =
  match !wire_state with
  | Some c -> c
  | None ->
      let c = wire_of_env () in
      wire_state := Some c;
      c

let wire_plan c ~key ~attempt =
  if attempt >= c.burst then None
  else
    let u = decision c ~stream:"wire" ~key ~attempt in
    if u >= c.prob then None
    else
      let pick = decision c ~stream:"wirekind" ~key ~attempt in
      (* mostly recoverable nuisances; process kills are rare because
         each one forfeits a whole worker (the test for quarantine +
         re-dispatch, and for crash-durable cache recovery) *)
      if pick < 0.40 then Some (Wire_stall (c.max_delay *. (0.5 +. pick)))
      else if pick < 0.75 then Some Wire_torn
      else if pick < 0.97 then Some Wire_reset
      else Some Wire_kill

(** Torn cache write: [Some n] truncates the record (newline included)
    to its first [n] bytes.  Kept rarer than worker faults so chaos runs
    still exercise warm-cache paths. *)
let truncation ~key ~len =
  match active () with
  | None -> None
  | Some c ->
      let u = decision c ~stream:"trunc" ~key ~attempt:0 in
      if u >= c.prob *. 0.25 then None
      else Some (1 + int_of_float (u /. (c.prob *. 0.25) *. float_of_int (max 1 (len - 1))))
