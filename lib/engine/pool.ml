(** Fixed-size domain worker pool with deterministic result ordering.

    Two modes share one execution core:

    - the historical batch calls ({!map} / {!map_results}) spin up a
      transient pool, run the batch, and join the domains;
    - a {b resident} pool ({!create}) keeps its worker domains parked on
      a condition variable between batches, so repeated batches — an
      engine reused across figures, or a daemon serving requests — pay
      domain spawn and per-domain warmup (DLS-cached experiment
      contexts, lowered programs) once instead of per batch.

    Workers pull tasks from a mutex-protected queue and write results
    into per-index slots, so the returned list is ordered by input
    position regardless of completion order — the property that keeps
    parallel engine output byte-identical to serial output. *)

let default_size () = Domain.recommended_domain_count ()

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mu : Mutex.t;
  work : Condition.t;  (** signalled when a task is queued or on shutdown *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let worker_loop t =
  let rec loop () =
    let task =
      Mutex.protect t.mu (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.work t.mu
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match task with
    | None -> () (* stopping and drained *)
    | Some task ->
        task ();
        loop ()
  in
  loop ()

let create ?(size = default_size ()) () =
  let t =
    {
      size = max 1 size;
      queue = Queue.create ();
      mu = Mutex.create ();
      work = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init t.size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.protect t.mu (fun () ->
      t.stopping <- true;
      Condition.broadcast t.work);
  List.iter Domain.join t.domains;
  t.domains <- []

(* ---------------- batch execution on a pool ---------------- *)

(* Tasks never let an exception escape into the worker loop: each slot
   captures [Ok] or [Error (exn, backtrace)] and the batch waiter
   re-raises (or not) on the calling domain. *)
let run_batch t ?progress f xs =
  let n = List.length xs in
  let input = Array.of_list xs in
  let results = Array.make n None in
  let completed = ref 0 in
  let done_mu = Mutex.create () in
  let done_cond = Condition.create () in
  let task i () =
    let r =
      try Ok (f input.(i))
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Error (e, bt)
    in
    (* distinct slots: no lock needed for the write itself *)
    results.(i) <- Some r;
    Mutex.protect done_mu (fun () ->
        incr completed;
        (match progress with Some p -> p ~done_:!completed ~total:n | None -> ());
        Condition.signal done_cond)
  in
  Mutex.protect t.mu (fun () ->
      for i = 0 to n - 1 do
        Queue.push (task i) t.queue
      done;
      Condition.broadcast t.work);
  Mutex.protect done_mu (fun () ->
      while !completed < n do
        Condition.wait done_cond done_mu
      done);
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> failwith "Pool.run_batch: missing result")

let serial_batch ?progress f xs =
  let n = List.length xs in
  List.mapi
    (fun i x ->
      let r =
        try Ok (f x)
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Error (e, bt)
      in
      (match progress with Some p -> p ~done_:(i + 1) ~total:n | None -> ());
      r)
    xs

(** Batch on a resident pool.  Safe to call from several domains at
    once: tasks interleave in one queue and each batch waits only on its
    own completion counter. *)
let map_results_on t ?progress f xs =
  if xs = [] then [] else run_batch t ?progress f xs

let map_on t ?progress f xs =
  List.map
    (function
      | Ok r -> r
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    (map_results_on t ?progress f xs)

(* ---------------- transient (historical) interface ---------------- *)

let map_results ?progress ~jobs f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then serial_batch ?progress f xs
  else begin
    let t = create ~size:jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run_batch t ?progress f xs)
  end

(* One job raising no longer discards the other N−1 results: callers
   that can degrade per-slot use [map_results]; [map] keeps the
   raise-on-first-error contract but now rethrows on the joining domain
   with the worker's backtrace attached. *)
let map ?progress ~jobs f xs =
  List.map
    (function
      | Ok r -> r
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    (map_results ?progress ~jobs f xs)
