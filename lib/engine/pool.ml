(** Fixed-size domain worker pool with deterministic result ordering.

    Workers pull indices from a mutex-protected queue and write results
    into per-index slots, so the returned list is ordered by input
    position regardless of completion order — the property that keeps
    parallel engine output byte-identical to serial output. *)

let default_size () = Domain.recommended_domain_count ()

let map_results ?progress ~jobs f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    List.mapi
      (fun i x ->
        let r =
          try Ok (f x)
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Error (e, bt)
        in
        (match progress with Some p -> p ~done_:(i + 1) ~total:n | None -> ());
        r)
      xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = ref 0 in
    let completed = ref 0 in
    let mu = Mutex.create () in
    let worker () =
      let rec loop () =
        let i =
          Mutex.protect mu (fun () ->
              let i = !next in
              if i < n then incr next;
              i)
        in
        if i < n then begin
          let r =
            try Ok (f input.(i))
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              Error (e, bt)
          in
          (* distinct slots: no lock needed for the write itself *)
          results.(i) <- Some r;
          Mutex.protect mu (fun () ->
              incr completed;
              match progress with Some p -> p ~done_:!completed ~total:n | None -> ());
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> failwith "Pool.map_results: missing result")
  end

(* One job raising no longer discards the other N−1 results: callers
   that can degrade per-slot use [map_results]; [map] keeps the
   raise-on-first-error contract but now rethrows on the joining domain
   with the worker's backtrace attached. *)
let map ?progress ~jobs f xs =
  List.map
    (function
      | Ok r -> r
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    (map_results ?progress ~jobs f xs)
