(** The diversity-family registry's standard members.

    Each family implements {!Dpmr_core.Diversity_family.S} and targets a
    different axis of address-space decorrelation across the N replicas
    (§2.6 generalized): where a replica object lands ([layout-perm]),
    which replica is placed first ([alloc-shuffle]), a per-replica
    constant displacement approximating distinct segment bases
    ([segment-base]), and per-(replica, site) request jitter
    ([pad-jitter]).

    All decisions derive from [(config seed, family name, replica, site)]
    through {!Dpmr_core.Diversity_family.derive} — pure compile-time
    randomness, so the transformed program is a deterministic function of
    the configuration and results cache soundly.

    Field reordering (permuting struct layouts per replica) is the one
    Table 2.8-adjacent family deliberately not implemented: it changes
    every [Gep_field] offset and the shadow-type layout per replica,
    which the comparison-policy codegen is not prepared for (DESIGN.md
    §13 records it as future work). *)

open Dpmr_ir
open Types
open Inst
module DF = Dpmr_core.Diversity_family

(* Shared rx_rewrite helper: pad every heap request by [bytes]
   (delegates to the Rx module's program-wide rewrite). *)
let pad_rewrite prog bytes = Some (Dpmr_core.Rx.pad_heap_requests prog bytes)

(** Displace each replica's heap layout: before a replica allocation,
    allocate 1..3 seeded dummy blocks (16..256 bytes); free them after,
    so the replica lands past holes other replicas do not share. *)
module Layout_perm : DF.S = struct
  let name = "layout-perm"

  let description =
    "permute replica heap placement with seeded dummy allocations"

  type state = { seed : int64 }

  let prepare _prog ~seed ~replicas:_ = { seed }
  let alloc_pad _ ~replica:_ ~site:_ = 0

  let pre_alloc st ~replica ~site b _aug_ty _count =
    let n = DF.rand_in ~lo:1 ~hi:3 (DF.derive ~seed:st.seed ~tag:name ~replica ~site) in
    List.init n (fun j ->
        let w = DF.derive ~seed:st.seed ~tag:(Printf.sprintf "%s/%d" name j) ~replica ~site in
        let sz = DF.rand_in ~lo:16 ~hi:256 w in
        Builder.malloc b ~name:"nv.dummy" ~count:(Builder.i64c sz) i8)

  let post_alloc _ ~replica:_ ~site:_ b dummies = List.iter (Builder.free b) dummies
  let order _ ~site:_ ~n = Array.init n Fun.id
  let startup _ _ = ()

  (* Application-side analog: displace every application allocation by a
     seeded dummy (allocated before, freed after), so a re-execution
     puts victim objects elsewhere. *)
  let rx_rewrite prog ~seed =
    let q = Clone.prog prog in
    let site = ref 0 in
    Prog.iter_funcs q (fun f ->
        List.iter
          (fun (blk : Func.block) ->
            blk.Func.insts <-
              List.concat_map
                (fun inst ->
                  match inst with
                  | Malloc (r, ty, n) ->
                      let s = !site in
                      incr site;
                      let w = DF.derive ~seed ~tag:(name ^ "/rx") ~replica:0 ~site:s in
                      let sz = DF.rand_in ~lo:32 ~hi:512 w in
                      let d = Func.fresh_reg f ~name:"nv_rx" (Ptr i8) in
                      [
                        Malloc (d, i8, Cint (W64, Int64.of_int sz));
                        Malloc (r, ty, n);
                        Free (Reg d);
                      ]
                  | other -> [ other ])
                blk.Func.insts)
          f.Func.blocks);
    Some q
end

(** Permute the emission order of the N replica allocations at each site:
    with first-fit placement, which replica allocates first decides which
    address it gets, so the (replica index -> address) correlation decays
    per site. *)
module Alloc_shuffle : DF.S = struct
  let name = "alloc-shuffle"
  let description = "seeded per-site shuffle of replica allocation order"

  type state = { seed : int64 }

  let prepare _prog ~seed ~replicas:_ = { seed }
  let alloc_pad _ ~replica:_ ~site:_ = 0
  let pre_alloc _ ~replica:_ ~site:_ _ _ _ = []
  let post_alloc _ ~replica:_ ~site:_ _ _ = ()

  let order st ~site ~n =
    (* Fisher-Yates driven by the derivation chain: position i swaps with
       a seeded j <= i, so the permutation is uniform over the words *)
    let p = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let w = DF.derive ~seed:st.seed ~tag:name ~replica:i ~site in
      let j = DF.rand_in ~lo:0 ~hi:i w in
      let t = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- t
    done;
    p

  let startup _ _ = ()

  (* No application-side analog: emission order of a single application
     allocation is the application's own. *)
  let rx_rewrite _prog ~seed:_ = None
end

(** Approximate per-replica segment bases: every allocation of replica k
    grows by one replica-constant pad (32..512 bytes, 16-byte aligned),
    shearing replica k's whole address space against the others.  An
    honest approximation — the simulator has one flat heap, so a true
    per-replica base register does not exist; DESIGN.md §13 documents
    the gap. *)
module Segment_base : DF.S = struct
  let name = "segment-base"
  let description = "replica-constant allocation displacement (segment-base shear)"

  type state = { pads : int array }

  let replica_pad seed k =
    let w = DF.derive ~seed ~tag:"segment-base" ~replica:k ~site:0 in
    DF.rand_in ~lo:2 ~hi:32 w * 16

  let prepare _prog ~seed ~replicas =
    { pads = Array.init replicas (replica_pad seed) }

  let alloc_pad st ~replica ~site:_ = st.pads.(replica)
  let pre_alloc _ ~replica:_ ~site:_ _ _ _ = []
  let post_alloc _ ~replica:_ ~site:_ _ _ = ()
  let order _ ~site:_ ~n = Array.init n Fun.id
  let startup _ _ = ()

  (* Application-side analog: shift every application request by the
     replica-0 constant. *)
  let rx_rewrite prog ~seed = pad_rewrite prog (replica_pad seed 0)
end

(** Per-(replica, site) request jitter: each replica allocation grows by
    0..128 bytes in 8-byte steps, decided independently per site — the
    Pad_malloc transform with a different, seeded pad at every
    (replica, site). *)
module Pad_jitter : DF.S = struct
  let name = "pad-jitter"
  let description = "seeded per-(replica, site) request padding (0..128 bytes)"

  type state = { seed : int64 }

  let prepare _prog ~seed ~replicas:_ = { seed }

  let alloc_pad st ~replica ~site =
    DF.rand_in ~lo:0 ~hi:16 (DF.derive ~seed:st.seed ~tag:name ~replica ~site) * 8

  let pre_alloc _ ~replica:_ ~site:_ _ _ _ = []
  let post_alloc _ ~replica:_ ~site:_ _ _ = ()
  let order _ ~site:_ ~n = Array.init n Fun.id
  let startup _ _ = ()

  (* Application-side analog: a mid-range (64-byte) program-wide pad. *)
  let rx_rewrite prog ~seed =
    pad_rewrite prog (DF.rand_in ~lo:8 ~hi:16 (DF.derive ~seed ~tag:"pad-jitter/rx" ~replica:0 ~site:0) * 8)
end

let all : DF.family list =
  [ (module Layout_perm); (module Alloc_shuffle); (module Segment_base); (module Pad_jitter) ]

let registered = ref false

(** Register every standard family (idempotent).  Entry points that
    accept family names — the CLI, the serving daemon, the tests — call
    this before resolving configurations. *)
let ensure () =
  if not !registered then begin
    registered := true;
    List.iter DF.register all
  end
