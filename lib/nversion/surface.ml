(** The (N, transform-family, fault-model) detection surface.

    The paper evaluates one replica under one diversity transformation;
    the N-version subsystem turns that point into a surface: replica
    count x family set x fault model.  This module is the surface's
    specification — the grid the harness figure sweeps, the
    configurations each grid point denotes, and the analysis helpers
    (detection conditions, the Equation 3.1-style linear overhead
    model) the figure reports against. *)

module Config = Dpmr_core.Config

(** Replica counts the surface sweeps. *)
let ns = [ 1; 2; 3 ]

(** Family sets per grid column: each standard family alone, plus the
    full stack. *)
let family_sets =
  [
    ("none", []);
    ("layout-perm", [ "layout-perm" ]);
    ("alloc-shuffle", [ "alloc-shuffle" ]);
    ("segment-base", [ "segment-base" ]);
    ("pad-jitter", [ "pad-jitter" ]);
    ("all-families", [ "layout-perm"; "alloc-shuffle"; "segment-base"; "pad-jitter" ]);
  ]

(** The configuration one grid point denotes.  Baseline diversity stays
    [No_diversity]: the surface isolates what the *families* and the
    replica count buy, on top of nothing. *)
let cfg ?(mode = Config.Sds) ?(vote = Config.Any_mismatch) ~n ~families () =
  { Config.default with Config.mode; replicas = n; families; vote }

(** When does a fault manifest as a detection at a grid point?  The
    §2.5-style condition, generalized across N and the voting rule. *)
let detection_condition ~n ~(vote : Config.vote) =
  match (n, vote) with
  | 1, _ -> "app diverges from its single replica at a checked load"
  | _, Config.Any_mismatch ->
      Printf.sprintf "app diverges from >= 1 of %d replicas at a checked load" n
  | _, Config.Majority ->
      Printf.sprintf "app diverges from > %d of %d replicas at a checked load" (n / 2) n

(** The naive linear cost model the measured per-replica overhead is
    compared against: replication work scales with N on top of the
    application's own share (Equation 3.1's ratio, extrapolated).
    [single] is the measured N=1 overhead ratio. *)
let linear_overhead ~n ~single = 1.0 +. (float_of_int n *. (single -. 1.0))
