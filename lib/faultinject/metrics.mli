(** Aggregate evaluation metrics (§3.6) over per-site classifications. *)

(** Stacked coverage components over successful injections — the CO /
    NatDet / DpmrDet bands of Figures 3.6–3.9. *)
type coverage = { n_sf : int; co : int; ndet : int; ddet : int }

val empty : coverage
val add : coverage -> Experiment.classification -> coverage
val of_list : Experiment.classification list -> coverage
val co_frac : coverage -> float
val ndet_frac : coverage -> float
val ddet_frac : coverage -> float

(** Total coverage: CO or natural or DPMR detection (Equation 3.2). *)
val total : coverage -> float

(** Mean detection latency over detected runs (Equation 3.4). *)
val mean_t2d : Experiment.classification list -> float option

val mean : float list -> float
