(** Compiler-based fault injection (§3.4).

    Faulty code is inserted into the input program *before* the DPMR
    transformation, exactly as a real software bug would be present, and
    executes every time the injected location executes (unlike one-shot
    runtime injectors, which the dissertation argues cannot model software
    memory faults).

    Two fault types are used for the evaluation:
    - {e heap array resize}: the request count at a heap array allocation
      site is reduced (by 50% in the experiments), leading to
      out-of-bounds accesses;
    - {e immediate free}: a heap buffer is deallocated immediately after
      allocation, leading to reads/writes/frees after free. *)

open Dpmr_ir
open Inst

type kind =
  | Heap_array_resize of int  (** percentage to *keep*, e.g. 50 *)
  | Immediate_free
  | Off_by_one
      (** request one element fewer — the classic fencepost under-allocation
          (an instance of §1.3's out-of-bounds class; extension beyond the
          two fault types of §3.4) *)
  | Wild_store of int
      (** displace one store site's address by a large byte offset — a wild
          pointer write (§1.3's wild-pointer class; extension) *)

let kind_name = function
  | Heap_array_resize p -> Printf.sprintf "heap-array-resize-%d%%" p
  | Immediate_free -> "immediate-free"
  | Off_by_one -> "off-by-one"
  | Wild_store off -> Printf.sprintf "wild-store+%d" off

type site = { func : string; block : string; index : int }
(** [index] = position of the malloc instruction within its block. *)

let site_name s = Printf.sprintf "%s/%s/%d" s.func s.block s.index

let is_array_malloc = function
  | Malloc (_, _, Cint (_, 1L)) -> false  (* single-object site *)
  | Malloc _ -> true
  | _ -> false

let is_malloc = function Malloc _ -> true | _ -> false

(** Enumerate injectable sites for a fault type: heap array resizes apply
    to heap *array* allocation sites, immediate frees to all heap
    allocation sites (§3.4). *)
(* Wild stores target non-pointer stores: displacing a *pointer* store
   would require shadow addressing for an i8-typed cell, which the §2.9
   typing restrictions forbid. *)
let is_store = function
  | Store (ty, _, _) -> not (Types.is_pointer ty)
  | _ -> false

let sites kind (p : Prog.t) =
  let pred =
    match kind with
    | Heap_array_resize _ | Off_by_one -> is_array_malloc
    | Immediate_free -> is_malloc
    | Wild_store _ -> is_store
  in
  let acc = ref [] in
  Prog.iter_funcs p (fun f ->
      List.iter
        (fun (b : Func.block) ->
          List.iteri
            (fun i inst ->
              if pred inst then
                acc := { func = f.Func.name; block = b.Func.label; index = i } :: !acc)
            b.Func.insts)
        f.Func.blocks);
  List.rev !acc

(** [apply p kind site] returns a clone of [p] with the fault enabled at
    [site].  The injected code calls [__fi_mark] so the harness can record
    the time of the first successful injection (Table 3.2's SF). *)
let apply (p : Prog.t) kind site =
  let q = Clone.prog p in
  let f = Prog.func q site.func in
  let b = Func.find_block f site.block in
  let mark = Call (None, Direct "__fi_mark", []) in
  let rewrite i inst =
    if i <> site.index then [ inst ]
    else
      match (inst, kind) with
      | Malloc (r, ty, n), Heap_array_resize pct ->
          (* n' = n * pct / 100, computed at runtime like the tool's
             enabled-at-runtime faulty code path *)
          let t1 = Func.fresh_reg f ~name:"fi_n1" Types.i64 in
          let t2 = Func.fresh_reg f ~name:"fi_n2" Types.i64 in
          [
            mark;
            Binop (t1, Mul, Types.W64, n, Cint (Types.W64, Int64.of_int pct));
            Binop (t2, Udiv, Types.W64, Reg t1, Cint (Types.W64, 100L));
            Malloc (r, ty, Reg t2);
          ]
      | Malloc (r, ty, n), Immediate_free ->
          [ mark; Malloc (r, ty, n); Free (Reg r) ]
      | Malloc (r, ty, n), Off_by_one ->
          let t = Func.fresh_reg f ~name:"fi_n" Types.i64 in
          [
            mark;
            Binop (t, Sub, Types.W64, n, Cint (Types.W64, 1L));
            Malloc (r, ty, Reg t);
          ]
      | Store (ty, v, p), Wild_store off ->
          let t = Func.fresh_reg f ~name:"fi_wild" (Types.Ptr Types.i8) in
          [
            mark;
            Gep_index (t, Types.i8, p, Cint (Types.W64, Int64.of_int off));
            Store (ty, v, Reg t);
          ]
      | _ ->
          invalid_arg
            (Printf.sprintf "Inject.apply: site %s does not match fault type %s"
               (site_name site) (kind_name kind))
  in
  b.Func.insts <- List.concat (List.mapi rewrite b.Func.insts);
  q
