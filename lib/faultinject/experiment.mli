(** Experiment runner: builds the §3.5 variants, runs them, classifies
    each run with the Table 3.2 random variables. *)

open Dpmr_ir
module Config = Dpmr_core.Config
module Outcome = Dpmr_vm.Outcome

type workload = {
  name : string;
  build : unit -> Prog.t;  (** fresh program per call; never mutated *)
  args : string list;
}

val workload : ?args:string list -> string -> (unit -> Prog.t) -> workload

(** The §3.5 variant classes. *)
type variant =
  | Golden
  | Fi_stdapp of Inject.kind * Inject.site
  | Nofi_dpmr of Config.t
  | Fi_dpmr of Config.t * Inject.kind * Inject.site

(** One run, classified (§3.6). *)
type classification = {
  sf : bool;  (** successful fault injection *)
  co : bool;  (** correct output (vs. the golden run) *)
  ndet : bool;  (** natural detection: crash / error exit *)
  ddet : bool;  (** DPMR detection *)
  timeout : bool;
  t2d : int64 option;  (** time to fault detection, cost units *)
  cost : int64;
  peak_heap : int;
}

(** One requested run of a supervised campaign: a real classification,
    or an explicit hole for a job the supervisor gave up on (deadline,
    quarantine, retries exhausted).  Figures render [Job_failed] as a
    marked gap — never a silent drop, never a batch abort. *)
type job_failure = {
  fail_reason : string;  (** supervisor classification, e.g. ["deadline"] *)
  fail_attempts : int;
  fail_error : string;  (** rendering of the last exception *)
}

type run_result = Run of classification | Job_failed of job_failure

val result_classification : run_result -> classification option

(** A variant's program, built and lowered once per {!prepare} call;
    callers that rerun a variant (reps, run-seed sweeps) reuse the
    result rather than rebuilding. *)
type prepared = {
  pprog : Prog.t;
  plowered : Dpmr_vm.Lower.prog;
  pmode : (Config.mode * int) option;
      (** [Some (mode, replicas)] iff the DPMR wrappers apply *)
}

type t = {
  wk : workload;
  base : Prog.t;
  golden : Outcome.run;
  budget : int64;  (** ~20x the golden cost (§3.6's timeout) *)
  seed : int64;
  diff_memo :
    ( variant * variant,
      (string, Dpmr_vm.Lower.func_diff) Hashtbl.t option )
    Hashtbl.t;
      (** {!plan_group}'s divergence-diff cache, keyed by (baseline,
          member) variant — diffs are pure functions of the variant
          pair, so cells differing only in run seed or budget share
          them.  Domain-local by construction (the engine keeps one
          experiment per domain). *)
}

(** Build the experiment context: verifies the program and takes the
    golden run (raises if it does not exit normally). *)
val make : ?seed:int64 -> workload -> t

val classify : t -> Outcome.run -> classification
val prepare : t -> variant -> prepared
val run_variant : ?seed:int64 -> t -> variant -> classification
val sites : t -> Inject.kind -> Inject.site list

val overheads_of_classification : t -> classification -> float * float
(** (runtime, memory) overhead ratios of an already-classified non-FI
    run against the golden run. *)

val overheads : t -> Config.t -> float * float
(** Both overhead ratios from a {e single} [Nofi_dpmr] run — use this
    when both are needed; [overhead] and [memory_overhead] each cost a
    full run. *)

(** Mean variant cost over golden cost, non-FI runs (Equation 3.1). *)
val overhead : t -> Config.t -> float

val memory_overhead : t -> Config.t -> float

(** [StdNotAllDet] for one fault: fi-stdapp produced incorrect output
    without natural detection. *)
val std_not_all_det : t -> Inject.kind -> Inject.site -> bool

(** {1 Snapshot/fork campaign execution}

    A campaign cell's members (same workload, seeds, budget and variant
    class) differ only by injection site: each one's executed
    instruction stream is bit-identical to the {e uninjected} baseline
    until it first reaches its own divergence position.  {!plan_group}
    runs one watched baseline per cell and captures a copy-on-write
    snapshot at the first arrival at any member's position; feasible
    members then {!run_member} by resuming from the capture instead of
    replaying the shared warmup.  Every infeasibility degrades to
    from-zero execution with identical results. *)

val run_prepared : ?seed:int64 -> t -> prepared -> classification

type member_plan =
  | Zero
  | Inherit of Outcome.run
  | Fork of Dpmr_vm.Vm.snapshot * (string, Dpmr_vm.Lower.func_diff) Hashtbl.t

type group = {
  g_variants : variant array;
  g_prepared : prepared array;
  g_plans : member_plan array;
}

(** Content hash of the snapshot member [i] forks from, when one was
    captured — a finer-grained cache-key component. *)
val member_snapshot_hash : group -> int -> int64 option

val plan_group : ?seed:int64 -> t -> variant array -> group
val run_member : ?seed:int64 -> t -> group -> int -> classification

val diff_memo_stats : unit -> int * int
(** Cumulative (process-wide) planner memo telemetry: (hits, misses) of
    the {!plan_group} divergence-diff cache, summed over every
    experiment and domain since process start. *)
