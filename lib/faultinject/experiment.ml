(** Experiment runner: builds variants (§3.5), runs them, and classifies
    each run with the Table 3.2 random variables. *)

open Dpmr_ir
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome

type workload = {
  name : string;
  build : unit -> Prog.t;  (** fresh program each call; never mutated by us *)
  args : string list;
}

let workload ?(args = [ "prog" ]) name build = { name; build; args }

(** Variant classes of §3.5.  [Golden] = unmodified, standard compilation;
    [Fi_stdapp] = fault injection only; [Nofi_dpmr] = DPMR only;
    [Fi_dpmr] = fault injection then DPMR. *)
type variant =
  | Golden
  | Fi_stdapp of Inject.kind * Inject.site
  | Nofi_dpmr of Config.t
  | Fi_dpmr of Config.t * Inject.kind * Inject.site

(** Classification of one run (Table 3.2 / §3.6). *)
type classification = {
  sf : bool;  (** successful fault injection: injected code executed *)
  co : bool;  (** correct output: output and exit match the golden run *)
  ndet : bool;  (** natural detection: crash or error-indicating exit *)
  ddet : bool;  (** DPMR detection *)
  timeout : bool;
  t2d : int64 option;  (** time to fault detection, cost units *)
  cost : int64;
  peak_heap : int;
}

(** What a supervised campaign records for one requested run: either a
    real classification, or an explicit hole.  A job the engine's
    supervisor gave up on (deadline, quarantine, retries exhausted) is
    carried through to the figures as [Job_failed] — a marked gap in the
    table, never a silent drop and never a batch abort. *)
type job_failure = {
  fail_reason : string;  (** supervisor classification, e.g. ["deadline"] *)
  fail_attempts : int;
  fail_error : string;  (** rendering of the last exception *)
}

type run_result = Run of classification | Job_failed of job_failure

let result_classification = function Run c -> Some c | Job_failed _ -> None

(** A variant's program, built and lowered once per {!prepare} call: the
    injection and DPMR transformation passes — and the VM's lowering —
    depend only on the variant, not on the run seed, so callers that
    rerun a variant (reps, seed sweeps) reuse the result.  Execution
    never mutates the program, so sharing across runs is safe. *)
type prepared = {
  pprog : Prog.t;
  plowered : Dpmr_vm.Lower.prog;
  pmode : (Config.mode * int) option;
      (** [Some (mode, replicas)] iff the DPMR wrappers apply *)
}

type t = {
  wk : workload;
  base : Prog.t;  (** pristine program *)
  golden : Outcome.run;  (** reference run for correct-output and budget *)
  budget : int64;  (** ~20x the golden running time (§3.6's timeout) *)
  seed : int64;
  diff_memo :
    ( variant * variant,
      (string, Dpmr_vm.Lower.func_diff) Hashtbl.t option )
    Hashtbl.t;
      (** {!Dpmr_vm.Lower.diff_limits} results by (baseline, member)
          variant — both programs are pure functions of their variant, so
          the structural diff is too.  Campaign cells differing only in
          run seed or budget re-plan the same diffs; unlike memoizing
          {!prepare} (deliberately avoided, see below), a diff table
          holds only the {e differing} functions' remaps, so retention
          across a sweep stays small.  The engine keeps experiments
          per-domain, so this table is never shared across domains. *)
}

let diff_memo_hits = Atomic.make 0
let diff_memo_misses = Atomic.make 0

(** Cumulative (process-wide) planner memo telemetry: (hits, misses) of
    the {!plan_group} divergence-diff cache. *)
let diff_memo_stats () = (Atomic.get diff_memo_hits, Atomic.get diff_memo_misses)

let make ?(seed = 42L) wk =
  let base = wk.build () in
  Verifier.check_prog base;
  let golden = Dpmr.run_plain ~seed ~args:wk.args base in
  if golden.Outcome.outcome <> Outcome.Normal then
    invalid_arg
      (Printf.sprintf "Experiment.make: golden run of %s did not exit normally (%s)"
         wk.name
         (Outcome.to_string golden.Outcome.outcome));
  let budget = Int64.mul 20L (Int64.max golden.Outcome.cost 10_000L) in
  { wk; base; golden; budget; seed; diff_memo = Hashtbl.create 64 }

let classify t (r : Outcome.run) =
  let co = r.Outcome.outcome = Outcome.Normal && r.Outcome.output = t.golden.Outcome.output in
  let ndet =
    (not co)
    && (match r.Outcome.outcome with
       | Outcome.Crash _ | Outcome.App_exit _ -> true
       | Outcome.Normal | Outcome.Dpmr_detect _ | Outcome.Timeout -> false)
  in
  let ddet = (not co) && Outcome.is_dpmr_detect r in
  let t2d =
    match ((ndet || ddet), r.Outcome.fi_first_cost) with
    | true, Some first -> Some (Int64.sub r.Outcome.cost first)
    | _ -> None
  in
  {
    sf = r.Outcome.fi_first_cost <> None;
    co;
    ndet;
    ddet;
    timeout = r.Outcome.outcome = Outcome.Timeout;
    t2d;
    cost = r.Outcome.cost;
    peak_heap = r.Outcome.peak_heap_bytes;
  }

(* Deliberately not memoized per variant: the engine schedules repeat
   runs of one variant consecutively inside a batch, so callers that
   need reuse hold on to the result themselves, and retaining every
   variant's build for the experiment's lifetime measurably slows full
   sweeps down (major-heap growth across thousands of variants). *)
let prepare t variant =
  let plain prog =
    { pprog = prog; plowered = Dpmr_vm.Lower.lower_prog prog; pmode = None }
  in
  let dpmr (cfg : Config.t) prog =
    let tp = Dpmr.transform cfg prog in
    {
      pprog = tp;
      plowered = Dpmr_vm.Lower.lower_prog tp;
      pmode = Some (cfg.Config.mode, cfg.Config.replicas);
    }
  in
  match variant with
  | Golden -> plain t.base
  | Fi_stdapp (kind, site) -> plain (Inject.apply t.base kind site)
  | Nofi_dpmr cfg -> dpmr cfg t.base
  | Fi_dpmr (cfg, kind, site) -> dpmr cfg (Inject.apply t.base kind site)

(** Run one variant to completion. *)
let run_variant ?seed t variant =
  let seed = Option.value seed ~default:t.seed in
  let p = prepare t variant in
  let r =
    match p.pmode with
    | None ->
        Dpmr.run_plain ~seed ~budget:t.budget ~args:t.wk.args
          ~lowered:p.plowered p.pprog
    | Some (mode, replicas) ->
        Dpmr.run_transformed ~seed ~budget:t.budget ~args:t.wk.args
          ~lowered:p.plowered ~mode ~replicas p.pprog
  in
  classify t r

(** All injectable sites of the pristine program for a fault type. *)
let sites t kind = Inject.sites kind t.base

(** Runtime and memory overhead ratios of a classified non-FI run
    against this experiment's golden run. *)
let overheads_of_classification t (c : classification) =
  ( Int64.to_float c.cost /. Int64.to_float t.golden.Outcome.cost,
    float_of_int c.peak_heap /. float_of_int t.golden.Outcome.peak_heap_bytes )

(** Both overhead ratios of a configuration from a single run. *)
let overheads t cfg = overheads_of_classification t (run_variant t (Nofi_dpmr cfg))

(** Overhead of a configuration on this workload: mean DPMR cost over mean
    golden cost, non-fault-injection runs (Equation 3.1). *)
let overhead t cfg = fst (overheads t cfg)

(** Memory overhead (peak heap) of a configuration. *)
let memory_overhead t cfg = snd (overheads t cfg)

(** [StdNotAllDet] for one fault: under the fi-stdapp variant the fault
    produced incorrect output without natural detection (the deterministic
    single-run reading of Table 3.2's definition). *)
let std_not_all_det t kind site =
  let c = run_variant t (Fi_stdapp (kind, site)) in
  c.sf && (not c.co) && not c.ndet

(* ------------------------------------------------------------------ *)
(* Snapshot/fork campaign execution                                    *)
(* ------------------------------------------------------------------ *)

(** Run an already-{!prepare}d variant from zero. *)
let run_prepared ?seed t p =
  let seed = Option.value seed ~default:t.seed in
  let r =
    match p.pmode with
    | None ->
        Dpmr.run_plain ~seed ~budget:t.budget ~args:t.wk.args
          ~lowered:p.plowered p.pprog
    | Some (mode, replicas) ->
        Dpmr.run_transformed ~seed ~budget:t.budget ~args:t.wk.args
          ~lowered:p.plowered ~mode ~replicas p.pprog
  in
  classify t r

(** How one member of a snapshot group executes. *)
type member_plan =
  | Zero  (** no usable shared prefix: run from zero *)
  | Inherit of Outcome.run
      (** the watched baseline ended without reaching this member's
          divergence frontier, so the member's run is bit-identical to
          the baseline's — this outcome {e is} the member's outcome *)
  | Fork of Dpmr.Vm.snapshot * (string, Dpmr_vm.Lower.func_diff) Hashtbl.t
      (** copy-on-write state captured at the member's frontier, plus
          the structural diff whose remaps translate the captured frames
          into the member's register/block numbering; the member resumes
          from it *)

type group = {
  g_variants : variant array;
  g_prepared : prepared array;
  g_plans : member_plan array;
}

let member_snapshot_hash g i =
  match g.g_plans.(i) with
  | Fork (snap, _) -> Some (Dpmr.Vm.snapshot_hash snap)
  | Zero | Inherit _ -> None

(** Plan one snapshot group: the members of a (workload, seeds, budget,
    variant-class) campaign cell.  Prepares every member, computes each
    one's structural divergence frontier against the class baseline —
    the same program {e without} the injection — and runs ONE watched
    baseline that captures the VM copy-on-write at the first arrival at
    each member's own frontier.  Execution up to a member's frontier is
    bit-identical to that member's from-zero run, so forks inherit the
    shared warmup instead of replaying it; members whose frontier is
    never reached inherit the baseline's entire outcome, and the
    baseline stops early once every member is resolved.  Anything that
    makes sharing unsound (differing globals or signatures, capture
    inside an extern callback, active tracing) degrades that member —
    or the whole plan — to from-zero execution: identical results, just
    no speedup. *)
let plan_group ?seed t variants =
  let seed = Option.value seed ~default:t.seed in
  let prepared = Array.map (prepare t) variants in
  let plans = Array.map (fun _ -> Zero) variants in
  let group = { g_variants = variants; g_prepared = prepared; g_plans = plans } in
  (* the cell is homogeneous by construction (one variant class, one
     config), so the first member names the baseline; Golden and
     Nofi_dpmr members diff empty against it and ride the baseline run
     as whole-outcome inherits *)
  let bv =
    match variants.(0) with
    | Golden | Fi_stdapp _ -> Golden
    | Nofi_dpmr cfg | Fi_dpmr (cfg, _, _) -> Nofi_dpmr cfg
  in
  let bp = prepare t bv in
  (let diff v p =
     (* both sides of the diff are pure functions of their variant, so
        the memo key is the variant pair; the tables are read-only after
        construction (remap lookups), safe to share across cells *)
     match Hashtbl.find_opt t.diff_memo (bv, v) with
     | Some d ->
         Atomic.incr diff_memo_hits;
         d
     | None ->
         Atomic.incr diff_memo_misses;
         let d = Dpmr_vm.Lower.diff_limits bp.plowered p.plowered in
         Hashtbl.replace t.diff_memo (bv, v) d;
         d
   in
   let diffs = Array.map2 diff variants prepared in
   let feas =
     List.filter
       (fun i -> diffs.(i) <> None)
       (List.init (Array.length variants) Fun.id)
   in
   if feas <> [] then
     let limitss =
       Array.of_list
         (List.map
            (fun i -> Dpmr_vm.Lower.limit_table (Option.get diffs.(i)))
            feas)
     in
     let watched () =
       match bp.pmode with
       | None ->
           Dpmr.watched_plain ~seed ~budget:t.budget ~args:t.wk.args
             ~lowered:bp.plowered bp.pprog limitss
       | Some (mode, replicas) ->
           Dpmr.watched_transformed ~seed ~budget:t.budget ~args:t.wk.args
             ~lowered:bp.plowered ~mode ~replicas bp.pprog limitss
     in
     match watched () with
     | results ->
         List.iteri
           (fun j i ->
             plans.(i) <-
               (match results.(j) with
               | Dpmr.Vm.Wsnap snap -> Fork (snap, Option.get diffs.(i))
               | Dpmr.Vm.Wshared r -> Inherit r
               | Dpmr.Vm.Wzero -> Zero))
           feas
     | exception Dpmr.Vm.Watch_infeasible -> ());
  group

(** Run member [i] of a planned group.  Deterministic — safe to re-run
    on supervisor retries — and bit-identical to
    [run_variant ~seed t g.g_variants.(i)]. *)
let run_member ?seed t g i =
  let seed = Option.value seed ~default:t.seed in
  let p = g.g_prepared.(i) in
  match g.g_plans.(i) with
  | Zero -> run_prepared ~seed t p
  | Inherit r -> classify t r
  | Fork (snap, diffs) ->
      let remap fname =
        match Hashtbl.find_opt diffs fname with
        | Some fd -> fd.Dpmr_vm.Lower.fd_remap
        | None -> None
      in
      let r =
        match p.pmode with
        | None ->
            Dpmr.resume_plain ~seed ~budget:t.budget ~lowered:p.plowered
              ~remap p.pprog snap
        | Some (mode, replicas) ->
            Dpmr.resume_transformed ~seed ~budget:t.budget ~lowered:p.plowered
              ~remap ~mode ~replicas p.pprog snap
      in
      classify t r
