(** Traced fault-injection runs: the bridge between {!Experiment} and the
    {!Dpmr_trace} forensics pass.

    [run_variant] repeats an {!Experiment.run_variant} with a trace sink
    installed for the duration of the run, analyzes the recorded events,
    and cross-checks the trace-derived corruption→detection distance
    against the classification's [t2d] (Equation 3.4): for a DPMR
    detection the distance is measured to the recorded detect event, for
    a natural detection (crash / error exit) to the end of the run —
    both must equal [cost - fi_first_cost] exactly, because the
    detection exception stops all cost accrual. *)

module Trace = Dpmr_trace.Trace
module Analysis = Dpmr_trace.Forensics

type traced = {
  classification : Experiment.classification;
  records : Trace.record array;
  report : Analysis.report;
  summary : Trace.summary;
  distance : int option;
      (** resolved corruption→detection distance: the trace's own for
          DPMR detections, run-end for natural ones, [None] for misses *)
  consistent : bool;  (** [distance] agrees exactly with [t2d] *)
}

let default_capacity = 1 lsl 19

let run_variant ?seed ?(capacity = default_capacity) ?(sample_every = 64) t
    variant =
  let sink = Trace.create ~capacity ~sample_every () in
  let classification =
    Trace.with_sink sink (fun () -> Experiment.run_variant ?seed t variant)
  in
  let records = Trace.snapshot sink in
  let report =
    Analysis.analyze ~heap_base:Dpmr_memsim.Mem.heap_base
      ~dropped:(Trace.dropped sink) records
  in
  (* the trace alone cannot distinguish a miss from a natural detection
     (both end without a detect event); the classification can *)
  let report =
    if
      classification.Experiment.ndet
      && report.Analysis.verdict <> Analysis.Detected
      && report.Analysis.verdict <> Analysis.Not_injected
    then { report with Analysis.verdict = Analysis.Detected_naturally }
    else report
  in
  let distance =
    match report.Analysis.distance with
    | Some d -> Some d
    | None -> (
        match report.Analysis.injected_at with
        | Some inj when classification.Experiment.ndet ->
            Some (Int64.to_int classification.Experiment.cost - inj)
        | _ -> None)
  in
  let consistent =
    match (classification.Experiment.t2d, distance) with
    | Some t2d, Some d -> Int64.to_int t2d = d
    | None, None -> true
    | _ -> false
  in
  {
    classification;
    records;
    report;
    summary = Trace.summary sink;
    distance;
    consistent;
  }

(** Short human label for the run's fate, folding the trace verdict into
    the §3.6 classification. *)
let fate (tr : traced) =
  let c = tr.classification in
  if not c.Experiment.sf then "not-triggered"
  else if c.Experiment.ddet then "dpmr-detect"
  else if c.Experiment.ndet then "natural-detect"
  else if c.Experiment.timeout then "timeout"
  else
    match tr.report.Analysis.verdict with
    | Analysis.Miss_no_comparison -> "miss (check never reached)"
    | Analysis.Miss_replica_agreed _ -> "miss (replica agreed)"
    | Analysis.Detected | Analysis.Detected_naturally | Analysis.Not_injected
      ->
        "miss"

(* ---------------- machine-readable report ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** One flat JSON object summarizing a traced run — the [forensics]
    payload of a serving-daemon verdict.  Human-oriented parts
    (corruption, verdict) reuse the report pretty-printers, so the wire
    text matches the [report forensics] grid exactly. *)
let to_json (tr : traced) =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let r = tr.report in
  add "{\"schema\":\"dpmr-forensics/1\"";
  add ",\"fate\":\"%s\"" (json_escape (fate tr));
  add ",\"verdict\":\"%s\"" (json_escape (Fmt.str "%a" Analysis.pp_verdict r.Analysis.verdict));
  (match r.Analysis.injected_at with
  | Some c -> add ",\"injected_at\":%d" c
  | None -> add ",\"injected_at\":null");
  (match r.Analysis.corruption with
  | Some c -> add ",\"corruption\":\"%s\"" (json_escape (Fmt.str "%a" Analysis.pp_corruption c))
  | None -> add ",\"corruption\":null");
  (match r.Analysis.first_bad_store with
  | Some (cost, c) ->
      add ",\"first_bad_store\":\"%s\",\"first_bad_store_at\":%d"
        (json_escape (Fmt.str "%a" Analysis.pp_corruption c))
        cost
  | None -> add ",\"first_bad_store\":null,\"first_bad_store_at\":null");
  (match r.Analysis.detection with
  | Some d ->
      add ",\"detected_what\":\"%s\",\"detected_at\":%d" (json_escape d.Analysis.what)
        d.Analysis.at_cost
  | None -> add ",\"detected_what\":null,\"detected_at\":null");
  (match tr.distance with
  | Some d -> add ",\"distance\":%d" d
  | None -> add ",\"distance\":null");
  add ",\"compares_after\":%d" r.Analysis.compares_after;
  add ",\"consistent\":%b" tr.consistent;
  add ",\"truncated\":%b" r.Analysis.truncated;
  add ",\"events\":%d,\"dropped\":%d" tr.summary.Trace.s_emitted tr.summary.Trace.s_dropped;
  add "}";
  Buffer.contents b
