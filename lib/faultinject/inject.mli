(** Compiler-based fault injection (§3.4).

    Faulty code is inserted into the input program {e before} the DPMR
    transformation, exactly as a real software bug would be present, and
    executes every time the injected location executes — the property
    one-shot runtime injectors lack.

    The dissertation's evaluation uses heap array resizes and immediate
    frees; [Off_by_one] and [Wild_store] extend the injector to the two
    remaining §1.3 error classes (out-of-bounds by-one and wild-pointer
    writes). *)

open Dpmr_ir

type kind =
  | Heap_array_resize of int  (** percentage of the request to keep *)
  | Immediate_free
  | Off_by_one  (** request one element fewer (extension) *)
  | Wild_store of int  (** displace a store by a byte offset (extension) *)

val kind_name : kind -> string

type site = { func : string; block : string; index : int }
(** [index] is the instruction's position within its block. *)

val site_name : site -> string

(** Injectable sites for a fault type: array allocation sites for
    resizes/off-by-one, all heap allocation sites for immediate frees,
    non-pointer store sites for wild stores. *)
val sites : kind -> Prog.t -> site list

(** Returns a clone of the program with the fault enabled at one site;
    the injected code calls [__fi_mark] so the harness records the time
    of the first successful injection. *)
val apply : Prog.t -> kind -> site -> Prog.t
