(** Aggregate evaluation metrics (§3.6): coverage, conditional coverage,
    overhead, detection latency — computed over the per-site
    classifications produced by {!Experiment}. *)

(** Stacked coverage components over a set of successful injections: the
    fractions correspond to the blue (CO), yellow (NatDet) and green
    (DpmrDet) bands of Figures 3.6–3.9. *)
type coverage = {
  n_sf : int;  (** successful injections considered *)
  co : int;
  ndet : int;
  ddet : int;
}

let empty = { n_sf = 0; co = 0; ndet = 0; ddet = 0 }

let add cov (c : Experiment.classification) =
  if not c.Experiment.sf then cov
  else
    {
      n_sf = cov.n_sf + 1;
      co = (cov.co + if c.Experiment.co then 1 else 0);
      ndet = (cov.ndet + if c.Experiment.ndet then 1 else 0);
      ddet = (cov.ddet + if c.Experiment.ddet then 1 else 0);
    }

let of_list cs = List.fold_left add empty cs

let frac num cov = if cov.n_sf = 0 then 0.0 else float_of_int num /. float_of_int cov.n_sf
let co_frac cov = frac cov.co cov
let ndet_frac cov = frac cov.ndet cov
let ddet_frac cov = frac cov.ddet cov

(** Total coverage: CO or natural detection or DPMR detection
    (Equation 3.2). *)
let total cov = co_frac cov +. ndet_frac cov +. ddet_frac cov

(** Mean detection latency over runs with a detection (Equation 3.4),
    in cost units; [None] when nothing was detected. *)
let mean_t2d (cs : Experiment.classification list) =
  let lats = List.filter_map (fun c -> c.Experiment.t2d) cs in
  match lats with
  | [] -> None
  | _ ->
      let sum = List.fold_left (fun a l -> a +. Int64.to_float l) 0.0 lats in
      Some (sum /. float_of_int (List.length lats))

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
