(** Textual IR: a parseable serialization of whole programs.

    [emit] and [parse] round-trip: for any well-formed program [p],
    [parse (emit p)] is a program with identical behaviour (the test
    suite checks output- and cost-equality over every workload and over
    randomly generated programs).

    Grammar (informal):
    {v
      item    := struct NAME { ty, ... } | union NAME { ty, ... }
               | global NAME : ty [= ginit]
               | extern NAME : ty ( ty, ... [, ...] )
               | func [vararg] @NAME ( %NAME : ty, ... ) : ty { block+ }
      block   := LABEL: inst* term
      inst    := %NAME : ty = rhs | store ty OPERAND, OPERAND
               | free OPERAND | call CALLEE (OPERAND, ...)
      term    := br LABEL | cbr OPERAND, LABEL, LABEL | ret [OPERAND]
               | unreachable
      ty      := (i8|i16|i32|i64|f64|void|%NAME|[N x ty]|fn(ty,...[,...] -> ty)) '*'*
      operand := %NAME | INT[:iN] | FLOAT | null ty | @NAME | &NAME
    v} *)

open Types
open Inst

exception Parse_error of int * string

let fail line fmt = Fmt.kstr (fun m -> raise (Parse_error (line, m))) fmt

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let rec emit_ty tenv buf t =
  match t with
  | Int w -> Buffer.add_string buf (Printf.sprintf "i%d" (bits_of_width w))
  | Float -> Buffer.add_string buf "f64"
  | Void -> Buffer.add_string buf "void"
  | Ptr e ->
      emit_ty tenv buf e;
      Buffer.add_char buf '*'
  | Arr (e, n) ->
      Buffer.add_string buf (Printf.sprintf "[%d x " n);
      emit_ty tenv buf e;
      Buffer.add_char buf ']'
  | Struct n | Union n ->
      Buffer.add_char buf '%';
      Buffer.add_string buf n
  | Fun ft ->
      (* fn(params -> ret): the closing paren disambiguates '*' suffixes *)
      Buffer.add_string buf "fn(";
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_ty tenv buf p)
        ft.params;
      if ft.vararg then
        Buffer.add_string buf (if ft.params = [] then "..." else ", ...");
      Buffer.add_string buf " -> ";
      emit_ty tenv buf ft.ret;
      Buffer.add_char buf ')'

let ty_str tenv t =
  let b = Buffer.create 16 in
  emit_ty tenv b t;
  Buffer.contents b

let emit_operand tenv f buf o =
  ignore f;
  match o with
  | Reg r -> Buffer.add_string buf (Printf.sprintf "%%r%d" r)
  | Cint (w, v) -> Buffer.add_string buf (Printf.sprintf "%Ld:i%d" v (bits_of_width w))
  | Cfloat x ->
      let s = Printf.sprintf "%h" x in
      Buffer.add_string buf s
  | Null t -> Buffer.add_string buf (Printf.sprintf "null %s" (ty_str tenv t))
  | Global g -> Buffer.add_string buf ("@" ^ g)
  | Fun_addr fn -> Buffer.add_string buf ("&" ^ fn)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | Udiv -> "udiv" | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let fbinop_name = function Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let icond_name = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle" | Isgt -> "sgt"
  | Isge -> "sge" | Iult -> "ult" | Iule -> "ule" | Iugt -> "ugt" | Iuge -> "uge"

let fcond_name = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole" | Fogt -> "ogt"
  | Foge -> "oge"

let emit_inst tenv (f : Func.t) buf inst =
  let op o = emit_operand tenv f buf o in
  let def r =
    Buffer.add_string buf
      (Printf.sprintf "%%r%d : %s = " r (ty_str tenv (Func.reg_ty f r)))
  in
  let str s = Buffer.add_string buf s in
  (match inst with
  | Malloc (r, t, n) ->
      def r;
      str (Printf.sprintf "malloc %s, " (ty_str tenv t));
      op n
  | Alloca (r, t, n) ->
      def r;
      str (Printf.sprintf "alloca %s, " (ty_str tenv t));
      op n
  | Free p ->
      str "free ";
      op p
  | Load (r, t, p) ->
      def r;
      str (Printf.sprintf "load %s, " (ty_str tenv t));
      op p
  | Store (t, v, p) ->
      str (Printf.sprintf "store %s " (ty_str tenv t));
      op v;
      str ", ";
      op p
  | Gep_field (r, s, p, i) ->
      def r;
      str (Printf.sprintf "gepf %%%s, " s);
      op p;
      str (Printf.sprintf ", %d" i)
  | Gep_index (r, e, p, i) ->
      def r;
      str (Printf.sprintf "gepi %s, " (ty_str tenv e));
      op p;
      str ", ";
      op i
  | Bitcast (r, _, p) ->
      def r;
      str "bitcast ";
      op p
  | Ptr_to_int (r, p) ->
      def r;
      str "ptrtoint ";
      op p
  | Int_to_ptr (r, _, v) ->
      def r;
      str "inttoptr ";
      op v
  | Binop (r, o, w, a, b) ->
      def r;
      str (Printf.sprintf "%s i%d " (binop_name o) (bits_of_width w));
      op a;
      str ", ";
      op b
  | Fbinop (r, o, a, b) ->
      def r;
      str (fbinop_name o ^ " ");
      op a;
      str ", ";
      op b
  | Icmp (r, c, w, a, b) ->
      def r;
      str (Printf.sprintf "icmp %s i%d " (icond_name c) (bits_of_width w));
      op a;
      str ", ";
      op b
  | Fcmp (r, c, a, b) ->
      def r;
      str (Printf.sprintf "fcmp %s " (fcond_name c));
      op a;
      str ", ";
      op b
  | Int_cast (r, _, signed, v) ->
      def r;
      str (Printf.sprintf "icast %s " (if signed then "signed" else "unsigned"));
      op v
  | F_to_i (r, _, v) ->
      def r;
      str "fptosi ";
      op v
  | I_to_f (r, _, v) ->
      def r;
      str "sitofp ";
      op v
  | Select (r, t, c, a, b) ->
      def r;
      str (Printf.sprintf "select %s " (ty_str tenv t));
      op c;
      str ", ";
      op a;
      str ", ";
      op b
  | Call (r, callee, args) ->
      (match r with Some r -> def r | None -> str "call_void ");
      (match callee with
      | Direct n -> str (Printf.sprintf "call %s(" n)
      | Indirect o ->
          str "call *";
          op o;
          str "(");
      List.iteri
        (fun i a ->
          if i > 0 then str ", ";
          op a)
        args;
      str ")");
  Buffer.add_char buf '\n'

let emit_term tenv f buf term =
  let op o = emit_operand tenv f buf o in
  (match term with
  | Br l -> Buffer.add_string buf (Printf.sprintf "br %s" l)
  | Cbr (c, l1, l2) ->
      Buffer.add_string buf "cbr ";
      op c;
      Buffer.add_string buf (Printf.sprintf ", %s, %s" l1 l2)
  | Ret None -> Buffer.add_string buf "ret"
  | Ret (Some o) ->
      Buffer.add_string buf "ret ";
      op o
  | Unreachable -> Buffer.add_string buf "unreachable");
  Buffer.add_char buf '\n'

let rec emit_ginit buf (g : Prog.ginit) =
  match g with
  | Prog.Gzero -> Buffer.add_string buf "zero"
  | Prog.Gint v -> Buffer.add_string buf (Int64.to_string v)
  | Prog.Gfloat x -> Buffer.add_string buf (Printf.sprintf "%h" x)
  | Prog.Gptr_null -> Buffer.add_string buf "null"
  | Prog.Gptr_global g -> Buffer.add_string buf ("@" ^ g)
  | Prog.Gptr_fun f -> Buffer.add_string buf ("&" ^ f)
  | Prog.Gstring s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Prog.Gagg gs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i gi ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_ginit buf gi)
        gs;
      Buffer.add_char buf '}'

let emit (p : Prog.t) =
  let buf = Buffer.create 4096 in
  let tenv = p.Prog.tenv in
  (* deterministic order: sort names (hashtable iteration is unordered) *)
  let typedefs =
    List.sort compare
      (let acc = ref [] in
       Tenv.iter tenv (fun name body -> acc := (name, body) :: !acc);
       !acc)
  in
  List.iter (fun (name, (body : agg_body)) ->
      Buffer.add_string buf (if body.is_union then "union " else "struct ");
      Buffer.add_string buf name;
      Buffer.add_string buf " { ";
      List.iteri
        (fun i fty ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_ty tenv buf fty)
        body.fields;
      Buffer.add_string buf " }\n")
    typedefs;
  Prog.iter_globals p (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global %s : %s = " g.Prog.gname (ty_str tenv g.Prog.gty));
      emit_ginit buf g.Prog.ginit;
      Buffer.add_char buf '\n');
  let externs =
    List.sort compare
      (Hashtbl.fold (fun name ft acc -> (name, ft) :: acc) p.Prog.externs [])
  in
  List.iter
    (fun (name, (ft : fun_ty)) ->
      Buffer.add_string buf (Printf.sprintf "extern %s : %s (" name (ty_str tenv ft.ret));
      List.iteri
        (fun i pt ->
          if i > 0 then Buffer.add_string buf ", ";
          emit_ty tenv buf pt)
        ft.params;
      if ft.vararg then
        Buffer.add_string buf (if ft.params = [] then "..." else ", ...");
      Buffer.add_string buf ")\n")
    externs;
  Prog.iter_funcs p (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "func%s @%s ("
           (if f.Func.vararg then " vararg" else "")
           f.Func.name);
      List.iteri
        (fun i (r, ty) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "%%r%d : %s" r (ty_str tenv ty)))
        f.Func.params;
      Buffer.add_string buf (Printf.sprintf ") : %s {\n" (ty_str tenv f.Func.ret));
      List.iter
        (fun (b : Func.block) ->
          Buffer.add_string buf (b.Func.label ^ ":\n");
          List.iter
            (fun inst ->
              Buffer.add_string buf "  ";
              emit_inst tenv f buf inst)
            b.Func.insts;
          Buffer.add_string buf "  ";
          emit_term tenv f buf b.Func.term)
        f.Func.blocks;
      Buffer.add_string buf "}\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string  (* bare identifier / keyword *)
  | Treg of string  (* %name *)
  | Tglobal of string  (* @name *)
  | Tfun_addr of string  (* &name *)
  | Tint of int64
  | Tfloat of float
  | Tstring of string
  | Tpunct of char  (* ( ) { } [ ] , : * = *)
  | Tarrow  (* -> *)
  | Tellipsis  (* ... *)

let is_id_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '/'

(* Tokenize one line (comments run from '#' to end of line). *)
let tokenize_line lineno s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then begin
      push Tarrow;
      i := !i + 2
    end
    else if c = '.' && !i + 2 < n && s.[!i + 1] = '.' && s.[!i + 2] = '.' then begin
      push Tellipsis;
      i := !i + 3
    end
    else if c = '%' || c = '@' || c = '&' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_id_char s.[!j] do
        incr j
      done;
      if !j = start then fail lineno "empty name after '%c'" c;
      let name = String.sub s start (!j - start) in
      push
        (match c with
        | '%' -> Treg name
        | '@' -> Tglobal name
        | _ -> Tfun_addr name);
      i := !j
    end
    else if c = '"' then begin
      (* OCaml-escaped string literal *)
      let j = ref (!i + 1) in
      let b = Buffer.create 8 in
      let rec scan () =
        if !j >= n then fail lineno "unterminated string"
        else if s.[!j] = '"' then ()
        else if s.[!j] = '\\' && !j + 1 < n then begin
          (match s.[!j + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | '\\' -> Buffer.add_char b '\\'
          | '"' -> Buffer.add_char b '"'
          | 'x' when !j + 3 < n ->
              Buffer.add_char b
                (Char.chr (int_of_string ("0x" ^ String.sub s (!j + 2) 2)));
              j := !j + 2
          | d when d >= '0' && d <= '9' && !j + 3 < n ->
              Buffer.add_char b (Char.chr (int_of_string (String.sub s (!j + 1) 3)));
              j := !j + 2
          | c2 -> fail lineno "bad escape \\%c" c2);
          j := !j + 2;
          scan ()
        end
        else begin
          Buffer.add_char b s.[!j];
          incr j;
          scan ()
        end
      in
      scan ();
      push (Tstring (Buffer.contents b));
      i := !j + 1
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let start = !i in
      let j = ref (!i + 1) in
      while
        !j < n
        && (is_id_char s.[!j] || s.[!j] = '+' || s.[!j] = '-' || s.[!j] = 'x'
           || s.[!j] = 'p')
      do
        incr j
      done;
      (* trailing ":iN" width suffix is handled by the grammar, stop at ':' *)
      let lit = String.sub s start (!j - start) in
      (match (Int64.of_string_opt lit, float_of_string_opt lit) with
      | Some v, _ when not (String.contains lit '.' || String.contains lit 'p') ->
          push (Tint v)
      | _, Some f -> push (Tfloat f)
      | Some v, None -> push (Tint v)
      | None, None -> fail lineno "bad numeric literal %S" lit);
      i := !j
    end
    else if is_id_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_id_char s.[!j] do
        incr j
      done;
      push (Tid (String.sub s start (!j - start)));
      i := !j
    end
    else
      match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ':' | '*' | '=' ->
          push (Tpunct c);
          incr i
      | _ -> fail lineno "unexpected character %C" c
  done;
  List.rev !toks

(* token-stream cursor *)
type cursor = { mutable toks : token list; line : int }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let next c =
  match c.toks with
  | [] -> fail c.line "unexpected end of line"
  | t :: rest ->
      c.toks <- rest;
      t

let expect_punct c ch =
  match next c with
  | Tpunct p when p = ch -> ()
  | _ -> fail c.line "expected %C" ch

let expect_id c s =
  match next c with
  | Tid i when i = s -> ()
  | _ -> fail c.line "expected %S" s

let ident c =
  match next c with Tid s -> s | _ -> fail c.line "expected identifier"

let width_of_name line = function
  | "i8" -> W8
  | "i16" -> W16
  | "i32" -> W32
  | "i64" -> W64
  | s -> fail line "expected integer type, got %S" s

(* parse a type; [kind_of] resolves a %name to struct-or-union *)
let rec parse_ty c kind_of =
  let base =
    match next c with
    | Tid "i8" -> Int W8
    | Tid "i16" -> Int W16
    | Tid "i32" -> Int W32
    | Tid "i64" -> Int W64
    | Tid "f64" -> Float
    | Tid "void" -> Void
    | Treg name -> if kind_of name then Union name else Struct name
    | Tpunct '[' ->
        let n =
          match next c with
          | Tint v -> Int64.to_int v
          | _ -> fail c.line "expected array length"
        in
        expect_id c "x";
        let e = parse_ty c kind_of in
        expect_punct c ']';
        Arr (e, n)
    | Tid "fn" ->
        expect_punct c '(';
        let params = ref [] in
        let vararg = ref false in
        let done_params = ref false in
        let rec params_loop first =
          if not !done_params then
            match peek c with
            | Some Tarrow ->
                ignore (next c);
                done_params := true
            | Some (Tpunct ',') when not first ->
                ignore (next c);
                params_loop true
            | Some Tellipsis ->
                ignore (next c);
                vararg := true;
                params_loop false
            | Some _ ->
                params := parse_ty c kind_of :: !params;
                params_loop false
            | None -> fail c.line "unterminated function type"
        in
        params_loop true;
        let ret = parse_ty c kind_of in
        expect_punct c ')';
        Fun { ret; params = List.rev !params; vararg = !vararg }
    | t ->
        ignore t;
        fail c.line "expected a type"
  in
  let rec stars t =
    match peek c with
    | Some (Tpunct '*') ->
        ignore (next c);
        stars (Ptr t)
    | _ -> t
  in
  stars base

(* ginit *)
let rec parse_ginit c =
  match next c with
  | Tid "zero" -> Prog.Gzero
  | Tid "null" -> Prog.Gptr_null
  | Tint v -> Prog.Gint v
  | Tfloat x -> Prog.Gfloat x
  | Tglobal g -> Prog.Gptr_global g
  | Tfun_addr f -> Prog.Gptr_fun f
  | Tstring s -> Prog.Gstring s
  | Tpunct '{' ->
      let items = ref [] in
      let rec loop first =
        match peek c with
        | Some (Tpunct '}') -> ignore (next c)
        | Some (Tpunct ',') when not first ->
            ignore (next c);
            loop true
        | Some _ ->
            items := parse_ginit c :: !items;
            loop false
        | None -> fail c.line "unterminated initializer"
      in
      loop true;
      Prog.Gagg (List.rev !items)
  | _ -> fail c.line "expected initializer"

type fn_parse_state = {
  func : Func.t;
  regmap : (string, reg) Hashtbl.t;  (* textual name -> register *)
}

let parse_operand st c kind_of =
  match next c with
  | Treg name -> (
      match Hashtbl.find_opt st.regmap name with
      | Some r -> Reg r
      | None -> fail c.line "use of undefined register %%%s" name)
  | Tint v -> (
      (* optional :iN suffix; default i64 *)
      match peek c with
      | Some (Tpunct ':') ->
          ignore (next c);
          let w = width_of_name c.line (ident c) in
          Cint (w, v)
      | _ -> Cint (W64, v))
  | Tfloat x -> Cfloat x
  | Tid "null" ->
      let t = parse_ty c kind_of in
      Null t
  | Tglobal g -> Global g
  | Tfun_addr f -> Fun_addr f
  | _ -> fail c.line "expected operand"

let parse_args st c kind_of =
  expect_punct c '(';
  let args = ref [] in
  let rec loop first =
    match peek c with
    | Some (Tpunct ')') -> ignore (next c)
    | Some (Tpunct ',') when not first ->
        ignore (next c);
        loop true
    | Some _ ->
        args := parse_operand st c kind_of :: !args;
        loop false
    | None -> fail c.line "unterminated argument list"
  in
  loop true;
  List.rev !args

let binop_of = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul | "sdiv" -> Some Sdiv
  | "srem" -> Some Srem | "udiv" -> Some Udiv | "urem" -> Some Urem
  | "and" -> Some And | "or" -> Some Or | "xor" -> Some Xor | "shl" -> Some Shl
  | "lshr" -> Some Lshr | "ashr" -> Some Ashr | _ -> None

let fbinop_of = function
  | "fadd" -> Some Fadd | "fsub" -> Some Fsub | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv | _ -> None

let icond_of line = function
  | "eq" -> Ieq | "ne" -> Ine | "slt" -> Islt | "sle" -> Isle | "sgt" -> Isgt
  | "sge" -> Isge | "ult" -> Iult | "ule" -> Iule | "ugt" -> Iugt | "uge" -> Iuge
  | s -> fail line "unknown icmp condition %S" s

let fcond_of line = function
  | "oeq" -> Foeq | "one" -> Fone | "olt" -> Folt | "ole" -> Fole | "ogt" -> Fogt
  | "oge" -> Foge
  | s -> fail line "unknown fcmp condition %S" s

(* parse the right-hand side of a definition "%x : ty = ..." *)
let parse_rhs st c kind_of dst dst_ty =
  let opnd () = parse_operand st c kind_of in
  let comma () = expect_punct c ',' in
  match ident c with
  | "malloc" ->
      let t = parse_ty c kind_of in
      comma ();
      Malloc (dst, t, opnd ())
  | "alloca" ->
      let t = parse_ty c kind_of in
      comma ();
      Alloca (dst, t, opnd ())
  | "load" ->
      let t = parse_ty c kind_of in
      comma ();
      Load (dst, t, opnd ())
  | "gepf" -> (
      match next c with
      | Treg sname ->
          comma ();
          let p = opnd () in
          comma ();
          let i =
            match next c with
            | Tint v -> Int64.to_int v
            | _ -> fail c.line "expected field index"
          in
          Gep_field (dst, sname, p, i)
      | _ -> fail c.line "expected struct name after gepf")
  | "gepi" ->
      let e = parse_ty c kind_of in
      comma ();
      let p = opnd () in
      comma ();
      Gep_index (dst, e, p, opnd ())
  | "bitcast" -> Bitcast (dst, dst_ty, opnd ())
  | "ptrtoint" -> Ptr_to_int (dst, opnd ())
  | "inttoptr" -> Int_to_ptr (dst, dst_ty, opnd ())
  | "icmp" ->
      let cond = icond_of c.line (ident c) in
      let w = width_of_name c.line (ident c) in
      let a = opnd () in
      comma ();
      Icmp (dst, cond, w, a, opnd ())
  | "fcmp" ->
      let cond = fcond_of c.line (ident c) in
      let a = opnd () in
      comma ();
      Fcmp (dst, cond, a, opnd ())
  | "icast" ->
      let signed =
        match ident c with
        | "signed" -> true
        | "unsigned" -> false
        | s -> fail c.line "expected signed/unsigned, got %S" s
      in
      let w = match dst_ty with Int w -> w | _ -> fail c.line "icast needs int dst" in
      Int_cast (dst, w, signed, opnd ())
  | "fptosi" ->
      let w = match dst_ty with Int w -> w | _ -> fail c.line "fptosi needs int dst" in
      F_to_i (dst, w, opnd ())
  | "sitofp" -> I_to_f (dst, W64, opnd ())
  | "select" ->
      let t = parse_ty c kind_of in
      let cnd = opnd () in
      comma ();
      let a = opnd () in
      comma ();
      Select (dst, t, cnd, a, opnd ())
  | "call" -> (
      match peek c with
      | Some (Tpunct '*') ->
          ignore (next c);
          let callee = opnd () in
          Call (Some dst, Indirect callee, parse_args st c kind_of)
      | _ ->
          (* bind before parse_args: argument evaluation order *)
          let callee = ident c in
          Call (Some dst, Direct callee, parse_args st c kind_of))
  | name -> (
      match (binop_of name, fbinop_of name) with
      | Some o, _ ->
          let w = width_of_name c.line (ident c) in
          let a = opnd () in
          comma ();
          Binop (dst, o, w, a, opnd ())
      | None, Some o ->
          let a = opnd () in
          comma ();
          Fbinop (dst, o, a, opnd ())
      | None, None -> fail c.line "unknown instruction %S" name)

(** Parse a whole program from its textual form. *)
let parse (text : string) : Prog.t =
  let lines = String.split_on_char '\n' text in
  let prog = Prog.create () in
  let tenv = prog.Prog.tenv in
  (* pass 1: register struct/union names so types resolve *)
  let union_names = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokenize_line lineno line with
      | Tid "struct" :: Tid name :: _ -> Tenv.declare_struct tenv name
      | Tid "union" :: Tid name :: _ ->
          Tenv.declare_struct tenv name;
          Hashtbl.replace union_names name ()
      | _ -> ())
    lines;
  let kind_of name = Hashtbl.mem union_names name in
  (* pass 2 *)
  let cur_fn : fn_parse_state option ref = ref None in
  let cur_block : Func.block option ref = ref None in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let toks = tokenize_line lineno line in
      if toks <> [] then
        let c = { toks; line = lineno } in
        match (peek c, !cur_fn) with
        | Some (Tid "struct"), None | Some (Tid "union"), None ->
            let is_union = ident c = "union" in
            let name = ident c in
            expect_punct c '{';
            let fields = ref [] in
            let rec loop first =
              match peek c with
              | Some (Tpunct '}') -> ignore (next c)
              | Some (Tpunct ',') when not first ->
                  ignore (next c);
                  loop true
              | Some _ ->
                  fields := parse_ty c kind_of :: !fields;
                  loop false
              | None -> fail lineno "unterminated field list"
            in
            loop true;
            if is_union then Tenv.define_union tenv name (List.rev !fields)
            else Tenv.define_struct tenv name (List.rev !fields)
        | Some (Tid "global"), None ->
            ignore (next c);
            let name = ident c in
            expect_punct c ':';
            let ty = parse_ty c kind_of in
            let ginit =
              match peek c with
              | Some (Tpunct '=') ->
                  ignore (next c);
                  parse_ginit c
              | _ -> Prog.Gzero
            in
            Prog.add_global prog { Prog.gname = name; gty = ty; ginit }
        | Some (Tid "extern"), None ->
            ignore (next c);
            let name = ident c in
            expect_punct c ':';
            let ret = parse_ty c kind_of in
            expect_punct c '(';
            let params = ref [] in
            let vararg = ref false in
            let rec loop first =
              match peek c with
              | Some (Tpunct ')') -> ignore (next c)
              | Some (Tpunct ',') when not first ->
                  ignore (next c);
                  loop true
              | Some Tellipsis ->
                  ignore (next c);
                  vararg := true;
                  expect_punct c ')'
              | Some _ ->
                  params := parse_ty c kind_of :: !params;
                  loop false
              | None -> fail lineno "unterminated extern params"
            in
            loop true;
            Prog.declare_extern prog name
              { ret; params = List.rev !params; vararg = !vararg }
        | Some (Tid "func"), None ->
            ignore (next c);
            let vararg =
              match peek c with
              | Some (Tid "vararg") ->
                  ignore (next c);
                  true
              | _ -> false
            in
            let name =
              match next c with
              | Tglobal n -> n
              | _ -> fail lineno "expected @name after func"
            in
            expect_punct c '(';
            let params = ref [] in
            let rec loop first =
              match peek c with
              | Some (Tpunct ')') -> ignore (next c)
              | Some (Tpunct ',') when not first ->
                  ignore (next c);
                  loop true
              | Some (Treg pname) ->
                  ignore (next c);
                  expect_punct c ':';
                  let ty = parse_ty c kind_of in
                  params := (pname, ty) :: !params;
                  loop false
              | _ -> fail lineno "expected %%name : ty parameter"
            in
            loop true;
            expect_punct c ':';
            let ret = parse_ty c kind_of in
            expect_punct c '{';
            let params = List.rev !params in
            let func = Func.create ~name ~params ~ret ~vararg () in
            Prog.add_func prog func;
            let regmap = Hashtbl.create 32 in
            List.iteri
              (fun idx (pname, _) -> Hashtbl.replace regmap pname (fst (List.nth func.Func.params idx)))
              params;
            cur_fn := Some { func; regmap };
            cur_block := None
        | Some (Tpunct '}'), Some _ ->
            cur_fn := None;
            cur_block := None
        | Some _, Some st -> (
            (* inside a function: label, instruction, or terminator *)
            let append_inst inst =
              match !cur_block with
              | Some b -> b.Func.insts <- b.Func.insts @ [ inst ]
              | None -> fail lineno "instruction outside any block"
            in
            let set_term t =
              match !cur_block with
              | Some b -> b.Func.term <- t
              | None -> fail lineno "terminator outside any block"
            in
            match c.toks with
            | [ Tid label; Tpunct ':' ] ->
                cur_block := Some (Func.add_block st.func label)
            | Treg _ :: _ -> (
                match next c with
                | Treg dname ->
                    expect_punct c ':';
                    let dty = parse_ty c kind_of in
                    expect_punct c '=';
                    let dst = Func.fresh_reg st.func ~name:dname dty in
                    Hashtbl.replace st.regmap dname dst;
                    append_inst (parse_rhs st c kind_of dst dty)
                | _ -> assert false)
            | Tid "store" :: _ ->
                ignore (next c);
                let t = parse_ty c kind_of in
                let v = parse_operand st c kind_of in
                expect_punct c ',';
                append_inst (Store (t, v, parse_operand st c kind_of))
            | Tid "free" :: _ ->
                ignore (next c);
                append_inst (Free (parse_operand st c kind_of))
            | Tid "call_void" :: _ -> (
                ignore (next c);
                expect_id c "call";
                match peek c with
                | Some (Tpunct '*') ->
                    ignore (next c);
                    let callee = parse_operand st c kind_of in
                    append_inst (Call (None, Indirect callee, parse_args st c kind_of))
                | _ ->
                    let n = ident c in
                    append_inst (Call (None, Direct n, parse_args st c kind_of)))
            | Tid "call" :: _ -> (
                ignore (next c);
                match peek c with
                | Some (Tpunct '*') ->
                    ignore (next c);
                    let callee = parse_operand st c kind_of in
                    append_inst (Call (None, Indirect callee, parse_args st c kind_of))
                | _ ->
                    let n = ident c in
                    append_inst (Call (None, Direct n, parse_args st c kind_of)))
            | Tid "br" :: _ ->
                ignore (next c);
                set_term (Br (ident c))
            | Tid "cbr" :: _ ->
                ignore (next c);
                let o = parse_operand st c kind_of in
                expect_punct c ',';
                let l1 = ident c in
                expect_punct c ',';
                set_term (Cbr (o, l1, ident c))
            | Tid "ret" :: _ ->
                ignore (next c);
                if peek c = None then set_term (Ret None)
                else set_term (Ret (Some (parse_operand st c kind_of)))
            | Tid "unreachable" :: _ -> set_term Unreachable
            | _ -> fail lineno "cannot parse line inside function")
        | Some _, None -> fail lineno "cannot parse top-level line"
        | None, _ -> ())
    lines;
  prog
