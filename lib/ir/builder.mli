(** Embedded DSL for constructing IR programs.

    The workloads and the transformation examples are written against
    this builder.  Structured control flow ([if_], [while_], [for_])
    lowers to basic blocks, so client code stays readable while the
    underlying program is ordinary block-structured IR.

    Operand-returning emitters return the destination as an
    {!Inst.operand} ([Reg r]), ready for use in subsequent emissions. *)

open Types
open Inst

type t = { prog : Prog.t; func : Func.t; mutable cur : Func.block }

(** Create a function in [prog] and position the builder at its entry. *)
val create :
  Prog.t ->
  name:string ->
  params:(string * ty) list ->
  ret:ty ->
  ?vararg:bool ->
  unit ->
  t

(** Builder positioned on an existing block of an existing function
    (used by the DPMR transformation engine). *)
val on_func : Prog.t -> Func.t -> Func.block -> t

val fresh_label : t -> string -> string
val new_block : t -> string -> Func.block
val position : t -> Func.block -> unit

val param : t -> int -> operand
val params : t -> operand list

(** {1 Constants} *)

val i8c : int -> operand
val i16c : int -> operand
val i32c : int -> operand
val i64c : int -> operand
val i64c' : int64 -> operand
val fc : float -> operand
val null : ty -> operand

(** {1 Raw emission} *)

val emit : t -> inst -> unit
val operand_ty : t -> operand -> ty

(** {1 Memory} *)

val malloc : t -> ?name:string -> ?count:operand -> ty -> operand
val alloca : t -> ?name:string -> ?count:operand -> ty -> operand
val free : t -> operand -> unit
val load : t -> ?name:string -> ty -> operand -> operand
val store : t -> ty -> operand -> operand -> unit
val gep_field : t -> ?name:string -> operand -> int -> operand
val gep_index : t -> ?name:string -> operand -> operand -> operand
val bitcast : t -> ?name:string -> ty -> operand -> operand
val ptr_to_int : t -> ?name:string -> operand -> operand
val int_to_ptr : t -> ?name:string -> ty -> operand -> operand

(** {1 Arithmetic and comparisons} *)

val binop : t -> ?name:string -> binop -> width -> operand -> operand -> operand
val add : t -> ?name:string -> width -> operand -> operand -> operand
val sub : t -> ?name:string -> width -> operand -> operand -> operand
val mul : t -> ?name:string -> width -> operand -> operand -> operand
val sdiv : t -> ?name:string -> width -> operand -> operand -> operand
val srem : t -> ?name:string -> width -> operand -> operand -> operand
val fbinop : t -> ?name:string -> fbinop -> operand -> operand -> operand
val fadd : t -> ?name:string -> operand -> operand -> operand
val fsub : t -> ?name:string -> operand -> operand -> operand
val fmul : t -> ?name:string -> operand -> operand -> operand
val fdiv : t -> ?name:string -> operand -> operand -> operand
val icmp : t -> ?name:string -> icond -> width -> operand -> operand -> operand
val fcmp : t -> ?name:string -> fcond -> operand -> operand -> operand
val int_cast : t -> ?name:string -> ?signed:bool -> width -> operand -> operand
val f_to_i : t -> ?name:string -> width -> operand -> operand
val i_to_f : t -> ?name:string -> width -> operand -> operand
val select : t -> ?name:string -> ty -> operand -> operand -> operand -> operand

(** {1 Calls} *)

(** [call b callee args] returns [Some result] unless the callee returns
    void. *)
val call : t -> ?name:string -> callee -> operand list -> operand option

(** Like {!call} but requires a non-void result. *)
val call1 : t -> ?name:string -> callee -> operand list -> operand

(** Call for effect, discarding any result. *)
val call0 : t -> callee -> operand list -> unit

(** {1 Terminators and structured control flow} *)

val br : t -> string -> unit
val cbr : t -> operand -> string -> string -> unit
val ret : t -> operand option -> unit
val ret0 : t -> unit
val unreachable : t -> unit

val if_ : t -> operand -> (unit -> unit) -> unit
val if_else : t -> operand -> (unit -> unit) -> (unit -> unit) -> unit

(** [while_ b cond body]: [cond] is re-emitted at the loop head each
    iteration and returns the loop condition operand. *)
val while_ : t -> (unit -> operand) -> (unit -> unit) -> unit

(** Counted loop over [\[from, below)]; the body receives the induction
    value.  The induction variable lives in a stack slot, so nesting
    works without phi nodes. *)
val for_ :
  t -> ?width:width -> from:operand -> below:operand -> (operand -> unit) -> unit

(** {1 Mutable locals (stack slots)} *)

val local : t -> ?name:string -> ty -> operand -> operand
val get : t -> ty -> operand -> operand
val set : t -> ty -> operand -> operand -> unit

(** {1 Globals} *)

val global : t -> name:string -> ty -> Prog.ginit -> operand
