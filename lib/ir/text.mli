(** Textual IR: a parseable serialization of whole programs.

    [emit] and [parse] round-trip: [parse (emit p)] has behaviour
    identical to [p] (verified over every workload and over randomly
    generated programs in the test suite).  '#' starts a line comment. *)

exception Parse_error of int * string
(** (line number, message) *)

val emit : Prog.t -> string
val parse : string -> Prog.t
