(** Well-formedness checker for IR programs.

    Catches construction mistakes that would otherwise surface as
    confusing interpreter traps: ill-typed register assignments, loads and
    stores of non-scalar types, branches to missing labels, arity
    mismatches, use of undeclared functions.  All workloads and all
    transformed programs are verified in the test suite. *)

exception Ill_formed of string

val check_func : Prog.t -> Func.t -> unit
val check_prog : Prog.t -> unit
