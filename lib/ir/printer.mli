(** Human-readable printing of IR programs (LLVM-flavoured syntax). *)

val pp_operand : Func.t -> Format.formatter -> Inst.operand -> unit
val pp_inst : Func.t -> Format.formatter -> Inst.inst -> unit
val pp_term : Func.t -> Format.formatter -> Inst.term -> unit
val pp_func : Format.formatter -> Func.t -> unit
val pp_ginit : Format.formatter -> Prog.ginit -> unit
val pp_prog : Format.formatter -> Prog.t -> unit
val func_to_string : Func.t -> string
val prog_to_string : Prog.t -> string
