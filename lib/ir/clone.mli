(** Deep copies of functions and programs.

    The fault injector builds one program variant per (site, fault type)
    pair by mutating a clone — the original is never touched, mirroring
    the per-variant builds of §3.5. *)

val func : Func.t -> Func.t
val prog : Prog.t -> Prog.t
