(** Deep copies of functions and programs.

    The fault injector builds one program variant per (injection site,
    fault type) pair by mutating a clone of the input program — the
    original is never touched (mirroring §3.5's per-variant builds). *)

let func (f : Func.t) : Func.t =
  {
    f with
    blocks =
      List.map
        (fun (b : Func.block) ->
          { Func.label = b.Func.label; insts = b.Func.insts; term = b.Func.term })
        f.Func.blocks;
    reg_tys = Hashtbl.copy f.Func.reg_tys;
    reg_names = Hashtbl.copy f.Func.reg_names;
    label_cache = None;
    index_cache = None;
  }

let prog (p : Prog.t) : Prog.t =
  let q = Prog.create ~tenv:(Types.Tenv.copy p.Prog.tenv) () in
  Prog.iter_globals p (fun g -> Prog.add_global q { g with Prog.gname = g.Prog.gname });
  Hashtbl.iter (fun name ft -> Prog.declare_extern q name ft) p.Prog.externs;
  Prog.iter_funcs p (fun f -> Prog.add_func q (func f));
  q
