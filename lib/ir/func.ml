(** Functions: typed virtual registers, basic blocks, parameters.

    Virtual registers hold scalars only (the Chapter 2 assumption); they
    are function-local, mutable slots — assigned by at most one
    instruction *per dynamic execution*, but freely reassigned across
    loop iterations, which sidesteps SSA phi nodes without changing
    anything the DPMR transformation cares about. *)

open Types

type block = { label : string; mutable insts : Inst.inst list; mutable term : Inst.term }

type t = {
  name : string;
  params : (Inst.reg * ty) list;
  ret : ty;
  vararg : bool;
  mutable blocks : block list;  (** entry block first *)
  reg_tys : (Inst.reg, ty) Hashtbl.t;
  reg_names : (Inst.reg, string) Hashtbl.t;
  mutable next_reg : int;
  mutable next_label : int;  (** function-wide fresh-label counter *)
  mutable label_cache : (string, block) Hashtbl.t option;
      (** lazily built label -> block map (branch dispatch is hot);
          invalidated by {!add_block} *)
  mutable index_cache : (block array * (string, int) Hashtbl.t) option;
      (** lazily built positional view: blocks as an array (entry first)
          plus label -> index; invalidated by {!add_block}.  The VM's
          lowering pass resolves every branch target to an index through
          this, so branch dispatch needs no hashing at run time. *)
}

let create ~name ~params ~ret ?(vararg = false) () =
  let f =
    {
      name;
      params = [];
      ret;
      vararg;
      blocks = [];
      reg_tys = Hashtbl.create 32;
      reg_names = Hashtbl.create 32;
      next_reg = 0;
      next_label = 0;
      label_cache = None;
      index_cache = None;
    }
  in
  let ps =
    List.map
      (fun (pname, pty) ->
        let r = f.next_reg in
        f.next_reg <- r + 1;
        Hashtbl.replace f.reg_tys r pty;
        Hashtbl.replace f.reg_names r pname;
        (r, pty))
      params
  in
  { f with params = ps }

let fresh_reg f ?name ty =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  Hashtbl.replace f.reg_tys r ty;
  (match name with Some n -> Hashtbl.replace f.reg_names r n | None -> ());
  r

let reg_ty f r =
  match Hashtbl.find_opt f.reg_tys r with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Func.reg_ty: %s has no register %d" f.name r)

let reg_name f r =
  match Hashtbl.find_opt f.reg_names r with
  | Some n -> Printf.sprintf "%s.%d" n r
  | None -> Printf.sprintf "r%d" r

let set_reg_ty f r ty = Hashtbl.replace f.reg_tys r ty

let add_block f label =
  if List.exists (fun b -> b.label = label) f.blocks then
    invalid_arg (Printf.sprintf "Func.add_block: duplicate label %S in %s" label f.name);
  let b = { label; insts = []; term = Inst.Unreachable } in
  f.blocks <- f.blocks @ [ b ];
  f.label_cache <- None;
  f.index_cache <- None;
  b

let fresh_label f base =
  f.next_label <- f.next_label + 1;
  Printf.sprintf "%s.%d" base f.next_label

let find_block f label =
  let cache =
    match f.label_cache with
    | Some c -> c
    | None ->
        let c = Hashtbl.create (2 * List.length f.blocks) in
        List.iter (fun b -> Hashtbl.replace c b.label b) f.blocks;
        f.label_cache <- Some c;
        c
  in
  match Hashtbl.find_opt cache label with
  | Some b -> b
  | None ->
      invalid_arg (Printf.sprintf "Func.find_block: %s has no block %S" f.name label)

let indexed f =
  match f.index_cache with
  | Some v -> v
  | None ->
      let arr = Array.of_list f.blocks in
      let idx = Hashtbl.create (2 * Array.length arr) in
      Array.iteri (fun i b -> Hashtbl.replace idx b.label i) arr;
      let v = (arr, idx) in
      f.index_cache <- Some v;
      v

(** Blocks as an array, entry block at index 0. *)
let block_array f = fst (indexed f)

(** Positional index of block [label] (the id lowered branches jump to). *)
let block_index f label =
  match Hashtbl.find_opt (snd (indexed f)) label with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Func.block_index: %s has no block %S" f.name label)

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" f.name)

let fun_ty f =
  { ret = f.ret; params = List.map snd f.params; vararg = f.vararg }

let iter_insts f k = List.iter (fun b -> List.iter (k b) b.insts) f.blocks

(** Static type of an operand in the context of function [f]. *)
let operand_ty tenv prog_global_ty prog_fun_ty f (o : Inst.operand) =
  ignore tenv;
  match o with
  | Inst.Reg r -> reg_ty f r
  | Inst.Cint (w, _) -> Int w
  | Inst.Cfloat _ -> Float
  | Inst.Null t -> Ptr t
  | Inst.Global g -> Ptr (prog_global_ty g)
  | Inst.Fun_addr fn -> Ptr (Fun (prog_fun_ty fn))
