(** Human-readable printing of IR programs (LLVM-flavoured syntax).  Used
    by the CLI's [transform --dump] and by tests that check transformation
    structure. *)

open Types
open Inst

let pp_operand f ppf = function
  | Reg r -> Fmt.pf ppf "%%%s" (Func.reg_name f r)
  | Cint (w, v) -> Fmt.pf ppf "i%d %Ld" (bits_of_width w) v
  | Cfloat x -> Fmt.pf ppf "f64 %g" x
  | Null t -> Fmt.pf ppf "null(%a*)" Types.pp t
  | Global g -> Fmt.pf ppf "@%s" g
  | Fun_addr fn -> Fmt.pf ppf "&%s" fn

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | Udiv -> "udiv" | Urem -> "urem" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let fbinop_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let icond_name = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle" | Isgt -> "sgt"
  | Isge -> "sge" | Iult -> "ult" | Iule -> "ule" | Iugt -> "ugt" | Iuge -> "uge"

let fcond_name = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole"
  | Fogt -> "ogt" | Foge -> "oge"

let pp_inst f ppf inst =
  let op = pp_operand f in
  let def r = Fmt.str "%%%s" (Func.reg_name f r) in
  match inst with
  | Malloc (r, t, n) -> Fmt.pf ppf "%s = malloc %a, %a" (def r) Types.pp t op n
  | Alloca (r, t, n) -> Fmt.pf ppf "%s = alloca %a, %a" (def r) Types.pp t op n
  | Free p -> Fmt.pf ppf "free %a" op p
  | Load (r, t, p) -> Fmt.pf ppf "%s = load %a, %a" (def r) Types.pp t op p
  | Store (t, v, p) -> Fmt.pf ppf "store %a %a, %a" Types.pp t op v op p
  | Gep_field (r, s, p, i) -> Fmt.pf ppf "%s = gep_field %%%s, %a, %d" (def r) s op p i
  | Gep_index (r, e, p, i) ->
      Fmt.pf ppf "%s = gep_index %a, %a, %a" (def r) Types.pp e op p op i
  | Bitcast (r, t, p) -> Fmt.pf ppf "%s = bitcast %a to %a" (def r) op p Types.pp t
  | Ptr_to_int (r, p) -> Fmt.pf ppf "%s = ptrtoint %a" (def r) op p
  | Int_to_ptr (r, t, v) -> Fmt.pf ppf "%s = inttoptr %a to %a" (def r) op v Types.pp t
  | Binop (r, o, w, a, b) ->
      Fmt.pf ppf "%s = %s i%d %a, %a" (def r) (binop_name o) (bits_of_width w) op a op b
  | Fbinop (r, o, a, b) -> Fmt.pf ppf "%s = %s %a, %a" (def r) (fbinop_name o) op a op b
  | Icmp (r, c, w, a, b) ->
      Fmt.pf ppf "%s = icmp %s i%d %a, %a" (def r) (icond_name c) (bits_of_width w) op a op b
  | Fcmp (r, c, a, b) -> Fmt.pf ppf "%s = fcmp %s %a, %a" (def r) (fcond_name c) op a op b
  | Int_cast (r, w, s, v) ->
      Fmt.pf ppf "%s = %s %a to i%d" (def r) (if s then "sext/trunc" else "zext/trunc")
        op v (bits_of_width w)
  | F_to_i (r, w, v) -> Fmt.pf ppf "%s = fptosi %a to i%d" (def r) op v (bits_of_width w)
  | I_to_f (r, _, v) -> Fmt.pf ppf "%s = sitofp %a" (def r) op v
  | Call (r, callee, args) ->
      let cs = match callee with Direct n -> n | Indirect o -> Fmt.str "*%a" op o in
      let pre = match r with Some r -> Fmt.str "%s = " (def r) | None -> "" in
      Fmt.pf ppf "%scall %s(%a)" pre cs Fmt.(list ~sep:(any ", ") op) args
  | Select (r, t, c, a, b) ->
      Fmt.pf ppf "%s = select %a %a, %a, %a" (def r) Types.pp t op c op a op b

let pp_term f ppf = function
  | Br l -> Fmt.pf ppf "br %s" l
  | Cbr (c, l1, l2) -> Fmt.pf ppf "cbr %a, %s, %s" (pp_operand f) c l1 l2
  | Ret None -> Fmt.string ppf "ret void"
  | Ret (Some o) -> Fmt.pf ppf "ret %a" (pp_operand f) o
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_func ppf (f : Func.t) =
  Fmt.pf ppf "define %a @%s(%a)%s {@\n" Types.pp f.ret f.name
    Fmt.(
      list ~sep:(any ", ") (fun ppf (r, t) ->
          pf ppf "%a %%%s" Types.pp t (Func.reg_name f r)))
    f.params
    (if f.vararg then " vararg" else "");
  List.iter
    (fun (b : Func.block) ->
      Fmt.pf ppf "%s:@\n" b.label;
      List.iter (fun i -> Fmt.pf ppf "  %a@\n" (pp_inst f) i) b.insts;
      Fmt.pf ppf "  %a@\n" (pp_term f) b.term)
    f.blocks;
  Fmt.pf ppf "}@\n"

let rec pp_ginit ppf = function
  | Prog.Gzero -> Fmt.string ppf "zeroinit"
  | Prog.Gint v -> Fmt.pf ppf "%Ld" v
  | Prog.Gfloat x -> Fmt.pf ppf "%g" x
  | Prog.Gptr_null -> Fmt.string ppf "null"
  | Prog.Gptr_global g -> Fmt.pf ppf "@%s" g
  | Prog.Gptr_fun fn -> Fmt.pf ppf "&%s" fn
  | Prog.Gstring s -> Fmt.pf ppf "%S" s
  | Prog.Gagg gs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_ginit) gs

let pp_prog ppf (p : Prog.t) =
  Tenv.iter p.tenv (fun name body ->
      Fmt.pf ppf "%%%s = %s { %a }@\n" name
        (if body.is_union then "union" else "struct")
        Fmt.(list ~sep:(any ", ") Types.pp)
        body.fields);
  Prog.iter_globals p (fun g ->
      Fmt.pf ppf "@%s : %a = %a@\n" g.gname Types.pp g.gty pp_ginit g.ginit);
  Hashtbl.iter
    (fun name ft -> Fmt.pf ppf "declare %a @%s@\n" Types.pp (Fun ft) name)
    p.externs;
  Prog.iter_funcs p (fun f -> Fmt.pf ppf "@\n%a" pp_func f)

let func_to_string f = Fmt.str "%a" pp_func f
let prog_to_string p = Fmt.str "%a" pp_prog p
