(** Memory layout: sizes, alignments and field offsets.

    Implements [sizeof()] from the dissertation's symbol list — "the
    number of bytes reserved when the input type is allocated", including
    alignment padding — with natural alignment, 8-byte pointers, and
    C-like struct packing. *)

open Types

val ptr_size : int
val ptr_align : int
val round_up : int -> int -> int
val align_of : Tenv.t -> ty -> int
val size_of : Tenv.t -> ty -> int
val struct_size : Tenv.t -> ty list -> int
val union_size : Tenv.t -> ty list -> int

(** Byte offset of field [i] of struct [name] (0 for union members). *)
val field_offset : Tenv.t -> string -> int -> int

(** Offsets of every field of struct [name], in declaration order. *)
val field_offsets : Tenv.t -> string -> int list

(** σ() from the symbol list: flatten a type into the scalar types that
    make up its in-memory representation, in address order.  Used by the
    SDS pointer-arithmetic restrictions (§2.9) and the DSA field maps. *)
val flatten_scalars : Tenv.t -> ty -> ty list
