(** The IR type system.

    This is exactly the type system the dissertation assumes at the start of
    Chapter 2: primitive integer types of predefined sizes, one floating
    point type, [void], and five derived types — pointers, structures,
    unions, arrays and functions.  Arrays do not decay to pointers; all
    pointers have one predefined size.  Structures and unions are *named*
    and their bodies live in a type environment ({!Tenv}), which is how we
    represent the recursive types (e.g. linked lists) that the shadow-type
    algorithms of Figures 2.5–2.8 must handle. *)

type width = W8 | W16 | W32 | W64

type ty =
  | Int of width
  | Float  (** 64-bit IEEE float *)
  | Void
  | Ptr of ty
  | Arr of ty * int  (** element type and static count; no pointer decay *)
  | Struct of string  (** named structure; body resolved via {!Tenv} *)
  | Union of string  (** named union; body resolved via {!Tenv} *)
  | Fun of fun_ty

and fun_ty = {
  ret : ty;
  params : ty list;
  vararg : bool;  (** true for C-style variable-length argument lists *)
}

let i8 = Int W8
let i16 = Int W16
let i32 = Int W32
let i64 = Int W64
let ptr t = Ptr t
let arr t n = Arr (t, n)

let fun_ty ?(vararg = false) ret params = Fun { ret; params; vararg }

let bits_of_width = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64
let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar = function Int _ | Float | Ptr _ -> true | _ -> false

(** Aggregate body of a named structure or union. *)
type agg_body = { fields : ty list; is_union : bool }

(** Type environment: named struct/union bodies.

    A name may be *declared* (opaque) before it is *defined*; this is what
    lets us build recursive types, and what the shadow-type computation
    uses for placeholder resolution (§2.2). *)
module Tenv = struct
  type layout_info = { l_size : int; l_align : int; l_offsets : int array }

  type t = {
    bodies : (string, agg_body) Hashtbl.t;
    mutable fresh : int;  (** counter for generated type names *)
    layout_memo : (string, layout_info) Hashtbl.t;
        (** per-name layout results, maintained by {!Layout}; a body
            (re)definition can change the layout of any aggregate that
            embeds it, so definitions reset the whole memo *)
  }

  let create () =
    { bodies = Hashtbl.create 64; fresh = 0; layout_memo = Hashtbl.create 64 }

  let copy t =
    { bodies = Hashtbl.copy t.bodies; fresh = t.fresh; layout_memo = Hashtbl.create 64 }

  let layout_memo t = t.layout_memo

  let declare_struct t name =
    if not (Hashtbl.mem t.bodies name) then begin
      Hashtbl.replace t.bodies name { fields = []; is_union = false };
      Hashtbl.reset t.layout_memo
    end

  let define_struct t name fields =
    Hashtbl.replace t.bodies name { fields; is_union = false };
    Hashtbl.reset t.layout_memo

  let define_union t name fields =
    Hashtbl.replace t.bodies name { fields; is_union = true };
    Hashtbl.reset t.layout_memo

  let is_defined t name = Hashtbl.mem t.bodies name

  let body t name =
    match Hashtbl.find_opt t.bodies name with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "Tenv.body: undefined type %S" name)

  let fields t name = (body t name).fields

  (** Fresh type name, used by the shadow-type algorithms when they must
      mint a name for a generated struct (e.g. [LinkedListSdwTy]). *)
  let fresh_name t base =
    t.fresh <- t.fresh + 1;
    Printf.sprintf "%s.%d" base t.fresh

  let iter t f = Hashtbl.iter (fun name body -> f name body) t.bodies
  let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.bodies []
end

(** [contains_pointer_outside_fun_ty tenv t] is the predicate used by the
    short-circuit check of Figure 2.5, line 17: does [t] transitively
    contain a pointer, not counting pointers that only occur inside
    function types?  Recursion through named structs terminates via a
    visited set (a recursive struct can only recur through a pointer, and
    a pointer answers immediately). *)
let contains_pointer_outside_fun_ty tenv t =
  let visited = Hashtbl.create 8 in
  let rec go t =
    match t with
    | Ptr _ -> true
    | Int _ | Float | Void | Fun _ -> false
    | Arr (e, _) -> go e
    | Struct n | Union n ->
        if Hashtbl.mem visited n then false
        else begin
          Hashtbl.add visited n ();
          List.exists go (Tenv.fields tenv n)
        end
  in
  go t

(** Structural equality of types, unfolding named aggregates (used by the
    verifier and by tests; coinductive on recursive types). *)
let struct_eq tenv a b =
  let seen = Hashtbl.create 8 in
  let rec go a b =
    match (a, b) with
    | Int w1, Int w2 -> w1 = w2
    | Float, Float | Void, Void -> true
    | Ptr a, Ptr b -> go a b
    | Arr (a, n), Arr (b, m) -> n = m && go a b
    | Fun f, Fun g ->
        f.vararg = g.vararg
        && List.length f.params = List.length g.params
        && go f.ret g.ret
        && List.for_all2 go f.params g.params
    | (Struct n1 | Union n1), (Struct n2 | Union n2) ->
        let u1 = (Tenv.body tenv n1).is_union
        and u2 = (Tenv.body tenv n2).is_union in
        u1 = u2
        &&
        if n1 = n2 || Hashtbl.mem seen (n1, n2) then true
        else begin
          Hashtbl.add seen (n1, n2) ();
          let f1 = Tenv.fields tenv n1 and f2 = Tenv.fields tenv n2 in
          List.length f1 = List.length f2 && List.for_all2 go f1 f2
        end
    | _ -> false
  in
  go a b

let rec pp ppf = function
  | Int w -> Fmt.pf ppf "i%d" (bits_of_width w)
  | Float -> Fmt.string ppf "f64"
  | Void -> Fmt.string ppf "void"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Arr (t, n) -> Fmt.pf ppf "[%d x %a]" n pp t
  | Struct n -> Fmt.pf ppf "%%%s" n
  | Union n -> Fmt.pf ppf "union.%%%s" n
  | Fun { ret; params; vararg } ->
      Fmt.pf ppf "%a(%a%s)" pp ret
        Fmt.(list ~sep:(any ", ") pp)
        params
        (if vararg then ", ..." else "")

let to_string t = Fmt.str "%a" pp t
