(** A whole program: type environment, global variables, functions, and
    declared external functions.

    A global {e name} denotes the address of its storage (the Chapter 2
    assumption that all globals are pointers to memory).  Initialization
    is structural data that the DPMR transformation rewrites like a
    series of compile-time stores. *)

open Types

(** Structural initializer for a global. *)
type ginit =
  | Gzero
  | Gint of int64
  | Gfloat of float
  | Gptr_null
  | Gptr_global of string  (** address of another global *)
  | Gptr_fun of string  (** address of a function *)
  | Gstring of string  (** NUL-terminated bytes, for [Arr (i8, _)] *)
  | Gagg of ginit list  (** struct or array, elementwise *)

type global = { gname : string; gty : ty; mutable ginit : ginit }

type t = {
  tenv : Tenv.t;
  globals : (string, global) Hashtbl.t;
  mutable global_order : string list;  (** declaration order, for layout *)
  funcs : (string, Func.t) Hashtbl.t;
  mutable func_order : string list;
  externs : (string, fun_ty) Hashtbl.t;
      (** external functions: known signature, no body — dispatched to the
          VM's extern table (mini-libc, intrinsics, or DPMR wrappers) *)
}

val create : ?tenv:Tenv.t -> unit -> t

val add_global : t -> global -> unit
val global : t -> string -> global
val global_ty : t -> string -> ty
val has_global : t -> string -> bool

val add_func : t -> Func.t -> unit
val remove_func : t -> string -> unit
val func : t -> string -> Func.t
val has_func : t -> string -> bool

val declare_extern : t -> string -> fun_ty -> unit
val is_extern : t -> string -> bool

(** Signature of any callable name: defined functions shadow externs. *)
val fun_sig : t -> string -> fun_ty

val iter_funcs : t -> (Func.t -> unit) -> unit
val iter_globals : t -> (global -> unit) -> unit

(** Static type of an operand in the context of a function of this
    program. *)
val operand_ty : t -> Func.t -> Inst.operand -> ty
