(** Lightweight well-formedness checker for IR programs.

    Catches the construction mistakes that would otherwise surface as
    confusing interpreter traps: ill-typed register assignments, loads and
    stores of non-scalar types, branches to missing labels, calls with
    arity mismatches, and use of undeclared functions.  All workloads and
    all transformed programs are verified in the test suite. *)

open Types
open Inst

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let check_scalar ctx t =
  if not (is_scalar t) then
    fail "%s: type %a is not a scalar (registers hold scalars only)" ctx Types.pp t

let check_func (p : Prog.t) (f : Func.t) =
  let ctx_of b inst = Fmt.str "%s/%s: %a" f.name b (Printer.pp_inst f) inst in
  let oty o = Prog.operand_ty p f o in
  let check_ptr ctx o =
    match oty o with
    | Ptr _ -> ()
    | t -> fail "%s: operand has non-pointer type %a" ctx Types.pp t
  in
  let check_int ctx o =
    match oty o with
    | Int _ -> ()
    | t -> fail "%s: operand has non-integer type %a" ctx Types.pp t
  in
  let labels = List.map (fun (b : Func.block) -> b.label) f.blocks in
  let check_label ctx l =
    if not (List.mem l labels) then fail "%s: branch to missing label %S" ctx l
  in
  if f.blocks = [] then fail "%s: no blocks" f.name;
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun inst ->
          let ctx = ctx_of b.label inst in
          (match def_of inst with
          | Some r when not (Hashtbl.mem f.reg_tys r) ->
              fail "%s: destination register %d has no declared type" ctx r
          | _ -> ());
          match inst with
          | Malloc (r, t, n) | Alloca (r, t, n) ->
              check_int ctx n;
              ignore (Layout.size_of p.tenv t);
              if Func.reg_ty f r <> Ptr t then
                fail "%s: allocation result type mismatch" ctx
          | Free q -> check_ptr ctx q
          | Load (r, t, q) ->
              check_scalar ctx t;
              check_ptr ctx q;
              if Func.reg_ty f r <> t then fail "%s: load result type mismatch" ctx
          | Store (t, v, q) ->
              check_scalar ctx t;
              check_ptr ctx q;
              let vt = oty v in
              let compatible =
                match (t, vt) with
                | Ptr _, Ptr _ -> true (* pointer stores may be imprecisely typed *)
                | a, b -> a = b
              in
              if not compatible then
                fail "%s: stored value type %a does not match %a" ctx Types.pp vt
                  Types.pp t
          | Gep_field (r, s, q, i) -> (
              check_ptr ctx q;
              if not (Tenv.is_defined p.tenv s) then
                fail "%s: gep_field on undefined struct %%%s" ctx s;
              let fields = Tenv.fields p.tenv s in
              if i < 0 || i >= List.length fields then
                fail "%s: field index %d out of range for %%%s" ctx i s;
              match Func.reg_ty f r with
              | Ptr _ -> ()
              | t -> fail "%s: gep_field result type %a" ctx Types.pp t)
          | Gep_index (r, e, q, i) -> (
              check_ptr ctx q;
              check_int ctx i;
              match Func.reg_ty f r with
              | Ptr e' when e' = e -> ()
              | t -> fail "%s: gep_index result type %a" ctx Types.pp t)
          | Bitcast (r, t, q) -> (
              check_ptr ctx q;
              match (t, Func.reg_ty f r) with
              | Ptr _, rt when rt = t -> ()
              | _ -> fail "%s: bitcast target must be the result pointer type" ctx)
          | Ptr_to_int (r, q) ->
              check_ptr ctx q;
              if Func.reg_ty f r <> i64 then fail "%s: ptrtoint result must be i64" ctx
          | Int_to_ptr (r, t, v) -> (
              check_int ctx v;
              match (t, Func.reg_ty f r) with
              | Ptr _, rt when rt = t -> ()
              | _ -> fail "%s: inttoptr result type mismatch" ctx)
          | Binop (r, _, w, a, bo) ->
              check_int ctx a;
              check_int ctx bo;
              if Func.reg_ty f r <> Int w then fail "%s: binop result width" ctx
          | Fbinop (r, _, a, bo) ->
              if oty a <> Float || oty bo <> Float then fail "%s: fbinop operands" ctx;
              if Func.reg_ty f r <> Float then fail "%s: fbinop result" ctx
          | Icmp (r, _, _, a, bo) ->
              (match (oty a, oty bo) with
              | Int _, Int _ | Ptr _, Ptr _ -> ()
              | _ -> fail "%s: icmp operands must both be ints or pointers" ctx);
              if Func.reg_ty f r <> i8 then fail "%s: icmp result must be i8" ctx
          | Fcmp (r, _, a, bo) ->
              if oty a <> Float || oty bo <> Float then fail "%s: fcmp operands" ctx;
              if Func.reg_ty f r <> i8 then fail "%s: fcmp result must be i8" ctx
          | Int_cast (r, w, _, v) ->
              check_int ctx v;
              if Func.reg_ty f r <> Int w then fail "%s: int_cast result width" ctx
          | F_to_i (r, w, v) ->
              if oty v <> Float then fail "%s: fptosi operand" ctx;
              if Func.reg_ty f r <> Int w then fail "%s: fptosi result" ctx
          | I_to_f (r, _, v) ->
              check_int ctx v;
              if Func.reg_ty f r <> Float then fail "%s: sitofp result" ctx
          | Select (r, t, c, a, bo) ->
              check_int ctx c;
              if oty a <> t || oty bo <> t then fail "%s: select arm types" ctx;
              if Func.reg_ty f r <> t then fail "%s: select result" ctx
          | Call (r, callee, args) -> (
              let ft =
                match callee with
                | Direct n -> (
                    try Prog.fun_sig p n
                    with Invalid_argument _ -> fail "%s: unknown callee %S" ctx n)
                | Indirect o -> (
                    match oty o with
                    | Ptr (Fun ft) -> ft
                    | t -> fail "%s: indirect callee type %a" ctx Types.pp t)
              in
              let nfixed = List.length ft.params in
              if List.length args < nfixed then fail "%s: too few arguments" ctx
              else if (not ft.vararg) && List.length args > nfixed then
                fail "%s: too many arguments" ctx;
              List.iteri
                (fun i pt ->
                  let at = oty (List.nth args i) in
                  let ok =
                    match (pt, at) with Ptr _, Ptr _ -> true | a, b -> a = b
                  in
                  if not ok then
                    fail "%s: argument %d has type %a, expected %a" ctx i Types.pp
                      at Types.pp pt)
                ft.params;
              match (r, ft.ret) with
              | None, _ -> ()
              | Some _, Void -> fail "%s: void call with result register" ctx
              | Some r, t ->
                  let ok =
                    match (t, Func.reg_ty f r) with
                    | Ptr _, Ptr _ -> true
                    | a, b -> a = b
                  in
                  if not ok then fail "%s: call result type mismatch" ctx))
        b.insts;
      match b.term with
      | Br l -> check_label b.label l
      | Cbr (c, l1, l2) ->
          check_int (Fmt.str "%s/%s: cbr" f.name b.label) c;
          check_label b.label l1;
          check_label b.label l2
      | Ret None ->
          if f.ret <> Void then fail "%s: ret void in non-void function" f.name
      | Ret (Some o) ->
          let ok =
            match (f.ret, oty o) with Ptr _, Ptr _ -> true | a, b -> a = b
          in
          if not ok then fail "%s: return type mismatch" f.name
      | Unreachable -> ())
    f.blocks

let check_prog p = Prog.iter_funcs p (fun f -> check_func p f)
