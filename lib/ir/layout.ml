(** Memory layout: sizes, alignments and field offsets.

    Implements the [sizeof()] function from the dissertation's symbol list:
    "the number of bytes of memory that are reserved when the input type is
    allocated", including alignment padding.  Natural alignment, 8-byte
    pointers, C-like struct packing. *)

open Types

let ptr_size = 8
let ptr_align = 8

let round_up x a = (x + a - 1) / a * a

(* Named-aggregate layouts are memoized in the type environment: one
   {!Tenv.layout_info} per name, computed on first query, reset by Tenv on
   any (re)definition.  The VM's lowering pass queries layouts once per
   static site, but transforms and the verifier also hammer these, so the
   memo pays for itself even outside execution. *)

let rec align_of tenv t =
  match t with
  | Int w -> bytes_of_width w
  | Float -> 8
  | Ptr _ -> ptr_align
  | Arr (e, _) -> align_of tenv e
  | Struct n | Union n -> (info tenv n).Tenv.l_align
  | Void -> invalid_arg "Layout.align_of: void"
  | Fun _ -> invalid_arg "Layout.align_of: function type"

and size_of tenv t =
  match t with
  | Int w -> bytes_of_width w
  | Float -> 8
  | Ptr _ -> ptr_size
  | Arr (e, n) -> n * size_of tenv e
  | Struct n -> (info tenv n).Tenv.l_size
  | Union n ->
      (* a [Union] type whose body was registered as a struct still sizes
         as a union (largest member), matching the pre-memo behaviour *)
      let body = Tenv.body tenv n in
      if body.is_union then (info tenv n).Tenv.l_size
      else union_size tenv body.fields
  | Void -> invalid_arg "Layout.size_of: void"
  | Fun _ -> invalid_arg "Layout.size_of: function type"

and struct_size tenv fields =
  let off, algn =
    List.fold_left
      (fun (off, algn) f ->
        let fa = align_of tenv f in
        (round_up off fa + size_of tenv f, max algn fa))
      (0, 1) fields
  in
  if off = 0 then 0 else round_up off algn

and union_size tenv fields =
  let sz = List.fold_left (fun s f -> max s (size_of tenv f)) 0 fields in
  let algn = List.fold_left (fun a f -> max a (align_of tenv f)) 1 fields in
  if sz = 0 then 0 else round_up sz algn

and info tenv name =
  let memo = Tenv.layout_memo tenv in
  match Hashtbl.find_opt memo name with
  | Some i -> i
  | None ->
      let body = Tenv.body tenv name in
      let i =
        if body.is_union then
          { Tenv.l_size = union_size tenv body.fields;
            l_align =
              List.fold_left (fun a f -> max a (align_of tenv f)) 1 body.fields;
            l_offsets = Array.make (List.length body.fields) 0 }
        else begin
          let n = List.length body.fields in
          let offs = Array.make n 0 in
          let off = ref 0 and algn = ref 1 in
          List.iteri
            (fun j f ->
              let fa = align_of tenv f in
              let o = round_up !off fa in
              offs.(j) <- o;
              off := o + size_of tenv f;
              algn := max !algn fa)
            body.fields;
          { Tenv.l_size = (if !off = 0 then 0 else round_up !off !algn);
            l_align = !algn;
            l_offsets = offs }
        end
      in
      Hashtbl.replace memo name i;
      i

(** Byte offset of field [i] in struct [name] (not meaningful for unions,
    whose fields all live at offset 0). *)
let field_offset tenv name i =
  let inf = info tenv name in
  if (Tenv.body tenv name).is_union then 0
  else if i < 0 || i >= Array.length inf.Tenv.l_offsets then
    invalid_arg "Layout.field_offset: index out of range"
  else inf.Tenv.l_offsets.(i)

(** Offsets of every field of struct [name], in order. *)
let field_offsets tenv name =
  List.mapi (fun i _ -> field_offset tenv name i) (Tenv.fields tenv name)

(** σ() from the symbol list: flatten [t] into the list of scalar types
    that make up its in-memory representation, in address order (padding
    ignored).  Used by the SDS pointer-arithmetic restrictions (§2.9) and
    by the DSA field maps. *)
let rec flatten_scalars tenv t =
  match t with
  | Int _ | Float | Ptr _ -> [ t ]
  | Void | Fun _ -> []
  | Arr (e, n) ->
      let es = flatten_scalars tenv e in
      List.concat (List.init n (fun _ -> es))
  | Struct n | Union n ->
      let body = Tenv.body tenv n in
      if body.is_union then
        (* Conservative: a union flattens to its largest member. *)
        let largest =
          List.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b ->
                  if size_of tenv f > size_of tenv b then Some f else best)
            None body.fields
        in
        match largest with None -> [] | Some f -> flatten_scalars tenv f
      else List.concat_map (flatten_scalars tenv) body.fields
