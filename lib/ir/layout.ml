(** Memory layout: sizes, alignments and field offsets.

    Implements the [sizeof()] function from the dissertation's symbol list:
    "the number of bytes of memory that are reserved when the input type is
    allocated", including alignment padding.  Natural alignment, 8-byte
    pointers, C-like struct packing. *)

open Types

let ptr_size = 8
let ptr_align = 8

let rec align_of tenv t =
  match t with
  | Int w -> bytes_of_width w
  | Float -> 8
  | Ptr _ -> ptr_align
  | Arr (e, _) -> align_of tenv e
  | Struct n | Union n ->
      List.fold_left
        (fun a f -> max a (align_of tenv f))
        1 (Tenv.fields tenv n)
  | Void -> invalid_arg "Layout.align_of: void"
  | Fun _ -> invalid_arg "Layout.align_of: function type"

let round_up x a = (x + a - 1) / a * a

let rec size_of tenv t =
  match t with
  | Int w -> bytes_of_width w
  | Float -> 8
  | Ptr _ -> ptr_size
  | Arr (e, n) -> n * size_of tenv e
  | Struct n ->
      let body = Tenv.body tenv n in
      if body.is_union then union_size tenv body.fields
      else struct_size tenv body.fields
  | Union n -> union_size tenv (Tenv.fields tenv n)
  | Void -> invalid_arg "Layout.size_of: void"
  | Fun _ -> invalid_arg "Layout.size_of: function type"

and struct_size tenv fields =
  let off, algn =
    List.fold_left
      (fun (off, algn) f ->
        let fa = align_of tenv f in
        (round_up off fa + size_of tenv f, max algn fa))
      (0, 1) fields
  in
  if off = 0 then 0 else round_up off algn

and union_size tenv fields =
  let sz = List.fold_left (fun s f -> max s (size_of tenv f)) 0 fields in
  let algn = List.fold_left (fun a f -> max a (align_of tenv f)) 1 fields in
  if sz = 0 then 0 else round_up sz algn

(** Byte offset of field [i] in struct [name] (not meaningful for unions,
    whose fields all live at offset 0). *)
let field_offset tenv name i =
  let body = Tenv.body tenv name in
  if body.is_union then 0
  else
    let rec go off j = function
      | [] -> invalid_arg "Layout.field_offset: index out of range"
      | f :: rest ->
          let off = round_up off (align_of tenv f) in
          if j = i then off else go (off + size_of tenv f) (j + 1) rest
    in
    go 0 0 body.fields

(** Offsets of every field of struct [name], in order. *)
let field_offsets tenv name =
  List.mapi (fun i _ -> field_offset tenv name i) (Tenv.fields tenv name)

(** σ() from the symbol list: flatten [t] into the list of scalar types
    that make up its in-memory representation, in address order (padding
    ignored).  Used by the SDS pointer-arithmetic restrictions (§2.9) and
    by the DSA field maps. *)
let rec flatten_scalars tenv t =
  match t with
  | Int _ | Float | Ptr _ -> [ t ]
  | Void | Fun _ -> []
  | Arr (e, n) ->
      let es = flatten_scalars tenv e in
      List.concat (List.init n (fun _ -> es))
  | Struct n | Union n ->
      let body = Tenv.body tenv n in
      if body.is_union then
        (* Conservative: a union flattens to its largest member. *)
        let largest =
          List.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b ->
                  if size_of tenv f > size_of tenv b then Some f else best)
            None body.fields
        in
        match largest with None -> [] | Some f -> flatten_scalars tenv f
      else List.concat_map (flatten_scalars tenv) body.fields
