(** A whole program: type environment, global variables, functions, and
    declared-but-not-defined external functions.

    Global variables follow the Chapter 2 assumption: a global *name*
    denotes the address of its storage (i.e. all globals are pointers to
    memory).  Initialization is structural data that the DPMR
    transformation rewrites like a series of compile-time stores. *)

open Types

(** Structural initializer for a global. *)
type ginit =
  | Gzero
  | Gint of int64
  | Gfloat of float
  | Gptr_null
  | Gptr_global of string  (** address of another global *)
  | Gptr_fun of string  (** address of a function *)
  | Gstring of string  (** NUL-terminated byte string (for [Arr (i8, _)]) *)
  | Gagg of ginit list  (** struct or array elementwise initializer *)

type global = { gname : string; gty : ty; mutable ginit : ginit }

type t = {
  tenv : Tenv.t;
  globals : (string, global) Hashtbl.t;
  mutable global_order : string list;  (** declaration order, for layout *)
  funcs : (string, Func.t) Hashtbl.t;
  mutable func_order : string list;
  externs : (string, fun_ty) Hashtbl.t;
      (** external functions: known signature, no body — dispatched to the
          VM's external table (mini-libc or DPMR wrappers) *)
}

let create ?tenv () =
  {
    tenv = (match tenv with Some t -> t | None -> Tenv.create ());
    globals = Hashtbl.create 16;
    global_order = [];
    funcs = Hashtbl.create 16;
    func_order = [];
    externs = Hashtbl.create 16;
  }

let add_global p g =
  if Hashtbl.mem p.globals g.gname then
    invalid_arg (Printf.sprintf "Prog.add_global: duplicate %S" g.gname);
  Hashtbl.replace p.globals g.gname g;
  p.global_order <- p.global_order @ [ g.gname ]

let global p name =
  match Hashtbl.find_opt p.globals name with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Prog.global: undefined %S" name)

let global_ty p name = (global p name).gty
let has_global p name = Hashtbl.mem p.globals name

let add_func p (f : Func.t) =
  if Hashtbl.mem p.funcs f.name then
    invalid_arg (Printf.sprintf "Prog.add_func: duplicate %S" f.name);
  Hashtbl.replace p.funcs f.name f;
  p.func_order <- p.func_order @ [ f.name ]

let remove_func p name =
  Hashtbl.remove p.funcs name;
  p.func_order <- List.filter (fun n -> n <> name) p.func_order

let func p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.func: undefined %S" name)

let has_func p name = Hashtbl.mem p.funcs name

let declare_extern p name ft = Hashtbl.replace p.externs name ft

let is_extern p name = (not (Hashtbl.mem p.funcs name)) && Hashtbl.mem p.externs name

(** Signature of any callable name: defined functions first, then externs. *)
let fun_sig p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> Func.fun_ty f
  | None -> (
      match Hashtbl.find_opt p.externs name with
      | Some ft -> ft
      | None -> invalid_arg (Printf.sprintf "Prog.fun_sig: unknown function %S" name))

let iter_funcs p k = List.iter (fun n -> k (func p n)) p.func_order
let iter_globals p k = List.iter (fun n -> k (global p n)) p.global_order

let operand_ty p f o = Func.operand_ty p.tenv (global_ty p) (fun_sig p) f o
