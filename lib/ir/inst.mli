(** Instructions, operands and block terminators.

    The instruction set mirrors the operations the DPMR transformation
    tables (2.6/2.7 and 4.3/4.4) case-split on: allocation (heap, stack,
    globals), deallocation, loads and stores of scalars,
    address-of-field, address-of-array-element, pointer casts,
    address-of-function, calls and returns — plus ordinary arithmetic,
    comparisons and numeric casts. *)

open Types

type reg = int

type operand =
  | Reg of reg
  | Cint of width * int64  (** integer constant, truncated to width *)
  | Cfloat of float
  | Null of ty  (** null pointer of type [Ptr ty] *)
  | Global of string  (** address of a global variable *)
  | Fun_addr of string  (** address of a function *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv
type icond = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge
type fcond = Foeq | Fone | Folt | Fole | Fogt | Foge
type callee = Direct of string | Indirect of operand

type inst =
  | Malloc of reg * ty * operand
      (** [Malloc (p, t, n)]: allocate [n] objects of type [t] on the heap;
          [p : Ptr t].  The count is the "request size" a heap-array-resize
          fault shrinks (§3.4). *)
  | Alloca of reg * ty * operand  (** stack allocation, freed at return *)
  | Free of operand
  | Load of reg * ty * operand  (** load one scalar of type [ty] *)
  | Store of ty * operand * operand  (** [Store (t, v, p)]: store [v] at [p] *)
  | Gep_field of reg * string * operand * int
      (** address of struct field: [x <- &(p->f_i)] *)
  | Gep_index of reg * ty * operand * operand
      (** address of array element, scaled by the element type *)
  | Bitcast of reg * ty * operand  (** pointer-to-pointer cast *)
  | Ptr_to_int of reg * operand  (** result i64 *)
  | Int_to_ptr of reg * ty * operand
      (** forbidden under SDS/MDS (§2.9, §4.4); permitted with the
          Chapter 5 DSA scope expansion *)
  | Binop of reg * binop * width * operand * operand
  | Fbinop of reg * fbinop * operand * operand
  | Icmp of reg * icond * width * operand * operand  (** result i8 in 0/1 *)
  | Fcmp of reg * fcond * operand * operand
  | Int_cast of reg * width * bool * operand
      (** truncate or (sign/zero-)extend; the bool is signedness *)
  | F_to_i of reg * width * operand
  | I_to_f of reg * width * operand
  | Call of reg option * callee * operand list
  | Select of reg * ty * operand * operand * operand

type term =
  | Br of string
  | Cbr of operand * string * string  (** nonzero -> first label *)
  | Ret of operand option
  | Unreachable

(** Destination register of an instruction, if any. *)
val def_of : inst -> reg option

(** Operands read by an instruction. *)
val uses_of : inst -> operand list
