(** Instructions, operands and block terminators.

    The instruction set mirrors the operations the DPMR transformation
    tables (2.6/2.7 and 4.3/4.4) case-split on: allocation (heap, stack,
    globals), deallocation, loads and stores of scalars, address-of-field,
    address-of-array-element, pointer casts, address-of-function, calls,
    returns — plus ordinary arithmetic, comparisons, and integer/float
    casts needed to write real programs. *)

open Types

type reg = int

type operand =
  | Reg of reg
  | Cint of width * int64  (** integer constant, value truncated to width *)
  | Cfloat of float
  | Null of ty  (** null pointer of type [Ptr ty] *)
  | Global of string  (** address of a global variable *)
  | Fun_addr of string  (** address of a function *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type icond = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge
type fcond = Foeq | Fone | Folt | Fole | Fogt | Foge

type callee = Direct of string | Indirect of operand

type inst =
  | Malloc of reg * ty * operand
      (** [Malloc (p, t, n)]: allocate [n] objects of type [t] on the heap;
          [p : Ptr t].  [n] is an i64 count — this is the "request size" a
          heap-array-resize fault shrinks (§3.4). *)
  | Alloca of reg * ty * operand  (** stack allocation, freed at return *)
  | Free of operand
  | Load of reg * ty * operand
      (** [Load (x, t, p)]: load one scalar of type [t] from address [p]. *)
  | Store of ty * operand * operand
      (** [Store (t, v, p)]: store scalar [v] of type [t] to address [p]. *)
  | Gep_field of reg * string * operand * int
      (** [Gep_field (x, s, p, i)]: [x <- &(p->f_i)] where [p : Ptr (Struct s)]. *)
  | Gep_index of reg * ty * operand * operand
      (** [Gep_index (x, e, p, i)]: address of array element;
          [p : Ptr (Arr (e, _))] or [Ptr e]; [x : Ptr e]. *)
  | Bitcast of reg * ty * operand
      (** pointer-to-pointer cast; result type [ty] must be a pointer *)
  | Ptr_to_int of reg * operand  (** result i64 *)
  | Int_to_ptr of reg * ty * operand  (** result type [ty] (a pointer) *)
  | Binop of reg * binop * width * operand * operand
  | Fbinop of reg * fbinop * operand * operand
  | Icmp of reg * icond * width * operand * operand  (** result i8 in {0,1} *)
  | Fcmp of reg * fcond * operand * operand  (** result i8 in {0,1} *)
  | Int_cast of reg * width * bool * operand
      (** [Int_cast (x, w, signed, v)]: truncate or (sign/zero) extend *)
  | F_to_i of reg * width * operand
  | I_to_f of reg * width * operand
  | Call of reg option * callee * operand list
  | Select of reg * ty * operand * operand * operand
      (** [Select (x, t, c, a, b)]: [x <- c != 0 ? a : b] *)

type term =
  | Br of string
  | Cbr of operand * string * string  (** if operand != 0 then fst else snd *)
  | Ret of operand option
  | Unreachable

(** Destination register of an instruction, if any. *)
let def_of = function
  | Malloc (r, _, _)
  | Alloca (r, _, _)
  | Load (r, _, _)
  | Gep_field (r, _, _, _)
  | Gep_index (r, _, _, _)
  | Bitcast (r, _, _)
  | Ptr_to_int (r, _)
  | Int_to_ptr (r, _, _)
  | Binop (r, _, _, _, _)
  | Fbinop (r, _, _, _)
  | Icmp (r, _, _, _, _)
  | Fcmp (r, _, _, _)
  | Int_cast (r, _, _, _)
  | F_to_i (r, _, _)
  | I_to_f (r, _, _)
  | Select (r, _, _, _, _) -> Some r
  | Call (r, _, _) -> r
  | Free _ | Store _ -> None

(** Operands read by an instruction. *)
let uses_of inst =
  let callee_ops = function Direct _ -> [] | Indirect o -> [ o ] in
  match inst with
  | Malloc (_, _, n) | Alloca (_, _, n) -> [ n ]
  | Free p -> [ p ]
  | Load (_, _, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Gep_field (_, _, p, _) -> [ p ]
  | Gep_index (_, _, p, i) -> [ p; i ]
  | Bitcast (_, _, p) | Ptr_to_int (_, p) | Int_to_ptr (_, _, p) -> [ p ]
  | Binop (_, _, _, a, b) | Icmp (_, _, _, a, b) -> [ a; b ]
  | Fbinop (_, _, a, b) | Fcmp (_, _, a, b) -> [ a; b ]
  | Int_cast (_, _, _, v) | F_to_i (_, _, v) | I_to_f (_, _, v) -> [ v ]
  | Call (_, c, args) -> callee_ops c @ args
  | Select (_, _, c, a, b) -> [ c; a; b ]
