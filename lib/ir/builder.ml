(** Embedded DSL for constructing IR programs.

    The workloads (art/bzip2/equake/mcf simulacra) and all transformation
    examples are written against this builder.  It provides structured
    control flow ([if_], [while_], [for_]) that lowers to basic blocks, so
    workload code stays readable while the underlying program is ordinary
    block-structured IR. *)

open Types
open Inst

type t = { prog : Prog.t; func : Func.t; mutable cur : Func.block }

let create prog ~name ~params ~ret ?(vararg = false) () =
  let func = Func.create ~name ~params ~ret ~vararg () in
  Prog.add_func prog func;
  let entry = Func.add_block func "entry" in
  { prog; func; cur = entry }

(** Builder positioned on an existing function (used by the transforms). *)
let on_func prog func block = { prog; func; cur = block }

let fresh_label b base = Func.fresh_label b.func base

let new_block b base =
  let l = fresh_label b base in
  Func.add_block b.func l

let position b block = b.cur <- block

let param b i = Reg (fst (List.nth b.func.params i))
let params b = List.map (fun (r, _) -> Reg r) b.func.params

(* constant helpers *)
let i8c n = Cint (W8, Int64.of_int n)
let i16c n = Cint (W16, Int64.of_int n)
let i32c n = Cint (W32, Int64.of_int n)
let i64c n = Cint (W64, Int64.of_int n)
let i64c' n = Cint (W64, n)
let fc x = Cfloat x
let null t = Null t

let emit b inst = b.cur.insts <- b.cur.insts @ [ inst ]

let emit_def b ?name ty mk =
  let r = Func.fresh_reg b.func ?name ty in
  emit b (mk r);
  Reg r

let operand_ty b o = Prog.operand_ty b.prog b.func o

(* memory *)
let malloc b ?name ?(count = i64c 1) ty =
  emit_def b ?name (Ptr ty) (fun r -> Malloc (r, ty, count))

let alloca b ?name ?(count = i64c 1) ty =
  emit_def b ?name (Ptr ty) (fun r -> Alloca (r, ty, count))

let free b p = emit b (Free p)

let load b ?name ty p = emit_def b ?name ty (fun r -> Load (r, ty, p))
let store b ty v p = emit b (Store (ty, v, p))

let gep_field b ?name p i =
  match operand_ty b p with
  | Ptr (Struct s) ->
      let fty = List.nth (Tenv.fields b.prog.tenv s) i in
      emit_def b ?name (Ptr fty) (fun r -> Gep_field (r, s, p, i))
  | Ptr (Union s) ->
      let fty = List.nth (Tenv.fields b.prog.tenv s) i in
      emit_def b ?name (Ptr fty) (fun r -> Gep_field (r, s, p, i))
  | t ->
      invalid_arg
        (Fmt.str "Builder.gep_field: operand has type %a, not struct pointer"
           Types.pp t)

let gep_index b ?name p i =
  let elem =
    match operand_ty b p with
    | Ptr (Arr (e, _)) -> e
    | Ptr e -> e
    | t -> invalid_arg (Fmt.str "Builder.gep_index: bad type %a" Types.pp t)
  in
  emit_def b ?name (Ptr elem) (fun r -> Gep_index (r, elem, p, i))

let bitcast b ?name ty p = emit_def b ?name ty (fun r -> Bitcast (r, ty, p))
let ptr_to_int b ?name p = emit_def b ?name i64 (fun r -> Ptr_to_int (r, p))
let int_to_ptr b ?name ty v = emit_def b ?name ty (fun r -> Int_to_ptr (r, ty, v))

(* arithmetic *)
let binop b ?name op w x y = emit_def b ?name (Int w) (fun r -> Binop (r, op, w, x, y))
let add b ?name w x y = binop b ?name Add w x y
let sub b ?name w x y = binop b ?name Sub w x y
let mul b ?name w x y = binop b ?name Mul w x y
let sdiv b ?name w x y = binop b ?name Sdiv w x y
let srem b ?name w x y = binop b ?name Srem w x y

let fbinop b ?name op x y = emit_def b ?name Float (fun r -> Fbinop (r, op, x, y))
let fadd b ?name x y = fbinop b ?name Fadd x y
let fsub b ?name x y = fbinop b ?name Fsub x y
let fmul b ?name x y = fbinop b ?name Fmul x y
let fdiv b ?name x y = fbinop b ?name Fdiv x y

let icmp b ?name c w x y = emit_def b ?name i8 (fun r -> Icmp (r, c, w, x, y))
let fcmp b ?name c x y = emit_def b ?name i8 (fun r -> Fcmp (r, c, x, y))

let int_cast b ?name ?(signed = true) w v =
  emit_def b ?name (Int w) (fun r -> Int_cast (r, w, signed, v))

let f_to_i b ?name w v = emit_def b ?name (Int w) (fun r -> F_to_i (r, w, v))
let i_to_f b ?name w v = emit_def b ?name Float (fun r -> I_to_f (r, w, v))

let select b ?name ty c x y = emit_def b ?name ty (fun r -> Select (r, ty, c, x, y))

(* calls *)
let call b ?name callee args =
  let callee_name = match callee with Direct n -> Some n | Indirect _ -> None in
  let ret_ty =
    match callee with
    | Direct n -> (Prog.fun_sig b.prog n).ret
    | Indirect o -> (
        match operand_ty b o with
        | Ptr (Fun ft) -> ft.ret
        | t -> invalid_arg (Fmt.str "Builder.call: callee type %a" Types.pp t))
  in
  ignore callee_name;
  if ret_ty = Void then begin
    emit b (Call (None, callee, args));
    None
  end
  else begin
    let r = Func.fresh_reg b.func ?name ret_ty in
    emit b (Call (Some r, callee, args));
    Some (Reg r)
  end

let call1 b ?name callee args =
  match call b ?name callee args with
  | Some v -> v
  | None -> invalid_arg "Builder.call1: callee returns void"

let call0 b callee args = ignore (call b callee args)

(* terminators and structured control flow *)
let br b l = b.cur.term <- Br l
let cbr b c l1 l2 = b.cur.term <- Cbr (c, l1, l2)
let ret b o = b.cur.term <- Ret o
let ret0 b = ret b None
let unreachable b = b.cur.term <- Unreachable

(** [if_ b cond then_body]: emit [then_body] guarded by [cond <> 0]. *)
let if_ b cond body =
  let bt = new_block b "then" and bj = new_block b "endif" in
  cbr b cond bt.label bj.label;
  position b bt;
  body ();
  br b bj.label;
  position b bj

let if_else b cond body_t body_f =
  let bt = new_block b "then"
  and bf = new_block b "else"
  and bj = new_block b "endif" in
  cbr b cond bt.label bf.label;
  position b bt;
  body_t ();
  br b bj.label;
  position b bf;
  body_f ();
  br b bj.label;
  position b bj

(** [while_ b cond body]: [cond] is re-emitted at the loop head each
    iteration and must return the loop condition operand. *)
let while_ b cond body =
  let bh = new_block b "while.head"
  and bb = new_block b "while.body"
  and bx = new_block b "while.end" in
  br b bh.label;
  position b bh;
  let c = cond () in
  cbr b c bb.label bx.label;
  position b bb;
  body ();
  br b bh.label;
  position b bx

(** [for_ b ~from ~below body]: counted i64 loop over [from, below).  The
    induction variable lives in a stack slot so the loop works without phi
    nodes; [body] receives the current value as an operand. *)
let for_ b ?(width = W64) ~from ~below body =
  let slot = alloca b ~name:"i" (Int width) in
  store b (Int width) from slot;
  let bh = new_block b "for.head"
  and bb = new_block b "for.body"
  and bx = new_block b "for.end" in
  br b bh.label;
  position b bh;
  let i = load b ~name:"i" (Int width) slot in
  let c = icmp b Islt width i below in
  cbr b c bb.label bx.label;
  position b bb;
  body i;
  let i' = load b (Int width) slot in
  let inc = add b width i' (Cint (width, 1L)) in
  store b (Int width) inc slot;
  br b bh.label;
  position b bx

(** Mutable local variable backed by a stack slot. *)
let local b ?name ty init =
  let slot = alloca b ?name ty in
  store b ty init slot;
  slot

let get b ty slot = load b ty slot
let set b ty slot v = store b ty v slot

(* globals *)
let global b ~name ty init =
  Prog.add_global b.prog { Prog.gname = name; gty = ty; ginit = init };
  Global name
