(** The IR type system.

    Exactly the type system the dissertation assumes at the start of
    Chapter 2: primitive integers of predefined sizes, one floating point
    type, [void], and five derived types — pointers, structures, unions,
    arrays and function types.  Arrays do not decay to pointers; all
    pointers share one predefined size.  Structures and unions are
    {e named}; their bodies live in a type environment ({!Tenv}), which is
    how recursive types (e.g. linked lists) are represented and how the
    shadow-type algorithms of Figures 2.5–2.8 implement placeholder
    resolution. *)

type width = W8 | W16 | W32 | W64

type ty =
  | Int of width
  | Float  (** 64-bit IEEE float *)
  | Void
  | Ptr of ty
  | Arr of ty * int  (** element type and static count; no pointer decay *)
  | Struct of string  (** named structure; body resolved via {!Tenv} *)
  | Union of string  (** named union; body resolved via {!Tenv} *)
  | Fun of fun_ty

and fun_ty = {
  ret : ty;
  params : ty list;
  vararg : bool;  (** true for C-style variable-length argument lists *)
}

(** {1 Constructors} *)

val i8 : ty
val i16 : ty
val i32 : ty
val i64 : ty
val ptr : ty -> ty
val arr : ty -> int -> ty
val fun_ty : ?vararg:bool -> ty -> ty list -> ty

(** {1 Width helpers} *)

val bits_of_width : width -> int
val bytes_of_width : width -> int

(** {1 Predicates} *)

val is_pointer : ty -> bool

(** A scalar is what a virtual register can hold and what one load or
    store moves: an integer, a float, or a pointer. *)
val is_scalar : ty -> bool

(** {1 Type environment} *)

(** Aggregate body of a named structure or union. *)
type agg_body = { fields : ty list; is_union : bool }

module Tenv : sig
  type t

  (** Memoized layout of one named aggregate: size, alignment, and field
      offsets in declaration order (see {!Layout}). *)
  type layout_info = { l_size : int; l_align : int; l_offsets : int array }

  val create : unit -> t
  val copy : t -> t

  (** Layout memo, owned by {!Layout}: computed sizes/alignments/offsets
      per aggregate name.  Reset whenever a body is (re)defined, since a
      definition can change the layout of every aggregate embedding it. *)
  val layout_memo : t -> (string, layout_info) Hashtbl.t

  (** Declare a struct name without a body (opaque); later
      {!define_struct} supplies the fields.  This is the recursion /
      placeholder mechanism. *)
  val declare_struct : t -> string -> unit

  val define_struct : t -> string -> ty list -> unit
  val define_union : t -> string -> ty list -> unit
  val is_defined : t -> string -> bool
  val body : t -> string -> agg_body
  val fields : t -> string -> ty list

  (** Mint a unique type name with the given base (used when the
      shadow-type computation creates named structs). *)
  val fresh_name : t -> string -> string

  val iter : t -> (string -> agg_body -> unit) -> unit
  val names : t -> string list
end

(** The predicate behind the Figure 2.5 line 17 short-circuit: does [t]
    transitively contain a pointer, not counting pointers that occur only
    inside function types? *)
val contains_pointer_outside_fun_ty : Tenv.t -> ty -> bool

(** Structural type equality, unfolding named aggregates (coinductive on
    recursive types). *)
val struct_eq : Tenv.t -> ty -> ty -> bool

val pp : Format.formatter -> ty -> unit
val to_string : ty -> string
