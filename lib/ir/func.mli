(** Functions: typed virtual registers, basic blocks, parameters.

    Virtual registers hold scalars only (the Chapter 2 assumption); they
    are function-local mutable slots, freely reassigned across loop
    iterations — which sidesteps SSA phi nodes without changing anything
    the DPMR transformation cares about. *)

open Types

type block = {
  label : string;
  mutable insts : Inst.inst list;
  mutable term : Inst.term;
}

type t = {
  name : string;
  params : (Inst.reg * ty) list;
  ret : ty;
  vararg : bool;
  mutable blocks : block list;  (** entry block first *)
  reg_tys : (Inst.reg, ty) Hashtbl.t;
  reg_names : (Inst.reg, string) Hashtbl.t;
  mutable next_reg : int;
  mutable next_label : int;  (** function-wide fresh-label counter *)
  mutable label_cache : (string, block) Hashtbl.t option;
      (** lazily built label map; invalidated by {!add_block} *)
  mutable index_cache : (block array * (string, int) Hashtbl.t) option;
      (** lazily built positional view (entry first) used by the VM's
          lowering pass; invalidated by {!add_block} *)
}

val create :
  name:string -> params:(string * ty) list -> ret:ty -> ?vararg:bool -> unit -> t

val fresh_reg : t -> ?name:string -> ty -> Inst.reg
val reg_ty : t -> Inst.reg -> ty
val reg_name : t -> Inst.reg -> string
val set_reg_ty : t -> Inst.reg -> ty -> unit

(** Appends a new block; raises on duplicate labels. *)
val add_block : t -> string -> block

val fresh_label : t -> string -> string
val find_block : t -> string -> block

(** Blocks as an array, entry block at index 0 (cached; invalidated by
    {!add_block}). *)
val block_array : t -> block array

(** Positional index of a block — the id lowered branches jump to; raises
    [Invalid_argument] on unknown labels. *)
val block_index : t -> string -> int

val entry : t -> block
val fun_ty : t -> fun_ty
val iter_insts : t -> (block -> Inst.inst -> unit) -> unit

(** Static type of an operand, given resolvers for global and function
    types (used via {!Prog.operand_ty}). *)
val operand_ty :
  Tenv.t -> (string -> ty) -> (string -> fun_ty) -> t -> Inst.operand -> ty
