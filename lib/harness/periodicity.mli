(** Figure 3.16: exploiting periodicity to improve temporal load-checking
    overhead.  Builds both code shapes of the figure — counter-gated
    checking and counter-free unrolled periodic checking — and measures
    them. *)

open Dpmr_ir

val counter_version : unit -> Prog.t
val periodic_version : unit -> Prog.t

(** (counter-gated cost, unrolled-periodic cost); asserts both versions
    run normally with identical output. *)
val measure : unit -> int64 * int64
