(** Plain-text table rendering for the experiment reports. *)

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

(** Render rows with per-column alignment; first row is the header. *)
let render rows =
  match rows with
  | [] -> ""
  | header :: _ ->
      let ncols = List.length header in
      let widths = Array.make ncols 0 in
      List.iter
        (List.iteri (fun i cell ->
             if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
        rows;
      let buf = Buffer.create 256 in
      let emit_row r =
        List.iteri
          (fun i cell ->
            Buffer.add_string buf (pad widths.(i) cell);
            if i < ncols - 1 then Buffer.add_string buf "  ")
          r;
        Buffer.add_char buf '\n'
      in
      emit_row header;
      Buffer.add_string buf
        (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
      Buffer.add_char buf '\n';
      List.iter emit_row (List.tl rows);
      Buffer.contents buf

let print_section title =
  Printf.printf "\n=== %s ===\n\n" title

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
