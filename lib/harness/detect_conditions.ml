(** §2.5 detection-conditions ablation.

    Each scenario engineers one manifestation class from the detection
    conditions analysis and reports how DPMR behaves:

    - {b unpaired corruption} (§2.5.1): an overflow displaced by one chunk
      stride corrupts the replica object while the replicated store
      corrupts an unrelated neighbour — the next load check fires;
    - {b paired corruption} (§2.5.1): an overflow displaced by exactly two
      chunk strides writes the same value to an application object and its
      replica — undetectable by construction;
    - {b same correct value} (§2.5.2): a read after free with no diversity
      returns the stale-but-equal value from both copies — no failure, no
      detection;
    - {b different values} (§2.5.2): the same read under zero-before-free
      sees data vs. zeros — detected;
    - {b double free / invalid free} (§2.5.3): allocator checks crash the
      program — natural detection.

    The chunk-stride arithmetic relies on the deterministic allocator:
    payload 64 B + 16 B header = 80 B stride, and app/replica objects are
    adjacent under no-diversity. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Config = Dpmr_core.Config
module Dpmr = Dpmr_core.Dpmr
module Outcome = Dpmr_vm.Outcome
module Wk_util = Dpmr_workloads.Wk_util

let stride = 80 (* bytes: 64 payload + 16 header for an 8 x i64 object *)

(* Allocate X and Y (8 x i64 each), store a sentinel in X[0] and Y[0],
   overflow out of X by [displacement] bytes, then read both sentinels. *)
let overflow_by displacement =
  let p = Wk_util.fresh_prog () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let x = B.malloc b ~name:"x" ~count:(B.i64c 8) i64 in
  let y = B.malloc b ~name:"y" ~count:(B.i64c 8) i64 in
  B.store b i64 (B.i64c 1111) (B.gep_index b x (B.i64c 0));
  B.store b i64 (B.i64c 2222) (B.gep_index b y (B.i64c 0));
  (* the faulty write: X displaced by [displacement] bytes *)
  let x8 = B.bitcast b (Ptr i8) x in
  let wild8 = B.gep_index b x8 (B.i64c displacement) in
  let wild = B.bitcast b (Ptr i64) wild8 in
  B.store b i64 (B.i64c 9999) wild;
  let vx = B.load b i64 (B.gep_index b x (B.i64c 0)) in
  let vy = B.load b i64 (B.gep_index b y (B.i64c 0)) in
  B.call0 b (Direct "print_int") [ vx ];
  B.call0 b (Direct "putchar") [ B.i32c 32 ];
  B.call0 b (Direct "print_int") [ vy ];
  B.ret b (Some (B.i32c 0));
  p

let read_after_free () =
  let p = Wk_util.fresh_prog () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let x = B.malloc b ~count:(B.i64c 8) i64 in
  B.store b i64 (B.i64c 4242) (B.gep_index b x (B.i64c 2));
  B.free b x;
  let v = B.load b i64 (B.gep_index b x (B.i64c 2)) in
  B.call0 b (Direct "print_int") [ v ];
  B.ret b (Some (B.i32c 0));
  p

let double_free () =
  let p = Wk_util.fresh_prog () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let x = B.malloc b ~count:(B.i64c 8) i64 in
  B.free b x;
  B.free b x;
  B.ret b (Some (B.i32c 0));
  p

let interior_free () =
  let p = Wk_util.fresh_prog () in
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let x = B.malloc b ~count:(B.i64c 8) i64 in
  let mid = B.gep_index b x (B.i64c 3) in
  B.free b mid;
  B.ret b (Some (B.i32c 0));
  p

type scenario = {
  sname : string;
  section : string;
  expectation : string;
  build : unit -> Prog.t;
  cfg : Config.t;
  classify : Outcome.run -> Outcome.run -> bool;  (** golden -> dpmr -> as expected? *)
}

let base = { Config.default with Config.diversity = Config.No_diversity }

let scenarios =
  [
    {
      sname = "unpaired corruption";
      section = "2.5.1";
      expectation = "DPMR detection";
      build = (fun () -> overflow_by stride);
      cfg = base;
      classify = (fun _ r -> Outcome.is_dpmr_detect r);
    };
    {
      sname = "paired corruption";
      section = "2.5.1";
      expectation = "silent incorrect output (identical corruption in both copies)";
      build = (fun () -> overflow_by (2 * stride));
      cfg = base;
      classify =
        (fun golden r ->
          (* the displaced write lands on Y and, replicated, on Y's replica
             with the same value: both copies agree on corrupted data, so
             DPMR cannot see it — the program runs to completion printing
             the corrupted value *)
          r.Outcome.outcome = Outcome.Normal
          && r.Outcome.output <> golden.Outcome.output);
    };
    {
      sname = "read after free, same value";
      section = "2.5.2";
      expectation = "no failure, no detection (stale value correct)";
      build = read_after_free;
      cfg = base;
      classify = (fun g r -> r.Outcome.outcome = Outcome.Normal && r.Outcome.output = g.Outcome.output);
    };
    {
      sname = "read after free, differing values";
      section = "2.5.2";
      expectation = "DPMR detection (zero-before-free diversity)";
      build = read_after_free;
      cfg = { base with Config.diversity = Config.Zero_before_free };
      classify = (fun _ r -> Outcome.is_dpmr_detect r);
    };
    {
      sname = "double free";
      section = "2.5.3";
      expectation = "allocator check crash (natural detection)";
      build = double_free;
      cfg = base;
      classify = (fun _ r -> Outcome.is_crash r);
    };
    {
      sname = "free of interior pointer";
      section = "2.5.3";
      expectation = "allocator check crash (natural detection)";
      build = interior_free;
      cfg = base;
      classify = (fun _ r -> Outcome.is_crash r);
    };
  ]

let run_scenario s =
  let p = s.build () in
  let golden = Dpmr.run_plain p in
  let r = Dpmr.run_dpmr s.cfg p in
  (golden, r, s.classify golden r)

let report ?engine () =
  Table_fmt.print_section "Detection conditions (§2.5) ablation";
  (* the scenarios are independent and build their programs inside the
     task, so they run on the engine pool when one is supplied *)
  let results =
    match engine with
    | Some e -> Dpmr_engine.Engine.run_tasks e (List.map (fun s () -> run_scenario s) scenarios)
    | None -> List.map run_scenario scenarios
  in
  let rows =
    [ "scenario"; "section"; "expectation"; "observed"; "as expected" ]
    :: List.map2
         (fun s (_, r, ok) ->
           [
             s.sname;
             s.section;
             s.expectation;
             Outcome.to_string r.Outcome.outcome;
             (if ok then "yes" else "NO");
           ])
         scenarios results
  in
  print_string (Table_fmt.render rows)
