(** Plain-text table rendering for the experiment reports. *)

val pad : int -> string -> string

(** Render rows with per-column alignment; the first row is the header. *)
val render : string list list -> string

val print_section : string -> unit
val f2 : float -> string
val f3 : float -> string
