(** One driver per evaluation table/figure of Chapters 3 and 4.

    Each entry re-runs the underlying experiment and prints the series
    the paper plots.  Results are cost-model units; the reproduced
    quantities are the shapes (see EXPERIMENTS.md). *)

type ctx
(** Caches experiments (golden runs) and per-variant classifications so
    overlapping figures share work. *)

(** [reps] repeats every fault-injection run with distinct seeds — the
    run-number dimension RN of the §3.6 experiment tuple.  [engine] runs
    all job batches (parallel workers + persistent result cache); when
    absent, a serial uncached engine reproduces the historical driver
    behaviour exactly.  [replicas]/[families]/[vote] override the
    N-version axes of every figure configuration; at their defaults
    (1/[]/any-mismatch) every figure is byte-identical to the
    single-replica driver. *)
val create :
  ?scale:int ->
  ?seed:int64 ->
  ?reps:int ->
  ?replicas:int ->
  ?families:string list ->
  ?vote:Dpmr_core.Config.vote ->
  ?engine:Dpmr_engine.Engine.t ->
  unit ->
  ctx

(** (id, description, driver) for every experiment. *)
val all : (string * string * (ctx -> unit)) list

val ids : string list

(** Run one experiment by id; raises on unknown ids. *)
val run : ctx -> string -> unit

val run_all : ctx -> unit

val nversion_surface : ctx -> unit
(** Detection-coverage surface over (replica count N, diversity-family
    set, fault model), with the (N, vote) detection conditions, the
    marginal gain of N=3 over N=1, and measured per-replica overhead
    against the Equation 3.1-style linear model.  Not part of {!all} for
    the same byte-stability reason as {!forensics}. *)

val forensics : ctx -> string -> unit
(** [forensics ctx fig] re-runs [fig]'s fault grid under the baseline
    configuration with a trace sink installed on every run, printing one
    row per (app, site): the named corruption, the first divergent
    replica byte, the trace-derived corruption→detection distance and
    whether it agrees with the classification's t2d, and an explanation
    for every miss.  Not part of {!all}: [report all] output stays
    byte-identical whether or not tracing exists. *)
