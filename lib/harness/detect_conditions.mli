(** §2.5 detection-conditions ablation: scenarios engineering each
    write/read/free error manifestation class, with expected outcomes. *)

open Dpmr_ir
module Config = Dpmr_core.Config
module Outcome = Dpmr_vm.Outcome

type scenario = {
  sname : string;
  section : string;  (** dissertation section the class comes from *)
  expectation : string;
  build : unit -> Prog.t;
  cfg : Config.t;
  classify : Outcome.run -> Outcome.run -> bool;
      (** (golden run, dpmr run) -> behaved as §2.5 predicts? *)
}

val scenarios : scenario list

(** Returns (golden run, dpmr run, as-expected). *)
val run_scenario : scenario -> Outcome.run * Outcome.run * bool

(** Print the scenario table; with [engine], scenarios run on the engine
    worker pool. *)
val report : ?engine:Dpmr_engine.Engine.t -> unit -> unit
