(** Figure 3.16: exploiting periodicity to improve temporal load-checking
    overhead.

    The figure contrasts (a) counter-gated checking — a global counter is
    loaded, tested and stored around every load check — with (b) code that
    unrolls the loop by the mask period and checks without any counter.
    We build both code shapes directly (over a manually maintained replica
    array, as in the figure) and measure them. *)

open Dpmr_ir
open Types
open Inst
module B = Builder
module Wk_util = Dpmr_workloads.Wk_util

let n = 100
let iters = 400  (* repeat the figure's loop to get a stable measurement *)

let common_prologue p =
  let b = B.create p ~name:"main" ~params:[] ~ret:i32 () in
  let a = B.malloc b ~name:"a" ~count:(B.i64c n) i32 in
  let a_r = B.malloc b ~name:"a_r" ~count:(B.i64c n) i32 in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
      let v = B.int_cast b W32 i in
      B.store b i32 v (B.gep_index b a i);
      B.store b i32 v (B.gep_index b a_r i));
  (b, a, a_r)

let epilogue b sum =
  B.call0 b (Direct "print_int") [ B.int_cast b W64 (B.get b i32 sum) ];
  B.ret b (Some (B.i32c 0))

let check b v addr =
  let rv = B.load b i32 addr in
  let eq = B.icmp b Ieq W32 v rv in
  let cont = B.new_block b "ok" in
  let det = B.new_block b "det" in
  B.cbr b eq cont.Func.label det.Func.label;
  B.position b det;
  B.call0 b (Direct "__dpmr_detect") [ B.i64c 316 ];
  B.unreachable b;
  B.position b cont

(** Figure 3.16(a): every other load checked, via a counter global. *)
let counter_version () =
  let p = Wk_util.fresh_prog () in
  Prog.add_global p { Prog.gname = "chkCounter"; gty = i8; ginit = Prog.Gint 0L };
  let counter = ref (Global "chkCounter") in
  let b, a, a_r = common_prologue p in
  let sum = B.local b ~name:"sum" i32 (B.i32c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c iters) (fun _rep ->
      B.for_ b ~from:(B.i64c 0) ~below:(B.i64c n) (fun i ->
          let v = B.load b i32 (B.gep_index b a i) in
          let c = B.load b i8 !counter in
          let z = B.icmp b Ieq W8 c (B.i8c 0) in
          B.if_ b z (fun () -> check b v (B.gep_index b a_r i));
          let c1 = B.add b W8 c (B.i8c 1) in
          let c2 = B.binop b And W8 c1 (B.i8c 1) in
          B.store b i8 c2 !counter;
          B.set b i32 sum (B.add b W32 (B.get b i32 sum) v)));
  epilogue b sum;
  p

(** Figure 3.16(b): the loop is unrolled by the period; even iterations
    check, odd iterations do not, and the counter disappears. *)
let periodic_version () =
  let p = Wk_util.fresh_prog () in
  let b, a, a_r = common_prologue p in
  let sum = B.local b ~name:"sum" i32 (B.i32c 0) in
  B.for_ b ~from:(B.i64c 0) ~below:(B.i64c iters) (fun _rep ->
      let i = B.local b ~name:"i" i64 (B.i64c 0) in
      B.while_ b
        (fun () -> B.icmp b Islt W64 (B.get b i64 i) (B.i64c n))
        (fun () ->
          let ii = B.get b i64 i in
          let v = B.load b i32 (B.gep_index b a ii) in
          check b v (B.gep_index b a_r ii);
          B.set b i32 sum (B.add b W32 (B.get b i32 sum) v);
          let i2 = B.add b W64 ii (B.i64c 1) in
          let v2 = B.load b i32 (B.gep_index b a i2) in
          B.set b i32 sum (B.add b W32 (B.get b i32 sum) v2);
          B.set b i64 i (B.add b W64 i2 (B.i64c 1))));
  epilogue b sum;
  p

(** Run both versions; returns (counter cost, periodic cost). *)
let measure () =
  let run p =
    Verifier.check_prog p;
    let vm = Dpmr_vm.Vm.create p in
    Dpmr_vm.Extern.register_base vm;
    let r = Dpmr_vm.Vm.run vm in
    (r.Dpmr_vm.Outcome.outcome, r.Dpmr_vm.Outcome.cost, r.Dpmr_vm.Outcome.output)
  in
  let o1, c1, out1 = run (counter_version ()) in
  let o2, c2, out2 = run (periodic_version ()) in
  assert (o1 = Dpmr_vm.Outcome.Normal && o2 = Dpmr_vm.Outcome.Normal);
  assert (out1 = out2);
  (c1, c2)
